// Package registry is the control plane for continuous queries: it manages
// the lifecycle the paper sketches in §IV-A — "Whenever Q issues a new
// query, it simply broadcasts it with μTesla in the network, without
// re-establishing any keys."
//
// A Controller (querier side) parses a query template, assigns it a query
// id, derives per-query key material from the long-term ring, and emits a
// μTesla-authenticated announcement. SourceAgents (sensor side) verify the
// announcement, parse the template, compile its WHERE clause, derive the
// same per-query keys, and start producing PSRs for the query.
//
// Key separation: running two queries concurrently with the *same* epoch
// keys would encrypt two plaintexts under one one-time pad. The registry
// therefore derives an independent key domain per query id,
//
//	K^q     = HM256(K,  "sies-query" ‖ id)[:20]
//	k_i^q   = HM256(kᵢ, "sies-query" ‖ id)[:20]
//
// so every concurrent query has its own pads and shares while the
// long-term provisioning (the expensive manual step) happens exactly once.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/mutesla"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/query"
)

// deriveKey maps a long-term key into query id's key domain.
func deriveKey(key []byte, id uint32) []byte {
	msg := make([]byte, 14)
	copy(msg, "sies-query")
	binary.BigEndian.PutUint32(msg[10:], id)
	d := prf.HM256(key, msg)
	return d[:prf.LongTermKeySize]
}

// deriveRing derives the full per-query ring.
func deriveRing(ring *prf.KeyRing, id uint32) (*prf.KeyRing, error) {
	sources := make([][]byte, ring.N())
	for i := range sources {
		_, ki, err := ring.SourceCredentials(i)
		if err != nil {
			return nil, err
		}
		sources[i] = deriveKey(ki, id)
	}
	return prf.NewKeyRingFromKeys(deriveKey(ring.Global, id), sources)
}

// Announcement is the broadcast payload: query id, deployment size, domain
// scale, and the template text.
type Announcement struct {
	ID    uint32
	N     int
	Scale uint64
	Text  string
}

// encode serialises the announcement.
func (a Announcement) encode() []byte {
	out := make([]byte, 16+len(a.Text))
	binary.BigEndian.PutUint32(out[0:4], a.ID)
	binary.BigEndian.PutUint32(out[4:8], uint32(a.N))
	binary.BigEndian.PutUint64(out[8:16], a.Scale)
	copy(out[16:], a.Text)
	return out
}

// decodeAnnouncement parses a verified broadcast payload.
func decodeAnnouncement(buf []byte) (Announcement, error) {
	if len(buf) < 16 {
		return Announcement{}, errors.New("registry: short announcement")
	}
	return Announcement{
		ID:    binary.BigEndian.Uint32(buf[0:4]),
		N:     int(binary.BigEndian.Uint32(buf[4:8])),
		Scale: binary.BigEndian.Uint64(buf[8:16]),
		Text:  string(buf[16:]),
	}, nil
}

// Session is one live query at the querier: its parsed form and the
// querier instance operating in the query's derived key domain.
type Session struct {
	ID      uint32
	Query   *query.Query
	Querier *core.Querier
}

// Controller runs at the querier.
type Controller struct {
	mu       sync.Mutex
	ring     *prf.KeyRing
	bc       *mutesla.Broadcaster
	interval int
	nextID   uint32
	sessions map[uint32]*Session
}

// NewController wraps the provisioned ring and a μTesla broadcaster.
func NewController(ring *prf.KeyRing, bc *mutesla.Broadcaster) (*Controller, error) {
	if ring == nil || bc == nil {
		return nil, errors.New("registry: controller needs a key ring and a broadcaster")
	}
	return &Controller{ring: ring, bc: bc, interval: 1, nextID: 1, sessions: map[uint32]*Session{}}, nil
}

// Launch parses and announces a new continuous query over the given domain
// scale, returning the session and the broadcast packet to disseminate.
// The μTesla interval advances by one per launch. Both sides use the
// default 32-bit layout so that announcements fully determine the sources'
// parameters.
func (c *Controller) Launch(src string, scale uint64) (*Session, mutesla.Packet, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, mutesla.Packet{}, err
	}
	if scale == 0 {
		return nil, mutesla.Packet{}, errors.New("registry: scale must be positive")
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	id := c.nextID
	c.nextID++
	derived, err := deriveRing(c.ring, id)
	if err != nil {
		return nil, mutesla.Packet{}, err
	}
	params, err := core.NewParams(c.ring.N())
	if err != nil {
		return nil, mutesla.Packet{}, err
	}
	querier, err := core.NewQuerier(derived, params)
	if err != nil {
		return nil, mutesla.Packet{}, err
	}
	ann := Announcement{ID: id, N: c.ring.N(), Scale: scale, Text: src}
	pkt, err := c.bc.Broadcast(c.interval, ann.encode())
	if err != nil {
		return nil, mutesla.Packet{}, fmt.Errorf("registry: broadcasting query: %w", err)
	}
	c.interval++
	s := &Session{ID: id, Query: q, Querier: querier}
	c.sessions[id] = s
	return s, pkt, nil
}

// DisclosePacket emits the key disclosure that lets sources verify the most
// recent launch. Call it one interval after Launch.
func (c *Controller) DisclosePacket() (mutesla.Packet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.interval <= 1 {
		return mutesla.Packet{}, errors.New("registry: nothing launched yet")
	}
	pkt, err := c.bc.DisclosePacket(c.interval - 1)
	if err != nil {
		return mutesla.Packet{}, err
	}
	c.interval++ // disclosure consumes wall-clock intervals too
	return pkt, nil
}

// Interval returns the controller's current μTesla interval, which the
// loosely synchronised sources use as their receive clock.
func (c *Controller) Interval() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.interval
}

// Session returns a live session by id.
func (c *Controller) Session(id uint32) (*Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[id]
	return s, ok
}

// Stop retires a query; its sessions no longer evaluate.
func (c *Controller) Stop(id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, id)
}

// activeQuery is one registered query at a source.
type activeQuery struct {
	source *core.Source
	pred   func(uint64) bool
}

// SourceAgent runs at a sensor: it authenticates announcements and produces
// PSRs for every active query.
type SourceAgent struct {
	mu       sync.Mutex
	id       int
	global   []byte
	ki       []byte
	receiver *mutesla.Receiver
	active   map[uint32]*activeQuery
}

// NewSourceAgent wraps source id's provisioned credentials and its μTesla
// receiver (initialised with the chain commitment at deployment time).
func NewSourceAgent(id int, global, ki []byte, receiver *mutesla.Receiver) (*SourceAgent, error) {
	if receiver == nil {
		return nil, errors.New("registry: agent needs a μTesla receiver")
	}
	if len(global) == 0 || len(ki) == 0 {
		return nil, errors.New("registry: agent needs its credentials")
	}
	return &SourceAgent{
		id: id, global: global, ki: ki,
		receiver: receiver, active: map[uint32]*activeQuery{},
	}, nil
}

// Deliver feeds a broadcast packet observed at the given interval through
// μTesla verification; every announcement it releases is parsed, compiled
// and registered. Returns the ids of newly registered queries.
func (a *SourceAgent) Deliver(pkt mutesla.Packet, interval int) ([]uint32, error) {
	verified, err := a.receiver.Receive(pkt, interval)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var registered []uint32
	for _, v := range verified {
		ann, err := decodeAnnouncement(v.Payload)
		if err != nil {
			return registered, err
		}
		q, err := query.Parse(ann.Text)
		if err != nil {
			return registered, fmt.Errorf("registry: authenticated query is malformed: %w", err)
		}
		pred, err := q.CompilePredicate(float64(ann.Scale))
		if err != nil {
			return registered, err
		}
		params, err := core.NewParams(ann.N)
		if err != nil {
			return registered, err
		}
		src, err := core.NewSource(a.id, deriveKey(a.global, ann.ID), deriveKey(a.ki, ann.ID), params)
		if err != nil {
			return registered, err
		}
		a.active[ann.ID] = &activeQuery{source: src, pred: pred}
		registered = append(registered, ann.ID)
	}
	return registered, nil
}

// Active returns the ids of the agent's registered queries.
func (a *SourceAgent) Active() []uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]uint32, 0, len(a.active))
	for id := range a.active {
		ids = append(ids, id)
	}
	return ids
}

// Retire drops a query registration (on a stop announcement or timeout).
func (a *SourceAgent) Retire(id uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.active, id)
}

// Emit produces the PSR of query id for this epoch's reading: the WHERE
// clause gates the contribution (a filtered source encrypts 0, §III-B).
func (a *SourceAgent) Emit(id uint32, t prf.Epoch, reading uint64) (core.PSR, error) {
	a.mu.Lock()
	aq, ok := a.active[id]
	a.mu.Unlock()
	if !ok {
		return core.PSR{}, fmt.Errorf("registry: query %d not registered at source %d", id, a.id)
	}
	v := reading
	if !aq.pred(reading) {
		v = 0
	}
	return aq.source.Encrypt(t, v)
}

// EmitCount produces the COUNT-indicator PSR: 1 when the predicate holds.
func (a *SourceAgent) EmitCount(id uint32, t prf.Epoch, reading uint64) (core.PSR, error) {
	a.mu.Lock()
	aq, ok := a.active[id]
	a.mu.Unlock()
	if !ok {
		return core.PSR{}, fmt.Errorf("registry: query %d not registered at source %d", id, a.id)
	}
	v := uint64(0)
	if aq.pred(reading) {
		v = 1
	}
	return aq.source.Encrypt(t, v)
}

package registry

import (
	"testing"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/mutesla"
	"github.com/sies/sies/internal/prf"
)

// testDeployment wires a controller and n source agents sharing a chain.
func testDeployment(t *testing.T, n int) (*Controller, []*SourceAgent) {
	t.Helper()
	ring, err := prf.NewKeyRing(n)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := mutesla.NewChain(32)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := mutesla.NewBroadcaster(chain, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ring, bc)
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*SourceAgent, n)
	for i := range agents {
		global, ki, err := ring.SourceCredentials(i)
		if err != nil {
			t.Fatal(err)
		}
		recv, err := mutesla.NewReceiver(chain.Commitment(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if agents[i], err = NewSourceAgent(i, global, ki, recv); err != nil {
			t.Fatal(err)
		}
	}
	return ctrl, agents
}

// launchAndRegister launches a query and walks every agent through the
// μTesla verify-then-register flow.
func launchAndRegister(t *testing.T, ctrl *Controller, agents []*SourceAgent, src string, scale uint64) *Session {
	t.Helper()
	session, pkt, err := ctrl.Launch(src, scale)
	if err != nil {
		t.Fatal(err)
	}
	interval := ctrl.Interval() - 1 // the packet's interval
	for _, a := range agents {
		if _, err := a.Deliver(pkt, interval); err != nil {
			t.Fatal(err)
		}
	}
	disclose, err := ctrl.DisclosePacket()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range agents {
		ids, err := a.Deliver(disclose, interval+1)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range ids {
			if id == session.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("agent did not register query %d", session.ID)
		}
	}
	return session
}

func TestLaunchRegisterEvaluate(t *testing.T) {
	ctrl, agents := testDeployment(t, 4)
	session := launchAndRegister(t, ctrl, agents,
		"SELECT SUM(temp) FROM Sensors WHERE temp >= 10 EPOCH DURATION 30s", 1)

	agg := core.NewAggregator(session.Querier.Params().Field())
	readings := []uint64{5, 10, 20, 40} // 5 filtered by WHERE
	var final core.PSR
	for i, a := range agents {
		psr, err := a.Emit(session.ID, 1, readings[i])
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
	}
	res, err := session.Querier.Evaluate(1, final)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 70 {
		t.Fatalf("SUM = %d, want 70", res.Sum)
	}
}

func TestConcurrentQueriesIndependentPads(t *testing.T) {
	// Two live queries in the same epoch: key separation must hold — both
	// evaluate correctly and their PSRs differ even for equal plaintexts.
	ctrl, agents := testDeployment(t, 3)
	s1 := launchAndRegister(t, ctrl, agents,
		"SELECT SUM(v) FROM s EPOCH DURATION 1s", 1)
	s2 := launchAndRegister(t, ctrl, agents,
		"SELECT SUM(v) FROM s WHERE v > 100 EPOCH DURATION 1s", 1)

	agg1 := core.NewAggregator(s1.Querier.Params().Field())
	agg2 := core.NewAggregator(s2.Querier.Params().Field())
	readings := []uint64{50, 150, 250}
	var f1, f2 core.PSR
	for i, a := range agents {
		p1, err := a.Emit(s1.ID, 7, readings[i])
		if err != nil {
			t.Fatal(err)
		}
		p2, err := a.Emit(s2.ID, 7, readings[i])
		if err != nil {
			t.Fatal(err)
		}
		if p1 == p2 {
			t.Fatal("two queries produced identical PSRs — pad reuse")
		}
		f1 = agg1.MergeInto(f1, p1)
		f2 = agg2.MergeInto(f2, p2)
	}
	r1, err := s1.Querier.Evaluate(7, f1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Querier.Evaluate(7, f2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sum != 450 {
		t.Fatalf("query 1 SUM = %d, want 450", r1.Sum)
	}
	if r2.Sum != 400 { // 50 filtered
		t.Fatalf("query 2 SUM = %d, want 400", r2.Sum)
	}
}

func TestCrossQueryPSRsRejected(t *testing.T) {
	// A PSR produced for query 1 must not verify under query 2's session.
	ctrl, agents := testDeployment(t, 2)
	s1 := launchAndRegister(t, ctrl, agents, "SELECT SUM(v) FROM s EPOCH DURATION 1s", 1)
	s2 := launchAndRegister(t, ctrl, agents, "SELECT SUM(v) FROM s EPOCH DURATION 1s", 1)

	agg := core.NewAggregator(s2.Querier.Params().Field())
	a, err := agents[0].Emit(s1.ID, 1, 10) // wrong query's PSR
	if err != nil {
		t.Fatal(err)
	}
	b, err := agents[1].Emit(s2.ID, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Querier.Evaluate(1, agg.Merge(a, b)); err == nil {
		t.Fatal("cross-query PSR accepted")
	}
}

func TestCountIndicators(t *testing.T) {
	ctrl, agents := testDeployment(t, 4)
	s := launchAndRegister(t, ctrl, agents,
		"SELECT COUNT(*) FROM Sensors WHERE detector = 1 EPOCH DURATION 1s", 1)
	agg := core.NewAggregator(s.Querier.Params().Field())
	detections := []uint64{1, 0, 1, 1}
	var final core.PSR
	for i, a := range agents {
		psr, err := a.EmitCount(s.ID, 1, detections[i])
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
	}
	res, err := s.Querier.Evaluate(1, final)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 3 {
		t.Fatalf("COUNT = %d, want 3", res.Sum)
	}
}

func TestUnregisteredQueryRejected(t *testing.T) {
	_, agents := testDeployment(t, 1)
	if _, err := agents[0].Emit(99, 1, 5); err == nil {
		t.Fatal("emit for unknown query accepted")
	}
	agents[0].Retire(99) // idempotent
}

func TestRetire(t *testing.T) {
	ctrl, agents := testDeployment(t, 1)
	s := launchAndRegister(t, ctrl, agents, "SELECT SUM(v) FROM s EPOCH DURATION 1s", 1)
	if len(agents[0].Active()) != 1 {
		t.Fatal("query not active")
	}
	agents[0].Retire(s.ID)
	if len(agents[0].Active()) != 0 {
		t.Fatal("retire did not remove the query")
	}
	if _, err := agents[0].Emit(s.ID, 1, 5); err == nil {
		t.Fatal("emit after retire accepted")
	}
	ctrl.Stop(s.ID)
	if _, ok := ctrl.Session(s.ID); ok {
		t.Fatal("session survived Stop")
	}
}

func TestForgedAnnouncementRejected(t *testing.T) {
	ctrl, agents := testDeployment(t, 1)
	session, pkt, err := ctrl.Launch("SELECT SUM(v) FROM s EPOCH DURATION 1s", 1)
	if err != nil {
		t.Fatal(err)
	}
	interval := ctrl.Interval() - 1
	// Adversary rewrites the announcement in flight.
	forged := pkt
	forged.Payload = append([]byte(nil), pkt.Payload...)
	forged.Payload[len(forged.Payload)-1] ^= 0xff
	if _, err := agents[0].Deliver(forged, interval); err != nil {
		t.Fatal(err) // buffered; MAC checked on disclosure
	}
	disclose, err := ctrl.DisclosePacket()
	if err != nil {
		t.Fatal(err)
	}
	ids, err := agents[0].Deliver(disclose, interval+1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == session.ID {
			t.Fatal("forged announcement registered")
		}
	}
	if len(agents[0].Active()) != 0 {
		t.Fatal("forged announcement activated a query")
	}
}

func TestMalformedLaunchRejected(t *testing.T) {
	ctrl, _ := testDeployment(t, 1)
	if _, _, err := ctrl.Launch("garbage", 1); err == nil {
		t.Fatal("malformed query launched")
	}
	if _, _, err := ctrl.Launch("SELECT SUM(v) FROM s EPOCH DURATION 1s", 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := ctrl.DisclosePacket(); err == nil {
		t.Fatal("disclosure before any launch accepted")
	}
	if _, err := NewController(nil, nil); err == nil {
		t.Fatal("nil controller parts accepted")
	}
	if _, err := NewSourceAgent(0, nil, nil, nil); err == nil {
		t.Fatal("nil agent parts accepted")
	}
}

// Package prf provides the pseudo-random functions and the key hierarchy of
// SIES and its benchmark schemes.
//
// Following the paper (§II-A, §IV-A), all PRFs are HMACs: HM1 is HMAC-SHA1
// with 20-byte digests and HM256 is HMAC-SHA256 with 32-byte digests. Every
// per-epoch quantity is derived by feeding the epoch number t (encoded as an
// 8-byte big-endian integer) to an HMAC keyed with a long-term secret:
//
//	K_t     = HM256(K,   t)   // epoch-global encryption key, known to all sources
//	k_{i,t} = HM256(k_i, t)   // per-source blinding key
//	ss_{i,t} = HM1(k_i,  t)   // per-source 20-byte secret share
//
// Note: SHA-1 appears here exactly as in the paper — as a PRF inside HMAC,
// where collision attacks on the underlying hash do not apply. The package
// also exposes a SHA-256 share variant used by the ablation benchmarks.
package prf

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Sizes of the long-term keys and PRF outputs, in bytes. The paper sets
// long-term keys to 20 bytes (§IV-A) "diminishing the probability of a
// random guess".
const (
	LongTermKeySize = 20
	Size1           = sha1.Size   // 20: HM1 output, secret shares
	Size256         = sha256.Size // 32: HM256 output, encryption keys
)

// Epoch identifies one transmission period t. All parties are loosely
// synchronised on epochs (paper §III-B).
type Epoch uint64

// Bytes returns the canonical 8-byte big-endian encoding of t used as the
// HMAC message for every key derivation.
func (t Epoch) Bytes() [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(t))
	return b
}

// HM1 computes HMAC-SHA1(key, msg).
func HM1(key, msg []byte) [Size1]byte {
	mac := hmac.New(sha1.New, key)
	mac.Write(msg)
	var out [Size1]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// HM256 computes HMAC-SHA256(key, msg).
func HM256(key, msg []byte) [Size256]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	var out [Size256]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// HM1Epoch computes HM1(key, t) — the secret-share PRF of the paper.
func HM1Epoch(key []byte, t Epoch) [Size1]byte {
	b := t.Bytes()
	return HM1(key, b[:])
}

// HM256Epoch computes HM256(key, t) — the key-derivation PRF of the paper.
func HM256Epoch(key []byte, t Epoch) [Size256]byte {
	b := t.Bytes()
	return HM256(key, b[:])
}

// NewLongTermKey draws a fresh 20-byte long-term key from crypto/rand.
func NewLongTermKey() ([]byte, error) {
	k := make([]byte, LongTermKeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("prf: generating long-term key: %w", err)
	}
	return k, nil
}

// KeyRing holds the querier's complete long-term key material for a network
// of N sources: the global key K (shared with every source) and one k_i per
// source. It is created once during the setup phase.
type KeyRing struct {
	Global  []byte   // K
	Source  [][]byte // k_i, indexed by source id
	numSrcs int
}

// NewKeyRing generates fresh key material for n sources.
func NewKeyRing(n int) (*KeyRing, error) {
	if n <= 0 {
		return nil, fmt.Errorf("prf: key ring needs at least one source, got %d", n)
	}
	global, err := NewLongTermKey()
	if err != nil {
		return nil, err
	}
	src := make([][]byte, n)
	for i := range src {
		if src[i], err = NewLongTermKey(); err != nil {
			return nil, err
		}
	}
	return &KeyRing{Global: global, Source: src, numSrcs: n}, nil
}

// NewKeyRingFromKeys reconstructs a ring from provisioned key material, the
// path a networked querier takes after loading credentials from disk.
func NewKeyRingFromKeys(global []byte, sources [][]byte) (*KeyRing, error) {
	if len(global) == 0 {
		return nil, fmt.Errorf("prf: missing global key")
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("prf: key ring needs at least one source key")
	}
	src := make([][]byte, len(sources))
	for i, k := range sources {
		if len(k) == 0 {
			return nil, fmt.Errorf("prf: source %d key is empty", i)
		}
		src[i] = append([]byte(nil), k...)
	}
	return &KeyRing{
		Global:  append([]byte(nil), global...),
		Source:  src,
		numSrcs: len(src),
	}, nil
}

// N returns the number of sources the ring was built for.
func (kr *KeyRing) N() int { return kr.numSrcs }

// SourceCredentials returns the material registered at source i during the
// manual setup phase: (K, k_i). It returns an error for out-of-range ids.
func (kr *KeyRing) SourceCredentials(i int) (global, source []byte, err error) {
	if i < 0 || i >= kr.numSrcs {
		return nil, nil, fmt.Errorf("prf: source id %d out of range [0,%d)", i, kr.numSrcs)
	}
	return kr.Global, kr.Source[i], nil
}

// EpochGlobalKey derives K_t.
func (kr *KeyRing) EpochGlobalKey(t Epoch) [Size256]byte {
	return HM256Epoch(kr.Global, t)
}

// EpochSourceKey derives k_{i,t}.
func (kr *KeyRing) EpochSourceKey(i int, t Epoch) ([Size256]byte, error) {
	if i < 0 || i >= kr.numSrcs {
		return [Size256]byte{}, fmt.Errorf("prf: source id %d out of range [0,%d)", i, kr.numSrcs)
	}
	return HM256Epoch(kr.Source[i], t), nil
}

// EpochShare derives ss_{i,t}.
func (kr *KeyRing) EpochShare(i int, t Epoch) ([Size1]byte, error) {
	if i < 0 || i >= kr.numSrcs {
		return [Size1]byte{}, fmt.Errorf("prf: source id %d out of range [0,%d)", i, kr.numSrcs)
	}
	return HM1Epoch(kr.Source[i], t), nil
}

package prf

import (
	"bytes"
	"sync"
	"testing"

	"github.com/sies/sies/internal/race"
)

// deriverTestKeys covers the HMAC key regimes: empty, short (the deployed
// 20-byte form), exactly one block, and longer than a block (hashed down per
// RFC 2104).
func deriverTestKeys() [][]byte {
	long := bytes.Repeat([]byte{0xaa}, 131)
	block := bytes.Repeat([]byte{0x0b}, hmacBlockSize)
	return [][]byte{
		{},
		[]byte("Jefe"),
		bytes.Repeat([]byte{0x0b}, LongTermKeySize),
		block,
		long,
	}
}

func TestDeriverMatchesHMAC(t *testing.T) {
	for ki, key := range deriverTestKeys() {
		d := NewDeriver(key)
		for _, epoch := range []Epoch{0, 1, 2, 1 << 20, ^Epoch(0)} {
			if got, want := d.Epoch256(epoch), HM256Epoch(key, epoch); got != want {
				t.Fatalf("key %d epoch %d: Epoch256 = %x, want %x", ki, epoch, got, want)
			}
			if got, want := d.Epoch1(epoch), HM1Epoch(key, epoch); got != want {
				t.Fatalf("key %d epoch %d: Epoch1 = %x, want %x", ki, epoch, got, want)
			}
		}
		// Interleaving the two PRFs must not cross-contaminate state.
		a := d.Epoch256(7)
		b := d.Epoch1(7)
		if a != HM256Epoch(key, 7) || b != HM1Epoch(key, 7) {
			t.Fatalf("key %d: interleaved derivations diverged", ki)
		}
	}
}

func TestRingDeriversMatchKeyRing(t *testing.T) {
	kr, err := NewKeyRing(9)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewRingDerivers(kr)
	if rd.N() != kr.N() {
		t.Fatalf("RingDerivers covers %d sources, ring has %d", rd.N(), kr.N())
	}
	for _, epoch := range []Epoch{1, 42, 1 << 33} {
		if got, want := rd.GlobalKey(epoch), kr.EpochGlobalKey(epoch); got != want {
			t.Fatalf("epoch %d: global key mismatch", epoch)
		}
		for i := 0; i < kr.N(); i++ {
			want, _ := kr.EpochSourceKey(i, epoch)
			got, err := rd.SourceKey(i, epoch)
			if err != nil || got != want {
				t.Fatalf("epoch %d source %d: key mismatch (err=%v)", epoch, i, err)
			}
			wantSS, _ := kr.EpochShare(i, epoch)
			gotSS, err := rd.Share(i, epoch)
			if err != nil || gotSS != wantSS {
				t.Fatalf("epoch %d source %d: share mismatch (err=%v)", epoch, i, err)
			}
		}
	}
	if _, err := rd.SourceKey(9, 1); err == nil {
		t.Fatal("out-of-range source id accepted")
	}
	if _, err := rd.Share(-1, 1); err == nil {
		t.Fatal("negative source id accepted")
	}
}

func TestDeriveRange(t *testing.T) {
	kr, err := NewKeyRing(12)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewRingDerivers(kr)
	ids := []int{3, 0, 7, 11}
	var seen []int
	err = rd.DeriveRange(5, ids, func(id int, kit [Size256]byte, ss [Size1]byte) error {
		seen = append(seen, id)
		wantK, _ := kr.EpochSourceKey(id, 5)
		wantS, _ := kr.EpochShare(id, 5)
		if kit != wantK || ss != wantS {
			t.Fatalf("source %d: batch derivation mismatch", id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(ids) {
		t.Fatalf("visited %v, want %v", seen, ids)
	}
	for i, id := range ids {
		if seen[i] != id {
			t.Fatalf("visit order %v, want %v", seen, ids)
		}
	}
	if err := rd.DeriveRange(5, []int{12}, func(int, [Size256]byte, [Size1]byte) error { return nil }); err == nil {
		t.Fatal("out-of-range id accepted by DeriveRange")
	}
}

// TestDeriverConcurrent hammers one Deriver from many goroutines; run with
// -race this doubles as the data-race check for the shared pad states.
func TestDeriverConcurrent(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, LongTermKeySize)
	d := NewDeriver(key)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				epoch := Epoch(g*1000 + i)
				if d.Epoch256(epoch) != HM256Epoch(key, epoch) {
					errs <- "Epoch256 diverged under concurrency"
					return
				}
				if d.Epoch1(epoch) != HM1Epoch(key, epoch) {
					errs <- "Epoch1 diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestDeriverAllocs is the allocation-regression gate for epoch derivation:
// after construction, serving K_t / k_{i,t} / ss_{i,t} must not touch the
// heap.
func TestDeriverAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	key := bytes.Repeat([]byte{0x17}, LongTermKeySize)
	d := NewDeriver(key)
	var epoch Epoch
	var sink byte
	if n := testing.AllocsPerRun(200, func() {
		epoch++
		k := d.Epoch256(epoch)
		s := d.Epoch1(epoch)
		sink ^= k[0] ^ s[0]
	}); n != 0 {
		t.Fatalf("Deriver epoch derivation allocated %.1f times per run, want 0", n)
	}

	kr, err := NewKeyRing(16)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewRingDerivers(kr)
	ids := []int{0, 3, 5, 9, 15}
	visit := func(id int, kit [Size256]byte, ss [Size1]byte) error {
		sink ^= kit[0] ^ ss[0]
		return nil
	}
	if n := testing.AllocsPerRun(200, func() {
		epoch++
		if err := rd.DeriveRange(epoch, ids, visit); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DeriveRange allocated %.1f times per run, want 0", n)
	}
	_ = sink
}

package prf

import (
	"crypto/sha1"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
)

// This file implements the reusable HMAC derivation engine.
//
// HM1 and HM256 compute HMAC(key, t) with hmac.New on every call, which
// re-runs the underlying hash over both 64-byte key pads — the key schedule —
// and allocates the MAC object, the pad buffers and the digest slice each
// time. For a fixed long-term key the pads never change, so a Deriver
// performs the key schedule exactly once at construction: it absorbs
// key⊕ipad and key⊕opad into fresh hash states and snapshots them via the
// hashes' BinaryMarshaler encoding. Every subsequent derivation restores a
// snapshot (a fixed-size copy, no hashing, no allocation), feeds the 8-byte
// epoch message and finalises into caller-independent buffers — zero heap
// allocations per epoch on the hot path.

// hmacBlockSize is the input block size shared by SHA-1 and SHA-256 (64
// bytes), over which the HMAC pads are formed.
const hmacBlockSize = 64

// padState is one precomputed HMAC over a fixed key: snapshots of the inner
// and outer hash states taken after the pads were absorbed, plus reusable
// output buffers sized for the larger digest.
type padState struct {
	h       hash.Hash // running state, restored from a snapshot per use
	inner   []byte    // marshaled state after Write(key ⊕ ipad)
	outer   []byte    // marshaled state after Write(key ⊕ opad)
	scratch [Size256]byte
	out     [Size256]byte
	size    int
}

func newPadState(newHash func() hash.Hash, key []byte) padState {
	h := newHash()
	if len(key) > hmacBlockSize {
		// RFC 2104: long keys are first hashed down.
		h.Write(key)
		key = h.Sum(nil)
		h.Reset()
	}
	var pad [hmacBlockSize]byte
	copy(pad[:], key)
	for i := range pad {
		pad[i] ^= 0x36
	}
	h.Write(pad[:])
	inner := marshalHash(h)
	h.Reset()
	for i := range pad {
		pad[i] ^= 0x36 ^ 0x5c
	}
	h.Write(pad[:])
	outer := marshalHash(h)
	h.Reset()
	return padState{h: h, inner: inner, outer: outer, size: h.Size()}
}

// mac computes HMAC(key, msg) into s.out[:s.size]. msg must point into
// heap-owned memory (the Deriver's epoch buffer) so no per-call allocation
// occurs when it crosses the hash.Hash interface.
func (s *padState) mac(msg []byte) {
	unmarshalHash(s.h, s.inner)
	s.h.Write(msg)
	digest := s.h.Sum(s.scratch[:0])
	unmarshalHash(s.h, s.outer)
	s.h.Write(digest)
	s.h.Sum(s.out[:0])
}

func marshalHash(h hash.Hash) []byte {
	m, ok := h.(encoding.BinaryMarshaler)
	if !ok {
		panic("prf: hash does not support state snapshots")
	}
	b, err := m.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("prf: snapshotting hash state: %v", err))
	}
	return b
}

func unmarshalHash(h hash.Hash, state []byte) {
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("prf: restoring hash state: %v", err))
	}
}

// Deriver serves the per-epoch PRFs of one long-term key with the HMAC key
// schedule paid once at construction: Epoch256 is HM256(key, t) and Epoch1
// is HM1(key, t), both allocation-free per call. It is safe for concurrent
// use; derivations over the same key serialise on an internal mutex, which
// the schedule engine's worker pool never contends because each worker owns
// a disjoint range of source ids.
type Deriver struct {
	mu   sync.Mutex
	s256 padState
	s1   padState
	ebuf [8]byte
}

// NewDeriver precomputes both HMAC key schedules for key.
func NewDeriver(key []byte) *Deriver {
	return &Deriver{
		s256: newPadState(sha256.New, key),
		s1:   newPadState(sha1.New, key),
	}
}

// Epoch256 computes HM256(key, t) — the key-derivation PRF — reusing the
// precomputed pads.
func (d *Deriver) Epoch256(t Epoch) (out [Size256]byte) {
	d.mu.Lock()
	binary.BigEndian.PutUint64(d.ebuf[:], uint64(t))
	d.s256.mac(d.ebuf[:])
	out = d.s256.out
	d.mu.Unlock()
	return out
}

// Epoch1 computes HM1(key, t) — the secret-share PRF — reusing the
// precomputed pads.
func (d *Deriver) Epoch1(t Epoch) (out [Size1]byte) {
	d.mu.Lock()
	binary.BigEndian.PutUint64(d.ebuf[:], uint64(t))
	d.s1.mac(d.ebuf[:])
	copy(out[:], d.s1.out[:Size1])
	d.mu.Unlock()
	return out
}

// RingDerivers is the querier-side derivation engine: one Deriver per key of
// a KeyRing, built once so every epoch's Θ(N) fan-out skips the HMAC key
// schedules entirely. Distinct source derivers are independent, so the
// schedule engine's workers derive disjoint id chunks concurrently with no
// contention.
type RingDerivers struct {
	global  *Deriver
	sources []*Deriver
}

// NewRingDerivers precomputes the pads for every key in the ring.
func NewRingDerivers(kr *KeyRing) *RingDerivers {
	rd := &RingDerivers{
		global:  NewDeriver(kr.Global),
		sources: make([]*Deriver, kr.N()),
	}
	for i := range rd.sources {
		rd.sources[i] = NewDeriver(kr.Source[i])
	}
	return rd
}

// N returns the number of source derivers.
func (rd *RingDerivers) N() int { return len(rd.sources) }

// GlobalKey derives K_t through the cached global-key pads.
func (rd *RingDerivers) GlobalKey(t Epoch) [Size256]byte {
	return rd.global.Epoch256(t)
}

// SourceKey derives k_{i,t} through source i's cached pads.
func (rd *RingDerivers) SourceKey(i int, t Epoch) ([Size256]byte, error) {
	if i < 0 || i >= len(rd.sources) {
		return [Size256]byte{}, fmt.Errorf("prf: source id %d out of range [0,%d)", i, len(rd.sources))
	}
	return rd.sources[i].Epoch256(t), nil
}

// Share derives ss_{i,t} through source i's cached pads.
func (rd *RingDerivers) Share(i int, t Epoch) ([Size1]byte, error) {
	if i < 0 || i >= len(rd.sources) {
		return [Size1]byte{}, fmt.Errorf("prf: source id %d out of range [0,%d)", i, len(rd.sources))
	}
	return rd.sources[i].Epoch1(t), nil
}

// DeriveRange is the batch API for the schedule engine's worker pool: it
// derives (k_{i,t}, ss_{i,t}) for every id in ids, in order, handing each
// pair to visit without allocating. A visit error aborts the sweep. Calls
// over disjoint id sets may run concurrently.
func (rd *RingDerivers) DeriveRange(t Epoch, ids []int, visit func(id int, kit [Size256]byte, ss [Size1]byte) error) error {
	for _, id := range ids {
		if id < 0 || id >= len(rd.sources) {
			return fmt.Errorf("prf: source id %d out of range [0,%d)", id, len(rd.sources))
		}
		d := rd.sources[id]
		d.mu.Lock()
		binary.BigEndian.PutUint64(d.ebuf[:], uint64(t))
		d.s256.mac(d.ebuf[:])
		kit := d.s256.out
		d.s1.mac(d.ebuf[:])
		var ss [Size1]byte
		copy(ss[:], d.s1.out[:Size1])
		d.mu.Unlock()
		if err := visit(id, kit, ss); err != nil {
			return err
		}
	}
	return nil
}

package prf

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

func TestEpochBytesBigEndian(t *testing.T) {
	b := Epoch(0x0102030405060708).Bytes()
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(b[:], want) {
		t.Fatalf("Epoch.Bytes() = %x", b)
	}
}

// RFC 2202 test case 1 for HMAC-SHA1.
func TestHM1RFC2202(t *testing.T) {
	key := bytes.Repeat([]byte{0x0b}, 20)
	got := HM1(key, []byte("Hi There"))
	want, _ := hex.DecodeString("b617318655057264e28bc0b6fb378c8ef146be00")
	if !bytes.Equal(got[:], want) {
		t.Fatalf("HM1 = %x, want %x", got, want)
	}
}

// RFC 4231 test case 2 for HMAC-SHA256.
func TestHM256RFC4231(t *testing.T) {
	got := HM256([]byte("Jefe"), []byte("what do ya want for nothing?"))
	want, _ := hex.DecodeString(
		"5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
	if !bytes.Equal(got[:], want) {
		t.Fatalf("HM256 = %x, want %x", got, want)
	}
}

func TestEpochPRFsMatchManualHMAC(t *testing.T) {
	key := []byte("some long-term key material.")
	te := Epoch(42)
	msg := te.Bytes()

	m1 := hmac.New(sha1.New, key)
	m1.Write(msg[:])
	got1 := HM1Epoch(key, te)
	if !bytes.Equal(got1[:], m1.Sum(nil)) {
		t.Fatal("HM1Epoch mismatch")
	}

	m256 := hmac.New(sha256.New, key)
	m256.Write(msg[:])
	got256 := HM256Epoch(key, te)
	if !bytes.Equal(got256[:], m256.Sum(nil)) {
		t.Fatal("HM256Epoch mismatch")
	}
}

func TestEpochSeparation(t *testing.T) {
	key := []byte("k")
	if HM1Epoch(key, 1) == HM1Epoch(key, 2) {
		t.Fatal("HM1 identical across epochs")
	}
	if HM256Epoch(key, 1) == HM256Epoch(key, 2) {
		t.Fatal("HM256 identical across epochs")
	}
}

func TestNewLongTermKey(t *testing.T) {
	a, err := NewLongTermKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLongTermKey()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != LongTermKeySize || len(b) != LongTermKeySize {
		t.Fatalf("key sizes %d, %d", len(a), len(b))
	}
	if bytes.Equal(a, b) {
		t.Fatal("two fresh keys identical")
	}
}

func TestNewKeyRing(t *testing.T) {
	kr, err := NewKeyRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if kr.N() != 8 {
		t.Fatalf("N() = %d", kr.N())
	}
	seen := map[string]bool{string(kr.Global): true}
	for i := 0; i < 8; i++ {
		g, s, err := kr.SourceCredentials(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(g, kr.Global) {
			t.Fatal("global key differs per source")
		}
		if seen[string(s)] {
			t.Fatal("duplicate source key")
		}
		seen[string(s)] = true
	}
}

func TestNewKeyRingRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -5} {
		if _, err := NewKeyRing(n); err == nil {
			t.Fatalf("NewKeyRing(%d) accepted", n)
		}
	}
}

func TestKeyRingOutOfRange(t *testing.T) {
	kr, err := NewKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := kr.SourceCredentials(2); err == nil {
		t.Fatal("SourceCredentials(2) accepted")
	}
	if _, err := kr.EpochSourceKey(-1, 0); err == nil {
		t.Fatal("EpochSourceKey(-1) accepted")
	}
	if _, err := kr.EpochShare(99, 0); err == nil {
		t.Fatal("EpochShare(99) accepted")
	}
}

func TestKeyRingDerivationsConsistent(t *testing.T) {
	kr, err := NewKeyRing(3)
	if err != nil {
		t.Fatal(err)
	}
	te := Epoch(7)
	if kr.EpochGlobalKey(te) != HM256Epoch(kr.Global, te) {
		t.Fatal("EpochGlobalKey mismatch")
	}
	for i := 0; i < 3; i++ {
		sk, err := kr.EpochSourceKey(i, te)
		if err != nil {
			t.Fatal(err)
		}
		if sk != HM256Epoch(kr.Source[i], te) {
			t.Fatal("EpochSourceKey mismatch")
		}
		ss, err := kr.EpochShare(i, te)
		if err != nil {
			t.Fatal(err)
		}
		if ss != HM1Epoch(kr.Source[i], te) {
			t.Fatal("EpochShare mismatch")
		}
	}
}

func TestSharesDifferAcrossSources(t *testing.T) {
	kr, err := NewKeyRing(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[Size1]byte]bool{}
	for i := 0; i < 4; i++ {
		ss, err := kr.EpochShare(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[ss] {
			t.Fatal("share collision across sources")
		}
		seen[ss] = true
	}
}

func BenchmarkHM1(b *testing.B) {
	key := make([]byte, LongTermKeySize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HM1Epoch(key, Epoch(i))
	}
}

func BenchmarkHM256(b *testing.B) {
	key := make([]byte, LongTermKeySize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HM256Epoch(key, Epoch(i))
	}
}

func TestNewKeyRingFromKeys(t *testing.T) {
	orig, err := NewKeyRing(3)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewKeyRingFromKeys(orig.Global, orig.Source)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.N() != 3 {
		t.Fatalf("N = %d", rebuilt.N())
	}
	for i := 0; i < 3; i++ {
		a, err := orig.EpochShare(i, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rebuilt.EpochShare(i, 4)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("source %d derivations differ after rebuild", i)
		}
	}
	// The rebuilt ring must not alias the caller's slices.
	orig.Global[0] ^= 0xff
	if rebuilt.EpochGlobalKey(1) == HM256Epoch(orig.Global, 1) {
		t.Fatal("rebuilt ring aliases caller storage")
	}
}

func TestNewKeyRingFromKeysValidation(t *testing.T) {
	if _, err := NewKeyRingFromKeys(nil, [][]byte{{1}}); err == nil {
		t.Fatal("missing global key accepted")
	}
	if _, err := NewKeyRingFromKeys([]byte{1}, nil); err == nil {
		t.Fatal("empty source list accepted")
	}
	if _, err := NewKeyRingFromKeys([]byte{1}, [][]byte{{1}, nil}); err == nil {
		t.Fatal("empty source key accepted")
	}
}

package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestScaleDomain(t *testing.T) {
	lo, hi := Scale100.Domain()
	if lo != 1800 || hi != 5000 {
		t.Fatalf("Scale100 domain = [%d, %d], want [1800, 5000]", lo, hi)
	}
	lo, hi = Scale1.Domain()
	if lo != 18 || hi != 50 {
		t.Fatalf("Scale1 domain = [%d, %d]", lo, hi)
	}
}

func TestScaleString(t *testing.T) {
	if Scale1000.String() != "x1000" {
		t.Fatalf("String = %s", Scale1000.String())
	}
}

func TestPaperScales(t *testing.T) {
	scales := PaperScales()
	if len(scales) != 5 || scales[0] != Scale1 || scales[4] != Scale10000 {
		t.Fatalf("PaperScales = %v", scales)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(0, 1); err == nil {
		t.Fatal("zero sensors accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, err := NewGenerator(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 5; epoch++ {
		ra, rb := a.Step(), b.Step()
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("epoch %d sensor %d: %f vs %f", epoch, i, ra[i], rb[i])
			}
		}
	}
}

func TestReadingsInDomain(t *testing.T) {
	g, err := NewGenerator(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range PaperScales() {
		lo, hi := scale.Domain()
		for epoch := 0; epoch < 10; epoch++ {
			for _, v := range g.Readings(scale) {
				if v < lo || v > hi {
					t.Fatalf("scale %s: reading %d outside [%d, %d]", scale, v, lo, hi)
				}
			}
		}
	}
}

func TestStepPrecisionFourDecimals(t *testing.T) {
	g, err := NewGenerator(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Step() {
		scaled := v * 1e4
		if math.Abs(scaled-math.Round(scaled)) > 1e-6 {
			t.Fatalf("reading %v not at 4-decimal precision", v)
		}
	}
}

func TestStepBounds(t *testing.T) {
	g, err := NewGenerator(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 200; epoch++ {
		for _, v := range g.Step() {
			if v < TempMin || v > TempMax {
				t.Fatalf("reading %f escaped [%f, %f]", v, TempMin, TempMax)
			}
		}
	}
}

func TestReadingsVaryOverTime(t *testing.T) {
	g, err := NewGenerator(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	first := g.Readings(Scale100)[0]
	varies := false
	for epoch := 0; epoch < 20; epoch++ {
		if g.Readings(Scale100)[0] != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("stream is constant")
	}
}

func TestToFloat(t *testing.T) {
	if got := ToFloat(123456, Scale100); got != 1234.56 {
		t.Fatalf("ToFloat = %f", got)
	}
	if got := ToFloat(42, Scale1); got != 42 {
		t.Fatalf("ToFloat = %f", got)
	}
}

func TestUniformReadings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := UniformReadings(1000, Scale100, rng)
	lo, hi := Scale100.Domain()
	var sum float64
	for _, v := range vals {
		if v < lo || v > hi {
			t.Fatalf("uniform reading %d outside [%d, %d]", v, lo, hi)
		}
		sum += float64(v)
	}
	mean := sum / float64(len(vals))
	mid := float64(lo+hi) / 2
	if math.Abs(mean-mid) > 0.1*mid {
		t.Fatalf("uniform mean %f far from midpoint %f", mean, mid)
	}
}

func BenchmarkReadings1024(b *testing.B) {
	g, err := NewGenerator(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Readings(Scale100)
	}
}

const sampleTrace = `2004-03-31 03:38:15.757551 2 1 19.9884 37.0933 45.08 2.69964
2004-03-31 03:38:45.9951 3 1 19.3024 38.4629 45.08 2.68742
2004-02-28 00:59:16.02785 3 2 bad-temp 38.46 45.08 2.68
short line
2004-03-31 03:39:16 4 1 122.153 38.46 45.08 2.68
2004-03-31 03:40:00 5 3 35.5000 40.1 97.2 2.65
`

func TestLoadIntelLab(t *testing.T) {
	tr, err := LoadIntelLab(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	// 3 valid in-range readings; the 122.153 outlier and malformed lines drop.
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	rng := rand.New(rand.NewSource(1))
	vals := tr.Readings(100, Scale100, rng)
	lo, hi := Scale100.Domain()
	for _, v := range vals {
		if v < lo || v > hi {
			t.Fatalf("trace reading %d outside [%d,%d]", v, lo, hi)
		}
	}
}

func TestLoadIntelLabEmpty(t *testing.T) {
	if _, err := LoadIntelLab(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := LoadIntelLab(strings.NewReader("a b c d 999.9 e")); err == nil {
		t.Fatal("all-out-of-range trace accepted")
	}
}

package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Trace holds temperature readings loaded from the real Intel Lab dataset,
// for deployments that have the trace on hand (the paper's actual workload;
// the synthetic Generator is the drop-in substitute). Each experiment draw
// samples uniformly from the retained readings, exactly as the paper's
// sources "generate values v that are randomly drawn from the above
// dataset" (§VI).
type Trace struct {
	temps []float64
}

// LoadIntelLab parses the Intel Lab trace format: whitespace-separated
// lines of
//
//	date time epoch moteid temperature humidity light voltage
//
// Readings outside [TempMin, TempMax] are discarded (the paper restricts
// the range to [18, 50] °C); malformed lines are skipped rather than fatal,
// matching the dataset's known irregularities, but an input yielding no
// usable readings is an error.
func LoadIntelLab(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	tr := &Trace{}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 5 {
			continue
		}
		temp, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			continue
		}
		if temp < TempMin || temp > TempMax {
			continue
		}
		tr.temps = append(tr.temps, temp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(tr.temps) == 0 {
		return nil, errors.New("workload: trace contains no usable temperature readings")
	}
	return tr, nil
}

// Len returns the number of retained readings.
func (tr *Trace) Len() int { return len(tr.temps) }

// Readings draws one epoch of n integer readings under the given scale,
// sampling uniformly from the trace.
func (tr *Trace) Readings(n int, scale Scale, rng *rand.Rand) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(tr.temps[rng.Intn(len(tr.temps))] * float64(scale))
	}
	return out
}

// Package workload generates the sensor readings driving the experiments.
//
// The paper samples real temperature readings from the Intel Lab trace
// (Berkeley testbed): float values with four decimal digits, restricted to
// [18, 50] °C, each source drawing randomly from the dataset. That trace is
// an external download, so — per the reproduction's substitution rule — this
// package synthesises an equivalent stream: per-sensor mean-reverting random
// walks (an Ornstein–Uhlenbeck discretisation) clipped to [18, 50] with
// 4-decimal precision. Every quantity the experiments measure depends only
// on the value *domain* (SIES/CMT are data-independent; SECOA_S costs scale
// with the integer magnitude), so the synthetic stream preserves the
// benchmark behaviour exactly.
//
// Domain scaling follows §VI: each reading is multiplied by a power of ten
// and truncated to an integer, which is how the paper varies the domain
// D = [18,50]×10^k — equivalent to choosing the decimal precision of the
// temperatures.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Temperature bounds of the Intel Lab subset used by the paper (°C).
const (
	TempMin = 18.0
	TempMax = 50.0
)

// Scale is a domain multiplier 10^k, k ∈ {0..4} in the paper's experiments.
type Scale int

// Common scales from Table IV.
const (
	Scale1     Scale = 1
	Scale10    Scale = 10
	Scale100   Scale = 100 // the default domain D = [1800, 5000]
	Scale1000  Scale = 1000
	Scale10000 Scale = 10000
)

// PaperScales lists the domain sweep of Figure 4/6(b).
func PaperScales() []Scale { return []Scale{Scale1, Scale10, Scale100, Scale1000, Scale10000} }

// Domain returns the integer value domain [lo, hi] induced by the scale.
func (s Scale) Domain() (lo, hi uint64) {
	return uint64(TempMin * float64(s)), uint64(TempMax * float64(s))
}

// String formats the scale as in the paper's x-axes ("x1", "x10", ...).
func (s Scale) String() string { return fmt.Sprintf("x%d", int(s)) }

// Generator produces per-sensor temperature streams.
type Generator struct {
	rng   *rand.Rand
	state []float64 // current temperature per sensor
}

// NewGenerator creates a generator for n sensors with a deterministic seed.
// Initial temperatures are uniform over the domain.
func NewGenerator(n int, seed int64) (*Generator, error) {
	if n < 1 {
		return nil, errors.New("workload: need at least one sensor")
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), state: make([]float64, n)}
	for i := range g.state {
		g.state[i] = TempMin + g.rng.Float64()*(TempMax-TempMin)
	}
	return g, nil
}

// N returns the number of sensors.
func (g *Generator) N() int { return len(g.state) }

// Ornstein–Uhlenbeck parameters: readings revert toward the domain middle
// with Gaussian perturbations, mimicking slowly drifting room temperatures.
const (
	ouTheta = 0.05 // mean-reversion rate per epoch
	ouSigma = 0.8  // perturbation standard deviation (°C)
	ouMean  = (TempMin + TempMax) / 2
)

// Step advances every sensor one epoch and returns the float readings,
// rounded to four decimal digits as in the Intel Lab trace.
func (g *Generator) Step() []float64 {
	out := make([]float64, len(g.state))
	for i, cur := range g.state {
		next := cur + ouTheta*(ouMean-cur) + ouSigma*g.rng.NormFloat64()
		if next < TempMin {
			next = TempMin
		}
		if next > TempMax {
			next = TempMax
		}
		g.state[i] = next
		out[i] = math.Round(next*1e4) / 1e4
	}
	return out
}

// Readings returns the epoch's integer readings under the given scale:
// v = trunc(temperature · scale), exactly the paper's domain construction.
func (g *Generator) Readings(scale Scale) []uint64 {
	floats := g.Step()
	out := make([]uint64, len(floats))
	for i, f := range floats {
		out[i] = uint64(f * float64(scale))
	}
	return out
}

// ToFloat converts an integer SUM result back to degrees under the scale,
// as the querier does after extraction ("divides the extracted integer
// result with the respective power of 10", §VI).
func ToFloat(sum uint64, scale Scale) float64 { return float64(sum) / float64(scale) }

// UniformReadings draws one epoch of independent uniform values over the
// scaled domain — the simpler distribution used where stream continuity is
// irrelevant (micro-benchmarks).
func UniformReadings(n int, scale Scale, rng *rand.Rand) []uint64 {
	lo, hi := scale.Domain()
	out := make([]uint64, n)
	for i := range out {
		out[i] = lo + uint64(rng.Int63n(int64(hi-lo+1)))
	}
	return out
}

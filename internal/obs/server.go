package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// ServerConfig wires a registry and tracer into an HTTP endpoint.
type ServerConfig struct {
	Registry *Registry
	Tracer   *Tracer
	// Healthz, when set, decides /healthz: return (false, reason) for a 503.
	// Nil always reports healthy.
	Healthz func() (ok bool, detail string)
	// ProfileContention enables the runtime's mutex and blocking profilers so
	// /debug/pprof/mutex and /debug/pprof/block are actually populated: with
	// the runtime defaults both profiles exist but record nothing. The value
	// is the sampling rate — 1 records every contention event (the useful
	// setting when hunting shard-lock contention), larger values sample 1/N.
	// Zero leaves profiling off. Process-global: the last Serve call wins.
	ProfileContention int
}

// enableContentionProfiling applies the process-global sampling rates.
func enableContentionProfiling(rate int) {
	runtime.SetMutexProfileFraction(rate)
	runtime.SetBlockProfileRate(rate)
}

// NewHandler builds the observability mux:
//
//	/metrics          Prometheus text exposition of the registry
//	/healthz          liveness (200 ok / 503 with detail)
//	/trace/epochs?n=K JSON of the K most recent epoch-lifecycle spans
//	/debug/pprof/*    the stdlib profiles
func NewHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Registry == nil {
			http.Error(w, "no registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		ok, detail := true, "ok"
		if cfg.Healthz != nil {
			ok, detail = cfg.Healthz()
		}
		if !ok {
			http.Error(w, detail, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, detail)
	})
	mux.HandleFunc("/trace/epochs", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Tracer == nil {
			http.Error(w, "no tracer", http.StatusNotFound)
			return
		}
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Tracer.WriteJSON(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9464" or
// "127.0.0.1:0") and serves in a background goroutine until Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.ProfileContention > 0 {
		enableContentionProfiling(cfg.ProfileContention)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewHandler(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

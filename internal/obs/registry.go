// Package obs is the runtime observability layer: a dependency-free metrics
// registry (atomic counters, gauges and bounded histograms with Prometheus
// text exposition), a ring-buffered epoch-lifecycle tracer, and an opt-in
// HTTP server exposing both plus the stdlib pprof profiles.
//
// The registry is the single home for every counter the system maintains —
// transport nodes, the key-schedule engine, forensics, durability and the
// simulation engine all register here, so one scrape answers the paper's
// per-role cost-accounting questions (§VI) without reaching into process
// internals. Counters are uint64 end-to-end: values never pass through int
// and therefore never truncate on 32-bit platforms or wrap at 2^31.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric for the TYPE exposition line.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing uint64. The zero value is usable,
// but counters normally come from Registry.Counter so they expose.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: bounds are set at registration and
// never grow, so the cardinality of an exposition is bounded by construction.
// Observations and the running sum use atomics; Observe is lock-free.
type Histogram struct {
	bounds  []float64       // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// 10µs … 10s, a decade per three buckets.
var DurationBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// series is one exposition line: a full name (base name plus optional
// rendered label set) and a way to read its value(s).
type series struct {
	fullName string
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
	// fn-backed series read an external source at scrape time. cfn for
	// counters (uint64, exact), gfn for gauges (float64).
	cfn   func() uint64
	gfn   func() float64
	order int
}

// family groups every series sharing a base name under one HELP/TYPE pair.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
}

// Registry holds metric families and renders them in Prometheus text format.
// Registration is idempotent per full name: re-registering returns the
// existing collector (for func-backed series, the newest func wins, so a
// restarted component re-binding its gauges observes the live instance).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	byFull   map[string]*series
	nextOrd  int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, byFull: map[string]*series{}}
}

// baseName strips a label set from a full series name.
func baseName(full string) string {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i]
	}
	return full
}

// register binds one series into its family, enforcing kind consistency.
func (r *Registry) register(full, help string, kind Kind, s *series) *series {
	base := baseName(full)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byFull[full]; ok {
		// Idempotent re-registration: func-backed series rebind to the newest
		// source; collector-backed series hand back the existing collector.
		if s.cfn != nil {
			prev.cfn = s.cfn
		}
		if s.gfn != nil {
			prev.gfn = s.gfn
		}
		return prev
	}
	fam, ok := r.families[base]
	if !ok {
		fam = &family{name: base, help: help, kind: kind}
		r.families[base] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", base, kind, fam.kind))
	}
	s.fullName = full
	s.order = r.nextOrd
	r.nextOrd++
	fam.series = append(fam.series, s)
	r.byFull[full] = s
	return s
}

// Counter registers (or returns) the counter named name. The name may carry
// a rendered label set, e.g. `sies_tree_bytes_total{edge="sa"}`.
func (r *Registry) Counter(name, help string) *Counter {
	s := r.register(name, help, KindCounter, &series{counter: &Counter{}})
	return s.counter
}

// Gauge registers (or returns) the gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := r.register(name, help, KindGauge, &series{gauge: &Gauge{}})
	return s.gauge
}

// Histogram registers (or returns) a histogram with the given upper bounds
// (ascending; the +Inf bucket is implicit). Bounds are fixed for the life of
// the registry, which bounds exposition cardinality by construction.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	if prev, ok := r.byFull[name]; ok && prev.hist != nil {
		r.mu.Unlock()
		return prev.hist
	}
	r.mu.Unlock()
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(h.bounds)+1)
	r.register(name, help, KindHistogram, &series{hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for components that already keep their own atomics
// (core.Schedule, durability, forensics). Values stay uint64 end-to-end.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, KindCounter, &series{cfn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, &series{gfn: fn})
}

// value reads a non-histogram series. Counters report exact uint64s.
func (s *series) value() (uint64, float64, bool) {
	switch {
	case s.counter != nil:
		return s.counter.Value(), 0, true
	case s.cfn != nil:
		return s.cfn(), 0, true
	case s.gauge != nil:
		return 0, float64(s.gauge.Value()), false
	case s.gfn != nil:
		return 0, s.gfn(), false
	}
	return 0, 0, false
}

// Snapshot returns every scalar series (and histogram _count/_sum pairs) as
// a flat name → value map — the -metrics-json artifact shape. Counter values
// above 2^53 lose precision here; the text exposition stays exact.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	out := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.series {
			if s.hist != nil {
				out[s.fullName+"_count"] = float64(s.hist.Count())
				out[s.fullName+"_sum"] = s.hist.Sum()
				continue
			}
			if u, g, isCounter := s.value(); isCounter {
				out[s.fullName] = float64(u)
			} else {
				out[s.fullName] = g
			}
		}
	}
	return out
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Canonical epoch-lifecycle stage names, in protocol order. A span need not
// visit every stage: a clean epoch skips reject and forensics, a lost one
// never reaches commit.
const (
	StageBroadcast = "query-broadcast"  // querier disseminated the epoch query
	StageReport    = "reports-received" // the (merged) report frame arrived
	StageFlush     = "flush"            // aggregator forwarded the epoch upstream
	StageVerify    = "verify"           // integrity verification passed
	StageReject    = "reject"           // integrity verification failed
	StageForensics = "forensics"        // localization / verified re-query ran
	StageCommit    = "commit"           // result journaled and emitted
)

// StageMark is one lifecycle stage visit, timed as an offset from span start.
type StageMark struct {
	Stage    string `json:"stage"`
	OffsetUS int64  `json:"offset_us"`
}

// Span is one epoch's lifecycle: when it started, the stages it visited and
// the terminal outcome (full, partial, empty, rejected, recovered, lost).
type Span struct {
	Epoch   uint64      `json:"epoch"`
	Start   time.Time   `json:"start"`
	Stages  []StageMark `json:"stages"`
	Outcome string      `json:"outcome,omitempty"`
	Done    bool        `json:"done"`
}

// maxStagesPerSpan bounds a span's stage list: re-sent frames and repeated
// forensic rounds append marks, and an adversarial stream must not grow a
// span without limit.
const maxStagesPerSpan = 32

// DefaultTraceCapacity is the tracer ring size when NewTracer gets n <= 0.
const DefaultTraceCapacity = 256

// Tracer records epoch lifecycles into a fixed ring: the last capacity epochs
// begun are retained, older ones are overwritten. All methods are safe for
// concurrent use; recording is O(1) and allocation-light, so it can sit on
// the serve hot path.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int            // ring slot the next new span takes
	index map[uint64]int // epoch → ring slot of its live span
	now   func() time.Time
}

// NewTracer returns a tracer retaining the last capacity spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		ring:  make([]Span, 0, capacity),
		index: make(map[uint64]int, capacity),
		now:   time.Now,
	}
}

// span returns the live span for epoch, creating one if needed.
// Caller holds t.mu.
func (t *Tracer) span(epoch uint64) *Span {
	if i, ok := t.index[epoch]; ok && t.ring[i].Epoch == epoch {
		return &t.ring[i]
	}
	s := Span{Epoch: epoch, Start: t.now()}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		t.index[epoch] = len(t.ring) - 1
		return &t.ring[len(t.ring)-1]
	}
	// Overwrite the oldest slot; its epoch's index entry is dropped so a
	// late mark for it opens a fresh span instead of corrupting this one.
	i := t.next
	t.next = (t.next + 1) % cap(t.ring)
	delete(t.index, t.ring[i].Epoch)
	t.ring[i] = s
	t.index[epoch] = i
	return &t.ring[i]
}

// Begin opens (or touches) the span for epoch.
func (t *Tracer) Begin(epoch uint64) {
	t.mu.Lock()
	t.span(epoch)
	t.mu.Unlock()
}

// Mark appends a stage visit to the epoch's span, opening it if absent.
func (t *Tracer) Mark(epoch uint64, stage string) {
	t.mu.Lock()
	s := t.span(epoch)
	if len(s.Stages) < maxStagesPerSpan {
		s.Stages = append(s.Stages, StageMark{
			Stage:    stage,
			OffsetUS: t.now().Sub(s.Start).Microseconds(),
		})
	}
	t.mu.Unlock()
}

// End closes the epoch's span with a terminal outcome. Later marks for the
// same epoch (a re-sent frame after commit) reopen nothing: they land on the
// closed span until the ring recycles it.
func (t *Tracer) End(epoch uint64, outcome string) {
	t.mu.Lock()
	s := t.span(epoch)
	s.Outcome = outcome
	s.Done = true
	t.mu.Unlock()
}

// Recent returns up to n spans, oldest first, ending with the newest. n <= 0
// returns every retained span.
func (t *Tracer) Recent(n int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := len(t.ring)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]Span, 0, n)
	// Ring order: t.next is the oldest slot once the ring has wrapped.
	start := 0
	if len(t.ring) == cap(t.ring) {
		start = t.next
	}
	for i := total - n; i < total; i++ {
		s := t.ring[(start+i)%total]
		s.Stages = append([]StageMark(nil), s.Stages...)
		out = append(out, s)
	}
	return out
}

// WriteJSON renders the n most recent spans as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Recent(n))
}

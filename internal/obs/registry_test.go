package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildFixedRegistry assembles the registry behind the golden exposition
// test: one of each collector kind, labelled series, and func-backed bridges.
func buildFixedRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("sies_epochs_served_total", "epochs evaluated and verified")
	c.Add(41)
	c.Inc()
	r.Counter("sies_epochs_rejected_total", "epochs failing integrity or decode")
	r.Counter(`sies_tree_bytes_total{edge="sa"}`, "bytes per edge class")
	r.Counter(`sies_tree_bytes_total{edge="aq"}`, "bytes per edge class").Add(1 << 40)
	g := r.Gauge("sies_quarantine_confirmed", "confirmed culprits right now")
	g.Set(3)
	g.Add(-1)
	r.GaugeFunc("sies_results_pending", "results waiting on the channel", func() float64 { return 7 })
	r.CounterFunc("sies_schedule_derivations_total", "per-source derivations", func() uint64 {
		return math.MaxUint64 // exactness check: must print all 20 digits
	})
	h := r.Histogram("sies_epoch_eval_seconds", "per-epoch evaluation latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0004, 0.002, 0.02, 0.02, 5} {
		h.Observe(v)
	}
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestCounterExactUint64(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("big_total", "")
	c.Add(math.MaxUint64 - 1)
	c.Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "big_total 18446744073709551615\n") {
		t.Errorf("uint64 counter truncated:\n%s", buf.String())
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Add(5)
	if b.Value() != 5 {
		t.Fatal("counters diverged")
	}

	// Func re-registration rebinds to the newest source.
	r.GaugeFunc("y", "", func() float64 { return 1 })
	r.GaugeFunc("y", "", func() float64 { return 2 })
	if v := r.Snapshot()["y"]; v != 2 {
		t.Fatalf("rebound gauge func reads %v, want 2", v)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m2", "")
	r.Gauge(`m{l="v"}`, "") // same family as the counter m
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 3} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Sum(); got != 6 {
		t.Fatalf("sum %v", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="2"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", DurationBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				r.Gauge("g", "").Set(int64(j))
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for j := 0; j < 50; j++ {
				buf.Reset()
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count %d, want 8000", h.Count())
	}
}

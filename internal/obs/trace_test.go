package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fixedClock steps a fake clock by step on every reading.
type fixedClock struct {
	mu   sync.Mutex
	at   time.Time
	step time.Duration
}

func (c *fixedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at = c.at.Add(c.step)
	return c.at
}

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(8)
	clk := &fixedClock{at: time.Unix(1000, 0), step: time.Millisecond}
	tr.now = clk.now

	tr.Begin(1)
	tr.Mark(1, StageReport)
	tr.Mark(1, StageVerify)
	tr.Mark(1, StageCommit)
	tr.End(1, "full")

	spans := tr.Recent(0)
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	s := spans[0]
	if s.Epoch != 1 || !s.Done || s.Outcome != "full" {
		t.Fatalf("span %+v", s)
	}
	if len(s.Stages) != 3 || s.Stages[0].Stage != StageReport || s.Stages[2].Stage != StageCommit {
		t.Fatalf("stages %+v", s.Stages)
	}
	// The fake clock ticks 1ms per reading, so offsets are strictly rising.
	if s.Stages[0].OffsetUS <= 0 || s.Stages[1].OffsetUS <= s.Stages[0].OffsetUS {
		t.Fatalf("offsets not increasing: %+v", s.Stages)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for e := uint64(1); e <= 10; e++ {
		tr.Mark(e, StageReport)
		tr.End(e, "full")
	}
	spans := tr.Recent(0)
	if len(spans) != 4 {
		t.Fatalf("%d spans retained, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(7 + i); s.Epoch != want {
			t.Fatalf("span %d is epoch %d, want %d (oldest-first)", i, s.Epoch, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].Epoch != 10 {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestTracerStageBound(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 10*maxStagesPerSpan; i++ {
		tr.Mark(1, StageForensics)
	}
	if n := len(tr.Recent(1)[0].Stages); n != maxStagesPerSpan {
		t.Fatalf("span grew to %d stages, want cap %d", n, maxStagesPerSpan)
	}
}

func TestTracerJSON(t *testing.T) {
	tr := NewTracer(4)
	tr.Mark(7, StageReport)
	tr.End(7, "partial")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, 10); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Epoch != 7 || spans[0].Outcome != "partial" {
		t.Fatalf("decoded %+v", spans)
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for e := uint64(1); e <= 200; e++ {
				tr.Mark(e, StageReport)
				tr.Mark(e, StageVerify)
				tr.End(e, "full")
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Recent(16)
			}
		}()
	}
	wg.Wait()
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series within a family in
// registration order, one HELP/TYPE pair per family. Counters print exact
// uint64 decimals; gauges and histogram sums print via strconv.FormatFloat.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		series := append([]*series(nil), f.series...)
		sort.Slice(series, func(i, j int) bool { return series[i].order < series[j].order })
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			if s.hist != nil {
				writeHistogram(&b, s.fullName, s.hist)
				continue
			}
			if u, g, isCounter := s.value(); isCounter {
				fmt.Fprintf(&b, "%s %s\n", s.fullName, strconv.FormatUint(u, 10))
			} else {
				fmt.Fprintf(&b, "%s %s\n", s.fullName, formatFloat(g))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the cumulative bucket lines plus _sum and _count.
func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	base, labels := splitLabels(name)
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", base, labels, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", base, wrapLabels(labels), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", base, wrapLabels(labels), h.Count())
}

// splitLabels separates `name{a="b"}` into base name and `a="b",` (trailing
// comma ready for the le label), or ("name", "") without labels.
func splitLabels(full string) (base, labels string) {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return full, ""
	}
	inner := strings.TrimSuffix(full[i+1:], "}")
	if inner == "" {
		return full[:i], ""
	}
	return full[:i], inner + ","
}

// wrapLabels re-wraps a trailing-comma label fragment into `{a="b"}`.
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

// formatFloat renders a float the way Prometheus clients expect.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes newlines and backslashes in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

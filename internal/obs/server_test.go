package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sies_epochs_served_total", "served").Add(9)
	tr := NewTracer(8)
	tr.Mark(3, StageReport)
	tr.End(3, "full")

	healthy := true
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Registry: reg,
		Tracer:   tr,
		Healthz: func() (bool, string) {
			if healthy {
				return true, "ok"
			}
			return false, "degraded: journal errors"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "sies_epochs_served_total 9\n") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body = get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	healthy = false
	if code, body = get(t, base+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("/healthz degraded: %d %q", code, body)
	}

	code, body = get(t, base+"/trace/epochs?n=5")
	if code != 200 {
		t.Fatalf("/trace/epochs: %d", code)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Epoch != 3 {
		t.Fatalf("spans %+v", spans)
	}
	if code, _ = get(t, base+"/trace/epochs?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n accepted: %d", code)
	}

	if code, body = get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, _ = get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

func TestServerWithoutTracer(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/trace/epochs"); code != http.StatusNotFound {
		t.Fatalf("tracerless /trace/epochs: %d", code)
	}
	if code, _ := get(t, "http://"+srv.Addr()+"/healthz"); code != 200 {
		t.Fatalf("default healthz: %d", code)
	}
}

// Durable node state: the transport nodes' crash-recovery layer over
// internal/durable.
//
// A querier or aggregator given a state directory journals its epoch
// lifecycle — contributions accepted, epochs committed, quarantine verdicts —
// and checkpoints the fold of that journal into an atomic snapshot. Restart
// recovery is snapshot ⊕ journal replay, and restores the exact pre-crash
// epoch frontier:
//
//   - a committed epoch is never re-answered: the querier re-acks the stored
//     result instead of re-evaluating, the aggregator never re-opens it;
//   - a contribution is never double-counted: re-sent reports land in the
//     same child slot (overwrite dedup), re-flushed epochs dedup at the
//     querier's committed window;
//   - confirmed culprits stay quarantined: the registry snapshot rides in
//     the journal (on every new verdict) and the checkpoint.
//
// Write ordering encodes the consistency contract. The querier journals a
// commit record (fsynced) before emitting the result. The aggregator writes
// upstream first and journals the commit after: a crash between the two
// re-flushes the epoch on restart — at-least-once delivery — and the
// querier's committed window turns that into exactly-once commit. Journal
// replay is idempotent, so the checkpoint's two steps (snapshot, then journal
// reset) need no atomicity across the pair: a crash between them merely
// replays records the snapshot already covers.
//
// What is deliberately NOT persisted: quarantine decay ticks between
// checkpoints (a restart can only lengthen a quarantine, never shorten it —
// the safe direction) and the schedule's cached EpochStates (pure functions
// of the key ring, cheaper to re-derive than to validate).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/durable"
	"github.com/sies/sies/internal/prf"
)

// stateVersion is the snapshot format version both node roles write.
const stateVersion = 1

// Journal record types.
const (
	recQuerierCommit uint8 = 1 // epoch u64, kind u8, sum u64, failed ids
	recQuarantine    uint8 = 2 // core.Quarantine snapshot blob
	recAggContrib    uint8 = 3 // epoch u64, kind u8, [psr], covers ids, failed ids
	recAggCommit     uint8 = 4 // epoch u64
)

// Epoch-outcome kinds carried in querier commit records.
const (
	kindFull uint8 = iota
	kindPartial
	kindEmpty
	kindRejected
)

// Default sizing for the durable bookkeeping windows.
const (
	// DefaultCheckpointEvery is how many committed epochs elapse between
	// snapshot checkpoints.
	DefaultCheckpointEvery = 64
	// DefaultMissedCap bounds the per-source missed-epoch counters in Health:
	// enough to profile any plausible deployment's flapping set, while a
	// hostile or churning id space cannot grow the map without limit.
	DefaultMissedCap = 4096
	// DefaultCommittedCap is the committed-epoch dedup window. Duplicate
	// suppression beyond it is best-effort, which the protocol tolerates —
	// a re-evaluated epoch yields the same verified result.
	DefaultCommittedCap = 1 << 16
)

// DurabilityStats surfaces the crash-recovery bookkeeping through Health and
// the soak artifacts.
type DurabilityStats struct {
	Enabled         bool   `json:"enabled"`
	Commits         uint64 `json:"commits"`           // commit records appended this run
	Checkpoints     uint64 `json:"checkpoints"`       // snapshots written this run
	JournalErrors   uint64 `json:"journal_errors"`    // appends/checkpoints that failed (durability degraded)
	ReplayedRecords int    `json:"replayed_records"`  // journal records recovered at boot
	ReplayedFromWAL uint64 `json:"replayed_frontier"` // epoch frontier restored at boot
	TornBytes       int64  `json:"torn_bytes"`        // torn-tail bytes truncated at boot
	DedupHits       uint64 `json:"dedup_hits"`        // frames for already-committed epochs dropped
}

// durCounters holds the run-time durability counters as atomics, so stats
// snapshots never contend with the commit path and metric scrapes never take
// a node lock. The boot-time fields (ReplayedRecords, TornBytes, frontier)
// are written once before the node serves and live in the boot snapshot.
type durCounters struct {
	commits       atomic.Uint64
	checkpoints   atomic.Uint64
	journalErrors atomic.Uint64
	dedupHits     atomic.Uint64
}

// snapshot merges the live counters over the boot-time baseline.
func (c *durCounters) snapshot(boot DurabilityStats) DurabilityStats {
	boot.Commits = c.commits.Load()
	boot.Checkpoints = c.checkpoints.Load()
	boot.JournalErrors = c.journalErrors.Load()
	boot.DedupHits = c.dedupHits.Load()
	return boot
}

// ackInfo is the remembered outcome of a committed epoch, replayed as the
// result ack when the root re-sends that epoch.
type ackInfo struct {
	sum uint64
	ok  bool
}

// appendIDs writes a u32 count followed by u32 ids.
func appendIDs(b []byte, ids []int) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = binary.BigEndian.AppendUint32(b, uint32(id))
	}
	return b
}

// errBadRecord reports a malformed journal or snapshot payload. Replay treats
// it as corruption: recovery stops, the node starts from what was intact.
var errBadRecord = errors.New("transport: malformed durable record")

// cursor is a bounds-checked reader over record/snapshot payloads.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil || len(c.b) < 1 {
		c.err = errBadRecord
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.err = errBadRecord
		return 0
	}
	v := binary.BigEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.err = errBadRecord
		return 0
	}
	v := binary.BigEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cursor) ids() []int {
	n := c.u32()
	if c.err != nil || uint64(n)*4 > uint64(len(c.b)) {
		c.err = errBadRecord
		return nil
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = int(c.u32())
	}
	return ids
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || len(c.b) < n {
		c.err = errBadRecord
		return nil
	}
	v := c.b[:n:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) blob() []byte {
	n := c.u32()
	return c.bytes(int(n))
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errBadRecord, len(c.b))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Querier durable state

// querierState is the durable side of a QuerierNode. All mutation happens on
// the serve goroutine under qn.mu; the journal has its own lock.
type querierState struct {
	store           *durable.Store
	checkpointEvery int
	sinceCheckpoint int
	boot            DurabilityStats // boot-time fields, fixed before serving
	ctr             durCounters
	quarBlob        []byte // restored registry, applied by EnableForensics
}

// encodeQuerierCommit frames one epoch outcome.
func encodeQuerierCommit(t prf.Epoch, kind uint8, sum uint64, failed []int) []byte {
	b := binary.BigEndian.AppendUint64(nil, uint64(t))
	b = append(b, kind)
	b = binary.BigEndian.AppendUint64(b, sum)
	return appendIDs(b, failed)
}

func decodeQuerierCommit(p []byte) (t prf.Epoch, kind uint8, sum uint64, failed []int, err error) {
	c := &cursor{b: p}
	t = prf.Epoch(c.u64())
	kind = c.u8()
	sum = c.u64()
	failed = c.ids()
	return t, kind, sum, failed, c.done()
}

// querierSnapshot encodes the full recoverable querier state under qn.mu.
// The health counters read from the obs registry's atomics; the wire order
// (epochs, full, partial, empty, rejected, root-reconnects) is the snapshot
// format and must not change.
func (qn *QuerierNode) querierSnapshot() []byte {
	b := binary.BigEndian.AppendUint64(nil, qn.lastEval)
	for _, v := range []uint64{
		qn.obs.served.Value(), qn.obs.full.Value(), qn.obs.partial.Value(),
		qn.obs.empty.Value(), qn.obs.rejected.Value(), qn.obs.rootReconnects.Value(),
	} {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(qn.missed.len()))
	qn.missed.each(func(id int, n uint64) {
		b = binary.BigEndian.AppendUint32(b, uint32(id))
		b = binary.BigEndian.AppendUint64(b, n)
	})
	b = binary.BigEndian.AppendUint32(b, uint32(qn.committed.len()))
	qn.committed.each(func(epoch uint64, ack ackInfo) {
		b = binary.BigEndian.AppendUint64(b, epoch)
		b = binary.BigEndian.AppendUint64(b, ack.sum)
		var ok uint8
		if ack.ok {
			ok = 1
		}
		b = append(b, ok)
	})
	sched := qn.sched.Snapshot()
	b = binary.BigEndian.AppendUint32(b, uint32(len(sched)))
	b = append(b, sched...)
	quar := qn.quarantineSnapshot()
	b = binary.BigEndian.AppendUint32(b, uint32(len(quar)))
	return append(b, quar...)
}

// quarantineSnapshot returns the live registry's snapshot, or the restored
// blob when forensics has not been enabled (yet) this run — a node restarted
// without forensics must still carry the registry forward.
func (qn *QuerierNode) quarantineSnapshot() []byte {
	if qn.forensics != nil {
		return qn.forensics.quarantine.Snapshot()
	}
	if qn.state != nil {
		return qn.state.quarBlob
	}
	return nil
}

// restoreQuerierSnapshot applies a checkpoint payload. Called once from the
// constructor, before any connection is accepted.
func (qn *QuerierNode) restoreQuerierSnapshot(p []byte) error {
	c := &cursor{b: p}
	qn.lastEval = c.u64()
	// Counters restore by adding into the freshly zeroed obs counters — the
	// registry is the only store, there is no struct copy to assign.
	qn.obs.served.Add(c.u64())
	qn.obs.full.Add(c.u64())
	qn.obs.partial.Add(c.u64())
	qn.obs.empty.Add(c.u64())
	qn.obs.rejected.Add(c.u64())
	qn.obs.rootReconnects.Add(c.u64())
	nm := c.u32()
	for i := uint32(0); i < nm && c.err == nil; i++ {
		id := int(c.u32())
		qn.missed.put(id, c.u64())
	}
	nc := c.u32()
	for i := uint32(0); i < nc && c.err == nil; i++ {
		epoch := c.u64()
		sum := c.u64()
		ok := c.u8() == 1
		qn.committed.put(epoch, ackInfo{sum: sum, ok: ok})
	}
	schedBlob := c.blob()
	quarBlob := c.blob()
	if err := c.done(); err != nil {
		return err
	}
	if len(schedBlob) > 0 {
		if err := qn.sched.Restore(schedBlob); err != nil {
			return err
		}
	}
	if len(quarBlob) > 0 {
		qn.state.quarBlob = append([]byte(nil), quarBlob...)
	}
	return nil
}

// openQuerierState loads the state directory and replays its journal into
// the (freshly constructed, not yet serving) node.
func (qn *QuerierNode) openQuerierState(dir string, checkpointEvery int) error {
	store, recs, err := durable.Open(dir)
	if err != nil {
		return fmt.Errorf("transport: opening querier state: %w", err)
	}
	if checkpointEvery <= 0 {
		checkpointEvery = DefaultCheckpointEvery
	}
	qn.state = &querierState{store: store, checkpointEvery: checkpointEvery}
	qn.state.boot.Enabled = true
	qn.state.boot.ReplayedRecords = len(recs)
	qn.state.boot.TornBytes = store.Journal().TruncatedBytes()

	version, payload, err := store.LoadSnapshot()
	switch {
	case errors.Is(err, durable.ErrNoSnapshot):
	case err != nil:
		store.Close()
		return fmt.Errorf("transport: querier snapshot: %w", err)
	case version != stateVersion:
		store.Close()
		return fmt.Errorf("transport: querier snapshot version %d, want %d", version, stateVersion)
	default:
		if err := qn.restoreQuerierSnapshot(payload); err != nil {
			store.Close()
			return fmt.Errorf("transport: querier snapshot: %w", err)
		}
	}

	// Journal replay: re-apply commits newer than the snapshot. Records the
	// snapshot already covers hit the committed window and fall out as no-ops
	// (the torn-checkpoint case).
	for _, rec := range recs {
		switch rec.Type {
		case recQuerierCommit:
			t, kind, sum, failed, err := decodeQuerierCommit(rec.Payload)
			if err != nil {
				store.Close()
				return fmt.Errorf("transport: querier journal: %w", err)
			}
			if qn.committed.has(uint64(t)) {
				continue
			}
			qn.committed.put(uint64(t), ackInfo{sum: sum, ok: kind <= kindPartial})
			if uint64(t) > qn.lastEval {
				qn.lastEval = uint64(t)
			}
			switch kind {
			case kindFull:
				qn.obs.served.Inc()
				qn.obs.full.Inc()
			case kindPartial:
				qn.obs.served.Inc()
				qn.obs.partial.Inc()
			case kindEmpty:
				qn.obs.empty.Inc()
			default:
				qn.obs.rejected.Inc()
			}
			if kind != kindRejected {
				for _, id := range failed {
					qn.bumpMissed(id)
				}
			}
		case recQuarantine:
			qn.state.quarBlob = append([]byte(nil), rec.Payload...)
		}
	}
	qn.state.boot.ReplayedFromWAL = qn.lastEval
	return nil
}

// bumpMissed increments one source's missed-epoch counter in the bounded map.
// Sources that departed gracefully (a leave notice reconciled into the tree
// view) are expected to be absent, so their counters stop accruing.
func (qn *QuerierNode) bumpMissed(id int) {
	if qn.tree.departed(id) {
		return
	}
	n, _ := qn.missed.get(id)
	qn.missed.put(id, n+1)
}

// commitDurable journals one epoch outcome and checkpoints on cadence.
// Called under qn.mu from record(); the fsync rides the append (SyncEvery 1),
// so the commit is stable before the result is emitted or acked.
func (qn *QuerierNode) commitDurable(res EpochResult, kind uint8) {
	st := qn.state
	if st == nil || qn.crashed {
		return
	}
	rec := durable.Record{
		Type:    recQuerierCommit,
		Payload: encodeQuerierCommit(res.Epoch, kind, res.Sum, res.Failed),
	}
	if err := st.store.Journal().Append(rec); err != nil {
		st.ctr.journalErrors.Add(1)
		return
	}
	st.ctr.commits.Add(1)
	st.sinceCheckpoint++
	if st.sinceCheckpoint >= st.checkpointEvery {
		if err := st.store.Checkpoint(stateVersion, qn.querierSnapshot()); err != nil {
			st.ctr.journalErrors.Add(1)
			return
		}
		st.sinceCheckpoint = 0
		st.ctr.checkpoints.Add(1)
	}
}

// commitDurableNoSync journals one epoch outcome without waiting for the
// fsync, returning the journal offset the caller must SyncTo before the
// result leaves the node — the group-commit half of the pipelined path.
// Returns 0 when there is nothing left to sync: no state directory, a failed
// append (counted, durability degraded), or a checkpoint that just folded the
// record into a durable snapshot. Called under qn.mu.
func (qn *QuerierNode) commitDurableNoSync(res EpochResult, kind uint8) int64 {
	st := qn.state
	if st == nil || qn.crashed {
		return 0
	}
	rec := durable.Record{
		Type:    recQuerierCommit,
		Payload: encodeQuerierCommit(res.Epoch, kind, res.Sum, res.Failed),
	}
	off, err := st.store.Journal().AppendNoSync(rec)
	if err != nil {
		st.ctr.journalErrors.Add(1)
		return 0
	}
	st.ctr.commits.Add(1)
	st.sinceCheckpoint++
	if st.sinceCheckpoint >= st.checkpointEvery {
		if err := st.store.Checkpoint(stateVersion, qn.querierSnapshot()); err != nil {
			st.ctr.journalErrors.Add(1)
			return off
		}
		st.sinceCheckpoint = 0
		st.ctr.checkpoints.Add(1)
		// The snapshot covers this record (its committed.put happened before
		// the snapshot was taken) and is durably renamed into place: nothing
		// left for SyncTo to do.
		return 0
	}
	return off
}

// persistQuarantine journals the registry after a new verdict so confirmed
// culprits survive a crash that beats the next checkpoint.
func (qn *QuerierNode) persistQuarantine() {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	st := qn.state
	if st == nil || qn.forensics == nil || qn.crashed {
		return
	}
	blob := qn.forensics.quarantine.Snapshot()
	st.quarBlob = blob
	if err := st.store.Journal().Append(durable.Record{Type: recQuarantine, Payload: blob}); err != nil {
		st.ctr.journalErrors.Add(1)
	}
}

// committedAck returns the stored ack when t was already committed — the
// re-answer suppression path.
func (qn *QuerierNode) committedAck(t prf.Epoch) (ackInfo, bool) {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	ack, ok := qn.committed.get(uint64(t))
	if ok && qn.state != nil {
		qn.state.ctr.dedupHits.Add(1)
	}
	return ack, ok
}

// closeState syncs and closes the durable store when Run winds down.
func (qn *QuerierNode) closeState() {
	qn.mu.Lock()
	st := qn.state
	qn.mu.Unlock()
	if st != nil {
		st.store.Close()
	}
}

// DurabilityStats snapshots the crash-recovery counters (zero value when the
// node runs without a state directory). Lock-free: the state pointer is fixed
// after construction and the run-time counters are atomics.
func (qn *QuerierNode) DurabilityStats() DurabilityStats {
	if qn.state == nil {
		return DurabilityStats{}
	}
	return qn.state.ctr.snapshot(qn.state.boot)
}

// ---------------------------------------------------------------------------
// Aggregator durable state

// aggState is the durable side of an AggregatorNode. Construction-time replay
// happens before Run starts; at run time the merge workers append and commit
// concurrently — the journal is internally locked, and the checkpoint cadence
// rides its own small mutex.
type aggState struct {
	store           *durable.Store
	checkpointEvery int
	ckptMu          sync.Mutex // guards sinceCheckpoint and snapshot building
	sinceCheckpoint int
	boot            DurabilityStats // boot-time fields, fixed before serving
	ctr             durCounters
	// recovered holds journal-replayed contributions of still-open epochs,
	// keyed by epoch then by the child's coverage key. Run folds them into
	// its pending map once the child slots exist.
	recovered map[prf.Epoch]map[string]report
}

// encodeAggContrib frames one child contribution.
func encodeAggContrib(t prf.Epoch, covers []int, psr *core.PSR, failed []int) []byte {
	b := binary.BigEndian.AppendUint64(nil, uint64(t))
	if psr != nil {
		b = append(b, 0)
		wire := psr.Bytes()
		b = append(b, wire[:]...)
	} else {
		b = append(b, 1)
	}
	b = appendIDs(b, covers)
	return appendIDs(b, failed)
}

func (a *AggregatorNode) decodeAggContrib(p []byte) (t prf.Epoch, covers []int, psr *core.PSR, failed []int, err error) {
	c := &cursor{b: p}
	t = prf.Epoch(c.u64())
	kind := c.u8()
	if kind == 0 {
		raw := c.bytes(core.PSRSize)
		if c.err == nil {
			parsed, perr := core.ParsePSR(raw, a.field)
			if perr != nil {
				return 0, nil, nil, nil, perr
			}
			psr = &parsed
		}
	}
	covers = c.ids()
	failed = c.ids()
	return t, covers, psr, failed, c.done()
}

// aggSnapshot encodes the flush frontier. Pending contributions stay in the
// journal (checkpointing re-appends them after the reset).
func (a *AggregatorNode) aggSnapshot() []byte {
	b := binary.BigEndian.AppendUint64(nil, a.lastFlushed.Load())
	flushed := a.table.flushedEpochs()
	b = binary.BigEndian.AppendUint32(b, uint32(len(flushed)))
	for _, epoch := range flushed {
		b = binary.BigEndian.AppendUint64(b, epoch)
	}
	return b
}

func (a *AggregatorNode) restoreAggSnapshot(p []byte) error {
	c := &cursor{b: p}
	a.lastFlushed.Store(c.u64())
	n := c.u32()
	for i := uint32(0); i < n && c.err == nil; i++ {
		a.table.markFlushed(c.u64())
	}
	return c.done()
}

// openAggState loads the state directory and replays the journal into the
// not-yet-listening node.
func (a *AggregatorNode) openAggState(dir string, checkpointEvery int) error {
	store, recs, err := durable.Open(dir)
	if err != nil {
		return fmt.Errorf("transport: opening aggregator state: %w", err)
	}
	if checkpointEvery <= 0 {
		checkpointEvery = DefaultCheckpointEvery
	}
	a.state = &aggState{
		store:           store,
		checkpointEvery: checkpointEvery,
		recovered:       map[prf.Epoch]map[string]report{},
	}
	a.state.boot.Enabled = true
	a.state.boot.ReplayedRecords = len(recs)
	a.state.boot.TornBytes = store.Journal().TruncatedBytes()
	// Contributions are recoverable from children's re-sends; only commit
	// records need their own fsync (flush issues it explicitly).
	store.Journal().SyncEvery = 1 << 30

	version, payload, err := store.LoadSnapshot()
	switch {
	case errors.Is(err, durable.ErrNoSnapshot):
	case err != nil:
		store.Close()
		return fmt.Errorf("transport: aggregator snapshot: %w", err)
	case version != stateVersion:
		store.Close()
		return fmt.Errorf("transport: aggregator snapshot version %d, want %d", version, stateVersion)
	default:
		if err := a.restoreAggSnapshot(payload); err != nil {
			store.Close()
			return fmt.Errorf("transport: aggregator snapshot: %w", err)
		}
	}

	for _, rec := range recs {
		switch rec.Type {
		case recAggContrib:
			t, covers, psr, failed, err := a.decodeAggContrib(rec.Payload)
			if err != nil {
				store.Close()
				return fmt.Errorf("transport: aggregator journal: %w", err)
			}
			if a.table.hasFlushed(uint64(t)) {
				continue // already settled; a torn checkpoint's leftover
			}
			byKey := a.state.recovered[t]
			if byKey == nil {
				byKey = map[string]report{}
				a.state.recovered[t] = byKey
			}
			byKey[coversKey(covers)] = report{epoch: t, psr: psr, failed: failed, covers: covers}
		case recAggCommit:
			c := &cursor{b: rec.Payload}
			t := c.u64()
			if err := c.done(); err != nil {
				store.Close()
				return fmt.Errorf("transport: aggregator journal: %w", err)
			}
			a.table.markFlushed(t)
			if t > a.lastFlushed.Load() {
				a.lastFlushed.Store(t)
			}
			delete(a.state.recovered, prf.Epoch(t))
		}
	}
	a.state.boot.ReplayedFromWAL = a.lastFlushed.Load()
	return nil
}

// journalErr counts a failed durable write (durability degraded, node keeps
// serving). Atomic — no lock needed.
func (a *AggregatorNode) journalErr() {
	a.state.ctr.journalErrors.Add(1)
}

// journalContribution records one accepted child report before it enters the
// pending epoch. Unsynced: a lost contribution degrades to the pre-durability
// behaviour (the child's subtree reports as failed), never to a double count.
func (a *AggregatorNode) journalContribution(rep report, covers []int) {
	st := a.state
	if st == nil || a.isCrashed() {
		return
	}
	rec := durable.Record{Type: recAggContrib, Payload: encodeAggContrib(rep.epoch, covers, rep.psr, rep.failed)}
	if err := st.store.Journal().Append(rec); err != nil {
		a.journalErr()
	}
}

// commitFlush journals an epoch commit (fsynced) after its upstream write,
// and checkpoints on cadence, re-journaling contributions of still-open
// epochs so the reset cannot orphan them. Called concurrently by the merge
// workers: the journal serialises appends internally, and ckptMu makes the
// cadence check + snapshot build atomic. A contribution appended between the
// snapshot build and the journal reset can be lost to the reset — that epoch
// re-flushes after a restart from the children's re-sends, the documented
// at-least-once path the querier's committed window dedups.
func (a *AggregatorNode) commitFlush(t prf.Epoch) {
	st := a.state
	if st == nil || a.isCrashed() {
		return
	}
	rec := durable.Record{Type: recAggCommit, Payload: binary.BigEndian.AppendUint64(nil, uint64(t))}
	err := st.store.Journal().Append(rec)
	if err == nil {
		err = st.store.Journal().Sync()
	}
	if err != nil {
		a.journalErr()
		return
	}
	st.ctr.commits.Add(1)
	st.ckptMu.Lock()
	st.sinceCheckpoint++
	if st.sinceCheckpoint < st.checkpointEvery {
		st.ckptMu.Unlock()
		return
	}
	st.sinceCheckpoint = 0
	payload := a.aggSnapshot()
	st.ckptMu.Unlock()
	if err := st.store.Checkpoint(stateVersion, payload); err != nil {
		a.journalErr()
		return
	}
	st.ctr.checkpoints.Add(1)
	a.table.eachReport(func(rep report) {
		// The report's own acceptance-time coverage snapshot, not the slot's
		// current claim — a steal between acceptance and checkpoint must not
		// rewrite what this PSR vouches for.
		a.journalContribution(rep, rep.covers)
	})
	if err := st.store.Journal().Sync(); err != nil {
		a.journalErr()
	}
}

// DurabilityStats snapshots the crash-recovery counters (zero value when the
// node runs without a state directory). Lock-free: the state pointer is fixed
// after construction and the run-time counters are atomics.
func (a *AggregatorNode) DurabilityStats() DurabilityStats {
	if a.state == nil {
		return DurabilityStats{}
	}
	return a.state.ctr.snapshot(a.state.boot)
}

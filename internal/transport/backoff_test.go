package transport

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBackoffSeededDeterminism pins the reproducibility contract: two
// Backoffs defaulted from the same Seed emit identical delay sequences, and
// different seeds diverge. Chaos runs lean on this to replay fault schedules.
func TestBackoffSeededDeterminism(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		b := Backoff{Seed: seed}.withDefaults()
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = b.Delay(i % 8)
		}
		return out
	}
	a, b := delays(42), delays(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := delays(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical jitter sequences")
	}
}

// TestBackoffDelayBounds checks the jitter window and the per-attempt cap.
func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Initial: 100 * time.Millisecond, Max: time.Second, Jitter: 0.2, Seed: 7}.withDefaults()
	for attempt := 0; attempt < 12; attempt++ {
		d := b.Delay(attempt)
		if d < 0 || d > time.Second {
			t.Fatalf("attempt %d: delay %v outside [0, max]", attempt, d)
		}
	}
	// Attempt 0 stays within ±20% of Initial.
	for i := 0; i < 100; i++ {
		d := b.Delay(0)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("attempt 0 delay %v outside jitter window", d)
		}
	}
}

// TestBackoffExhaustedAttemptBudget pins the attempt-budget contract: with
// MaxAttempts set, the budget trips on the configured attempt count no matter
// how little wall-clock time has passed.
func TestBackoffExhaustedAttemptBudget(t *testing.T) {
	b := Backoff{MaxAttempts: 3, MaxElapsed: time.Hour}.withDefaults()
	start := time.Now()
	for attempts := 0; attempts < 3; attempts++ {
		if b.Exhausted(start, attempts) {
			t.Fatalf("budget tripped at %d attempts, cap is 3", attempts)
		}
	}
	if !b.Exhausted(start, 3) {
		t.Fatal("budget must trip at MaxAttempts")
	}
	if !b.Exhausted(start, 100) {
		t.Fatal("budget must stay tripped past MaxAttempts")
	}
}

// TestBackoffExhaustedElapsedBudget pins the elapsed-time budget: it trips
// once MaxElapsed has passed regardless of attempts, and composes with the
// attempt cap (whichever trips first wins).
func TestBackoffExhaustedElapsedBudget(t *testing.T) {
	b := Backoff{MaxElapsed: 10 * time.Millisecond}.withDefaults()
	fresh := time.Now()
	if b.Exhausted(fresh, 1_000_000) {
		t.Fatal("no attempt cap set: attempts alone must not trip the budget")
	}
	old := time.Now().Add(-time.Second)
	if !b.Exhausted(old, 0) {
		t.Fatal("budget must trip once MaxElapsed has passed")
	}

	both := Backoff{MaxElapsed: time.Hour, MaxAttempts: 2}.withDefaults()
	if !both.Exhausted(fresh, 2) {
		t.Fatal("attempt cap must trip before the elapsed budget")
	}
}

// TestBackoffExhaustedRetryForever pins the retry-forever shape: a negative
// MaxElapsed never trips on time, only on an explicit MaxAttempts.
func TestBackoffExhaustedRetryForever(t *testing.T) {
	b := Backoff{MaxElapsed: -1}.withDefaults()
	if b.Exhausted(time.Now().Add(-24*time.Hour), 1_000_000) {
		t.Fatal("negative MaxElapsed must retry forever without an attempt cap")
	}
	capped := Backoff{MaxElapsed: -1, MaxAttempts: 5}.withDefaults()
	if !capped.Exhausted(time.Now().Add(-24*time.Hour), 5) {
		t.Fatal("MaxAttempts must still bound a retry-forever backoff")
	}
}

// TestBackoffConcurrentDelay hammers Delay from many goroutines over one
// shared *rand.Rand — the exact shape the redialers produce when one Backoff
// value configures a whole deployment. Run under -race this is the
// regression test for the shared-PRNG data race.
func TestBackoffConcurrentDelay(t *testing.T) {
	shared := rand.New(rand.NewSource(1))
	b := Backoff{Rand: shared}.withDefaults()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine holds its own copy, as each redialer does; all
			// copies share the one PRNG.
			own := b
			for i := 0; i < 500; i++ {
				if d := own.Delay(i % 6); d < 0 {
					t.Error("negative delay")
					return
				}
			}
		}()
	}
	wg.Wait()
}

package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// report is one child's contribution to one epoch: an optional PSR plus the
// ids of sources in its subtree that failed.
type report struct {
	child  int
	epoch  prf.Epoch
	psr    *core.PSR
	failed []int
}

// encodeReport packs a PSR + failed-id list into a TypePSR payload.
func encodeReport(psr core.PSR, failed []int) []byte {
	wire := psr.Bytes()
	return append(wire[:], core.EncodeContributors(failed)...)
}

// decodeReport unpacks a TypePSR payload.
func decodeReport(payload []byte, f *uint256.Field) (core.PSR, []int, error) {
	if len(payload) < core.PSRSize {
		return core.PSR{}, nil, errors.New("transport: short PSR payload")
	}
	psr, err := core.ParsePSR(payload[:core.PSRSize], f)
	if err != nil {
		return core.PSR{}, nil, err
	}
	failed, err := core.DecodeContributors(payload[core.PSRSize:])
	if err != nil {
		return core.PSR{}, nil, err
	}
	return psr, failed, nil
}

// SourceNode is a leaf sensor process: it encrypts readings and streams the
// PSRs to its parent aggregator.
type SourceNode struct {
	src  *core.Source
	conn net.Conn
}

// DialSource connects a source to its parent aggregator and identifies
// itself with a hello frame.
func DialSource(parentAddr string, src *core.Source) (*SourceNode, error) {
	conn, err := net.Dial("tcp", parentAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: source %d dialing parent: %w", src.ID(), err)
	}
	hello := Frame{Type: TypeHello, Payload: core.EncodeContributors([]int{src.ID()})}
	if err := WriteFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	return &SourceNode{src: src, conn: conn}, nil
}

// Report encrypts the epoch's reading and sends the PSR upstream.
func (s *SourceNode) Report(t prf.Epoch, v uint64) error {
	psr, err := s.src.Encrypt(t, v)
	if err != nil {
		return err
	}
	return WriteFrame(s.conn, Frame{Type: TypePSR, Epoch: uint64(t), Payload: encodeReport(psr, nil)})
}

// Close terminates the connection; the parent treats subsequent epochs as
// failures of this source.
func (s *SourceNode) Close() error { return s.conn.Close() }

// AggregatorNode is an internal tree node process: it accepts a fixed number
// of children, merges their per-epoch PSRs and forwards one PSR upstream.
type AggregatorNode struct {
	agg      *core.Aggregator
	field    *uint256.Field
	upstream net.Conn
	children []*childState
	covers   []int // union of children's source ids
	timeout  time.Duration

	mu     sync.Mutex
	closed bool
}

type childState struct {
	conn   net.Conn
	covers []int
}

// AggregatorConfig configures NewAggregatorNode.
type AggregatorConfig struct {
	ListenAddr  string        // address to accept children on
	ParentAddr  string        // parent aggregator or querier address
	NumChildren int           // children to wait for before starting
	Timeout     time.Duration // per-epoch wait for missing children (default 2s)
}

// NewAggregatorNode listens for its children, completes the hello exchange
// in both directions, and returns a node ready to Run. It holds only the
// public modulus, like the in-protocol aggregator.
func NewAggregatorNode(cfg AggregatorConfig, field *uint256.Field) (*AggregatorNode, error) {
	if cfg.NumChildren < 1 {
		return nil, errors.New("transport: aggregator needs at least one child")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	a := &AggregatorNode{
		agg:     core.NewAggregator(field),
		field:   field,
		timeout: cfg.Timeout,
	}
	for i := 0; i < cfg.NumChildren; i++ {
		conn, err := ln.Accept()
		if err != nil {
			a.closeAll()
			return nil, err
		}
		f, err := ReadFrame(conn)
		if err != nil || f.Type != TypeHello {
			conn.Close()
			a.closeAll()
			return nil, fmt.Errorf("transport: child %d: bad hello (%v)", i, err)
		}
		covers, err := core.DecodeContributors(f.Payload)
		if err != nil {
			conn.Close()
			a.closeAll()
			return nil, err
		}
		a.children = append(a.children, &childState{conn: conn, covers: covers})
		a.covers = append(a.covers, covers...)
	}
	sort.Ints(a.covers)

	up, err := net.Dial("tcp", cfg.ParentAddr)
	if err != nil {
		a.closeAll()
		return nil, fmt.Errorf("transport: aggregator dialing parent: %w", err)
	}
	if err := WriteFrame(up, Frame{Type: TypeHello, Payload: core.EncodeContributors(a.covers)}); err != nil {
		up.Close()
		a.closeAll()
		return nil, err
	}
	a.upstream = up
	return a, nil
}

// Covers returns the source ids under this aggregator.
func (a *AggregatorNode) Covers() []int { return append([]int(nil), a.covers...) }

func (a *AggregatorNode) closeAll() {
	for _, c := range a.children {
		c.conn.Close()
	}
	if a.upstream != nil {
		a.upstream.Close()
	}
}

// Close shuts the node down; Run returns after in-flight epochs drain.
func (a *AggregatorNode) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.closed {
		a.closed = true
		a.closeAll()
	}
	return nil
}

// Run merges epochs until every child connection closes. For each epoch it
// waits up to the configured timeout for all children; children that miss
// the deadline have their whole subtree reported as failed.
func (a *AggregatorNode) Run() error {
	// Drain the parent's result acks: leaving them unread would turn our
	// eventual close into a TCP RST that can destroy the last in-flight
	// frame before the parent reads it.
	go func() {
		for {
			if _, err := ReadFrame(a.upstream); err != nil {
				return
			}
		}
	}()

	type incoming struct {
		rep  report
		err  error
		done bool
	}
	ch := make(chan incoming, len(a.children)*2)
	var wg sync.WaitGroup
	for idx, c := range a.children {
		wg.Add(1)
		go func(idx int, c *childState) {
			defer wg.Done()
			for {
				f, err := ReadFrame(c.conn)
				if err != nil {
					ch <- incoming{done: true, rep: report{child: idx}}
					return
				}
				switch f.Type {
				case TypePSR:
					psr, failed, err := decodeReport(f.Payload, a.field)
					if err != nil {
						ch <- incoming{err: err}
						return
					}
					ch <- incoming{rep: report{child: idx, epoch: prf.Epoch(f.Epoch), psr: &psr, failed: failed}}
				case TypeFailure:
					failed, err := core.DecodeContributors(f.Payload)
					if err != nil {
						ch <- incoming{err: err}
						return
					}
					ch <- incoming{rep: report{child: idx, epoch: prf.Epoch(f.Epoch), failed: failed}}
				default:
					// Result frames and unknown types are ignored by
					// aggregators.
				}
			}
		}(idx, c)
	}

	type epochState struct {
		reports  map[int]report
		deadline time.Time
	}
	pending := map[prf.Epoch]*epochState{}
	// flushed remembers epochs already forwarded so that reports arriving
	// after a timeout flush are dropped instead of triggering a duplicate.
	// Bounded by periodic reset; duplicate suppression is best-effort across
	// very long gaps, which the querier tolerates (it just re-verifies).
	flushed := map[prf.Epoch]bool{}
	livingChildren := len(a.children)

	flush := func(t prf.Epoch, st *epochState) error {
		var psrs []core.PSR
		var failed []int
		for idx, c := range a.children {
			rep, ok := st.reports[idx]
			if !ok {
				failed = append(failed, c.covers...) // missed the deadline
				continue
			}
			failed = append(failed, rep.failed...)
			if rep.psr != nil {
				psrs = append(psrs, *rep.psr)
			}
		}
		delete(pending, t)
		if len(flushed) > 1<<16 {
			flushed = map[prf.Epoch]bool{}
		}
		flushed[t] = true
		sort.Ints(failed)
		if len(psrs) == 0 {
			return WriteFrame(a.upstream, Frame{
				Type: TypeFailure, Epoch: uint64(t),
				Payload: core.EncodeContributors(failed),
			})
		}
		merged := a.agg.Merge(psrs...)
		return WriteFrame(a.upstream, Frame{
			Type: TypePSR, Epoch: uint64(t),
			Payload: encodeReport(merged, failed),
		})
	}

	ticker := time.NewTicker(a.timeout / 4)
	defer ticker.Stop()
	defer func() {
		// Close connections first so blocked readers unwind, then drain the
		// channel while waiting for them — a reader stuck on a full channel
		// would otherwise deadlock the shutdown.
		a.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		for {
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()

	for livingChildren > 0 || len(pending) > 0 {
		select {
		case in := <-ch:
			if in.err != nil {
				return in.err
			}
			if in.done {
				livingChildren--
				continue
			}
			if flushed[in.rep.epoch] {
				continue // late report for an epoch already forwarded
			}
			st, ok := pending[in.rep.epoch]
			if !ok {
				st = &epochState{reports: map[int]report{}, deadline: time.Now().Add(a.timeout)}
				pending[in.rep.epoch] = st
			}
			st.reports[in.rep.child] = in.rep
			if len(st.reports) == len(a.children) {
				if err := flush(in.rep.epoch, st); err != nil {
					return err
				}
			}
		case <-ticker.C:
			now := time.Now()
			for t, st := range pending {
				if now.After(st.deadline) {
					if err := flush(t, st); err != nil {
						return err
					}
				}
			}
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed {
				return nil
			}
		}
	}
	return nil
}

// EpochResult is a querier-side evaluation outcome delivered on the Results
// channel.
type EpochResult struct {
	Epoch        prf.Epoch
	Sum          uint64
	Contributors int
	Failed       []int
	Err          error
}

// QuerierNode terminates the tree: it accepts the root aggregator's
// connection, evaluates every epoch and emits EpochResults.
type QuerierNode struct {
	q       *core.Querier
	ln      net.Listener
	Results chan EpochResult
}

// NewQuerierNode starts listening for the root aggregator.
func NewQuerierNode(listenAddr string, q *core.Querier) (*QuerierNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	return &QuerierNode{q: q, ln: ln, Results: make(chan EpochResult, 64)}, nil
}

// Addr returns the address the querier listens on (for wiring up the root).
func (qn *QuerierNode) Addr() string { return qn.ln.Addr().String() }

// Close stops the listener.
func (qn *QuerierNode) Close() error { return qn.ln.Close() }

// Run accepts the root connection and evaluates epochs until the root
// disconnects, then closes the Results channel.
func (qn *QuerierNode) Run() error {
	defer close(qn.Results)
	conn, err := qn.ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()

	f, err := ReadFrame(conn)
	if err != nil || f.Type != TypeHello {
		return fmt.Errorf("transport: querier: bad hello (%v)", err)
	}
	covers, err := core.DecodeContributors(f.Payload)
	if err != nil {
		return err
	}
	if len(covers) != qn.q.Params().N() {
		return fmt.Errorf("transport: root covers %d sources, deployment has %d",
			len(covers), qn.q.Params().N())
	}

	field := qn.q.Params().Field()
	ackable := true // stop acking (but keep evaluating) once the root is gone
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return nil // root closed: clean shutdown
		}
		t := prf.Epoch(f.Epoch)
		switch f.Type {
		case TypePSR:
			psr, failed, err := decodeReport(f.Payload, field)
			if err != nil {
				qn.Results <- EpochResult{Epoch: t, Err: err}
				continue
			}
			contributors := subtract(qn.q.Params().N(), failed)
			var res core.Result
			var evalErr error
			if len(failed) == 0 {
				res, evalErr = qn.q.Evaluate(t, psr)
			} else {
				res, evalErr = qn.q.EvaluateSubset(t, psr, contributors)
			}
			out := EpochResult{Epoch: t, Failed: failed, Err: evalErr}
			if evalErr == nil {
				out.Sum = res.Sum
				out.Contributors = res.N
			}
			qn.Results <- out
			if ackable {
				ack := EncodeResult(out.Sum, evalErr == nil)
				if err := WriteFrame(conn, Frame{Type: TypeResult, Epoch: f.Epoch, Payload: ack}); err != nil {
					// The root departed after sending its final epochs; its
					// remaining frames are still buffered — keep evaluating
					// them, just stop acknowledging.
					ackable = false
				}
			}
		case TypeFailure:
			qn.Results <- EpochResult{Epoch: t, Err: errors.New("transport: every source failed")}
		}
	}
}

// subtract returns [0, n) minus the sorted failed list.
func subtract(n int, failed []int) []int {
	failedSet := map[int]bool{}
	for _, id := range failed {
		failedSet[id] = true
	}
	out := make([]int, 0, n-len(failed))
	for i := 0; i < n; i++ {
		if !failedSet[i] {
			out = append(out, i)
		}
	}
	return out
}

package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/obs"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// ErrNoContributors reports an epoch in which every source failed: there is
// no PSR to verify, only the (sorted) non-contributor list.
var ErrNoContributors = errors.New("transport: no source contributed to this epoch")

// report is one child's contribution to one epoch: an optional PSR plus the
// ids of sources in its subtree that failed. covers snapshots the child
// slot's coverage at acceptance time, so flush attribution stays correct even
// if the slot's coverage is later stolen by a failover re-home.
type report struct {
	child  int
	epoch  prf.Epoch
	psr    *core.PSR
	failed []int
	covers []int
}

// idsMinus returns a ∖ b for sorted canonical id lists (core.NormalizeIDs
// form), allocating only the result.
func idsMinus(a, b []int) []int {
	var out []int
	j := 0
	for _, id := range a {
		for j < len(b) && b[j] < id {
			j++
		}
		if j < len(b) && b[j] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}

// idsSorted reports whether ids is strictly increasing (canonical form).
func idsSorted(ids []int) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

// idsIntersect returns a ∩ b for sorted canonical id lists.
func idsIntersect(a, b []int) []int {
	var out []int
	j := 0
	for _, id := range a {
		for j < len(b) && b[j] < id {
			j++
		}
		if j < len(b) && b[j] == id {
			out = append(out, id)
		}
	}
	return out
}

// encodeReport packs a PSR + failed-id list into a TypePSR payload.
func encodeReport(psr core.PSR, failed []int) []byte {
	wire := psr.Bytes()
	return append(wire[:], core.EncodeContributors(failed)...)
}

// EncodeReport builds a TypePSR frame payload from a merged PSR and the
// canonical failed-id list. Exported for load generators and benchmarks that
// drive an aggregator with raw child connections instead of full source nodes.
func EncodeReport(psr core.PSR, failed []int) []byte {
	return encodeReport(psr, failed)
}

// DefaultMaxSources bounds contributor ids accepted from the wire when a
// node has no exact deployment size (aggregators hold only the public
// modulus). Hostile frames with ids past any plausible deployment are
// rejected before they can inflate coverage sets or allocations.
const DefaultMaxSources = 1 << 22

// decodeReport unpacks a TypePSR payload. maxID bounds the failed-source ids
// (see core.DecodeContributorsBounded), which also requires the canonical
// sorted duplicate-free form, so one hostile child cannot double-count a
// blinding key or claim sources outside the deployment.
func decodeReport(payload []byte, f *uint256.Field, maxID int) (core.PSR, []int, error) {
	if len(payload) < core.PSRSize {
		return core.PSR{}, nil, errors.New("transport: short PSR payload")
	}
	psr, err := core.ParsePSR(payload[:core.PSRSize], f)
	if err != nil {
		return core.PSR{}, nil, err
	}
	failed, err := core.DecodeContributorsBounded(payload[core.PSRSize:], maxID)
	if err != nil {
		return core.PSR{}, nil, err
	}
	return psr, failed, nil
}

// SourceConfig configures a fault-tolerant source connection.
type SourceConfig struct {
	ParentAddr string
	// ParentAddrs is the ranked candidate-parent list for failover dialing;
	// when set it supersedes ParentAddr. The source spends its per-address
	// Backoff budget (MaxElapsed / MaxAttempts) on each address in turn,
	// re-running the fenced hello handshake against the next candidate when
	// the current parent stays dead (DESIGN.md §15).
	ParentAddrs []string
	// Dial replaces net.Dial — chaos injection and tests hook here.
	Dial func(network, addr string) (net.Conn, error)
	// Backoff is the redial policy after the parent link drops.
	Backoff Backoff
	// HandshakeTimeout bounds the hello/hello-ack exchange (default 5s).
	HandshakeTimeout time.Duration
	// Metrics is the registry the node's counters expose through; nil gives
	// the node a private registry (reachable via Metrics()).
	Metrics *obs.Registry
	// Coalesce batches outgoing PSR frames through a FrameWriter over the
	// redialing link: reports enqueue into a pooled buffer and a short flush
	// deadline (FrameWriterConfig.FlushDelay) bounds the added latency. Nil
	// keeps the classic one-write-syscall-per-report path. The config's Sink
	// is ignored — the redialer is always the sink.
	Coalesce *FrameWriterConfig
}

// SourceNode is a leaf sensor process: it encrypts readings and streams the
// PSRs to its parent aggregator, redialing with backoff when the link drops.
type SourceNode struct {
	src *core.Source
	rd  *redialer
	obs *sourceObs

	// Coalescing state (nil fw = unbatched). psrWire + fill let Report hand
	// the encoded PSR to EnqueueAppend without a per-call closure allocation;
	// the fill callback runs synchronously inside EnqueueAppend, so the
	// single-threaded Report contract keeps psrWire safe.
	fw      *FrameWriter
	psrWire [core.PSRSize]byte
	fill    func([]byte)
}

// DialSource connects a source to its parent aggregator with the default
// redial policy.
func DialSource(parentAddr string, src *core.Source) (*SourceNode, error) {
	return DialSourceWith(SourceConfig{ParentAddr: parentAddr}, src)
}

// DialSourceWith connects a source to its parent aggregator, completes the
// hello handshake and returns a node whose Report survives link failures by
// redialing with exponential backoff + jitter.
func DialSourceWith(cfg SourceConfig, src *core.Source) (*SourceNode, error) {
	dial := cfg.Dial
	if dial == nil {
		dial = net.Dial
	}
	rd := newRedialer(
		dialRanked(dial, cfg.ParentAddrs, cfg.ParentAddr),
		func(fence uint64) Frame {
			return Frame{Type: TypeHello, Epoch: fence, Payload: core.EncodeContributors([]int{src.ID()})}
		},
		cfg.Backoff, cfg.HandshakeTimeout,
	)
	rd.onConn = func(c net.Conn) {
		// The parent never sends past the hello-ack; this drain only exists
		// to notice the link dying while the source is between reports, so
		// the next Report redials instead of writing into a dead socket.
		go func() {
			for {
				if _, err := ReadFrame(c); err != nil {
					rd.markDead(c)
					return
				}
			}
		}()
	}
	if _, err := rd.Connect(); err != nil {
		rd.Close()
		return nil, fmt.Errorf("transport: source %d dialing parent: %w", src.ID(), err)
	}
	node := &SourceNode{src: src, rd: rd, obs: newSourceObs(cfg.Metrics)}
	if cfg.Coalesce != nil {
		fwCfg := *cfg.Coalesce
		fwCfg.Sink = redialSink{rd: rd}
		node.fw = NewFrameWriter(fwCfg)
		node.fill = func(dst []byte) {
			copy(dst, node.psrWire[:])
			// Empty failed-source list: u32 zero count.
			dst[core.PSRSize], dst[core.PSRSize+1], dst[core.PSRSize+2], dst[core.PSRSize+3] = 0, 0, 0, 0
		}
	}
	node.obs.bind(node)
	return node, nil
}

// Report encrypts the epoch's reading and sends the PSR upstream, redialing
// as needed. Epochs at or below the parent's resync point (learned during the
// last handshake) are skipped: the parent has already settled them and would
// discard the report.
func (s *SourceNode) Report(t prf.Epoch, v uint64) error {
	if uint64(t) <= s.rd.SyncEpoch() {
		s.obs.skipped.Inc()
		return nil
	}
	psr, err := s.src.Encrypt(t, v)
	if err != nil {
		return err
	}
	if s.fw != nil {
		s.psrWire = psr.Bytes()
		if err := s.fw.EnqueueAppend(TypePSR, uint64(t), core.PSRSize+4, s.fill); err != nil {
			return err
		}
		s.obs.reports.Inc()
		return nil
	}
	if err := s.rd.Write(Frame{Type: TypePSR, Epoch: uint64(t), Payload: encodeReport(psr, nil)}); err != nil {
		return err
	}
	s.obs.reports.Inc()
	return nil
}

// Reconnects counts how many times the source re-established its parent link.
func (s *SourceNode) Reconnects() int { return s.rd.Reconnects() }

// Failovers counts escalations to the next candidate parent address.
func (s *SourceNode) Failovers() int { return s.rd.Failovers() }

// Metrics returns the node's metrics registry.
func (s *SourceNode) Metrics() *obs.Registry { return s.obs.reg }

// Leave announces a graceful departure: queued reports are flushed and a
// leave frame tells the parent to mark this source departed immediately,
// instead of burning an epoch timeout per remaining epoch waiting for it.
// Call it from a drain path, before Close. Best-effort: a dead parent link
// just means the departure is discovered by timeout, as before.
func (s *SourceNode) Leave() error {
	if s.fw != nil {
		s.fw.Flush()
	}
	return s.rd.Write(Frame{Type: TypeLeave, Payload: core.EncodeContributors([]int{s.src.ID()})})
}

// Close flushes any coalesced frames still queued, then terminates the
// connection; the parent treats subsequent epochs as failures of this source.
func (s *SourceNode) Close() error {
	if s.fw != nil {
		s.fw.Close()
	}
	return s.rd.Close()
}

// dialRanked builds the redialer's ranked dial list from a ParentAddrs list
// (preferred) or the single ParentAddr.
func dialRanked(dial func(network, addr string) (net.Conn, error), addrs []string, single string) []func() (net.Conn, error) {
	if len(addrs) == 0 {
		addrs = []string{single}
	}
	dials := make([]func() (net.Conn, error), len(addrs))
	for i, addr := range addrs {
		addr := addr
		dials[i] = func() (net.Conn, error) { return dial("tcp", addr) }
	}
	return dials
}

// AggregatorNode is an internal tree node process: it accepts a set of
// children, merges their per-epoch PSRs and forwards one PSR upstream. The
// listener stays open for the node's lifetime so children that lost their
// link can return; re-sent reports for epochs already forwarded are dropped.
// With AcceptNew set the child set is dynamic: children of a failed sibling
// re-home here, their coverage is stolen from whichever stale slot claimed
// it, and the upstream hello is refreshed when the covered union grows.
type AggregatorNode struct {
	agg      *core.Aggregator
	field    *uint256.Field
	upstream *redialer
	ln       net.Listener
	children []*childState // append-only; slots empty out when stolen, never shift
	covers   []int         // union of children's source ids (guarded by mu for writes)

	timeout          time.Duration
	reconnectWindow  time.Duration
	idleTimeout      time.Duration
	handshakeTimeout time.Duration
	maxSources       int
	acceptNew        bool

	// mu is the slow-path lifecycle lock (DESIGN.md §16). Write-held only for
	// membership events — attach, coverage steal, leave, disconnect, close,
	// crash — and read-held by the ingest/flush hot paths just long enough to
	// snapshot child state. Epoch state itself lives in the sharded table
	// below and is never guarded by mu. Lock order: mu before any shard lock.
	mu         sync.RWMutex
	closed     bool
	crashed    bool
	conns      map[net.Conn]struct{}
	allRegular bool // every slot expected for every epoch; see recomputeRegular

	// closedA/crashedA mirror closed/crashed for lock-free reads on the hot
	// paths; transitions happen under mu with the atomic stored last.
	closedA  atomic.Bool
	crashedA atomic.Bool
	// memberGen is the epoch-generation fence: bumped (under mu) by every
	// membership event that can invalidate an in-flight ingest's snapshot of
	// child state — attach, steal, leave. Ingest validates it after inserting
	// under the shard lock and rolls back + retries on a mismatch, so a
	// lifecycle event never interleaves half-way through an acceptance.
	memberGen   atomic.Uint64
	lastFlushed atomic.Uint64

	// table is the sharded concurrent epoch table: in-flight epoch slots plus
	// the striped flushed-epoch dedup window (reports arriving after a flush —
	// a late child, a reconnected child re-sending, or a journal replay after
	// a restart — are dropped instead of triggering a duplicate; FIFO-bounded
	// per stripe, best-effort beyond the window, which the querier tolerates).
	table *epochShards
	// plane is the parallel merge plane flushing claimed slots.
	plane *mergePlane

	failOnce sync.Once
	failCh   chan struct{}
	runErr   error

	state *aggState // durable crash-recovery state; nil without a StateDir
	obs   *aggObs
	upfw  *FrameWriter // coalescing upstream writer; nil = unbatched
}

// childState is one child slot. Fields are written only under a.mu's write
// lock (membership events) and read under the read lock by the ingest path;
// covers is replaced wholesale (never mutated in place) on steals so report
// snapshots stay valid.
type childState struct {
	covers   []int  // sorted source ids currently attributed to this child
	key      string // canonical form of covers, for matching returning children
	conn     net.Conn
	fence    uint64 // reports accepted only for epochs strictly above this
	gen      int    // bumped per (re)connect; stale-conn 'd' events are ignored
	alive    bool
	departed bool // graceful leave: stop waiting for it, keep covers for attribution
}

// coversKey canonicalises a sorted id list for child matching.
func coversKey(ids []int) string {
	return fmt.Sprint(ids)
}

// AggregatorConfig configures NewAggregatorNode.
type AggregatorConfig struct {
	ListenAddr  string        // address to accept children on
	ParentAddr  string        // parent aggregator or querier address
	NumChildren int           // children to wait for before starting
	Timeout     time.Duration // per-epoch wait for missing children (default 2s)

	// ParentAddrs is the ranked candidate-parent list for failover dialing;
	// when set it supersedes ParentAddr (see SourceConfig.ParentAddrs).
	ParentAddrs []string
	// AcceptNew lets children that are not part of the initial set attach
	// mid-run: a failover target (standby aggregator, or any interior node
	// ranked in its siblings' ParentAddrs) accepts the re-homing child,
	// steals its coverage from whichever stale slot still claims it, and
	// refreshes the upstream hello when the covered union grows. AcceptNew
	// additionally allows NumChildren of zero (a pure standby starts empty)
	// and keeps the node alive while it has no children.
	AcceptNew bool

	// ReconnectWindow is the grace period after the last child disconnects
	// before Run concludes the deployment is gone and exits (default:
	// Timeout). Children returning within the window resume seamlessly.
	ReconnectWindow time.Duration
	// IdleTimeout, when positive, bounds how long a child connection may stay
	// silent before it is cut and the child must redial. It recovers
	// connections desynchronised by torn writes; leave zero for workloads
	// with long quiet gaps between epochs.
	IdleTimeout time.Duration
	// Backoff is the redial policy for the upstream link.
	Backoff Backoff
	// HandshakeTimeout bounds each hello/hello-ack exchange (default 5s).
	HandshakeTimeout time.Duration
	// MaxSources bounds the source ids this node accepts in hello and
	// failure frames (default DefaultMaxSources). Set it to the deployment's
	// N to reject any id a provisioned source could not hold.
	MaxSources int
	// Shards is the epoch-table stripe count (rounded up to a power of two;
	// default DefaultShards). Concurrent child readers ingesting different
	// epochs take different stripe locks; 1 serialises the table — useful as a
	// contention baseline.
	Shards int
	// MergeWorkers sizes the parallel merge plane flushing completed epochs
	// (default min(DefaultMergeWorkers, GOMAXPROCS)); 1 serialises flushes.
	MergeWorkers int
	// StateDir, when set, makes the node durable: epoch contributions and
	// commits are journaled there and recovered on restart, so a crashed
	// aggregator resumes at its exact flush frontier (never re-opening a
	// settled epoch, never double-counting a contribution).
	StateDir string
	// CheckpointEvery is how many flushed epochs elapse between snapshot
	// checkpoints of the durable state (default DefaultCheckpointEvery).
	CheckpointEvery int
	// Metrics is the registry the node's counters expose through; nil gives
	// the node a private registry (reachable via Metrics()).
	Metrics *obs.Registry
	// TraceCapacity sizes the epoch-lifecycle trace ring (default
	// obs.DefaultTraceCapacity).
	TraceCapacity int
	// Coalesce batches upstream PSR/failure frames through a FrameWriter over
	// the redialing parent link — catch-up bursts (reconnects, recovered
	// epochs) collapse into vectored writes. The config's Sink is ignored; the
	// upstream redialer is always the sink. Nil keeps one write per flush.
	//
	// The commit record is journaled once the frame is queued rather than once
	// it reaches the parent's TCP buffer, so a process crash can additionally
	// lose up to one coalescing window (FlushDelay) of flushed epochs — the
	// same class of loss as the parent crashing before reading, and bounded by
	// the same at-least-once recovery: epochs never committed re-flush on
	// restart from replayed contributions.
	Coalesce *FrameWriterConfig
	// Dial and Listen replace net.Dial / net.Listen — chaos injection hooks.
	Dial   func(network, addr string) (net.Conn, error)
	Listen func(network, addr string) (net.Listener, error)
}

// NewAggregatorNode listens for its children, completes the hello exchange
// in both directions, dials its parent and returns a node ready to Run. It
// holds only the public modulus, like the in-protocol aggregator.
func NewAggregatorNode(cfg AggregatorConfig, field *uint256.Field) (*AggregatorNode, error) {
	if cfg.NumChildren < 1 && !cfg.AcceptNew {
		return nil, errors.New("transport: aggregator needs at least one child")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.ReconnectWindow <= 0 {
		cfg.ReconnectWindow = cfg.Timeout
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.MaxSources <= 0 {
		cfg.MaxSources = DefaultMaxSources
	}
	listen := cfg.Listen
	if listen == nil {
		listen = net.Listen
	}
	dial := cfg.Dial
	if dial == nil {
		dial = net.Dial
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	workers := cfg.MergeWorkers
	if workers <= 0 {
		workers = DefaultMergeWorkers
		if n := runtime.GOMAXPROCS(0); n < workers {
			workers = n
		}
	}
	a := &AggregatorNode{
		agg:              core.NewAggregator(field),
		field:            field,
		timeout:          cfg.Timeout,
		reconnectWindow:  cfg.ReconnectWindow,
		idleTimeout:      cfg.IdleTimeout,
		handshakeTimeout: cfg.HandshakeTimeout,
		maxSources:       cfg.MaxSources,
		acceptNew:        cfg.AcceptNew,
		conns:            map[net.Conn]struct{}{},
		plane:            newMergePlane(workers),
		failCh:           make(chan struct{}),
		obs:              newAggObs(cfg.Metrics, cfg.TraceCapacity),
	}
	a.table = newEpochShards(shards, DefaultCommittedCap, a.obs.shardContention)
	// Recover durable state before accepting anyone: the children's hello-acks
	// must carry the restored flush frontier as their resync epoch.
	if cfg.StateDir != "" {
		if err := a.openAggState(cfg.StateDir, cfg.CheckpointEvery); err != nil {
			return nil, err
		}
	}
	ln, err := listen("tcp", cfg.ListenAddr)
	if err != nil {
		if a.state != nil {
			a.state.store.Close()
		}
		return nil, err
	}
	a.ln = ln
	for i := 0; i < cfg.NumChildren; i++ {
		conn, err := ln.Accept()
		if err != nil {
			a.closeAll()
			return nil, err
		}
		covers, fence, err := a.handshakeChild(conn)
		if err != nil {
			conn.Close()
			a.closeAll()
			return nil, fmt.Errorf("transport: child %d: %w", i, err)
		}
		a.track(conn)
		a.children = append(a.children, &childState{conn: conn, covers: covers, key: coversKey(covers), fence: fence})
		a.covers = append(a.covers, covers...)
	}
	a.covers = core.NormalizeIDs(a.covers)

	a.upstream = newRedialer(
		dialRanked(dial, cfg.ParentAddrs, cfg.ParentAddr),
		func(fence uint64) Frame {
			return Frame{Type: TypeHello, Epoch: fence, Payload: core.EncodeContributors(a.helloCovers())}
		},
		cfg.Backoff, cfg.HandshakeTimeout,
	)
	up := a.upstream
	up.onConn = func(c net.Conn) {
		// Drain the parent's result acks: leaving them unread would turn our
		// eventual close into a TCP RST that can destroy the last in-flight
		// frame before the parent reads it. Marking the connection dead on
		// read failure makes the next flush redial promptly.
		go func() {
			for {
				if _, err := ReadFrame(c); err != nil {
					up.markDead(c)
					return
				}
			}
		}()
	}
	if _, err := up.Connect(); err != nil {
		a.closeAll()
		return nil, fmt.Errorf("transport: aggregator dialing parent: %w", err)
	}
	if cfg.Coalesce != nil {
		fwCfg := *cfg.Coalesce
		fwCfg.Sink = redialSink{rd: up}
		a.upfw = NewFrameWriter(fwCfg)
	}
	// Announce the initial children so the querier's contributor view starts
	// populated (best-effort, like every member event).
	for _, c := range a.children {
		a.sendMember(memberJoin, c.covers)
	}
	a.obs.bind(a)
	return a, nil
}

// handshakeChild reads a child's hello and answers with a hello-ack carrying
// the resync epoch (our highest flushed epoch). The returned fence is the
// hello's epoch field: the highest epoch the child may already have handed to
// a different parent, above which alone its reports may be accepted.
func (a *AggregatorNode) handshakeChild(conn net.Conn) ([]int, uint64, error) {
	conn.SetReadDeadline(time.Now().Add(a.handshakeTimeout))
	f, err := ReadFrame(conn)
	if err != nil {
		return nil, 0, fmt.Errorf("bad hello: %w", err)
	}
	if f.Type != TypeHello {
		return nil, 0, fmt.Errorf("bad hello: frame type %d", f.Type)
	}
	conn.SetReadDeadline(time.Time{})
	// Bounded + canonical: duplicate, unsorted or out-of-range ids in a
	// hello would poison coverage matching for the child's whole lifetime.
	covers, err := core.DecodeContributorsBounded(f.Payload, a.maxSources)
	if err != nil {
		return nil, 0, err
	}
	resync := a.lastFlushed.Load()
	if err := WriteFrame(conn, Frame{Type: TypeHello, Epoch: resync}); err != nil {
		return nil, 0, fmt.Errorf("writing hello-ack: %w", err)
	}
	return covers, f.Epoch, nil
}

// Covers returns the source ids under this aggregator.
func (a *AggregatorNode) Covers() []int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]int(nil), a.covers...)
}

// helloCovers snapshots the covered union for the upstream hello closure.
func (a *AggregatorNode) helloCovers() []int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]int(nil), a.covers...)
}

// label identifies this aggregator in member events: its listen address.
func (a *AggregatorNode) label() string { return a.ln.Addr().String() }

// sendUpstreamBestEffort forwards an auxiliary (member) frame upstream
// without engaging the redial loop: when the parent link is down the frame is
// dropped — the view reconciles from later events, and blocking the event
// loop on observability traffic would stall aggregation.
func (a *AggregatorNode) sendUpstreamBestEffort(f Frame) {
	if a.upfw != nil {
		if a.upfw.Enqueue(f) == nil {
			a.obs.memberForwards.Inc()
		}
		return
	}
	c := a.upstream.current()
	if c == nil {
		return
	}
	if err := WriteFrame(c, f); err != nil {
		a.upstream.markDead(c)
		return
	}
	a.obs.memberForwards.Inc()
}

// sendMember emits one membership event about this node's own child slots.
func (a *AggregatorNode) sendMember(kind byte, ids []int) {
	if len(ids) == 0 {
		return
	}
	a.sendUpstreamBestEffort(Frame{Type: TypeMember, Payload: encodeMember(kind, a.label(), ids)})
}

// Leave announces a graceful drain of this node's whole subtree to the
// parent: the covered sources' absence from future epochs becomes expected
// rather than a failure. Call it before Close on a planned decommission.
func (a *AggregatorNode) Leave() error {
	ids := a.helloCovers()
	if len(ids) == 0 {
		return nil
	}
	if a.upfw != nil {
		a.upfw.Flush()
	}
	return a.upstream.Write(Frame{Type: TypeLeave, Payload: core.EncodeContributors(ids)})
}

// UpstreamReconnects counts how many times the upstream link was
// re-established.
func (a *AggregatorNode) UpstreamReconnects() int { return a.upstream.Reconnects() }

// UpstreamFailovers counts escalations to the next candidate parent address.
func (a *AggregatorNode) UpstreamFailovers() int { return a.upstream.Failovers() }

// Metrics returns the node's metrics registry.
func (a *AggregatorNode) Metrics() *obs.Registry { return a.obs.reg }

// Tracer returns the node's epoch-lifecycle tracer (report → flush spans).
func (a *AggregatorNode) Tracer() *obs.Tracer { return a.obs.tracer }

// track registers a live child connection for shutdown bookkeeping.
func (a *AggregatorNode) track(conn net.Conn) {
	a.mu.Lock()
	a.conns[conn] = struct{}{}
	a.mu.Unlock()
}

// forget closes and unregisters a child connection.
func (a *AggregatorNode) forget(conn net.Conn) {
	a.mu.Lock()
	delete(a.conns, conn)
	a.mu.Unlock()
	conn.Close()
}

func (a *AggregatorNode) closeAll() {
	a.mu.Lock()
	conns := make([]net.Conn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.conns = map[net.Conn]struct{}{}
	a.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if a.ln != nil {
		a.ln.Close()
	}
	if a.upfw != nil {
		// Deliver queued upstream frames before severing the link (a no-op
		// when Crash already severed it — the flusher's writes fail fast).
		a.upfw.Close()
	}
	if a.upstream != nil {
		a.upstream.Close()
	}
	if a.state != nil {
		// Idempotent; a concurrent append observes the closed journal as a
		// counted journal error, never a torn write.
		a.state.store.Close()
	}
}

// Close shuts the node down; Run returns after in-flight epochs drain.
func (a *AggregatorNode) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.closedA.Store(true)
	a.mu.Unlock()
	a.closeAll()
	return nil
}

// Crash tears the node down the way a process kill would: no flushes, no
// commit records, no graceful drain, no final journal fsync. Recovery is
// exercised by rebuilding the node from its state directory. This is the
// restart-chaos hook; production shutdown is Close.
func (a *AggregatorNode) Crash() {
	a.mu.Lock()
	if a.crashed {
		a.mu.Unlock()
		return
	}
	a.crashed = true
	a.closed = true
	a.crashedA.Store(true)
	a.closedA.Store(true)
	st := a.state
	a.mu.Unlock()
	if st != nil {
		// Process-kill grade: issued writes survive in the OS page cache even
		// though the aggregator journal barely fsyncs (SyncEvery is effectively
		// off — contributions are recoverable from children's re-sends). The
		// stricter power-loss truncation lives on the querier, whose group
		// commit is what actually leaves an unsynced window.
		st.store.Abandon()
	}
	if a.upfw != nil {
		// Sever the upstream link first so queued coalesced frames are
		// dropped (a crashed process delivers nothing), not flushed.
		a.upstream.Close()
	}
	a.closeAll()
}

func (a *AggregatorNode) isClosed() bool  { return a.closedA.Load() }
func (a *AggregatorNode) isCrashed() bool { return a.crashedA.Load() }

// setLastFlushed records the highest epoch forwarded upstream; returning
// children learn it through the hello-ack and skip settled epochs. Lock-free
// CAS max: merge workers flush out of epoch order.
func (a *AggregatorNode) setLastFlushed(t uint64) {
	for {
		cur := a.lastFlushed.Load()
		if t <= cur {
			a.obs.lastFlushedEpoch.Set(int64(cur))
			return
		}
		if a.lastFlushed.CompareAndSwap(cur, t) {
			a.obs.lastFlushedEpoch.Set(int64(t))
			return
		}
	}
}

// aggEvent is one occurrence on the aggregator's slow-path event loop. The
// report hot path no longer travels here: child readers ingest PSR and
// failure frames directly into the sharded epoch table.
type aggEvent struct {
	kind    byte // 'd' child down, 'h' hello (attach or coverage update), 'l' leave, 'm' member relay
	child   int  // slot index; -1 for accept-path hellos (no slot yet)
	gen     int
	conn    net.Conn
	covers  []int  // 'h': the hello's coverage; 'l': the departing ids
	fence   uint64 // 'h': the hello's fence epoch
	payload []byte // 'm': the relayed member payload (copied)
}

// recomputeRegular refreshes the allRegular cache: whether every slot is
// expected for every epoch — no slot departed, coverage-stolen empty, or
// fenced. True in the steady state; recomputed (O(children)) only on the rare
// membership events that can change it: attach, steal, leave. Caller holds
// a.mu's write lock.
func (a *AggregatorNode) recomputeRegular() {
	a.allRegular = true
	for _, c := range a.children {
		if c.departed || len(c.covers) == 0 || c.fence > 0 {
			a.allRegular = false
			return
		}
	}
}

// ingestOutcome tells ingestReport what to do once every lock is released —
// submitting to the merge plane or re-scanning completeness while holding a
// lock could deadlock against the workers.
type ingestOutcome struct {
	retry  bool // generation moved mid-insert: rolled back, try again
	submit bool // slot claimed complete: hand it to the merge plane
	settle bool // irregular membership: re-check completeness the slow way
}

// ingestReport is the child readers' hot path: accept one report into the
// sharded epoch table without touching the global lock beyond a brief read
// hold. Concurrent readers for different epochs contend only on their
// stripes. The rare generation-fence retry loop falls back to the write lock
// after a few spins, where membership cannot move.
func (a *AggregatorNode) ingestReport(rep report) {
	out := a.tryIngest(&rep, false)
	for i := 0; out.retry; i++ {
		a.obs.ingestRetries.Inc()
		if i >= 3 {
			a.mu.Lock()
			out = a.tryIngest(&rep, true)
			a.mu.Unlock()
			break
		}
		out = a.tryIngest(&rep, false)
	}
	t := uint64(rep.epoch)
	if out.submit {
		a.plane.submit(t)
	} else if out.settle {
		a.settleIrregular(t)
	}
}

// tryIngest performs one optimistic acceptance attempt. With locked set the
// caller holds a.mu's write lock (the churn fallback) and the generation
// check is skipped — nothing can move.
func (a *AggregatorNode) tryIngest(rep *report, locked bool) ingestOutcome {
	g1 := a.memberGen.Load()
	if !locked {
		a.mu.RLock()
	}
	if a.closed {
		if !locked {
			a.mu.RUnlock()
		}
		return ingestOutcome{}
	}
	slot := a.children[rep.child]
	fence, departed := slot.fence, slot.departed
	covers := slot.covers // replaced wholesale, never mutated: safe past RUnlock
	nch := len(a.children)
	allReg := a.allRegular
	if !locked {
		a.mu.RUnlock()
	}
	t := uint64(rep.epoch)
	if t <= fence {
		// The child's fence says this epoch may have travelled via a previous
		// parent — contributing it here could double-count.
		a.obs.fenceDrops.Inc()
		return ingestOutcome{}
	}
	if departed || len(covers) == 0 {
		// A zombie slot whose coverage was wholly stolen or drained: nothing
		// it reports is attributable any more.
		a.obs.staleDrops.Inc()
		return ingestOutcome{}
	}
	// Snapshot the slot's coverage at acceptance: flush-time attribution must
	// describe what this PSR actually contains, even if the slot's claim
	// changes before the epoch settles.
	rep.covers = covers

	sh := a.table.shard(t)
	a.table.lock(sh)
	if sh.flushed.has(t) {
		sh.mu.Unlock()
		a.obs.lateDrops.Inc() // late report for an epoch already forwarded
		return ingestOutcome{}
	}
	sl := sh.slots[t]
	created := sl == nil
	if created {
		sl = &epochSlot{epoch: rep.epoch, reports: make(map[int]report, nch),
			deadline: time.Now().Add(a.timeout), gen: g1}
		sh.slots[t] = sl
		a.table.open.Add(1)
		a.obs.tracer.Begin(t)
		a.obs.tracer.Mark(t, obs.StageReport)
	}
	prev, existed := sl.reports[rep.child]
	sl.reports[rep.child] = *rep
	folded := false
	switch {
	case existed:
		// Overwriting dedups a reconnected child re-sending an epoch; the
		// lazy partial no longer matches the map, so the flush rebuilds.
		sl.dirty = true
	case rep.psr != nil:
		sl.acc.Add(rep.psr.C)
		sl.accN++
		folded = true
	}
	if !locked && a.memberGen.Load() != g1 {
		// The epoch-generation fence tripped: a lifecycle event (attach,
		// steal, leave) ran between the child-state snapshot above and this
		// insert, so the snapshot may be stale. Roll the insert back under the
		// still-held shard lock and retry against the fresh membership —
		// an acceptance never interleaves half-way through a membership event.
		if existed {
			sl.reports[rep.child] = prev
		} else {
			delete(sl.reports, rep.child)
			if folded {
				sl.dirty = true // acc holds a PSR the map no longer does
			}
		}
		if created && len(sl.reports) == 0 {
			delete(sh.slots, t)
			a.table.open.Add(-1)
		}
		sh.mu.Unlock()
		return ingestOutcome{retry: true}
	}
	var out ingestOutcome
	if allReg {
		// Steady-state completeness fast path: a count compare, valid because
		// the generation held from the allRegular read through this claim.
		if !sl.claimed && len(sl.reports) == nch {
			sl.claimed = true
			out.submit = true
		}
	} else {
		out.settle = true
	}
	sh.mu.Unlock()

	a.obs.reports.Inc()
	a.journalContribution(*rep, covers)
	return out
}

// Run merges epochs until the node is closed or every child disconnects and
// stays away for ReconnectWindow (AcceptNew nodes wait indefinitely — a
// standby with no children yet is healthy, not done). For each epoch it waits
// up to the configured timeout for all expected children; children that miss
// the deadline have their whole subtree reported as failed. When a disconnect
// makes an epoch's outstanding reports impossible (every missing child is
// down) the epoch is flushed immediately instead of waiting out the deadline.
func (a *AggregatorNode) Run() error {
	ch := make(chan aggEvent, len(a.children)*2+8)
	var wg sync.WaitGroup

	readChild := func(child, gen int, conn net.Conn) {
		defer wg.Done()
		defer a.forget(conn)
		// On the batched plane, buffered frame reads drain a coalescing
		// child's whole batch in one syscall. Nothing downstream retains the
		// payload — decodeReport and DecodeContributorsBounded copy what they
		// keep — so the reader's recycled buffer is safe here. The classic
		// plane keeps unbuffered reads: one syscall per frame, by design.
		var r io.Reader = conn
		if a.upfw != nil {
			r = bufio.NewReader(conn)
		}
		fr := NewFrameReader(r)
		for {
			if a.idleTimeout > 0 {
				conn.SetReadDeadline(time.Now().Add(a.idleTimeout))
			}
			f, err := fr.Read()
			if err != nil {
				ch <- aggEvent{kind: 'd', child: child, gen: gen}
				return
			}
			switch f.Type {
			case TypePSR:
				psr, failed, err := decodeReport(f.Payload, a.field, a.maxSources)
				if err != nil {
					// A child speaking garbage (corruption, torn writes) is
					// cut off; it recovers by redialing.
					ch <- aggEvent{kind: 'd', child: child, gen: gen}
					return
				}
				// Reports bypass the event loop: straight into the sharded
				// epoch table, so concurrent children never serialise here.
				a.ingestReport(report{child: child, epoch: prf.Epoch(f.Epoch), psr: &psr, failed: failed})
			case TypeFailure:
				failed, err := core.DecodeContributorsBounded(f.Payload, a.maxSources)
				if err != nil {
					ch <- aggEvent{kind: 'd', child: child, gen: gen}
					return
				}
				a.ingestReport(report{child: child, epoch: prf.Epoch(f.Epoch), failed: failed})
			case TypeHello:
				// A mid-stream hello is a coverage update from a child whose
				// own subtree changed (a standby that gained children).
				covers, err := core.DecodeContributorsBounded(f.Payload, a.maxSources)
				if err != nil {
					ch <- aggEvent{kind: 'd', child: child, gen: gen}
					return
				}
				ch <- aggEvent{kind: 'h', child: child, gen: gen, conn: conn, covers: covers, fence: f.Epoch}
			case TypeLeave:
				ids, err := core.DecodeContributorsBounded(f.Payload, a.maxSources)
				if err != nil {
					ch <- aggEvent{kind: 'd', child: child, gen: gen}
					return
				}
				ch <- aggEvent{kind: 'l', child: child, gen: gen, covers: ids}
			case TypeMember:
				// Relay a descendant's membership event towards the querier.
				ch <- aggEvent{kind: 'm', child: child, gen: gen,
					payload: append([]byte(nil), f.Payload...)}
			default:
				// Result frames are ignored mid-stream.
			}
		}
	}

	// Accept loop: children that lost their link redial, re-handshake and are
	// matched back to their slot by the coverage set in their hello; unknown
	// coverage sets attach as new slots when AcceptNew allows (failover
	// re-homing), and are cut otherwise.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := a.ln.Accept()
			if err != nil {
				return // listener closed: shutting down
			}
			a.track(conn)
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				covers, fence, err := a.handshakeChild(conn)
				if err != nil {
					a.forget(conn)
					return
				}
				ch <- aggEvent{kind: 'h', child: -1, conn: conn, covers: covers, fence: fence}
			}(conn)
		}
	}()

	// Fold journal-replayed contributions of still-open epochs into the epoch
	// table, matched to child slots by coverage key (slot indices are not
	// stable across restarts; coverage sets are). Single-threaded: neither the
	// readers nor the merge plane have started.
	if a.state != nil && len(a.state.recovered) > 0 {
		slotByKey := make(map[string]int, len(a.children))
		for idx, c := range a.children {
			slotByKey[c.key] = idx
		}
		for t, byKey := range a.state.recovered {
			sl := &epochSlot{epoch: t, reports: map[int]report{}, deadline: time.Now().Add(a.timeout)}
			for key, rep := range byKey {
				if idx, ok := slotByKey[key]; ok {
					rep.child = idx
					sl.reports[idx] = rep
					if rep.psr != nil {
						sl.acc.Add(rep.psr.C)
						sl.accN++
					}
				}
			}
			if len(sl.reports) > 0 {
				sh := a.table.shard(uint64(t))
				sh.slots[uint64(t)] = sl
				a.table.open.Add(1)
			}
		}
		a.state.recovered = nil
	}

	a.mu.Lock()
	for _, c := range a.children {
		c.gen = 1
		c.alive = true
	}
	a.recomputeRegular()
	a.mu.Unlock()
	living := len(a.children)
	lastAllGone := time.Now()
	a.plane.start(a)
	for idx, c := range a.children {
		wg.Add(1)
		go readChild(idx, 1, c.conn)
	}
	a.obs.childrenGauge.Set(int64(living))

	// orphanClaims claims every open epoch whose outstanding reports can no
	// longer arrive because each missing expected child is down. Caller holds
	// a.mu's write lock; the claimed epochs are submitted after it releases.
	orphanClaims := func() []uint64 {
		return a.table.claimWhere(func(t uint64, sl *epochSlot) bool {
			for idx, c := range a.children {
				if !expectsChild(c, t) {
					continue
				}
				if _, ok := sl.reports[idx]; !ok && c.alive {
					return false
				}
			}
			return true
		})
	}

	// settledClaims claims every open epoch that became complete through a
	// membership change (a leave, or a fence excusing a slot) rather than a
	// report arrival. Caller holds a.mu's write lock.
	settledClaims := func() []uint64 {
		return a.table.claimWhere(func(t uint64, sl *epochSlot) bool {
			if a.allRegular {
				return len(sl.reports) == len(a.children)
			}
			for idx, c := range a.children {
				if !expectsChild(c, t) {
					continue
				}
				if _, ok := sl.reports[idx]; !ok {
					return false
				}
			}
			return true
		})
	}

	// submitAll hands claimed epochs to the merge plane. Callers must have
	// released every lock: submit blocks when the plane is saturated, and the
	// workers need the read lock to make progress.
	submitAll := func(ts []uint64) {
		for _, t := range ts {
			a.plane.submit(t)
		}
	}

	// attach wires a connection into slot idx (stealing overlapping coverage
	// from stale slots for new or updated coverage sets) and refreshes the
	// upstream coverage claim when the covered union changes. Membership
	// mutation runs under the write lock with the generation bumped; the
	// upstream sends happen after release so a slow parent link can never
	// stall the ingest plane.
	attach := func(ev aggEvent) {
		key := coversKey(ev.covers)
		a.mu.Lock()
		idx := ev.child
		if idx < 0 {
			// Accept-path hello: match a returning child to its slot by its
			// coverage set.
			for i, c := range a.children {
				if c.key == key {
					idx = i
					break
				}
			}
		}
		coverageChanged := false
		// A hello from the accept path ((re)attaching a connection) is a join;
		// a mid-stream hello on a live connection is a coverage change, which
		// the stolen-ids re-home event below already describes — emitting a
		// join for it would mislabel an interior subtree as the sources'
		// immediate parent in the querier's view.
		attached := ev.child < 0
		var slot *childState
		switch {
		case idx >= 0 && ev.child >= 0:
			// Mid-stream coverage update on a live connection.
			slot = a.children[idx]
			if ev.gen != slot.gen {
				a.mu.Unlock()
				return // a superseded connection's leftover hello
			}
			coverageChanged = slot.key != key
			if coverageChanged {
				slot.covers = append([]int(nil), ev.covers...)
				slot.key = key
			}
		case idx >= 0:
			// A returning child re-attaching to its existing slot.
			slot = a.children[idx]
			a.obs.childReconnects.Inc()
			slot.gen++
			if old := slot.conn; old != nil && old != ev.conn {
				old.Close() // superseded: the child's new dial wins
			}
			slot.conn = ev.conn
			wg.Add(1)
			go readChild(idx, slot.gen, ev.conn)
		default:
			// Unknown coverage set: a re-homing child, when allowed.
			if !a.acceptNew {
				a.mu.Unlock()
				a.forget(ev.conn) // not one of ours
				return
			}
			slot = &childState{
				covers: append([]int(nil), ev.covers...),
				key:    key, conn: ev.conn, gen: 1,
			}
			a.children = append(a.children, slot)
			idx = len(a.children) - 1
			coverageChanged = true
			wg.Add(1)
			go readChild(idx, 1, ev.conn)
		}
		if ev.fence > slot.fence {
			slot.fence = ev.fence
		}
		slot.departed = false
		if !slot.alive {
			slot.alive = true
			living++
		}
		var stolen, union []int
		unionChanged := false
		if coverageChanged {
			// Steal the (re)claimed ids from every stale slot: each source id
			// is attributed to exactly one slot at any time, and the newest
			// hello wins. Covers are replaced wholesale, never mutated, so
			// pending reports keep their acceptance-time snapshots.
			for i, c := range a.children {
				if i == idx {
					continue
				}
				overlap := idsIntersect(c.covers, slot.covers)
				if len(overlap) == 0 {
					continue
				}
				stolen = append(stolen, overlap...)
				c.covers = idsMinus(c.covers, overlap)
				c.key = coversKey(c.covers)
				if len(c.covers) == 0 {
					// Nothing left to wait for or attribute; the slot stays
					// (slot indices are stable) but no longer counts.
					c.departed = true
				}
			}
			// Refresh the covered union and announce growth upstream so the
			// parent (re)attributes this subtree before its next flush.
			for _, c := range a.children {
				union = append(union, c.covers...)
			}
			union = core.NormalizeIDs(union)
			unionChanged = coversKey(union) != coversKey(a.covers)
			if unionChanged {
				a.covers = union
			}
		}
		a.memberGen.Add(1)
		a.recomputeRegular()
		liveSlots := 0
		for _, c := range a.children {
			if c.alive && !c.departed {
				liveSlots++
			}
		}
		joinCovers := slot.covers // replaced wholesale: header copy safe past unlock
		a.mu.Unlock()

		a.obs.childrenGauge.Set(int64(liveSlots))
		if len(stolen) > 0 {
			a.obs.steals.Inc()
			a.sendMember(memberRehome, core.NormalizeIDs(stolen))
		}
		if unionChanged {
			a.sendUpstreamBestEffort(Frame{Type: TypeHello, Epoch: a.upstream.Fence(),
				Payload: core.EncodeContributors(union)})
		}
		if attached {
			a.sendMember(memberJoin, joinCovers)
		}
	}

	// The tick drives both deadline flushes and the exit check, so it must be
	// fine-grained against the shorter of the two horizons.
	tick := a.timeout
	if a.reconnectWindow < tick {
		tick = a.reconnectWindow
	}
	ticker := time.NewTicker(tick / 4)
	defer ticker.Stop()
	defer func() {
		// Close connections first so blocked readers unwind, then drain the
		// channel while waiting for them — a reader stuck on a full channel
		// would otherwise deadlock the shutdown. Only then stop the merge
		// plane: with the readers gone nothing submits any more, and workers
		// flushing against the closed node fail fast (fail() drops the error).
		a.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
	drained:
		for {
			select {
			case <-ch:
			case <-done:
				break drained
			}
		}
		a.plane.stop()
	}()

	// Recovered epochs that were fully reported before the crash flush
	// immediately; partially reported ones wait out the usual deadline for
	// their missing children to re-send.
	a.mu.Lock()
	recoveredReady := settledClaims()
	a.mu.Unlock()
	submitAll(recoveredReady)

	for {
		select {
		case <-a.failCh:
			return a.runErr
		case ev := <-ch:
			switch ev.kind {
			case 'h':
				attach(ev)
			case 'd':
				a.mu.Lock()
				slot := a.children[ev.child]
				if ev.gen != slot.gen {
					a.mu.Unlock()
					continue // a superseded connection unwinding
				}
				a.obs.childDisconnects.Inc()
				slot.conn = nil
				var orphanIDs []int
				if slot.alive {
					slot.alive = false
					living--
					if living == 0 {
						lastAllGone = time.Now()
					}
					if !slot.departed && len(slot.covers) > 0 {
						orphanIDs = slot.covers
					}
				}
				// A down child completes no epoch: claim the ones whose every
				// remaining expected reporter is down too.
				ts := orphanClaims()
				a.mu.Unlock()
				a.sendMember(memberOrphan, orphanIDs)
				submitAll(ts)
			case 'l':
				// A graceful leave covering the slot's whole remaining coverage
				// drains the slot: its absence from future epochs is expected,
				// not a failure. A partial leave (some ids of a subtree drained)
				// just shrinks the coverage claim.
				a.mu.Lock()
				slot := a.children[ev.child]
				if ev.gen != slot.gen {
					a.mu.Unlock()
					continue
				}
				left := idsIntersect(slot.covers, ev.covers)
				if len(left) == 0 {
					a.mu.Unlock()
					continue
				}
				slot.covers = idsMinus(slot.covers, left)
				slot.key = coversKey(slot.covers)
				fullLeave := len(slot.covers) == 0
				if fullLeave {
					slot.departed = true
					// Drop the leaver's in-flight reports: every flush written
					// after the leave relay below must carry neither the
					// leaver's data nor a claim about it, or the querier —
					// which excludes departed sources from the contributor
					// set — would reject the epoch. An epoch straddling the
					// boundary degrades to partial, never to a wrong SUM.
					a.table.sweepChild(ev.child)
				}
				a.covers = idsMinus(a.covers, left)
				a.memberGen.Add(1)
				a.recomputeRegular()
				a.mu.Unlock()
				if fullLeave {
					// Barrier: a merge worker may already have extracted a flush
					// still carrying the leaver's data. Wait for every in-flight
					// flush (upstream write included) before relaying the Leave,
					// so the querier never sees post-leave frames naming the
					// leaver. Partial leaves keep the claim, so they need none.
					a.plane.drain()
				}
				a.sendMember(memberLeave, left)
				// Tell the parent too: its covered union must shrink before its
				// next flush, or every future epoch reads as partial.
				a.sendUpstreamBestEffort(Frame{Type: TypeLeave, Payload: core.EncodeContributors(left)})
				a.mu.Lock()
				ts := settledClaims()
				a.mu.Unlock()
				submitAll(ts)
			case 'm':
				a.mu.RLock()
				stale := ev.gen != a.children[ev.child].gen
				a.mu.RUnlock()
				if stale {
					continue
				}
				a.sendUpstreamBestEffort(Frame{Type: TypeMember, Payload: ev.payload})
			}
		case <-ticker.C:
			a.claimDeadlines(time.Now())
			if a.isClosed() {
				return nil
			}
			// A standby (AcceptNew) stays up with zero children indefinitely:
			// its whole purpose is to be there when orphans arrive.
			if living == 0 && a.table.open.Load() == 0 && !a.acceptNew &&
				time.Since(lastAllGone) >= a.reconnectWindow {
				// Let in-flight flushes finish their upstream writes before the
				// deferred shutdown severs the link.
				a.plane.drain()
				return nil
			}
		}
	}
}

// EpochResult is a querier-side evaluation outcome delivered on the Results
// channel.
type EpochResult struct {
	Epoch        prf.Epoch
	Sum          uint64
	Contributors int
	Coverage     float64 // contributing fraction of the deployment (recovered epochs)
	Partial      bool    // some sources did not contribute
	Recovered    bool    // served via forensic localization and re-query
	Failed       []int   // sorted non-contributor ids
	Excluded     []int   // sorted ids excluded by quarantine/localization
	Probes       int     // localization probes spent on this epoch
	Err          error
}

// Health summarises the querier's view of the deployment over all evaluated
// epochs — the per-epoch degradation contract made observable. It is a thin
// read-side view over the node's metrics registry: every field is backed by
// an atomic counter, so the snapshot is coherent without a long-held lock and
// counts are uint64 end-to-end (no int truncation, no 32-bit wrap).
type Health struct {
	Epochs         uint64         // epochs evaluated and verified (full or partial)
	Full           uint64         // epochs with every source contributing
	Partial        uint64         // epochs verified over a strict subset
	Empty          uint64         // epochs in which no source contributed
	Rejected       uint64         // epochs failing integrity or decode
	Recovered      uint64         // rejected epochs served after forensic recovery
	RootReconnects uint64         // times the root aggregator re-attached
	Missed         map[int]uint64 // per-source count of epochs it missed

	// Tree snapshots the live contributor view reconciled from membership
	// events: who is attached where, who is orphaned, how many re-parents.
	Tree TreeStats

	// KeySchedule snapshots the evaluation engine's counters: derivations,
	// cache hits/misses, prefetch wins and cumulative eval latency.
	KeySchedule core.ScheduleStats

	// Forensics snapshots the recovery counters (zero when no probe backend
	// is installed — see EnableForensics).
	Forensics ForensicsStats

	// Durability snapshots the crash-recovery bookkeeping (zero when the
	// node runs without a state directory).
	Durability DurabilityStats
}

// QuerierNode terminates the tree: it accepts the root aggregator's
// connection (and re-accepts it after a failure), evaluates every epoch and
// emits EpochResults. A partial epoch yields the exact verified partial SUM
// together with the sorted non-contributor list rather than an error.
type QuerierNode struct {
	q       *core.Querier
	sched   *core.Schedule
	ln      net.Listener
	Results chan EpochResult

	mu        sync.Mutex
	lastEval  uint64
	rootFence uint64 // max fence epoch declared by any root hello
	obs       *querierObs
	tree      *treeView                    // live contributor view from member events
	missed    *boundedMap[int, uint64]     // per-source missed-epoch counters
	committed *boundedMap[uint64, ackInfo] // settled epochs → remembered ack
	roots     int
	rootConn  net.Conn // live root connection, for crash teardown
	forensics *forensics
	state     *querierState // durable crash-recovery state; nil without a StateDir
	lnClosed  bool
	crashed   bool

	pipeline *PipelineConfig // non-nil selects the pipelined serve path
	// forMu serializes forensics mutation (quarantine ticks, localization)
	// across pipelined workers; the serial path is single-threaded and never
	// contends on it.
	forMu sync.Mutex
}

// QuerierConfig configures NewQuerierNodeConfig.
type QuerierConfig struct {
	ListenAddr string
	// Schedule tunes the evaluation engine (worker count, cache, prefetch).
	Schedule core.ScheduleConfig
	// StateDir, when set, makes the node durable: every epoch commit is
	// journaled (fsynced before the result is emitted or acked) and recovered
	// on restart, so a crashed querier resumes at its exact evaluation
	// frontier and never re-answers a committed epoch.
	StateDir string
	// CheckpointEvery is how many committed epochs elapse between snapshot
	// checkpoints (default DefaultCheckpointEvery).
	CheckpointEvery int
	// MissedCap bounds the per-source missed-epoch counters in Health
	// (default DefaultMissedCap).
	MissedCap int
	// CommittedCap bounds the committed-epoch dedup window (default
	// DefaultCommittedCap).
	CommittedCap int
	// Metrics is the registry the node's counters expose through; nil gives
	// the node a private registry (reachable via Metrics()).
	Metrics *obs.Registry
	// TraceCapacity sizes the epoch-lifecycle trace ring (default
	// obs.DefaultTraceCapacity).
	TraceCapacity int
	// Pipeline, when non-nil, runs the batched ingest/verify/commit pipeline:
	// frames decode and verify on worker goroutines while earlier epochs
	// journal and fsync, commits share group-commit fsyncs, and result acks
	// coalesce into vectored writes. Results may emit out of epoch order. Nil
	// keeps the classic serial serve loop.
	Pipeline *PipelineConfig
}

// NewQuerierNode starts listening for the root aggregator. Evaluation runs
// through a key-schedule engine sized to the machine: parallel per-source
// derivations, an EpochState LRU (duplicate sinks and retransmits hit a
// constant-time path) and one-epoch-ahead prefetch.
func NewQuerierNode(listenAddr string, q *core.Querier) (*QuerierNode, error) {
	return NewQuerierNodeWith(listenAddr, q, core.ScheduleConfig{Prefetch: true})
}

// NewQuerierNodeWith is NewQuerierNode with an explicit schedule
// configuration (worker count, cache size, prefetch).
func NewQuerierNodeWith(listenAddr string, q *core.Querier, cfg core.ScheduleConfig) (*QuerierNode, error) {
	return NewQuerierNodeConfig(QuerierConfig{ListenAddr: listenAddr, Schedule: cfg}, q)
}

// NewQuerierNodeConfig builds a querier node from a full configuration,
// recovering any durable state in cfg.StateDir before it starts listening.
func NewQuerierNodeConfig(cfg QuerierConfig, q *core.Querier) (*QuerierNode, error) {
	if cfg.MissedCap <= 0 {
		cfg.MissedCap = DefaultMissedCap
	}
	if cfg.CommittedCap <= 0 {
		cfg.CommittedCap = DefaultCommittedCap
	}
	qn := &QuerierNode{
		q: q, sched: core.NewSchedule(q, cfg.Schedule),
		Results:   make(chan EpochResult, 64),
		obs:       newQuerierObs(cfg.Metrics, cfg.TraceCapacity),
		missed:    newBoundedMap[int, uint64](cfg.MissedCap),
		committed: newBoundedMap[uint64, ackInfo](cfg.CommittedCap),
	}
	qn.tree = newTreeView(qn.obs.reg)
	// Recover before listening: the root's hello-ack must carry the restored
	// evaluation frontier as its resync epoch. Recovery replays counts into
	// the obs counters, so the bundle must exist first.
	if cfg.StateDir != "" {
		if err := qn.openQuerierState(cfg.StateDir, cfg.CheckpointEvery); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		qn.closeState()
		return nil, err
	}
	qn.ln = ln
	if cfg.Pipeline != nil {
		p := *cfg.Pipeline
		p.applyDefaults()
		qn.pipeline = &p
	}
	qn.obs.bind(qn)
	return qn, nil
}

// Addr returns the address the querier listens on (for wiring up the root).
func (qn *QuerierNode) Addr() string { return qn.ln.Addr().String() }

// Close stops the listener and syncs any durable state. Idempotent: extra
// calls (a signal handler racing a deferred Close) are no-ops.
func (qn *QuerierNode) Close() error {
	qn.mu.Lock()
	if qn.lnClosed {
		qn.mu.Unlock()
		return nil
	}
	qn.lnClosed = true
	qn.mu.Unlock()
	err := qn.ln.Close()
	qn.closeState()
	return err
}

// Crash tears the node down the way a process kill would: no further commit
// records, no final journal fsync. Recovery is exercised by rebuilding the
// node from its state directory. This is the restart-chaos hook; production
// shutdown is Close.
func (qn *QuerierNode) Crash() {
	qn.mu.Lock()
	if qn.crashed {
		qn.mu.Unlock()
		return
	}
	qn.crashed = true
	qn.lnClosed = true
	st := qn.state
	root := qn.rootConn
	qn.mu.Unlock()
	if st != nil {
		// Power-loss grade: journal records not yet covered by an fsync are
		// gone — exactly what the group-commit append-to-fsync window risks.
		// For the serial path (fsync riding every append) this truncates
		// nothing beyond what Abandon would lose.
		st.store.CrashAbandon()
	}
	qn.ln.Close()
	if root != nil {
		// A dead process holds no sockets: sever the root link so in-flight
		// frames are lost exactly as a kill would lose them.
		root.Close()
	}
}

// Health returns a snapshot of the per-epoch health summary. It is a view
// over the metrics registry: counters read lock-free from their atomics, and
// qn.mu is held only for the missed-source map — never across the schedule,
// forensics or durability snapshots, which take their own locks.
func (qn *QuerierNode) Health() Health {
	h := Health{
		Epochs:         qn.obs.served.Value(),
		Full:           qn.obs.full.Value(),
		Partial:        qn.obs.partial.Value(),
		Empty:          qn.obs.empty.Value(),
		Rejected:       qn.obs.rejected.Value(),
		Recovered:      qn.obs.recovered.Value(),
		RootReconnects: qn.obs.rootReconnects.Value(),
	}
	qn.mu.Lock()
	h.Missed = make(map[int]uint64, qn.missed.len())
	qn.missed.each(func(id int, n uint64) {
		h.Missed[id] = n
	})
	qn.mu.Unlock()
	h.Durability = qn.DurabilityStats()
	h.KeySchedule = qn.sched.Stats()
	h.Forensics = qn.ForensicsStats()
	h.Tree = qn.tree.stats()
	return h
}

// Metrics returns the node's metrics registry — the scrape target for the
// /metrics endpoint and the registry shared collectors bind into.
func (qn *QuerierNode) Metrics() *obs.Registry { return qn.obs.reg }

// Tracer returns the node's epoch-lifecycle tracer. Each evaluated epoch is
// one span: reports-received → verify/reject → forensics → commit.
func (qn *QuerierNode) Tracer() *obs.Tracer { return qn.obs.tracer }

// ScheduleStats exposes the evaluation engine's counters directly.
func (qn *QuerierNode) ScheduleStats() core.ScheduleStats { return qn.sched.Stats() }

// noteRootFence raises the fence epoch carried by a root hello: the highest
// epoch the root's subtree may already have handed to a previous link. The
// fence only ever rises, so a zombie reconnecting with a stale (lower) fence
// cannot reopen epochs a newer root already disclaimed.
func (qn *QuerierNode) noteRootFence(fence uint64) {
	qn.mu.Lock()
	if fence > qn.rootFence {
		qn.rootFence = fence
	}
	qn.mu.Unlock()
}

// fencedEpoch reports whether an uncommitted data frame for epoch t must be
// dropped because t lies at or below the declared root fence.
func (qn *QuerierNode) fencedEpoch(t uint64) bool {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	return qn.rootFence > 0 && t <= qn.rootFence
}

// withDeparted widens a per-epoch failed list with the gracefully departed
// sources: after a drain the tree's flushes neither carry the leaver's data
// nor name it as failed, so verification must subtract it from the expected
// contributor set itself or reject every post-leave epoch.
func (qn *QuerierNode) withDeparted(failed []int) []int {
	gone := qn.tree.departedIDs()
	if len(gone) == 0 {
		return failed
	}
	return core.NormalizeIDs(append(append([]int{}, failed...), gone...))
}

// Run accepts root connections and evaluates epochs until the listener is
// closed, then closes the Results channel. A root that disconnects may
// redial, re-handshake and resume.
func (qn *QuerierNode) Run() error {
	defer close(qn.Results)
	defer qn.closeState()
	for {
		conn, err := qn.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		qn.mu.Lock()
		if qn.crashed {
			qn.mu.Unlock()
			conn.Close()
			return nil
		}
		qn.roots++
		if qn.roots > 1 {
			qn.obs.rootReconnects.Inc()
		}
		qn.rootConn = conn
		qn.mu.Unlock()
		err = qn.serve(conn)
		qn.mu.Lock()
		if qn.rootConn == conn {
			qn.rootConn = nil
		}
		qn.mu.Unlock()
		conn.Close()
		if err != nil {
			return err
		}
	}
}

// serve handles one root connection until it closes. Protocol violations are
// fatal (misconfigured deployment); IO errors just end the connection and the
// root redials.
func (qn *QuerierNode) serve(conn net.Conn) error {
	f, err := ReadFrame(conn)
	if err != nil {
		return nil // root vanished before the hello; await its redial
	}
	if f.Type != TypeHello {
		return fmt.Errorf("transport: querier: unexpected frame type %d in hello", f.Type)
	}
	covers, err := core.DecodeContributorsBounded(f.Payload, qn.q.Params().N())
	if err != nil {
		return err
	}
	// Canonical ids in [0, N) with length N can only be the full set. After
	// graceful leaves the root legitimately covers less: every id missing from
	// its claim must be one the membership view saw depart.
	if len(covers) != qn.q.Params().N() {
		for _, id := range core.Subtract(qn.q.Params().N(), covers) {
			if !qn.tree.departed(id) {
				return fmt.Errorf("transport: root covers %d sources, deployment has %d (source %d unaccounted)",
					len(covers), qn.q.Params().N(), id)
			}
		}
	}
	qn.noteRootFence(f.Epoch)
	qn.mu.Lock()
	resync := qn.lastEval
	qn.mu.Unlock()
	if err := WriteFrame(conn, Frame{Type: TypeHello, Epoch: resync}); err != nil {
		return nil
	}

	if qn.pipeline != nil {
		return qn.servePipelined(conn)
	}

	field := qn.q.Params().Field()
	ackable := true // stop acking (but keep evaluating) once the root is gone
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return nil // root closed or crashed: await its redial
		}
		t := prf.Epoch(f.Epoch)
		// A frame for an epoch already committed — the root re-sending after
		// a crash on either side — is answered from the remembered ack, never
		// re-evaluated or re-emitted.
		if ack, committed := qn.committedAck(t); committed {
			if f.Type == TypePSR && ackable {
				reply := EncodeResult(ack.sum, ack.ok)
				if err := WriteFrame(conn, Frame{Type: TypeResult, Epoch: f.Epoch, Payload: reply}); err != nil {
					ackable = false
				}
			}
			continue
		}
		// Uncommitted data frames at or below the fence are suspect: a newer
		// root declared those epochs may have travelled via a previous link
		// (re-parenting), so a zombie's late flush is dropped, never evaluated.
		if (f.Type == TypePSR || f.Type == TypeFailure) && qn.fencedEpoch(f.Epoch) {
			qn.obs.fenceRejects.Inc()
			continue
		}
		switch f.Type {
		case TypeHello:
			// A mid-stream hello refreshes the root's coverage claim (a subtree
			// re-homed below it) and may raise the fence.
			qn.noteRootFence(f.Epoch)
		case TypeMember:
			if ev, err := decodeMember(f.Payload, qn.q.Params().N()); err == nil {
				qn.tree.apply(ev)
			}
		case TypeLeave:
			if ids, err := core.DecodeContributorsBounded(f.Payload, qn.q.Params().N()); err == nil {
				qn.tree.apply(memberEvent{kind: memberLeave, label: conn.RemoteAddr().String(), ids: ids})
			}
		case TypePSR:
			qn.obs.tracer.Begin(f.Epoch)
			qn.obs.tracer.Mark(f.Epoch, obs.StageReport)
			psr, failed, err := decodeReport(f.Payload, field, qn.q.Params().N())
			if err != nil {
				qn.record(EpochResult{Epoch: t, Err: err})
				continue
			}
			failed = qn.withDeparted(failed)
			var contributors []int // nil = all sources, the schedule's fast path
			if len(failed) > 0 {
				contributors = core.Subtract(qn.q.Params().N(), failed)
			}
			start := time.Now()
			res, evalErr := qn.sched.Evaluate(t, psr, contributors)
			qn.obs.evalSeconds.Observe(time.Since(start).Seconds())
			out := EpochResult{Epoch: t, Failed: failed, Partial: len(failed) > 0, Err: evalErr}
			switch {
			case evalErr == nil:
				qn.obs.tracer.Mark(f.Epoch, obs.StageVerify)
				out.Sum = res.Sum
				out.Contributors = res.N
				out.Coverage = float64(res.N) / float64(qn.q.Params().N())
				qn.tickForensics()
			case qn.forensics != nil && integrityRejection(evalErr):
				qn.obs.tracer.Mark(f.Epoch, obs.StageReject)
				qn.obs.tracer.Mark(f.Epoch, obs.StageForensics)
				out = qn.recover(t, failed, out)
			default:
				qn.obs.tracer.Mark(f.Epoch, obs.StageReject)
			}
			qn.record(out)
			if ackable {
				ack := EncodeResult(out.Sum, out.Err == nil)
				if err := WriteFrame(conn, Frame{Type: TypeResult, Epoch: f.Epoch, Payload: ack}); err != nil {
					// The root departed after sending its final epochs; its
					// remaining frames are still buffered — keep evaluating
					// them, just stop acknowledging.
					ackable = false
				}
			}
		case TypeFailure:
			qn.obs.tracer.Begin(f.Epoch)
			qn.obs.tracer.Mark(f.Epoch, obs.StageReport)
			failed, err := core.DecodeContributorsBounded(f.Payload, qn.q.Params().N())
			if err != nil {
				qn.record(EpochResult{Epoch: t, Err: err})
				continue
			}
			qn.record(EpochResult{Epoch: t, Partial: true, Failed: failed, Err: ErrNoContributors})
		}
	}
}

// record commits the epoch durably (when a state directory is configured),
// updates the health summary and the resync point, and emits the result. The
// journal append fsyncs before the result leaves the node, so a committed
// epoch survives any crash that follows.
func (qn *QuerierNode) record(res EpochResult) {
	qn.recordWith(res, false)
}

// recordWith is record's shared core. With grouped=false (the serial serve
// loop) the commit fsync rides the journal append. With grouped=true (the
// pipelined workers) the append happens under qn.mu but the fsync is deferred
// to a group-commit SyncTo outside the lock, so concurrent epochs share one
// fsync; the emit still strictly follows durability. The returned ackInfo and
// flag tell the caller what to acknowledge: grouped callers racing on the
// same epoch get the stored ack of whoever committed first (the
// concurrent-duplicate guard — the epoch is emitted exactly once), and a
// crashed node acknowledges nothing.
func (qn *QuerierNode) recordWith(res EpochResult, grouped bool) (ackInfo, bool) {
	qn.mu.Lock()
	if qn.crashed {
		// A killed process delivers nothing: committing or emitting here would
		// leave an answer the restarted node cannot know about.
		qn.mu.Unlock()
		return ackInfo{}, false
	}
	if grouped {
		// Two workers can carry the same epoch past the ingest dedup check;
		// the second one lands here and re-acks instead of double-committing.
		if ack, ok := qn.committed.get(uint64(res.Epoch)); ok {
			if qn.state != nil {
				qn.state.ctr.dedupHits.Add(1)
			}
			qn.mu.Unlock()
			return ack, true
		}
	}
	if uint64(res.Epoch) > qn.lastEval {
		qn.lastEval = uint64(res.Epoch)
	}
	var kind uint8
	var outcome string
	switch {
	case errors.Is(res.Err, ErrNoContributors):
		kind = kindEmpty
		outcome = "empty"
		qn.obs.empty.Inc()
	case res.Err != nil:
		kind = kindRejected
		outcome = "rejected"
		qn.obs.rejected.Inc()
	case res.Partial:
		kind = kindPartial
		outcome = "partial"
		qn.obs.served.Inc()
		qn.obs.partial.Inc()
	default:
		kind = kindFull
		outcome = "full"
		qn.obs.served.Inc()
		qn.obs.full.Inc()
	}
	if res.Recovered {
		outcome = "recovered"
		qn.obs.recovered.Inc()
	}
	if res.Err == nil || errors.Is(res.Err, ErrNoContributors) {
		for _, id := range res.Failed {
			qn.bumpMissed(id)
		}
	}
	// Only definitive outcomes commit. A rejected epoch produced no answer —
	// it stays retryable, so a later re-send (or a post-restart replay from
	// the tree) can still serve it.
	var syncOff int64
	if kind != kindRejected {
		qn.committed.put(uint64(res.Epoch), ackInfo{sum: res.Sum, ok: res.Err == nil})
		if grouped {
			syncOff = qn.commitDurableNoSync(res, kind)
		} else {
			qn.commitDurable(res, kind)
		}
		qn.obs.tracer.Mark(uint64(res.Epoch), obs.StageCommit)
	}
	qn.mu.Unlock()
	if syncOff > 0 {
		// Group commit: make the append durable before the result leaves the
		// node, sharing the fsync with every concurrently committing worker.
		if err := qn.state.store.Journal().SyncTo(syncOff); err != nil {
			qn.state.ctr.journalErrors.Add(1)
			qn.mu.Lock()
			crashed := qn.crashed
			qn.mu.Unlock()
			if crashed {
				// The crash hook fired inside the append-to-fsync window: the
				// record is gone from the journal and must not be emitted.
				return ackInfo{}, false
			}
			// A real IO error degrades durability (counted above) but the
			// verified result still serves, matching the serial path.
		}
	}
	qn.obs.tracer.End(uint64(res.Epoch), outcome)
	qn.Results <- res
	return ackInfo{sum: res.Sum, ok: res.Err == nil}, true
}

package transport

import "testing"

func TestBoundedMapEvictsOldestFirst(t *testing.T) {
	m := newBoundedMap[int, string](3)
	for i, v := range []string{"a", "b", "c"} {
		m.put(i, v)
	}
	m.put(3, "d") // evicts 0
	if m.len() != 3 {
		t.Fatalf("len = %d, want 3", m.len())
	}
	if m.has(0) {
		t.Fatal("oldest entry survived past the cap")
	}
	if v, ok := m.get(1); !ok || v != "b" {
		t.Fatalf("entry 1 = %q %v", v, ok)
	}
	if m.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", m.evictions)
	}
}

func TestBoundedMapUpdateKeepsPosition(t *testing.T) {
	m := newBoundedMap[int, int](2)
	m.put(1, 10)
	m.put(2, 20)
	m.put(1, 11) // update, not re-insert: 1 stays oldest
	m.put(3, 30) // evicts 1, not 2
	if m.has(1) {
		t.Fatal("updated entry was treated as newest")
	}
	if v, _ := m.get(2); v != 20 {
		t.Fatalf("entry 2 = %d", v)
	}
}

func TestBoundedMapIterationOrder(t *testing.T) {
	m := newBoundedMap[int, int](4)
	for _, k := range []int{7, 3, 9, 1} {
		m.put(k, k*10)
	}
	var keys []int
	m.each(func(k, _ int) { keys = append(keys, k) })
	want := []int{7, 3, 9, 1}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", keys, want)
		}
	}
}

func TestBoundedMapMinimumCapacity(t *testing.T) {
	m := newBoundedMap[int, int](0) // clamped to 1
	m.put(1, 1)
	m.put(2, 2)
	if m.len() != 1 || !m.has(2) || m.has(1) {
		t.Fatalf("cap-0 map: len %d", m.len())
	}
}

package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/race"
)

// memSink collects flushed batches for inspection.
type memSink struct {
	mu      sync.Mutex
	data    bytes.Buffer
	batches int
	failAt  int // fail the n-th WriteBatch (1-based); 0 = never
	calls   int
}

func (s *memSink) WriteBatch(segs [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.failAt > 0 && s.calls >= s.failAt {
		return errors.New("sink: injected failure")
	}
	for _, seg := range segs {
		s.data.Write(seg)
	}
	s.batches++
	return nil
}

func (s *memSink) snapshot() ([]byte, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.data.Bytes()...), s.batches
}

// readAll decodes every frame from raw, failing the test on any tear.
func readAll(t *testing.T, raw []byte) []Frame {
	t.Helper()
	var out []Frame
	fr := NewFrameReader(bytes.NewReader(raw))
	for {
		f, err := fr.Read()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("decoding flushed stream: %v", err)
		}
		f.Payload = append([]byte(nil), f.Payload...)
		out = append(out, f)
	}
}

func TestFrameWriterCoalesces(t *testing.T) {
	sink := &memSink{}
	fw := NewFrameWriter(FrameWriterConfig{Sink: sink, FlushDelay: time.Hour})
	const n = 50
	for i := 0; i < n; i++ {
		if err := fw.Enqueue(Frame{Type: TypePSR, Epoch: uint64(i), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, batches := sink.snapshot()
	frames := readAll(t, raw)
	if len(frames) != n {
		t.Fatalf("decoded %d frames, want %d", len(frames), n)
	}
	for i, f := range frames {
		if f.Epoch != uint64(i) || f.Type != TypePSR || len(f.Payload) != 1 || f.Payload[0] != byte(i) {
			t.Fatalf("frame %d mangled: %+v", i, f)
		}
	}
	if batches >= n {
		t.Fatalf("no coalescing: %d batches for %d frames", batches, n)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameWriterDeadlineFlush(t *testing.T) {
	sink := &memSink{}
	fw := NewFrameWriter(FrameWriterConfig{Sink: sink, FlushDelay: 5 * time.Millisecond})
	defer fw.Close()
	if err := fw.Enqueue(Frame{Type: TypePSR, Epoch: 9, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		raw, _ := sink.snapshot()
		if len(raw) > 0 {
			frames := readAll(t, raw)
			if len(frames) != 1 || frames[0].Epoch != 9 {
				t.Fatalf("deadline flush delivered %+v", frames)
			}
			st := fw.Stats()
			if st.DeadlineFlushes == 0 {
				t.Fatalf("flush not attributed to deadline: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never flushed by deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFrameWriterOrderUnderLoad hammers the writer from several goroutines
// and checks per-producer frame order survives batching (epochs from one
// producer must arrive monotonically).
func TestFrameWriterOrderUnderLoad(t *testing.T) {
	sink := &memSink{}
	fw := NewFrameWriter(FrameWriterConfig{
		Sink: sink, MaxBatchBytes: 1 << 10, MaxBatchFrames: 7, FlushDelay: 100 * time.Microsecond,
	})
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				err := fw.EnqueueAppend(byte(p+1), uint64(i), 2, func(dst []byte) {
					dst[0], dst[1] = byte(p), byte(i)
				})
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := sink.snapshot()
	frames := readAll(t, raw)
	if len(frames) != producers*perProducer {
		t.Fatalf("decoded %d frames, want %d", len(frames), producers*perProducer)
	}
	next := make([]uint64, producers+1)
	for _, f := range frames {
		p := int(f.Type)
		if f.Epoch != next[p] {
			t.Fatalf("producer %d: epoch %d arrived, want %d", p, f.Epoch, next[p])
		}
		next[p]++
	}
}

// TestFrameWriterOversizedFrame routes a frame bigger than the batch buffer
// through the dedicated-segment path without tearing neighbours.
func TestFrameWriterOversizedFrame(t *testing.T) {
	sink := &memSink{}
	fw := NewFrameWriter(FrameWriterConfig{Sink: sink, MaxBatchBytes: 256, FlushDelay: time.Hour})
	big := bytes.Repeat([]byte{0xAB}, 4096)
	if err := fw.Enqueue(Frame{Type: TypePSR, Epoch: 1, Payload: []byte("small")}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Enqueue(Frame{Type: TypeFailure, Epoch: 2, Payload: big}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Enqueue(Frame{Type: TypePSR, Epoch: 3, Payload: []byte("after")}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := sink.snapshot()
	frames := readAll(t, raw)
	if len(frames) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(frames))
	}
	if !bytes.Equal(frames[1].Payload, big) || frames[2].Epoch != 3 {
		t.Fatal("oversized frame mangled its batch")
	}
}

// TestFrameWriterStickyError: after the sink fails, enqueues report the
// error and nothing further reaches the sink.
func TestFrameWriterStickyError(t *testing.T) {
	sink := &memSink{failAt: 1}
	fw := NewFrameWriter(FrameWriterConfig{Sink: sink, FlushDelay: time.Millisecond})
	defer fw.Close()
	if err := fw.Enqueue(Frame{Type: TypePSR, Epoch: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err) // the failure lands at flush time, not enqueue time
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := fw.Enqueue(Frame{Type: TypePSR, Epoch: 2, Payload: []byte("y")}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink error never became sticky")
		}
		time.Sleep(time.Millisecond)
	}
	if raw, _ := sink.snapshot(); len(raw) != 0 {
		t.Fatalf("failed sink still accumulated %d bytes", len(raw))
	}
}

// TestFrameWriterConnSink round-trips a batch through a real TCP loopback
// pair via the vectored ConnSink.
func TestFrameWriterConnSink(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		frames []Frame
		err    error
	}
	got := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			got <- result{err: err}
			return
		}
		defer c.Close()
		var frames []Frame
		fr := NewFrameReader(c)
		for len(frames) < 200 {
			f, err := fr.Read()
			if err != nil {
				got <- result{err: err}
				return
			}
			f.Payload = append([]byte(nil), f.Payload...)
			frames = append(frames, f)
		}
		got <- result{frames: frames}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := NewFrameWriter(FrameWriterConfig{Sink: &ConnSink{W: conn}, FlushDelay: 200 * time.Microsecond})
	for i := 0; i < 200; i++ {
		if err := fw.Enqueue(Frame{Type: TypePSR, Epoch: uint64(i), Payload: []byte(fmt.Sprintf("p%03d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	for i, f := range r.frames {
		if f.Epoch != uint64(i) || string(f.Payload) != fmt.Sprintf("p%03d", i) {
			t.Fatalf("frame %d corrupted over TCP: %+v", i, f)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
}

// devNullSink discards batches; it keeps the steady-state alloc gate honest
// by still walking every segment.
type devNullSink struct{ n int }

func (s *devNullSink) WriteBatch(segs [][]byte) error {
	for _, seg := range segs {
		s.n += len(seg)
	}
	return nil
}

// TestFrameWriterEnqueueZeroAlloc is the acceptance gate: the steady-state
// encode path (EnqueueAppend into a pooled batch buffer) allocates nothing.
func TestFrameWriterEnqueueZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation inhibits stack allocation; gate runs in the non-race suite")
	}
	fw := NewFrameWriter(FrameWriterConfig{
		Sink: &devNullSink{}, MaxBatchBytes: 1 << 20, MaxBatchFrames: 1 << 20, FlushDelay: time.Hour,
	})
	defer fw.Close()
	payload := bytes.Repeat([]byte{0x5A}, 36+4)
	fill := func(dst []byte) { copy(dst, payload) }
	var epoch uint64
	allocs := testing.AllocsPerRun(2000, func() {
		epoch++
		if err := fw.EnqueueAppend(TypePSR, epoch, len(payload), fill); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EnqueueAppend allocates %.1f/op, want 0", allocs)
	}
}

// TestWriteFramePooledZeroAlloc gates the non-batched path too: WriteFrame's
// encode buffer comes from the pool.
func TestWriteFramePooledZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation inhibits stack allocation; gate runs in the non-race suite")
	}
	payload := bytes.Repeat([]byte{0x5A}, 36+4)
	f := Frame{Type: TypePSR, Epoch: 42, Payload: payload}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := WriteFrame(io.Discard, f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteFrame allocates %.1f/op, want 0", allocs)
	}
}

// TestFrameReaderReuseZeroAlloc gates the receive side: FrameReader recycles
// its buffer across frames.
func TestFrameReaderReuseZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation inhibits stack allocation; gate runs in the non-race suite")
	}
	var stream bytes.Buffer
	f := Frame{Type: TypePSR, Epoch: 7, Payload: bytes.Repeat([]byte{1}, 36+4)}
	for i := 0; i < 4000; i++ {
		if err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&stream)
	if _, err := fr.Read(); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := fr.Read(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FrameReader.Read allocates %.1f/op, want 0", allocs)
	}
}

// TestFrameReaderRejectsBeforeAlloc: a hostile length prefix above the
// configured max is rejected without the reader growing its buffer.
func TestFrameReaderRejectsBeforeAlloc(t *testing.T) {
	var stream bytes.Buffer
	if err := WriteFrame(&stream, Frame{Type: TypePSR, Epoch: 1, Payload: bytes.Repeat([]byte{1}, 1<<12)}); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&stream)
	fr.MaxPayload = 64
	if _, err := fr.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame accepted: %v", err)
	}
	if cap(fr.buf) > 1024 {
		t.Fatalf("reader allocated %d bytes for a rejected frame", cap(fr.buf))
	}
}

package transport

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/chaos"
	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
)

// TestChaosMidTreeLinkKillRestart is the fault-tolerance acceptance test: a
// mid-tree aggregator's child link (aggA → root) runs through a seeded chaos
// injector that kills it mid-run and keeps it dark for a while. The cluster
// must converge — the child redials with backoff and re-handshakes, epochs
// lost to the outage surface as exact verified partial SUMs with the sorted
// non-contributor list, and once the link heals subsequent epochs report the
// full contributor set. Every flushed epoch's SUM is checked against the
// recomputed subset sum of its listed contributors (the querier's integrity
// check recomputes the matching Σss).
func TestChaosMidTreeLinkKillRestart(t *testing.T) {
	q, sources, err := core.Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()
	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	go qn.Run()

	rootAddr := freeAddr(t)
	aggAAddr := freeAddr(t)
	aggBAddr := freeAddr(t)
	inj := chaos.New(chaos.Config{Seed: 1})

	var wg sync.WaitGroup
	var aggA *AggregatorNode
	aggAReady := make(chan struct{})
	startAgg := func(cfg AggregatorConfig, isA bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			node, err := NewAggregatorNode(cfg, field)
			if err != nil {
				t.Errorf("aggregator %s: %v", cfg.ListenAddr, err)
				if isA {
					close(aggAReady)
				}
				return
			}
			if isA {
				aggA = node
				close(aggAReady)
			}
			if err := node.Run(); err != nil {
				t.Errorf("aggregator %s run: %v", cfg.ListenAddr, err)
			}
		}()
	}
	startAgg(AggregatorConfig{
		ListenAddr: rootAddr, ParentAddr: qn.Addr(),
		NumChildren: 2, Timeout: 700 * time.Millisecond,
	}, false)
	// aggA's upstream link to the root goes through the chaos injector; its
	// redial policy is seeded so the whole failure sequence replays.
	startAgg(AggregatorConfig{
		ListenAddr: aggAAddr, ParentAddr: rootAddr,
		NumChildren: 2, Timeout: 250 * time.Millisecond,
		Dial: inj.Dial,
		Backoff: Backoff{
			Initial: 25 * time.Millisecond, Max: 250 * time.Millisecond,
			MaxElapsed: 30 * time.Second,
			Rand:       rand.New(rand.NewSource(2)),
		},
	}, true)
	startAgg(AggregatorConfig{
		ListenAddr: aggBAddr, ParentAddr: rootAddr,
		NumChildren: 2, Timeout: 250 * time.Millisecond,
	}, false)
	time.Sleep(50 * time.Millisecond) // listeners up

	nodes := make([]*SourceNode, 4)
	for i, s := range sources {
		addr := aggAAddr
		if i >= 2 {
			addr = aggBAddr
		}
		n, err := DialSource(addr, s)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}

	value := func(i int, epoch prf.Epoch) uint64 { return uint64(i+1) * 10 * uint64(epoch) }
	reportAll := func(epoch prf.Epoch) {
		t.Helper()
		for i, n := range nodes {
			if err := n.Report(epoch, value(i, epoch)); err != nil {
				t.Fatalf("source %d epoch %d: %v", i, epoch, err)
			}
		}
	}
	// verify checks the degradation contract on one result: exact SUM over
	// exactly the listed contributors, non-contributors sorted.
	verify := func(res EpochResult) {
		t.Helper()
		if res.Err != nil {
			t.Fatalf("epoch %d rejected: %v", res.Epoch, res.Err)
		}
		var want uint64
		failed := map[int]bool{}
		for i, prev := 0, -1; i < len(res.Failed); i++ {
			if res.Failed[i] <= prev {
				t.Fatalf("epoch %d: non-contributor list not sorted: %v", res.Epoch, res.Failed)
			}
			prev = res.Failed[i]
			failed[res.Failed[i]] = true
		}
		for i := range nodes {
			if !failed[i] {
				want += value(i, res.Epoch)
			}
		}
		if res.Sum != want {
			t.Fatalf("epoch %d: SUM %d, want %d over contributors (failed %v)",
				res.Epoch, res.Sum, want, res.Failed)
		}
		if res.Contributors != len(nodes)-len(res.Failed) {
			t.Fatalf("epoch %d: %d contributors, failed %v", res.Epoch, res.Contributors, res.Failed)
		}
	}

	// Phase 1: healthy epochs.
	for epoch := prf.Epoch(1); epoch <= 2; epoch++ {
		reportAll(epoch)
		res := waitResult(t, qn)
		verify(res)
		if res.Partial {
			t.Fatalf("healthy epoch %d was partial: %+v", epoch, res)
		}
	}

	// Phase 2: kill the aggA→root link and keep it dark. Epochs reported in
	// the dark must surface as exact partial SUMs missing exactly aggA's
	// subtree {0, 1}.
	<-aggAReady
	if aggA == nil {
		t.Fatal("aggA failed to start")
	}
	inj.SetOffline(true)
	sawPartial := 0
	for epoch := prf.Epoch(3); epoch <= 4; epoch++ {
		reportAll(epoch)
		res := waitResult(t, qn)
		verify(res)
		if res.Partial {
			sawPartial++
			if len(res.Failed) != 2 || res.Failed[0] != 0 || res.Failed[1] != 1 {
				t.Fatalf("epoch %d: failed %v, want [0 1]", epoch, res.Failed)
			}
		}
	}
	if sawPartial == 0 {
		t.Fatal("link outage produced no partial epochs")
	}

	// Phase 3: restore the link; aggA must redial with backoff and converge.
	inj.SetOffline(false)
	deadline := time.Now().Add(15 * time.Second)
	converged := false
	for epoch := prf.Epoch(5); time.Now().Before(deadline); epoch++ {
		reportAll(epoch)
		res := waitResult(t, qn)
		verify(res)
		if !res.Partial {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("cluster never recovered the full contributor set after the link healed")
	}
	if aggA.UpstreamReconnects() < 1 {
		t.Fatalf("aggA upstream reconnects = %d, want >= 1", aggA.UpstreamReconnects())
	}

	h := qn.Health()
	if h.Full < 3 || h.Partial < 1 || h.Rejected != 0 {
		t.Fatalf("health = %+v", h)
	}
	if h.Missed[0] != h.Partial || h.Missed[1] != h.Partial {
		t.Fatalf("missed counts %v inconsistent with %d partial epochs", h.Missed, h.Partial)
	}

	for _, n := range nodes {
		n.Close()
	}
	wg.Wait()
	qn.Close()
}

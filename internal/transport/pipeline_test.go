package transport

import (
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
)

// buildPipelinedCluster is buildCluster with batching at every hop: sources
// and aggregators coalesce outgoing frames through FrameWriters, the querier
// runs the pipelined serve path.
func buildPipelinedCluster(t *testing.T) (*QuerierNode, []*SourceNode, func()) {
	t.Helper()
	q, sources, err := core.Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	qn, err := NewQuerierNodeConfig(QuerierConfig{
		ListenAddr: "127.0.0.1:0",
		Pipeline:   &PipelineConfig{Workers: 4},
	}, q)
	if err != nil {
		t.Fatal(err)
	}
	go qn.Run()

	rootAddr := freeAddr(t)
	agg0Addr := freeAddr(t)
	agg1Addr := freeAddr(t)

	var wg sync.WaitGroup
	startAgg := func(listen string, children int, timeout time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parent := qn.Addr()
			if listen != rootAddr {
				parent = rootAddr
			}
			node, err := NewAggregatorNode(AggregatorConfig{
				ListenAddr: listen, ParentAddr: parent,
				NumChildren: children, Timeout: timeout,
				Coalesce: &FrameWriterConfig{},
			}, field)
			if err != nil {
				t.Errorf("aggregator %s: %v", listen, err)
				return
			}
			if err := node.Run(); err != nil {
				t.Errorf("aggregator %s run: %v", listen, err)
			}
		}()
	}
	startAgg(rootAddr, 2, 1500*time.Millisecond)
	startAgg(agg0Addr, 2, 400*time.Millisecond)
	startAgg(agg1Addr, 2, 400*time.Millisecond)
	time.Sleep(50 * time.Millisecond) // listeners up

	nodes := make([]*SourceNode, 4)
	for i, s := range sources {
		addr := agg0Addr
		if i >= 2 {
			addr = agg1Addr
		}
		n, err := DialSourceWith(SourceConfig{
			ParentAddr: addr,
			Coalesce:   &FrameWriterConfig{},
		}, s)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	cleanup := func() {
		for _, n := range nodes {
			n.Close()
		}
		wg.Wait()
		qn.Close()
	}
	return qn, nodes, cleanup
}

// TestPipelinedClusterEndToEnd runs the fully batched plane — coalescing
// sources, coalescing aggregators, pipelined querier — and checks every epoch
// still evaluates to the exact SUM. Results may arrive out of epoch order;
// that is part of the pipelined contract.
func TestPipelinedClusterEndToEnd(t *testing.T) {
	qn, sources, cleanup := buildPipelinedCluster(t)
	defer cleanup()

	const epochs = 8
	want := map[prf.Epoch]uint64{}
	for epoch := prf.Epoch(1); epoch <= epochs; epoch++ {
		for i, s := range sources {
			v := uint64(i+1) * 10 * uint64(epoch)
			want[epoch] += v
			if err := s.Report(epoch, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := map[prf.Epoch]uint64{}
	for len(got) < epochs {
		select {
		case res := <-qn.Results:
			if res.Err != nil {
				t.Fatalf("epoch %d rejected: %v", res.Epoch, res.Err)
			}
			if res.Contributors != 4 {
				t.Fatalf("epoch %d: %d contributors, want 4", res.Epoch, res.Contributors)
			}
			if _, dup := got[res.Epoch]; dup {
				t.Fatalf("epoch %d emitted twice", res.Epoch)
			}
			got[res.Epoch] = res.Sum
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out with %d/%d epochs", len(got), epochs)
		}
	}
	for epoch, sum := range want {
		if got[epoch] != sum {
			t.Fatalf("epoch %d: SUM %d, want %d", epoch, got[epoch], sum)
		}
	}
}

// TestPipelinedQuerierDedupAndAcks drives the pipelined serve path directly:
// a burst of epochs must each evaluate and ack exactly once (acks may be
// coalesced and out of order), and a re-sent committed epoch must re-ack from
// the stored result without re-emitting.
func TestPipelinedQuerierDedupAndAcks(t *testing.T) {
	q, sources, err := core.Setup(3)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuerierNodeConfig(QuerierConfig{
		ListenAddr: "127.0.0.1:0",
		Pipeline:   &PipelineConfig{Workers: 4},
	}, q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn.Close()
	go qn.Run()
	conn, _ := dialRoot(t, qn.Addr(), 3)
	defer conn.Close()

	const epochs = 16
	want := map[uint64]uint64{}
	for e := uint64(1); e <= epochs; e++ {
		vals := []uint64{e, 2 * e, 3 * e}
		want[e] = 6 * e
		psr := mergeAll(t, q, sources, prf.Epoch(e), vals)
		if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: e, Payload: encodeReport(psr, nil)}); err != nil {
			t.Fatal(err)
		}
	}

	gotRes := map[uint64]uint64{}
	for len(gotRes) < epochs {
		select {
		case res := <-qn.Results:
			if res.Err != nil {
				t.Fatalf("epoch %d rejected: %v", res.Epoch, res.Err)
			}
			gotRes[uint64(res.Epoch)] = res.Sum
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d/%d results", len(gotRes), epochs)
		}
	}
	gotAck := map[uint64]uint64{}
	for len(gotAck) < epochs {
		f := readResult(t, conn)
		sum, ok, err := DecodeResult(f.Payload)
		if err != nil || !ok {
			t.Fatalf("ack epoch %d: sum %d ok %v err %v", f.Epoch, sum, ok, err)
		}
		if prev, dup := gotAck[f.Epoch]; dup {
			t.Fatalf("epoch %d acked twice (%d then %d)", f.Epoch, prev, sum)
		}
		gotAck[f.Epoch] = sum
	}
	for e, sum := range want {
		if gotRes[e] != sum {
			t.Fatalf("epoch %d result: %d, want %d", e, gotRes[e], sum)
		}
		if gotAck[e] != sum {
			t.Fatalf("epoch %d ack: %d, want %d", e, gotAck[e], sum)
		}
	}

	// Re-send a committed epoch: re-acked from the stored result, never
	// re-evaluated or re-emitted.
	psr := mergeAll(t, q, sources, 3, []uint64{3, 6, 9})
	if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: 3, Payload: encodeReport(psr, nil)}); err != nil {
		t.Fatal(err)
	}
	f := readResult(t, conn)
	sum, ok, err := DecodeResult(f.Payload)
	if err != nil || !ok || f.Epoch != 3 || sum != want[3] {
		t.Fatalf("re-ack: epoch %d sum %d ok %v err %v, want epoch 3 sum %d", f.Epoch, sum, ok, err, want[3])
	}
	select {
	case res := <-qn.Results:
		t.Fatalf("committed epoch re-emitted: %+v", res)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestPipelinedGroupCommitSharesFsyncs checks the WAL side of the pipeline: a
// burst of concurrent commits must settle with fewer fsyncs than commits,
// some of them acknowledged by a round another committer led.
func TestPipelinedGroupCommitSharesFsyncs(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	qn, err := NewQuerierNodeConfig(QuerierConfig{
		ListenAddr: "127.0.0.1:0", StateDir: dir,
		CheckpointEvery: 10_000, // keep every commit in the journal
		Pipeline:        &PipelineConfig{Workers: 4},
	}, q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn.Close()
	j := qn.state.store.Journal()
	// Stretch each sync round so concurrent committers pile onto it; without
	// this the test only shares fsyncs when the scheduler happens to overlap
	// them.
	j.SetBeforeSync(func() { time.Sleep(2 * time.Millisecond) })
	defer j.SetBeforeSync(nil)
	go qn.Run()
	conn, _ := dialRoot(t, qn.Addr(), 2)
	defer conn.Close()

	const epochs = 32
	for e := uint64(1); e <= epochs; e++ {
		psr := mergeAll(t, q, sources, prf.Epoch(e), []uint64{e, e})
		if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: e, Payload: encodeReport(psr, nil)}); err != nil {
			t.Fatal(err)
		}
	}
	for got := 0; got < epochs; got++ {
		select {
		case res := <-qn.Results:
			if res.Err != nil || res.Sum != 2*uint64(res.Epoch) {
				t.Fatalf("epoch %d: %+v", res.Epoch, res)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out with %d/%d results", got, epochs)
		}
	}

	st := j.Stats()
	if st.Appends != epochs {
		t.Fatalf("journal appends = %d, want %d", st.Appends, epochs)
	}
	if st.SharedSyncs == 0 {
		t.Fatalf("no shared fsyncs across %d concurrent commits (syncs %d)", epochs, st.Syncs)
	}
	if st.Syncs >= epochs {
		t.Fatalf("syncs = %d for %d commits; group commit amortised nothing", st.Syncs, epochs)
	}
	t.Logf("%d commits settled in %d fsyncs (%d shared)", epochs, st.Syncs, st.SharedSyncs)
}

// TestPipelinedCrashBetweenAppendAndSync aims the crash at group commit's one
// new window: the record is appended (and the in-memory committed window
// updated) but the shared fsync has not happened. A power-loss-grade crash
// there must emit nothing, and the restarted node must treat the epoch as
// never committed — serving it exactly once when the root re-sends.
func TestPipelinedCrashBetweenAppendAndSync(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := QuerierConfig{
		ListenAddr: "127.0.0.1:0", StateDir: dir,
		Pipeline: &PipelineConfig{Workers: 1},
	}
	qn1, err := NewQuerierNodeConfig(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	run1 := make(chan error, 1)
	go func() { run1 <- qn1.Run() }()

	var once sync.Once
	qn1.state.store.Journal().SetBeforeSync(func() {
		once.Do(qn1.Crash)
	})

	conn, _ := dialRoot(t, qn1.Addr(), 2)
	psr := mergeAll(t, q, sources, 1, []uint64{5, 7})
	if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: 1, Payload: encodeReport(psr, nil)}); err != nil {
		t.Fatal(err)
	}

	// The crash lands before the fsync: nothing may be emitted or acked.
	// Run closes Results once the crash unwinds serve, draining any buffered
	// emits first — so a clean close is exactly "nothing was emitted".
	select {
	case res, ok := <-qn1.Results:
		if ok {
			t.Fatalf("crashed node emitted a result: %+v", res)
		}
	case <-time.After(2 * time.Second):
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if f, err := ReadFrame(conn); err == nil && f.Type == TypeResult {
		t.Fatalf("crashed node acked epoch %d", f.Epoch)
	}
	conn.Close()
	if err := <-run1; err != nil {
		t.Fatalf("crashed run: %v", err)
	}

	// Restart: the unsynced record is gone, the epoch was never committed.
	qn2, err := NewQuerierNodeConfig(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn2.Close()
	if h := qn2.Health(); h.Epochs != 0 || h.Durability.ReplayedRecords != 0 {
		t.Fatalf("unsynced commit survived the crash: %+v", h)
	}
	go qn2.Run()
	conn2, resync := dialRoot(t, qn2.Addr(), 2)
	defer conn2.Close()
	if resync != 0 {
		t.Fatalf("restored resync = %d, want 0", resync)
	}

	// The root re-sends; the epoch serves exactly once.
	if err := WriteFrame(conn2, Frame{Type: TypePSR, Epoch: 1, Payload: encodeReport(psr, nil)}); err != nil {
		t.Fatal(err)
	}
	res := <-qn2.Results
	if res.Err != nil || res.Sum != 12 {
		t.Fatalf("re-served epoch: %+v", res)
	}
	f := readResult(t, conn2)
	sum, ok, err := DecodeResult(f.Payload)
	if err != nil || !ok || sum != 12 {
		t.Fatalf("re-served ack: sum %d ok %v err %v", sum, ok, err)
	}
	select {
	case res := <-qn2.Results:
		t.Fatalf("epoch emitted twice: %+v", res)
	case <-time.After(100 * time.Millisecond):
	}
}

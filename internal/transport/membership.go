// Membership reconciliation for the self-healing tree (DESIGN.md §15).
//
// Aggregators emit member frames describing their own child-slot events —
// join, orphan (link lost), re-home (coverage stolen by a failover child) and
// leave (graceful drain) — and relay their children's member frames upstream
// unchanged, so every event eventually reaches the querier. The querier folds
// the stream into a live contributor view: which sources are attached where,
// which are currently orphaned, and how long re-homing took. The view is
// observability and health accounting only — verification correctness never
// depends on it (the authoritative contributor list stays the per-epoch
// failed set carried with each PSR).
package transport

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/obs"
)

// Member event kinds (the first payload byte of a TypeMember frame).
const (
	memberJoin   byte = 1 // ids attached as a child slot of the labelled parent
	memberOrphan byte = 2 // ids lost their link to the labelled parent
	memberRehome byte = 3 // ids re-attributed between the labelled parent's slots
	memberLeave  byte = 4 // ids departed the labelled parent gracefully
)

// maxMemberLabel bounds the parent label carried in a member event.
const maxMemberLabel = 255

// memberEvent is one decoded membership event.
type memberEvent struct {
	kind  byte
	label string // emitting parent's listen address
	ids   []int  // the slot's (sorted, canonical) source ids
}

// encodeMember packs a membership event:
//
//	payload := kind(u8) ‖ labelLen(u8) ‖ label ‖ contributor-ids
func encodeMember(kind byte, label string, ids []int) []byte {
	if len(label) > maxMemberLabel {
		label = label[:maxMemberLabel]
	}
	out := make([]byte, 0, 2+len(label)+4+4*len(ids))
	out = append(out, kind, byte(len(label)))
	out = append(out, label...)
	return append(out, core.EncodeContributors(ids)...)
}

// decodeMember unpacks a membership event, bounding ids by maxID (see
// core.DecodeContributorsBounded — canonical sorted duplicate-free form
// required, so a hostile frame cannot inflate the view).
func decodeMember(payload []byte, maxID int) (memberEvent, error) {
	if len(payload) < 2 {
		return memberEvent{}, errors.New("transport: short member payload")
	}
	kind := payload[0]
	if kind < memberJoin || kind > memberLeave {
		return memberEvent{}, errors.New("transport: unknown member event kind")
	}
	n := int(payload[1])
	if len(payload) < 2+n {
		return memberEvent{}, errors.New("transport: member label overruns payload")
	}
	label := string(payload[2 : 2+n])
	ids, err := core.DecodeContributorsBounded(payload[2+n:], maxID)
	if err != nil {
		return memberEvent{}, err
	}
	return memberEvent{kind: kind, label: label, ids: ids}, nil
}

// TreeStats is a point-in-time summary of the querier's contributor view,
// exposed through Health().
type TreeStats struct {
	Members   int            // sources currently attached somewhere
	Orphaned  int            // sources currently between parents
	Departed  int            // sources gone via graceful leave
	Reparents uint64         // sources whose immediate parent changed
	Rehomes   uint64         // slot-coverage re-attributions observed at parents
	Joins     uint64         // join events folded into the view
	Leaves    uint64         // leave events folded into the view
	Children  map[string]int // live direct-child slots per parent label
}

// treeView is the querier's live membership view. All mutation comes from
// member/leave frames on serve connections; reads come from Health() and the
// metrics registry.
type treeView struct {
	mu       sync.Mutex
	parent   map[int]string    // source id → immediate parent label
	orphaned map[int]time.Time // source id → when its parent link was lost
	// pending latches an orphaned id until its next leaf-grained join: a
	// re-home event may clear the orphan gauge (the subtree's coverage is
	// re-attributed) before the source's own join arrives, but the re-parent
	// still has to be counted — and its latency measured — exactly once.
	pending map[int]time.Time
	left    map[int]struct{}               // sources departed via graceful leave
	slots   map[string]map[string]struct{} // parent label → live slot keys

	reparents *obs.Counter
	rehomes   *obs.Counter
	joins     *obs.Counter
	leaves    *obs.Counter
	orphanG   *obs.Gauge
	membersG  *obs.Gauge
	latency   *obs.Histogram
	reg       *obs.Registry
	childG    map[string]*obs.Gauge // per-parent child-slot gauges
}

func newTreeView(reg *obs.Registry) *treeView {
	return &treeView{
		parent:   map[int]string{},
		orphaned: map[int]time.Time{},
		pending:  map[int]time.Time{},
		left:     map[int]struct{}{},
		slots:    map[string]map[string]struct{}{},
		childG:   map[string]*obs.Gauge{},
		reg:      reg,
		reparents: reg.Counter("sies_tree_reparents_total",
			"sources whose immediate parent changed (failover re-homes)"),
		rehomes: reg.Counter("sies_tree_rehomes_total",
			"slot-coverage re-attributions observed at parents (failover steals)"),
		joins: reg.Counter("sies_tree_joins_total",
			"membership join events folded into the contributor view"),
		leaves: reg.Counter("sies_tree_leaves_total",
			"membership leave events folded into the contributor view"),
		orphanG: reg.Gauge("sies_tree_orphaned_sources",
			"sources currently between parents (link lost, not yet re-homed)"),
		membersG: reg.Gauge("sies_tree_members",
			"sources currently attached somewhere in the tree"),
		latency: reg.Histogram("sies_tree_reparent_seconds",
			"orphan-to-re-home latency per source", obs.DurationBuckets),
	}
}

// labelEscape renders a parent label safe for a Prometheus label value.
func labelEscape(label string) string {
	label = strings.ReplaceAll(label, `\`, `\\`)
	return strings.ReplaceAll(label, `"`, `\"`)
}

// childGauge returns (registering on first use) the child-slot gauge for one
// parent label.
func (v *treeView) childGauge(label string) *obs.Gauge {
	g, ok := v.childG[label]
	if !ok {
		g = v.reg.Gauge(`sies_tree_children{parent="`+labelEscape(label)+`"}`,
			"live direct-child slots per parent")
		v.childG[label] = g
	}
	return g
}

// apply folds one membership event into the view.
func (v *treeView) apply(ev memberEvent) {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := coversKey(ev.ids)
	switch ev.kind {
	case memberJoin:
		v.joins.Inc()
		slots, ok := v.slots[ev.label]
		if !ok {
			slots = map[string]struct{}{}
			v.slots[ev.label] = slots
		}
		slots[key] = struct{}{}
		v.childGauge(ev.label).Set(int64(len(slots)))
		// Per-source parent attribution only for leaf-grained slots: a slot
		// covering one id is (in every deployment this repo builds) a source
		// attaching to its parent. Coarser joins from higher tree levels keep
		// the slot gauges honest without mislabelling grandparents as parents.
		if len(ev.ids) == 1 {
			id := ev.ids[0]
			delete(v.left, id)
			if since, latched := v.pending[id]; latched {
				// The orphan-to-re-home cycle completes here, whether or not a
				// re-home event already cleared the orphan gauge in between.
				v.reparents.Inc()
				v.latency.Observe(time.Since(since).Seconds())
				delete(v.pending, id)
			} else if prev, had := v.parent[id]; had && prev != ev.label {
				v.reparents.Inc() // proactive move: new parent, no orphan seen
			}
			v.parent[id] = ev.label
			v.clearOrphanLocked(id)
			v.membersG.Set(int64(len(v.parent)))
		}
	case memberOrphan:
		if slots, ok := v.slots[ev.label]; ok {
			delete(slots, key)
			v.childGauge(ev.label).Set(int64(len(slots)))
		}
		now := time.Now()
		for _, id := range ev.ids {
			if _, gone := v.left[id]; gone {
				continue // a graceful leave also drops the link; not an orphan
			}
			if _, ok := v.orphaned[id]; !ok {
				v.orphaned[id] = now
			}
			if _, ok := v.pending[id]; !ok {
				v.pending[id] = now
			}
			if v.parent[id] == ev.label {
				delete(v.parent, id)
			}
		}
		v.orphanG.Set(int64(len(v.orphaned)))
		v.membersG.Set(int64(len(v.parent)))
	case memberRehome:
		v.rehomes.Inc()
		for _, id := range ev.ids {
			v.clearOrphanLocked(id)
		}
	case memberLeave:
		v.leaves.Inc()
		if slots, ok := v.slots[ev.label]; ok {
			delete(slots, key)
			v.childGauge(ev.label).Set(int64(len(slots)))
		}
		for _, id := range ev.ids {
			v.left[id] = struct{}{}
			delete(v.parent, id)
			delete(v.pending, id)
			v.clearOrphanLocked(id)
		}
		v.membersG.Set(int64(len(v.parent)))
	}
}

// clearOrphanLocked ends an id's orphan interval (gauge only — re-home
// latency is observed when the pending latch resolves at the source's next
// leaf-grained join). Caller holds v.mu.
func (v *treeView) clearOrphanLocked(id int) {
	if _, ok := v.orphaned[id]; ok {
		delete(v.orphaned, id)
		v.orphanG.Set(int64(len(v.orphaned)))
	}
}

// departed reports whether id left the deployment gracefully — its absence
// from an epoch is expected, not a miss.
func (v *treeView) departed(id int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.left[id]
	return ok
}

// departedIDs returns the sorted set of gracefully departed sources, nil when
// none. The querier subtracts these from the expected contributor set: after a
// drain the tree's flushes neither carry the leaver's data nor list it as
// failed, so verification must stop expecting it.
func (v *treeView) departedIDs() []int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.left) == 0 {
		return nil
	}
	ids := make([]int, 0, len(v.left))
	for id := range v.left {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// stats snapshots the view for Health().
func (v *treeView) stats() TreeStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	st := TreeStats{
		Members:   len(v.parent),
		Orphaned:  len(v.orphaned),
		Departed:  len(v.left),
		Reparents: v.reparents.Value(),
		Rehomes:   v.rehomes.Value(),
		Joins:     v.joins.Value(),
		Leaves:    v.leaves.Value(),
		Children:  make(map[string]int, len(v.slots)),
	}
	for label, slots := range v.slots {
		st.Children[label] = len(slots)
	}
	return st
}

// Querier-side forensics: localization and quarantine over a live transport.
//
// The TCP protocol is push-based — the root streams one final PSR per epoch —
// so the querier cannot re-aggregate subsets through the frame protocol
// itself. Deployments that can issue subset re-queries (a control channel to
// the aggregation tree, or the in-memory engine in tests and simulations)
// plug that capability in as a ProbeFunc-shaped backend via ForensicsConfig;
// the QuerierNode then turns every integrity rejection into a recovery
// attempt instead of a lost epoch:
//
//  1. Fast path: if routes are already confirmed-quarantined, one re-query
//     excluding them (a single probe) — a known persistent adversary costs
//     one extra round-trip per epoch, not a full localization.
//  2. Full path: group-testing descent (core.Localizer) over the probe tree,
//     bounded by a probe budget and a wall-clock deadline, paced by the
//     transport's Backoff policy between rounds.
//  3. Verified re-query excluding every blamed route; the epoch is served
//     with explicit coverage, or reported lost.
package transport

import (
	"errors"
	"fmt"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
)

// ErrForensicsDeadline reports a localization cut off by its per-epoch
// wall-clock deadline; the suspects gathered so far still cover the corrupted
// routes, so recovery proceeds with them.
var ErrForensicsDeadline = errors.New("transport: forensics deadline exceeded")

// ProbeFunc issues one verified subset re-query over the deployment for the
// given epoch and contributor ids. Implementations re-aggregate the restricted
// set along the existing topology and evaluate at the querier.
type ProbeFunc func(t prf.Epoch, ids []int) (core.Result, error)

// ForensicsConfig wires a probe backend into a QuerierNode.
type ForensicsConfig struct {
	// Tree returns the current group-testing search space (one group per
	// reachable aggregator, atomic groups per source). Called once per
	// localization so topology changes between epochs are picked up.
	Tree func() core.ProbeGroup
	// Probe issues one subset re-query. Required.
	Probe ProbeFunc
	// Budget caps the probes of one localization (default
	// core.DefaultMaxProbes). The final re-query is not counted.
	Budget int
	// Deadline bounds one forensic procedure's wall-clock time, probes
	// included (default: none). On expiry the unresolved groups are blamed
	// wholesale, which keeps the exclusion sound.
	Deadline time.Duration
	// Backoff paces descent rounds so probe re-queries cannot stampede a
	// deployment that is already under attack. Nil means no pauses.
	Backoff *Backoff
	// Quarantine tunes the suspect → confirmed → probation registry.
	Quarantine core.QuarantineConfig
}

// ForensicsStats accumulates the recovery counters surfaced through Health.
type ForensicsStats struct {
	Localizations  int // full group-testing procedures run
	ProbesIssued   int // subset re-queries across all localizations
	ProbeRounds    int // descent rounds across all localizations
	FastRecoveries int // epochs recovered by the quarantine fast path alone
	Recovered      int // rejected epochs served after localization + re-query
	Lost           int // rejected epochs that stayed lost
	BudgetAborts   int // localizations cut off by the probe budget
	DeadlineAborts int // localizations cut off by the deadline

	Quarantine    core.QuarantineStats      // cumulative state transitions
	QuarantineNow core.QuarantinePopulation // current census
}

// forensics is the per-querier recovery engine.
type forensics struct {
	cfg        ForensicsConfig
	localizer  *core.Localizer
	quarantine *core.Quarantine
	stats      ForensicsStats
	sleep      func(time.Duration) // test seam
	now        func() time.Time    // test seam
}

// EnableForensics installs a probe backend; from now on integrity-rejected
// epochs trigger localization and verified re-query instead of surfacing the
// rejection directly. Must be called before Run.
func (qn *QuerierNode) EnableForensics(cfg ForensicsConfig) error {
	if cfg.Probe == nil || cfg.Tree == nil {
		return errors.New("transport: forensics needs Tree and Probe backends")
	}
	if cfg.Budget <= 0 {
		cfg.Budget = core.DefaultMaxProbes
	}
	var backoff *Backoff
	if cfg.Backoff != nil {
		b := cfg.Backoff.withDefaults()
		backoff = &b
	}
	f := &forensics{
		cfg:        cfg,
		quarantine: core.NewQuarantine(cfg.Quarantine),
		sleep:      time.Sleep,
		now:        time.Now,
	}
	// A durable node restarting re-arms the registry it crashed with:
	// confirmed culprits stay excluded across the restart (no quarantine
	// amnesia). The snapshot came from this deployment's own journal, so a
	// restore failure means real corruption and is surfaced, not skipped.
	if qn.state != nil && len(qn.state.quarBlob) > 0 {
		if err := f.quarantine.Restore(qn.state.quarBlob); err != nil {
			return fmt.Errorf("transport: restoring quarantine registry: %w", err)
		}
	}
	lcfg := core.LocalizerConfig{MaxProbes: cfg.Budget}
	if backoff != nil {
		lcfg.Backoff = func(round int) time.Duration { return backoff.Delay(round - 1) }
		lcfg.Sleep = func(d time.Duration) { f.sleep(d) }
	}
	f.localizer = core.NewLocalizer(lcfg)
	qn.forensics = f
	return nil
}

// ForensicsStats snapshots the recovery counters (zero value when forensics
// is not enabled).
func (qn *QuerierNode) ForensicsStats() ForensicsStats {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if qn.forensics == nil {
		return ForensicsStats{}
	}
	s := qn.forensics.stats
	s.Quarantine = qn.forensics.quarantine.Stats()
	s.QuarantineNow = qn.forensics.quarantine.Population()
	return s
}

// integrityRejection classifies an evaluation error as tampering (overflow
// counts: a tampered value field overflows as easily as it mismatches).
func integrityRejection(err error) bool {
	return errors.Is(err, core.ErrIntegrity) || errors.Is(err, core.ErrResultOverflow)
}

// tick records one clean epoch with the quarantine registry.
func (qn *QuerierNode) tickForensics() {
	if qn.forensics != nil {
		qn.forensics.quarantine.Tick()
	}
}

// recover attempts to turn an integrity-rejected epoch into a served partial
// result. reported is the epoch's reported-failed id list; out is the
// rejection result, returned enriched (or unchanged when recovery fails).
// Called from the serve loop; forensics state is guarded by qn.mu.
func (qn *QuerierNode) recover(t prf.Epoch, reported []int, out EpochResult) EpochResult {
	f := qn.forensics
	n := qn.q.Params().N()
	start := f.now()

	// Fast path: a known quarantined culprit explains the failure — one
	// re-query around the confirmed set, no localization.
	excluded := f.quarantine.Excluded()
	if len(excluded) > 0 {
		if res, err := f.probeOver(t, n, reported, excluded); err == nil {
			qn.mu.Lock()
			f.stats.FastRecoveries++
			f.stats.Recovered++
			qn.mu.Unlock()
			return servedResult(t, n, res, reported, excluded)
		}
	}

	// Full localization over the currently reachable tree.
	probe := func(ids []int) (bool, error) {
		if f.cfg.Deadline > 0 && f.now().Sub(start) > f.cfg.Deadline {
			return false, ErrForensicsDeadline
		}
		live := subtract(ids, reported)
		if len(live) == 0 {
			return true, nil // nothing of the group is live; it cannot explain the failure
		}
		_, perr := f.cfg.Probe(t, live)
		switch {
		case perr == nil:
			return true, nil
		case integrityRejection(perr):
			return false, nil
		default:
			return false, perr
		}
	}
	suspects, lstats, lerr := f.localizer.Localize(f.cfg.Tree(), probe)

	qn.mu.Lock()
	f.stats.Localizations++
	f.stats.ProbesIssued += lstats.Probes
	f.stats.ProbeRounds += lstats.Rounds
	switch {
	case errors.Is(lerr, core.ErrProbeBudget):
		f.stats.BudgetAborts++
	case errors.Is(lerr, ErrForensicsDeadline):
		f.stats.DeadlineAborts++
	}
	qn.mu.Unlock()
	for _, s := range suspects {
		f.quarantine.Report(s.Route, s.Sources)
	}
	if len(suspects) > 0 {
		// New verdicts reach the journal immediately rather than waiting for
		// the next checkpoint: a crash right after confirming a culprit must
		// not release it.
		qn.persistQuarantine()
	}
	out.Probes = lstats.Probes

	blame := core.UnionSources(suspects)
	exclude := core.NormalizeIDs(append(append([]int(nil), excluded...), blame...))
	if len(exclude) == 0 || len(exclude) >= n {
		qn.mu.Lock()
		f.stats.Lost++
		qn.mu.Unlock()
		return out // nothing to route around (or everything blamed): stays lost
	}
	res, err := f.probeOver(t, n, reported, exclude)
	if err != nil {
		qn.mu.Lock()
		f.stats.Lost++
		qn.mu.Unlock()
		return out
	}
	qn.mu.Lock()
	f.stats.Recovered++
	qn.mu.Unlock()
	served := servedResult(t, n, res, reported, exclude)
	served.Probes = lstats.Probes
	return served
}

// probeOver re-queries the epoch over all sources minus the reported-failed
// and excluded sets.
func (f *forensics) probeOver(t prf.Epoch, n int, reported, excluded []int) (core.Result, error) {
	drop := core.NormalizeIDs(append(append([]int(nil), reported...), excluded...))
	include := core.Subtract(n, drop)
	if len(include) == 0 {
		return core.Result{}, errors.New("transport: every source excluded")
	}
	return f.cfg.Probe(t, include)
}

// servedResult assembles a recovered EpochResult.
func servedResult(t prf.Epoch, n int, res core.Result, reported, excluded []int) EpochResult {
	return EpochResult{
		Epoch:        t,
		Sum:          res.Sum,
		Contributors: res.N,
		Coverage:     float64(res.N) / float64(n),
		Partial:      true,
		Recovered:    true,
		Failed:       reported,
		Excluded:     excluded,
	}
}

// subtract returns ids minus the drop list (both need not be sorted).
func subtract(ids, drop []int) []int {
	if len(drop) == 0 {
		return ids
	}
	dropSet := make(map[int]bool, len(drop))
	for _, id := range drop {
		dropSet[id] = true
	}
	var out []int
	for _, id := range ids {
		if !dropSet[id] {
			out = append(out, id)
		}
	}
	return out
}

package transport

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/chaos"
)

// chaosPayload derives the expected payload for an epoch: a digest the
// receiver can recompute, so any torn or spliced frame that still parses is
// caught by content, not just by framing.
func chaosPayload(epoch uint64) [sha256.Size]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], epoch)
	return sha256.Sum256(b[:])
}

// tornFrameCollector accepts writer connections and decodes frames until
// each stream dies, verifying every frame that ReadFrame surfaces. Streams
// are expected to end in EOF / UnexpectedEOF / resets — a re-sending writer
// may duplicate frames, but a frame that parses must verify.
type tornFrameCollector struct {
	t  *testing.T
	ln net.Listener

	mu    sync.Mutex
	seen  map[uint64]int
	conns int
	wg    sync.WaitGroup
}

func newTornFrameCollector(t *testing.T) *tornFrameCollector {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &tornFrameCollector{t: t, ln: ln, seen: map[uint64]int{}}
	c.wg.Add(1)
	go c.acceptLoop()
	return c
}

func (c *tornFrameCollector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed: drain done
		}
		c.mu.Lock()
		c.conns++
		c.mu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			fr := NewFrameReader(conn)
			for {
				f, err := fr.Read()
				if err != nil {
					// Any stream error is fine — the writer's connection died
					// mid-frame and the tail is discarded. What must never
					// happen is a *successfully parsed* frame with bad content.
					return
				}
				want := chaosPayload(f.Epoch)
				if f.Type != TypePSR || len(f.Payload) != len(want) || string(f.Payload) != string(want[:]) {
					c.t.Errorf("torn frame surfaced: type=%d epoch=%d payload=%x", f.Type, f.Epoch, f.Payload)
					return
				}
				c.mu.Lock()
				c.seen[f.Epoch]++
				c.mu.Unlock()
			}
		}()
	}
}

func (c *tornFrameCollector) close() (map[uint64]int, int) {
	c.ln.Close()
	c.wg.Wait()
	return c.seen, c.conns
}

// retryBatchSink writes batches through chaos-injected connections,
// re-dialing and re-sending the whole batch on any error — the redialer
// contract. Receivers may see duplicate frames, never torn ones: each retry
// starts a fresh connection, so a dead stream's tail is simply abandoned.
type retryBatchSink struct {
	dial    func() (net.Conn, error)
	conn    net.Conn
	scratch net.Buffers
	retries int
}

func (s *retryBatchSink) WriteBatch(segs [][]byte) error {
	for attempt := 0; attempt < 200; attempt++ {
		if s.conn == nil {
			c, err := s.dial()
			if err != nil {
				time.Sleep(time.Millisecond)
				continue
			}
			s.conn = c
		}
		// net.Buffers consumes its receiver, so rebuild the view per attempt;
		// the retained scratch keeps this allocation-free at steady state.
		s.scratch = append(s.scratch[:0], segs...)
		if _, err := s.scratch.WriteTo(s.conn); err == nil {
			return nil
		}
		s.retries++
		s.conn.Close()
		s.conn = nil
	}
	return errors.New("retryBatchSink: giving up")
}

// TestFrameWriterNoTornFramesUnderChaos drives a FrameWriter through
// connections that die mid-write (honest short writes delivering a prefix
// plus an error, and resets between batch segments) and asserts the
// receiving ReadFrame never observes a torn frame, while retries still
// deliver every epoch at least once.
func TestFrameWriterNoTornFramesUnderChaos(t *testing.T) {
	collector := newTornFrameCollector(t)
	inj := chaos.New(chaos.Config{
		Seed:              20260807,
		ShortWriteErrProb: 0.08,
		ResetProb:         0.04,
	})
	sink := &retryBatchSink{dial: func() (net.Conn, error) {
		return inj.Dial("tcp", collector.ln.Addr().String())
	}}
	fw := NewFrameWriter(FrameWriterConfig{
		Sink:           sink,
		MaxBatchBytes:  1 << 10, // small batches: many vectored writes, many fault draws
		MaxBatchFrames: 16,
		FlushDelay:     100 * time.Microsecond,
	})
	const epochs = 2000
	for e := uint64(0); e < epochs; e++ {
		p := chaosPayload(e)
		if err := fw.EnqueueAppend(TypePSR, e, len(p), func(dst []byte) { copy(dst, p[:]) }); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.conn != nil {
		sink.conn.Close()
	}
	seen, conns := collector.close()
	if t.Failed() {
		return
	}
	for e := uint64(0); e < epochs; e++ {
		if seen[e] == 0 {
			t.Fatalf("epoch %d never delivered (conns=%d retries=%d)", e, conns, sink.retries)
		}
	}
	if sink.retries == 0 || conns < 2 {
		t.Fatalf("chaos did not bite: %d retries over %d connections", sink.retries, conns)
	}
}

// TestWriteFrameNoTornFramesUnderChaos is the unbatched counterpart: single
// WriteFrame calls with redial-on-error retry across connections that die
// mid-write.
func TestWriteFrameNoTornFramesUnderChaos(t *testing.T) {
	collector := newTornFrameCollector(t)
	inj := chaos.New(chaos.Config{
		Seed:              99,
		ShortWriteErrProb: 0.10,
		ResetProb:         0.05,
	})
	var conn net.Conn
	retries := 0
	const epochs = 1500
	for e := uint64(0); e < epochs; e++ {
		p := chaosPayload(e)
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				t.Fatalf("epoch %d: giving up after %d attempts", e, attempt)
			}
			if conn == nil {
				c, err := inj.Dial("tcp", collector.ln.Addr().String())
				if err != nil {
					time.Sleep(time.Millisecond)
					continue
				}
				conn = c
			}
			if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: e, Payload: p[:]}); err == nil {
				break
			}
			retries++
			conn.Close()
			conn = nil
		}
	}
	if conn != nil {
		conn.Close()
	}
	seen, conns := collector.close()
	if t.Failed() {
		return
	}
	for e := uint64(0); e < epochs; e++ {
		if seen[e] == 0 {
			t.Fatalf("epoch %d never delivered", e)
		}
	}
	if retries == 0 || conns < 2 {
		t.Fatalf("chaos did not bite: %d retries over %d connections", retries, conns)
	}
}

// TestShortWriteErrConnContract pins the new chaos fault's semantics: the
// reported count matches what the peer can read, the error is ErrReset, and
// the connection is dead afterwards.
func TestShortWriteErrConnContract(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			got <- nil
			return
		}
		defer c.Close()
		b, _ := io.ReadAll(c)
		got <- b
	}()
	inj := chaos.New(chaos.Config{Seed: 7, ShortWriteErrProb: 1})
	conn, err := inj.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, err := conn.Write(payload)
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("short write error not surfaced: n=%d err=%v", n, err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("short write count out of range: %d", n)
	}
	if _, err := conn.Write([]byte("more")); err == nil {
		t.Fatal("connection survived an honest short write")
	}
	delivered := <-got
	if len(delivered) != n || string(delivered) != string(payload[:n]) {
		t.Fatalf("peer saw %d bytes, writer was told %d", len(delivered), n)
	}
}

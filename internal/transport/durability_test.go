package transport

import (
	"net"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/durable"
	"github.com/sies/sies/internal/prf"
)

// mergeAll aggregates one PSR per source for the epoch.
func mergeAll(t *testing.T, q *core.Querier, sources []*core.Source, epoch prf.Epoch, values []uint64) core.PSR {
	t.Helper()
	agg := core.NewAggregator(q.Params().Field())
	psrs := make([]core.PSR, len(sources))
	for i, s := range sources {
		psr, err := s.Encrypt(epoch, values[i])
		if err != nil {
			t.Fatal(err)
		}
		psrs[i] = psr
	}
	return agg.Merge(psrs...)
}

// dialRoot performs the root hello handshake against a querier node.
func dialRoot(t *testing.T, addr string, n int) (net.Conn, uint64) {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return dialChild(t, addr, ids)
}

// readResult reads the querier's next TypeResult ack.
func readResult(t *testing.T, conn net.Conn) Frame {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("reading result ack: %v", err)
	}
	if f.Type != TypeResult {
		t.Fatalf("expected result ack, got type %d", f.Type)
	}
	conn.SetReadDeadline(time.Time{})
	return f
}

// TestQuerierDurableRecovery drives a durable querier through full, partial
// and empty epochs, restarts it from its state directory and checks that the
// frontier, health counters and committed-epoch window all survive — and that
// a re-sent committed epoch is re-acked without being re-evaluated or
// re-emitted.
func TestQuerierDurableRecovery(t *testing.T) {
	q, sources, err := core.Setup(3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := QuerierConfig{ListenAddr: "127.0.0.1:0", StateDir: dir, CheckpointEvery: 2}

	qn1, err := NewQuerierNodeConfig(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	run1 := make(chan error, 1)
	go func() { run1 <- qn1.Run() }()
	conn, resync := dialRoot(t, qn1.Addr(), 3)
	if resync != 0 {
		t.Fatalf("fresh resync = %d, want 0", resync)
	}

	// Epoch 1: full. Epoch 2: partial (source 2 failed). Epoch 3: empty.
	full := mergeAll(t, q, sources, 1, []uint64{10, 20, 30})
	if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: 1, Payload: encodeReport(full, nil)}); err != nil {
		t.Fatal(err)
	}
	res1 := <-qn1.Results
	if res1.Err != nil || res1.Sum != 60 {
		t.Fatalf("epoch 1: %+v", res1)
	}
	readResult(t, conn)

	partial := mergeAll(t, q, sources[:2], 2, []uint64{7, 8})
	if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: 2, Payload: encodeReport(partial, []int{2})}); err != nil {
		t.Fatal(err)
	}
	res2 := <-qn1.Results
	if res2.Err != nil || res2.Sum != 15 || !res2.Partial {
		t.Fatalf("epoch 2: %+v", res2)
	}
	readResult(t, conn)

	if err := WriteFrame(conn, Frame{Type: TypeFailure, Epoch: 3, Payload: core.EncodeContributors([]int{0, 1, 2})}); err != nil {
		t.Fatal(err)
	}
	res3 := <-qn1.Results
	if res3.Err == nil {
		t.Fatalf("epoch 3: %+v", res3)
	}

	// Crash: close without any further ceremony.
	conn.Close()
	qn1.Close()
	if err := <-run1; err != nil {
		t.Fatal(err)
	}

	// Restart from the same state directory.
	qn2, err := NewQuerierNodeConfig(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn2.Close()
	h := qn2.Health()
	if h.Epochs != 2 || h.Full != 1 || h.Partial != 1 || h.Empty != 1 {
		t.Fatalf("restored health: %+v", h)
	}
	if h.Missed[2] != 2 || h.Missed[0] != 1 || h.Missed[1] != 1 {
		t.Fatalf("restored missed counters: %v", h.Missed)
	}
	if !h.Durability.Enabled || h.Durability.ReplayedFromWAL != 3 {
		t.Fatalf("restored durability stats: %+v", h.Durability)
	}

	run2 := make(chan error, 1)
	go func() { run2 <- qn2.Run() }()
	conn2, resync2 := dialRoot(t, qn2.Addr(), 3)
	defer conn2.Close()
	if resync2 != 3 {
		t.Fatalf("restored resync = %d, want 3", resync2)
	}

	// Re-sending committed epoch 1 re-acks the remembered sum without
	// re-evaluating or re-emitting a result.
	if err := WriteFrame(conn2, Frame{Type: TypePSR, Epoch: 1, Payload: encodeReport(full, nil)}); err != nil {
		t.Fatal(err)
	}
	ack := readResult(t, conn2)
	sum, ok, err := DecodeResult(ack.Payload)
	if err != nil || !ok || sum != 60 {
		t.Fatalf("replayed ack: sum %d ok %v (%v), want 60 true", sum, ok, err)
	}
	select {
	case res := <-qn2.Results:
		t.Fatalf("committed epoch re-emitted a result: %+v", res)
	case <-time.After(100 * time.Millisecond):
	}
	if got := qn2.DurabilityStats().DedupHits; got != 1 {
		t.Fatalf("dedup hits = %d, want 1", got)
	}

	// New epochs keep flowing after recovery.
	next := mergeAll(t, q, sources, 4, []uint64{1, 2, 3})
	if err := WriteFrame(conn2, Frame{Type: TypePSR, Epoch: 4, Payload: encodeReport(next, nil)}); err != nil {
		t.Fatal(err)
	}
	res4 := <-qn2.Results
	if res4.Err != nil || res4.Sum != 6 {
		t.Fatalf("epoch 4 after recovery: %+v", res4)
	}

	conn2.Close()
	qn2.Close()
	if err := <-run2; err != nil {
		t.Fatal(err)
	}
}

// TestQuerierReplayDuplicateCommit hand-writes a journal containing the same
// commit twice (the torn-checkpoint shape: snapshot written, journal reset
// lost) and checks replay applies it once.
func TestQuerierReplayDuplicateCommit(t *testing.T) {
	q, _, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, _, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := durable.Record{Type: recQuerierCommit, Payload: encodeQuerierCommit(5, kindFull, 42, nil)}
	if err := store.Journal().Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := store.Journal().Append(rec); err != nil {
		t.Fatal(err)
	}
	store.Close()

	qn, err := NewQuerierNodeConfig(QuerierConfig{ListenAddr: "127.0.0.1:0", StateDir: dir}, q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn.Close()
	h := qn.Health()
	if h.Epochs != 1 || h.Full != 1 {
		t.Fatalf("duplicate commit double-counted: %+v", h)
	}
	if h.Durability.ReplayedFromWAL != 5 || h.Durability.ReplayedRecords != 2 {
		t.Fatalf("durability stats: %+v", h.Durability)
	}
}

// TestQuerierMissedBounded drives more failing sources than the MissedCap and
// checks the per-source counters stay capped, shedding oldest-first.
func TestQuerierMissedBounded(t *testing.T) {
	q, _, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuerierNodeConfig(QuerierConfig{ListenAddr: "127.0.0.1:0", MissedCap: 2}, q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn.Close()
	for i := 0; i < 5; i++ {
		qn.record(EpochResult{Epoch: prf.Epoch(i + 1), Partial: true, Failed: []int{i}})
	}
	h := qn.Health()
	if len(h.Missed) != 2 {
		t.Fatalf("missed map holds %d entries, want 2", len(h.Missed))
	}
	if h.Missed[3] != 1 || h.Missed[4] != 1 {
		t.Fatalf("missed map kept the wrong entries: %v", h.Missed)
	}
}

// TestAggregatorDurableRecovery crashes an aggregator mid-epoch and restarts
// it from its state directory: the flush frontier survives (children resync
// past settled epochs, re-sends of flushed epochs stay suppressed) and the
// contribution accepted before the crash is recovered, so the epoch completes
// with no child's subtree falsely reported failed.
func TestAggregatorDurableRecovery(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()
	dir := t.TempDir()

	parentLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer parentLn.Close()

	aggLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aggAddr := aggLn.Addr().String()
	aggLn.Close() // we only needed a free port that stays stable across restarts

	build := func() (*AggregatorNode, net.Conn, net.Conn, net.Conn, uint64) {
		type built struct {
			node *AggregatorNode
			err  error
		}
		builtCh := make(chan built, 1)
		go func() {
			node, err := NewAggregatorNode(AggregatorConfig{
				ListenAddr: aggAddr, ParentAddr: parentLn.Addr().String(),
				NumChildren: 2, Timeout: 10 * time.Second,
				StateDir: dir,
			}, field)
			builtCh <- built{node, err}
		}()
		time.Sleep(100 * time.Millisecond) // listener up
		c0, resync := dialChild(t, aggAddr, []int{0})
		c1, _ := dialChild(t, aggAddr, []int{1})
		parent, err := parentLn.Accept()
		if err != nil {
			t.Fatal(err)
		}
		f := readUpstream(t, parent)
		if f.Type != TypeHello {
			t.Fatalf("upstream hello: type %d", f.Type)
		}
		if err := WriteFrame(parent, Frame{Type: TypeHello}); err != nil {
			t.Fatal(err)
		}
		b := <-builtCh
		if b.err != nil {
			t.Fatal(b.err)
		}
		return b.node, c0, c1, parent, resync
	}

	node1, c0, c1, parent1, resync1 := build()
	if resync1 != 0 {
		t.Fatalf("fresh resync = %d, want 0", resync1)
	}
	run1 := make(chan error, 1)
	go func() { run1 <- node1.Run() }()

	// Epoch 1 completes and flushes.
	sendPSR(t, c0, sources[0], 1, 100)
	sendPSR(t, c1, sources[1], 1, 200)
	f := readUpstream(t, parent1)
	if f.Epoch != 1 || f.Type != TypePSR {
		t.Fatalf("flush 1: type %d epoch %d", f.Type, f.Epoch)
	}

	// Epoch 2: only child 0 reports, then the node crashes.
	sendPSR(t, c0, sources[0], 2, 7)
	// The contribution must reach the event loop (and the journal) before the
	// crash; the flush frame for epoch 1 already proves the loop is live, but
	// epoch 2's report races the crash without a small grace.
	time.Sleep(200 * time.Millisecond)
	node1.Crash()
	<-run1 // a crash may surface as an error; either way the loop exits
	c0.Close()
	c1.Close()
	parent1.Close()

	// Restart from the same directory; children redial and resync past the
	// restored flush frontier.
	node2, d0, d1, parent2, resync2 := build()
	if resync2 != 1 {
		t.Fatalf("restored resync = %d, want 1", resync2)
	}
	defer node2.Close()
	defer d0.Close()
	defer d1.Close()
	defer parent2.Close()

	if got := node2.DurabilityStats(); !got.Enabled || got.ReplayedFromWAL != 1 {
		t.Fatalf("restored durability stats: %+v", got)
	}
	run2 := make(chan error, 1)
	go func() { run2 <- node2.Run() }()

	// Child 1 supplies its missing epoch-2 report; child 0's pre-crash
	// contribution was recovered from the journal, so the flush is full.
	sendPSR(t, d1, sources[1], 2, 9)
	f = readUpstream(t, parent2)
	if f.Epoch != 2 || f.Type != TypePSR {
		t.Fatalf("recovered flush: type %d epoch %d", f.Type, f.Epoch)
	}
	psr, failed, err := decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || len(failed) != 0 {
		t.Fatalf("recovered flush report: failed %v (%v)", failed, err)
	}
	if res, err := q.Evaluate(2, psr); err != nil || res.Sum != 16 {
		t.Fatalf("recovered epoch 2: %+v (%v)", res, err)
	}

	// A full re-send of settled epoch 1 stays suppressed across the restart;
	// the next upstream frame is epoch 3, not a duplicate of epoch 1.
	sendPSR(t, d0, sources[0], 1, 100)
	sendPSR(t, d1, sources[1], 1, 200)
	sendPSR(t, d0, sources[0], 3, 1)
	sendPSR(t, d1, sources[1], 3, 2)
	f = readUpstream(t, parent2)
	if f.Epoch != 3 {
		t.Fatalf("epoch after re-send = %d, want 3 (epoch 1 must stay suppressed)", f.Epoch)
	}

	node2.Close()
	if err := <-run2; err != nil {
		t.Fatal(err)
	}
}

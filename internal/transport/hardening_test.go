package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
)

// TestQuerierRejectsOverflowHello regresses the uint32 length-wrap: a 4-byte
// hello announcing 1<<30 contributors used to pass the length check (4*n
// wraps to 0) and allocate an 8 GiB id slice. The querier must now reject the
// frame without any large allocation.
func TestQuerierRejectsOverflowHello(t *testing.T) {
	q, _, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- qn.Run() }()
	defer qn.Close()

	conn, err := net.Dial("tcp", qn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, Frame{Type: TypeHello, Payload: []byte{0x40, 0x00, 0x00, 0x00}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("querier accepted a hello with a wrapped length header")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("querier did not reject the hostile hello")
	}
}

// TestQuerierRejectsHostileFailedList drives a full root session and sends a
// PSR whose failed-source list is non-canonical: the epoch must surface as a
// rejected result, not corrupt the contributor subset.
func TestQuerierRejectsHostileFailedList(t *testing.T) {
	q, sources, err := core.Setup(3)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	go qn.Run()
	defer qn.Close()

	conn, err := net.Dial("tcp", qn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, Frame{Type: TypeHello, Payload: core.EncodeContributors([]int{0, 1, 2})}); err != nil {
		t.Fatal(err)
	}
	if ack, err := ReadFrame(conn); err != nil || ack.Type != TypeHello {
		t.Fatalf("hello-ack: %+v (%v)", ack, err)
	}

	psr, err := sources[0].Encrypt(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, failed := range [][]int{{1, 1}, {2, 1}, {7}} { // duplicate, unsorted, out of range
		if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: 1,
			Payload: encodeReport(psr, failed)}); err != nil {
			t.Fatal(err)
		}
		select {
		case res := <-qn.Results:
			if res.Err == nil {
				t.Fatalf("failed list %v was accepted (sum %d)", failed, res.Sum)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no result for failed list %v", failed)
		}
	}
	if h := qn.Health(); h.Rejected != 3 {
		t.Fatalf("Rejected = %d, want 3", h.Rejected)
	}
}

// TestDecodeReportHostileFailedLists unit-tests the report parser against
// lists a compromised child could craft.
func TestDecodeReportHostileFailedLists(t *testing.T) {
	q, sources, err := core.Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()
	psr, err := sources[0].Encrypt(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	wire := psr.Bytes()

	if _, _, err := decodeReport(encodeReport(psr, []int{1, 3}), field, 4); err != nil {
		t.Fatalf("canonical report rejected: %v", err)
	}
	bad := map[string][]byte{
		"duplicate ids":   encodeReport(psr, []int{1, 1}),
		"unsorted ids":    encodeReport(psr, []int{3, 1}),
		"id past maxID":   encodeReport(psr, []int{4}),
		"wrapped header":  append(wire[:], 0x40, 0x00, 0x00, 0x00),
		"truncated tail":  wire[:core.PSRSize-1],
		"missing id list": wire[:],
	}
	for name, payload := range bad {
		if _, _, err := decodeReport(payload, field, 4); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestAggregatorRejectsHostileChildHello checks the aggregator side: a child
// whose hello announces a wrapped count or a non-canonical coverage set is
// refused during setup.
func TestAggregatorRejectsHostileChildHello(t *testing.T) {
	q, _, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string][]byte{
		"wrapped header": {0x40, 0x00, 0x00, 0x00},
		"duplicate ids":  core.EncodeContributors([]int{1, 1}),
	} {
		aggAddr := freeAddr(t)
		built := make(chan error, 1)
		go func() {
			_, err := NewAggregatorNode(AggregatorConfig{
				ListenAddr: aggAddr, ParentAddr: "127.0.0.1:1", // parent never dialed: hello fails first
				NumChildren: 1, Timeout: 200 * time.Millisecond,
				HandshakeTimeout: time.Second,
			}, q.Params().Field())
			built <- err
		}()
		var conn net.Conn
		for i := 0; i < 100; i++ { // wait for the listener
			if conn, err = net.Dial("tcp", aggAddr); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("%s: dialing aggregator: %v", name, err)
		}
		if err := WriteFrame(conn, Frame{Type: TypeHello, Payload: payload}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		select {
		case err := <-built:
			if err == nil {
				t.Fatalf("%s: aggregator accepted the hostile hello", name)
			}
			if errors.Is(err, net.ErrClosed) {
				t.Fatalf("%s: wrong failure: %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: aggregator did not reject the hello", name)
		}
		conn.Close()
	}
}

package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/obs"
	"github.com/sies/sies/internal/prf"
)

// scrape fetches url and returns the body, failing the test on transport or
// status errors.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// parsePrometheus parses text exposition into full-series-name → value. This
// is what the soak assertions consume: the node's state as a monitoring
// system would see it, not as its internals report it.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// scrapeSeries fetches and parses /metrics from a node's obs server.
func scrapeSeries(t *testing.T, base string) map[string]float64 {
	t.Helper()
	return parsePrometheus(t, scrape(t, base+"/metrics"))
}

// TestMetricsScrapeUnderForensicsRecovery serves the forensics rig's registry
// over HTTP and hammers /metrics, /trace/epochs and /healthz from several
// goroutines while live epochs — two of them tampered and recovered via
// localization — flow through the querier. Run under -race this is the
// concurrency proof for the whole scrape path; the final assertions check the
// recovery story as a scraper sees it.
func TestMetricsScrapeUnderForensicsRecovery(t *testing.T) {
	r := newForensicsRig(t, core.QuarantineConfig{}, nil)
	srv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{
		Registry: r.qn.Metrics(),
		Tracer:   r.qn.Tracer(),
		Healthz: func() (bool, string) {
			if d := r.qn.DurabilityStats(); d.JournalErrors > 0 {
				return false, "degraded"
			}
			return true, "ok"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var scrapes atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/trace/epochs?n=8", "/healthz"} {
					resp, err := http.Get(base + path)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						scrapes.Add(1)
					}
				}
			}
		}()
	}

	// Epochs 1 and 2 arrive tampered (agg1's adversary) and recover through
	// group-testing localization; 3..6 are clean.
	const epochs = 6
	for e := prf.Epoch(1); e <= epochs; e++ {
		res, _ := r.push(t, e)
		if res.Err != nil {
			t.Fatalf("epoch %d not served: %+v", e, res)
		}
		if tampered(e) && !res.Recovered {
			t.Fatalf("epoch %d should have recovered: %+v", e, res)
		}
	}
	close(stop)
	wg.Wait()
	if scrapes.Load() == 0 {
		t.Fatal("no scrape completed during the run")
	}

	m := scrapeSeries(t, base)
	if got := m["sies_epochs_served_total"]; got != epochs {
		t.Errorf("sies_epochs_served_total = %v, want %d", got, epochs)
	}
	if got := m["sies_epochs_recovered_total"]; got != 2 {
		t.Errorf("sies_epochs_recovered_total = %v, want 2", got)
	}
	if got := m["sies_forensics_recovered_total"]; got != 2 {
		t.Errorf("sies_forensics_recovered_total = %v, want 2", got)
	}
	if got := m["sies_epochs_rejected_total"]; got != 0 {
		t.Errorf("sies_epochs_rejected_total = %v, want 0", got)
	}
	if got := m["sies_epoch_eval_seconds_count"]; got < epochs {
		t.Errorf("sies_epoch_eval_seconds_count = %v, want >= %d", got, epochs)
	}
	if got := m["sies_forensics_localizations_total"]; got < 1 {
		t.Errorf("sies_forensics_localizations_total = %v, want >= 1", got)
	}

	// The trace endpoint must tell the same story: the tampered epoch's span
	// walks report → reject → forensics → commit and ends "recovered".
	var spans []obs.Span
	if err := json.Unmarshal([]byte(scrape(t, base+"/trace/epochs?n=16")), &spans); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	byEpoch := map[uint64]obs.Span{}
	for _, s := range spans {
		byEpoch[s.Epoch] = s
	}
	rec, ok := byEpoch[1]
	if !ok {
		t.Fatal("no span for recovered epoch 1")
	}
	if rec.Outcome != "recovered" || !rec.Done {
		t.Errorf("epoch 1 span outcome = %q done=%v, want recovered/true", rec.Outcome, rec.Done)
	}
	stages := map[string]bool{}
	for _, s := range rec.Stages {
		stages[s.Stage] = true
	}
	for _, want := range []string{obs.StageReport, obs.StageReject, obs.StageForensics, obs.StageCommit} {
		if !stages[want] {
			t.Errorf("epoch 1 span missing stage %q (have %v)", want, rec.Stages)
		}
	}
	clean, ok := byEpoch[4]
	if !ok || clean.Outcome != "full" {
		t.Errorf("epoch 4 span = %+v, want outcome full", clean)
	}
}

// TestQuerierCrashRestartScrapedCounters commits epochs on a durable querier,
// crashes it, rebuilds it from the state directory, and checks that a fresh
// scrape of the restarted node reports the pre-crash totals exactly once —
// snapshot restore adds into zeroed counters, so nothing double-counts.
func TestQuerierCrashRestartScrapedCounters(t *testing.T) {
	q, sources, err := core.Setup(3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := QuerierConfig{ListenAddr: "127.0.0.1:0", StateDir: dir, CheckpointEvery: 2}

	qn1, err := NewQuerierNodeConfig(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	run1 := make(chan error, 1)
	go func() { run1 <- qn1.Run() }()
	conn, _ := dialRoot(t, qn1.Addr(), 3)

	const epochs = 5
	for e := prf.Epoch(1); e <= epochs; e++ {
		psr := mergeAll(t, q, sources, e, []uint64{1, 2, 3})
		if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: uint64(e), Payload: encodeReport(psr, nil)}); err != nil {
			t.Fatal(err)
		}
		if res := <-qn1.Results; res.Err != nil {
			t.Fatalf("epoch %d: %+v", e, res)
		}
		readResult(t, conn)
	}
	conn.Close()
	qn1.Crash()
	<-run1

	qn2, err := NewQuerierNodeConfig(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn2.Close()
	srv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{Registry: qn2.Metrics()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := scrapeSeries(t, "http://"+srv.Addr())
	if got := m["sies_epochs_served_total"]; got != epochs {
		t.Errorf("restored sies_epochs_served_total = %v, want %d", got, epochs)
	}
	if got := m["sies_epochs_full_total"]; got != epochs {
		t.Errorf("restored sies_epochs_full_total = %v, want %d", got, epochs)
	}
	if got := m["sies_last_eval_epoch"]; got != epochs {
		t.Errorf("restored sies_last_eval_epoch = %v, want %d", got, epochs)
	}
	if got := m["sies_durability_enabled"]; got != 1 {
		t.Errorf("sies_durability_enabled = %v, want 1", got)
	}
}

// TestHealthPollHammer polls Health(), DurabilityStats() and the Prometheus
// writer from many goroutines while epochs are being served. Under -race this
// is the regression test for the stats-snapshot lock-scoping bug: the old
// Health() copied a struct that other paths mutated field-by-field; the obs
// registry makes every read an atomic load.
func TestHealthPollHammer(t *testing.T) {
	q, sources, err := core.Setup(3)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuerierNodeConfig(QuerierConfig{ListenAddr: "127.0.0.1:0", StateDir: t.TempDir()}, q)
	if err != nil {
		t.Fatal(err)
	}
	run := make(chan error, 1)
	go func() { run <- qn.Run() }()
	conn, _ := dialRoot(t, qn.Addr(), 3)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := qn.Health()
				// Coherence: the outcome split can never exceed the total.
				if h.Full+h.Partial > h.Epochs {
					t.Errorf("incoherent health snapshot: %+v", h)
					return
				}
				_ = qn.DurabilityStats()
				if err := qn.Metrics().WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}

	const epochs = 60
	for e := prf.Epoch(1); e <= epochs; e++ {
		// Alternate full and partial epochs so both counters move.
		contributing := sources
		var failed []int
		if e%2 == 0 {
			contributing = sources[:2]
			failed = []int{2}
		}
		vals := []uint64{1, 2, 3}[:len(contributing)]
		psr := mergeAll(t, q, contributing, e, vals)
		if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: uint64(e), Payload: encodeReport(psr, failed)}); err != nil {
			t.Fatal(err)
		}
		if res := <-qn.Results; res.Err != nil {
			t.Fatalf("epoch %d: %+v", e, res)
		}
		readResult(t, conn)
	}
	close(stop)
	wg.Wait()

	h := qn.Health()
	if h.Epochs != epochs || h.Full != epochs/2 || h.Partial != epochs/2 {
		t.Fatalf("final health %+v, want %d epochs split %d/%d", h, epochs, epochs/2, epochs/2)
	}
	if h.Missed[2] != epochs/2 {
		t.Fatalf("missed[2] = %d, want %d", h.Missed[2], epochs/2)
	}
	conn.Close()
	qn.Close()
	if err := <-run; err != nil {
		t.Fatal(err)
	}
}

// TestTraceEndpointBadInput pins the /trace/epochs error contract.
func TestTraceEndpointBadInput(t *testing.T) {
	q, _, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn.Close()
	srv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{Registry: qn.Metrics(), Tracer: qn.Tracer()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/trace/epochs?n=bogus", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n → status %d, want 400", resp.StatusCode)
	}
}

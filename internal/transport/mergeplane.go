package transport

import (
	"sync"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/obs"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// DefaultMergeWorkers bounds the parallel merge plane's default pool size;
// the actual default is min(DefaultMergeWorkers, GOMAXPROCS).
const DefaultMergeWorkers = 4

// mergeJob is one unit of merge-plane work: a claimed epoch to flush, or a
// drain sentinel (ack non-nil) used to barrier the pool.
type mergeJob struct {
	epoch   uint64
	ack     chan<- struct{}
	release <-chan struct{}
}

// mergePlane is the aggregator's flush worker pool. Claimed epoch slots are
// submitted here; workers merge, encode and forward them upstream in
// parallel. The channel is the only handoff: claiming a slot (under its shard
// lock) is what guarantees an epoch is submitted at most once.
type mergePlane struct {
	jobs    chan mergeJob
	workers int
	wg      sync.WaitGroup
}

func newMergePlane(workers int) *mergePlane {
	if workers < 1 {
		workers = 1
	}
	return &mergePlane{jobs: make(chan mergeJob, workers*64), workers: workers}
}

// start launches the pool. Must precede any submit.
func (p *mergePlane) start(a *AggregatorNode) {
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go a.mergeWorker()
	}
}

// submit hands a claimed epoch to the pool, blocking when every worker is
// busy and the queue is full — backpressure onto the child readers. Callers
// must hold no locks: a worker may need the aggregator's read lock to make
// progress.
func (p *mergePlane) submit(epoch uint64) {
	p.jobs <- mergeJob{epoch: epoch}
}

// drain barriers the pool: it returns once every job submitted before the
// call has fully completed (including its upstream write). Used by the leave
// path to guarantee no in-flight flush carrying a leaver's data can be
// written upstream after the Leave relay. One sentinel per worker rides the
// FIFO queue; a worker parks on its sentinel until all have, which can only
// happen after every earlier job finished. Callers must hold no locks.
func (p *mergePlane) drain() {
	ack := make(chan struct{}, p.workers)
	release := make(chan struct{})
	for i := 0; i < p.workers; i++ {
		p.jobs <- mergeJob{ack: ack, release: release}
	}
	for i := 0; i < p.workers; i++ {
		<-ack
	}
	close(release)
}

// stop closes the queue and waits for the workers to exit. No submit or
// drain may follow.
func (p *mergePlane) stop() {
	close(p.jobs)
	p.wg.Wait()
}

// mergeScratch is a worker's reusable flush scratch: contributor extraction,
// per-report covers∖failed subtraction and the failed-set complement all run
// in these buffers, so a steady-state flush allocates only its wire payload —
// churned epochs (dirty rebuilds, unsorted contributors) included.
type mergeScratch struct {
	contrib []int
	minus   []int
	failed  []int
}

// mergeWorker consumes claimed epochs until the plane stops. A flush error on
// a live node fails the Run loop, matching the serial plane's behaviour; on a
// closed or crashed node the remaining jobs are dropped, as the old loop
// dropped its pending map on exit.
func (a *AggregatorNode) mergeWorker() {
	defer a.plane.wg.Done()
	var w mergeScratch
	for job := range a.plane.jobs {
		if job.ack != nil {
			job.ack <- struct{}{}
			<-job.release
			continue
		}
		a.obs.mergeJobs.Inc()
		if err := a.flushEpoch(job.epoch, &w); err != nil {
			a.fail(err)
		}
	}
}

// flushEpoch merges and forwards one claimed epoch. The shard lock is held
// only for state extraction (accumulator word, contributor ids, slot
// removal); the modular reduction, frame encoding, upstream write and durable
// commit all run outside every lock so concurrent flushes overlap.
//
// Interleaving with lifecycle events is safe by construction: the covered
// union is snapshotted before extraction, and a leave that lands in between
// sweeps the leaver's report under the shard lock before we extract (the
// leave path then drains the plane before relaying the Leave upstream). An
// epoch straddling a membership change degrades to partial coverage, never to
// a wrong or double-counted SUM.
func (a *AggregatorNode) flushEpoch(t uint64, w *mergeScratch) error {
	if a.crashedA.Load() {
		return nil
	}
	a.mu.RLock()
	covers := a.covers // replaced wholesale, never mutated: header copy is safe
	a.mu.RUnlock()

	sh := a.table.shard(t)
	a.table.lock(sh)
	sl := sh.slots[t]
	if sl == nil {
		sh.mu.Unlock()
		return nil
	}
	var word uint256.Word512
	count := 0
	if sl.dirty {
		// Re-sends, rollbacks or sweeps desynced the lazy partial: rebuild
		// from the surviving reports. Still one deferred reduction.
		a.obs.mergeRebuilds.Inc()
		var acc uint256.Accumulator
		for _, rep := range sl.reports {
			if rep.psr != nil {
				acc.Add(rep.psr.C)
				count++
			}
		}
		word = acc.Word()
	} else {
		a.obs.mergeLazy.Inc()
		word = sl.acc.Word()
		count = sl.accN
	}
	contrib := w.contrib[:0]
	for _, rep := range sl.reports {
		if len(rep.failed) == 0 {
			contrib = append(contrib, rep.covers...)
		} else {
			w.minus = idsMinusInto(w.minus[:0], rep.covers, rep.failed)
			contrib = append(contrib, w.minus...)
		}
	}
	delete(sh.slots, t)
	sh.flushed.put(t, struct{}{})
	occupancy := len(sh.slots)
	sh.mu.Unlock()
	a.table.open.Add(-1)
	a.obs.shardOccupancy.Observe(float64(occupancy))

	// Map iteration order is arbitrary, so the concatenation is canonical only
	// by luck; sort + dedup in place when it is not (coverage snapshots are
	// disjoint in the steady state, overlapping only across steals).
	if !idsSorted(contrib) {
		contrib = normalizeIDsInPlace(contrib)
	}
	w.contrib = contrib
	w.failed = idsMinusInto(w.failed[:0], covers, contrib)
	failed := w.failed

	a.setLastFlushed(t)
	a.obs.flushes.Inc()
	a.obs.tracer.Mark(t, obs.StageFlush)
	var out Frame
	if count == 0 {
		a.obs.failureFlushes.Inc()
		a.obs.tracer.End(t, "failure")
		out = Frame{Type: TypeFailure, Epoch: t, Payload: core.EncodeContributors(failed)}
	} else {
		a.obs.tracer.End(t, "flushed")
		psr := core.PSR{C: a.field.Reduce512(word)}
		out = Frame{Type: TypePSR, Epoch: t, Payload: encodeReport(psr, failed)}
	}
	var err error
	if a.upfw != nil {
		err = a.upfw.Enqueue(out)
	} else {
		err = a.upstream.Write(out)
	}
	if err != nil {
		// Not journaled as committed: after a restart the contributions replay
		// and the epoch re-flushes — at-least-once delivery, which the
		// querier's committed window dedups into exactly-once.
		return err
	}
	a.commitFlush(prf.Epoch(t))
	return nil
}

// fail records the first fatal flush error and wakes the Run loop. Errors on
// a node already closing are expected teardown noise and are dropped.
func (a *AggregatorNode) fail(err error) {
	if a.closedA.Load() {
		return
	}
	a.failOnce.Do(func() {
		a.runErr = err
		close(a.failCh)
	})
}

// settleIrregular re-checks completeness of epoch t against the current
// membership while some slot is irregular (departed, coverage-stolen or
// fenced): the steady-state count compare in the ingest fast path cannot be
// trusted then. Runs the per-child scan under the read lock with the shard
// lock nested (the table's lock order), claiming and submitting when every
// still-expected child has reported. Allocation-free: the scan walks the
// slot's report map directly instead of materialising an expected set.
func (a *AggregatorNode) settleIrregular(t uint64) {
	claim := false
	a.mu.RLock()
	sh := a.table.shard(t)
	a.table.lock(sh)
	if sl := sh.slots[t]; sl != nil && !sl.claimed {
		claim = true
		for idx, c := range a.children {
			if !expectsChild(c, t) {
				continue
			}
			if _, ok := sl.reports[idx]; !ok {
				claim = false
				break
			}
		}
		if claim {
			sl.claimed = true
		}
	}
	sh.mu.Unlock()
	a.mu.RUnlock()
	if claim {
		a.plane.submit(t)
	}
}

// expectsChild reports whether slot c still owes a report for epoch t:
// departed and coverage-stolen slots owe nothing, and neither does a slot
// whose fence covers t (its contribution for t travelled through its previous
// parent, by the fence invariant). Callers hold a.mu (read or write).
func expectsChild(c *childState, t uint64) bool {
	return !c.departed && len(c.covers) > 0 && t > c.fence
}

// idsMinusInto computes a ∖ b for sorted canonical id lists into dst
// (typically a reused scratch sliced to [:0]), allocating only on growth.
func idsMinusInto(dst, a, b []int) []int {
	j := 0
	for _, id := range a {
		for j < len(b) && b[j] < id {
			j++
		}
		if j < len(b) && b[j] == id {
			continue
		}
		dst = append(dst, id)
	}
	return dst
}

// normalizeIDsInPlace sorts and dedups ids without allocating, the scratch
// counterpart of core.NormalizeIDs for flush-path buffers.
func normalizeIDsInPlace(ids []int) []int {
	sortInts(ids)
	out := ids[:0]
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// sortInts is an allocation-free insertion/shell sort for flush-path id
// buffers — contributor lists are short and nearly sorted (per-report runs),
// where shell sort beats the generic sort's overhead and never allocates.
func sortInts(a []int) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}

// claimDeadlines claims and submits every unclaimed slot whose flush deadline
// has passed. Run-loop ticker path; holds no locks across submits.
func (a *AggregatorNode) claimDeadlines(now time.Time) {
	for _, t := range a.table.claimExpired(now) {
		a.plane.submit(t)
	}
}

package transport

import (
	"errors"
	"net"
	"sync"
	"time"
)

// FrameWriter coalesces frames queued by one producer path into batches
// flushed as a single vectored write — a latency-bounded replacement for
// per-frame syscalls. Frames are encoded directly into a fixed-capacity
// pooled batch buffer (encode→write→release, 0 allocs/op steady state); a
// batch flushes when it fills (MaxBatchBytes / MaxBatchFrames) or when the
// oldest queued frame has waited FlushDelay, whichever comes first. A single
// flusher goroutine performs all sink writes, so batches reach the wire in
// enqueue order.
//
// Errors are sticky: once the sink fails, every later Enqueue returns the
// error and queued batches are discarded, mirroring a dead connection. The
// owner tears down or redials exactly as it would for a failed WriteFrame.
type FrameWriter struct {
	cfg FrameWriterConfig

	mu    sync.Mutex
	cur   *wbatch
	queue []*wbatch // full batches awaiting the flusher, FIFO
	err   error     // sticky sink error

	closed  bool
	writing bool // flusher is inside a drain cycle
	idle    *sync.Cond
	kick    chan struct{}
	closeCh chan struct{}
	wg      sync.WaitGroup

	pool sync.Pool // of *wbatch

	flushes    uint64 // batches written
	framesOut  uint64
	bytesOut   uint64
	timerFlush uint64 // batches flushed by deadline rather than size
	dropped    uint64 // frames discarded after a sticky error
}

// FrameWriterConfig tunes a FrameWriter. Zero values select the defaults.
type FrameWriterConfig struct {
	// Sink consumes flushed batches. Required.
	Sink BatchSink

	// MaxBatchBytes caps one batch's encoded size (default 32 KiB). A batch
	// buffer of exactly this capacity is pooled and never reallocated, so
	// frame encodings inside it stay stable for vectored writes.
	MaxBatchBytes int

	// MaxBatchFrames caps frames per batch (default 128).
	MaxBatchFrames int

	// FlushDelay bounds how long the oldest enqueued frame may wait before
	// its batch is forced out (default 500µs) — the Nagle replacement with
	// an explicit latency budget.
	FlushDelay time.Duration

	// MaxQueuedBatches bounds full batches awaiting the flusher before
	// Enqueue blocks (default 4) — backpressure instead of unbounded memory.
	MaxQueuedBatches int

	// OnFlush, when set, observes each written batch (frames, bytes) —
	// the metrics hook for batch-size histograms. Called off the enqueue
	// path, from the flusher goroutine.
	OnFlush func(frames, bytes int)
}

// BatchSink consumes one coalesced batch as an ordered segment list. The
// segments jointly hold whole frames only, so a sink that writes a prefix
// and fails tears at most one frame at the stream position where the
// connection died — identical to a failed WriteFrame. Implementations must
// not retain segs past the call.
type BatchSink interface {
	WriteBatch(segs [][]byte) error
}

// ConnSink adapts a net.Conn (or anything io.Writer-shaped) into a
// BatchSink using net.Buffers, which on *net.TCPConn collapses the batch
// into one writev syscall. The scratch slice is retained so steady-state
// writes allocate nothing.
type ConnSink struct {
	W       net.Conn
	scratch net.Buffers
}

// WriteBatch writes all segments, returning the first error. net.Buffers
// consumes its receiver, so the segment views are rebuilt per call.
func (s *ConnSink) WriteBatch(segs [][]byte) error {
	s.scratch = append(s.scratch[:0], segs...)
	_, err := s.scratch.WriteTo(s.W)
	return err
}

// wbatch is one building batch: a fixed-capacity contiguous buffer plus the
// ordered segment list. Small frames extend the open tail region of buf;
// oversized frames become their own segment. Segments alias buf, whose
// capacity never changes, so they stay valid until the batch is recycled.
type wbatch struct {
	buf    []byte
	open   int // start of the unclosed tail segment within buf
	segs   [][]byte
	frames int
	bytes  int
	first  time.Time // when the oldest frame was enqueued
}

func (b *wbatch) closeOpen() {
	if len(b.buf) > b.open {
		b.segs = append(b.segs, b.buf[b.open:len(b.buf):len(b.buf)])
		b.open = len(b.buf)
	}
}

func (b *wbatch) reset() {
	b.buf = b.buf[:0]
	b.open = 0
	for i := range b.segs {
		b.segs[i] = nil
	}
	b.segs = b.segs[:0]
	b.frames, b.bytes = 0, 0
}

// ErrWriterClosed is returned by Enqueue after Close.
var ErrWriterClosed = errors.New("transport: frame writer closed")

// NewFrameWriter starts a FrameWriter flushing to cfg.Sink. Close releases
// its flusher goroutine.
func NewFrameWriter(cfg FrameWriterConfig) *FrameWriter {
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 32 << 10
	}
	if cfg.MaxBatchFrames <= 0 {
		cfg.MaxBatchFrames = 128
	}
	if cfg.FlushDelay <= 0 {
		cfg.FlushDelay = 500 * time.Microsecond
	}
	if cfg.MaxQueuedBatches <= 0 {
		cfg.MaxQueuedBatches = 4
	}
	fw := &FrameWriter{
		cfg:     cfg,
		kick:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
	}
	fw.idle = sync.NewCond(&fw.mu)
	fw.pool.New = func() any {
		return &wbatch{buf: make([]byte, 0, cfg.MaxBatchBytes), segs: make([][]byte, 0, 8)}
	}
	fw.cur = fw.pool.Get().(*wbatch)
	fw.wg.Add(1)
	go fw.run()
	return fw
}

// Enqueue queues one frame, copying its payload into the batch buffer. The
// caller keeps ownership of f.Payload.
func (fw *FrameWriter) Enqueue(f Frame) error {
	return fw.EnqueueAppend(f.Type, f.Epoch, len(f.Payload), func(dst []byte) {
		copy(dst, f.Payload)
	})
}

// EnqueueAppend queues one frame whose plen-byte payload is produced by fill
// writing directly into reserved batch space — the zero-copy path for
// producers that would otherwise assemble a payload just to have Enqueue
// copy it. fill runs synchronously under the writer lock; it must only write
// dst. fill may be nil when plen is 0.
func (fw *FrameWriter) EnqueueAppend(t byte, epoch uint64, plen int, fill func(dst []byte)) error {
	if plen > MaxFrameSize {
		return ErrFrameTooLarge
	}
	need := frameHeaderSize + plen
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	if fw.closed {
		fw.mu.Unlock()
		return ErrWriterClosed
	}
	b := fw.cur
	if b.frames > 0 && (b.bytes+need > cap(b.buf) || b.frames >= fw.cfg.MaxBatchFrames) {
		if !fw.rotateLocked() {
			err := fw.err
			fw.mu.Unlock()
			if err == nil {
				err = ErrWriterClosed
			}
			return err
		}
		b = fw.cur
	}
	if need <= cap(b.buf)-len(b.buf) {
		off := len(b.buf)
		b.buf = b.buf[:off+need]
		putFrameHeader(b.buf[off:], t, epoch, plen)
		if plen > 0 {
			fill(b.buf[off+frameHeaderSize : off+need])
		}
	} else {
		// A single frame larger than the batch buffer: give it a dedicated
		// segment. Rare (failure lists near MaxFrameSize), so the allocation
		// is acceptable.
		seg := make([]byte, need)
		putFrameHeader(seg, t, epoch, plen)
		if plen > 0 {
			fill(seg[frameHeaderSize:])
		}
		b.closeOpen()
		b.segs = append(b.segs, seg)
	}
	b.bytes += need
	b.frames++
	if b.frames == 1 {
		b.first = time.Now()
		fw.kickLocked()
	}
	if b.bytes >= fw.cfg.MaxBatchBytes || b.frames >= fw.cfg.MaxBatchFrames {
		fw.rotateLocked()
	}
	fw.mu.Unlock()
	return nil
}

// rotateLocked moves the current batch onto the flusher queue and installs a
// fresh one, blocking while the queue is at its backpressure bound. Returns
// false if the writer errored or closed while waiting. Caller holds fw.mu.
func (fw *FrameWriter) rotateLocked() bool {
	for len(fw.queue) >= fw.cfg.MaxQueuedBatches && fw.err == nil && !fw.closed {
		fw.idle.Wait()
	}
	if fw.err != nil || fw.closed {
		return false
	}
	fw.queue = append(fw.queue, fw.cur)
	fw.cur = fw.pool.Get().(*wbatch)
	fw.kickLocked()
	return true
}

func (fw *FrameWriter) kickLocked() {
	select {
	case fw.kick <- struct{}{}:
	default:
	}
}

// run is the flusher: the only goroutine that touches the sink, so batches
// hit the wire strictly in enqueue order.
func (fw *FrameWriter) run() {
	defer fw.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var timerC <-chan time.Time
	for {
		select {
		case <-fw.kick:
		case <-timerC:
			timerC = nil
		case <-fw.closeCh:
			fw.drain(true, &timerC, timer)
			return
		}
		fw.drain(false, &timerC, timer)
	}
}

// drain writes every queued batch (and, at deadline or close, the current
// partial batch), re-arming the flush timer for whatever remains.
func (fw *FrameWriter) drain(final bool, timerC *<-chan time.Time, timer *time.Timer) {
	for {
		fw.mu.Lock()
		batches := fw.queue
		fw.queue = nil
		stolen := -1 // index of a batch forced out by deadline, for stats
		if fw.cur.frames > 0 {
			dl := fw.cur.first.Add(fw.cfg.FlushDelay)
			wait := time.Until(dl)
			if final || wait <= 0 {
				if !final {
					stolen = len(batches)
				}
				batches = append(batches, fw.cur)
				fw.cur = fw.pool.Get().(*wbatch)
			} else if *timerC == nil {
				timer.Reset(wait)
				*timerC = timer.C
			}
		}
		if len(batches) == 0 {
			fw.writing = false
			fw.idle.Broadcast()
			fw.mu.Unlock()
			return
		}
		fw.writing = true
		fw.idle.Broadcast() // queue shrank: release backpressured enqueuers
		fw.mu.Unlock()

		for i, b := range batches {
			fw.writeBatch(b, i == stolen)
		}
	}
}

// writeBatch sends one batch to the sink (unless a sticky error already
// stands, in which case the frames are counted as dropped) and recycles it.
func (fw *FrameWriter) writeBatch(b *wbatch, byDeadline bool) {
	b.closeOpen()
	fw.mu.Lock()
	err := fw.err
	fw.mu.Unlock()
	if err == nil && b.frames > 0 {
		err = fw.cfg.Sink.WriteBatch(b.segs)
		if err != nil {
			fw.mu.Lock()
			fw.err = err
			fw.idle.Broadcast()
			fw.mu.Unlock()
		} else {
			fw.mu.Lock()
			fw.flushes++
			fw.framesOut += uint64(b.frames)
			fw.bytesOut += uint64(b.bytes)
			if byDeadline {
				fw.timerFlush++
			}
			fw.mu.Unlock()
			if fw.cfg.OnFlush != nil {
				fw.cfg.OnFlush(b.frames, b.bytes)
			}
		}
	} else if err != nil {
		fw.mu.Lock()
		fw.dropped += uint64(b.frames)
		fw.mu.Unlock()
	}
	b.reset()
	fw.pool.Put(b)
}

// Flush blocks until every frame enqueued before the call has been handed to
// the sink (or discarded by a sticky error, which Flush then returns).
func (fw *FrameWriter) Flush() error {
	fw.mu.Lock()
	if fw.cur.frames > 0 {
		// Force the partial batch out rather than waiting for its deadline.
		fw.queue = append(fw.queue, fw.cur)
		fw.cur = fw.pool.Get().(*wbatch)
		fw.kickLocked()
	}
	for (len(fw.queue) > 0 || fw.writing) && fw.err == nil {
		fw.idle.Wait()
	}
	err := fw.err
	fw.mu.Unlock()
	return err
}

// Close flushes pending frames, stops the flusher and returns the sticky
// error, if any. Idempotent.
func (fw *FrameWriter) Close() error {
	fw.mu.Lock()
	if fw.closed {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	fw.closed = true
	fw.idle.Broadcast()
	fw.mu.Unlock()
	close(fw.closeCh)
	fw.wg.Wait()
	fw.mu.Lock()
	err := fw.err
	fw.mu.Unlock()
	return err
}

// FrameWriterStats is a point-in-time view of a writer's flush counters.
type FrameWriterStats struct {
	Flushes         uint64 // batches written to the sink
	Frames          uint64 // frames written
	Bytes           uint64 // encoded bytes written
	DeadlineFlushes uint64 // batches forced out by FlushDelay
	Dropped         uint64 // frames discarded after a sticky error
	QueueDepth      int    // full batches currently awaiting the flusher
	PendingFrames   int    // frames in the building batch
}

// Stats snapshots the writer's counters.
func (fw *FrameWriter) Stats() FrameWriterStats {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return FrameWriterStats{
		Flushes:         fw.flushes,
		Frames:          fw.framesOut,
		Bytes:           fw.bytesOut,
		DeadlineFlushes: fw.timerFlush,
		Dropped:         fw.dropped,
		QueueDepth:      len(fw.queue),
		PendingFrames:   fw.cur.frames,
	}
}

package transport

import (
	"net"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
)

// fakeParent serves one listener as a hello-acking parent: every accepted
// connection's hello lands on hellos, every later frame on frames, and the
// accepted conns themselves on conns so tests can kill them.
func fakeParent(ln net.Listener, conns chan net.Conn, hellos, frames chan Frame) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns <- conn
		go func(c net.Conn) {
			f, err := ReadFrame(c)
			if err != nil || f.Type != TypeHello {
				c.Close()
				return
			}
			hellos <- f
			if err := WriteFrame(c, Frame{Type: TypeHello}); err != nil {
				return
			}
			for {
				f, err := ReadFrame(c)
				if err != nil {
					return
				}
				frames <- f
			}
		}(conn)
	}
}

func recvFrame(t *testing.T, ch chan Frame, what string) Frame {
	t.Helper()
	select {
	case f := <-ch:
		return f
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return Frame{}
	}
}

// dialChildFenced is dialChild with an explicit fence epoch in the hello: the
// child declares it may already have handed epochs at or below the fence to a
// previous parent.
func dialChildFenced(t *testing.T, addr string, covers []int, fence uint64) (net.Conn, uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, Frame{Type: TypeHello, Epoch: fence, Payload: core.EncodeContributors(covers)}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := ReadFrame(conn)
	if err != nil || ack.Type != TypeHello {
		t.Fatalf("hello-ack: %+v (%v)", ack, err)
	}
	conn.SetReadDeadline(time.Time{})
	return conn, ack.Epoch
}

// TestSourceFailoverEscalatesToRankedParent pins the failover-dialing
// contract: when the first-ranked parent dies and the per-address backoff
// budget exhausts, the source escalates to the next candidate, re-running the
// hello handshake with a fence covering every epoch it attempted at the dead
// parent, and traffic resumes there.
func TestSourceFailoverEscalatesToRankedParent(t *testing.T) {
	_, sources, err := core.Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnA.Close()
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnB.Close()

	connsA, hellosA, framesA := make(chan net.Conn, 4), make(chan Frame, 4), make(chan Frame, 256)
	connsB, hellosB, framesB := make(chan net.Conn, 4), make(chan Frame, 4), make(chan Frame, 256)
	go fakeParent(lnA, connsA, hellosA, framesA)
	go fakeParent(lnB, connsB, hellosB, framesB)

	src, err := DialSourceWith(SourceConfig{
		ParentAddrs: []string{lnA.Addr().String(), lnB.Addr().String()},
		Backoff: Backoff{
			Initial: 2 * time.Millisecond, Max: 10 * time.Millisecond,
			MaxAttempts: 2, Seed: 1,
		},
	}, sources[0])
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	recvFrame(t, hellosA, "hello at parent A")
	cA := <-connsA
	if err := src.Report(1, 100); err != nil {
		t.Fatal(err)
	}
	if f := recvFrame(t, framesA, "epoch 1 at parent A"); f.Type != TypePSR || f.Epoch != 1 {
		t.Fatalf("parent A got type %d epoch %d, want PSR epoch 1", f.Type, f.Epoch)
	}

	// Parent A dies for good. Subsequent reports burn the per-address budget
	// (2 attempts) and must escalate to parent B. The first write after the
	// kill may be swallowed by the kernel's send buffer before the RST lands,
	// so reports keep flowing until the redialer observes the failure.
	cA.Close()
	lnA.Close()
	epoch := prf.Epoch(2)
	deadline := time.Now().Add(10 * time.Second)
	for src.Failovers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("source never escalated to the second-ranked parent")
		}
		if err := src.Report(epoch, 100); err != nil {
			t.Fatalf("report during failover: %v", err)
		}
		epoch++
		time.Sleep(5 * time.Millisecond)
	}

	hb := recvFrame(t, hellosB, "hello at parent B")
	if hb.Epoch < 1 {
		t.Fatalf("failover hello fence = %d: must cover epoch 1 attempted at the dead parent", hb.Epoch)
	}
	// Traffic resumes at B.
	var got Frame
	for got.Type != TypePSR {
		got = recvFrame(t, framesB, "PSR at parent B")
	}
	if got.Epoch <= 1 {
		t.Fatalf("parent B received epoch %d, want a post-failover epoch", got.Epoch)
	}
	if src.Failovers() < 1 {
		t.Fatalf("Failovers() = %d, want >= 1", src.Failovers())
	}
}

// aggHarness wires one aggregator to a fake upstream parent and returns the
// running node plus the parent-side conn for upstream assertions.
type aggHarness struct {
	node    *AggregatorNode
	addr    string // the aggregator's listen address
	parent  net.Conn
	runDone chan error
}

func startAggWithFakeParent(t *testing.T, cfg AggregatorConfig, dialChildren func(addr string)) *aggHarness {
	t.Helper()
	parentLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { parentLn.Close() })
	cfg.ParentAddr = parentLn.Addr().String()
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = freeAddr(t)
	}

	q, _, err := core.Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	type built struct {
		node *AggregatorNode
		err  error
	}
	builtCh := make(chan built, 1)
	go func() {
		node, err := NewAggregatorNode(cfg, q.Params().Field())
		builtCh <- built{node, err}
	}()
	if dialChildren != nil {
		time.Sleep(50 * time.Millisecond)
		dialChildren(cfg.ListenAddr)
	}
	parent, err := parentLn.Accept()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { parent.Close() })
	hello := readUpstream(t, parent)
	if hello.Type != TypeHello {
		t.Fatalf("expected upstream hello, got type %d", hello.Type)
	}
	if err := WriteFrame(parent, Frame{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}
	b := <-builtCh
	if b.err != nil {
		t.Fatal(b.err)
	}
	h := &aggHarness{node: b.node, addr: cfg.ListenAddr, parent: parent, runDone: make(chan error, 1)}
	go func() { h.runDone <- h.node.Run() }()
	return h
}

// waitCounter polls an obs counter until it reaches want or the deadline
// passes — event-loop processing of a raw frame is asynchronous to the test.
func waitCounter(t *testing.T, read func() uint64, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for read() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, read(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAggregatorFenceDropsStaleEpochs is the stale-connection regression for
// re-parenting: a child that re-attaches with a fence epoch (it may have
// handed epochs at or below the fence to another parent) must have exactly
// those epochs dropped, so no (source, epoch) contribution can travel two
// paths. Epochs above the fence flow normally.
func TestAggregatorFenceDropsStaleEpochs(t *testing.T) {
	q, sources, err := core.Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	var c0 net.Conn
	h := startAggWithFakeParent(t, AggregatorConfig{
		NumChildren: 1, Timeout: 500 * time.Millisecond, ReconnectWindow: 5 * time.Second,
	}, func(addr string) {
		c0, _ = dialChild(t, addr, []int{0})
	})

	sendPSR(t, c0, sources[0], 1, 100)
	if f := readUpstream(t, h.parent); f.Type != TypePSR || f.Epoch != 1 {
		t.Fatalf("flush 1: type %d epoch %d", f.Type, f.Epoch)
	}
	c0.Close()

	// The child returns from a failover excursion: its hello fences epochs
	// <= 3 (attempted toward another parent while away).
	c0b, resync := dialChildFenced(t, h.addr, []int{0}, 3)
	defer c0b.Close()
	if resync != 1 {
		t.Fatalf("resync after reattach = %d, want 1", resync)
	}
	sendPSR(t, c0b, sources[0], 2, 200) // at or below fence: dropped
	sendPSR(t, c0b, sources[0], 3, 300) // at the fence: dropped
	sendPSR(t, c0b, sources[0], 4, 400) // above the fence: flows

	f := readUpstream(t, h.parent)
	if f.Type != TypePSR || f.Epoch != 4 {
		t.Fatalf("post-fence flush: type %d epoch %d, want PSR epoch 4", f.Type, f.Epoch)
	}
	psr, failed, err := decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || len(failed) != 0 {
		t.Fatalf("epoch 4 report: failed %v (%v)", failed, err)
	}
	if res, err := q.Evaluate(4, psr); err != nil || res.Sum != 400 {
		t.Fatalf("epoch 4 evaluation: %+v (%v)", res, err)
	}
	waitCounter(t, h.node.obs.fenceDrops.Value, 2, "fence drops")

	c0b.Close()
	h.node.Close()
	<-h.runDone
}

// TestAcceptNewStealsCoverage pins the re-homing steal semantics at a
// failover target: a new child whose hello claims ids an existing slot still
// holds takes them over; the stale slot shrinks (or empties and departs), and
// zombie reports from emptied slots are dropped, never merged.
func TestAcceptNewStealsCoverage(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()
	merge := core.NewAggregator(field)

	var cX net.Conn
	h := startAggWithFakeParent(t, AggregatorConfig{
		NumChildren: 1, AcceptNew: true, Timeout: 2 * time.Second, ReconnectWindow: 5 * time.Second,
	}, func(addr string) {
		cX, _ = dialChild(t, addr, []int{0, 1})
	})
	defer cX.Close()

	// Epoch 1: X covers both sources and reports their merged PSR.
	psr0, _ := sources[0].Encrypt(1, 100)
	psr1, _ := sources[1].Encrypt(1, 900)
	if err := WriteFrame(cX, Frame{Type: TypePSR, Epoch: 1, Payload: encodeReport(merge.Merge(psr0, psr1), nil)}); err != nil {
		t.Fatal(err)
	}
	f := readUpstream(t, h.parent)
	psr, failed, err := decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || f.Epoch != 1 || len(failed) != 0 {
		t.Fatalf("flush 1: epoch %d failed %v (%v)", f.Epoch, failed, err)
	}
	if res, err := q.Evaluate(1, psr); err != nil || res.Sum != 1000 {
		t.Fatalf("epoch 1: %+v (%v)", res, err)
	}

	// Source 0 re-homes here directly: its hello steals id 0 from X's slot.
	cY, _ := dialChild(t, h.addr, []int{0})
	defer cY.Close()
	waitCounter(t, h.node.obs.steals.Value, 1, "steals after Y")

	// Epoch 2 assembles from the post-steal slots: X now vouches only for
	// source 1, Y for source 0.
	sendPSR(t, cY, sources[0], 2, 10)
	sendPSR(t, cX, sources[1], 2, 20)
	f = readUpstream(t, h.parent)
	psr, failed, err = decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || f.Epoch != 2 || len(failed) != 0 {
		t.Fatalf("flush 2: epoch %d failed %v (%v)", f.Epoch, failed, err)
	}
	if res, err := q.Evaluate(2, psr); err != nil || res.Sum != 30 {
		t.Fatalf("epoch 2: %+v (%v)", res, err)
	}

	// A whole-subtree re-home: Z's hello claims the full set, stealing from
	// both X and Y. Their slots empty and depart; they are zombies now, and
	// their late reports must be dropped, not merged.
	cZ, _ := dialChild(t, h.addr, []int{0, 1})
	defer cZ.Close()
	waitCounter(t, h.node.obs.steals.Value, 2, "steals after Z")

	sendPSR(t, cX, sources[1], 3, 7777) // zombie: slot coverage is gone
	sendPSR(t, cY, sources[0], 3, 8888) // zombie too
	waitCounter(t, h.node.obs.staleDrops.Value, 2, "stale drops")
	psr0, _ = sources[0].Encrypt(3, 1)
	psr1, _ = sources[1].Encrypt(3, 2)
	if err := WriteFrame(cZ, Frame{Type: TypePSR, Epoch: 3, Payload: encodeReport(merge.Merge(psr0, psr1), nil)}); err != nil {
		t.Fatal(err)
	}
	f = readUpstream(t, h.parent)
	psr, failed, err = decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || f.Epoch != 3 || len(failed) != 0 {
		t.Fatalf("flush 3: epoch %d failed %v (%v)", f.Epoch, failed, err)
	}
	if res, err := q.Evaluate(3, psr); err != nil || res.Sum != 3 {
		t.Fatalf("epoch 3 must hold only the re-homed slot's data: %+v (%v)", res, err)
	}

	h.node.Close()
	<-h.runDone
}

// TestAggregatorLeaveDrainsSlot pins graceful departure: a child's leave
// notice shrinks the aggregator's coverage, relays upstream ahead of any
// later flush, and later epochs settle over the remaining children with the
// leaver neither merged nor listed as failed.
func TestAggregatorLeaveDrainsSlot(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	var c0, c1 net.Conn
	h := startAggWithFakeParent(t, AggregatorConfig{
		NumChildren: 2, Timeout: 500 * time.Millisecond, ReconnectWindow: 5 * time.Second,
	}, func(addr string) {
		c0, _ = dialChild(t, addr, []int{0})
		c1, _ = dialChild(t, addr, []int{1})
	})
	defer c0.Close()

	sendPSR(t, c0, sources[0], 1, 100)
	sendPSR(t, c1, sources[1], 1, 900)
	if f := readUpstream(t, h.parent); f.Type != TypePSR || f.Epoch != 1 {
		t.Fatalf("flush 1: type %d epoch %d", f.Type, f.Epoch)
	}

	// Child 1 drains gracefully and hangs up.
	if err := WriteFrame(c1, Frame{Type: TypeLeave, Payload: core.EncodeContributors([]int{1})}); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// The leave relays upstream before any post-leave flush.
	f := readUpstream(t, h.parent)
	if f.Type != TypeLeave {
		t.Fatalf("after leave, next upstream frame is type %d, want leave", f.Type)
	}
	ids, err := core.DecodeContributorsBounded(f.Payload, DefaultMaxSources)
	if err != nil || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("relayed leave ids = %v (%v), want [1]", ids, err)
	}

	// Epoch 2 settles over the remaining child alone: the leaver is neither
	// merged nor failed (the querier's departed view accounts for it).
	sendPSR(t, c0, sources[0], 2, 5)
	f = readUpstream(t, h.parent)
	psr, failed, err := decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || f.Type != TypePSR || f.Epoch != 2 {
		t.Fatalf("flush 2: type %d epoch %d (%v)", f.Type, f.Epoch, err)
	}
	if len(failed) != 0 {
		t.Fatalf("departed source listed as failed: %v", failed)
	}
	if res, err := q.EvaluateSubset(2, psr, []int{0}); err != nil || res.Sum != 5 {
		t.Fatalf("epoch 2 over the remaining child: %+v (%v)", res, err)
	}

	c0.Close()
	h.node.Close()
	<-h.runDone
}

// TestQuerierRootFenceRejectsStaleFlush pins the querier-side fence: a root
// hello declaring fence K makes uncommitted data frames for epochs <= K
// suspect (they may have travelled a previous link), so they are dropped, and
// epochs above K evaluate normally.
func TestQuerierRootFenceRejectsStaleFlush(t *testing.T) {
	q, sources, err := core.Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	go qn.Run()
	defer qn.Close()

	conn, resync := dialChildFenced(t, qn.Addr(), []int{0}, 5)
	defer conn.Close()
	if resync != 0 {
		t.Fatalf("fresh querier resync = %d, want 0", resync)
	}

	sendPSR(t, conn, sources[0], 3, 333) // at or below the fence: dropped
	sendPSR(t, conn, sources[0], 6, 600) // above the fence: evaluated

	res := waitResult(t, qn)
	if res.Epoch != 6 {
		t.Fatalf("first result is epoch %d, want the fenced epoch 3 dropped and 6 served", res.Epoch)
	}
	if res.Err != nil || res.Sum != 600 {
		t.Fatalf("epoch 6: %+v", res)
	}
	waitCounter(t, qn.obs.fenceRejects.Value, 1, "querier fence rejects")
}

// TestQuerierAccountsDepartedSources pins the contributor accounting after a
// graceful drain: once a leave notice reaches the querier, later epochs
// verify over the remaining set — the leaver is subtracted from the expected
// contributors even though the tree no longer lists it as failed — and a root
// re-hello claiming the shrunken coverage is accepted.
func TestQuerierAccountsDepartedSources(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()
	merge := core.NewAggregator(field)
	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	go qn.Run()
	defer qn.Close()

	conn, _ := dialChild(t, qn.Addr(), []int{0, 1})

	psr0, _ := sources[0].Encrypt(1, 100)
	psr1, _ := sources[1].Encrypt(1, 900)
	if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: 1, Payload: encodeReport(merge.Merge(psr0, psr1), nil)}); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, qn)
	if res.Err != nil || res.Sum != 1000 || res.Partial {
		t.Fatalf("epoch 1: %+v", res)
	}

	// Source 1 departs; the tree's flushes stop carrying it without listing
	// it as failed.
	if err := WriteFrame(conn, Frame{Type: TypeLeave, Payload: core.EncodeContributors([]int{1})}); err != nil {
		t.Fatal(err)
	}
	sendPSR(t, conn, sources[0], 2, 5)
	res = waitResult(t, qn)
	if res.Err != nil {
		t.Fatalf("post-leave epoch must verify over the remaining set: %+v", res)
	}
	if res.Sum != 5 || !res.Partial || len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("post-leave epoch 2: %+v, want partial sum 5 with source 1 accounted departed", res)
	}
	h := qn.Health()
	if h.Tree.Departed != 1 {
		t.Fatalf("Tree.Departed = %d, want 1", h.Tree.Departed)
	}

	// The root redials claiming only the survivors: the handshake must accept
	// coverage shrunken exactly by the departed set.
	conn.Close()
	conn2, resync := dialChild(t, qn.Addr(), []int{0})
	defer conn2.Close()
	if resync != 2 {
		t.Fatalf("resync after redial = %d, want 2", resync)
	}
	sendPSR(t, conn2, sources[0], 3, 7)
	res = waitResult(t, qn)
	if res.Err != nil || res.Sum != 7 {
		t.Fatalf("epoch 3 after shrunken re-hello: %+v", res)
	}
}

package transport

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/sies/sies/internal/chaos"
	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
)

// waitResult pulls the next EpochResult or fails the test.
func waitResult(t *testing.T, qn *QuerierNode) EpochResult {
	t.Helper()
	select {
	case res := <-qn.Results:
		return res
	case <-time.After(10 * time.Second):
		t.Fatal("no result")
		return EpochResult{}
	}
}

// TestSourceReconnectBackoff drives a source over a flapping link: the link
// goes dark mid-run, the source's report blocks in the backoff loop, the
// epoch is flushed as partial, and once the link heals the source redials,
// re-handshakes and later epochs report the full contributor set again.
func TestSourceReconnectBackoff(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()
	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	go qn.Run()
	defer qn.Close()

	aggAddr := freeAddr(t)
	aggDone := make(chan error, 1)
	go func() {
		node, err := NewAggregatorNode(AggregatorConfig{
			ListenAddr: aggAddr, ParentAddr: qn.Addr(),
			NumChildren: 2, Timeout: 300 * time.Millisecond,
		}, field)
		if err != nil {
			aggDone <- err
			return
		}
		aggDone <- node.Run()
	}()
	time.Sleep(50 * time.Millisecond) // listener up

	inj := chaos.New(chaos.Config{Seed: 11})
	flaky, err := DialSourceWith(SourceConfig{
		ParentAddr: aggAddr,
		Dial:       inj.Dial,
		Backoff: Backoff{
			Initial: 25 * time.Millisecond, Max: 200 * time.Millisecond,
			MaxElapsed: 20 * time.Second,
			Rand:       rand.New(rand.NewSource(1)),
		},
	}, sources[0])
	if err != nil {
		t.Fatal(err)
	}
	defer flaky.Close()
	steady, err := DialSource(aggAddr, sources[1])
	if err != nil {
		t.Fatal(err)
	}
	defer steady.Close()

	// Epoch 1: both contribute.
	if err := flaky.Report(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := steady.Report(1, 20); err != nil {
		t.Fatal(err)
	}
	if res := waitResult(t, qn); res.Err != nil || res.Sum != 30 || res.Partial {
		t.Fatalf("epoch 1: %+v", res)
	}

	// The link dies. The flaky source's report blocks retrying with backoff
	// while the aggregator times the source out and flushes a partial epoch.
	inj.SetOffline(true)
	dialsBefore := inj.DialAttempts()
	reported := make(chan error, 1)
	go func() { reported <- flaky.Report(2, 11) }()
	if err := steady.Report(2, 21); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, qn)
	if res.Err != nil || res.Epoch != 2 || res.Sum != 21 || !res.Partial {
		t.Fatalf("epoch 2 should be the exact partial SUM: %+v", res)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 0 {
		t.Fatalf("epoch 2 non-contributors = %v, want [0]", res.Failed)
	}

	// Let the backoff loop accumulate a few refused dials, then heal.
	time.Sleep(300 * time.Millisecond)
	inj.SetOffline(false)
	if err := <-reported; err != nil {
		t.Fatalf("report after recovery: %v", err)
	}
	if flaky.Reconnects() < 1 {
		t.Fatalf("reconnects = %d, want >= 1", flaky.Reconnects())
	}
	if inj.DialAttempts()-dialsBefore < 2 {
		t.Fatalf("only %d redial attempts — no backoff retries observed", inj.DialAttempts()-dialsBefore)
	}

	// Epoch 3: the full contributor set is back.
	if err := flaky.Report(3, 12); err != nil {
		t.Fatal(err)
	}
	if err := steady.Report(3, 22); err != nil {
		t.Fatal(err)
	}
	if res := waitResult(t, qn); res.Err != nil || res.Epoch != 3 || res.Sum != 34 || res.Partial {
		t.Fatalf("epoch 3 after recovery: %+v", res)
	}

	h := qn.Health()
	if h.Full < 2 || h.Partial < 1 || h.Missed[0] < 1 {
		t.Fatalf("health = %+v", h)
	}

	flaky.Close()
	steady.Close()
	if err := <-aggDone; err != nil {
		t.Fatalf("aggregator: %v", err)
	}
}

// dialChild opens a raw child connection: hello out, hello-ack in.
func dialChild(t *testing.T, addr string, covers []int) (net.Conn, uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, Frame{Type: TypeHello, Payload: core.EncodeContributors(covers)}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := ReadFrame(conn)
	if err != nil || ack.Type != TypeHello {
		t.Fatalf("hello-ack: %+v (%v)", ack, err)
	}
	conn.SetReadDeadline(time.Time{})
	return conn, ack.Epoch
}

// readUpstream reads the aggregator's next data frame at the fake parent,
// skipping the best-effort membership events interleaved with the data plane.
func readUpstream(t *testing.T, conn net.Conn) Frame {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("reading upstream frame: %v", err)
		}
		if f.Type == TypeMember {
			continue
		}
		return f
	}
}

// sendPSR reports one epoch for one source over a raw child connection.
func sendPSR(t *testing.T, conn net.Conn, src *core.Source, epoch prf.Epoch, v uint64) {
	t.Helper()
	psr, err := src.Encrypt(epoch, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, Frame{Type: TypePSR, Epoch: uint64(epoch), Payload: encodeReport(psr, nil)}); err != nil {
		t.Fatal(err)
	}
}

// TestAggregatorLateAndDuplicateReports exercises the duplicate-suppression
// path directly: a report arriving after a timeout flush is dropped, and
// after the bounded flushed map resets, a re-sent epoch is forwarded again
// (best-effort suppression — the querier just re-verifies).
func TestAggregatorLateAndDuplicateReports(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	parentLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer parentLn.Close()
	aggAddr := freeAddr(t)

	type built struct {
		node *AggregatorNode
		err  error
	}
	builtCh := make(chan built, 1)
	go func() {
		node, err := NewAggregatorNode(AggregatorConfig{
			ListenAddr: aggAddr, ParentAddr: parentLn.Addr().String(),
			NumChildren: 2, Timeout: 250 * time.Millisecond,
			Shards: 1, // single stripe: the cap-1 window hook below must see every flush
		}, field)
		builtCh <- built{node, err}
	}()

	time.Sleep(50 * time.Millisecond)
	c0, resync := dialChild(t, aggAddr, []int{0})
	defer c0.Close()
	if resync != 0 {
		t.Fatalf("initial resync epoch = %d, want 0", resync)
	}
	c1, _ := dialChild(t, aggAddr, []int{1})
	defer c1.Close()

	parent, err := parentLn.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	hello := readUpstream(t, parent)
	if hello.Type != TypeHello {
		t.Fatalf("expected upstream hello, got type %d", hello.Type)
	}
	if err := WriteFrame(parent, Frame{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}

	b := <-builtCh
	if b.err != nil {
		t.Fatal(b.err)
	}
	node := b.node
	node.table.shards[0].flushed.cap = 1 // test hook: remember only the latest flushed epoch
	runDone := make(chan error, 1)
	go func() { runDone <- node.Run() }()

	// Epoch 1: only child 0 reports; the deadline flushes a partial report.
	sendPSR(t, c0, sources[0], 1, 100)
	f := readUpstream(t, parent)
	psr, failed, err := decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || f.Type != TypePSR || f.Epoch != 1 {
		t.Fatalf("flush 1: type %d epoch %d (%v)", f.Type, f.Epoch, err)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("flush 1 failed list = %v, want [1]", failed)
	}
	// The partial SUM verifies exactly against the recomputed Σss of the
	// listed contributors.
	res, err := q.EvaluateSubset(1, psr, core.Subtract(2, failed))
	if err != nil || res.Sum != 100 {
		t.Fatalf("partial epoch 1: %+v (%v)", res, err)
	}

	// Child 1's report for epoch 1 arrives after the flush: suppressed.
	sendPSR(t, c1, sources[1], 1, 900)
	// Epoch 2 from both children flushes normally — and is the next upstream
	// frame, proving the late epoch-1 report produced no duplicate.
	sendPSR(t, c0, sources[0], 2, 5)
	sendPSR(t, c1, sources[1], 2, 6)
	f = readUpstream(t, parent)
	if f.Epoch != 2 || f.Type != TypePSR {
		t.Fatalf("after late report, next flush = type %d epoch %d, want PSR epoch 2", f.Type, f.Epoch)
	}

	// The epoch-2 flush reset the (cap-0) flushed map, dropping the memory of
	// epoch 1. A full re-send of epoch 1 is therefore forwarded again —
	// suppression across resets is best-effort, and the duplicate must carry
	// a verifiable full report.
	sendPSR(t, c0, sources[0], 1, 100)
	sendPSR(t, c1, sources[1], 1, 900)
	f = readUpstream(t, parent)
	psr, failed, err = decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || f.Epoch != 1 || len(failed) != 0 {
		t.Fatalf("re-flushed epoch 1: epoch %d failed %v (%v)", f.Epoch, failed, err)
	}
	if res, err := q.Evaluate(1, psr); err != nil || res.Sum != 1000 {
		t.Fatalf("duplicate epoch 1 evaluation: %+v (%v)", res, err)
	}

	c0.Close()
	c1.Close()
	if err := <-runDone; err != nil {
		t.Fatalf("aggregator run: %v", err)
	}
}

// TestAggregatorFlushesWhenLastChildDies pins the orphan-flush fix: when the
// last living child disconnects, epochs waiting only on dead children are
// forwarded immediately instead of waiting out the deadline ticker.
func TestAggregatorFlushesWhenLastChildDies(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	parentLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer parentLn.Close()
	aggAddr := freeAddr(t)

	type built struct {
		node *AggregatorNode
		err  error
	}
	builtCh := make(chan built, 1)
	// A deliberately huge timeout: the only way the epoch can flush fast is
	// the disconnect path.
	go func() {
		node, err := NewAggregatorNode(AggregatorConfig{
			ListenAddr: aggAddr, ParentAddr: parentLn.Addr().String(),
			NumChildren: 2, Timeout: 60 * time.Second,
			ReconnectWindow: 100 * time.Millisecond,
		}, field)
		builtCh <- built{node, err}
	}()
	time.Sleep(50 * time.Millisecond)
	c0, _ := dialChild(t, aggAddr, []int{0})
	c1, _ := dialChild(t, aggAddr, []int{1})
	parent, err := parentLn.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	readUpstream(t, parent) // agg hello
	if err := WriteFrame(parent, Frame{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}
	b := <-builtCh
	if b.err != nil {
		t.Fatal(b.err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- b.node.Run() }()

	sendPSR(t, c0, sources[0], 1, 7)
	c0.Close()
	c1.Close() // last living child gone: epoch 1 can never complete

	start := time.Now()
	f := readUpstream(t, parent)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("flush took %v — rode the deadline ticker instead of the disconnect", elapsed)
	}
	psr, failed, err := decodeReport(f.Payload, field, DefaultMaxSources)
	if err != nil || f.Epoch != 1 {
		t.Fatalf("orphan flush: %+v (%v)", f, err)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("orphan flush failed list = %v, want [1]", failed)
	}
	if res, err := q.EvaluateSubset(1, psr, []int{0}); err != nil || res.Sum != 7 {
		t.Fatalf("orphan flush evaluation: %+v (%v)", res, err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("aggregator run: %v", err)
	}
}

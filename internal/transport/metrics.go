package transport

import (
	"github.com/sies/sies/internal/obs"
)

// Metric name catalogue for the transport nodes. Every series is registered
// on the owning node's obs.Registry; DESIGN.md §13 documents the full set.
// Counters stay uint64 end-to-end — no int truncation, no 32-bit wrap.
const (
	mEpochsServed    = "sies_epochs_served_total"
	mEpochsFull      = "sies_epochs_full_total"
	mEpochsPartial   = "sies_epochs_partial_total"
	mEpochsEmpty     = "sies_epochs_empty_total"
	mEpochsRejected  = "sies_epochs_rejected_total"
	mEpochsRecovered = "sies_epochs_recovered_total"
	mRootReconnects  = "sies_root_reconnects_total"
	mEvalSeconds     = "sies_epoch_eval_seconds"

	mPipeJobs          = "sies_pipe_jobs_total"
	mPipeIngestDepth   = "sies_pipe_ingest_depth"
	mPipeAckBatchSizes = "sies_pipe_ack_batch_frames"
)

// batchSizeBuckets grades coalesced-batch sizes in frames.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// querierObs is the querier's observability bundle: the registry every
// subsystem counter is exposed through, the epoch-lifecycle tracer, and the
// atomic counters behind Health(). Health is a thin view over these — the
// per-field locks of the old struct-snapshot design are gone.
type querierObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	served         *obs.Counter // full + partial (verified epochs)
	full           *obs.Counter
	partial        *obs.Counter
	empty          *obs.Counter
	rejected       *obs.Counter
	recovered      *obs.Counter // served via forensic localization + re-query
	rootReconnects *obs.Counter
	fenceRejects   *obs.Counter // uncommitted frames dropped at or below the root fence
	evalSeconds    *obs.Histogram

	// Pipelined-path stage instrumentation (always registered; flat zeros
	// when the serial path serves).
	pipeJobs           *obs.Counter   // frames entering the decode/verify stage
	pipeIngestDepth    *obs.Gauge     // jobs queued between ingest and workers
	pipeAckBatchFrames *obs.Histogram // result acks coalesced per vectored write
}

// newQuerierObs builds the bundle on reg (nil → a private registry).
func newQuerierObs(reg *obs.Registry, traceCap int) *querierObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &querierObs{
		reg:            reg,
		tracer:         obs.NewTracer(traceCap),
		served:         reg.Counter(mEpochsServed, "epochs evaluated and verified (full or partial)"),
		full:           reg.Counter(mEpochsFull, "epochs with every source contributing"),
		partial:        reg.Counter(mEpochsPartial, "epochs verified over a strict subset"),
		empty:          reg.Counter(mEpochsEmpty, "epochs in which no source contributed"),
		rejected:       reg.Counter(mEpochsRejected, "epochs failing integrity or decode"),
		recovered:      reg.Counter(mEpochsRecovered, "rejected epochs served after forensic recovery"),
		rootReconnects: reg.Counter(mRootReconnects, "times the root aggregator re-attached"),
		fenceRejects:   reg.Counter("sies_querier_fence_rejects_total", "uncommitted frames dropped at or below the root's fence epoch"),
		evalSeconds:    reg.Histogram(mEvalSeconds, "per-epoch end-to-end evaluation latency", obs.DurationBuckets),

		pipeJobs:           reg.Counter(mPipeJobs, "frames handed to the pipelined decode/verify stage"),
		pipeIngestDepth:    reg.Gauge(mPipeIngestDepth, "frames queued between pipeline ingest and workers"),
		pipeAckBatchFrames: reg.Histogram(mPipeAckBatchSizes, "result acks coalesced per vectored write", batchSizeBuckets),
	}
}

// bind registers the scrape-time views over the node's other subsystems:
// key schedule, forensics, durability and transport internals. Called once
// from the constructor, after the subsystems exist.
func (o *querierObs) bind(qn *QuerierNode) {
	reg := o.reg
	sched := qn.sched
	reg.CounterFunc("sies_schedule_derivations_total", "per-source key derivations performed",
		func() uint64 { return sched.Stats().Derivations })
	reg.CounterFunc("sies_schedule_cache_hits_total", "epoch-state requests served from the cache",
		func() uint64 { return sched.Stats().Hits })
	reg.CounterFunc("sies_schedule_cache_misses_total", "epoch-state requests that had to derive",
		func() uint64 { return sched.Stats().Misses })
	reg.CounterFunc("sies_schedule_prefetches_total", "background derivations started",
		func() uint64 { return sched.Stats().Prefetches })
	reg.CounterFunc("sies_schedule_prefetch_wins_total", "requests answered by a prefetched entry",
		func() uint64 { return sched.Stats().PrefetchWins })
	reg.CounterFunc("sies_schedule_evaluations_total", "PSRs evaluated through the schedule",
		func() uint64 { return sched.Stats().Evaluations })
	reg.CounterFunc("sies_schedule_eval_nanoseconds_total", "cumulative evaluation latency in nanoseconds",
		func() uint64 { return uint64(sched.Stats().EvalTime.Nanoseconds()) })

	reg.CounterFunc("sies_forensics_localizations_total", "group-testing procedures run",
		func() uint64 { return uint64(qn.ForensicsStats().Localizations) })
	reg.CounterFunc("sies_forensics_probes_total", "subset re-queries across all localizations",
		func() uint64 { return uint64(qn.ForensicsStats().ProbesIssued) })
	reg.CounterFunc("sies_forensics_probe_rounds_total", "descent rounds across all localizations",
		func() uint64 { return uint64(qn.ForensicsStats().ProbeRounds) })
	reg.CounterFunc("sies_forensics_fast_recoveries_total", "epochs recovered by the quarantine fast path",
		func() uint64 { return uint64(qn.ForensicsStats().FastRecoveries) })
	reg.CounterFunc("sies_forensics_recovered_total", "rejected epochs served after localization",
		func() uint64 { return uint64(qn.ForensicsStats().Recovered) })
	reg.CounterFunc("sies_forensics_lost_total", "rejected epochs that stayed lost",
		func() uint64 { return uint64(qn.ForensicsStats().Lost) })
	reg.CounterFunc("sies_forensics_budget_aborts_total", "localizations cut off by the probe budget",
		func() uint64 { return uint64(qn.ForensicsStats().BudgetAborts) })
	reg.CounterFunc("sies_forensics_deadline_aborts_total", "localizations cut off by the deadline",
		func() uint64 { return uint64(qn.ForensicsStats().DeadlineAborts) })
	reg.GaugeFunc("sies_quarantine_suspects", "routes currently under suspicion",
		func() float64 { return float64(qn.ForensicsStats().QuarantineNow.Suspects) })
	reg.GaugeFunc("sies_quarantine_confirmed", "routes currently confirmed and excluded",
		func() float64 { return float64(qn.ForensicsStats().QuarantineNow.Confirmed) })
	reg.GaugeFunc("sies_quarantine_probation", "routes currently on probation",
		func() float64 { return float64(qn.ForensicsStats().QuarantineNow.Probation) })

	bindDurability(reg, "sies_durability", func() DurabilityStats { return qn.DurabilityStats() })
	if qn.state != nil {
		j := qn.state.store.Journal()
		reg.CounterFunc("sies_wal_syncs_total", "journal fsyncs issued (inline and group-commit rounds)",
			func() uint64 { return uint64(j.Stats().Syncs) })
		reg.CounterFunc("sies_wal_shared_syncs_total", "commits made durable by a group-commit fsync another worker led",
			func() uint64 { return uint64(j.Stats().SharedSyncs) })
	}

	reg.GaugeFunc("sies_missed_sources", "sources with at least one missed epoch on record",
		func() float64 {
			qn.mu.Lock()
			defer qn.mu.Unlock()
			return float64(qn.missed.len())
		})
	reg.GaugeFunc("sies_results_pending", "epoch results waiting on the Results channel",
		func() float64 { return float64(len(qn.Results)) })
	reg.GaugeFunc("sies_last_eval_epoch", "highest epoch evaluated so far",
		func() float64 {
			qn.mu.Lock()
			defer qn.mu.Unlock()
			return float64(qn.lastEval)
		})
}

// bindDurability registers the durability counter family under prefix.
func bindDurability(reg *obs.Registry, prefix string, stats func() DurabilityStats) {
	reg.GaugeFunc(prefix+"_enabled", "1 when a durable state directory is configured",
		func() float64 {
			if stats().Enabled {
				return 1
			}
			return 0
		})
	reg.CounterFunc(prefix+"_commits_total", "commit records appended this run",
		func() uint64 { return stats().Commits })
	reg.CounterFunc(prefix+"_checkpoints_total", "snapshot checkpoints written this run",
		func() uint64 { return stats().Checkpoints })
	reg.CounterFunc(prefix+"_journal_errors_total", "durable writes that failed (durability degraded)",
		func() uint64 { return stats().JournalErrors })
	reg.CounterFunc(prefix+"_dedup_hits_total", "frames for already-committed epochs dropped",
		func() uint64 { return stats().DedupHits })
	reg.GaugeFunc(prefix+"_replayed_records", "journal records recovered at boot",
		func() float64 { return float64(stats().ReplayedRecords) })
	reg.GaugeFunc(prefix+"_replayed_frontier", "epoch frontier restored at boot",
		func() float64 { return float64(stats().ReplayedFromWAL) })
	reg.GaugeFunc(prefix+"_torn_bytes", "torn-tail bytes truncated at boot",
		func() float64 { return float64(stats().TornBytes) })
}

// aggObs is the aggregator's observability bundle.
type aggObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	reports          *obs.Counter
	flushes          *obs.Counter
	failureFlushes   *obs.Counter
	lateDrops        *obs.Counter
	fenceDrops       *obs.Counter
	staleDrops       *obs.Counter
	steals           *obs.Counter
	memberForwards   *obs.Counter
	childDisconnects *obs.Counter
	childReconnects  *obs.Counter
	childrenGauge    *obs.Gauge
	lastFlushedEpoch *obs.Gauge

	// Sharded epoch table + merge plane instrumentation (DESIGN.md §16).
	shardContention *obs.Counter
	ingestRetries   *obs.Counter
	mergeJobs       *obs.Counter
	mergeLazy       *obs.Counter
	mergeRebuilds   *obs.Counter
	shardOccupancy  *obs.Histogram
}

// shardOccupancyBuckets grades open slots per shard at flush time.
var shardOccupancyBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64}

func newAggObs(reg *obs.Registry, traceCap int) *aggObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &aggObs{
		reg:              reg,
		tracer:           obs.NewTracer(traceCap),
		reports:          reg.Counter("sies_agg_reports_total", "child reports accepted into pending epochs"),
		flushes:          reg.Counter("sies_agg_flushes_total", "epochs merged and forwarded upstream"),
		failureFlushes:   reg.Counter("sies_agg_failure_flushes_total", "epochs forwarded with no contributing PSR"),
		lateDrops:        reg.Counter("sies_agg_late_drops_total", "reports dropped for already-flushed epochs"),
		fenceDrops:       reg.Counter("sies_agg_fence_drops_total", "reports dropped below a re-homed child's fence epoch"),
		staleDrops:       reg.Counter("sies_agg_stale_drops_total", "reports dropped from slots whose coverage was stolen or drained"),
		steals:           reg.Counter("sies_agg_steals_total", "coverage re-attributions from stale slots to re-homing children"),
		memberForwards:   reg.Counter("sies_agg_member_relays_total", "membership events sent or relayed upstream"),
		childDisconnects: reg.Counter("sies_agg_child_disconnects_total", "child links lost"),
		childReconnects:  reg.Counter("sies_agg_child_reconnects_total", "children matched back to their slot"),
		childrenGauge:    reg.Gauge("sies_agg_children", "live child slots attached to this aggregator"),
		lastFlushedEpoch: reg.Gauge("sies_agg_last_flushed_epoch", "highest epoch forwarded upstream"),
		shardContention:  reg.Counter("sies_agg_shard_contention_total", "epoch-shard lock acquisitions that found the lock held"),
		ingestRetries:    reg.Counter("sies_agg_ingest_retries_total", "optimistic ingests rolled back by the membership-generation fence"),
		mergeJobs:        reg.Counter("sies_agg_merge_jobs_total", "claimed epochs handed to the merge plane"),
		mergeLazy:        reg.Counter("sies_agg_merge_lazy_total", "flushes served from the ingest-time lazy partial"),
		mergeRebuilds:    reg.Counter("sies_agg_merge_rebuilds_total", "flushes that rebuilt the merge from retained reports"),
		shardOccupancy:   reg.Histogram("sies_agg_shard_occupancy", "open slots left in a shard after a flush", shardOccupancyBuckets),
	}
}

// bind registers the scrape-time views over the aggregator's subsystems.
func (o *aggObs) bind(a *AggregatorNode) {
	o.reg.CounterFunc("sies_agg_upstream_reconnects_total", "times the upstream link was re-established",
		func() uint64 { return uint64(a.UpstreamReconnects()) })
	o.reg.CounterFunc("sies_agg_upstream_failovers_total", "escalations to the next candidate parent address",
		func() uint64 { return uint64(a.UpstreamFailovers()) })
	bindDurability(o.reg, "sies_agg_durability", func() DurabilityStats { return a.DurabilityStats() })
	o.reg.GaugeFunc("sies_agg_shards", "epoch-table stripe count",
		func() float64 { return float64(a.table.size()) })
	o.reg.GaugeFunc("sies_agg_merge_workers", "merge-plane worker count",
		func() float64 { return float64(a.plane.workers) })
	o.reg.GaugeFunc("sies_agg_shard_open_epochs", "in-flight epoch slots across all shards",
		func() float64 { return float64(a.table.open.Load()) })
	o.reg.GaugeFunc("sies_agg_merge_queue_depth", "claimed epochs queued for the merge workers",
		func() float64 { return float64(len(a.plane.jobs)) })
	if a.upfw != nil {
		bindFrameWriter(o.reg, "sies_agg_upstream", a.upfw)
	}
}

// bindFrameWriter registers a coalescing writer's counters under prefix.
func bindFrameWriter(reg *obs.Registry, prefix string, fw *FrameWriter) {
	reg.CounterFunc(prefix+"_batches_total", "coalesced batches written to the link",
		func() uint64 { return fw.Stats().Flushes })
	reg.CounterFunc(prefix+"_frames_total", "frames written through the coalescing writer",
		func() uint64 { return fw.Stats().Frames })
	reg.CounterFunc(prefix+"_bytes_total", "encoded bytes written through the coalescing writer",
		func() uint64 { return fw.Stats().Bytes })
	reg.CounterFunc(prefix+"_deadline_flushes_total", "batches forced out by the flush deadline",
		func() uint64 { return fw.Stats().DeadlineFlushes })
	reg.GaugeFunc(prefix+"_queue_depth", "full batches awaiting the flusher",
		func() float64 { return float64(fw.Stats().QueueDepth) })
}

// sourceObs is the source's observability bundle.
type sourceObs struct {
	reg     *obs.Registry
	reports *obs.Counter
	skipped *obs.Counter
}

func newSourceObs(reg *obs.Registry) *sourceObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &sourceObs{
		reg:     reg,
		reports: reg.Counter("sies_source_reports_total", "PSRs encrypted and handed to the parent link"),
		skipped: reg.Counter("sies_source_skipped_total", "reports skipped at or below the parent's resync epoch"),
	}
}

func (o *sourceObs) bind(s *SourceNode) {
	o.reg.CounterFunc("sies_source_reconnects_total", "times the parent link was re-established",
		func() uint64 { return uint64(s.Reconnects()) })
	o.reg.CounterFunc("sies_source_failovers_total", "escalations to the next candidate parent address",
		func() uint64 { return uint64(s.Failovers()) })
	if s.fw != nil {
		bindFrameWriter(o.reg, "sies_source", s.fw)
	}
}

package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: TypePSR, Epoch: 42, Payload: []byte("hello world")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Epoch != in.Epoch || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: TypeHello, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 0 {
		t.Fatalf("payload = %v", out.Payload)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(&buf, Frame{Type: TypePSR, Payload: big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
	// A forged length header must also be rejected on read.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, TypePSR})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("forged length: %v", err)
	}
}

func TestFrameShortHeader(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 0, 0, 2, 1, 1})
	if _, err := ReadFrame(buf); err == nil {
		t.Fatal("undersized frame accepted")
	}
}

func TestResultCodec(t *testing.T) {
	sum, ok, err := DecodeResult(EncodeResult(12345, true))
	if err != nil || sum != 12345 || !ok {
		t.Fatalf("decode: %d %v %v", sum, ok, err)
	}
	_, ok, err = DecodeResult(EncodeResult(0, false))
	if err != nil || ok {
		t.Fatalf("decode false: %v %v", ok, err)
	}
	if _, _, err := DecodeResult([]byte{1}); err == nil {
		t.Fatal("short result accepted")
	}
}

// buildCluster wires a two-level tree over loopback TCP:
//
//	querier ← root ← {agg0 ← sources 0,1 ; agg1 ← sources 2,3}
func buildCluster(t *testing.T) (*QuerierNode, []*SourceNode, func()) {
	t.Helper()
	q, sources, err := core.Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	go qn.Run()

	// Root aggregator needs a listen address known before children dial it;
	// grab a port by listening momentarily.
	rootAddr := freeAddr(t)
	agg0Addr := freeAddr(t)
	agg1Addr := freeAddr(t)

	var wg sync.WaitGroup
	startAgg := func(listen string, children int, timeout time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parent := qn.Addr()
			if listen != rootAddr {
				parent = rootAddr
			}
			node, err := NewAggregatorNode(AggregatorConfig{
				ListenAddr: listen, ParentAddr: parent,
				NumChildren: children, Timeout: timeout,
			}, field)
			if err != nil {
				t.Errorf("aggregator %s: %v", listen, err)
				return
			}
			if err := node.Run(); err != nil {
				t.Errorf("aggregator %s run: %v", listen, err)
			}
		}()
	}
	// Root first (children dial it), then leaves. Timeouts cascade: the root
	// must wait long enough for its children to time out their own sources.
	startAgg(rootAddr, 2, 1500*time.Millisecond)
	startAgg(agg0Addr, 2, 400*time.Millisecond)
	startAgg(agg1Addr, 2, 400*time.Millisecond)
	time.Sleep(50 * time.Millisecond) // listeners up

	nodes := make([]*SourceNode, 4)
	for i, s := range sources {
		addr := agg0Addr
		if i >= 2 {
			addr = agg1Addr
		}
		n, err := DialSource(addr, s)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	cleanup := func() {
		for _, n := range nodes {
			n.Close()
		}
		wg.Wait()
		qn.Close()
	}
	return qn, nodes, cleanup
}

// freeAddr reserves a loopback port and returns it as host:port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestClusterEndToEnd(t *testing.T) {
	qn, sources, cleanup := buildCluster(t)
	defer cleanup()

	for epoch := prf.Epoch(1); epoch <= 3; epoch++ {
		var want uint64
		for i, s := range sources {
			v := uint64(i+1) * 10 * uint64(epoch)
			want += v
			if err := s.Report(epoch, v); err != nil {
				t.Fatal(err)
			}
		}
		select {
		case res := <-qn.Results:
			if res.Err != nil {
				t.Fatalf("epoch %d: %v", epoch, res.Err)
			}
			if res.Sum != want || res.Epoch != epoch || res.Contributors != 4 {
				t.Fatalf("epoch %d: %+v, want sum %d", epoch, res, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("epoch %d: no result", epoch)
		}
	}
}

func TestClusterSourceFailure(t *testing.T) {
	qn, sources, cleanup := buildCluster(t)
	defer cleanup()

	// Source 1 dies before epoch 1; the leaf aggregator times it out and
	// reports it failed, the querier evaluates the surviving subset.
	sources[1].Close()
	var want uint64
	for i, s := range sources {
		if i == 1 {
			continue
		}
		v := uint64(100 + i)
		want += v
		if err := s.Report(1, v); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case res := <-qn.Results:
		if res.Err != nil {
			t.Fatalf("subset epoch rejected: %v", res.Err)
		}
		if res.Sum != want || res.Contributors != 3 {
			t.Fatalf("result %+v, want sum %d from 3", res, want)
		}
		if len(res.Failed) != 1 || res.Failed[0] != 1 {
			t.Fatalf("failed list %v", res.Failed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result after failure")
	}
}

func TestClusterOutOfOrderEpochs(t *testing.T) {
	qn, sources, cleanup := buildCluster(t)
	defer cleanup()

	// Sources report epochs 1 and 2 interleaved; both must evaluate.
	for _, epoch := range []prf.Epoch{1, 2} {
		for i := len(sources) - 1; i >= 0; i-- {
			if err := sources[i].Report(epoch, uint64(10*i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := map[prf.Epoch]uint64{}
	for len(got) < 2 {
		select {
		case res := <-qn.Results:
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			got[res.Epoch] = res.Sum
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d results", len(got))
		}
	}
	if got[1] != 60 || got[2] != 60 {
		t.Fatalf("results %v", got)
	}
}

func TestAggregatorConfigValidation(t *testing.T) {
	q, _, err := core.Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAggregatorNode(AggregatorConfig{NumChildren: 0}, q.Params().Field()); err == nil {
		t.Fatal("zero children accepted")
	}
}

func TestClusterDrainsFinalEpochsOnShutdown(t *testing.T) {
	// Regression: sources report several epochs and immediately disconnect.
	// The tree unwinds, the root departs after sending its last frames, and
	// the querier must still evaluate every epoch it received — including
	// frames buffered behind a failed acknowledgement write.
	qn, sources, cleanup := buildCluster(t)
	defer cleanup()

	const epochs = 5
	for epoch := prf.Epoch(1); epoch <= epochs; epoch++ {
		for i, s := range sources {
			if err := s.Report(epoch, uint64(i+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range sources {
		s.Close()
	}

	got := map[prf.Epoch]uint64{}
	for len(got) < epochs {
		select {
		case res, ok := <-qn.Results:
			if !ok {
				t.Fatalf("results closed after %d/%d epochs", len(got), epochs)
			}
			if res.Err != nil {
				t.Fatalf("epoch %d rejected: %v", res.Epoch, res.Err)
			}
			got[res.Epoch] = res.Sum
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out with %d/%d epochs", len(got), epochs)
		}
	}
	for epoch := prf.Epoch(1); epoch <= epochs; epoch++ {
		if got[epoch] != 10 {
			t.Fatalf("epoch %d: SUM %d, want 10", epoch, got[epoch])
		}
	}
}

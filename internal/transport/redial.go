package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// errNodeClosed reports a write attempted after the node shut down.
var errNodeClosed = errors.New("transport: node closed")

// redialer maintains a child's upstream connection across failures. Every
// (re)connect performs the hello handshake — send the subtree-coverage hello,
// read the parent's hello-ack carrying its resync epoch — and Write
// transparently redials with exponential backoff + jitter when the link dies,
// retrying the in-flight frame on the fresh connection.
//
// The read side of the connection is handed to onConn (the parent only ever
// sends the hello-ack and, for the querier, result acks); the drain goroutine
// it starts is expected to call markDead on read failure so the next Write
// redials instead of writing into a dead socket's buffer.
type redialer struct {
	dial             func() (net.Conn, error)
	hello            func() Frame
	onConn           func(net.Conn) // started after each successful handshake; may be nil
	backoff          Backoff
	handshakeTimeout time.Duration

	mu        sync.Mutex
	conn      net.Conn
	syncEpoch uint64 // parent's highest settled epoch, from the latest hello-ack
	connects  int
	closed    bool
	closeCh   chan struct{}

	scratch net.Buffers // writeBuffers' reusable vectored-write view
}

// newRedialer assembles a redialer; the caller runs Connect to establish the
// first connection.
func newRedialer(dial func() (net.Conn, error), hello func() Frame, backoff Backoff, handshakeTimeout time.Duration) *redialer {
	if handshakeTimeout <= 0 {
		handshakeTimeout = 5 * time.Second
	}
	return &redialer{
		dial:             dial,
		hello:            hello,
		backoff:          backoff.withDefaults(),
		handshakeTimeout: handshakeTimeout,
		closeCh:          make(chan struct{}),
	}
}

// Connect dials once and runs the hello handshake. It replaces any previous
// connection.
func (r *redialer) Connect() (net.Conn, error) {
	c, err := r.dial()
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c, r.hello()); err != nil {
		c.Close()
		return nil, err
	}
	c.SetReadDeadline(time.Now().Add(r.handshakeTimeout))
	f, err := ReadFrame(c)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake: reading hello-ack: %w", err)
	}
	if f.Type != TypeHello {
		c.Close()
		return nil, fmt.Errorf("transport: handshake: unexpected frame type %d", f.Type)
	}
	c.SetReadDeadline(time.Time{})

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.Close()
		return nil, errNodeClosed
	}
	if r.conn != nil {
		r.conn.Close()
	}
	r.conn = c
	r.syncEpoch = f.Epoch
	r.connects++
	r.mu.Unlock()
	if r.onConn != nil {
		r.onConn(c)
	}
	return c, nil
}

// current returns the live connection, or nil when down.
func (r *redialer) current() net.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn
}

// markDead retires c if it is still the current connection. Safe to call from
// the drain goroutine and the writer concurrently.
func (r *redialer) markDead(c net.Conn) {
	r.mu.Lock()
	if r.conn == c {
		r.conn = nil
	}
	r.mu.Unlock()
	c.Close()
}

// SyncEpoch returns the parent's highest settled epoch as of the last
// handshake — reports for epochs at or below it would be discarded upstream.
func (r *redialer) SyncEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.syncEpoch
}

// Reconnects counts successful handshakes after the first.
func (r *redialer) Reconnects() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.connects <= 1 {
		return 0
	}
	return r.connects - 1
}

// Write sends f, redialing with backoff when the connection is down or dies
// mid-write. It returns nil once the frame was handed to a healthy
// connection, errNodeClosed after Close, or the last failure once
// Backoff.MaxElapsed of retrying is exhausted.
func (r *redialer) Write(f Frame) error {
	if c := r.current(); c != nil {
		if err := WriteFrame(c, f); err == nil {
			return nil
		}
		r.markDead(c)
	}
	start := time.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		select {
		case <-r.closeCh:
			return errNodeClosed
		default:
		}
		c, err := r.Connect()
		if err == nil {
			if err = WriteFrame(c, f); err == nil {
				return nil
			}
			r.markDead(c)
		}
		if errors.Is(err, errNodeClosed) {
			return err
		}
		lastErr = err
		if r.backoff.MaxElapsed >= 0 && time.Since(start) >= r.backoff.MaxElapsed {
			return fmt.Errorf("transport: redial gave up after %v: %w", r.backoff.MaxElapsed, lastErr)
		}
		select {
		case <-time.After(r.backoff.Delay(attempt)):
		case <-r.closeCh:
			return errNodeClosed
		}
	}
}

// writeBuffers sends a coalesced batch of pre-encoded frames as one vectored
// write, redialing with backoff exactly like Write. On any failure the whole
// batch is re-sent on a fresh connection — receivers may see duplicate frames
// (the committed-epoch window dedups them) but never torn ones, since a dead
// stream's tail is discarded at the receiver's next read error.
//
// Called only from a FrameWriter's flusher goroutine, so the scratch view is
// effectively single-threaded and retained across calls for zero steady-state
// allocation.
func (r *redialer) writeBuffers(segs [][]byte) error {
	if c := r.current(); c != nil {
		// net.Buffers consumes its receiver, so rebuild the view per attempt.
		r.scratch = append(r.scratch[:0], segs...)
		if _, err := r.scratch.WriteTo(c); err == nil {
			return nil
		}
		r.markDead(c)
	}
	start := time.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		select {
		case <-r.closeCh:
			return errNodeClosed
		default:
		}
		c, err := r.Connect()
		if err == nil {
			r.scratch = append(r.scratch[:0], segs...)
			if _, err = r.scratch.WriteTo(c); err == nil {
				return nil
			}
			r.markDead(c)
		}
		if errors.Is(err, errNodeClosed) {
			return err
		}
		lastErr = err
		if r.backoff.MaxElapsed >= 0 && time.Since(start) >= r.backoff.MaxElapsed {
			return fmt.Errorf("transport: redial gave up after %v: %w", r.backoff.MaxElapsed, lastErr)
		}
		select {
		case <-time.After(r.backoff.Delay(attempt)):
		case <-r.closeCh:
			return errNodeClosed
		}
	}
}

// redialSink adapts a redialer into a FrameWriter batch sink.
type redialSink struct{ rd *redialer }

func (s redialSink) WriteBatch(segs [][]byte) error { return s.rd.writeBuffers(segs) }

// Close tears the connection down and aborts in-flight retries.
func (r *redialer) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.conn
	r.conn = nil
	r.mu.Unlock()
	close(r.closeCh)
	if c != nil {
		c.Close()
	}
	return nil
}

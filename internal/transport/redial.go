package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// errNodeClosed reports a write attempted after the node shut down.
var errNodeClosed = errors.New("transport: node closed")

// redialer maintains a child's upstream connection across failures. Every
// (re)connect performs the hello handshake — send the subtree-coverage hello,
// read the parent's hello-ack carrying its resync epoch — and Write
// transparently redials with exponential backoff + jitter when the link dies,
// retrying the in-flight frame on the fresh connection.
//
// A redialer may hold a ranked list of candidate parent addresses. Retrying
// spends the Backoff budget (MaxElapsed / MaxAttempts) per address: when the
// budget for the current parent is exhausted the redialer escalates to the
// next candidate and re-runs the handshake there, giving up only after a full
// unsuccessful sweep of every address. With a single address this degenerates
// to the classic bounded retry loop.
//
// Re-parenting is epoch-fenced. Before any data frame is handed to a
// connection, its highest PSR/failure epoch is recorded against the address
// being written to; the hello sent to address i carries the maximum epoch
// ever attempted on any *other* address as the fence. The parent only
// accepts this child's contributions for epochs strictly above the fence, so
// an in-flight frame retried on a new parent — or a zombie old parent
// flushing stale buffered reports — can never double-count the subtree: a
// fenced epoch degrades to partial coverage, never to a wrong SUM.
//
// The read side of the connection is handed to onConn (the parent only ever
// sends the hello-ack and, for the querier, result acks); the drain goroutine
// it starts is expected to call markDead on read failure so the next Write
// redials instead of writing into a dead socket's buffer.
type redialer struct {
	dials            []func() (net.Conn, error)
	hello            func(fence uint64) Frame
	onConn           func(net.Conn) // started after each successful handshake; may be nil
	backoff          Backoff
	handshakeTimeout time.Duration

	mu        sync.Mutex
	conn      net.Conn
	addr      int      // index of the parent address currently in use
	maxSent   []uint64 // per-address high-water mark of data epochs handed to a conn
	syncEpoch uint64   // parent's highest settled epoch, from the latest hello-ack
	connects  int
	failovers int // escalations to the next candidate parent
	closed    bool
	closeCh   chan struct{}

	scratch net.Buffers // writeBuffers' reusable vectored-write view
}

// newRedialer assembles a redialer over a ranked, non-empty address list; the
// caller runs Connect to establish the first connection.
func newRedialer(dials []func() (net.Conn, error), hello func(fence uint64) Frame, backoff Backoff, handshakeTimeout time.Duration) *redialer {
	if handshakeTimeout <= 0 {
		handshakeTimeout = 5 * time.Second
	}
	return &redialer{
		dials:            dials,
		hello:            hello,
		maxSent:          make([]uint64, len(dials)),
		backoff:          backoff.withDefaults(),
		handshakeTimeout: handshakeTimeout,
		closeCh:          make(chan struct{}),
	}
}

// fenceLocked returns the fence epoch for the current address: the highest
// data epoch ever attempted on any other address. Caller holds r.mu.
func (r *redialer) fenceLocked() uint64 {
	var fence uint64
	for i, e := range r.maxSent {
		if i != r.addr && e > fence {
			fence = e
		}
	}
	return fence
}

// Fence returns the fence epoch the next handshake on the current address
// would carry.
func (r *redialer) Fence() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fenceLocked()
}

// noteEpoch records a data epoch as attempted on the current address. It must
// run before the bytes are handed to the connection: once a frame may have
// left this process towards parent i, every other parent's fence must cover
// its epoch. With a single candidate address there is no other parent to
// fence, so the bookkeeping (and its lock) is skipped on the write path —
// len(r.dials) is immutable after construction.
func (r *redialer) noteEpoch(e uint64) {
	if e == 0 || len(r.dials) <= 1 {
		return
	}
	r.mu.Lock()
	if e > r.maxSent[r.addr] {
		r.maxSent[r.addr] = e
	}
	r.mu.Unlock()
}

// rotate escalates to the next candidate parent. It reports false when there
// is nowhere to escalate to (a single-address redialer).
func (r *redialer) rotate() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.dials) <= 1 {
		return false
	}
	r.addr = (r.addr + 1) % len(r.dials)
	r.failovers++
	return true
}

// Connect dials the current parent address and runs the hello handshake,
// carrying the fence epoch for that address. It replaces any previous
// connection.
func (r *redialer) Connect() (net.Conn, error) {
	r.mu.Lock()
	dial := r.dials[r.addr]
	fence := r.fenceLocked()
	r.mu.Unlock()
	c, err := dial()
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c, r.hello(fence)); err != nil {
		c.Close()
		return nil, err
	}
	c.SetReadDeadline(time.Now().Add(r.handshakeTimeout))
	f, err := ReadFrame(c)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake: reading hello-ack: %w", err)
	}
	if f.Type != TypeHello {
		c.Close()
		return nil, fmt.Errorf("transport: handshake: unexpected frame type %d", f.Type)
	}
	c.SetReadDeadline(time.Time{})

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.Close()
		return nil, errNodeClosed
	}
	if r.conn != nil {
		r.conn.Close()
	}
	r.conn = c
	r.syncEpoch = f.Epoch
	r.connects++
	r.mu.Unlock()
	if r.onConn != nil {
		r.onConn(c)
	}
	return c, nil
}

// current returns the live connection, or nil when down.
func (r *redialer) current() net.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn
}

// markDead retires c if it is still the current connection. Safe to call from
// the drain goroutine and the writer concurrently.
func (r *redialer) markDead(c net.Conn) {
	r.mu.Lock()
	if r.conn == c {
		r.conn = nil
	}
	r.mu.Unlock()
	c.Close()
}

// SyncEpoch returns the parent's highest settled epoch as of the last
// handshake — reports for epochs at or below it would be discarded upstream.
func (r *redialer) SyncEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.syncEpoch
}

// Reconnects counts successful handshakes after the first.
func (r *redialer) Reconnects() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.connects <= 1 {
		return 0
	}
	return r.connects - 1
}

// Failovers counts escalations to the next candidate parent address.
func (r *redialer) Failovers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failovers
}

// retrySend redials with backoff until send succeeds on a fresh connection,
// escalating through the candidate parent list as per-address budgets
// exhaust. maxEpoch is the highest data epoch in the payload, recorded
// against whichever address is about to be written to.
func (r *redialer) retrySend(send func(net.Conn) error, maxEpoch uint64) error {
	addrStart := time.Now()
	addrAttempts := 0
	tried := 1 // addresses whose budget this sweep has started spending
	var lastErr error
	for attempt := 0; ; attempt++ {
		select {
		case <-r.closeCh:
			return errNodeClosed
		default:
		}
		c, err := r.Connect()
		if err == nil {
			r.noteEpoch(maxEpoch)
			if err = send(c); err == nil {
				return nil
			}
			r.markDead(c)
		}
		if errors.Is(err, errNodeClosed) {
			return err
		}
		lastErr = err
		addrAttempts++
		if r.backoff.Exhausted(addrStart, addrAttempts) {
			if tried >= len(r.dials) || !r.rotate() {
				return fmt.Errorf("transport: redial gave up after %d parent address(es): %w", tried, lastErr)
			}
			// Fresh address, fresh budget, immediate first dial: the new
			// parent is presumed healthy until it proves otherwise.
			tried++
			addrStart, addrAttempts = time.Now(), 0
			attempt = -1
			continue
		}
		select {
		case <-time.After(r.backoff.Delay(attempt)):
		case <-r.closeCh:
			return errNodeClosed
		}
	}
}

// Write sends f, redialing with backoff when the connection is down or dies
// mid-write. It returns nil once the frame was handed to a healthy
// connection, errNodeClosed after Close, or the last failure once the retry
// budget of every candidate parent is exhausted.
func (r *redialer) Write(f Frame) error {
	var maxEpoch uint64
	if f.Type == TypePSR || f.Type == TypeFailure {
		maxEpoch = f.Epoch
	}
	if c := r.current(); c != nil {
		r.noteEpoch(maxEpoch)
		if err := WriteFrame(c, f); err == nil {
			return nil
		}
		r.markDead(c)
	}
	return r.retrySend(func(c net.Conn) error { return WriteFrame(c, f) }, maxEpoch)
}

// writeBuffers sends a coalesced batch of pre-encoded frames as one vectored
// write, redialing with backoff exactly like Write. On any failure the whole
// batch is re-sent on a fresh connection — receivers may see duplicate frames
// (the committed-epoch window dedups them) but never torn ones, since a dead
// stream's tail is discarded at the receiver's next read error. A batch
// replayed onto a *different* parent is dropped there wholesale by the fence,
// which maxBatchEpoch keeps covering the batch's newest epoch.
//
// Called only from a FrameWriter's flusher goroutine, so the scratch view is
// effectively single-threaded and retained across calls for zero steady-state
// allocation.
func (r *redialer) writeBuffers(segs [][]byte) error {
	var maxEpoch uint64
	if len(r.dials) > 1 {
		// The header walk only feeds the re-parenting fence; a single-parent
		// redialer never fences, so skip it on the hot batch path.
		maxEpoch = maxBatchEpoch(segs)
	}
	if c := r.current(); c != nil {
		r.noteEpoch(maxEpoch)
		// net.Buffers consumes its receiver, so rebuild the view per attempt.
		r.scratch = append(r.scratch[:0], segs...)
		if _, err := r.scratch.WriteTo(c); err == nil {
			return nil
		}
		r.markDead(c)
	}
	return r.retrySend(func(c net.Conn) error {
		r.scratch = append(r.scratch[:0], segs...)
		_, err := r.scratch.WriteTo(c)
		return err
	}, maxEpoch)
}

// maxBatchEpoch scans a coalesced batch for its highest data epoch. Batch
// segments jointly hold whole frames (FrameWriter's invariant), so walking
// the length prefixes within each segment visits every header.
func maxBatchEpoch(segs [][]byte) uint64 {
	var max uint64
	for _, seg := range segs {
		for off := 0; off+frameHeaderSize <= len(seg); {
			n := int(beU32(seg[off:]))
			typ := seg[off+4]
			if typ == TypePSR || typ == TypeFailure {
				if e := beU64(seg[off+5:]); e > max {
					max = e
				}
			}
			off += 4 + n
		}
	}
	return max
}

// beU32 / beU64 are tiny local big-endian readers for header scanning.
func beU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func beU64(b []byte) uint64 {
	return uint64(beU32(b))<<32 | uint64(beU32(b[4:]))
}

// redialSink adapts a redialer into a FrameWriter batch sink.
type redialSink struct{ rd *redialer }

func (s redialSink) WriteBatch(segs [][]byte) error { return s.rd.writeBuffers(segs) }

// Close tears the connection down and aborts in-flight retries.
func (r *redialer) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.conn
	r.conn = nil
	r.mu.Unlock()
	close(r.closeCh)
	if c != nil {
		c.Close()
	}
	return nil
}

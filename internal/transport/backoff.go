package transport

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff configures the redial policy used when a child loses its parent:
// exponential delays with multiplicative jitter, capped per attempt and
// bounded in total. The zero value selects the defaults below.
type Backoff struct {
	Initial    time.Duration // first retry delay (default 50ms)
	Max        time.Duration // per-attempt cap (default 2s)
	Multiplier float64       // growth factor between attempts (default 2)
	Jitter     float64       // randomisation fraction in [0,1] (default 0.2)
	MaxElapsed time.Duration // give up after this much retrying (default 30s; < 0 retries forever)
	// MaxAttempts caps the number of redial attempts before the budget is
	// exhausted (0 = no attempt cap, MaxElapsed alone bounds retrying). On a
	// node with several ranked parent addresses the budget is spent per
	// address: exhausting it escalates the redialer to the next candidate
	// parent rather than giving up outright.
	MaxAttempts int
	// Seed, when non-zero and Rand is nil, seeds the private jitter PRNG
	// deterministically: two Backoffs defaulted from the same Seed produce
	// identical delay sequences, which makes chaos runs reproducible.
	Seed int64
	// Rand supplies the jitter; nil seeds a private PRNG from Seed (or the
	// clock when Seed is zero). *rand.Rand is not goroutine-safe on its own,
	// so every jitter draw — including draws from a Rand shared across
	// nodes — is serialised under one package-level lock. Jitter draws only
	// happen on redial, so the lock is never contended on the hot path.
	Rand *rand.Rand
}

// jitterMu serialises every jitter draw. Redialers run Delay concurrently
// (one goroutine per reconnecting link) and frequently share one *rand.Rand:
// a Backoff value is copied into each node it configures, and an injected
// Rand travels with every copy. A single package lock makes all of those
// shapes race-free without per-instance bookkeeping.
var jitterMu sync.Mutex

// withDefaults fills unset fields.
func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	} else if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.MaxElapsed == 0 {
		b.MaxElapsed = 30 * time.Second
	}
	if b.Rand == nil {
		seed := b.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		b.Rand = rand.New(rand.NewSource(seed))
	}
	return b
}

// Exhausted reports whether a retry budget that began at start and has spent
// attempts redials is used up. Attempt budgets and elapsed-time budgets
// compose: whichever trips first ends the budget. A negative MaxElapsed
// (retry forever) only gives up on an explicit MaxAttempts.
func (b Backoff) Exhausted(start time.Time, attempts int) bool {
	if b.MaxAttempts > 0 && attempts >= b.MaxAttempts {
		return true
	}
	return b.MaxElapsed >= 0 && time.Since(start) >= b.MaxElapsed
}

// Delay returns the jittered delay before retry number attempt (0-based).
// Safe for concurrent use even when the underlying Rand is shared.
func (b Backoff) Delay(attempt int) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 && b.Rand != nil {
		// Spread uniformly over [1-Jitter, 1+Jitter] so synchronised children
		// don't stampede the recovering parent.
		jitterMu.Lock()
		u := b.Rand.Float64()
		jitterMu.Unlock()
		d *= 1 - b.Jitter + 2*b.Jitter*u
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

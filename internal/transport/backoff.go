package transport

import (
	"math/rand"
	"time"
)

// Backoff configures the redial policy used when a child loses its parent:
// exponential delays with multiplicative jitter, capped per attempt and
// bounded in total. The zero value selects the defaults below.
type Backoff struct {
	Initial    time.Duration // first retry delay (default 50ms)
	Max        time.Duration // per-attempt cap (default 2s)
	Multiplier float64       // growth factor between attempts (default 2)
	Jitter     float64       // randomisation fraction in [0,1] (default 0.2)
	MaxElapsed time.Duration // give up after this much retrying (default 30s; < 0 retries forever)
	// Rand supplies the jitter; nil seeds a private PRNG from the clock. A
	// node must not share one *rand.Rand with other nodes — inject one per
	// node when reproducibility matters.
	Rand *rand.Rand
}

// withDefaults fills unset fields.
func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	} else if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.MaxElapsed == 0 {
		b.MaxElapsed = 30 * time.Second
	}
	if b.Rand == nil {
		b.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return b
}

// Delay returns the jittered delay before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 && b.Rand != nil {
		// Spread uniformly over [1-Jitter, 1+Jitter] so synchronised children
		// don't stampede the recovering parent.
		d *= 1 - b.Jitter + 2*b.Jitter*b.Rand.Float64()
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

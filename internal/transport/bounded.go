package transport

// boundedMap is a map capped at a fixed number of entries, evicting in
// insertion order (FIFO) once full. Long-running nodes index per-source and
// per-epoch bookkeeping by ids arriving from the network; without a cap,
// deployment churn (or a hostile peer cycling ids) grows those maps without
// limit. FIFO eviction keeps the working set — recent epochs, currently
// flapping sources — while shedding the oldest entries first.
//
// The insertion order is also the serialisation order, making snapshots of a
// boundedMap deterministic for a given history.
type boundedMap[K comparable, V any] struct {
	cap       int
	m         map[K]V
	order     []K // live keys, oldest first
	evictions uint64
}

// newBoundedMap builds an empty map holding at most capacity entries
// (capacity < 1 is treated as 1: a map that remembers only the newest key).
func newBoundedMap[K comparable, V any](capacity int) *boundedMap[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &boundedMap[K, V]{cap: capacity, m: make(map[K]V)}
}

// get returns the value for k.
func (b *boundedMap[K, V]) get(k K) (V, bool) {
	v, ok := b.m[k]
	return v, ok
}

// has reports whether k is present.
func (b *boundedMap[K, V]) has(k K) bool {
	_, ok := b.m[k]
	return ok
}

// put inserts or updates k. Updates keep the original insertion position;
// inserts evict the oldest entries until the map fits its cap again.
func (b *boundedMap[K, V]) put(k K, v V) {
	if _, ok := b.m[k]; ok {
		b.m[k] = v
		return
	}
	b.m[k] = v
	b.order = append(b.order, k)
	for len(b.order) > b.cap {
		oldest := b.order[0]
		b.order = b.order[1:]
		delete(b.m, oldest)
		b.evictions++
	}
}

// len returns the number of live entries.
func (b *boundedMap[K, V]) len() int { return len(b.m) }

// each visits the live entries oldest-insertion first.
func (b *boundedMap[K, V]) each(fn func(K, V)) {
	for _, k := range b.order {
		fn(k, b.m[k])
	}
}

package transport

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/chaos"
	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/obs"
	"github.com/sies/sies/internal/prf"
)

// restartSoakReport is the recovery-stats artifact appended to
// $SIES_RESTART_STATS (CI uploads it with the restart-soak job).
type restartSoakReport struct {
	Name             string          `json:"name"`
	Seed             int64           `json:"seed"`
	Epochs           int             `json:"epochs"`
	Crashes          int             `json:"crashes"`
	QuerierCrashes   int             `json:"querier_crashes"`
	AggCrashes       int             `json:"aggregator_crashes"`
	SyncWindowKills  int             `json:"sync_window_kills"`
	Served           int             `json:"served"`
	Lost             int             `json:"lost"`
	Full             int             `json:"full"`
	Partial          int             `json:"partial"`
	Empty            int             `json:"empty"`
	WrongAnswers     int             `json:"wrong_answers"`
	DuplicateCommits int             `json:"duplicate_commits"`
	Querier          DurabilityStats `json:"querier_durability"`
	Aggregator       DurabilityStats `json:"aggregator_durability"`
}

// writeRestartStats appends the report to $SIES_RESTART_STATS when set.
func writeRestartStats(t *testing.T, rep restartSoakReport) {
	t.Helper()
	path := os.Getenv("SIES_RESTART_STATS")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("restart stats: %v", err)
		return
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		t.Logf("restart stats: %v", err)
	}
}

// soakValue is the deterministic reading of source i at epoch t, so any
// emitted SUM can be checked exactly against the result's contributor set.
func soakValue(i int, t prf.Epoch) uint64 {
	return uint64(1000*(i+1)) + uint64(t)
}

// freePort reserves a listening address that stays usable across restarts.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// restartCluster is a live querier + root-aggregator pair whose processes can
// be killed and rebuilt from their state directories. It implements
// chaos.CrashTarget: Kill is the transport Crash() (no flush, no fsync),
// Restart reconstructs the node from its durable directory on the same port.
type restartCluster struct {
	t    *testing.T
	q    *core.Querier
	qCfg QuerierConfig
	aCfg AggregatorConfig

	results chan EpochResult // merged across querier generations
	drains  sync.WaitGroup   // one drain goroutine per querier generation

	mu     sync.Mutex
	qn     *QuerierNode
	qnRun  chan error
	agg    *AggregatorNode
	aggRun chan error

	// Armed sync-window kill, driver-goroutine only (see armSyncWindowKill).
	armedKill *QuerierNode
	armedRun  chan error
}

func (c *restartCluster) startQuerier() error {
	qn, err := NewQuerierNodeConfig(c.qCfg, c.q)
	if err != nil {
		return err
	}
	run := make(chan error, 1)
	go func() { run <- qn.Run() }()
	c.drains.Add(1)
	go func() {
		defer c.drains.Done()
		for res := range qn.Results {
			c.results <- res
		}
	}()
	c.mu.Lock()
	c.qn, c.qnRun = qn, run
	c.mu.Unlock()
	return nil
}

// startAggregator blocks until every source has redialed; the driver
// guarantees each source holds at least one queued report at restart time, so
// their redialers are guaranteed to knock.
func (c *restartCluster) startAggregator() error {
	a, err := NewAggregatorNode(c.aCfg, c.q.Params().Field())
	if err != nil {
		return err
	}
	run := make(chan error, 1)
	go func() { run <- a.Run() }()
	c.mu.Lock()
	c.agg, c.aggRun = a, run
	c.mu.Unlock()
	return nil
}

func (c *restartCluster) Kill(role chaos.CrashRole, id int) error {
	if role == chaos.CrashQuerier {
		c.mu.Lock()
		qn, run := c.qn, c.qnRun
		c.mu.Unlock()
		qn.Crash()
		<-run // loop exit closes Results, which ends this generation's drain
		return nil
	}
	c.mu.Lock()
	a, run := c.agg, c.aggRun
	c.mu.Unlock()
	a.Crash()
	<-run // a crash may surface as an error; either way the loop exits
	return nil
}

func (c *restartCluster) Restart(role chaos.CrashRole, id int) error {
	if role == chaos.CrashQuerier {
		return c.startQuerier()
	}
	return c.startAggregator()
}

// armSyncWindowKill installs a one-shot crash in the current querier
// generation's beforeSync hook — after a group-commit batch appended, before
// the shared fsync made it durable. That is the one window batching opens
// that the serial path never had; the kill proves the truncation-on-recovery
// story by landing exactly there. The driver keeps pumping epochs (commits
// must flow for the hook to fire) and reaps the crash on later iterations.
// Returns false without arming when the querier or aggregator is already
// down, or a previous armed kill is still pending.
func (c *restartCluster) armSyncWindowKill() bool {
	c.mu.Lock()
	qn, run, agg := c.qn, c.qnRun, c.agg
	c.mu.Unlock()
	if c.armedKill != nil || agg == nil || agg.isCrashed() {
		return false
	}
	qn.mu.Lock()
	dead := qn.crashed
	qn.mu.Unlock()
	if dead {
		return false
	}
	var once sync.Once
	qn.state.store.Journal().SetBeforeSync(func() { once.Do(qn.Crash) })
	c.armedKill, c.armedRun = qn, run
	return true
}

// reapSyncWindowKill restarts the querier once an armed sync-window kill has
// landed. Returns true when this call delivered the restart; if the plan's
// own kill/restart cycled the generation first, the pending arm is dropped.
func (c *restartCluster) reapSyncWindowKill() (bool, error) {
	if c.armedKill == nil {
		return false, nil
	}
	c.mu.Lock()
	cur := c.qn
	c.mu.Unlock()
	if cur != c.armedKill {
		c.armedKill, c.armedRun = nil, nil // the plan cycled this generation
		return false, nil
	}
	select {
	case <-c.armedRun:
	default:
		return false, nil // not crashed yet; keep pumping epochs
	}
	c.armedKill, c.armedRun = nil, nil
	return true, c.startQuerier()
}

// settleSyncWindowKill resolves a still-armed kill before shutdown: wait for
// in-flight commits to trip it, and if none do, disarm so the graceful drain
// runs against a live querier. A leader that read the hook just before the
// disarm fires within its SyncTo call, so a short grace plus a crashed
// re-check closes that window.
func (c *restartCluster) settleSyncWindowKill() (bool, error) {
	if c.armedKill == nil {
		return false, nil
	}
	qn, run := c.armedKill, c.armedRun
	c.armedKill, c.armedRun = nil, nil
	c.mu.Lock()
	cur := c.qn
	c.mu.Unlock()
	if cur != qn {
		return false, nil
	}
	select {
	case <-run:
		return true, c.startQuerier()
	case <-time.After(5 * time.Second):
	}
	qn.state.store.Journal().SetBeforeSync(nil)
	time.Sleep(300 * time.Millisecond)
	qn.mu.Lock()
	dead := qn.crashed
	qn.mu.Unlock()
	if dead { // the hook fired as we disarmed
		<-run
		return true, c.startQuerier()
	}
	return false, nil
}

// metricsHandler serves the CURRENT querier generation's observability
// endpoints — exactly what a scraper pointed at a restarting process sees:
// each restart brings fresh counters that the durable snapshot re-fills.
func (c *restartCluster) metricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		qn := c.qn
		c.mu.Unlock()
		obs.NewHandler(obs.ServerConfig{Registry: qn.Metrics(), Tracer: qn.Tracer()}).ServeHTTP(w, r)
	})
}

// TestRestartChaosSoak drives a durable cluster (3 sources → root aggregator
// → querier) through a seeded crash plan of well over 20 kill/restart cycles
// and checks the exactly-once commit contract end to end: every emitted SUM
// is exactly the sum of its contributor set's readings, no committed epoch is
// ever answered twice, and nothing is rejected. Crashes are transport
// Crash() calls — no graceful flush, no final fsync — and every restart
// rebuilds the process from its state directory alone.
func TestRestartChaosSoak(t *testing.T) { runRestartChaosSoak(t, false) }

// TestRestartChaosSoakPipelined runs the same seeded crash plan over the
// batched I/O plane: coalescing sources, a coalescing root aggregator and the
// pipelined querier. On top of the plan's kills it aims extra querier crashes
// into the group-commit append-to-fsync window (killInSyncWindow), the only
// new durability exposure batching introduces, and holds the soak to the same
// exactly-once verdict: no wrong SUM, no epoch answered twice.
func TestRestartChaosSoakPipelined(t *testing.T) { runRestartChaosSoak(t, true) }

func runRestartChaosSoak(t *testing.T, pipelined bool) {
	if testing.Short() {
		t.Skip("restart soak is long; skipped with -short")
	}
	const (
		nSources = 3
		seed     = int64(20260807)
		epochs   = 260
		pace     = 15 * time.Millisecond
	)
	q, sources, err := core.Setup(nSources)
	if err != nil {
		t.Fatal(err)
	}

	plan := chaos.RandomCrashes(rand.New(rand.NewSource(seed)), epochs, 1, 0.18, 2)
	if plan.Crashes() < 20 {
		t.Fatalf("plan has %d crashes, want >= 20 (re-tune seed/prob)", plan.Crashes())
	}
	var qCrashes, aCrashes int
	for _, e := range plan.Events {
		if e.Role == chaos.CrashQuerier {
			qCrashes++
		} else {
			aCrashes++
		}
	}
	t.Logf("plan: %d crashes (%d querier, %d aggregator) over %d epochs",
		plan.Crashes(), qCrashes, aCrashes, epochs)

	qAddr, aggAddr := freePort(t), freePort(t)
	backoff := Backoff{Initial: 10 * time.Millisecond, Max: 200 * time.Millisecond, MaxElapsed: 60 * time.Second}
	c := &restartCluster{
		t: t, q: q,
		qCfg: QuerierConfig{
			ListenAddr: qAddr, StateDir: t.TempDir(), CheckpointEvery: 8,
		},
		aCfg: AggregatorConfig{
			ListenAddr: aggAddr, ParentAddr: qAddr, NumChildren: nSources,
			Timeout: 700 * time.Millisecond, ReconnectWindow: 30 * time.Second,
			Backoff: backoff, StateDir: t.TempDir(), CheckpointEvery: 8,
		},
		results: make(chan EpochResult, 2*epochs+64),
	}
	if pipelined {
		c.qCfg.Pipeline = &PipelineConfig{Workers: 4}
		c.aCfg.Coalesce = &FrameWriterConfig{}
	}

	if err := c.startQuerier(); err != nil {
		t.Fatal(err)
	}

	// A scraper runs for the whole soak, crossing every querier generation:
	// the handler always serves the live node, so this exercises scrape-
	// during-crash-and-restart, and the final assertions consume the scraped
	// exposition rather than node internals.
	msrv := httptest.NewServer(c.metricsHandler())
	defer msrv.Close()
	scrapeStop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-scrapeStop:
				return
			case <-time.After(25 * time.Millisecond):
			}
			for _, path := range []string{"/metrics", "/trace/epochs?n=8"} {
				resp, err := http.Get(msrv.URL + path)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	aggBuilt := make(chan error, 1)
	go func() { aggBuilt <- c.startAggregator() }()
	time.Sleep(100 * time.Millisecond) // aggregator listener up

	srcs := make([]*SourceNode, nSources)
	for i, s := range sources {
		scfg := SourceConfig{ParentAddr: aggAddr, Backoff: backoff}
		if pipelined {
			scfg.Coalesce = &FrameWriterConfig{}
		}
		srcs[i], err = DialSourceWith(scfg, s)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := <-aggBuilt; err != nil {
		t.Fatal(err)
	}

	// One reporter goroutine per source delivers epochs in order; a down
	// aggregator just delays it inside the redialer's retry loop.
	var reporters sync.WaitGroup
	epochCh := make([]chan prf.Epoch, nSources)
	for i := range epochCh {
		epochCh[i] = make(chan prf.Epoch, epochs+8)
		reporters.Add(1)
		go func(i int) {
			defer reporters.Done()
			for e := range epochCh[i] {
				// A report that exhausts its backoff is simply a missed epoch
				// for this source; the epoch flushes partial and is validated
				// against its Failed list like any other.
				_ = srcs[i].Report(e, soakValue(i, e))
			}
		}(i)
	}

	// Drive: queue the epoch to every reporter BEFORE applying the plan, so a
	// restarting aggregator always has sources knocking, then crash/restart
	// per the plan. Kills land with the epoch's reports still in flight. The
	// pipelined soak additionally aims a querier kill into the group-commit
	// append-to-fsync window every 40 epochs.
	windowKills := 0
	for e := prf.Epoch(1); e <= epochs; e++ {
		for i := range epochCh {
			epochCh[i] <- e
		}
		if err := plan.Apply(e, c); err != nil {
			t.Fatal(err)
		}
		if pipelined {
			killed, err := c.reapSyncWindowKill()
			if err != nil {
				t.Fatal(err)
			}
			if killed {
				windowKills++
			}
			if e%40 == 17 {
				c.armSyncWindowKill()
			}
		}
		time.Sleep(pace)
	}
	// Fire any trailing restart whose down window crosses the horizon, and
	// settle the last armed sync-window kill so shutdown sees a live querier.
	for e := prf.Epoch(epochs + 1); e <= epochs+3; e++ {
		if err := plan.Apply(e, c); err != nil {
			t.Fatal(err)
		}
	}
	if pipelined {
		killed, err := c.settleSyncWindowKill()
		if err != nil {
			t.Fatal(err)
		}
		if killed {
			windowKills++
		}
	}

	// Let in-flight epochs settle (deadline flushes included), then shut down
	// gracefully: sources first, the aggregator's orphan flush settles what
	// remains, then the querier.
	time.Sleep(1500 * time.Millisecond)
	for i := range epochCh {
		close(epochCh[i])
	}
	reporters.Wait()
	for _, s := range srcs {
		s.Close()
	}
	time.Sleep(300 * time.Millisecond)

	aggStats := c.agg.DurabilityStats()
	c.agg.Close()
	if err := <-c.aggRun; err != nil {
		t.Errorf("aggregator run: %v", err)
	}
	// The final verdict comes from the scraped exposition, as a monitoring
	// system would render it, not from reaching into the node.
	metrics := parsePrometheus(t, scrape(t, msrv.URL+"/metrics"))
	qStats := c.qn.DurabilityStats()
	c.qn.Close()
	if err := <-c.qnRun; err != nil {
		t.Errorf("querier run: %v", err)
	}
	close(scrapeStop)
	scrapeWG.Wait()
	c.drains.Wait()
	close(c.results)

	// Validate every emitted result against the deterministic readings.
	var wrong, dup, rejected, full, partial, empty int
	seen := map[prf.Epoch]int{}
	for res := range c.results {
		if res.Err != nil {
			if errors.Is(res.Err, ErrNoContributors) {
				seen[res.Epoch]++
				empty++
				continue
			}
			rejected++
			t.Errorf("epoch %d rejected: %v", res.Epoch, res.Err)
			continue
		}
		seen[res.Epoch]++
		failed := map[int]bool{}
		for _, id := range res.Failed {
			failed[id] = true
		}
		var want uint64
		for i := 0; i < nSources; i++ {
			if !failed[i] {
				want += soakValue(i, res.Epoch)
			}
		}
		if res.Sum != want {
			wrong++
			t.Errorf("epoch %d: sum %d, want %d (failed %v)", res.Epoch, res.Sum, want, res.Failed)
		}
		if res.Partial {
			partial++
		} else {
			full++
		}
	}
	for e, n := range seen {
		if n > 1 {
			dup++
			t.Errorf("epoch %d answered %d times", e, n)
		}
	}
	served := len(seen)
	lost := epochs - served
	if served < epochs*7/10 {
		t.Errorf("served %d of %d epochs; the cluster wedged somewhere", served, epochs)
	}
	if got := metrics["sies_epochs_rejected_total"]; got != 0 {
		t.Errorf("scraped sies_epochs_rejected_total = %v in a clean soak, want 0", got)
	}
	// Commits survive crashes: the final generation's counters — restored
	// from the durable snapshot plus journal replay — must agree with the
	// deduplicated outcome tally across every generation's emissions, except
	// for results that reached the channel in the instant before a querier
	// kill whose commit record never hit the journal. Those are never
	// re-served (the handshake sync window skips settled epochs), so the
	// replayed counter may trail the channel by at most one per querier kill;
	// it must never exceed it.
	if got := metrics["sies_epochs_served_total"]; got > float64(full+partial) ||
		got < float64(full+partial-qCrashes-windowKills) {
		t.Errorf("scraped sies_epochs_served_total = %v, results channel saw %d (%d querier kills)",
			got, full+partial, qCrashes+windowKills)
	}
	if got := metrics["sies_epochs_empty_total"]; got != float64(empty) {
		t.Errorf("scraped sies_epochs_empty_total = %v, results channel saw %d", got, empty)
	}
	if got := metrics["sies_durability_enabled"]; got != 1 {
		t.Errorf("scraped sies_durability_enabled = %v, want 1", got)
	}
	t.Logf("served %d/%d (full %d, partial %d, empty %d, lost %d), %d sync-window kills, dedup hits %d, querier replay %d recs, agg replay %d recs",
		served, epochs, full, partial, empty, lost,
		windowKills, qStats.DedupHits, qStats.ReplayedRecords, aggStats.ReplayedRecords)
	if pipelined && windowKills < 3 {
		t.Errorf("only %d sync-window kills landed, want >= 3 (commits not flowing?)", windowKills)
	}

	name := "restart-chaos-soak"
	if pipelined {
		name = "restart-chaos-soak-pipelined"
	}
	writeRestartStats(t, restartSoakReport{
		Name: name, Seed: seed, Epochs: epochs,
		Crashes: plan.Crashes(), QuerierCrashes: qCrashes, AggCrashes: aCrashes,
		SyncWindowKills: windowKills,
		Served:          served, Lost: lost, Full: full, Partial: partial, Empty: empty,
		WrongAnswers: wrong, DuplicateCommits: dup,
		Querier: qStats, Aggregator: aggStats,
	})
}

// TestQuarantinePersistsAcrossRestart confirms a culprit through the
// quarantine registry, crashes the querier and checks the restarted node
// still excludes it — no quarantine amnesia.
func TestQuarantinePersistsAcrossRestart(t *testing.T) {
	q, _, err := core.Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fcfg := ForensicsConfig{
		Tree:  func() core.ProbeGroup { return core.ProbeGroup{Sources: []int{0, 1, 2, 3}} },
		Probe: func(e prf.Epoch, ids []int) (core.Result, error) { return core.Result{}, nil },
	}

	qn1, err := NewQuerierNodeConfig(QuerierConfig{ListenAddr: "127.0.0.1:0", StateDir: dir}, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := qn1.EnableForensics(fcfg); err != nil {
		t.Fatal(err)
	}
	route := core.Route{Aggregator: true, ID: 1}
	qn1.forensics.quarantine.Report(route, []int{2, 3})
	if s := qn1.forensics.quarantine.Report(route, []int{2, 3}); s != core.RouteConfirmed {
		t.Fatalf("second report → %v, want confirmed", s)
	}
	qn1.persistQuarantine()
	qn1.Crash()

	qn2, err := NewQuerierNodeConfig(QuerierConfig{ListenAddr: "127.0.0.1:0", StateDir: dir}, q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn2.Close()
	if err := qn2.EnableForensics(fcfg); err != nil {
		t.Fatal(err)
	}
	if s := qn2.forensics.quarantine.StateOf(route); s != core.RouteConfirmed {
		t.Fatalf("restarted registry forgot the culprit: %v", s)
	}
	if got := qn2.forensics.quarantine.Excluded(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("restarted exclusion set = %v, want [2 3]", got)
	}
}

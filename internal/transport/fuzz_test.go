package transport

import (
	"bytes"
	"testing"

	"github.com/sies/sies/internal/core"
)

// FuzzReadFrame feeds arbitrary bytes to the frame parser: it must never
// panic, never allocate unbounded memory, and accepted frames must re-encode
// to the same bytes they were parsed from.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, Frame{Type: TypePSR, Epoch: 7, Payload: []byte("payload")})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 9, TypeHello, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, err := ReadFrame(r)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, frame); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatal("frame re-encoding differs from consumed input")
		}
	})
}

// FuzzHelloFrame feeds arbitrary hello frames — fence epoch plus coverage
// payload — through the wire encode/decode and the contributor-list parser.
// The parsers must never panic; accepted hellos must round-trip the fence
// exactly and yield a canonical (sorted, duplicate-free, bounded) coverage
// set that re-encodes to the parsed payload.
func FuzzHelloFrame(f *testing.F) {
	f.Add(uint64(0), []byte(core.EncodeContributors([]int{0, 1, 2})))
	f.Add(uint64(42), []byte(core.EncodeContributors(nil)))
	f.Add(uint64(1<<63), []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(uint64(7), []byte{0, 0, 0, 2, 0, 0, 0, 5, 0, 0, 0, 5}) // duplicate ids
	f.Fuzz(func(t *testing.T, fence uint64, payload []byte) {
		var wire bytes.Buffer
		if err := WriteFrame(&wire, Frame{Type: TypeHello, Epoch: fence, Payload: payload}); err != nil {
			return // oversized payload: rejected before hitting the wire
		}
		frame, err := ReadFrame(&wire)
		if err != nil {
			t.Fatalf("written hello failed to parse: %v", err)
		}
		if frame.Type != TypeHello || frame.Epoch != fence {
			t.Fatalf("hello round trip changed header: type %d fence %d, want %d %d",
				frame.Type, frame.Epoch, TypeHello, fence)
		}
		covers, err := core.DecodeContributorsBounded(frame.Payload, 1<<16)
		if err != nil {
			return // hostile coverage list: rejected, never panics
		}
		for i, id := range covers {
			if id < 0 || id >= 1<<16 {
				t.Fatalf("accepted out-of-range id %d", id)
			}
			if i > 0 && covers[i-1] >= id {
				t.Fatalf("accepted non-canonical coverage %v", covers)
			}
		}
		if !bytes.Equal(core.EncodeContributors(covers), frame.Payload) {
			t.Fatal("accepted coverage does not re-encode to the parsed payload")
		}
	})
}

// FuzzDecodeMember checks the membership-event parser: arbitrary payloads
// must never panic, and accepted events must carry a bounded canonical id set
// and a label no longer than the declared length.
func FuzzDecodeMember(f *testing.F) {
	f.Add(encodeMember(memberJoin, "127.0.0.1:9999", []int{0, 3, 5}))
	f.Add(encodeMember(memberLeave, "", nil))
	f.Add([]byte{})
	f.Add([]byte{99, 200, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := decodeMember(data, 1<<12)
		if err != nil {
			return
		}
		if ev.kind < memberJoin || ev.kind > memberLeave {
			t.Fatalf("accepted unknown kind %d", ev.kind)
		}
		if len(ev.label) > maxMemberLabel {
			t.Fatalf("accepted overlong label (%d bytes)", len(ev.label))
		}
		for i, id := range ev.ids {
			if id < 0 || id >= 1<<12 {
				t.Fatalf("accepted out-of-range id %d", id)
			}
			if i > 0 && ev.ids[i-1] >= id {
				t.Fatalf("accepted non-canonical ids %v", ev.ids)
			}
		}
	})
}

// FuzzDecodeResult checks the result payload parser.
func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(42, true))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sum, ok, err := DecodeResult(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeResult(sum, ok), data) {
			t.Fatal("result payload round trip unstable")
		}
	})
}

package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame parser: it must never
// panic, never allocate unbounded memory, and accepted frames must re-encode
// to the same bytes they were parsed from.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, Frame{Type: TypePSR, Epoch: 7, Payload: []byte("payload")})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 9, TypeHello, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, err := ReadFrame(r)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, frame); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatal("frame re-encoding differs from consumed input")
		}
	})
}

// FuzzDecodeResult checks the result payload parser.
func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(42, true))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sum, ok, err := DecodeResult(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeResult(sum, ok), data) {
			t.Fatal("result payload round trip unstable")
		}
	})
}

package transport

import (
	"net"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// forensicsRig is a querier with a live TCP session from an "evil root" and an
// in-memory probe backend simulating a two-aggregator tree:
//
//	agg0 (root) ← agg1 ← sources 0-3 ; agg2 ← sources 4-7
//
// The adversary sits on agg1's out-edge and tampers everything it forwards —
// final PSRs and probe re-queries alike — while `tampered(t)` holds.
type forensicsRig struct {
	q       *core.Querier
	sources []*core.Source
	values  []uint64
	field   *uint256.Field
	delta   uint256.Int

	qn   *QuerierNode
	conn net.Conn
}

// tampered says whether the agg1 adversary is active at epoch t: it attacks
// epochs 1 and 2, then the compromise clears.
func tampered(t prf.Epoch) bool { return t <= 2 }

// newForensicsRig builds the rig; configure (optional) runs after
// EnableForensics but before the querier serves, so tests can adjust the
// forensics engine without racing the serve goroutine.
func newForensicsRig(t *testing.T, qc core.QuarantineConfig, configure func(*forensics)) *forensicsRig {
	t.Helper()
	const n = 8
	q, sources, err := core.Setup(n)
	if err != nil {
		t.Fatal(err)
	}
	r := &forensicsRig{
		q: q, sources: sources,
		values: make([]uint64, n),
		field:  q.Params().Field(),
		delta:  uint256.NewInt(99991),
	}
	for i := range r.values {
		r.values[i] = uint64(i + 1)
	}

	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	if err := qn.EnableForensics(ForensicsConfig{
		Tree:       r.tree,
		Probe:      r.probe,
		Quarantine: qc,
	}); err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(qn.forensics)
	}
	go qn.Run()
	r.qn = qn

	conn, err := net.Dial("tcp", qn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if err := WriteFrame(conn, Frame{Type: TypeHello, Payload: core.EncodeContributors(all)}); err != nil {
		t.Fatal(err)
	}
	if ack, err := ReadFrame(conn); err != nil || ack.Type != TypeHello {
		t.Fatalf("hello-ack: %+v (%v)", ack, err)
	}
	r.conn = conn
	t.Cleanup(func() { conn.Close(); qn.Close() })
	return r
}

// tree is the querier's map of the aggregation topology for group testing.
func (r *forensicsRig) tree() core.ProbeGroup {
	atomic := func(ids ...int) []core.ProbeGroup {
		out := make([]core.ProbeGroup, len(ids))
		for i, id := range ids {
			out[i] = core.ProbeGroup{Route: core.Route{ID: id}, Sources: []int{id}}
		}
		return out
	}
	return core.ProbeGroup{
		Route:   core.Route{Aggregator: true, ID: 0},
		Sources: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Children: []core.ProbeGroup{
			{Route: core.Route{Aggregator: true, ID: 1}, Sources: []int{0, 1, 2, 3}, Children: atomic(0, 1, 2, 3)},
			{Route: core.Route{Aggregator: true, ID: 2}, Sources: []int{4, 5, 6, 7}, Children: atomic(4, 5, 6, 7)},
		},
	}
}

// merge re-aggregates the given subset honestly, then applies the agg1
// adversary if any of its subtree is included and the attack is live.
func (r *forensicsRig) merge(t prf.Epoch, ids []int) (core.PSR, error) {
	agg := core.NewAggregator(r.field)
	acc := agg.NewMerge()
	viaAgg1 := false
	for _, id := range ids {
		psr, err := r.sources[id].Encrypt(t, r.values[id])
		if err != nil {
			return core.PSR{}, err
		}
		acc.Add(psr)
		if id < 4 {
			viaAgg1 = true
		}
	}
	final := acc.Final()
	if viaAgg1 && tampered(t) {
		final = core.PSR{C: r.field.Add(final.C, r.delta)}
	}
	return final, nil
}

// probe is the subset re-query backend handed to EnableForensics.
func (r *forensicsRig) probe(t prf.Epoch, ids []int) (core.Result, error) {
	final, err := r.merge(t, ids)
	if err != nil {
		return core.Result{}, err
	}
	return r.q.EvaluateSubset(t, final, ids)
}

// push sends the root's final PSR for epoch t over the wire and returns the
// querier's EpochResult plus the decoded ack.
func (r *forensicsRig) push(t *testing.T, epoch prf.Epoch) (EpochResult, bool) {
	t.Helper()
	all := make([]int, len(r.sources))
	for i := range all {
		all[i] = i
	}
	final, err := r.merge(epoch, all)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(r.conn, Frame{Type: TypePSR, Epoch: uint64(epoch),
		Payload: encodeReport(final, nil)}); err != nil {
		t.Fatal(err)
	}
	var res EpochResult
	select {
	case res = <-r.qn.Results:
	case <-time.After(10 * time.Second):
		t.Fatalf("no result for epoch %d", epoch)
	}
	ack, err := ReadFrame(r.conn)
	if err != nil || ack.Type != TypeResult {
		t.Fatalf("epoch %d ack: %+v (%v)", epoch, ack, err)
	}
	_, ok, err := DecodeResult(ack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return res, ok
}

// TestForensicsRecoversOverTCP drives the full story end to end: a root
// tampered at agg1 pushes corrupted finals for two epochs; the querier
// localizes, quarantines, recovers both epochs via verified re-query (the
// second through the fast path), then reinstates the subtree once the
// compromise clears.
func TestForensicsRecoversOverTCP(t *testing.T) {
	r := newForensicsRig(t, core.QuarantineConfig{
		ConfirmAfter:     1, // first conviction quarantines
		QuarantineEpochs: 2,
		ProbationEpochs:  1,
	}, nil)
	cleanSum := uint64(5 + 6 + 7 + 8) // sources 4-7

	// Epoch 1: full localization pinpoints agg1, re-query serves the rest.
	res, acked := r.push(t, 1)
	if res.Err != nil {
		t.Fatalf("epoch 1 not recovered: %v", res.Err)
	}
	if !res.Recovered || !acked {
		t.Fatalf("epoch 1 recovered=%v acked=%v", res.Recovered, acked)
	}
	if res.Sum != cleanSum || res.Contributors != 4 || res.Coverage != 0.5 {
		t.Fatalf("epoch 1 sum=%d n=%d cov=%f", res.Sum, res.Contributors, res.Coverage)
	}
	if want := []int{0, 1, 2, 3}; len(res.Excluded) != 4 || res.Excluded[0] != 0 || res.Excluded[3] != 3 {
		t.Fatalf("epoch 1 excluded %v, want %v", res.Excluded, want)
	}
	if res.Probes == 0 {
		t.Fatal("epoch 1 recovered without probes")
	}
	fs := r.qn.ForensicsStats()
	if fs.Localizations != 1 || fs.Recovered != 1 || fs.FastRecoveries != 0 {
		t.Fatalf("after epoch 1: %+v", fs)
	}
	if fs.QuarantineNow.Confirmed != 1 {
		t.Fatalf("agg1 not quarantined: %+v", fs.QuarantineNow)
	}

	// Epoch 2: the quarantined culprit explains the failure — fast path, no
	// second localization.
	res, _ = r.push(t, 2)
	if res.Err != nil || !res.Recovered || res.Sum != cleanSum {
		t.Fatalf("epoch 2: %+v", res)
	}
	if res.Probes != 0 {
		t.Fatalf("epoch 2 ran %d localization probes, want fast path", res.Probes)
	}
	fs = r.qn.ForensicsStats()
	if fs.Localizations != 1 || fs.FastRecoveries != 1 || fs.Recovered != 2 {
		t.Fatalf("after epoch 2: %+v", fs)
	}

	// The compromise clears; clean epochs drain the quarantine until agg1's
	// subtree is reinstated and full coverage returns.
	var last EpochResult
	for epoch := prf.Epoch(3); epoch <= 6; epoch++ {
		last, _ = r.push(t, epoch)
		if last.Err != nil || last.Recovered {
			t.Fatalf("clean epoch %d: %+v", epoch, last)
		}
	}
	if last.Sum != 36 || last.Contributors != 8 {
		t.Fatalf("final epoch sum=%d n=%d, want full coverage", last.Sum, last.Contributors)
	}
	fs = r.qn.ForensicsStats()
	if fs.Quarantine.Reinstated != 1 {
		t.Fatalf("Reinstated = %d, want 1 (%+v)", fs.Quarantine.Reinstated, fs)
	}
	if fs.QuarantineNow.Total() != 0 {
		t.Fatalf("quarantine not drained: %+v", fs.QuarantineNow)
	}
	h := r.qn.Health()
	if h.Forensics.Recovered != 2 || h.Rejected != 0 {
		t.Fatalf("health: %+v", h)
	}
	if h.Epochs != 6 || h.Partial != 2 || h.Full != 4 {
		t.Fatalf("health epochs=%d partial=%d full=%d", h.Epochs, h.Partial, h.Full)
	}
}

// TestForensicsDeadlineAbortStillRecovers pins the deadline path: the clock is
// advanced one step per probe so the budgeted descent is cut off mid-round.
// The localizer blames the unresolved group wholesale — a sound cover — and
// the re-query still serves the epoch.
func TestForensicsDeadlineAbortStillRecovers(t *testing.T) {
	var ticks time.Duration
	base := time.Unix(0, 0)
	r := newForensicsRig(t, core.QuarantineConfig{ConfirmAfter: 1}, func(f *forensics) {
		f.cfg.Deadline = 3 * time.Millisecond
		f.now = func() time.Time {
			ticks++
			return base.Add(ticks * time.Millisecond)
		}
	})

	// Probe 4 (the first atomic probe under agg1) exceeds the deadline; agg1
	// is blamed wholesale and the epoch is still served over sources 4-7.
	res, _ := r.push(t, 1)
	if res.Err != nil || !res.Recovered || res.Sum != 5+6+7+8 {
		t.Fatalf("deadline epoch: %+v", res)
	}
	fs := r.qn.ForensicsStats()
	if fs.DeadlineAborts != 1 {
		t.Fatalf("DeadlineAborts = %d, want 1 (%+v)", fs.DeadlineAborts, fs)
	}
	if fs.QuarantineNow.Confirmed != 1 {
		t.Fatalf("wholesale blame not quarantined: %+v", fs.QuarantineNow)
	}
}

// TestForensicsBudgetAbortStillRecovers pins the probe-budget path the same
// way: Budget 2 allows the whole-set probe and one child probe, then aborts;
// the frontier is blamed wholesale and recovery proceeds over what remains.
func TestForensicsBudgetAbortStillRecovers(t *testing.T) {
	r := newForensicsRig(t, core.QuarantineConfig{ConfirmAfter: 1}, func(f *forensics) {
		f.localizer = core.NewLocalizer(core.LocalizerConfig{MaxProbes: 2})
	})

	res, _ := r.push(t, 1)
	fs := r.qn.ForensicsStats()
	if fs.BudgetAborts != 1 {
		t.Fatalf("BudgetAborts = %d, want 1 (%+v)", fs.BudgetAborts, fs)
	}
	// With only two probes the blame may cover agg1 alone (recoverable) — it
	// must never produce a wrong answer.
	if res.Err == nil && res.Recovered && res.Sum != 5+6+7+8 {
		t.Fatalf("budget-aborted epoch served a wrong sum: %+v", res)
	}
}

func TestEnableForensicsValidates(t *testing.T) {
	q, _, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuerierNode("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	defer qn.Close()
	if err := qn.EnableForensics(ForensicsConfig{}); err == nil {
		t.Fatal("forensics enabled without a probe backend")
	}
	if qn.ForensicsStats() != (ForensicsStats{}) {
		t.Fatal("stats non-zero with forensics disabled")
	}
}

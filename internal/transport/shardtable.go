package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/sies/sies/internal/obs"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// DefaultShards is the epoch-table stripe count when AggregatorConfig.Shards
// is zero. Consecutive epochs map to consecutive stripes (epoch & mask), so
// the window of in-flight epochs spreads across every stripe even when only a
// handful are open at once.
const DefaultShards = 8

// epochSlot is one in-flight epoch inside a shard. All fields are guarded by
// the owning shard's lock.
//
// The fast-path merge happens at ingest: each accepted PSR is folded into the
// slot's lazily-reduced 512-bit accumulator under the shard lock (a few
// carry-chain adds), so a flush in the steady state performs exactly one
// deferred modular reduction for the whole epoch. Overwrites (a reconnected
// child re-sending), leave sweeps and ingest rollbacks poison the accumulator
// by setting dirty; a dirty slot's flush rebuilds the merge from the retained
// per-child reports instead — the slow path only churned epochs pay for.
type epochSlot struct {
	epoch    prf.Epoch
	reports  map[int]report
	acc      uint256.Accumulator // lazy partial over the non-dirty reports' PSRs
	accN     int                 // PSRs folded into acc
	dirty    bool                // acc no longer matches reports; rebuild at flush
	claimed  bool                // handed to the merge plane; nobody else may flush it
	deadline time.Time
	gen      uint64 // membership generation at slot creation (observability)
}

// epochShard is one stripe of the epoch table: a private lock, the open slots
// of the epochs striped here, and this stripe's slice of the flushed-epoch
// dedup window. Keeping the window per shard lets the late-report check ride
// the shard lock the ingest already holds — no global structure on the hot
// path.
type epochShard struct {
	mu      sync.Mutex
	slots   map[uint64]*epochSlot
	flushed *boundedMap[uint64, struct{}]

	_ [40]byte // keep neighbouring shards' hot words off one cache line
}

// epochShards is the aggregator's concurrent epoch table. Epochs stripe
// across shards by their low bits, so child readers ingesting different
// epochs take different locks, and readers racing on the same epoch contend
// only on that epoch's stripe — never on a global mutex.
type epochShards struct {
	mask   uint64
	shards []epochShard

	open      atomic.Int64 // unflushed slots across all shards
	contended *obs.Counter // shard-lock acquisitions that found the lock held
}

// newEpochShards builds a table with n stripes (rounded up to a power of
// two, min 1) whose flushed windows jointly hold about windowCap epochs.
func newEpochShards(n, windowCap int, contended *obs.Counter) *epochShards {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	perShard := windowCap / size
	if perShard < 16 {
		perShard = 16
	}
	t := &epochShards{mask: uint64(size - 1), shards: make([]epochShard, size), contended: contended}
	for i := range t.shards {
		t.shards[i].slots = map[uint64]*epochSlot{}
		t.shards[i].flushed = newBoundedMap[uint64, struct{}](perShard)
	}
	return t
}

// size returns the stripe count.
func (t *epochShards) size() int { return len(t.shards) }

// shard returns epoch t's stripe.
func (t *epochShards) shard(e uint64) *epochShard { return &t.shards[e&t.mask] }

// lock acquires sh.mu, counting the acquisitions that had to wait — the
// shard-contention signal sies_agg_shard_contention_total exposes.
func (t *epochShards) lock(sh *epochShard) {
	if sh.mu.TryLock() {
		return
	}
	if t.contended != nil {
		t.contended.Inc()
	}
	sh.mu.Lock()
}

// hasFlushed reports whether epoch e sits in its stripe's dedup window.
// Callers on the ingest path use the in-lock check instead; this form exists
// for the slow paths that do not already hold the shard lock.
func (t *epochShards) hasFlushed(e uint64) bool {
	sh := t.shard(e)
	t.lock(sh)
	_, ok := sh.flushed.m[e]
	sh.mu.Unlock()
	return ok
}

// markFlushed records epoch e as settled without an open slot — the journal
// replay path uses it while the node is still single-threaded.
func (t *epochShards) markFlushed(e uint64) {
	sh := t.shard(e)
	sh.flushed.put(e, struct{}{})
}

// flushedEpochs snapshots every stripe's dedup window, stripe by stripe in
// insertion order — the deterministic serialisation aggSnapshot writes.
func (t *epochShards) flushedEpochs() []uint64 {
	var out []uint64
	for i := range t.shards {
		sh := &t.shards[i]
		t.lock(sh)
		sh.flushed.each(func(e uint64, _ struct{}) { out = append(out, e) })
		sh.mu.Unlock()
	}
	return out
}

// eachReport visits every report of every open slot under the shard locks,
// one stripe at a time. The checkpoint re-journal walk uses it; fn must not
// retain the report's slices past the call.
func (t *epochShards) eachReport(fn func(report)) {
	for i := range t.shards {
		sh := &t.shards[i]
		t.lock(sh)
		for _, sl := range sh.slots {
			for _, rep := range sl.reports {
				fn(rep)
			}
		}
		sh.mu.Unlock()
	}
}

// sweepChild removes child idx's report from every open slot — the full-leave
// drop that keeps post-leave flushes free of the leaver's data. Slots that
// lose a folded PSR turn dirty so their flush rebuilds from the surviving
// reports. Runs under the aggregator's slow-path write lock; claimed slots
// are swept too (their flush extracts state under the shard lock, after us,
// and so observes the sweep).
func (t *epochShards) sweepChild(idx int) {
	for i := range t.shards {
		sh := &t.shards[i]
		t.lock(sh)
		for _, sl := range sh.slots {
			if rep, ok := sl.reports[idx]; ok {
				delete(sl.reports, idx)
				if rep.psr != nil {
					sl.dirty = true
				}
			}
		}
		sh.mu.Unlock()
	}
}

// claimWhere claims every unclaimed open slot for which keep(epoch, slot)
// reports true, returning the claimed epochs. Callers submit the returned
// epochs to the merge plane after releasing any locks they hold.
func (t *epochShards) claimWhere(keep func(uint64, *epochSlot) bool) []uint64 {
	var out []uint64
	for i := range t.shards {
		sh := &t.shards[i]
		t.lock(sh)
		for e, sl := range sh.slots {
			if !sl.claimed && keep(e, sl) {
				sl.claimed = true
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// claimExpired claims every unclaimed slot whose deadline has passed.
func (t *epochShards) claimExpired(now time.Time) []uint64 {
	return t.claimWhere(func(_ uint64, sl *epochSlot) bool {
		return now.After(sl.deadline)
	})
}

package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
)

// TestNodeCloseIdempotent closes every node type twice — sequentially and
// concurrently — and requires the second close to be a quiet no-op. Shutdown
// paths overlap in practice (a signal handler racing a deferred Close, a
// supervisor and a test harness both cleaning up), and a double close must
// not panic, deadlock or surface a spurious error.
func TestNodeCloseIdempotent(t *testing.T) {
	q, sources, err := core.Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	qn, err := NewQuerierNodeConfig(QuerierConfig{
		ListenAddr: "127.0.0.1:0", StateDir: t.TempDir(),
	}, q)
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- qn.Run() }()

	aggLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aggAddr := aggLn.Addr().String()
	aggLn.Close()
	type built struct {
		node *AggregatorNode
		err  error
	}
	builtCh := make(chan built, 1)
	go func() {
		node, err := NewAggregatorNode(AggregatorConfig{
			ListenAddr: aggAddr, ParentAddr: qn.Addr(),
			NumChildren: 2, Timeout: 250 * time.Millisecond,
			StateDir: t.TempDir(),
		}, field)
		builtCh <- built{node, err}
	}()
	time.Sleep(100 * time.Millisecond)

	srcNodes := make([]*SourceNode, len(sources))
	for i, s := range sources {
		n, err := DialSource(aggAddr, s)
		if err != nil {
			t.Fatal(err)
		}
		srcNodes[i] = n
	}
	b := <-builtCh
	if b.err != nil {
		t.Fatal(b.err)
	}
	aggDone := make(chan error, 1)
	go func() { aggDone <- b.node.Run() }()

	// One epoch end to end, so every node has live connections to tear down.
	for i, n := range srcNodes {
		if err := n.Report(1, uint64(10*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	res := <-qn.Results
	if res.Err != nil || res.Sum != 30 {
		t.Fatalf("epoch 1: %+v", res)
	}

	closers := map[string]func() error{
		"source":     srcNodes[0].Close,
		"source-2":   srcNodes[1].Close,
		"aggregator": b.node.Close,
		"querier":    qn.Close,
	}
	for name, close := range closers {
		if err := close(); err != nil {
			t.Fatalf("%s first Close: %v", name, err)
		}
		if err := close(); err != nil {
			t.Fatalf("%s second Close: %v", name, err)
		}
		// And a concurrent burst: all calls return, none panics.
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := close(); err != nil {
					t.Errorf("%s concurrent Close: %v", name, err)
				}
			}()
		}
		wg.Wait()
	}

	select {
	case err := <-aggDone:
		if err != nil {
			t.Fatalf("aggregator Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("aggregator Run did not exit after Close")
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("querier Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("querier Run did not exit after Close")
	}
}

// Package transport runs a SIES deployment over real TCP connections: each
// source, aggregator and querier is a separate node exchanging
// length-prefixed frames. The in-memory simulator (internal/network) is the
// tool for experiments; this package is the deployment path — cmd/siesnode
// wraps it into a runnable process per role.
//
// Wire protocol (all integers big-endian):
//
//	frame  := length(u32) type(u8) epoch(u64) payload
//	types  := hello | psr | failure | result | leave | member
//
// A child (source or aggregator) opens one TCP connection to its parent and
// sends a hello identifying the set of source ids its subtree covers; the
// hello's epoch field carries the child's *fence* — the highest epoch it may
// already have handed to a different parent (zero for a child that never
// re-parented). The parent answers with a hello-ack (a hello frame with an
// empty payload) whose epoch field carries the parent's resync point — the
// highest epoch it has already settled — so a reconnecting child can skip
// reports the parent would discard anyway. Every epoch the child sends one
// psr frame (the 32-byte PSR) plus, when sources under it failed, a failure
// frame listing the missing ids. The root aggregator's parent is the
// querier, which evaluates and replies with a result frame on the connection
// the final PSR arrived on. A gracefully draining child sends a leave frame
// before closing; member frames carry join/orphan/re-home/leave events up
// the tree so the querier can reconcile its live contributor view.
//
// Fault model: a child whose parent link drops redials with exponential
// backoff + jitter, repeats the hello exchange and resumes at the current
// epoch; the parent matches the returning child to its slot by the coverage
// set in the hello and drops re-sent reports for epochs already forwarded.
// A child whose parent stays dead past the per-address retry budget
// escalates to the next address of its ranked parent list; the fence carried
// by its next hello keeps re-homed epochs single-path (DESIGN.md §15).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame types.
const (
	TypeHello   byte = 1 // payload: contributor-id list (subtree coverage); epoch: fence
	TypePSR     byte = 2 // payload: 32-byte PSR
	TypeFailure byte = 3 // payload: contributor-id list of failed sources
	TypeResult  byte = 4 // payload: result(u64) ‖ ok(u8)
	TypeLeave   byte = 5 // payload: contributor-id list departing gracefully
	TypeMember  byte = 6 // payload: membership event (see membership.go)
)

// MaxFrameSize bounds a frame's payload; large enough for a failure report
// covering every source of the biggest supported deployment chunk.
const MaxFrameSize = 1 << 20

// Frame is one wire message.
type Frame struct {
	Type    byte
	Epoch   uint64
	Payload []byte
}

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// frameHeaderSize is the on-wire overhead per frame: length(u32) + type(u8) +
// epoch(u64).
const frameHeaderSize = 4 + 1 + 8

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice. It is the allocation-free encoding primitive WriteFrame and
// FrameWriter share.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+8+len(f.Payload)))
	dst = append(dst, f.Type)
	dst = binary.BigEndian.AppendUint64(dst, f.Epoch)
	return append(dst, f.Payload...)
}

// putFrameHeader writes the 13-byte header for a frame with plen payload
// bytes into dst, which must have room.
func putFrameHeader(dst []byte, t byte, epoch uint64, plen int) {
	binary.BigEndian.PutUint32(dst[0:4], uint32(1+8+plen))
	dst[4] = t
	binary.BigEndian.PutUint64(dst[5:13], epoch)
}

// frameBufPool recycles encode buffers through encode→write→release so the
// steady-state WriteFrame path allocates nothing.
var frameBufPool = sync.Pool{New: func() any { return &frameBuf{} }}

type frameBuf struct{ b []byte }

// WriteFrame serialises f to w in a single Write call, so a frame either
// reaches the transport whole or not at all — fault injectors that swallow a
// write drop a clean frame rather than desynchronising the stream. The
// encode buffer comes from a pool and is released after the write.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	fb := frameBufPool.Get().(*frameBuf)
	fb.b = AppendFrame(fb.b[:0], f)
	_, err := w.Write(fb.b)
	frameBufPool.Put(fb)
	if err != nil {
		return fmt.Errorf("transport: writing frame: %w", err)
	}
	return nil
}

// ReadFrame parses the next frame from r, allocating a fresh payload the
// caller owns. Loop-heavy readers should use FrameReader, which recycles one
// buffer across frames.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := ReadFrameInto(r, nil, MaxFrameSize)
	return f, err
}

// ReadFrameInto parses the next frame from r into buf, growing it only when
// the frame outsizes its capacity, and returns the (possibly grown) buffer
// for the next call. The frame's Payload aliases the returned buffer and is
// valid until the buffer's next use. Frames whose payload exceeds maxPayload
// are rejected from the length prefix alone, before any allocation.
func ReadFrameInto(r io.Reader, buf []byte, maxPayload int) (Frame, []byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, buf, err // io.EOF propagates cleanly for closed peers
	}
	n := binary.BigEndian.Uint32(hdr)
	if n < 9 {
		return Frame{}, buf, errors.New("transport: frame shorter than its header")
	}
	if maxPayload < 0 || maxPayload > MaxFrameSize {
		maxPayload = MaxFrameSize
	}
	if n > uint32(maxPayload)+9 {
		return Frame{}, buf, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, buf, fmt.Errorf("transport: reading frame body: %w", err)
	}
	return Frame{
		Type:    body[0],
		Epoch:   binary.BigEndian.Uint64(body[1:9]),
		Payload: body[9:n],
	}, buf, nil
}

// FrameReader reads frames from one stream, recycling a single payload
// buffer across calls — the fix for ReadFrame's per-frame allocation on hot
// receive loops. Returned frames alias the internal buffer: a frame is valid
// only until the next Read. MaxPayload (default MaxFrameSize) rejects
// oversized frames before any allocation.
type FrameReader struct {
	r   io.Reader
	buf []byte

	// MaxPayload caps accepted payload sizes; 0 means MaxFrameSize. Peers
	// that only ever exchange small frames can set a tight bound so a
	// corrupt or hostile length prefix can't force a large allocation.
	MaxPayload int
}

// NewFrameReader wraps r. Frames returned by Read share one buffer.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Read parses the next frame. The frame's Payload aliases the reader's
// internal buffer and is invalidated by the following Read — callers that
// keep payload bytes across frames must copy them out.
func (fr *FrameReader) Read() (Frame, error) {
	max := fr.MaxPayload
	if max <= 0 {
		max = MaxFrameSize
	}
	f, buf, err := ReadFrameInto(fr.r, fr.buf, max)
	fr.buf = buf
	return f, err
}

// EncodeResult builds a result payload.
func EncodeResult(sum uint64, ok bool) []byte {
	out := make([]byte, 9)
	binary.BigEndian.PutUint64(out, sum)
	if ok {
		out[8] = 1
	}
	return out
}

// DecodeResult parses a result payload.
func DecodeResult(p []byte) (sum uint64, ok bool, err error) {
	if len(p) != 9 {
		return 0, false, errors.New("transport: malformed result payload")
	}
	return binary.BigEndian.Uint64(p), p[8] == 1, nil
}

// Package transport runs a SIES deployment over real TCP connections: each
// source, aggregator and querier is a separate node exchanging
// length-prefixed frames. The in-memory simulator (internal/network) is the
// tool for experiments; this package is the deployment path — cmd/siesnode
// wraps it into a runnable process per role.
//
// Wire protocol (all integers big-endian):
//
//	frame  := length(u32) type(u8) epoch(u64) payload
//	types  := hello | psr | failure | result
//
// A child (source or aggregator) opens one TCP connection to its parent and
// sends a hello identifying the set of source ids its subtree covers; the
// parent answers with a hello-ack (a hello frame with an empty payload) whose
// epoch field carries the parent's resync point — the highest epoch it has
// already settled — so a reconnecting child can skip reports the parent would
// discard anyway. Every epoch the child sends one psr frame (the 32-byte PSR)
// plus, when sources under it failed, a failure frame listing the missing
// ids. The root aggregator's parent is the querier, which evaluates and
// replies with a result frame on the connection the final PSR arrived on.
//
// Fault model: a child whose parent link drops redials with exponential
// backoff + jitter, repeats the hello exchange and resumes at the current
// epoch; the parent matches the returning child to its slot by the coverage
// set in the hello and drops re-sent reports for epochs already forwarded.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types.
const (
	TypeHello   byte = 1 // payload: contributor-id list (subtree coverage)
	TypePSR     byte = 2 // payload: 32-byte PSR
	TypeFailure byte = 3 // payload: contributor-id list of failed sources
	TypeResult  byte = 4 // payload: result(u64) ‖ ok(u8)
)

// MaxFrameSize bounds a frame's payload; large enough for a failure report
// covering every source of the biggest supported deployment chunk.
const MaxFrameSize = 1 << 20

// Frame is one wire message.
type Frame struct {
	Type    byte
	Epoch   uint64
	Payload []byte
}

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// WriteFrame serialises f to w in a single Write call, so a frame either
// reaches the transport whole or not at all — fault injectors that swallow a
// write drop a clean frame rather than desynchronising the stream.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+1+8+len(f.Payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(1+8+len(f.Payload)))
	buf[4] = f.Type
	binary.BigEndian.PutUint64(buf[5:13], f.Epoch)
	copy(buf[13:], f.Payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("transport: writing frame: %w", err)
	}
	return nil
}

// ReadFrame parses the next frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err // io.EOF propagates cleanly for closed peers
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 9 {
		return Frame{}, errors.New("transport: frame shorter than its header")
	}
	if n > MaxFrameSize+9 {
		return Frame{}, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("transport: reading frame body: %w", err)
	}
	return Frame{
		Type:    body[0],
		Epoch:   binary.BigEndian.Uint64(body[1:9]),
		Payload: body[9:],
	}, nil
}

// EncodeResult builds a result payload.
func EncodeResult(sum uint64, ok bool) []byte {
	out := make([]byte, 9)
	binary.BigEndian.PutUint64(out, sum)
	if ok {
		out[8] = 1
	}
	return out
}

// DecodeResult parses a result payload.
func DecodeResult(p []byte) (sum uint64, ok bool, err error) {
	if len(p) != 9 {
		return 0, false, errors.New("transport: malformed result payload")
	}
	return binary.BigEndian.Uint64(p), p[8] == 1, nil
}

// Pipelined querier ingest: the batched replacement for the serial serve
// loop. One goroutine reads frames off the root connection (recycling a
// single payload buffer), worker goroutines decode and verify epochs
// concurrently, and commits go through the journal's group-commit path — the
// append happens under qn.mu, the fsync is shared across whatever set of
// workers is committing at that moment. Result acks coalesce through a
// FrameWriter into vectored writes on the same connection.
//
// The consistency contract of the serial path is preserved exactly: a commit
// is on stable storage before its result is emitted or acked (fsync-before-
// emit, DESIGN.md §12), an epoch is emitted at most once (the committed
// window plus recordWith's concurrent-duplicate guard), and a crashed node
// emits nothing. What changes is only ordering: epochs may verify, commit and
// emit out of epoch order, which every consumer of Results already tolerates
// (the restart soak and the simulator key results by epoch).
package transport

import (
	"bufio"
	"encoding/binary"
	"net"
	"runtime"
	"sync"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/obs"
	"github.com/sies/sies/internal/prf"
)

// PipelineConfig tunes the querier's pipelined serve path. Zero values select
// the defaults.
type PipelineConfig struct {
	// Workers is the number of decode/verify goroutines (default
	// min(4, GOMAXPROCS)). One worker still pipelines: epoch t+1 decodes
	// while epoch t's fsync is in flight on the journal.
	Workers int
	// Depth bounds decoded-but-unclaimed frames between the ingest reader and
	// the workers (default 128) — backpressure against a root that bursts
	// faster than verification drains.
	Depth int
	// Ack tunes the result-ack FrameWriter (batch sizes, flush deadline).
	// Its Sink is ignored — acks always write to the serving connection.
	Ack FrameWriterConfig
}

func (p *PipelineConfig) applyDefaults() {
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
		if p.Workers > 4 {
			p.Workers = 4
		}
	}
	if p.Depth <= 0 {
		p.Depth = 128
	}
}

// pipeJob is one frame in flight between the ingest reader and a worker. The
// payload is copied out of the FrameReader's recycled buffer; jobs themselves
// recycle through a pool so steady-state ingest allocates nothing.
type pipeJob struct {
	typ     byte
	epoch   uint64
	payload []byte
}

var pipeJobPool = sync.Pool{New: func() any { return new(pipeJob) }}

// servePipelined handles one root connection until it closes. The caller
// (serve) has already completed the hello handshake.
func (qn *QuerierNode) servePipelined(conn net.Conn) error {
	cfg := qn.pipeline
	ackCfg := cfg.Ack
	ackCfg.Sink = &ConnSink{W: conn}
	if ackCfg.OnFlush == nil {
		ackCfg.OnFlush = func(frames, _ int) {
			qn.obs.pipeAckBatchFrames.Observe(float64(frames))
		}
	}
	ackW := NewFrameWriter(ackCfg)

	jobs := make(chan *pipeJob, cfg.Depth)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qn.pipeWorker(jobs, ackW)
		}()
	}

	// Buffered reads drain a whole coalesced batch from the root in one
	// syscall; every retained byte is copied below, so buffer reuse is safe.
	fr := NewFrameReader(bufio.NewReader(conn))
	for {
		f, err := fr.Read()
		if err != nil {
			break // root closed or crashed: drain the pipeline, await redial
		}
		// Committed epochs re-ack straight from the stored result without
		// occupying a worker — the root re-sending after a crash on either
		// side must not trigger re-evaluation.
		if ack, committed := qn.committedAck(prf.Epoch(f.Epoch)); committed {
			if f.Type == TypePSR {
				qn.enqueueAck(ackW, f.Epoch, ack)
			}
			continue
		}
		switch f.Type {
		case TypeHello:
			// Mid-stream coverage refresh from a root whose subtree re-homed;
			// it may raise the fence.
			qn.noteRootFence(f.Epoch)
			continue
		case TypeMember:
			if ev, err := decodeMember(f.Payload, qn.q.Params().N()); err == nil {
				qn.tree.apply(ev)
			}
			continue
		case TypeLeave:
			if ids, err := core.DecodeContributorsBounded(f.Payload, qn.q.Params().N()); err == nil {
				qn.tree.apply(memberEvent{kind: memberLeave, label: conn.RemoteAddr().String(), ids: ids})
			}
			continue
		case TypePSR, TypeFailure:
			// Uncommitted data at or below the fence is a zombie link's late
			// flush of a re-homed subtree: dropped, never evaluated.
			if qn.fencedEpoch(f.Epoch) {
				qn.obs.fenceRejects.Inc()
				continue
			}
		default:
			continue // result frames are ignored mid-stream
		}
		job := pipeJobPool.Get().(*pipeJob)
		job.typ, job.epoch = f.Type, f.Epoch
		job.payload = append(job.payload[:0], f.Payload...)
		qn.obs.pipeJobs.Inc()
		jobs <- job
		qn.obs.pipeIngestDepth.Set(int64(len(jobs)))
	}
	close(jobs)
	wg.Wait()
	qn.obs.pipeIngestDepth.Set(0)
	// Flush the last acks before serve closes the connection; after a sticky
	// error (root gone first) there is nothing left to deliver.
	ackW.Close()
	return nil
}

// pipeWorker decodes, verifies and records jobs until the channel closes.
// Each worker mirrors one iteration of the serial serve loop; recordWith's
// grouped mode supplies the cross-worker commit coordination.
func (qn *QuerierNode) pipeWorker(jobs <-chan *pipeJob, ackW *FrameWriter) {
	n := qn.q.Params().N()
	field := qn.q.Params().Field()
	for job := range jobs {
		t := prf.Epoch(job.epoch)
		var out EpochResult
		ackable := true
		switch job.typ {
		case TypePSR:
			qn.obs.tracer.Begin(job.epoch)
			qn.obs.tracer.Mark(job.epoch, obs.StageReport)
			psr, failed, err := decodeReport(job.payload, field, n)
			if err != nil {
				out = EpochResult{Epoch: t, Err: err}
				ackable = false // the serial path records decode garbage without acking
				break
			}
			failed = qn.withDeparted(failed)
			var contributors []int // nil = all sources, the schedule's fast path
			if len(failed) > 0 {
				contributors = core.Subtract(n, failed)
			}
			start := time.Now()
			res, evalErr := qn.sched.Evaluate(t, psr, contributors)
			qn.obs.evalSeconds.Observe(time.Since(start).Seconds())
			out = EpochResult{Epoch: t, Failed: failed, Partial: len(failed) > 0, Err: evalErr}
			switch {
			case evalErr == nil:
				qn.obs.tracer.Mark(job.epoch, obs.StageVerify)
				out.Sum = res.Sum
				out.Contributors = res.N
				out.Coverage = float64(res.N) / float64(n)
				qn.forMu.Lock()
				qn.tickForensics()
				qn.forMu.Unlock()
			case qn.forensics != nil && integrityRejection(evalErr):
				qn.obs.tracer.Mark(job.epoch, obs.StageReject)
				qn.obs.tracer.Mark(job.epoch, obs.StageForensics)
				// Localization probes the live tree and mutates the quarantine
				// registry — inherently serial, so concurrent rejections queue.
				qn.forMu.Lock()
				out = qn.recover(t, failed, out)
				qn.forMu.Unlock()
			default:
				qn.obs.tracer.Mark(job.epoch, obs.StageReject)
			}
		case TypeFailure:
			qn.obs.tracer.Begin(job.epoch)
			qn.obs.tracer.Mark(job.epoch, obs.StageReport)
			failed, err := core.DecodeContributorsBounded(job.payload, n)
			if err != nil {
				out = EpochResult{Epoch: t, Err: err}
			} else {
				out = EpochResult{Epoch: t, Partial: true, Failed: failed, Err: ErrNoContributors}
			}
			ackable = false // failure frames are never acked, matching serial
		}
		ack, ok := qn.recordWith(out, true)
		if ok && ackable {
			qn.enqueueAck(ackW, job.epoch, ack)
		}
		pipeJobPool.Put(job)
	}
}

// enqueueAck queues one result ack on the coalescing writer. Ack failures are
// tolerated exactly like the serial path's: the root departed, evaluation
// continues, and re-sent epochs re-ack once it returns.
func (qn *QuerierNode) enqueueAck(ackW *FrameWriter, epoch uint64, ack ackInfo) {
	_ = ackW.EnqueueAppend(TypeResult, epoch, 9, func(dst []byte) {
		binary.BigEndian.PutUint64(dst, ack.sum)
		if ack.ok {
			dst[8] = 1
		} else {
			dst[8] = 0
		}
	})
}

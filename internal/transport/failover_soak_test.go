package transport

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/obs"
	"github.com/sies/sies/internal/prf"
)

// failoverSoakReport is the availability-under-churn artifact appended to
// $SIES_FAILOVER_STATS (CI uploads it with the failover-soak job).
type failoverSoakReport struct {
	Name            string `json:"name"`
	Seed            int64  `json:"seed"`
	Epochs          int    `json:"epochs"`
	Kills           int    `json:"kills"`
	Served          int    `json:"served"`
	Lost            int    `json:"lost"`
	Full            int    `json:"full"`
	Partial         int    `json:"partial"`
	WrongAnswers    int    `json:"wrong_answers"`
	Duplicates      int    `json:"duplicates"`
	Rejected        int    `json:"rejected"`
	SourceFailovers int    `json:"source_failovers"`
	Reparents       uint64 `json:"reparents"`
	Rehomes         uint64 `json:"rehomes"`
	MaxRecoveryLag  int    `json:"max_recovery_lag_epochs"`
}

func writeFailoverStats(t *testing.T, rep failoverSoakReport) {
	t.Helper()
	path := os.Getenv("SIES_FAILOVER_STATS")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("failover stats: %v", err)
		return
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		t.Logf("failover stats: %v", err)
	}
}

// TestFailoverChaosSoak is the self-healing-tree proof over live TCP: a
// three-level deployment (6 sources → two interior aggregators + one standby
// → AcceptNew root → querier) in which EVERY interior aggregator is
// permanently killed mid-run. Sources carry ranked parent lists and fail over
// to the standby when their per-address backoff budget exhausts; the standby
// re-hellos the root mid-stream, which steals the dead subtree's coverage.
// The verdict: zero wrong SUMs, zero duplicate epochs, zero rejections,
// coverage back to 100% of surviving sources within a bounded number of
// epochs after each kill, and the querier's membership view (Health + metrics
// scrape) showing at least one re-parent per kill.
func TestFailoverChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("failover soak is long; skipped with -short")
	}
	const (
		nSources    = 6
		seed        = int64(20260807)
		epochs      = 200
		pace        = 15 * time.Millisecond
		killA1At    = prf.Epoch(40)
		killA2At    = prf.Epoch(100)
		recoveryLag = 45 // epochs within which full coverage must return
	)
	q, sources, err := core.Setup(nSources)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	qAddr := freePort(t)
	rAddr := freePort(t)
	a1Addr := freePort(t)
	a2Addr := freePort(t)
	sAddr := freePort(t)

	qn, err := NewQuerierNodeConfig(QuerierConfig{ListenAddr: qAddr}, q)
	if err != nil {
		t.Fatal(err)
	}
	go qn.Run()
	msrv := httptest.NewServer(obs.NewHandler(obs.ServerConfig{Registry: qn.Metrics(), Tracer: qn.Tracer()}))
	defer msrv.Close()

	// Results drain concurrently; the channel closes when the querier does.
	var results []EpochResult
	resultsDone := make(chan struct{})
	go func() {
		defer close(resultsDone)
		for res := range qn.Results {
			results = append(results, res)
		}
	}()

	backoff := Backoff{Initial: 10 * time.Millisecond, Max: 100 * time.Millisecond, MaxAttempts: 3, Seed: seed}

	// Build order: root first (it must listen before A1/A2/S dial up), then
	// the interiors, then sources. Construction of an aggregator blocks until
	// its NumChildren children arrive, so each runs on its own goroutine.
	type aggProc struct {
		mu   sync.Mutex
		node *AggregatorNode
		run  chan error
	}
	launch := func(name string, cfg AggregatorConfig) *aggProc {
		p := &aggProc{run: make(chan error, 1)}
		go func() {
			// Everything launches concurrently, so an upstream listener may
			// not be up yet; a failed construction releases its own listener
			// (closeAll), making the retry safe.
			deadline := time.Now().Add(10 * time.Second)
			var node *AggregatorNode
			var err error
			for {
				node, err = NewAggregatorNode(cfg, field)
				if err == nil {
					break
				}
				t.Logf("%s: construction attempt failed: %v", name, err)
				if time.Now().After(deadline) {
					p.run <- err
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			t.Logf("%s: up", name)
			p.mu.Lock()
			p.node = node
			p.mu.Unlock()
			p.run <- node.Run()
		}()
		return p
	}
	get := func(name string, p *aggProc) *AggregatorNode {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			p.mu.Lock()
			n := p.node
			p.mu.Unlock()
			if n != nil {
				return n
			}
			if time.Now().After(deadline) {
				select {
				case err := <-p.run:
					t.Fatalf("%s never came up: %v", name, err)
				default:
					t.Fatalf("%s never came up", name)
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The root waits for all three interiors — A1, A2 and the (empty-coverage)
	// standby — before dialing the querier, so its first upstream hello claims
	// the full deployment. It launches first: its listener must be bound
	// before the interiors dial up.
	root := launch("root", AggregatorConfig{
		ListenAddr: rAddr, ParentAddr: qAddr, NumChildren: 3, AcceptNew: true,
		Timeout: 600 * time.Millisecond, ReconnectWindow: time.Minute,
		Backoff: backoff, MaxSources: nSources,
	})
	time.Sleep(100 * time.Millisecond)
	a1 := launch("a1", AggregatorConfig{
		ListenAddr: a1Addr, ParentAddr: rAddr, NumChildren: 3,
		Timeout: 300 * time.Millisecond, ReconnectWindow: time.Minute,
		Backoff: backoff, MaxSources: nSources,
	})
	a2 := launch("a2", AggregatorConfig{
		ListenAddr: a2Addr, ParentAddr: rAddr, NumChildren: 3,
		Timeout: 300 * time.Millisecond, ReconnectWindow: time.Minute,
		Backoff: backoff, MaxSources: nSources,
	})
	// The standby starts childless: AcceptNew lets re-homing sources attach
	// mid-run, and its coverage-growing re-hello makes the root steal the
	// dead subtree's attribution.
	standby := launch("standby", AggregatorConfig{
		ListenAddr: sAddr, ParentAddr: rAddr, NumChildren: 0, AcceptNew: true,
		Timeout: 300 * time.Millisecond, ReconnectWindow: time.Minute,
		Backoff: backoff, MaxSources: nSources,
	})
	time.Sleep(100 * time.Millisecond)

	srcs := make([]*SourceNode, nSources)
	for i, s := range sources {
		first := a1Addr
		if i >= 3 {
			first = a2Addr
		}
		cfg := SourceConfig{ParentAddrs: []string{first, sAddr}, Backoff: backoff}
		// The interior listeners come up asynchronously; retry the initial
		// dial until they accept.
		deadline := time.Now().Add(10 * time.Second)
		for {
			srcs[i], err = DialSourceWith(cfg, s)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	a1Node, a2Node := get("a1", a1), get("a2", a2)
	get("root", root)
	get("standby", standby)

	// One reporter per source keeps epoch order; a dead parent just delays a
	// report inside the failover-dialing retry loop.
	var reporters sync.WaitGroup
	epochCh := make([]chan prf.Epoch, nSources)
	for i := range epochCh {
		epochCh[i] = make(chan prf.Epoch, epochs+8)
		reporters.Add(1)
		go func(i int) {
			defer reporters.Done()
			for e := range epochCh[i] {
				// An exhausted full sweep is a missed epoch for this source;
				// the epoch settles partial and is validated like any other.
				_ = srcs[i].Report(e, soakValue(i, e))
			}
		}(i)
	}

	kills := 0
	for e := prf.Epoch(1); e <= epochs; e++ {
		for i := range epochCh {
			epochCh[i] <- e
		}
		switch e {
		case killA1At:
			a1Node.Crash() // permanent: nothing ever restarts it
			kills++
		case killA2At:
			a2Node.Crash()
			kills++
		}
		time.Sleep(pace)
	}

	// Drain: reporters finish, in-flight epochs settle through the deadline
	// flushes, then tear down leaves-first so the root's orphan flush clears
	// what remains.
	for i := range epochCh {
		close(epochCh[i])
	}
	reporters.Wait()
	time.Sleep(2 * time.Second)

	// Snapshot the membership view while the healed tree is still standing:
	// tearing the processes down below emits its own orphan churn, which says
	// nothing about how the tree weathered the kills.
	health := qn.Health()
	metrics := parsePrometheus(t, scrape(t, msrv.URL+"/metrics"))

	failovers := 0
	for _, s := range srcs {
		failovers += s.Failovers()
		s.Close()
	}
	<-a1.run // crashed generations: reap, error or not
	<-a2.run
	time.Sleep(500 * time.Millisecond)
	get("standby", standby).Close()
	<-standby.run
	get("root", root).Close()
	<-root.run
	qn.Close()
	<-resultsDone

	// Every emitted SUM must be exactly the sum of its contributor set's
	// deterministic readings — failover may cost coverage, never exactness.
	var wrong, dup, rejected, full, partial int
	seen := map[prf.Epoch]int{}
	lastFull := prf.Epoch(0)
	fullByEpoch := map[prf.Epoch]bool{}
	for _, res := range results {
		if res.Err != nil {
			rejected++
			t.Errorf("epoch %d rejected: %v", res.Epoch, res.Err)
			continue
		}
		seen[res.Epoch]++
		failed := map[int]bool{}
		for _, id := range res.Failed {
			failed[id] = true
		}
		var want uint64
		for i := 0; i < nSources; i++ {
			if !failed[i] {
				want += soakValue(i, res.Epoch)
			}
		}
		if res.Sum != want {
			wrong++
			t.Errorf("epoch %d: sum %d, want %d (failed %v)", res.Epoch, res.Sum, want, res.Failed)
		}
		if res.Partial {
			partial++
		} else {
			full++
			fullByEpoch[res.Epoch] = true
			if res.Epoch > lastFull {
				lastFull = res.Epoch
			}
		}
	}
	for e, n := range seen {
		if n > 1 {
			dup++
			t.Errorf("epoch %d answered %d times", e, n)
		}
	}
	served := len(seen)
	lost := epochs - served
	if served < epochs*8/10 {
		t.Errorf("served %d of %d epochs; the tree wedged somewhere", served, epochs)
	}

	// Bounded re-homing: full coverage returns within recoveryLag epochs of
	// each kill, and holds at the end of the run.
	maxLag := 0
	for _, kill := range []prf.Epoch{killA1At, killA2At} {
		recovered := false
		for e := kill + 1; e <= kill+recoveryLag && e <= epochs; e++ {
			if fullByEpoch[e] {
				if lag := int(e - kill); lag > maxLag {
					maxLag = lag
				}
				recovered = true
				break
			}
		}
		if !recovered {
			t.Errorf("no full-coverage epoch within %d epochs of the kill at %d", recoveryLag, kill)
		}
	}
	if lastFull < killA2At {
		t.Errorf("last full epoch %d precedes the second kill at %d: coverage never returned", lastFull, killA2At)
	}

	// Each source group failed over once: 6 sources, each with at least one
	// escalation to the standby.
	if failovers < nSources {
		t.Errorf("source failovers = %d, want >= %d (one per source)", failovers, nSources)
	}

	// The querier's reconciled membership view saw the churn: at least one
	// re-parent per kill (in truth one per re-homed source), no one left
	// orphaned, and the same story through the metrics scrape.
	if health.Tree.Reparents < uint64(kills) {
		t.Errorf("Health().Tree.Reparents = %d, want >= %d kills", health.Tree.Reparents, kills)
	}
	if health.Tree.Orphaned != 0 {
		t.Errorf("Health().Tree.Orphaned = %d at end of run, want 0", health.Tree.Orphaned)
	}
	if got := metrics["sies_tree_reparents_total"]; got < float64(kills) {
		t.Errorf("scraped sies_tree_reparents_total = %v, want >= %d kills", got, kills)
	}
	if got := metrics["sies_epochs_rejected_total"]; got != 0 {
		t.Errorf("scraped sies_epochs_rejected_total = %v, want 0", got)
	}

	t.Logf("served %d/%d (full %d, partial %d, lost %d), %d kills, %d source failovers, %d reparents, max recovery lag %d epochs",
		served, epochs, full, partial, lost, kills, failovers, health.Tree.Reparents, maxLag)

	writeFailoverStats(t, failoverSoakReport{
		Name: "failover-chaos-soak", Seed: seed, Epochs: epochs, Kills: kills,
		Served: served, Lost: lost, Full: full, Partial: partial,
		WrongAnswers: wrong, Duplicates: dup, Rejected: rejected,
		SourceFailovers: failovers,
		Reparents:       health.Tree.Reparents, Rehomes: health.Tree.Rehomes,
		MaxRecoveryLag: maxLag,
	})
}

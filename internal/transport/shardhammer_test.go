package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/race"
)

// hammerDial is dialChild for use off the test goroutine: errors are returned,
// not fataled. A non-zero fence declares epochs already handed to a previous
// parent.
func hammerDial(addr string, covers []int, fence uint64) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, Frame{Type: TypeHello, Epoch: fence, Payload: core.EncodeContributors(covers)}); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := ReadFrame(conn)
	if err != nil || ack.Type != TypeHello {
		conn.Close()
		return nil, fmt.Errorf("hello-ack: %+v (%v)", ack, err)
	}
	conn.SetReadDeadline(time.Time{})
	return conn, nil
}

func hammerReport(conn net.Conn, psr core.PSR, epoch prf.Epoch) error {
	return WriteFrame(conn, Frame{Type: TypePSR, Epoch: uint64(epoch), Payload: encodeReport(psr, nil)})
}

// TestAggregatorShardedIngestHammer drives the sharded epoch table through
// every membership transition at once: ten children stream interleaved epochs
// full-tilt while some of them drop and redial mid-run (concurrent hello), one
// leaves gracefully (concurrent leave + sweep + drain), and a re-homing child
// steals two coverage slots with a fence (concurrent steal). The fake parent
// cryptographically verifies every flush: a dropped report, a double-merged
// report, or a mis-attributed contributor set makes EvaluateSubset fail with
// overwhelming probability, and the expected-value check catches the rest.
// Run under -race this doubles as the lock-hierarchy soak for the merge plane.
func TestAggregatorShardedIngestHammer(t *testing.T) {
	const (
		nSources  = 10
		nChildren = 10  // child i covers source {i}
		epochs    = 120 // every one must flush exactly once
		tLeave    = 60  // child 9 sends TypeLeave after this epoch
		tSteal    = 90  // children 0,1 stop; a re-homer takes their coverage
	)
	val := func(s int, e prf.Epoch) uint64 { return uint64(s+1)*1000 + uint64(e) }

	q, sources, err := core.Setup(nSources)
	if err != nil {
		t.Fatal(err)
	}
	field := q.Params().Field()

	parentLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer parentLn.Close()
	aggAddr := freeAddr(t)

	type built struct {
		node *AggregatorNode
		err  error
	}
	builtCh := make(chan built, 1)
	go func() {
		node, err := NewAggregatorNode(AggregatorConfig{
			ListenAddr: aggAddr, ParentAddr: parentLn.Addr().String(),
			NumChildren: nChildren, Timeout: 1500 * time.Millisecond,
			AcceptNew: true,
		}, field)
		builtCh <- built{node, err}
	}()

	time.Sleep(50 * time.Millisecond) // listener up
	conns := make([]net.Conn, nChildren)
	for i := range conns {
		conns[i], _ = dialChild(t, aggAddr, []int{i})
	}

	parent, err := parentLn.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	if f := readUpstream(t, parent); f.Type != TypeHello {
		t.Fatalf("expected upstream hello, got type %d", f.Type)
	}
	if err := WriteFrame(parent, Frame{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}

	b := <-builtCh
	if b.err != nil {
		t.Fatal(b.err)
	}
	node := b.node
	runDone := make(chan error, 1)
	go func() { runDone <- node.Run() }()

	errCh := make(chan error, nChildren+2)
	var sendWG sync.WaitGroup
	var stolen sync.WaitGroup // children 0 and 1 finished their half
	stolen.Add(2)

	for i := 0; i < nChildren; i++ {
		i := i
		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			if i < 2 {
				defer stolen.Done()
			}
			conn := conns[i]
			defer func() { conn.Close() }()
			last := epochs
			switch {
			case i < 2:
				last = tSteal
			case i == nChildren-1:
				last = tLeave
			}
			for e := prf.Epoch(1); int(e) <= last; e++ {
				psr, err := sources[i].Encrypt(e, val(i, e))
				if err != nil {
					errCh <- fmt.Errorf("child %d epoch %d: %w", i, e, err)
					return
				}
				if err := hammerReport(conn, psr, e); err != nil {
					errCh <- fmt.Errorf("child %d epoch %d: %w", i, e, err)
					return
				}
				// Children 0, 3, 6, 9 drop and immediately redial mid-run so
				// attach races live ingest from the other children.
				if i%3 == 0 && (int(e) == 40 || int(e) == 80) && int(e) < last {
					conn.Close()
					nc, err := hammerDial(aggAddr, []int{i}, 0)
					if err != nil {
						errCh <- fmt.Errorf("child %d redial: %w", i, err)
						return
					}
					conn = nc
				}
				time.Sleep(time.Millisecond) // keep the cohort loosely in step
			}
			if i == nChildren-1 {
				if err := WriteFrame(conn, Frame{Type: TypeLeave, Payload: core.EncodeContributors([]int{i})}); err != nil {
					errCh <- fmt.Errorf("child %d leave: %w", i, err)
				}
			}
		}()
	}

	// The re-homer: once children 0 and 1 stop, it dials with their combined
	// coverage and a fence at the takeover epoch, sending merged PSRs for both
	// sources — the steal path, concurrent with the rest of the cohort.
	sendWG.Add(1)
	go func() {
		defer sendWG.Done()
		stolen.Wait()
		merger := core.NewAggregator(field)
		conn, err := hammerDial(aggAddr, []int{0, 1}, tSteal)
		if err != nil {
			errCh <- fmt.Errorf("re-homer dial: %w", err)
			return
		}
		defer conn.Close()
		for e := prf.Epoch(tSteal + 1); int(e) <= epochs; e++ {
			p0, err0 := sources[0].Encrypt(e, val(0, e))
			p1, err1 := sources[1].Encrypt(e, val(1, e))
			if err0 != nil || err1 != nil {
				errCh <- fmt.Errorf("re-homer epoch %d: %v %v", e, err0, err1)
				return
			}
			if err := hammerReport(conn, merger.Merge(p0, p1), e); err != nil {
				errCh <- fmt.Errorf("re-homer epoch %d: %w", e, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Verify every flush at the fake parent. The candidate contributor set is
	// derived from the frame's failed list minus every graceful departure seen
	// so far on the wire (the drain barrier guarantees flushes carrying a
	// leaver's data are written before the leave relay). Verification is
	// cryptographic: a wrong set — dropped report, double merge, stale leaver
	// data — fails EvaluateSubset.
	seen := make(map[prf.Epoch]bool, epochs)
	departed := make(map[int]bool)
	deadline := time.Now().Add(60 * time.Second)
	for len(seen) < epochs {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d epochs flushed", len(seen), epochs)
		}
		parent.SetReadDeadline(time.Now().Add(10 * time.Second))
		f, err := ReadFrame(parent)
		if err != nil {
			t.Fatalf("reading upstream with %d/%d epochs flushed: %v", len(seen), epochs, err)
		}
		switch f.Type {
		case TypeMember, TypeHello:
			continue
		case TypeLeave:
			ids, err := core.DecodeContributorsBounded(f.Payload, nSources)
			if err != nil {
				t.Fatalf("leave relay: %v", err)
			}
			for _, id := range ids {
				departed[id] = true
			}
		case TypeFailure:
			e := prf.Epoch(f.Epoch)
			if seen[e] {
				t.Fatalf("epoch %d flushed twice (failure frame)", e)
			}
			seen[e] = true
		case TypePSR:
			e := prf.Epoch(f.Epoch)
			if seen[e] {
				t.Fatalf("epoch %d flushed twice", e)
			}
			seen[e] = true
			psr, failed, err := decodeReport(f.Payload, field, DefaultMaxSources)
			if err != nil {
				t.Fatalf("epoch %d: %v", e, err)
			}
			cand := make([]int, 0, nSources)
			for _, id := range core.Subtract(nSources, failed) {
				if !departed[id] {
					cand = append(cand, id)
				}
			}
			res, err := q.EvaluateSubset(e, psr, cand)
			if err != nil {
				t.Fatalf("epoch %d: contributor set %v (failed %v, departed %v) does not verify: %v",
					e, cand, failed, departed, err)
			}
			var want uint64
			for _, s := range cand {
				want += val(s, e)
			}
			if res.Sum != want {
				t.Fatalf("epoch %d: SUM %d over %v, want %d", e, res.Sum, cand, want)
			}
		default:
			t.Fatalf("unexpected upstream frame type %d", f.Type)
		}
	}

	sendWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	node.Close()
	if err := <-runDone; err != nil {
		t.Fatalf("aggregator run: %v", err)
	}
}

// TestFlushScratchZeroAlloc pins the churn-path scratch reuse: extracting the
// contributor set, canonicalising it and computing the failed complement must
// not allocate per epoch once the mergeScratch buffers are warm. Sits beside
// the other hotpath gates; skipped under -race like them.
func TestFlushScratchZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation inhibits stack allocation; gate runs in the non-race suite")
	}
	covers := make([]int, 64)
	for i := range covers {
		covers[i] = i
	}
	reported := []int{63, 3, 17, 40, 3} // unsorted with a duplicate: forces the sort+dedup path
	w := &mergeScratch{
		contrib: make([]int, 0, 128),
		minus:   make([]int, 0, 128),
		failed:  make([]int, 0, 128),
	}
	if n := testing.AllocsPerRun(2000, func() {
		w.contrib = append(w.contrib[:0], reported...)
		w.contrib = normalizeIDsInPlace(w.contrib)
		w.failed = idsMinusInto(w.failed[:0], covers, w.contrib)
	}); n != 0 {
		t.Fatalf("flush scratch path allocates %v per epoch, want 0", n)
	}
}

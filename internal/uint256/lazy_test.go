package uint256

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/sies/sies/internal/race"
)

// lazyTestFields returns the two reduction regimes: the pseudo-Mersenne
// default and a generic prime exercising the Knuth path.
func lazyTestFields(t *testing.T) []*Field {
	t.Helper()
	return []*Field{NewDefaultField(), genericField(t)}
}

func TestSumLazyMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, f := range lazyTestFields(t) {
		for _, n := range []int{0, 1, 2, 3, 17, 64, 257, 1024} {
			xs := make([]Int, n)
			for i := range xs {
				xs[i] = f.Reduce(randInt(rng))
			}
			var seq Int
			for _, x := range xs {
				seq = f.Add(seq, x)
			}
			if lazy := f.SumLazy(xs); lazy != seq {
				t.Fatalf("field %v n=%d: lazy %v != sequential %v", f.Modulus(), n, lazy, seq)
			}
		}
	}
}

// TestSumLazyUnreducedInputs checks the stronger contract the schedule engine
// relies on: summands may exceed p (raw HMAC outputs) and the single final
// reduction still matches reducing every element first.
func TestSumLazyUnreducedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, f := range lazyTestFields(t) {
		xs := make([]Int, 300)
		for i := range xs {
			xs[i] = randInt(rng) // deliberately unreduced
		}
		var seq Int
		for _, x := range xs {
			seq = f.Add(seq, f.Reduce(x))
		}
		if lazy := f.SumLazy(xs); lazy != seq {
			t.Fatalf("field %v: lazy sum of unreduced inputs diverged", f.Modulus())
		}
	}
}

// TestAccumulatorWorstCaseCarries drives the accumulator with all-ones
// values so every addition carries out of the low half, checking the 512-bit
// total against a math/big oracle.
func TestAccumulatorWorstCaseCarries(t *testing.T) {
	max := Int{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	var acc Accumulator
	oracle := new(big.Int)
	for i := 0; i < 5000; i++ {
		acc.Add(max)
		oracle.Add(oracle, max.ToBig())
	}
	if got := acc.Word().ToBig(); got.Cmp(oracle) != 0 {
		t.Fatalf("accumulator total %v != oracle %v", got, oracle)
	}
	f := NewDefaultField()
	want, _ := FromBig(new(big.Int).Mod(oracle, f.Modulus().ToBig()))
	if got := acc.Sum(f); got != want {
		t.Fatalf("accumulator sum %v != oracle %v", got, want)
	}
	acc.Reset()
	if !acc.Word().IsZero() {
		t.Fatal("Reset did not clear the accumulator")
	}
}

func TestAddIntoMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, f := range lazyTestFields(t) {
		for i := 0; i < 2000; i++ {
			x := f.Reduce(randInt(rng))
			y := f.Reduce(randInt(rng))
			want := f.Add(x, y)
			var z Int
			f.AddInto(&z, &x, &y)
			if z != want {
				t.Fatalf("AddInto(%v,%v) = %v, want %v", x, y, z, want)
			}
			// Aliased forms must agree too.
			zx := x
			f.AddInto(&zx, &zx, &y)
			zy := y
			f.AddInto(&zy, &x, &zy)
			if zx != want || zy != want {
				t.Fatalf("aliased AddInto diverged: %v / %v, want %v", zx, zy, want)
			}
		}
		// Boundary: p−1 + p−1 wraps through the carry path.
		pm1, _ := f.Modulus().Sub(One)
		want := f.Add(pm1, pm1)
		var z Int
		f.AddInto(&z, &pm1, &pm1)
		if z != want {
			t.Fatalf("AddInto(p-1,p-1) = %v, want %v", z, want)
		}
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, f := range lazyTestFields(t) {
		for i := 0; i < 500; i++ {
			x := f.Reduce(randInt(rng))
			y := f.Reduce(randInt(rng))
			want := f.Mul(x, y)
			var z Int
			f.MulInto(&z, &x, &y)
			if z != want {
				t.Fatalf("MulInto(%v,%v) = %v, want %v", x, y, z, want)
			}
			zx := x
			f.MulInto(&zx, &zx, &y)
			if zx != want {
				t.Fatalf("aliased MulInto = %v, want %v", zx, want)
			}
		}
	}
}

// TestSumLazyAllocs is the allocation-regression gate for the lazy kernel:
// the whole merge-shaped loop must stay on the stack.
func TestSumLazyAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	f := NewDefaultField()
	rng := rand.New(rand.NewSource(19))
	xs := make([]Int, 1024)
	for i := range xs {
		xs[i] = f.Reduce(randInt(rng))
	}
	var sink Int
	if n := testing.AllocsPerRun(100, func() {
		sink = f.SumLazy(xs)
	}); n != 0 {
		t.Fatalf("SumLazy allocated %.1f times per run, want 0", n)
	}
	var z Int
	x, y := xs[0], xs[1]
	if n := testing.AllocsPerRun(100, func() {
		f.AddInto(&z, &x, &y)
		f.MulInto(&z, &z, &y)
	}); n != 0 {
		t.Fatalf("AddInto/MulInto allocated %.1f times per run, want 0", n)
	}
	_ = sink
}

// FuzzSumLazy cross-checks the lazy 512-bit accumulator against a math/big
// oracle over arbitrary element streams: random counts, values near p, and
// worst-case carry patterns all reduce to the same residue.
func FuzzSumLazy(f *testing.F) {
	field := NewDefaultField()
	pm1, _ := field.Modulus().Sub(One)
	pb := pm1.Bytes()
	f.Add([]byte{})
	f.Add(make([]byte, 32))
	f.Add(pb[:])
	f.Add(append(pb[:], pb[:]...))
	allOnes := make([]byte, 96)
	for i := range allOnes {
		allOnes[i] = 0xff
	}
	f.Add(allOnes)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Parse the stream as 32-byte big-endian elements; a ragged tail is
		// zero-padded so every input length exercises the kernel.
		var xs []Int
		for i := 0; i < len(data); i += 32 {
			end := i + 32
			if end > len(data) {
				end = len(data)
			}
			x, err := SetBytes(data[i:end])
			if err != nil {
				t.Fatalf("SetBytes on %d-byte chunk: %v", end-i, err)
			}
			xs = append(xs, x)
		}
		got := field.SumLazy(xs)
		oracle := new(big.Int)
		for _, x := range xs {
			oracle.Add(oracle, x.ToBig())
		}
		oracle.Mod(oracle, field.Modulus().ToBig())
		want, err := FromBig(oracle)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("SumLazy over %d elements = %v, oracle %v", len(xs), got, want)
		}
	})
}

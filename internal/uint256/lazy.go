package uint256

import "math/bits"

// This file implements the lazy-reduction aggregation kernel and the
// in-place arithmetic variants used by the protocol hot paths.
//
// The SIES merging phase is a long chain of modular additions. Reducing
// after every addition (Field.Add) costs a compare plus a conditional
// subtraction per ciphertext. The lazy kernel instead sums the raw 256-bit
// values into a 512-bit accumulator with plain carry-chain adds and performs
// one Reduce512 at the very end. This is exact: each summand is < 2^256, so
// the running total of n summands is < n·2^256, which fits a Word512 for any
// n < 2^256 — far beyond any deployment size — and
//
//	(Σ xᵢ) mod p  ==  Σ (xᵢ mod p)  (mod p)
//
// so a single final reduction of the 512-bit total equals the sequence of
// per-addition reductions. The summands do not even need to be reduced
// themselves, which lets callers skip a per-element Reduce when feeding raw
// HMAC outputs.

// Accumulator sums 256-bit values into a running 512-bit total without
// intermediate modular reductions. The zero value is an empty sum, ready to
// use. An Accumulator never overflows in practice: the high half grows by at
// most one per Add, so wrapping Word512 would take 2^256 additions.
type Accumulator struct {
	w Word512
}

// Reset empties the accumulator for reuse.
func (a *Accumulator) Reset() { a.w = Word512{} }

// Add folds x into the running total with a plain carry-chain addition.
func (a *Accumulator) Add(x Int) {
	var carry uint64
	a.w[0], carry = bits.Add64(a.w[0], x[0], 0)
	a.w[1], carry = bits.Add64(a.w[1], x[1], carry)
	a.w[2], carry = bits.Add64(a.w[2], x[2], carry)
	a.w[3], carry = bits.Add64(a.w[3], x[3], carry)
	for i := 4; carry != 0 && i < 8; i++ {
		a.w[i], carry = bits.Add64(a.w[i], 0, carry)
	}
}

// Word returns the raw 512-bit total.
func (a *Accumulator) Word() Word512 { return a.w }

// Sum reduces the total into [0, p) — the single deferred reduction.
func (a *Accumulator) Sum(f *Field) Int { return f.Reduce512(a.w) }

// SumLazy returns (Σ xs) mod p using one reduction for the whole slice
// instead of one per element. The elements need not be reduced.
func (f *Field) SumLazy(xs []Int) Int {
	var acc Accumulator
	for i := range xs {
		acc.Add(xs[i])
	}
	return f.Reduce512(acc.w)
}

// AddInto sets *z = (*x + *y) mod p, writing through the pointer instead of
// returning a value. Aliasing is allowed (z may equal x and/or y). Inputs
// must already be reduced.
func (f *Field) AddInto(z, x, y *Int) {
	var carry uint64
	z[0], carry = bits.Add64(x[0], y[0], 0)
	z[1], carry = bits.Add64(x[1], y[1], carry)
	z[2], carry = bits.Add64(x[2], y[2], carry)
	z[3], carry = bits.Add64(x[3], y[3], carry)
	if carry != 0 {
		// z holds x+y−2^256; subtracting p adds 2^256−p, folding the wrap in.
		var borrow uint64
		z[0], borrow = bits.Sub64(z[0], f.p[0], 0)
		z[1], borrow = bits.Sub64(z[1], f.p[1], borrow)
		z[2], borrow = bits.Sub64(z[2], f.p[2], borrow)
		z[3], _ = bits.Sub64(z[3], f.p[3], borrow)
		return
	}
	if z.Cmp(f.p) >= 0 {
		var borrow uint64
		z[0], borrow = bits.Sub64(z[0], f.p[0], 0)
		z[1], borrow = bits.Sub64(z[1], f.p[1], borrow)
		z[2], borrow = bits.Sub64(z[2], f.p[2], borrow)
		z[3], _ = bits.Sub64(z[3], f.p[3], borrow)
	}
}

// MulInto sets *z = (*x · *y) mod p, writing through the pointer. Aliasing
// is allowed. Inputs must already be reduced.
func (f *Field) MulInto(z, x, y *Int) {
	*z = f.Reduce512(x.Mul(*y))
}

package uint256

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestDefaultPrimeIsPrime(t *testing.T) {
	p := DefaultPrime()
	if !p.ToBig().ProbablyPrime(64) {
		t.Fatal("2^256-189 failed primality test")
	}
	want := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(189))
	if p.ToBig().Cmp(want) != 0 {
		t.Fatalf("DefaultPrime = %v, want 2^256-189", p)
	}
}

func TestNewFieldRejectsComposite(t *testing.T) {
	composite := Int{0, 0, 0, 1 << 32} // 2^224, even
	if _, err := NewField(composite); err == nil {
		t.Fatal("composite modulus accepted")
	}
}

func TestNewFieldRejectsSmall(t *testing.T) {
	if _, err := NewField(NewInt(7)); err == nil {
		t.Fatal("sub-192-bit modulus accepted")
	}
}

func TestDefaultFieldIsPseudoMersenne(t *testing.T) {
	f := NewDefaultField()
	if !f.IsPseudoMersenne() {
		t.Fatal("2^256-189 not detected as pseudo-Mersenne")
	}
	if f.cLimb != 189 {
		t.Fatalf("c = %d, want 189", f.cLimb)
	}
}

// knuthOnlyField builds a field for the default prime with the
// pseudo-Mersenne path disabled, so both reducers can be cross-checked.
func knuthOnlyField(t *testing.T) *Field {
	t.Helper()
	f := NewDefaultField()
	g := *f
	g.pm = false
	return &g
}

// genericField returns a non-pseudo-Mersenne prime field (NIST P-256's
// order-of-magnitude prime picked to exercise the Knuth path naturally).
func genericField(t *testing.T) *Field {
	t.Helper()
	// p256 = 2^256 - 2^224 + 2^192 + 2^96 - 1 (the NIST P-256 field prime).
	b, ok := new(big.Int).SetString(
		"ffffffff00000001000000000000000000000000ffffffffffffffffffffffff", 16)
	if !ok {
		t.Fatal("bad literal")
	}
	p, err := FromBig(b)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewField(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsPseudoMersenne() {
		t.Fatal("P-256 prime misdetected as pseudo-Mersenne")
	}
	return f
}

func testFieldAgainstBig(t *testing.T, f *Field, seed int64, rounds int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pb := f.Modulus().ToBig()
	for i := 0; i < rounds; i++ {
		a := f.Reduce512(word512FromParts(randInt(r), Int{}))
		b := f.Reduce512(word512FromParts(randInt(r), Int{}))
		ab, bb := a.ToBig(), b.ToBig()

		if got, want := f.Add(a, b).ToBig(), new(big.Int).Mod(new(big.Int).Add(ab, bb), pb); got.Cmp(want) != 0 {
			t.Fatalf("Add mismatch: %v + %v", a, b)
		}
		if got, want := f.Sub(a, b).ToBig(), new(big.Int).Mod(new(big.Int).Sub(ab, bb), pb); got.Cmp(want) != 0 {
			t.Fatalf("Sub mismatch: %v - %v", a, b)
		}
		if got, want := f.Mul(a, b).ToBig(), new(big.Int).Mod(new(big.Int).Mul(ab, bb), pb); got.Cmp(want) != 0 {
			t.Fatalf("Mul mismatch: %v * %v", a, b)
		}
		if got, want := f.Neg(a).ToBig(), new(big.Int).Mod(new(big.Int).Neg(ab), pb); got.Cmp(want) != 0 {
			t.Fatalf("Neg mismatch: %v", a)
		}

		// Raw 512-bit reduction on an arbitrary (unreduced) product.
		x, y := randInt(r), randInt(r)
		w := x.Mul(y)
		want := new(big.Int).Mod(w.ToBig(), pb)
		if got := f.Reduce512(w).ToBig(); got.Cmp(want) != 0 {
			t.Fatalf("Reduce512 mismatch on %v * %v", x, y)
		}

		// Single-width reduction on arbitrary input.
		z := randInt(r)
		want = new(big.Int).Mod(z.ToBig(), pb)
		if got := f.Reduce(z).ToBig(); got.Cmp(want) != 0 {
			t.Fatalf("Reduce mismatch on %v", z)
		}
	}
}

func TestFieldPMAgainstBig(t *testing.T)      { testFieldAgainstBig(t, NewDefaultField(), 1, 3000) }
func TestFieldKnuthAgainstBig(t *testing.T)   { testFieldAgainstBig(t, knuthOnlyField(t), 2, 3000) }
func TestFieldGenericAgainstBig(t *testing.T) { testFieldAgainstBig(t, genericField(t), 3, 3000) }

func TestReducersAgree(t *testing.T) {
	pm := NewDefaultField()
	kn := knuthOnlyField(t)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		w := randInt(r).Mul(randInt(r))
		if pm.Reduce512(w) != kn.Reduce512(w) {
			t.Fatalf("reducer disagreement on %v", w)
		}
	}
}

func TestInv(t *testing.T) {
	for name, f := range map[string]*Field{"pm": NewDefaultField(), "generic": genericField(t)} {
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 50; i++ {
			x := f.Reduce(randInt(r))
			if x.IsZero() {
				continue
			}
			inv, err := f.Inv(x)
			if err != nil {
				t.Fatalf("%s: Inv error: %v", name, err)
			}
			if got := f.Mul(x, inv); got != One {
				t.Fatalf("%s: x * x^-1 = %v, want 1", name, got)
			}
		}
		if _, err := f.Inv(Zero); err != ErrNotInvertible {
			t.Fatalf("%s: Inv(0) err = %v", name, err)
		}
	}
}

func TestExp(t *testing.T) {
	f := NewDefaultField()
	pb := f.Modulus().ToBig()
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		x := f.Reduce(randInt(r))
		e := NewInt(uint64(r.Intn(1 << 16)))
		want := new(big.Int).Exp(x.ToBig(), e.ToBig(), pb)
		if got := f.Exp(x, e).ToBig(); got.Cmp(want) != 0 {
			t.Fatalf("Exp mismatch: %v^%v", x, e)
		}
	}
	if got := f.Exp(NewInt(12345), Zero); got != One {
		t.Fatalf("x^0 = %v", got)
	}
}

func TestFermat(t *testing.T) {
	// x^(p-1) == 1 for x != 0 — a strong end-to-end check of Exp + reduction.
	f := NewDefaultField()
	exp, _ := f.Modulus().Sub(One)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		x := f.Reduce(randInt(r))
		if x.IsZero() {
			continue
		}
		if got := f.Exp(x, exp); got != One {
			t.Fatalf("x^(p-1) = %v, want 1", got)
		}
	}
}

func TestRandomPrimeField(t *testing.T) {
	f, err := RandomPrimeField()
	if err != nil {
		t.Fatal(err)
	}
	if f.Modulus().BitLen() != 256 {
		t.Fatalf("random prime bitlen = %d", f.Modulus().BitLen())
	}
	x, err := f.RandNonZero()
	if err != nil {
		t.Fatal(err)
	}
	if x.IsZero() || x.Cmp(f.Modulus()) >= 0 {
		t.Fatal("RandNonZero out of range")
	}
	inv, err := f.Inv(x)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mul(x, inv) != One {
		t.Fatal("inverse in random field failed")
	}
}

func TestRandUniformRange(t *testing.T) {
	f := NewDefaultField()
	for i := 0; i < 20; i++ {
		x, err := f.Rand()
		if err != nil {
			t.Fatal(err)
		}
		if x.Cmp(f.Modulus()) >= 0 {
			t.Fatal("Rand out of range")
		}
	}
}

func TestAddWithCarryWrap(t *testing.T) {
	// (p-1) + (p-1) mod p == p-2; exercises the carry-out branch of Add.
	f := NewDefaultField()
	pm1, _ := f.Modulus().Sub(One)
	want, _ := f.Modulus().Sub(NewInt(2))
	if got := f.Add(pm1, pm1); got != want {
		t.Fatalf("(p-1)+(p-1) = %v, want p-2", got)
	}
}

func TestSubBorrow(t *testing.T) {
	f := NewDefaultField()
	got := f.Sub(Zero, One)
	want, _ := f.Modulus().Sub(One)
	if got != want {
		t.Fatalf("0-1 = %v, want p-1", got)
	}
}

func BenchmarkFieldMulPM(b *testing.B) {
	f := NewDefaultField()
	x, _ := f.Rand()
	y, _ := f.Rand()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
}

func BenchmarkFieldMulKnuth(b *testing.B) {
	f := NewDefaultField()
	g := *f
	g.pm = false
	x, _ := g.Rand()
	y, _ := g.Rand()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = g.Mul(x, y)
	}
}

func BenchmarkFieldAdd(b *testing.B) {
	f := NewDefaultField()
	x, _ := f.Rand()
	y, _ := f.Rand()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Add(x, y)
	}
}

func BenchmarkFieldInv(b *testing.B) {
	f := NewDefaultField()
	x, _ := f.RandNonZero()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Inv(x); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInvMatchesFermat(t *testing.T) {
	for name, f := range map[string]*Field{"pm": NewDefaultField(), "generic": genericField(t)} {
		r := rand.New(rand.NewSource(13))
		for i := 0; i < 200; i++ {
			x := f.Reduce(randInt(r))
			if x.IsZero() {
				continue
			}
			euclid, err := f.Inv(x)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			fermat, err := f.InvFermat(x)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if euclid != fermat {
				t.Fatalf("%s: Euclid %v != Fermat %v for x=%v", name, euclid, fermat, x)
			}
		}
		if _, err := f.InvFermat(Zero); err != ErrNotInvertible {
			t.Fatalf("%s: InvFermat(0): %v", name, err)
		}
	}
}

func TestInvSmallValues(t *testing.T) {
	f := NewDefaultField()
	for v := uint64(1); v <= 64; v++ {
		inv, err := f.Inv(NewInt(v))
		if err != nil {
			t.Fatal(err)
		}
		if f.Mul(NewInt(v), inv) != One {
			t.Fatalf("Inv(%d) wrong", v)
		}
	}
	// x = p-1 == -1: its own inverse.
	pm1, _ := f.Modulus().Sub(One)
	inv, err := f.Inv(pm1)
	if err != nil {
		t.Fatal(err)
	}
	if inv != pm1 {
		t.Fatalf("Inv(p-1) = %v, want p-1", inv)
	}
}

func TestHalve(t *testing.T) {
	f := NewDefaultField()
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 1000; i++ {
		x := f.Reduce(randInt(r))
		h := f.halve(x)
		if f.Add(h, h) != x {
			t.Fatalf("halve(%v) + itself != x", x)
		}
	}
}

func BenchmarkFieldInvEuclid(b *testing.B) {
	f := NewDefaultField()
	x, _ := f.RandNonZero()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Inv(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFieldInvFermat(b *testing.B) {
	f := NewDefaultField()
	x, _ := f.RandNonZero()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.InvFermat(x); err != nil {
			b.Fatal(err)
		}
	}
}

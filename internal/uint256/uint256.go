// Package uint256 implements fixed-width 256-bit unsigned integers and
// modular arithmetic over 256-bit prime fields.
//
// SIES encrypts 32-byte plaintexts as c = K·m + k (mod p) where p is a
// 256-bit prime, so every hot-path operation of the protocol — encryption at
// a source, merging at an aggregator, decryption at the querier — is an
// addition or multiplication in this field. The package therefore provides a
// limb-based representation ([4]uint64) with carry-chain arithmetic from
// math/bits, a full 512-bit product, and two reduction strategies:
//
//   - a pseudo-Mersenne fast path for primes of the form 2^256 − c with a
//     single-limb c (the default SIES modulus is 2^256 − 189), and
//   - a generic Knuth Algorithm D division for arbitrary 256-bit moduli.
//
// math/big is used only for prime generation, as a conversion endpoint, and
// as an oracle in the package tests.
package uint256

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// Int is a 256-bit unsigned integer stored as four 64-bit limbs in
// little-endian limb order: Int[0] holds bits 0–63, Int[3] bits 192–255.
// The zero value is the number 0 and is ready to use.
type Int [4]uint64

// Word512 is a 512-bit unsigned integer used to hold the full product of two
// Ints before reduction. Limb order matches Int.
type Word512 [8]uint64

// Zero and One are convenience constants.
var (
	Zero = Int{}
	One  = Int{1, 0, 0, 0}
)

// NewInt returns an Int holding the value v.
func NewInt(v uint64) Int { return Int{v, 0, 0, 0} }

// IsZero reports whether x == 0.
func (x Int) IsZero() bool { return x[0]|x[1]|x[2]|x[3] == 0 }

// Uint64 returns the low 64 bits of x and whether x fits in a uint64.
func (x Int) Uint64() (uint64, bool) { return x[0], x[1]|x[2]|x[3] == 0 }

// Cmp compares x and y and returns -1, 0, or +1.
func (x Int) Cmp(y Int) int {
	for i := 3; i >= 0; i-- {
		if x[i] < y[i] {
			return -1
		}
		if x[i] > y[i] {
			return 1
		}
	}
	return 0
}

// Add returns x+y and the outgoing carry bit.
func (x Int) Add(y Int) (sum Int, carry uint64) {
	sum[0], carry = bits.Add64(x[0], y[0], 0)
	sum[1], carry = bits.Add64(x[1], y[1], carry)
	sum[2], carry = bits.Add64(x[2], y[2], carry)
	sum[3], carry = bits.Add64(x[3], y[3], carry)
	return sum, carry
}

// Sub returns x−y and the outgoing borrow bit (1 when y > x).
func (x Int) Sub(y Int) (diff Int, borrow uint64) {
	diff[0], borrow = bits.Sub64(x[0], y[0], 0)
	diff[1], borrow = bits.Sub64(x[1], y[1], borrow)
	diff[2], borrow = bits.Sub64(x[2], y[2], borrow)
	diff[3], borrow = bits.Sub64(x[3], y[3], borrow)
	return diff, borrow
}

// Mul returns the full 512-bit product x·y.
func (x Int) Mul(y Int) Word512 {
	var z Word512
	var carry uint64
	for i := 0; i < 4; i++ {
		carry = 0
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var c1, c2 uint64
			z[i+j], c1 = bits.Add64(z[i+j], lo, 0)
			z[i+j], c2 = bits.Add64(z[i+j], carry, 0)
			carry = hi + c1 + c2 // cannot overflow: hi ≤ 2^64−2 when both inputs ≤ 2^64−1
		}
		z[i+4] += carry
	}
	return z
}

// MulUint64 returns the 320-bit product x·y as (low 256 bits, high limb).
func (x Int) MulUint64(y uint64) (lo Int, hi uint64) {
	var carry uint64
	for i := 0; i < 4; i++ {
		h, l := bits.Mul64(x[i], y)
		var c uint64
		lo[i], c = bits.Add64(l, carry, 0)
		carry = h + c
	}
	return lo, carry
}

// Lsh returns x<<n. Shifts of 256 or more yield zero.
func (x Int) Lsh(n uint) Int {
	if n >= 256 {
		return Int{}
	}
	limb := n / 64
	off := n % 64
	var z Int
	for i := 3; i >= int(limb); i-- {
		z[i] = x[i-int(limb)] << off
		if off != 0 && i-int(limb)-1 >= 0 {
			z[i] |= x[i-int(limb)-1] >> (64 - off)
		}
	}
	return z
}

// Rsh returns x>>n. Shifts of 256 or more yield zero.
func (x Int) Rsh(n uint) Int {
	if n >= 256 {
		return Int{}
	}
	limb := n / 64
	off := n % 64
	var z Int
	for i := 0; i+int(limb) < 4; i++ {
		z[i] = x[i+int(limb)] >> off
		if off != 0 && i+int(limb)+1 < 4 {
			z[i] |= x[i+int(limb)+1] << (64 - off)
		}
	}
	return z
}

// And returns x & y.
func (x Int) And(y Int) Int {
	return Int{x[0] & y[0], x[1] & y[1], x[2] & y[2], x[3] & y[3]}
}

// Or returns x | y.
func (x Int) Or(y Int) Int {
	return Int{x[0] | y[0], x[1] | y[1], x[2] | y[2], x[3] | y[3]}
}

// Bit returns bit i of x (0 or 1). Bits at positions ≥ 256 are zero.
func (x Int) Bit(i uint) uint64 {
	if i >= 256 {
		return 0
	}
	return (x[i/64] >> (i % 64)) & 1
}

// BitLen returns the number of bits required to represent x; BitLen(0) == 0.
func (x Int) BitLen() int {
	for i := 3; i >= 0; i-- {
		if x[i] != 0 {
			return i*64 + bits.Len64(x[i])
		}
	}
	return 0
}

// Mask returns an Int with the low n bits set (n in [0,256]).
func Mask(n uint) Int {
	if n >= 256 {
		return Int{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	}
	var z Int
	limb := n / 64
	for i := uint(0); i < limb; i++ {
		z[i] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 {
		z[limb] = (uint64(1) << rem) - 1
	}
	return z
}

// SetBytes interprets buf as a big-endian unsigned integer. It returns an
// error if buf is longer than 32 bytes with a nonzero prefix.
func SetBytes(buf []byte) (Int, error) {
	if len(buf) > 32 {
		for _, b := range buf[:len(buf)-32] {
			if b != 0 {
				return Int{}, errors.New("uint256: value exceeds 256 bits")
			}
		}
		buf = buf[len(buf)-32:]
	}
	var padded [32]byte
	copy(padded[32-len(buf):], buf)
	var z Int
	z[3] = binary.BigEndian.Uint64(padded[0:8])
	z[2] = binary.BigEndian.Uint64(padded[8:16])
	z[1] = binary.BigEndian.Uint64(padded[16:24])
	z[0] = binary.BigEndian.Uint64(padded[24:32])
	return z, nil
}

// MustSetBytes is SetBytes for inputs known to fit; it panics on error.
func MustSetBytes(buf []byte) Int {
	z, err := SetBytes(buf)
	if err != nil {
		panic(err)
	}
	return z
}

// Bytes returns x as a 32-byte big-endian array.
func (x Int) Bytes() [32]byte {
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:8], x[3])
	binary.BigEndian.PutUint64(buf[8:16], x[2])
	binary.BigEndian.PutUint64(buf[16:24], x[1])
	binary.BigEndian.PutUint64(buf[24:32], x[0])
	return buf
}

// String returns the hexadecimal representation of x with a 0x prefix.
func (x Int) String() string {
	return fmt.Sprintf("0x%016x%016x%016x%016x", x[3], x[2], x[1], x[0])
}

// ToBig converts x to a math/big Int.
func (x Int) ToBig() *big.Int {
	b := x.Bytes()
	return new(big.Int).SetBytes(b[:])
}

// FromBig converts b to an Int. It returns an error when b is negative or
// does not fit in 256 bits.
func FromBig(b *big.Int) (Int, error) {
	if b.Sign() < 0 {
		return Int{}, errors.New("uint256: negative value")
	}
	if b.BitLen() > 256 {
		return Int{}, errors.New("uint256: value exceeds 256 bits")
	}
	return SetBytes(b.Bytes())
}

// IsZero reports whether w == 0.
func (w Word512) IsZero() bool {
	var acc uint64
	for _, l := range w {
		acc |= l
	}
	return acc == 0
}

// Lo returns the low 256 bits of w.
func (w Word512) Lo() Int { return Int{w[0], w[1], w[2], w[3]} }

// Hi returns the high 256 bits of w.
func (w Word512) Hi() Int { return Int{w[4], w[5], w[6], w[7]} }

// ToBig converts w to a math/big Int.
func (w Word512) ToBig() *big.Int {
	hi := w.Hi().ToBig()
	lo := w.Lo().ToBig()
	return hi.Lsh(hi, 256).Add(hi, lo)
}

// word512FromParts assembles a Word512 from low and high halves.
func word512FromParts(lo, hi Int) Word512 {
	return Word512{lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]}
}

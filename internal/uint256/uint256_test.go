package uint256

import (
	"bytes"
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randInt produces a random Int for property tests, biased toward edge
// patterns (all-ones limbs, zero limbs) that stress carry chains.
func randInt(r *rand.Rand) Int {
	var z Int
	for i := range z {
		switch r.Intn(4) {
		case 0:
			z[i] = 0
		case 1:
			z[i] = ^uint64(0)
		default:
			z[i] = r.Uint64()
		}
	}
	return z
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randInt(r))
			}
		},
	}
}

func TestNewIntAndUint64(t *testing.T) {
	x := NewInt(42)
	v, ok := x.Uint64()
	if !ok || v != 42 {
		t.Fatalf("NewInt(42).Uint64() = %d, %v", v, ok)
	}
	big := Int{1, 2, 0, 0}
	if _, ok := big.Uint64(); ok {
		t.Fatal("multi-limb value reported as fitting uint64")
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if One.IsZero() {
		t.Fatal("One.IsZero() = true")
	}
	if (Int{0, 0, 0, 1}).IsZero() {
		t.Fatal("high-limb value reported zero")
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Int
		want int
	}{
		{Zero, Zero, 0},
		{One, Zero, 1},
		{Zero, One, -1},
		{Int{0, 0, 0, 1}, Int{^uint64(0), ^uint64(0), ^uint64(0), 0}, 1},
		{Int{5, 0, 0, 7}, Int{9, 0, 0, 7}, -1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b Int) bool {
		sum, carry := a.Add(b)
		back, borrow := sum.Sub(b)
		return back == a && carry == borrow
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestAddMatchesBig(t *testing.T) {
	mod := new(big.Int).Lsh(big.NewInt(1), 256)
	f := func(a, b Int) bool {
		sum, carry := a.Add(b)
		want := new(big.Int).Add(a.ToBig(), b.ToBig())
		wantCarry := uint64(0)
		if want.Cmp(mod) >= 0 {
			want.Sub(want, mod)
			wantCarry = 1
		}
		return sum.ToBig().Cmp(want) == 0 && carry == wantCarry
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(a, b Int) bool {
		got := a.Mul(b).ToBig()
		want := new(big.Int).Mul(a.ToBig(), b.ToBig())
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestMulUint64MatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := randInt(r)
		y := r.Uint64()
		lo, hi := a.MulUint64(y)
		got := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 256)
		got.Add(got, lo.ToBig())
		want := new(big.Int).Mul(a.ToBig(), new(big.Int).SetUint64(y))
		if got.Cmp(want) != 0 {
			t.Fatalf("MulUint64(%v, %d) mismatch", a, y)
		}
	}
}

func TestShiftsMatchBig(t *testing.T) {
	mask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		a := randInt(r)
		n := uint(r.Intn(300))
		gotL := a.Lsh(n).ToBig()
		wantL := new(big.Int).Lsh(a.ToBig(), n)
		wantL.And(wantL, mask)
		if gotL.Cmp(wantL) != 0 {
			t.Fatalf("Lsh(%v, %d) = %v, want %v", a, n, gotL, wantL)
		}
		gotR := a.Rsh(n).ToBig()
		wantR := new(big.Int).Rsh(a.ToBig(), n)
		if gotR.Cmp(wantR) != 0 {
			t.Fatalf("Rsh(%v, %d) = %v, want %v", a, n, gotR, wantR)
		}
	}
}

func TestBitAndBitLen(t *testing.T) {
	if Zero.BitLen() != 0 {
		t.Fatalf("BitLen(0) = %d", Zero.BitLen())
	}
	if One.BitLen() != 1 {
		t.Fatalf("BitLen(1) = %d", One.BitLen())
	}
	x := One.Lsh(200)
	if x.BitLen() != 201 {
		t.Fatalf("BitLen(1<<200) = %d", x.BitLen())
	}
	if x.Bit(200) != 1 || x.Bit(199) != 0 || x.Bit(300) != 0 {
		t.Fatal("Bit() incorrect around 1<<200")
	}
}

func TestMask(t *testing.T) {
	for _, n := range []uint{0, 1, 63, 64, 65, 128, 160, 255, 256, 400} {
		want := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), min(n, 256)), big.NewInt(1))
		if got := Mask(n).ToBig(); got.Cmp(want) != 0 {
			t.Errorf("Mask(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a Int) bool {
		b := a.Bytes()
		back, err := SetBytes(b[:])
		return err == nil && back == a
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestSetBytesShort(t *testing.T) {
	x, err := SetBytes([]byte{0x01, 0x02})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := x.Uint64(); v != 0x0102 {
		t.Fatalf("SetBytes short = %d", v)
	}
}

func TestSetBytesLongZeroPrefix(t *testing.T) {
	buf := make([]byte, 40)
	buf[39] = 7
	x, err := SetBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := x.Uint64(); v != 7 {
		t.Fatalf("SetBytes long = %d", v)
	}
}

func TestSetBytesOverflow(t *testing.T) {
	buf := make([]byte, 33)
	buf[0] = 1
	if _, err := SetBytes(buf); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestBigConversionRoundTrip(t *testing.T) {
	f := func(a Int) bool {
		back, err := FromBig(a.ToBig())
		return err == nil && back == a
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := FromBig(big.NewInt(-1)); err == nil {
		t.Fatal("negative accepted")
	}
	too := new(big.Int).Lsh(big.NewInt(1), 256)
	if _, err := FromBig(too); err == nil {
		t.Fatal("257-bit value accepted")
	}
}

func TestWord512ToBig(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a, b := randInt(r), randInt(r)
		w := a.Mul(b)
		want := new(big.Int).Mul(a.ToBig(), b.ToBig())
		if w.ToBig().Cmp(want) != 0 {
			t.Fatal("Word512.ToBig mismatch")
		}
		if w.IsZero() != (want.Sign() == 0) {
			t.Fatal("Word512.IsZero mismatch")
		}
	}
}

func TestStringFormat(t *testing.T) {
	s := NewInt(0xdead).String()
	if !bytes.HasSuffix([]byte(s), []byte("000000000000dead")) {
		t.Fatalf("String() = %s", s)
	}
}

func min(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}

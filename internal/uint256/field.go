package uint256

import (
	"crypto/rand"
	"errors"
	"math/big"
	"math/bits"
)

// Field performs arithmetic modulo a fixed 256-bit prime p. A Field is
// immutable after construction and safe for concurrent use.
//
// Construction detects pseudo-Mersenne primes p = 2^256 − c (c a single
// limb) and switches reduction to two rounds of folding hi·c into the low
// half, which is the hot path for the default SIES modulus 2^256 − 189. All
// other primes use a generic Knuth Algorithm D division.
type Field struct {
	p     Int
	cLimb uint64 // 2^256 − p when pseudo-Mersenne
	pm    bool   // pseudo-Mersenne fast path enabled
}

// ErrNotPrime is returned by NewField when the modulus fails a primality test.
var ErrNotPrime = errors.New("uint256: modulus is not prime")

// ErrNotInvertible is returned by Inv for the zero element.
var ErrNotInvertible = errors.New("uint256: zero has no multiplicative inverse")

// DefaultPrime returns the default SIES modulus 2^256 − 189, the largest
// pseudo-Mersenne prime below 2^256 with a single-byte c.
func DefaultPrime() Int {
	m := Int{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)} // 2^256 − 1
	p, _ := m.Sub(NewInt(188))                               // 2^256 − 189
	return p
}

// NewField constructs a prime field with modulus p. The primality of p is
// checked probabilistically (64 Miller–Rabin rounds via math/big); composite
// moduli are rejected because decryption requires inverses to exist.
func NewField(p Int) (*Field, error) {
	if p.BitLen() <= 192 {
		// The Knuth-D reduction is specialised to 4-limb divisors; SIES
		// moduli are 256-bit so shorter primes are rejected outright.
		return nil, errors.New("uint256: modulus must exceed 2^192")
	}
	if !p.ToBig().ProbablyPrime(64) {
		return nil, ErrNotPrime
	}
	f := &Field{p: p}
	// Detect p = 2^256 − c with c < 2^64: then −p mod 2^256 == c and the top
	// three limbs of p are all ones.
	if p[3] == ^uint64(0) && p[2] == ^uint64(0) && p[1] == ^uint64(0) {
		f.cLimb = -p[0] // two's complement: 2^64 − p[0] == c since c ≤ 2^64
		if f.cLimb != 0 {
			f.pm = true
		}
	}
	return f, nil
}

// MustField is NewField for moduli known to be prime; it panics on error.
func MustField(p Int) *Field {
	f, err := NewField(p)
	if err != nil {
		panic(err)
	}
	return f
}

// NewDefaultField returns the field for DefaultPrime.
func NewDefaultField() *Field { return MustField(DefaultPrime()) }

// RandomPrimeField generates a random 256-bit prime with the top bit set and
// returns its field. SIES only needs the modulus to exceed every plaintext
// sum, so "an arbitrary prime p" (paper §IV-A) with 256 bits suffices.
func RandomPrimeField() (*Field, error) {
	bp, err := rand.Prime(rand.Reader, 256)
	if err != nil {
		return nil, err
	}
	p, err := FromBig(bp)
	if err != nil {
		return nil, err
	}
	return NewField(p)
}

// Modulus returns p.
func (f *Field) Modulus() Int { return f.p }

// IsPseudoMersenne reports whether the fast 2^256−c reduction is in use.
func (f *Field) IsPseudoMersenne() bool { return f.pm }

// Reduce returns x mod p for a 256-bit x.
func (f *Field) Reduce(x Int) Int {
	if x.Cmp(f.p) >= 0 {
		x, _ = x.Sub(f.p)
		// A single subtraction suffices only when x < 2p; for arbitrary x
		// (e.g. 2^256−1 with a small p) fall back to full reduction.
		if x.Cmp(f.p) >= 0 {
			return f.Reduce512(word512FromParts(x, Int{}))
		}
	}
	return x
}

// Add returns (x+y) mod p. Inputs must already be reduced.
func (f *Field) Add(x, y Int) Int {
	sum, carry := x.Add(y)
	if carry != 0 {
		// sum represents x+y−2^256; add 2^256−p == −p (mod 2^256) to fold in.
		diff, _ := sum.Sub(f.p)
		return diff
	}
	if sum.Cmp(f.p) >= 0 {
		sum, _ = sum.Sub(f.p)
	}
	return sum
}

// Sub returns (x−y) mod p. Inputs must already be reduced.
func (f *Field) Sub(x, y Int) Int {
	diff, borrow := x.Sub(y)
	if borrow != 0 {
		diff, _ = diff.Add(f.p)
	}
	return diff
}

// Neg returns −x mod p. The input must already be reduced.
func (f *Field) Neg(x Int) Int {
	if x.IsZero() {
		return x
	}
	diff, _ := f.p.Sub(x)
	return diff
}

// Mul returns (x·y) mod p. Inputs must already be reduced.
func (f *Field) Mul(x, y Int) Int {
	return f.Reduce512(x.Mul(y))
}

// Square returns x² mod p.
func (f *Field) Square(x Int) Int { return f.Mul(x, x) }

// Reduce512 returns w mod p for a full 512-bit w.
func (f *Field) Reduce512(w Word512) Int {
	if f.pm {
		return f.reducePM(w)
	}
	return f.reduceKnuth(w)
}

// reducePM reduces modulo p = 2^256 − c using hi·2^256 ≡ hi·c (mod p).
// Two folding rounds plus conditional subtractions bring any 512-bit value
// into [0, p).
func (f *Field) reducePM(w Word512) Int {
	lo, hi := w.Lo(), w.Hi()
	// Round 1: fold hi (≤ 2^256−1): hi·c is at most (2^256−1)·c < 2^320.
	prod, top := hi.MulUint64(f.cLimb)
	lo2, carry := lo.Add(prod)
	hi2 := top + carry // ≤ c, fits a limb
	// Round 2: fold hi2 (single limb): hi2·c ≤ c² < 2^128, cannot carry out
	// past 2^256 after one more addition because lo2 ≤ 2^256−1 and the sum of
	// the folds is < p + 2^128; one extra conditional pass handles the rare
	// carry anyway.
	for hi2 != 0 {
		fold, _ := NewInt(hi2).MulUint64(f.cLimb)
		lo2, carry = lo2.Add(fold)
		hi2 = carry
	}
	for lo2.Cmp(f.p) >= 0 {
		lo2, _ = lo2.Sub(f.p)
	}
	return lo2
}

// reduceKnuth computes w mod p by Knuth's Algorithm D (TAOCP vol. 2, 4.3.1)
// specialised to an 8-limb dividend and 4-limb divisor, returning only the
// remainder.
func (f *Field) reduceKnuth(w Word512) Int {
	// Fast path: high half already zero and low half small.
	if w.Hi().IsZero() {
		lo := w.Lo()
		if lo.Cmp(f.p) < 0 {
			return lo
		}
	}

	// Normalise divisor so its top bit is set.
	shift := uint(bits.LeadingZeros64(f.p[3]))
	var v [4]uint64
	if shift == 0 {
		v = f.p
	} else {
		v[3] = f.p[3]<<shift | f.p[2]>>(64-shift)
		v[2] = f.p[2]<<shift | f.p[1]>>(64-shift)
		v[1] = f.p[1]<<shift | f.p[0]>>(64-shift)
		v[0] = f.p[0] << shift
	}

	// Normalised dividend occupies 9 limbs.
	var u [9]uint64
	if shift == 0 {
		copy(u[:8], w[:])
	} else {
		u[8] = w[7] >> (64 - shift)
		for i := 7; i >= 1; i-- {
			u[i] = w[i]<<shift | w[i-1]>>(64-shift)
		}
		u[0] = w[0] << shift
	}

	// Main loop: m−n = 8−4 = 4 quotient digits, j = 4..0.
	for j := 4; j >= 0; j-- {
		// Estimate qhat = (u[j+4]·2^64 + u[j+3]) / v[3].
		var qhat, rhat uint64
		if u[j+4] >= v[3] {
			qhat = ^uint64(0)
		} else {
			qhat, rhat = bits.Div64(u[j+4], u[j+3], v[3])
			// Refine: while qhat·v[2] > rhat·2^64 + u[j+2].
			for {
				hi, lo := bits.Mul64(qhat, v[2])
				if hi > rhat || (hi == rhat && lo > u[j+2]) {
					qhat--
					var c uint64
					rhat, c = bits.Add64(rhat, v[3], 0)
					if c != 0 {
						break // rhat overflowed 64 bits, qhat now certainly small enough
					}
					continue
				}
				break
			}
		}

		// Multiply-and-subtract: u[j..j+4] −= qhat·v.
		var borrow, mulCarry uint64
		for i := 0; i < 4; i++ {
			hi, lo := bits.Mul64(qhat, v[i])
			lo, c := bits.Add64(lo, mulCarry, 0)
			mulCarry = hi + c
			u[j+i], borrow = bits.Sub64(u[j+i], lo, borrow)
		}
		u[j+4], borrow = bits.Sub64(u[j+4], mulCarry, borrow)

		// Add back when qhat was one too large (probability ≈ 2^−64).
		if borrow != 0 {
			var carry uint64
			for i := 0; i < 4; i++ {
				u[j+i], carry = bits.Add64(u[j+i], v[i], carry)
			}
			u[j+4] += carry
		}
	}

	// Denormalise the remainder in u[0..3].
	var r Int
	if shift == 0 {
		copy(r[:], u[:4])
	} else {
		r[0] = u[0]>>shift | u[1]<<(64-shift)
		r[1] = u[1]>>shift | u[2]<<(64-shift)
		r[2] = u[2]>>shift | u[3]<<(64-shift)
		r[3] = u[3] >> shift
	}
	return r
}

// Exp returns x^e mod p by square-and-multiply.
func (f *Field) Exp(x Int, e Int) Int {
	result := One
	if e.IsZero() {
		return result
	}
	base := f.Reduce(x)
	n := uint(e.BitLen())
	for i := int(n) - 1; i >= 0; i-- {
		result = f.Square(result)
		if e.Bit(uint(i)) == 1 {
			result = f.Mul(result, base)
		}
	}
	return result
}

// Inv returns x⁻¹ mod p via the binary extended Euclidean algorithm (HAC
// 14.61), the same approach as the GMP inverse the paper's C_MI32 constant
// measures. It returns ErrNotInvertible for x ≡ 0.
func (f *Field) Inv(x Int) (Int, error) {
	xr := f.Reduce(x)
	if xr.IsZero() {
		return Int{}, ErrNotInvertible
	}
	// p is prime and > 2, hence odd — a precondition of the binary method.
	u, v := xr, f.p
	x1, x2 := One, Zero
	for !isOne(u) && !isOne(v) {
		for u[0]&1 == 0 {
			u = u.Rsh(1)
			x1 = f.halve(x1)
		}
		for v[0]&1 == 0 {
			v = v.Rsh(1)
			x2 = f.halve(x2)
		}
		if u.Cmp(v) >= 0 {
			u, _ = u.Sub(v)
			x1 = f.Sub(x1, x2)
		} else {
			v, _ = v.Sub(u)
			x2 = f.Sub(x2, x1)
		}
	}
	if isOne(u) {
		return x1, nil
	}
	return x2, nil
}

// InvFermat computes x⁻¹ as x^(p−2); retained as a cross-check oracle and
// for the inversion ablation benchmark.
func (f *Field) InvFermat(x Int) (Int, error) {
	xr := f.Reduce(x)
	if xr.IsZero() {
		return Int{}, ErrNotInvertible
	}
	exp, _ := f.p.Sub(NewInt(2))
	return f.Exp(xr, exp), nil
}

func isOne(x Int) bool { return x[0] == 1 && x[1]|x[2]|x[3] == 0 }

// halve returns x/2 mod p for odd p: x>>1 when even, (x+p)>>1 (with the
// carry bit shifted back in) when odd.
func (f *Field) halve(x Int) Int {
	if x[0]&1 == 0 {
		return x.Rsh(1)
	}
	sum, carry := x.Add(f.p)
	half := sum.Rsh(1)
	half[3] |= carry << 63
	return half
}

// Rand returns a uniformly random field element in [0, p).
func (f *Field) Rand() (Int, error) {
	b, err := rand.Int(rand.Reader, f.p.ToBig())
	if err != nil {
		return Int{}, err
	}
	return FromBig(b)
}

// RandNonZero returns a uniformly random element of [1, p).
func (f *Field) RandNonZero() (Int, error) {
	pm1, _ := f.p.Sub(One)
	b, err := rand.Int(rand.Reader, pm1.ToBig())
	if err != nil {
		return Int{}, err
	}
	x, err := FromBig(new(big.Int).Add(b, big.NewInt(1)))
	if err != nil {
		return Int{}, err
	}
	return x, nil
}

package homomorphic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/sies/sies/internal/uint256"
)

func testScheme(t testing.TB) *Scheme {
	t.Helper()
	return NewDefault()
}

// randomElems draws reduced field elements for property tests.
func randomElems(s *Scheme, r *rand.Rand) func([]reflect.Value, *rand.Rand) {
	return func(vals []reflect.Value, _ *rand.Rand) {
		for i := range vals {
			var x uint256.Int
			for j := range x {
				x[j] = r.Uint64()
			}
			vals[i] = reflect.ValueOf(s.Field().Reduce(x))
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	s := testScheme(t)
	r := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 500, Values: randomElems(s, r)}
	f := func(m, K, k uint256.Int) bool {
		if K.IsZero() {
			K = uint256.One
		}
		c, err := s.Encrypt(m, K, k)
		if err != nil {
			return false
		}
		got, err := s.Decrypt(c, K, k)
		return err == nil && got == m
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	// E(m1,K,k1) + E(m2,K,k2) decrypts to m1+m2 under k1+k2 (paper §III-D).
	s := testScheme(t)
	r := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 300, Values: randomElems(s, r)}
	f := func(m1, m2, K, k1, k2 uint256.Int) bool {
		if K.IsZero() {
			K = uint256.One
		}
		c1, err1 := s.Encrypt(m1, K, k1)
		c2, err2 := s.Encrypt(m2, K, k2)
		if err1 != nil || err2 != nil {
			return false
		}
		sum := s.Aggregate(c1, c2)
		got, err := s.Decrypt(sum, K, s.SumKeys(k1, k2))
		want := s.Field().Add(m1, m2)
		return err == nil && got == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestManyPartyAggregation(t *testing.T) {
	s := testScheme(t)
	r := rand.New(rand.NewSource(3))
	const n = 64
	K, _ := s.Field().RandNonZero()
	var cs, ks []uint256.Int
	var wantSum uint256.Int
	for i := 0; i < n; i++ {
		m := uint256.NewInt(uint64(r.Intn(1 << 30)))
		k, _ := s.Field().Rand()
		c, err := s.Encrypt(m, K, k)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
		ks = append(ks, k)
		wantSum = s.Field().Add(wantSum, m)
	}
	got, err := s.Decrypt(s.AggregateAll(cs...), K, s.SumKeys(ks...))
	if err != nil {
		t.Fatal(err)
	}
	if got != wantSum {
		t.Fatalf("aggregate decrypt = %v, want %v", got, wantSum)
	}
}

func TestDecryptWithInverseMatchesDecrypt(t *testing.T) {
	s := testScheme(t)
	K, _ := s.Field().RandNonZero()
	k, _ := s.Field().Rand()
	m := uint256.NewInt(987654321)
	c, err := s.Encrypt(m, K, k)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := s.Field().Inv(K)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecryptWithInverse(c, inv, k)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("DecryptWithInverse = %v, want %v", got, m)
	}
}

func TestZeroMultiplierRejected(t *testing.T) {
	s := testScheme(t)
	if _, err := s.Encrypt(uint256.One, uint256.Zero, uint256.One); err != ErrZeroMultiplier {
		t.Fatalf("Encrypt with K=0: err = %v", err)
	}
	if _, err := s.Decrypt(uint256.One, uint256.Zero, uint256.One); err != ErrZeroMultiplier {
		t.Fatalf("Decrypt with K=0: err = %v", err)
	}
	// K ≡ 0 (mod p) must also be rejected.
	if _, err := s.Encrypt(uint256.One, s.Field().Modulus(), uint256.One); err != ErrZeroMultiplier {
		t.Fatalf("Encrypt with K=p: err = %v", err)
	}
}

func TestPlaintextRangeChecked(t *testing.T) {
	s := testScheme(t)
	if _, err := s.Encrypt(s.Field().Modulus(), uint256.One, uint256.Zero); err != ErrPlaintextRange {
		t.Fatalf("Encrypt(p): err = %v", err)
	}
}

func TestCiphertextRangeChecked(t *testing.T) {
	s := testScheme(t)
	big := uint256.Mask(256) // 2^256-1 ≥ p
	if _, err := s.Decrypt(big, uint256.One, uint256.Zero); err != ErrCiphertextRange {
		t.Fatalf("Decrypt(2^256-1): err = %v", err)
	}
	if _, err := s.DecryptWithInverse(big, uint256.One, uint256.Zero); err != ErrCiphertextRange {
		t.Fatalf("DecryptWithInverse(2^256-1): err = %v", err)
	}
}

func TestConfidentialityOneTimePad(t *testing.T) {
	// For fixed m and K, the ciphertext ranges over the whole field as k
	// does — sample that E(m,K,k) = target has a solution k for arbitrary
	// target, i.e. the cipher is a bijection in k (information-theoretic
	// hiding argument of Theorem 1).
	s := testScheme(t)
	K, _ := s.Field().RandNonZero()
	m := uint256.NewInt(123456)
	target, _ := s.Field().Rand()
	// Solve k = target − K·m.
	k := s.Field().Sub(target, s.Field().Mul(K, m))
	c, err := s.Encrypt(m, K, k)
	if err != nil {
		t.Fatal(err)
	}
	if c != target {
		t.Fatal("cipher not bijective in k")
	}
}

func TestAggregateAllEmpty(t *testing.T) {
	s := testScheme(t)
	if got := s.AggregateAll(); !got.IsZero() {
		t.Fatalf("AggregateAll() = %v", got)
	}
	if got := s.SumKeys(); !got.IsZero() {
		t.Fatalf("SumKeys() = %v", got)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	s := NewDefault()
	K, _ := s.Field().RandNonZero()
	k, _ := s.Field().Rand()
	m := uint256.NewInt(4242)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encrypt(m, K, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregate(b *testing.B) {
	s := NewDefault()
	c1, _ := s.Field().Rand()
	c2, _ := s.Field().Rand()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1 = s.Aggregate(c1, c2)
	}
}

func BenchmarkDecrypt(b *testing.B) {
	s := NewDefault()
	K, _ := s.Field().RandNonZero()
	k, _ := s.Field().Rand()
	c, _ := s.Encrypt(uint256.NewInt(99), K, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decrypt(c, K, k); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEncryptStateMatchesEncrypt(t *testing.T) {
	s := testScheme(t)
	r := rand.New(rand.NewSource(9))
	cfg := &quick.Config{MaxCount: 300, Values: randomElems(s, r)}
	f := func(m, K, k uint256.Int) bool {
		if K.IsZero() {
			K = uint256.One
		}
		es, err := s.NewEncryptState(K, k)
		if err != nil {
			return false
		}
		want, err1 := s.Encrypt(m, K, k)
		got, err2 := es.Encrypt(m)
		return err1 == nil && err2 == nil && got == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptStateRejects(t *testing.T) {
	s := testScheme(t)
	if _, err := s.NewEncryptState(uint256.Zero, uint256.One); err != ErrZeroMultiplier {
		t.Fatalf("zero multiplier accepted: %v", err)
	}
	// A multiplier that reduces to zero (K = p) must also be rejected.
	if _, err := s.NewEncryptState(s.Field().Modulus(), uint256.One); err != ErrZeroMultiplier {
		t.Fatalf("multiplier ≡ 0 (mod p) accepted: %v", err)
	}
	es, err := s.NewEncryptState(uint256.One, uint256.One)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.Encrypt(s.Field().Modulus()); err != ErrPlaintextRange {
		t.Fatalf("out-of-range plaintext accepted: %v", err)
	}
}

// TestEncryptStateReducesOnce feeds unreduced keys and checks the state
// matches Encrypt's per-call reduction semantics.
func TestEncryptStateReducesOnce(t *testing.T) {
	s := testScheme(t)
	p := s.Field().Modulus()
	// K = p+2 ≡ 2, k = p+5 ≡ 5: both above the modulus.
	K, _ := p.Add(uint256.NewInt(2))
	k, _ := p.Add(uint256.NewInt(5))
	es, err := s.NewEncryptState(K, k)
	if err != nil {
		t.Fatal(err)
	}
	m := uint256.NewInt(1234)
	want, err := s.Encrypt(m, K, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := es.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EncryptState with unreduced keys: got %v, want %v", got, want)
	}
}

func TestSumCiphertextsMatchesAggregateAll(t *testing.T) {
	s := testScheme(t)
	r := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 2, 33, 256} {
		cs := make([]uint256.Int, n)
		for i := range cs {
			var x uint256.Int
			for j := range x {
				x[j] = r.Uint64()
			}
			cs[i] = s.Field().Reduce(x)
		}
		if got, want := s.SumCiphertexts(cs), s.AggregateAll(cs...); got != want {
			t.Fatalf("n=%d: SumCiphertexts %v != AggregateAll %v", n, got, want)
		}
	}
}

// Package homomorphic implements the additively homomorphic symmetric
// cipher at the heart of SIES (paper §III-D).
//
// Encryption of a plaintext m < p under an epoch-global multiplier K ≠ 0 and
// a per-source one-time blinding key k is
//
//	E(m, K, k, p) = K·m + k   (mod p)
//
// and decryption is D(c, K, k, p) = (c − k)·K⁻¹ (mod p). The scheme is
// additively homomorphic: ciphertexts under the same K simply add, and the
// sum decrypts with the summed blinding keys:
//
//	Σ cᵢ = E(Σ mᵢ, K, Σ kᵢ, p)
//
// With k used exactly once, the construction is a one-time pad and hides m
// information-theoretically; K contributes nothing to confidentiality but is
// essential for integrity (without it an adversary knowing the plaintext
// layout could add a forged share-consistent delta).
package homomorphic

import (
	"errors"

	"github.com/sies/sies/internal/uint256"
)

// Errors reported by Scheme operations.
var (
	ErrZeroMultiplier  = errors.New("homomorphic: multiplier key K must be nonzero mod p")
	ErrPlaintextRange  = errors.New("homomorphic: plaintext not in [0, p)")
	ErrCiphertextRange = errors.New("homomorphic: ciphertext not in [0, p)")
)

// Scheme binds the cipher to one prime field. It is immutable and safe for
// concurrent use.
type Scheme struct {
	field *uint256.Field
}

// New returns a Scheme over the given field.
func New(field *uint256.Field) *Scheme { return &Scheme{field: field} }

// NewDefault returns a Scheme over the default SIES field (p = 2^256 − 189).
func NewDefault() *Scheme { return New(uint256.NewDefaultField()) }

// Field exposes the underlying prime field.
func (s *Scheme) Field() *uint256.Field { return s.field }

// Encrypt computes E(m, K, k, p) = K·m + k mod p.
func (s *Scheme) Encrypt(m, K, k uint256.Int) (uint256.Int, error) {
	if m.Cmp(s.field.Modulus()) >= 0 {
		return uint256.Int{}, ErrPlaintextRange
	}
	Kr := s.field.Reduce(K)
	if Kr.IsZero() {
		return uint256.Int{}, ErrZeroMultiplier
	}
	kr := s.field.Reduce(k)
	return s.field.Add(s.field.Mul(Kr, m), kr), nil
}

// Decrypt computes D(c, K, kSum, p) = (c − kSum)·K⁻¹ mod p. kSum is the sum
// (mod p) of every blinding key folded into c.
func (s *Scheme) Decrypt(c, K, kSum uint256.Int) (uint256.Int, error) {
	if c.Cmp(s.field.Modulus()) >= 0 {
		return uint256.Int{}, ErrCiphertextRange
	}
	Kr := s.field.Reduce(K)
	if Kr.IsZero() {
		return uint256.Int{}, ErrZeroMultiplier
	}
	inv, err := s.field.Inv(Kr)
	if err != nil {
		return uint256.Int{}, err
	}
	return s.field.Mul(s.field.Sub(c, s.field.Reduce(kSum)), inv), nil
}

// DecryptWithInverse is Decrypt with a precomputed K⁻¹, letting a querier
// that evaluates many PSRs per epoch amortise the one inversion.
func (s *Scheme) DecryptWithInverse(c, kInv, kSum uint256.Int) (uint256.Int, error) {
	if c.Cmp(s.field.Modulus()) >= 0 {
		return uint256.Int{}, ErrCiphertextRange
	}
	return s.field.Mul(s.field.Sub(c, s.field.Reduce(kSum)), kInv), nil
}

// Aggregate adds two ciphertexts modulo p — the entire merging phase of an
// aggregator (paper §IV-A): PSR' = PSR₁ + PSR₂ mod p.
func (s *Scheme) Aggregate(c1, c2 uint256.Int) uint256.Int {
	return s.field.Add(c1, c2)
}

// AggregateAll folds any number of ciphertexts.
func (s *Scheme) AggregateAll(cs ...uint256.Int) uint256.Int {
	var acc uint256.Int
	for _, c := range cs {
		acc = s.field.Add(acc, c)
	}
	return acc
}

// SumCiphertexts folds any number of ciphertexts through the lazy-reduction
// kernel: plain 512-bit carry-chain adds with a single modular reduction at
// the end, allocation-free. It equals AggregateAll (Σ of n < 2^256 reduced
// terms fits a Word512 exactly) at a fraction of the per-element cost — the
// preferred merge path for aggregators.
func (s *Scheme) SumCiphertexts(cs []uint256.Int) uint256.Int {
	return s.field.SumLazy(cs)
}

// EncryptState is the precomputed hot-path form of Encrypt: the epoch keys
// (K, k) are reduced and validated exactly once, so each Encrypt call is one
// in-place field multiplication and addition with no per-call reductions or
// allocations. One EncryptState serves one (K, k) pair — in SIES, one source
// epoch.
type EncryptState struct {
	s *Scheme
	K uint256.Int // reduced, nonzero
	k uint256.Int // reduced
}

// NewEncryptState reduces and validates the key pair once.
func (s *Scheme) NewEncryptState(K, k uint256.Int) (EncryptState, error) {
	Kr := s.field.Reduce(K)
	if Kr.IsZero() {
		return EncryptState{}, ErrZeroMultiplier
	}
	return EncryptState{s: s, K: Kr, k: s.field.Reduce(k)}, nil
}

// Encrypt computes E(m, K, k, p) = K·m + k mod p under the precomputed keys.
func (es *EncryptState) Encrypt(m uint256.Int) (uint256.Int, error) {
	if m.Cmp(es.s.field.Modulus()) >= 0 {
		return uint256.Int{}, ErrPlaintextRange
	}
	var c uint256.Int
	es.s.field.MulInto(&c, &es.K, &m)
	es.s.field.AddInto(&c, &c, &es.k)
	return c, nil
}

// SumKeys adds blinding keys modulo p for use as the kSum argument of
// Decrypt.
func (s *Scheme) SumKeys(ks ...uint256.Int) uint256.Int {
	var acc uint256.Int
	for _, k := range ks {
		acc = s.field.Add(acc, s.field.Reduce(k))
	}
	return acc
}

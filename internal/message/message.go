// Package message implements the SIES plaintext layout m_{i,t} (paper §IV-A,
// Figure 2).
//
// A plaintext is a single 256-bit integer partitioned, from most to least
// significant, into three fields:
//
//	| value (32 or 64 bits) | zero padding (ceil(log2 N) bits) | share (160 bits) |
//
// The share field carries ss_{i,t}; summing up to N plaintexts makes the
// share field overflow by at most log2(N) bits, which the zero padding
// absorbs, so the value field accumulates Σ v_{i,t} exactly. The layout is
// valid when value+pad+share ≤ 256 bits and the maximal possible sum is
// below the field modulus.
package message

import (
	"errors"
	"fmt"

	"github.com/sies/sies/internal/secretshare"
	"github.com/sies/sies/internal/uint256"
)

// Value field widths supported by the layout. The paper uses 4-byte values
// and notes (footnote 1) that an 8-byte field handles results ≥ 2^32.
const (
	ValueBits32 = 32
	ValueBits64 = 64
)

// Errors reported by layout construction and packing.
var (
	ErrTooManySources = errors.New("message: layout cannot host this many sources in 256 bits")
	ErrValueBits      = errors.New("message: value width must be 32 or 64 bits")
	ErrValueRange     = errors.New("message: value exceeds the layout's value field")
	ErrNoSources      = errors.New("message: layout needs at least one source")
)

// Layout describes one partitioning of the 256-bit plaintext.
type Layout struct {
	valueBits int
	padBits   int
	n         int // maximum number of sources
}

// New returns the layout for n sources with the given value width.
// padBits = ceil(log2 n) with a minimum of 0 (n = 1 needs no padding).
func New(n int, valueBits int) (Layout, error) {
	if n < 1 {
		return Layout{}, ErrNoSources
	}
	if valueBits != ValueBits32 && valueBits != ValueBits64 {
		return Layout{}, ErrValueBits
	}
	pad := ceilLog2(n)
	if valueBits+pad+secretshare.ShareBits > 256 {
		return Layout{}, fmt.Errorf("%w: n=%d needs %d pad bits, %d total",
			ErrTooManySources, n, pad, valueBits+pad+secretshare.ShareBits)
	}
	return Layout{valueBits: valueBits, padBits: pad, n: n}, nil
}

// MustNew is New for parameters known to be valid; it panics on error.
func MustNew(n, valueBits int) Layout {
	l, err := New(n, valueBits)
	if err != nil {
		panic(err)
	}
	return l
}

// ValueBits returns the width of the value field in bits.
func (l Layout) ValueBits() int { return l.valueBits }

// PadBits returns the width of the zero padding in bits.
func (l Layout) PadBits() int { return l.padBits }

// Sources returns the maximum number of sources the layout supports.
func (l Layout) Sources() int { return l.n }

// TotalBits returns the number of plaintext bits in use.
func (l Layout) TotalBits() int { return l.valueBits + l.padBits + secretshare.ShareBits }

// shareRegionBits is the width of the low region holding share sums:
// share bits plus padding headroom.
func (l Layout) shareRegionBits() uint { return uint(secretshare.ShareBits + l.padBits) }

// MaxValue returns the largest per-source value the layout can carry.
func (l Layout) MaxValue() uint64 {
	if l.valueBits == 64 {
		return ^uint64(0)
	}
	return 1<<uint(l.valueBits) - 1
}

// Pack assembles m = v·2^(160+pad) + ss.
func (l Layout) Pack(v uint64, ss secretshare.Share) (uint256.Int, error) {
	if l.valueBits < 64 && v > l.MaxValue() {
		return uint256.Int{}, fmt.Errorf("%w: v=%d > %d", ErrValueRange, v, l.MaxValue())
	}
	m := uint256.NewInt(v).Lsh(l.shareRegionBits())
	m, carry := m.Add(ss.Int())
	if carry != 0 {
		return uint256.Int{}, errors.New("message: internal overflow packing plaintext")
	}
	return m, nil
}

// Unpack splits an aggregated plaintext into the summed value and the summed
// share region (the secret s_t, up to 160+pad bits).
func (l Layout) Unpack(m uint256.Int) (sum uint64, secret uint256.Int, err error) {
	region := l.shareRegionBits()
	high := m.Rsh(region)
	v, fits := high.Uint64()
	if !fits || (l.valueBits < 64 && v > l.MaxValue()) {
		return 0, uint256.Int{}, fmt.Errorf("%w: aggregated value overflows the %d-bit field",
			ErrValueRange, l.valueBits)
	}
	return v, m.And(uint256.Mask(region)), nil
}

// FitsField reports whether every possible aggregate under this layout stays
// below the modulus p, i.e. whether modular wrap-around can corrupt an exact
// sum. With the default p = 2^256 − 189 this can only fail for the 64-bit
// value layout at its extreme corner.
func (l Layout) FitsField(f *uint256.Field) bool {
	// Max aggregate: value field all-ones times 2^(region) plus a full
	// share region (sum of n max shares < 2^region).
	maxAgg := uint256.Mask(uint(l.valueBits)).Lsh(l.shareRegionBits())
	maxAgg, carry := maxAgg.Add(uint256.Mask(l.shareRegionBits()))
	if carry != 0 {
		return false
	}
	return maxAgg.Cmp(f.Modulus()) < 0
}

// ceilLog2 returns ceil(log2 n) for n ≥ 1.
func ceilLog2(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

package message

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/sies/sies/internal/secretshare"
	"github.com/sies/sies/internal/uint256"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11, 1 << 20: 20}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := New(0, ValueBits32); !errors.Is(err, ErrNoSources) {
		t.Fatalf("n=0: %v", err)
	}
	if _, err := New(8, 48); !errors.Is(err, ErrValueBits) {
		t.Fatalf("bits=48: %v", err)
	}
	// 32-bit values: pad can grow to 256-32-160 = 64 bits → n up to 2^64;
	// any int n is accepted.
	if _, err := New(1<<30, ValueBits32); err != nil {
		t.Fatalf("n=2^30/32-bit: %v", err)
	}
	// 64-bit values: pad limited to 32 bits → n up to 2^32.
	if _, err := New(1<<31, ValueBits64); err != nil {
		t.Fatalf("n=2^31/64-bit: %v", err)
	}
	if _, err := New(1<<33, ValueBits64); !errors.Is(err, ErrTooManySources) {
		t.Fatal("n=2^33/64-bit accepted")
	}
}

func TestLayoutAccessors(t *testing.T) {
	l := MustNew(1024, ValueBits32)
	if l.ValueBits() != 32 || l.PadBits() != 10 || l.Sources() != 1024 {
		t.Fatalf("layout = %+v", l)
	}
	if l.TotalBits() != 32+10+160 {
		t.Fatalf("TotalBits = %d", l.TotalBits())
	}
	if l.MaxValue() != 1<<32-1 {
		t.Fatalf("MaxValue = %d", l.MaxValue())
	}
	w := MustNew(4, ValueBits64)
	if w.MaxValue() != ^uint64(0) {
		t.Fatalf("64-bit MaxValue = %d", w.MaxValue())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	l := MustNew(1024, ValueBits32)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := uint64(r.Uint32())
		var ss secretshare.Share
		r.Read(ss[:])
		m, err := l.Pack(v, ss)
		if err != nil {
			t.Fatal(err)
		}
		gotV, gotS, err := l.Unpack(m)
		if err != nil {
			t.Fatal(err)
		}
		if gotV != v || gotS != ss.Int() {
			t.Fatalf("round trip lost data: v=%d→%d", v, gotV)
		}
	}
}

func TestPackValueRange(t *testing.T) {
	l := MustNew(4, ValueBits32)
	var ss secretshare.Share
	if _, err := l.Pack(1<<32, ss); !errors.Is(err, ErrValueRange) {
		t.Fatalf("oversized value: %v", err)
	}
	if _, err := l.Pack(1<<32-1, ss); err != nil {
		t.Fatalf("max value rejected: %v", err)
	}
}

func TestAggregationPreservesFields(t *testing.T) {
	// The core layout invariant: summing N packed plaintexts as plain
	// integers keeps value and share sums separated by the padding.
	for _, n := range []int{1, 2, 7, 64, 1024} {
		l := MustNew(n, ValueBits32)
		r := rand.New(rand.NewSource(int64(n)))
		var agg uint256.Int
		var wantV uint64
		var shares []secretshare.Share
		for i := 0; i < n; i++ {
			v := uint64(r.Intn(1 << 20)) // keep Σv below 2^32
			var ss secretshare.Share
			r.Read(ss[:])
			m, err := l.Pack(v, ss)
			if err != nil {
				t.Fatal(err)
			}
			var carry uint64
			agg, carry = agg.Add(m)
			if carry != 0 {
				t.Fatal("aggregate overflowed 256 bits")
			}
			wantV += v
			shares = append(shares, ss)
		}
		gotV, gotS, err := l.Unpack(agg)
		if err != nil {
			t.Fatal(err)
		}
		if gotV != wantV {
			t.Fatalf("n=%d: value sum %d, want %d", n, gotV, wantV)
		}
		if gotS != secretshare.SumShares(shares) {
			t.Fatalf("n=%d: share sum mismatch", n)
		}
	}
}

func TestPaddingAbsorbsWorstCaseCarry(t *testing.T) {
	// All-ones shares from every source: the carry out of the share field is
	// exactly ceil(log2 n) bits — the padding must swallow it all.
	n := 1024
	l := MustNew(n, ValueBits32)
	var ss secretshare.Share
	for i := range ss {
		ss[i] = 0xff
	}
	var agg uint256.Int
	for i := 0; i < n; i++ {
		m, err := l.Pack(3, ss)
		if err != nil {
			t.Fatal(err)
		}
		agg, _ = agg.Add(m)
	}
	gotV, gotS, err := l.Unpack(agg)
	if err != nil {
		t.Fatal(err)
	}
	if gotV != uint64(3*n) {
		t.Fatalf("value corrupted by share carries: %d", gotV)
	}
	want, _ := ss.Int().MulUint64(uint64(n))
	if gotS != want {
		t.Fatal("share sum mismatch under worst-case carry")
	}
}

func TestUnpackOverflowDetected(t *testing.T) {
	l := MustNew(4, ValueBits32)
	// Craft an aggregate whose value region exceeds 32 bits.
	m := uint256.NewInt(1 << 33).Lsh(l.shareRegionBits())
	if _, _, err := l.Unpack(m); !errors.Is(err, ErrValueRange) {
		t.Fatalf("overflowed value accepted: %v", err)
	}
}

func TestFitsField(t *testing.T) {
	f := uint256.NewDefaultField()
	if !MustNew(1024, ValueBits32).FitsField(f) {
		t.Fatal("32-bit/1024 layout rejected by default field")
	}
	if !MustNew(1<<20, ValueBits32).FitsField(f) {
		t.Fatal("32-bit/2^20 layout rejected by default field")
	}
	// The extreme 64-bit corner (64+32+160 = 256 bits all used) cannot fit
	// below 2^256−189.
	if MustNew(1<<32, ValueBits64).FitsField(f) {
		t.Fatal("full-width 64-bit layout claimed to fit")
	}
	// A modest 64-bit layout fits: 64+2+160 = 226 bits.
	if !MustNew(4, ValueBits64).FitsField(f) {
		t.Fatal("small 64-bit layout rejected")
	}
}

func TestWideValueLayout(t *testing.T) {
	l := MustNew(16, ValueBits64)
	var ss secretshare.Share
	ss[19] = 1
	big := uint64(1) << 40
	m, err := l.Pack(big, ss)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := l.Unpack(m)
	if err != nil {
		t.Fatal(err)
	}
	if v != big {
		t.Fatalf("wide value round trip: %d", v)
	}
}

func BenchmarkPack(b *testing.B) {
	l := MustNew(1024, ValueBits32)
	var ss secretshare.Share
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Pack(uint64(i&0xffff), ss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	l := MustNew(1024, ValueBits32)
	var ss secretshare.Share
	m, _ := l.Pack(4242, ss)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.Unpack(m); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPadWidthCapacity(t *testing.T) {
	// Ablation 3 (DESIGN.md §5): padding a full 64 bits supports up to 2^64
	// sources but leaves exactly 32 bits for the value field; the exact
	// ceil(log2 N) pad keeps the headroom proportional to the deployment.
	exact := MustNew(1024, ValueBits32)
	if exact.PadBits() != 10 {
		t.Fatalf("exact pad = %d", exact.PadBits())
	}
	full := MustNew(1<<50, ValueBits32)
	if full.PadBits() != 50 {
		t.Fatalf("full pad = %d", full.PadBits())
	}
	// With 64-bit values, a 2^32-source deployment exhausts all 256 bits.
	if l := MustNew(1<<32, ValueBits64); l.TotalBits() != 256 {
		t.Fatalf("total = %d", l.TotalBits())
	}
}

func TestPackUnpackQuick(t *testing.T) {
	// Property: Unpack ∘ Pack is the identity for any in-range value/share
	// across random layouts.
	r := rand.New(rand.NewSource(31))
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			n := 1 + r.Intn(1<<16)
			bits := ValueBits32
			if r.Intn(2) == 0 {
				bits = ValueBits64
			}
			l := MustNew(n, bits)
			v := r.Uint64()
			if bits == ValueBits32 {
				v &= 1<<32 - 1
			}
			var ss secretshare.Share
			r.Read(ss[:])
			vals[0] = reflect.ValueOf(l)
			vals[1] = reflect.ValueOf(v)
			vals[2] = reflect.ValueOf(ss)
		},
	}
	prop := func(l Layout, v uint64, ss secretshare.Share) bool {
		m, err := l.Pack(v, ss)
		if err != nil {
			return false
		}
		gotV, gotS, err := l.Unpack(m)
		return err == nil && gotV == v && gotS == ss.Int()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

package query

import (
	"strings"
	"testing"
	"time"
)

func TestParsePaperTemplate(t *testing.T) {
	q, err := Parse("SELECT SUM(attr) FROM Sensors WHERE attr > 10 EPOCH DURATION 30s")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggregates) != 1 || q.Aggregates[0].Kind != Sum || q.Aggregates[0].Attr != "attr" {
		t.Fatalf("aggregates %+v", q.Aggregates)
	}
	if q.Table != "Sensors" {
		t.Fatalf("table %q", q.Table)
	}
	if q.Epoch != 30*time.Second {
		t.Fatalf("epoch %v", q.Epoch)
	}
	if q.Where == nil {
		t.Fatal("missing WHERE")
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse("select count(*) from sensors epoch duration 1m")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where != nil {
		t.Fatal("unexpected WHERE")
	}
	if q.Epoch != time.Minute {
		t.Fatalf("epoch %v", q.Epoch)
	}
	pred, err := q.CompilePredicate(1)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(0) || !pred(99999) {
		t.Fatal("nil WHERE must accept everything")
	}
}

func TestParseMultipleAggregates(t *testing.T) {
	q, err := Parse("SELECT SUM(temp), AVG(temp), COUNT(*), STDDEV(temp) FROM Sensors EPOCH DURATION 5s")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggregates) != 4 {
		t.Fatalf("aggregates %+v", q.Aggregates)
	}
	attr, err := q.Attr()
	if err != nil {
		t.Fatal(err)
	}
	if attr != "temp" {
		t.Fatalf("attr %q", attr)
	}
}

func TestParseComplexPredicate(t *testing.T) {
	q, err := Parse(`SELECT SUM(temp) FROM Sensors
		WHERE (temp BETWEEN 20 AND 30 OR temp > 45.5) AND NOT temp = 25
		EPOCH DURATION 10s`)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(v float64) bool { return q.Where.Eval(map[string]float64{"temp": v}) }
	cases := map[float64]bool{
		25:   false, // excluded by NOT
		22:   true,  // in BETWEEN
		46:   true,  // > 45.5
		35:   false, // in neither branch
		30:   true,  // BETWEEN inclusive
		45.5: false, // strict >
	}
	for v, want := range cases {
		if eval(v) != want {
			t.Errorf("pred(%g) = %v, want %v", v, !want, want)
		}
	}
}

func TestCompilePredicateScaling(t *testing.T) {
	// Domain ×100: protocol readings are centi-degrees.
	q, err := Parse("SELECT SUM(temp) FROM Sensors WHERE temp BETWEEN 25 AND 45 EPOCH DURATION 1s")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := q.CompilePredicate(100)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(2500) || !pred(4500) || !pred(3000) {
		t.Fatal("in-range scaled readings rejected")
	}
	if pred(2499) || pred(4501) {
		t.Fatal("out-of-range scaled readings accepted")
	}
	if _, err := q.CompilePredicate(0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestCompilePredicateAttrMismatch(t *testing.T) {
	q, err := Parse("SELECT SUM(temp) FROM Sensors WHERE humidity > 10 EPOCH DURATION 1s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.CompilePredicate(1); err == nil {
		t.Fatal("foreign attribute accepted")
	}
}

func TestAttrConflicts(t *testing.T) {
	if _, err := Parse("SELECT SUM(a), AVG(b) FROM s EPOCH DURATION 1s"); err == nil {
		t.Fatal("mixed attributes accepted")
	}
	if _, err := Parse("SELECT SUM(*) FROM s EPOCH DURATION 1s"); err == nil {
		t.Fatal("SUM(*) accepted")
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := "SELECT SUM(temp), COUNT(*) FROM Sensors WHERE temp >= 20 AND temp <= 40 EPOCH DURATION 30s"
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if re.String() != q.String() {
		t.Fatalf("round trip unstable:\n%s\n%s", q.String(), re.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT FROM s EPOCH DURATION 1s",
		"SELECT MAX(v) FROM s EPOCH DURATION 1s",                         // unsupported aggregate
		"SELECT SUM(v FROM s EPOCH DURATION 1s",                          // missing paren
		"SELECT SUM(v) s EPOCH DURATION 1s",                              // missing FROM
		"SELECT SUM(v) FROM s WHERE EPOCH DURATION 1s",                   // empty WHERE
		"SELECT SUM(v) FROM s WHERE v >",                                 // dangling op
		"SELECT SUM(v) FROM s WHERE v ~ 3 EPOCH DURATION 1s",             // bad operator
		"SELECT SUM(v) FROM s WHERE v BETWEEN 9 AND 1 EPOCH DURATION 1s", // inverted bounds
		"SELECT SUM(v) FROM s EPOCH DURATION",                            // missing duration
		"SELECT SUM(v) FROM s EPOCH DURATION banana",                     // bad duration
		"SELECT SUM(v) FROM s EPOCH DURATION -5s",                        // negative duration
		"SELECT SUM(v) FROM s EPOCH DURATION 1s trailing",                // trailing tokens
		"SELECT SUM(v) FROM s WHERE v ! 3 EPOCH DURATION 1s",             // stray !
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select sum(v) from s where v between 1 and 2 or not v = 5 epoch duration 500ms")
	if err != nil {
		t.Fatal(err)
	}
	if q.Epoch != 500*time.Millisecond {
		t.Fatalf("epoch %v", q.Epoch)
	}
}

func TestCompoundDuration(t *testing.T) {
	q, err := Parse("SELECT SUM(v) FROM s EPOCH DURATION 1m30s")
	if err != nil {
		t.Fatal(err)
	}
	if q.Epoch != 90*time.Second {
		t.Fatalf("epoch %v", q.Epoch)
	}
}

func TestExprStrings(t *testing.T) {
	q, err := Parse("SELECT SUM(v) FROM s WHERE NOT (v < 1 OR v > 9) AND v != 5 EPOCH DURATION 1s")
	if err != nil {
		t.Fatal(err)
	}
	s := q.Where.String()
	for _, frag := range []string{"NOT", "OR", "AND", "!="} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered predicate %q missing %q", s, frag)
		}
	}
}

func TestCompilePredicateCountStar(t *testing.T) {
	// COUNT(*) queries bind the WHERE attribute to the one the clause names.
	q, err := Parse("SELECT COUNT(*) FROM Sensors WHERE detector = 1 EPOCH DURATION 1s")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := q.CompilePredicate(1)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(1) || pred(0) {
		t.Fatal("COUNT(*) predicate mis-bound")
	}
	// Two different attributes in a COUNT(*) WHERE are ambiguous.
	q2, err := Parse("SELECT COUNT(*) FROM s WHERE a > 1 AND b > 2 EPOCH DURATION 1s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.CompilePredicate(1); err == nil {
		t.Fatal("ambiguous COUNT(*) WHERE accepted")
	}
}

// Package query parses the paper's continuous-query template (§III-B):
//
//	SELECT SUM(attr) FROM Sensors
//	WHERE pred
//	EPOCH DURATION T
//
// extended with the derived aggregates the paper reduces to SUM (COUNT, AVG,
// VARIANCE, STDDEV) and a boolean predicate grammar over numeric attributes:
//
//	query    := SELECT agg {',' agg} FROM ident [WHERE pred] EPOCH DURATION dur
//	agg      := (SUM|COUNT|AVG|VARIANCE|STDDEV) '(' (ident|'*') ')'
//	pred     := and {OR and}
//	and      := cmp {AND cmp}
//	cmp      := ident op number
//	          | ident BETWEEN number AND number
//	          | NOT cmp
//	          | '(' pred ')'
//	op       := '<' | '<=' | '>' | '>=' | '=' | '!='
//	dur      := Go duration literal ("30s", "5m", …)
//
// Keywords are case-insensitive. The parsed predicate compiles to the
// integer predicate the SIES sources evaluate (internal/queries.Predicate),
// given the domain scale that maps readings onto protocol integers.
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Aggregate kinds of the derived query class.
type Aggregate int

// Supported aggregates.
const (
	Sum Aggregate = iota
	Count
	Avg
	Variance
	Stddev
)

// String renders the aggregate keyword.
func (a Aggregate) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	case Variance:
		return "VARIANCE"
	case Stddev:
		return "STDDEV"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// AggSpec is one selected aggregate.
type AggSpec struct {
	Kind Aggregate
	Attr string // "*" for COUNT(*)
}

// Query is a parsed continuous query.
type Query struct {
	Aggregates []AggSpec
	Table      string
	Where      Expr // nil when absent
	Epoch      time.Duration
}

// Attr returns the single attribute the query aggregates over. Aggregates
// must agree on it (COUNT(*) is attribute-neutral).
func (q *Query) Attr() (string, error) {
	attr := ""
	for _, a := range q.Aggregates {
		if a.Attr == "*" {
			continue
		}
		if attr == "" {
			attr = a.Attr
		} else if attr != a.Attr {
			return "", fmt.Errorf("query: mixed attributes %q and %q", attr, a.Attr)
		}
	}
	if attr == "" {
		attr = "*"
	}
	return attr, nil
}

// String re-renders the query canonically.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, a := range q.Aggregates {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s(%s)", a.Kind, a.Attr)
	}
	fmt.Fprintf(&b, " FROM %s", q.Table)
	if q.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", q.Where)
	}
	fmt.Fprintf(&b, " EPOCH DURATION %s", q.Epoch)
	return b.String()
}

// Expr is a boolean predicate over named numeric attributes.
type Expr interface {
	fmt.Stringer
	// Eval evaluates against attribute values in application units.
	Eval(attrs map[string]float64) bool
}

// cmpExpr is attr op value.
type cmpExpr struct {
	attr string
	op   string
	val  float64
}

func (c cmpExpr) String() string { return fmt.Sprintf("%s %s %g", c.attr, c.op, c.val) }

func (c cmpExpr) Eval(attrs map[string]float64) bool {
	v := attrs[c.attr]
	switch c.op {
	case "<":
		return v < c.val
	case "<=":
		return v <= c.val
	case ">":
		return v > c.val
	case ">=":
		return v >= c.val
	case "=":
		return v == c.val
	case "!=":
		return v != c.val
	default:
		return false
	}
}

// betweenExpr is attr BETWEEN lo AND hi (inclusive).
type betweenExpr struct {
	attr   string
	lo, hi float64
}

func (b betweenExpr) String() string {
	return fmt.Sprintf("%s BETWEEN %g AND %g", b.attr, b.lo, b.hi)
}

func (b betweenExpr) Eval(attrs map[string]float64) bool {
	v := attrs[b.attr]
	return v >= b.lo && v <= b.hi
}

type andExpr struct{ terms []Expr }

func (a andExpr) String() string { return joinExpr(a.terms, " AND ") }

func (a andExpr) Eval(attrs map[string]float64) bool {
	for _, t := range a.terms {
		if !t.Eval(attrs) {
			return false
		}
	}
	return true
}

type orExpr struct{ terms []Expr }

func (o orExpr) String() string { return joinExpr(o.terms, " OR ") }

func (o orExpr) Eval(attrs map[string]float64) bool {
	for _, t := range o.terms {
		if t.Eval(attrs) {
			return true
		}
	}
	return false
}

type notExpr struct{ inner Expr }

func (n notExpr) String() string { return "NOT (" + n.inner.String() + ")" }

func (n notExpr) Eval(attrs map[string]float64) bool { return !n.inner.Eval(attrs) }

func joinExpr(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = "(" + t.String() + ")"
	}
	return strings.Join(parts, sep)
}

// --- lexer -------------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , and comparison operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(ch)):
			l.pos++
		case ch == '(' || ch == ')' || ch == ',' || ch == '*':
			l.toks = append(l.toks, token{tokSymbol, string(ch), l.pos})
			l.pos++
		case ch == '<' || ch == '>' || ch == '=' || ch == '!':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			text := l.src[start:l.pos]
			if text == "!" {
				return nil, fmt.Errorf("query: stray '!' at offset %d", start)
			}
			l.toks = append(l.toks, token{tokSymbol, text, start})
		case ch >= '0' && ch <= '9' || ch == '-' || ch == '.':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' ||
				l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case unicode.IsLetter(rune(ch)) || ch == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) ||
				unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", ch, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(l.src)})
	return l.toks, nil
}

// --- parser ------------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes the given case-insensitive keyword or fails.
func (p *parser) keyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("query: expected %s at offset %d, found %q", kw, t.pos, t.text)
	}
	return nil
}

// isKeyword reports whether the next token is the given keyword.
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) symbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("query: expected %q at offset %d, found %q", sym, t.pos, t.text)
	}
	return nil
}

func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected number at offset %d, found %q", t.pos, t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number %q: %w", t.text, err)
	}
	return v, nil
}

var aggKeywords = map[string]Aggregate{
	"SUM": Sum, "COUNT": Count, "AVG": Avg, "VARIANCE": Variance, "STDDEV": Stddev,
}

// Parse parses one continuous query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}

	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("query: expected aggregate at offset %d", t.pos)
		}
		kind, ok := aggKeywords[strings.ToUpper(t.text)]
		if !ok {
			return nil, fmt.Errorf("query: unknown aggregate %q", t.text)
		}
		if err := p.symbol("("); err != nil {
			return nil, err
		}
		arg := p.next()
		attr := arg.text
		if arg.kind != tokIdent && attr != "*" {
			return nil, fmt.Errorf("query: expected attribute or * at offset %d", arg.pos)
		}
		if attr == "*" && kind != Count {
			return nil, fmt.Errorf("query: %s(*) is not meaningful", kind)
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		q.Aggregates = append(q.Aggregates, AggSpec{Kind: kind, Attr: attr})
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if _, err := q.Attr(); err != nil {
		return nil, err
	}

	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("query: expected table name at offset %d", tbl.pos)
	}
	q.Table = tbl.text

	if p.isKeyword("WHERE") {
		p.next()
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = expr
	}

	if err := p.keyword("EPOCH"); err != nil {
		return nil, err
	}
	if err := p.keyword("DURATION"); err != nil {
		return nil, err
	}
	// A duration literal lexes as number + ident (e.g. "30" "s") or, for
	// forms like "1m30s", number ident number ident…; re-join the raw text.
	start := p.peek().pos
	var durEnd int
	for p.peek().kind == tokNumber || (p.peek().kind == tokIdent && !p.isKeyword("")) {
		t := p.next()
		durEnd = t.pos + len(t.text)
		if p.peek().kind == tokEOF {
			break
		}
	}
	if durEnd <= start {
		return nil, errors.New("query: missing epoch duration")
	}
	dur, err := time.ParseDuration(strings.TrimSpace(src[start:durEnd]))
	if err != nil {
		return nil, fmt.Errorf("query: bad epoch duration: %w", err)
	}
	if dur <= 0 {
		return nil, errors.New("query: epoch duration must be positive")
	}
	q.Epoch = dur

	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at offset %d: %q", t.pos, t.text)
	}
	return q, nil
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.isKeyword("OR") {
		p.next()
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return orExpr{terms: terms}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.isKeyword("AND") {
		p.next()
		t, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return andExpr{terms: terms}, nil
}

func (p *parser) parseCmp() (Expr, error) {
	if p.isKeyword("NOT") {
		p.next()
		inner, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	}
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	attrTok := p.next()
	if attrTok.kind != tokIdent {
		return nil, fmt.Errorf("query: expected attribute at offset %d", attrTok.pos)
	}
	if p.isKeyword("BETWEEN") {
		p.next()
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		if lo > hi {
			return nil, fmt.Errorf("query: BETWEEN bounds inverted (%g > %g)", lo, hi)
		}
		return betweenExpr{attr: attrTok.text, lo: lo, hi: hi}, nil
	}
	opTok := p.next()
	switch opTok.text {
	case "<", "<=", ">", ">=", "=", "!=":
	default:
		return nil, fmt.Errorf("query: expected comparison operator at offset %d, found %q", opTok.pos, opTok.text)
	}
	v, err := p.number()
	if err != nil {
		return nil, err
	}
	return cmpExpr{attr: attrTok.text, op: opTok.text, val: v}, nil
}

// CompilePredicate turns the WHERE clause into the integer predicate the
// SIES sources evaluate: the protocol reading is attr·scale, so the clause
// is evaluated at reading/scale in application units. A nil WHERE accepts
// everything. Only the aggregated attribute may appear in the clause (each
// source measures one attribute per query).
func (q *Query) CompilePredicate(scale float64) (func(reading uint64) bool, error) {
	if scale <= 0 {
		return nil, errors.New("query: scale must be positive")
	}
	if q.Where == nil {
		return func(uint64) bool { return true }, nil
	}
	attr, err := q.Attr()
	if err != nil {
		return nil, err
	}
	if err := checkAttrs(q.Where, attr); err != nil {
		return nil, err
	}
	if attr == "*" {
		// COUNT(*)-only query: the WHERE clause names the measured
		// attribute; it must name exactly one.
		refs := map[string]bool{}
		collectAttrs(q.Where, refs)
		if len(refs) != 1 {
			return nil, fmt.Errorf("query: WHERE must reference exactly one attribute, found %d", len(refs))
		}
		for a := range refs {
			attr = a
		}
	}
	expr := q.Where
	boundAttr := attr
	return func(reading uint64) bool {
		return expr.Eval(map[string]float64{boundAttr: float64(reading) / scale})
	}, nil
}

// collectAttrs gathers every attribute name the clause references.
func collectAttrs(e Expr, out map[string]bool) {
	switch v := e.(type) {
	case cmpExpr:
		out[v.attr] = true
	case betweenExpr:
		out[v.attr] = true
	case andExpr:
		for _, t := range v.terms {
			collectAttrs(t, out)
		}
	case orExpr:
		for _, t := range v.terms {
			collectAttrs(t, out)
		}
	case notExpr:
		collectAttrs(v.inner, out)
	}
}

// checkAttrs verifies every attribute in the clause matches the aggregated
// one ("*" permits any single attribute).
func checkAttrs(e Expr, attr string) error {
	switch v := e.(type) {
	case cmpExpr:
		if attr != "*" && v.attr != attr {
			return fmt.Errorf("query: WHERE references %q but the query aggregates %q", v.attr, attr)
		}
	case betweenExpr:
		if attr != "*" && v.attr != attr {
			return fmt.Errorf("query: WHERE references %q but the query aggregates %q", v.attr, attr)
		}
	case andExpr:
		for _, t := range v.terms {
			if err := checkAttrs(t, attr); err != nil {
				return err
			}
		}
	case orExpr:
		for _, t := range v.terms {
			if err := checkAttrs(t, attr); err != nil {
				return err
			}
		}
	case notExpr:
		return checkAttrs(v.inner, attr)
	}
	return nil
}

package query

import "testing"

// FuzzParse checks the parser never panics on arbitrary input, and that
// every accepted query re-renders to a string that parses to the same
// canonical form (idempotent canonicalisation).
func FuzzParse(f *testing.F) {
	f.Add("SELECT SUM(attr) FROM Sensors WHERE pred > 1 EPOCH DURATION 30s")
	f.Add("select count(*) from s epoch duration 1m")
	f.Add("SELECT SUM(v) FROM s WHERE (v BETWEEN 1 AND 2 OR NOT v != 3) AND v <= 4 EPOCH DURATION 1m30s")
	f.Add("")
	f.Add("SELECT")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q failed to parse: %v", canon, err)
		}
		if q2.String() != canon {
			t.Fatalf("canonicalisation not idempotent:\n%s\n%s", canon, q2.String())
		}
	})
}

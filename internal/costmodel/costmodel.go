// Package costmodel encodes the analytical cost models of the paper's §V:
// Equations 1–9 (computational cost at source, aggregator and querier for
// CMT, SECOA_S and SIES) and Equations 10–11 (communication cost per network
// edge), parameterised by the micro-cost constants of Table II.
//
// SIES and CMT costs are dataset-independent; SECOA_S costs depend on the
// dataset through the source value v and the sketch values x_i, which are
// bounded by the domain: x_i ∈ [0, ceil(log2(N·D_U))]. Bounding those
// variables yields the best-/worst-case envelopes drawn as error bars in
// Figure 4 and reported in Tables III and V.
//
// Micro-costs can come from the paper (PaperMicroCosts, the Table II column
// measured on the authors' 2.66 GHz Core i7 with GMP/OpenSSL) or from a live
// calibration of this repository's own primitives (Calibrate), which is what
// the benchmark harness uses so that model and measurement share a machine.
package costmodel

import (
	"errors"
	"math"
)

// MicroCosts holds the per-operation costs of Table II, in seconds.
type MicroCosts struct {
	Csk    float64 // generate one sketch insertion
	Crsa   float64 // one RSA encryption (1024-bit, small exponent)
	Chm1   float64 // one HMAC-SHA1
	Chm256 float64 // one HMAC-SHA256
	Ca20   float64 // 20-byte modular addition
	Ca32   float64 // 32-byte modular addition
	Cm32   float64 // 32-byte modular multiplication
	Cm128  float64 // 128-byte modular multiplication
	Cmi32  float64 // 32-byte modular inverse
}

// Message-component sizes in bytes (Table II).
const (
	SizeSketch = 1   // S_sk: one sketch instance value
	SizeInf    = 20  // S_inf: one (aggregate) inflation certificate
	SizeSEAL   = 128 // S_SEAL: one SEAL (1024-bit RSA modulus)
	SizeCMT    = 20  // CMT ciphertext
	SizeSIES   = 32  // SIES PSR
)

const microsecond = 1e-6

// PaperMicroCosts returns the Table II "typical value" column.
func PaperMicroCosts() MicroCosts {
	return MicroCosts{
		Csk:    0.037 * microsecond,
		Crsa:   5.36 * microsecond,
		Chm1:   0.46 * microsecond,
		Chm256: 1.02 * microsecond,
		Ca20:   0.15 * microsecond,
		Ca32:   0.37 * microsecond,
		Cm32:   0.45 * microsecond,
		Cm128:  1.39 * microsecond,
		Cmi32:  3.2 * microsecond,
	}
}

// Config carries the system parameters of Table IV.
type Config struct {
	N  int    // number of sources
	J  int    // number of sketch instances (300 in the paper)
	F  int    // aggregator fanout
	DL uint64 // domain lower bound
	DU uint64 // domain upper bound
}

// DefaultConfig is the paper's default: N=1024, J=300, F=4, D=[1800,5000].
func DefaultConfig() Config { return Config{N: 1024, J: 300, F: 4, DL: 1800, DU: 5000} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 1 || c.J < 1 || c.F < 2 || c.DU < c.DL || c.DU == 0 {
		return errors.New("costmodel: invalid configuration")
	}
	return nil
}

// XBound returns the maximum sketch value ceil(log2(N·D_U)), the upper end
// of the x_i range in Table II (23 for the default configuration).
func (c Config) XBound() int {
	return int(math.Ceil(math.Log2(float64(c.N) * float64(c.DU))))
}

// RollBound returns the maximum per-SEAL rolling count, XBound−1 (22 for the
// defaults, matching Table II's rl_i ∈ [0, 22]).
func (c Config) RollBound() int { return c.XBound() - 1 }

// Bounds is a best-/worst-case envelope in seconds (or bytes for the
// communication models).
type Bounds struct{ Min, Max float64 }

// --- Computational cost at a source ---

// CMTSource implements Equation 1: one HM1 key derivation plus one 20-byte
// modular addition.
func (m MicroCosts) CMTSource() float64 { return m.Chm1 + m.Ca20 }

// SIESSource implements Equation 3: two HM256, one HM1, one 32-byte modular
// multiplication and one addition.
func (m MicroCosts) SIESSource() float64 {
	return 2*m.Chm256 + m.Chm1 + m.Cm32 + m.Ca32
}

// SECOASource implements Equation 2 for a specific source value v and total
// sketch-roll count sumX = Σ x_i.
func (m MicroCosts) SECOASource(cfg Config, v uint64, sumX int) float64 {
	return float64(cfg.J)*(float64(v)*m.Csk+2*m.Chm1) + float64(sumX)*m.Crsa
}

// SECOASourceBounds bounds Equation 2 over the domain: v ∈ [D_L, D_U],
// Σ x_i ∈ [0, J·XBound].
func (m MicroCosts) SECOASourceBounds(cfg Config) Bounds {
	return Bounds{
		Min: m.SECOASource(cfg, cfg.DL, 0),
		Max: m.SECOASource(cfg, cfg.DU, cfg.J*cfg.XBound()),
	}
}

// --- Computational cost at an aggregator ---

// CMTAggregator implements Equation 4: F−1 modular additions.
func (m MicroCosts) CMTAggregator(f int) float64 { return float64(f-1) * m.Ca20 }

// SIESAggregator implements Equation 6: F−1 32-byte modular additions.
func (m MicroCosts) SIESAggregator(f int) float64 { return float64(f-1) * m.Ca32 }

// SECOAAggregator implements Equation 5 for a total rolling count
// sumRolls = Σ rl_i.
func (m MicroCosts) SECOAAggregator(cfg Config, sumRolls int) float64 {
	return float64(cfg.J)*float64(cfg.F-1)*m.Cm128 + float64(sumRolls)*m.Crsa
}

// SECOAAggregatorBounds bounds Equation 5: Σ rl_i ∈ [0, J·RollBound].
func (m MicroCosts) SECOAAggregatorBounds(cfg Config) Bounds {
	return Bounds{
		Min: m.SECOAAggregator(cfg, 0),
		Max: m.SECOAAggregator(cfg, cfg.J*cfg.RollBound()),
	}
}

// --- Computational cost at the querier ---

// CMTQuerier implements Equation 7: N key derivations and subtractions.
func (m MicroCosts) CMTQuerier(n int) float64 { return float64(n) * (m.Chm1 + m.Ca20) }

// SIESQuerier implements Equation 9: N share derivations (HM1), N+1 key
// derivations (HM256), 2N−1 modular additions, one inverse and one
// multiplication.
func (m MicroCosts) SIESQuerier(n int) float64 {
	return float64(n)*m.Chm1 + float64(n+1)*m.Chm256 +
		float64(2*n-1)*m.Ca32 + m.Cmi32 + m.Cm32
}

// SECOAQuerier implements Equation 8 for concrete dataset variables: the
// number of collected SEALs, the total rolling count over those SEALs, and
// the maximum sketch value xmax.
func (m MicroCosts) SECOAQuerier(cfg Config, seals, sumRolls, xmax int) float64 {
	jn := float64(cfg.J) * float64(cfg.N)
	return jn*m.Chm1 +
		(float64(seals)+jn-2)*m.Cm128 +
		(float64(sumRolls)+float64(xmax))*m.Crsa +
		float64(cfg.J)*m.Chm1
}

// SECOAQuerierBounds bounds Equation 8: seals ∈ [1, XBound], total rolls
// ∈ [0, RollBound], xmax ∈ [0, XBound].
func (m MicroCosts) SECOAQuerierBounds(cfg Config) Bounds {
	return Bounds{
		Min: m.SECOAQuerier(cfg, 1, 0, 0),
		Max: m.SECOAQuerier(cfg, cfg.XBound(), cfg.RollBound(), cfg.XBound()),
	}
}

// --- Communication cost per network edge (bytes) ---

// CMTComm is the constant 20-byte CMT ciphertext on every edge.
func CMTComm() int { return SizeCMT }

// SIESComm is the constant 32-byte PSR on every edge.
func SIESComm() int { return SizeSIES }

// SECOACommSA implements Equation 10 — the source→aggregator and
// aggregator→aggregator edges carry J sketch values, J SEALs and one
// aggregate certificate.
func SECOACommSA(cfg Config) int {
	return cfg.J*SizeSketch + cfg.J*SizeSEAL + SizeInf
}

// SECOACommAQ implements Equation 11 for a concrete SEAL count.
func SECOACommAQ(cfg Config, seals int) int {
	return cfg.J*SizeSketch + seals*SizeSEAL + SizeInf
}

// SECOACommAQBounds bounds Equation 11: seals ∈ [1, XBound].
func SECOACommAQBounds(cfg Config) Bounds {
	return Bounds{
		Min: float64(SECOACommAQ(cfg, 1)),
		Max: float64(SECOACommAQ(cfg, cfg.XBound())),
	}
}

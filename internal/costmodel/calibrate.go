package costmodel

import (
	"math/rand"
	"time"

	"github.com/sies/sies/internal/cmt"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/rsax"
	"github.com/sies/sies/internal/sketch"
	"github.com/sies/sies/internal/uint256"
)

// timeOp measures the per-call cost of f in seconds, adaptively growing the
// iteration count until the sample is long enough to trust.
func timeOp(f func(n int)) float64 {
	const target = 20 * time.Millisecond
	n := 64
	for {
		start := time.Now()
		f(n)
		elapsed := time.Since(start)
		if elapsed >= target || n >= 1<<22 {
			return elapsed.Seconds() / float64(n)
		}
		n *= 4
	}
}

// Calibrate measures the Table II micro-costs on the current machine using
// this repository's own primitives, so that the analytical models and the
// live benchmarks share one cost basis. It takes a few hundred milliseconds.
func Calibrate() (MicroCosts, error) {
	var m MicroCosts

	key := make([]byte, prf.LongTermKeySize)
	m.Chm1 = timeOp(func(n int) {
		for i := 0; i < n; i++ {
			prf.HM1Epoch(key, prf.Epoch(i))
		}
	})
	m.Chm256 = timeOp(func(n int) {
		for i := 0; i < n; i++ {
			prf.HM256Epoch(key, prf.Epoch(i))
		}
	})

	// 20-byte modular addition via the CMT aggregator.
	var c1, c2 cmt.Ciphertext
	for i := range c1 {
		c1[i], c2[i] = byte(i), byte(255-i)
	}
	m.Ca20 = timeOp(func(n int) {
		for i := 0; i < n; i++ {
			c1 = cmt.Aggregate(c1, c2)
		}
	})

	// 32-byte field operations.
	field := uint256.NewDefaultField()
	x, err := field.Rand()
	if err != nil {
		return MicroCosts{}, err
	}
	y, err := field.RandNonZero()
	if err != nil {
		return MicroCosts{}, err
	}
	m.Ca32 = timeOp(func(n int) {
		for i := 0; i < n; i++ {
			x = field.Add(x, y)
		}
	})
	m.Cm32 = timeOp(func(n int) {
		for i := 0; i < n; i++ {
			x = field.Mul(x, y)
		}
	})
	m.Cmi32 = timeOp(func(n int) {
		for i := 0; i < n; i++ {
			if _, err := field.Inv(y); err != nil {
				panic(err) // y is nonzero by construction
			}
		}
	})

	// 1024-bit RSA encryption and 128-byte modular multiplication.
	pk, err := rsax.GenerateKey(rsax.DefaultModulusBits, rsax.DefaultExponent)
	if err != nil {
		return MicroCosts{}, err
	}
	seed := pk.SeedFromBytes([]byte("calibration seed"))
	m.Crsa = timeOp(func(n int) {
		cur := seed
		for i := 0; i < n; i++ {
			next, err := pk.Encrypt(cur)
			if err != nil {
				panic(err)
			}
			cur = next
		}
	})
	other := pk.SeedFromBytes([]byte("other"))
	m.Cm128 = timeOp(func(n int) {
		cur := seed
		for i := 0; i < n; i++ {
			cur = pk.Fold(cur, other)
		}
	})

	// Sketch insertion cost: amortised over a large honest generation.
	p := sketch.Params{J: 1, MaxLevel: 24}
	rng := rand.New(rand.NewSource(1))
	const insertions = 1 << 17
	start := time.Now()
	if _, err := sketch.Generate(p, insertions, rng); err != nil {
		return MicroCosts{}, err
	}
	m.Csk = time.Since(start).Seconds() / insertions

	return m, nil
}

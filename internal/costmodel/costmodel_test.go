package costmodel

import (
	"math"
	"testing"
)

// within asserts |got−want|/want ≤ tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %g, want 0", name, got)
		}
		return
	}
	if rel := math.Abs(got-want) / want; rel > tol {
		t.Errorf("%s = %g, want %g (rel err %.3f > %.3f)", name, got, want, rel, tol)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 0, J: 1, F: 2, DL: 1, DU: 2},
		{N: 1, J: 0, F: 2, DL: 1, DU: 2},
		{N: 1, J: 1, F: 1, DL: 1, DU: 2},
		{N: 1, J: 1, F: 2, DL: 5, DU: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestXBoundMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	// Table II: x_i ∈ [0, 23], rl_i ∈ [0, 22] for N=1024, D_U=5000.
	if cfg.XBound() != 23 {
		t.Fatalf("XBound = %d, want 23", cfg.XBound())
	}
	if cfg.RollBound() != 22 {
		t.Fatalf("RollBound = %d, want 22", cfg.RollBound())
	}
}

// TestTable3 reproduces the analytical Table III of the paper by plugging
// the Table II constants into Equations 1–11. Tolerances are a few percent:
// the paper prints rounded figures.
func TestTable3(t *testing.T) {
	m := PaperMicroCosts()
	cfg := DefaultConfig()

	// Source: CMT 1.17 µs (paper prints the HM1+add sum with extra
	// rounding; the formula gives 0.61 µs with Table II constants — the
	// paper's 1.17 µs appears to fold in message assembly; accept wide).
	if got := m.CMTSource(); got < 0.3e-6 || got > 1.5e-6 {
		t.Errorf("CMT source = %g s, expected sub-2µs", got)
	}
	// SIES source ≈ 3.32–3.46 µs.
	within(t, "SIES source", m.SIESSource(), 3.46e-6, 0.06)
	// SECOA source: 20.26 ms / 92.75 ms.
	b := m.SECOASourceBounds(cfg)
	within(t, "SECOA source min", b.Min, 20.26e-3, 0.02)
	within(t, "SECOA source max", b.Max, 92.75e-3, 0.02)

	// Aggregator: CMT 0.45 µs, SIES 1.11 µs, SECOA 1.25/36.63 ms.
	within(t, "CMT aggregator", m.CMTAggregator(4), 0.45e-6, 0.02)
	within(t, "SIES aggregator", m.SIESAggregator(4), 1.11e-6, 0.02)
	b = m.SECOAAggregatorBounds(cfg)
	within(t, "SECOA aggregator min", b.Min, 1.25e-3, 0.02)
	within(t, "SECOA aggregator max", b.Max, 36.63e-3, 0.02)

	// Querier: CMT 0.62 ms, SIES 2.28 ms, SECOA ≈ 568.46/568.63 ms.
	within(t, "CMT querier", m.CMTQuerier(1024), 0.62e-3, 0.02)
	within(t, "SIES querier", m.SIESQuerier(1024), 2.28e-3, 0.02)
	b = m.SECOAQuerierBounds(cfg)
	within(t, "SECOA querier min", b.Min, 568.46e-3, 0.01)
	within(t, "SECOA querier max", b.Max, 568.63e-3, 0.01)
}

// TestTable5Comm reproduces the communication rows of Tables III and V.
func TestTable5Comm(t *testing.T) {
	cfg := DefaultConfig()
	if CMTComm() != 20 || SIESComm() != 32 {
		t.Fatal("constant edge costs wrong")
	}
	// S-A and A-A: 300·1 + 300·128 + 20 = 38,720 bytes ("38.72 KB").
	if got := SECOACommSA(cfg); got != 38720 {
		t.Fatalf("SECOA S-A = %d, want 38720", got)
	}
	// A-Q: min 448 bytes (1 SEAL), max ≈ 3.25 KB (23 SEALs → 3264).
	b := SECOACommAQBounds(cfg)
	if b.Min != 448 {
		t.Fatalf("SECOA A-Q min = %f, want 448", b.Min)
	}
	if b.Max != 3264 {
		t.Fatalf("SECOA A-Q max = %f, want 3264", b.Max)
	}
	// Paper's Table V actual: 832 bytes corresponds to 4 collected SEALs.
	if got := SECOACommAQ(cfg, 4); got != 832 {
		t.Fatalf("SECOA A-Q (4 seals) = %d, want 832", got)
	}
}

// TestFigureShapes checks the qualitative claims the figures make.
func TestFigureShapes(t *testing.T) {
	m := PaperMicroCosts()
	cfg := DefaultConfig()

	// Figure 4: SIES source ≥ 2 orders of magnitude below SECOA's best case
	// and within ~10× of CMT; flat in D while SECOA grows.
	if ratio := m.SECOASourceBounds(cfg).Min / m.SIESSource(); ratio < 100 {
		t.Errorf("SECOA/SIES source ratio = %f, want ≥ 100", ratio)
	}
	small := cfg
	small.DL, small.DU = 18, 50
	big := cfg
	big.DL, big.DU = 180000, 500000
	if m.SECOASourceBounds(big).Min <= m.SECOASourceBounds(small).Min {
		t.Error("SECOA source cost does not grow with the domain")
	}

	// Figure 5: linear growth in F for all three schemes.
	for _, f := range []int{3, 4, 5, 6} {
		prev := cfg
		prev.F = f - 1
		cur := cfg
		cur.F = f
		if m.SIESAggregator(f) <= m.SIESAggregator(f-1) {
			t.Error("SIES aggregator cost not increasing in F")
		}
		if m.SECOAAggregatorBounds(cur).Min <= m.SECOAAggregatorBounds(prev).Min {
			t.Error("SECOA aggregator cost not increasing in F")
		}
	}

	// Figure 6(a): querier cost linear in N; SIES ≥ 1 order below SECOA.
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		c := cfg
		c.N = n
		if ratio := m.SECOAQuerierBounds(c).Min / m.SIESQuerier(n); ratio < 10 {
			t.Errorf("N=%d: SECOA/SIES querier ratio = %f, want ≥ 10", n, ratio)
		}
	}
	if m.SIESQuerier(2048)/m.SIESQuerier(1024) < 1.9 {
		t.Error("SIES querier cost not linear in N")
	}
}

func TestCalibrate(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration takes a moment")
	}
	m, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: every cost positive, and the expected orderings hold on any
	// real machine: RSA ≫ HMAC ≫ modular addition.
	for name, v := range map[string]float64{
		"Csk": m.Csk, "Crsa": m.Crsa, "Chm1": m.Chm1, "Chm256": m.Chm256,
		"Ca20": m.Ca20, "Ca32": m.Ca32, "Cm32": m.Cm32, "Cm128": m.Cm128, "Cmi32": m.Cmi32,
	} {
		if v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
	if m.Crsa < m.Chm1 {
		t.Errorf("RSA (%g) measured cheaper than HMAC-SHA1 (%g)", m.Crsa, m.Chm1)
	}
	if m.Chm1 < m.Ca32 {
		t.Errorf("HMAC-SHA1 (%g) measured cheaper than 32-byte addition (%g)", m.Chm1, m.Ca32)
	}
	if m.Cmi32 < m.Cm32 {
		t.Errorf("inverse (%g) measured cheaper than multiplication (%g)", m.Cmi32, m.Cm32)
	}
}

// Package energy models sensor-node energy expenditure — the motivation for
// in-network aggregation in the first place (paper §I): battery life is
// dominated by radio transmission, and nodes near the sink die first when
// raw data is routed instead of aggregated.
//
// The radio follows the standard first-order model (Heinzelman et al.):
//
//	E_tx(k bits, d meters) = E_elec·k + ε_amp·k·d²
//	E_rx(k bits)           = E_elec·k
//
// CPU energy is active-power × time. Defaults approximate a MicaZ-class
// mote: 50 nJ/bit radio electronics, 100 pJ/bit/m² amplifier, 24 mW active
// CPU, a pair of AA cells ≈ 18.7 kJ.
//
// Lifetime reports compare three strategies over one topology:
//
//   - naive collection — every reading is routed raw to the querier, so an
//     aggregator relays its whole subtree's traffic;
//   - in-network aggregation with a constant-size message (SIES: 32 B,
//     CMT: 20 B) — every edge carries one message per epoch;
//   - SECOA_S in-network aggregation with its tens-of-KB messages.
package energy

import (
	"errors"

	"github.com/sies/sies/internal/network"
)

// RadioModel is the first-order radio energy model.
type RadioModel struct {
	ElecJPerBit float64 // E_elec: electronics energy per bit (tx and rx)
	AmpJPerBit  float64 // ε_amp: amplifier energy per bit per m²
	RangeMeters float64 // transmission distance d
}

// CPUModel is active-power CPU energy.
type CPUModel struct {
	ActiveWatts float64 // power while computing
}

// Model bundles radio, CPU, and battery.
type Model struct {
	Radio         RadioModel
	CPU           CPUModel
	BatteryJoules float64
}

// DefaultModel returns MicaZ-class constants.
func DefaultModel() Model {
	return Model{
		Radio: RadioModel{
			ElecJPerBit: 50e-9,
			AmpJPerBit:  100e-12,
			RangeMeters: 50,
		},
		CPU:           CPUModel{ActiveWatts: 24e-3},
		BatteryJoules: 18720, // 2×AA: 2600 mAh × 2 × 3.6 V ≈ 18.7 kJ
	}
}

// TxEnergy returns the energy to transmit n bytes.
func (r RadioModel) TxEnergy(n int) float64 {
	bits := float64(n * 8)
	return bits*r.ElecJPerBit + bits*r.AmpJPerBit*r.RangeMeters*r.RangeMeters
}

// RxEnergy returns the energy to receive n bytes.
func (r RadioModel) RxEnergy(n int) float64 {
	return float64(n*8) * r.ElecJPerBit
}

// Energy returns CPU energy for a computation lasting the given seconds.
func (c CPUModel) Energy(seconds float64) float64 { return c.ActiveWatts * seconds }

// PerEpoch is the energy one node spends in one epoch.
type PerEpoch struct {
	Tx, Rx, CPU float64
}

// Total sums the components.
func (p PerEpoch) Total() float64 { return p.Tx + p.Rx + p.CPU }

// Workload describes one scheme's per-epoch behaviour for the estimator.
type Workload struct {
	MessageBytes int     // bytes per edge (constant-size schemes)
	SourceCPU    float64 // seconds of CPU per epoch at a source
	AggCPUPerMsg float64 // seconds of CPU per received message at an aggregator
}

// Report summarises a scheme's energy profile over a topology.
type Report struct {
	Source         PerEpoch // any leaf source
	LeafAggregator PerEpoch // an aggregator with only sources below it
	Bottleneck     PerEpoch // the most loaded node (root aggregator)
	// LifetimeEpochs is how many epochs the bottleneck node survives on one
	// battery — the network's effective lifetime.
	LifetimeEpochs float64
}

// InNetwork estimates the profile of a constant-message-size in-network
// scheme (SIES, CMT, or SECOA_S with its larger constant) on the topology.
func InNetwork(topo *network.Topology, w Workload, m Model) (Report, error) {
	if topo == nil {
		return Report{}, errors.New("energy: nil topology")
	}
	if w.MessageBytes <= 0 {
		return Report{}, errors.New("energy: message size must be positive")
	}
	src := PerEpoch{
		Tx:  m.Radio.TxEnergy(w.MessageBytes),
		CPU: m.CPU.Energy(w.SourceCPU),
	}
	mk := func(children int) PerEpoch {
		return PerEpoch{
			Tx:  m.Radio.TxEnergy(w.MessageBytes),
			Rx:  m.Radio.RxEnergy(w.MessageBytes * children),
			CPU: m.CPU.Energy(w.AggCPUPerMsg * float64(children)),
		}
	}
	root := topo.Root()
	rootChildren := len(topo.ChildAggregators(root)) + len(topo.ChildSources(root))
	bottleneck := mk(rootChildren)
	leaf := mk(maxLeafChildren(topo))

	rep := Report{Source: src, LeafAggregator: leaf, Bottleneck: bottleneck}
	if e := bottleneck.Total(); e > 0 {
		rep.LifetimeEpochs = m.BatteryJoules / e
	}
	return rep, nil
}

// Naive estimates the profile of naive raw-data collection: every reading
// (readingBytes each) is relayed hop by hop to the querier, so a node
// forwards one message per source in its subtree.
func Naive(topo *network.Topology, readingBytes int, m Model) (Report, error) {
	if topo == nil {
		return Report{}, errors.New("energy: nil topology")
	}
	if readingBytes <= 0 {
		return Report{}, errors.New("energy: reading size must be positive")
	}
	src := PerEpoch{Tx: m.Radio.TxEnergy(readingBytes)}

	// A relay node receives and re-transmits its whole subtree's readings.
	subtree := subtreeSizes(topo)
	root := topo.Root()
	bottleneck := PerEpoch{
		Tx: m.Radio.TxEnergy(readingBytes * subtree[root]),
		Rx: m.Radio.RxEnergy(readingBytes * subtree[root]),
	}
	leafCount := maxLeafChildren(topo)
	leaf := PerEpoch{
		Tx: m.Radio.TxEnergy(readingBytes * leafCount),
		Rx: m.Radio.RxEnergy(readingBytes * leafCount),
	}
	rep := Report{Source: src, LeafAggregator: leaf, Bottleneck: bottleneck}
	if e := bottleneck.Total(); e > 0 {
		rep.LifetimeEpochs = m.BatteryJoules / e
	}
	return rep, nil
}

// subtreeSizes returns, per aggregator, the number of sources below it.
func subtreeSizes(topo *network.Topology) []int {
	sizes := make([]int, topo.NumAggregators())
	var walk func(agg int) int
	walk = func(agg int) int {
		n := len(topo.ChildSources(agg))
		for _, c := range topo.ChildAggregators(agg) {
			n += walk(c)
		}
		sizes[agg] = n
		return n
	}
	walk(topo.Root())
	return sizes
}

// maxLeafChildren returns the largest direct-source count of any aggregator.
func maxLeafChildren(topo *network.Topology) int {
	max := 0
	for agg := 0; agg < topo.NumAggregators(); agg++ {
		if n := len(topo.ChildSources(agg)); n > max {
			max = n
		}
	}
	return max
}

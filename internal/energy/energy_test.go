package energy

import (
	"testing"

	"github.com/sies/sies/internal/network"
)

func topo(t *testing.T, n, f int) *network.Topology {
	t.Helper()
	tp, err := network.CompleteTree(n, f)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestRadioModel(t *testing.T) {
	r := DefaultModel().Radio
	// Tx must cost strictly more than Rx (amplifier term).
	if r.TxEnergy(32) <= r.RxEnergy(32) {
		t.Fatal("tx not more expensive than rx")
	}
	// Linear in bytes.
	if r.TxEnergy(64) != 2*r.TxEnergy(32) {
		t.Fatal("tx not linear in size")
	}
	if r.RxEnergy(0) != 0 || r.TxEnergy(0) != 0 {
		t.Fatal("zero bytes cost energy")
	}
}

func TestCPUModel(t *testing.T) {
	c := DefaultModel().CPU
	if c.Energy(2) != 2*c.Energy(1) {
		t.Fatal("cpu energy not linear in time")
	}
}

func TestInNetworkConstantPerNode(t *testing.T) {
	m := DefaultModel()
	w := Workload{MessageBytes: 32, SourceCPU: 3.5e-6, AggCPUPerMsg: 0.4e-6}
	rep, err := InNetwork(topo(t, 1024, 4), w, m)
	if err != nil {
		t.Fatal(err)
	}
	// The bottleneck transmits one 32-byte message regardless of N: its tx
	// energy equals a source's tx energy.
	if rep.Bottleneck.Tx != rep.Source.Tx {
		t.Fatalf("bottleneck tx %g != source tx %g", rep.Bottleneck.Tx, rep.Source.Tx)
	}
	if rep.LifetimeEpochs <= 0 {
		t.Fatal("no lifetime estimate")
	}
	// Larger networks must not change per-node energy (the whole point).
	rep2, err := InNetwork(topo(t, 16384, 4), w, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Bottleneck.Total() != rep.Bottleneck.Total() {
		t.Fatal("in-network bottleneck energy grew with N")
	}
}

func TestNaiveBottleneckGrowsWithN(t *testing.T) {
	m := DefaultModel()
	small, err := Naive(topo(t, 64, 4), 4, m)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Naive(topo(t, 4096, 4), 4, m)
	if err != nil {
		t.Fatal(err)
	}
	if big.Bottleneck.Total() <= small.Bottleneck.Total() {
		t.Fatal("naive bottleneck energy did not grow with N")
	}
	if big.LifetimeEpochs >= small.LifetimeEpochs {
		t.Fatal("naive lifetime did not shrink with N")
	}
}

func TestInNetworkBeatsNaiveAtScale(t *testing.T) {
	// The paper's motivating claim: despite 32-byte PSRs being 8× larger
	// than a 4-byte raw reading, SIES in-network aggregation outlives naive
	// collection by orders of magnitude at scale.
	m := DefaultModel()
	tp := topo(t, 1024, 4)
	sies, err := InNetwork(tp, Workload{MessageBytes: 32, SourceCPU: 3.5e-6, AggCPUPerMsg: 0.4e-6}, m)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Naive(tp, 4, m)
	if err != nil {
		t.Fatal(err)
	}
	if sies.LifetimeEpochs < 10*naive.LifetimeEpochs {
		t.Fatalf("SIES lifetime %.0f not ≥10× naive %.0f", sies.LifetimeEpochs, naive.LifetimeEpochs)
	}
}

func TestSECOAEnergyFarAboveSIES(t *testing.T) {
	// SECOA_S sends ~38.7 KB per edge vs 32 B: its radio energy per epoch
	// must be ~3 orders of magnitude higher.
	m := DefaultModel()
	tp := topo(t, 1024, 4)
	sies, err := InNetwork(tp, Workload{MessageBytes: 32}, m)
	if err != nil {
		t.Fatal(err)
	}
	secoa, err := InNetwork(tp, Workload{MessageBytes: 38720}, m)
	if err != nil {
		t.Fatal(err)
	}
	ratio := secoa.Bottleneck.Total() / sies.Bottleneck.Total()
	if ratio < 500 {
		t.Fatalf("SECOA/SIES bottleneck energy ratio = %.0f, want ≥ 500", ratio)
	}
}

func TestValidation(t *testing.T) {
	m := DefaultModel()
	if _, err := InNetwork(nil, Workload{MessageBytes: 32}, m); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := InNetwork(topo(t, 4, 4), Workload{}, m); err == nil {
		t.Fatal("zero message size accepted")
	}
	if _, err := Naive(nil, 4, m); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := Naive(topo(t, 4, 4), 0, m); err == nil {
		t.Fatal("zero reading size accepted")
	}
}

func TestSubtreeSizes(t *testing.T) {
	tp := topo(t, 16, 4)
	sizes := subtreeSizes(tp)
	if sizes[tp.Root()] != 16 {
		t.Fatalf("root subtree = %d", sizes[tp.Root()])
	}
	for _, c := range tp.ChildAggregators(tp.Root()) {
		if sizes[c] != 4 {
			t.Fatalf("leaf agg subtree = %d", sizes[c])
		}
	}
}

// Seeded soak tests: hundreds of epochs of sustained attack plus churn. The
// CI chaos-soak job runs these (and the chaos transport tests) with -race;
// every run is deterministic in its seed. The invariants are the PR's
// acceptance bar: a served SUM is always exact over its reported coverage,
// every corrupted epoch is recovered or explicitly lost, localization stays
// within its probe budget, and the quarantine drains after the fault clears.
package network_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"github.com/sies/sies/internal/attack"
	"github.com/sies/sies/internal/chaos"
	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/network"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/workload"
)

// soakReport is the recovery-stats artifact uploaded by CI.
type soakReport struct {
	Name           string                `json:"name"`
	Seed           int64                 `json:"seed"`
	Epochs         int                   `json:"epochs"`
	WrongAnswers   int                   `json:"wrong_answers"`
	ServedFraction float64               `json:"served_fraction"`
	ProbeBudget    int                   `json:"probe_budget"`
	Recovery       network.RecoveryStats `json:"recovery"`
}

// writeSoakStats appends the report to $SIES_SOAK_STATS when set (CI uploads
// that file as the chaos-soak artifact).
func writeSoakStats(t *testing.T, rep soakReport) {
	t.Helper()
	path := os.Getenv("SIES_SOAK_STATS")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("soak stats: %v", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(rep); err != nil {
		t.Logf("soak stats: %v", err)
	}
}

func soakEngine(t *testing.T, n, fanout int) (*network.Engine, *network.SIESProtocol) {
	t.Helper()
	topo, err := network.CompleteTree(n, fanout)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := network.NewSIESProtocol(n)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := network.NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	return eng, proto
}

func exactOver(values []uint64, ids []int, n int) float64 {
	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i
		}
	}
	var s uint64
	for _, id := range ids {
		s += values[id]
	}
	return float64(s)
}

// TestSoakPersistentTamper pins a tampering adversary at a mid-tier
// aggregator for most of the run, with crash-stop churn underneath. After
// the first localization every epoch must be served exactly; once the
// adversary stops, the quarantine must drain and coverage must return to
// full.
func TestSoakPersistentTamper(t *testing.T) {
	const (
		n      = 64
		fanout = 4
		seed   = 7
		evil   = 2 // mid-tier aggregator: 16 sources beneath it
	)
	epochs := 400
	if testing.Short() {
		epochs = 80
	}
	attackFrom := prf.Epoch(10)
	cleanTail := epochs / 4 // the last stretch runs clean
	if cleanTail < 30 {
		cleanTail = 30
	}
	attackUntil := prf.Epoch(epochs - cleanTail)

	eng, proto := soakEngine(t, n, fanout)
	field := proto.Querier.Params().Field()
	adv := attack.NewPersistent(field, evil, 424242, attackFrom)
	eng.SetInterceptor(adv.Interceptor())
	rec := network.NewRecovery(eng, network.RecoveryConfig{
		// Decay fast enough that the clean tail provably drains the registry
		// even after relapse growth: 20 + 5 clean epochs worst case.
		Quarantine: core.QuarantineConfig{QuarantineEpochs: 10, ProbationEpochs: 5, MaxQuarantineEpochs: 20},
	})
	budget := network.ProbeBudget(eng.Topology())

	rng := rand.New(rand.NewSource(seed))
	churn := chaos.RandomChurn(rng, epochs, n, eng.Topology().NumAggregators(), 0.01, 0.2)

	wrong, served, firstLocalized := 0, 0, prf.Epoch(0)
	for epoch := prf.Epoch(1); epoch <= prf.Epoch(epochs); epoch++ {
		if epoch == attackUntil {
			adv.Stop()
		}
		if err := churn.Apply(epoch, eng); err != nil {
			t.Fatal(err)
		}
		values := workload.UniformReadings(n, workload.Scale1000, rng)
		out := rec.RunEpoch(epoch, values)
		if out.Served {
			served++
			if out.Sum != exactOver(values, out.Covered, n) {
				wrong++
				t.Errorf("epoch %d: served %v over %v (coverage %.2f)", epoch, out.Sum, out.Covered, out.Coverage)
			}
		}
		if out.Recovered && firstLocalized == 0 {
			firstLocalized = epoch
		}
		if out.Probes > budget {
			t.Errorf("epoch %d: %d probes over budget %d", epoch, out.Probes, budget)
		}
	}

	st := rec.Stats()
	rep := soakReport{
		Name: "persistent-tamper", Seed: seed, Epochs: epochs,
		WrongAnswers: wrong, ServedFraction: float64(served) / float64(epochs),
		ProbeBudget: budget, Recovery: st,
	}
	writeSoakStats(t, rep)

	if wrong != 0 {
		t.Fatalf("%d wrong answers", wrong)
	}
	if firstLocalized == 0 {
		t.Fatal("adversary was never localized")
	}
	if rep.ServedFraction < 0.95 {
		t.Fatalf("served %.1f%% of epochs, want ≥95%%", 100*rep.ServedFraction)
	}
	if st.BudgetAborts != 0 {
		t.Fatalf("single tamperer exhausted the probe budget %d times", st.BudgetAborts)
	}
	if adv.Tampers() == 0 {
		t.Fatal("adversary never fired: the soak tested nothing")
	}
	// The last quarter ran clean: the quarantine must have drained.
	if p := rec.Quarantine().Population(); p.Total() != 0 {
		t.Fatalf("quarantine still holds %+v after the fault cleared", p)
	}
	if st.Quarantine.Reinstated == 0 {
		t.Fatal("the evil aggregator was never reinstated")
	}
}

// TestSoakAdaptiveAdversary lets the tamperer relocate once its subtree is
// quarantined — each new position must be localized in turn, and served sums
// must stay exact throughout.
func TestSoakAdaptiveAdversary(t *testing.T) {
	const (
		n      = 64
		fanout = 4
		seed   = 11
	)
	epochs := 300
	if testing.Short() {
		epochs = 80
	}
	eng, proto := soakEngine(t, n, fanout)
	field := proto.Querier.Params().Field()
	// Cycle over three mid-tier aggregators, moving after 2 silent epochs.
	adv := attack.NewAdaptive(field, []int{1, 2, 3}, 99991, 5, 2)
	eng.SetInterceptor(adv.Interceptor())
	rec := network.NewRecovery(eng, network.RecoveryConfig{})
	budget := network.ProbeBudget(eng.Topology())

	rng := rand.New(rand.NewSource(seed))
	wrong, served := 0, 0
	for epoch := prf.Epoch(1); epoch <= prf.Epoch(epochs); epoch++ {
		values := workload.UniformReadings(n, workload.Scale1000, rng)
		out := rec.RunEpoch(epoch, values)
		if out.Served {
			served++
			if out.Sum != exactOver(values, out.Covered, n) {
				wrong++
				t.Errorf("epoch %d: served %v over %v", epoch, out.Sum, out.Covered)
			}
		}
		if out.Probes > budget {
			t.Errorf("epoch %d: %d probes over budget %d", epoch, out.Probes, budget)
		}
	}

	st := rec.Stats()
	rep := soakReport{
		Name: "adaptive-adversary", Seed: seed, Epochs: epochs,
		WrongAnswers: wrong, ServedFraction: float64(served) / float64(epochs),
		ProbeBudget: budget, Recovery: st,
	}
	writeSoakStats(t, rep)

	if wrong != 0 {
		t.Fatalf("%d wrong answers", wrong)
	}
	if rep.ServedFraction < 0.95 {
		t.Fatalf("served %.1f%% of epochs, want ≥95%%", 100*rep.ServedFraction)
	}
	if adv.Moves() == 0 {
		t.Fatal("adversary never relocated: quarantine never silenced it")
	}
	if st.Quarantine.Relapses == 0 && st.Localizations < 2 {
		t.Fatalf("relocations were not re-localized: %+v", st)
	}
}

// TestChaosByzantineSoak drives a random byzantine schedule — aggregators
// that tamper or blackhole for bounded intervals, anywhere but the root —
// under churn. Whatever the fault pattern, a served SUM must be exact over
// its reported coverage and localization must stay within budget.
func TestChaosByzantineSoak(t *testing.T) {
	const (
		n      = 64
		fanout = 4
		seed   = 23
	)
	epochs := 300
	if testing.Short() {
		epochs = 80
	}
	eng, proto := soakEngine(t, n, fanout)
	field := proto.Querier.Params().Field()
	rng := rand.New(rand.NewSource(seed))
	byz := chaos.RandomByzantine(rng, eng.Topology().NumAggregators(), epochs, 6)
	eng.SetInterceptor(attack.FromByzantine(field, byz))
	rec := network.NewRecovery(eng, network.RecoveryConfig{})
	budget := network.ProbeBudget(eng.Topology())
	churn := chaos.RandomChurn(rng, epochs, n, eng.Topology().NumAggregators(), 0.005, 0.2)

	wrong, served := 0, 0
	for epoch := prf.Epoch(1); epoch <= prf.Epoch(epochs); epoch++ {
		if err := churn.Apply(epoch, eng); err != nil {
			t.Fatal(err)
		}
		values := workload.UniformReadings(n, workload.Scale1000, rng)
		out := rec.RunEpoch(epoch, values)
		if out.Served {
			served++
			if out.Sum != exactOver(values, out.Covered, n) {
				wrong++
				t.Errorf("epoch %d: served %v over %v", epoch, out.Sum, out.Covered)
			}
		}
	}

	st := rec.Stats()
	rep := soakReport{
		Name: "byzantine-churn", Seed: seed, Epochs: epochs,
		WrongAnswers: wrong, ServedFraction: float64(served) / float64(epochs),
		ProbeBudget: budget, Recovery: st,
	}
	writeSoakStats(t, rep)

	if wrong != 0 {
		t.Fatalf("%d wrong answers", wrong)
	}
	// Byzantine faults move around and collude, so hold a softer service bar
	// than the pinned-adversary soak — but every epoch must be accounted for.
	if st.Clean+st.Recovered+st.Lost != epochs {
		t.Fatalf("epoch accounting: %+v over %d epochs", st, epochs)
	}
	if rep.ServedFraction < 0.90 {
		t.Fatalf("served %.1f%% of epochs, want ≥90%%", 100*rep.ServedFraction)
	}
}

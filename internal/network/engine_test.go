package network

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/sies/sies/internal/chaos"
	"github.com/sies/sies/internal/cmt"
	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/rsax"
	"github.com/sies/sies/internal/secoa"
	"github.com/sies/sies/internal/sketch"
	"github.com/sies/sies/internal/uint256"
	"github.com/sies/sies/internal/workload"
)

var (
	rsaOnce sync.Once
	rsaKey  *rsax.PublicKey
	rsaErr  error
)

func secoaParams(t testing.TB, J int) secoa.Params {
	t.Helper()
	rsaOnce.Do(func() { rsaKey, rsaErr = rsax.GenerateKey(512, rsax.DefaultExponent) })
	if rsaErr != nil {
		t.Fatal(rsaErr)
	}
	return secoa.Params{Sketch: sketch.Params{J: J, MaxLevel: 24}, Key: rsaKey}
}

func siesEngine(t testing.TB, n, fanout int) (*Engine, *SIESProtocol) {
	t.Helper()
	topo, err := CompleteTree(n, fanout)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewSIESProtocol(n)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	return eng, proto
}

func TestSIESEngineExactSum(t *testing.T) {
	eng, _ := siesEngine(t, 64, 4)
	r := rand.New(rand.NewSource(1))
	for epoch := prf.Epoch(0); epoch < 5; epoch++ {
		values := workload.UniformReadings(64, workload.Scale100, r)
		var want uint64
		for _, v := range values {
			want += v
		}
		got, err := eng.RunEpoch(epoch, values)
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(want) {
			t.Fatalf("epoch %d: SUM = %f, want %d", epoch, got, want)
		}
	}
	if eng.Stats().Epochs != 5 {
		t.Fatalf("epochs = %d", eng.Stats().Epochs)
	}
}

func TestCMTEngineExactSum(t *testing.T) {
	topo, err := CompleteTree(27, 3)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewCMTProtocol(27)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, 27)
	var want uint64
	for i := range values {
		values[i] = uint64(i * 11)
		want += values[i]
	}
	got, err := eng.RunEpoch(3, values)
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(want) {
		t.Fatalf("SUM = %f, want %d", got, want)
	}
}

func TestSECOAEngineEstimates(t *testing.T) {
	topo, err := CompleteTree(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewSECOAProtocol(8, secoaParams(t, 300), 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	values := []uint64{500, 500, 500, 500, 500, 500, 500, 500}
	got, err := eng.RunEpoch(1, values)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(got-4000) / 4000
	if rel > 0.4 {
		t.Fatalf("estimate %f, relative error %.2f", got, rel)
	}
}

func TestByteAccountingSIES(t *testing.T) {
	// Table V shape: SIES sends exactly 32 bytes on every edge.
	eng, _ := siesEngine(t, 16, 4)
	values := make([]uint64, 16)
	if _, err := eng.RunEpoch(1, values); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.PerKind[EdgeSA].Messages != 16 {
		t.Fatalf("S-A messages = %d", st.PerKind[EdgeSA].Messages)
	}
	// 16 sources / fanout 4 → 4 leaf aggs + root: 4 A-A edges.
	if st.PerKind[EdgeAA].Messages != 4 {
		t.Fatalf("A-A messages = %d", st.PerKind[EdgeAA].Messages)
	}
	if st.PerKind[EdgeAQ].Messages != 1 {
		t.Fatalf("A-Q messages = %d", st.PerKind[EdgeAQ].Messages)
	}
	for kind, s := range st.PerKind {
		if s.Messages > 0 && (s.AvgBytes() != core.PSRSize || s.MaxBytes != core.PSRSize) {
			t.Fatalf("%v: avg=%f max=%d, want 32", kind, s.AvgBytes(), s.MaxBytes)
		}
	}
}

func TestFailureHandling(t *testing.T) {
	eng, _ := siesEngine(t, 8, 4)
	if err := eng.FailSource(3); err != nil {
		t.Fatal(err)
	}
	values := []uint64{1, 2, 4, 8, 16, 32, 64, 128}
	got, err := eng.RunEpoch(1, values)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(1 + 2 + 16 + 32 + 64 + 128 + 4) // all minus source 3's 8
	if got != want {
		t.Fatalf("SUM with failure = %f, want %f", got, want)
	}
	eng.RecoverSource(3)
	got, err = eng.RunEpoch(2, values)
	if err != nil {
		t.Fatal(err)
	}
	if got != 255 {
		t.Fatalf("SUM after recovery = %f", got)
	}
}

func TestAllSourcesFailed(t *testing.T) {
	eng, _ := siesEngine(t, 2, 2)
	if err := eng.FailSource(0); err != nil {
		t.Fatal(err)
	}
	if err := eng.FailSource(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunEpoch(1, []uint64{1, 2}); err == nil {
		t.Fatal("empty network evaluated")
	}
	if err := eng.FailSource(9); err == nil {
		t.Fatal("out-of-range failure accepted")
	}
}

func TestInterceptorTamperDetectedBySIES(t *testing.T) {
	eng, proto := siesEngine(t, 8, 4)
	f := proto.Querier.Params().Field()
	eng.SetInterceptor(func(_ prf.Epoch, e Edge, m Message) Message {
		if e.Kind == EdgeAQ {
			psr := m.(core.PSR)
			return core.PSR{C: f.Add(psr.C, uint256.NewInt(999))}
		}
		return m
	})
	values := make([]uint64, 8)
	if _, err := eng.RunEpoch(1, values); !errors.Is(err, core.ErrIntegrity) && !errors.Is(err, core.ErrResultOverflow) {
		t.Fatalf("tampering not detected: %v", err)
	}
	eng.SetInterceptor(nil)
	if _, err := eng.RunEpoch(2, values); err != nil {
		t.Fatalf("clean epoch after clearing interceptor: %v", err)
	}
}

func TestInterceptorTamperUndetectedByCMT(t *testing.T) {
	// The same attack on CMT silently shifts the result — the gap SIES closes.
	topo, err := CompleteTree(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewCMTProtocol(8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	const injected = 999
	var delta cmt.Ciphertext
	delta[len(delta)-2] = byte(uint16(injected) >> 8)
	delta[len(delta)-1] = byte(uint16(injected) & 0xff)
	eng.SetInterceptor(func(_ prf.Epoch, e Edge, m Message) Message {
		if e.Kind == EdgeAQ {
			return cmt.Aggregate(m.(cmt.Ciphertext), delta)
		}
		return m
	})
	values := []uint64{10, 10, 10, 10, 10, 10, 10, 10}
	got, err := eng.RunEpoch(1, values)
	if err != nil {
		t.Fatalf("CMT rejected tampering it cannot detect: %v", err)
	}
	if got != 80+injected {
		t.Fatalf("tampered CMT SUM = %f, want %d", got, 80+injected)
	}
}

func TestEngineValidation(t *testing.T) {
	topo, err := CompleteTree(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(nil, nil); err == nil {
		t.Fatal("nil engine parts accepted")
	}
	proto, err := NewSIESProtocol(4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunEpoch(1, []uint64{1, 2}); err == nil {
		t.Fatal("wrong value count accepted")
	}
}

func TestSECOANoSubsetEvaluation(t *testing.T) {
	topo, err := CompleteTree(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewSECOAProtocol(4, secoaParams(t, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.FailSource(0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunEpoch(1, []uint64{1, 2, 3, 4}); err == nil {
		t.Fatal("SECOA subset evaluation accepted")
	}
}

func TestEngineAggregatorFailure(t *testing.T) {
	eng, _ := siesEngine(t, 8, 2)
	topo := eng.Topology()
	victim := topo.ChildAggregators(topo.Root())[0]

	// Collect the sources under the victim's subtree.
	lost := map[int]bool{}
	var walk func(agg int)
	walk = func(agg int) {
		for _, s := range topo.ChildSources(agg) {
			lost[s] = true
		}
		for _, c := range topo.ChildAggregators(agg) {
			walk(c)
		}
	}
	walk(victim)
	if len(lost) == 0 || len(lost) == 8 {
		t.Fatalf("degenerate victim subtree: %d sources", len(lost))
	}

	values := make([]uint64, 8)
	var full, subset uint64
	for i := range values {
		values[i] = uint64(i + 1)
		full += values[i]
		if !lost[i] {
			subset += values[i]
		}
	}

	if err := eng.FailAggregator(victim); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Contributors()); got != 8-len(lost) {
		t.Fatalf("contributors = %d, want %d", got, 8-len(lost))
	}
	got, err := eng.RunEpoch(1, values)
	if err != nil {
		t.Fatalf("partial epoch rejected: %v", err)
	}
	if got != float64(subset) {
		t.Fatalf("partial SUM %f, want %d", got, subset)
	}

	eng.RecoverAggregator(victim)
	if eng.Contributors() != nil {
		t.Fatalf("contributors after recovery: %v", eng.Contributors())
	}
	got, err = eng.RunEpoch(2, values)
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(full) {
		t.Fatalf("recovered SUM %f, want %d", got, full)
	}

	if err := eng.FailAggregator(99); err == nil {
		t.Fatal("out-of-range aggregator accepted")
	}
}

func TestEngineChurnSchedule(t *testing.T) {
	eng, _ := siesEngine(t, 16, 4)
	churn := chaos.RandomChurn(rand.New(rand.NewSource(5)), 10, 16, eng.Topology().NumAggregators(), 0.15, 0.4)
	values := make([]uint64, 16)
	for i := range values {
		values[i] = uint64(10 + i)
	}
	partial := 0
	for epoch := prf.Epoch(1); epoch <= 10; epoch++ {
		if err := churn.Apply(epoch, eng); err != nil {
			t.Fatal(err)
		}
		contributors := eng.Contributors()
		var want uint64
		for i, v := range values {
			if contributors == nil || containsID(contributors, i) {
				want += v
			}
		}
		got, err := eng.RunEpoch(epoch, values)
		if err != nil {
			// Every contributor gone is a legal churn outcome.
			if want == 0 {
				continue
			}
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if got != float64(want) {
			t.Fatalf("epoch %d: SUM %f, want %d (contributors %v)", epoch, got, want, contributors)
		}
		if contributors != nil {
			partial++
		}
	}
	if partial == 0 {
		t.Fatal("churn schedule produced no partial epochs")
	}
}

func containsID(ids []int, id int) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// TestEngineParallelMergeParity runs the same epochs through a serial walk and
// a parallel one (SetMergeWorkers): sums, epoch counts and per-edge byte
// accounting must be bit-identical — the parallel walk changes scheduling,
// never results. Run under -race this also soaks the stats mutex and the
// bounded merge semaphore.
func TestEngineParallelMergeParity(t *testing.T) {
	serial, _ := siesEngine(t, 81, 3)
	par, _ := siesEngine(t, 81, 3)
	par.SetMergeWorkers(4)

	r := rand.New(rand.NewSource(7))
	for epoch := prf.Epoch(1); epoch <= 8; epoch++ {
		values := workload.UniformReadings(81, workload.Scale100, r)
		gotS, errS := serial.RunEpoch(epoch, values)
		gotP, errP := par.RunEpoch(epoch, values)
		if errS != nil || errP != nil {
			t.Fatalf("epoch %d: serial %v, parallel %v", epoch, errS, errP)
		}
		if gotS != gotP {
			t.Fatalf("epoch %d: serial SUM %f, parallel SUM %f", epoch, gotS, gotP)
		}
	}
	ss, ps := serial.Stats(), par.Stats()
	if ss.Epochs != ps.Epochs || ss.Probes != ps.Probes {
		t.Fatalf("stats diverge: serial %+v, parallel %+v", ss, ps)
	}
	for kind, s := range ss.PerKind {
		p := ps.PerKind[kind]
		if s.Messages != p.Messages || s.Bytes != p.Bytes || s.MaxBytes != p.MaxBytes {
			t.Fatalf("%v accounting diverges: serial %+v, parallel %+v", kind, s, p)
		}
	}
}

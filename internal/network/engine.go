package network

import (
	"errors"
	"fmt"
	"sync"

	"github.com/sies/sies/internal/prf"
)

// ErrNothingToEvaluate means no contribution reached the querier this epoch:
// every source failed, or an adversary blackholed the final message. Probe
// re-queries classify it as a failing probe (the subset's route is dead),
// distinct from probe-infrastructure errors that abort localization.
var ErrNothingToEvaluate = errors.New("network: no contribution reached the querier")

// Message is a scheme-specific partial state record flowing along an edge.
// Protocol implementations define the concrete type.
type Message interface{}

// Protocol abstracts one aggregation scheme (SIES, CMT, SECOA_S) so a single
// engine can drive all three over identical topologies and workloads.
type Protocol interface {
	// Name identifies the scheme in reports.
	Name() string
	// SourceEmit runs the initialization phase at source src for epoch t.
	SourceEmit(src int, t prf.Epoch, v uint64) (Message, error)
	// Merge runs the merging phase over the children's messages.
	Merge(t prf.Epoch, msgs []Message) (Message, error)
	// SinkFinalize post-processes the root's message before it leaves for
	// the querier (SECOA's SEAL folding; identity for SIES and CMT).
	SinkFinalize(t prf.Epoch, m Message) (Message, error)
	// Evaluate runs the evaluation phase at the querier over the given
	// contributors (nil = all sources) and returns the SUM (exact schemes)
	// or its estimate (SECOA_S).
	Evaluate(t prf.Epoch, m Message, contributors []int) (float64, error)
	// WireSize returns the bytes the message occupies on a network edge.
	WireSize(m Message) int
}

// EdgeKind classifies edges for the paper's communication accounting
// (Table V): source→aggregator, aggregator→aggregator, aggregator→querier.
type EdgeKind int

// Edge classes.
const (
	EdgeSA EdgeKind = iota // source → aggregator
	EdgeAA                 // aggregator → aggregator
	EdgeAQ                 // root aggregator → querier
)

// String names the edge class as in the paper's tables.
func (k EdgeKind) String() string {
	switch k {
	case EdgeSA:
		return "S-A"
	case EdgeAA:
		return "A-A"
	case EdgeAQ:
		return "A-Q"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge identifies one link during an epoch.
type Edge struct {
	Kind EdgeKind
	From int // source id for S-A, aggregator id otherwise
	To   int // aggregator id; -1 denotes the querier
}

// Interceptor lets an adversary observe, replace, or drop a message in
// flight. Returning the input unchanged models pure eavesdropping; returning
// nil drops the message entirely (a jamming/blackhole adversary).
type Interceptor func(t prf.Epoch, e Edge, m Message) Message

// EdgeStats accumulates traffic for one edge class.
type EdgeStats struct {
	Messages int
	Bytes    int
	MaxBytes int
}

// add records one message of size b.
func (s *EdgeStats) add(b int) {
	s.Messages++
	s.Bytes += b
	if b > s.MaxBytes {
		s.MaxBytes = b
	}
}

// AvgBytes returns the mean message size on the edge class.
func (s EdgeStats) AvgBytes() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Messages)
}

// Stats aggregates per-class traffic over the epochs an engine has run.
// Probe re-queries (RunProbe) count their traffic in PerKind like any other
// epoch — probes cost real radio time — but are tallied separately in Probes
// instead of Epochs. Epochs counts served (verified) runs only; Probes counts
// probes *issued*, since most probes fail verification by design.
type Stats struct {
	PerKind map[EdgeKind]*EdgeStats
	Epochs  int
	Probes  int
}

func newStats() *Stats {
	return &Stats{PerKind: map[EdgeKind]*EdgeStats{
		EdgeSA: {}, EdgeAA: {}, EdgeAQ: {},
	}}
}

// Engine drives one protocol over one topology, epoch by epoch.
type Engine struct {
	topo        *Topology
	proto       Protocol
	stats       *Stats
	statsMu     sync.Mutex // guards stats when subtrees process in parallel
	failed      map[int]bool
	failedAggs  map[int]bool
	killed      map[int]bool // permanently killed aggregators (see standby.go)
	reparents   int          // attachments moved by standby promotions
	interceptor Interceptor

	// mergeWorkers > 1 processes sibling subtrees concurrently, the simulated
	// twin of the transport aggregator's merge plane. Serial by default.
	mergeWorkers int
	mergeSem     chan struct{} // bounds concurrent merge/emit computations
}

// NewEngine assembles an engine. The topology is validated once here.
func NewEngine(topo *Topology, proto Protocol) (*Engine, error) {
	if topo == nil || proto == nil {
		return nil, errors.New("network: engine needs a topology and a protocol")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return &Engine{topo: topo, proto: proto, stats: newStats(),
		failed: map[int]bool{}, failedAggs: map[int]bool{}}, nil
}

// Stats returns the accumulated traffic counters.
func (e *Engine) Stats() *Stats { return e.stats }

// Topology returns the tree the engine runs over.
func (e *Engine) Topology() *Topology { return e.topo }

// SetInterceptor installs (or clears, with nil) the adversary hook.
func (e *Engine) SetInterceptor(ic Interceptor) { e.interceptor = ic }

// SetMergeWorkers opts the engine into parallel subtree merging: sibling
// subtrees of every interior node process concurrently, with at most n
// merge/emit computations running at once — the simulated counterpart of the
// transport aggregator's sharded merge plane. n ≤ 1 restores the serial walk
// (the default). Results are bit-identical either way: each node's inbox
// keeps topology order, so the merge tree is deterministic. Protocols must
// tolerate concurrent SourceEmit/Merge calls when n > 1 (the bundled ones
// do — their per-epoch state is read-only); interceptors must be their own
// judge. Call between epochs, not during a run.
func (e *Engine) SetMergeWorkers(n int) {
	if n <= 1 {
		e.mergeWorkers, e.mergeSem = 1, nil
		return
	}
	e.mergeWorkers = n
	e.mergeSem = make(chan struct{}, n)
}

// acquireMerge/releaseMerge bound concurrent computations. They must never be
// held across a recursive process() call — a parent waiting on its children
// while holding a token could starve the pool.
func (e *Engine) acquireMerge() {
	if e.mergeSem != nil {
		e.mergeSem <- struct{}{}
	}
}

func (e *Engine) releaseMerge() {
	if e.mergeSem != nil {
		<-e.mergeSem
	}
}

// FailSource marks a source as failed: it stops emitting and is reported to
// the querier as a non-contributor (paper §IV-B discussion).
func (e *Engine) FailSource(id int) error {
	if id < 0 || id >= e.topo.NumSources() {
		return fmt.Errorf("network: source %d out of range", id)
	}
	e.failed[id] = true
	return nil
}

// RecoverSource clears a failure.
func (e *Engine) RecoverSource(id int) { delete(e.failed, id) }

// FailAggregator marks an aggregator as failed: its whole subtree stops
// contributing and every source under it is reported as a non-contributor.
// Failing the root silences the entire deployment.
func (e *Engine) FailAggregator(id int) error {
	if id < 0 || id >= e.topo.NumAggregators() {
		return fmt.Errorf("network: aggregator %d out of range", id)
	}
	e.failedAggs[id] = true
	return nil
}

// RecoverAggregator clears an aggregator failure. Permanently killed
// aggregators (KillAggregator) stay dead: their subtrees come back only by
// standby promotion.
func (e *Engine) RecoverAggregator(id int) {
	if e.killed[id] {
		return
	}
	delete(e.failedAggs, id)
}

// aggAlive reports whether agg and every ancestor up to the root is live.
func (e *Engine) aggAlive(agg int) bool {
	for a := agg; a != -1; a = e.topo.ParentOf(a) {
		if e.failedAggs[a] {
			return false
		}
	}
	return true
}

// Contributors returns the sorted ids of currently contributing sources —
// live themselves and with a live aggregator path to the root — or nil when
// every source contributes (the common fast path).
func (e *Engine) Contributors() []int {
	if len(e.failed) == 0 && len(e.failedAggs) == 0 {
		return nil
	}
	var ids []int
	for i := 0; i < e.topo.NumSources(); i++ {
		if e.failed[i] || !e.aggAlive(e.topo.SourceParent(i)) {
			continue
		}
		ids = append(ids, i)
	}
	return ids
}

// deliver applies the interceptor (if any) and records traffic. The second
// return value is false when the adversary dropped the message. Stats ride a
// mutex so parallel sibling subtrees never tear a counter; the serial walk
// pays one uncontended lock per message.
func (e *Engine) deliver(t prf.Epoch, edge Edge, m Message) (Message, bool) {
	if e.interceptor != nil {
		m = e.interceptor(t, edge, m)
		if m == nil {
			return nil, false
		}
	}
	size := e.proto.WireSize(m)
	e.statsMu.Lock()
	e.stats.PerKind[edge.Kind].add(size)
	e.statsMu.Unlock()
	return m, true
}

// RunEpoch pushes one epoch of readings (values[i] is source i's reading)
// through the tree and evaluates at the querier. Failed sources' values are
// ignored. It returns the querier's result.
func (e *Engine) RunEpoch(t prf.Epoch, values []uint64) (float64, error) {
	return e.run(t, values, nil, false)
}

// RunEpochOver runs one epoch restricted to the given contributor ids: only
// live sources in the set emit, and the querier evaluates against exactly the
// restricted live set — the re-query primitive recovery uses to serve an
// exact SUM that routes around excluded subtrees. nil means all sources.
func (e *Engine) RunEpochOver(t prf.Epoch, values []uint64, include []int) (float64, error) {
	return e.run(t, values, include, false)
}

// RunProbe re-aggregates a restricted contributor set along the existing
// topology and verifies it at the querier — the group-testing membership
// oracle for culprit localization. Identical to RunEpochOver except the run
// is tallied under Stats.Probes, not Stats.Epochs. The adversary interceptor
// stays active: probe traffic routes through the same (possibly tampering)
// aggregators, which is precisely what makes subset probes localizing.
func (e *Engine) RunProbe(t prf.Epoch, values []uint64, include []int) (float64, error) {
	return e.run(t, values, include, true)
}

func (e *Engine) run(t prf.Epoch, values []uint64, include []int, probe bool) (float64, error) {
	if len(values) != e.topo.NumSources() {
		return 0, fmt.Errorf("network: %d values for %d sources", len(values), e.topo.NumSources())
	}
	var included map[int]bool
	if include != nil {
		included = make(map[int]bool, len(include))
		for _, id := range include {
			if id < 0 || id >= e.topo.NumSources() {
				return 0, fmt.Errorf("network: included source %d out of range", id)
			}
			included[id] = true
		}
	}
	emits := func(src int) bool {
		return !e.failed[src] && (included == nil || included[src])
	}
	if probe {
		e.statsMu.Lock()
		e.stats.Probes++ // issued; most probes *fail* verification by design
		e.statsMu.Unlock()
	}

	var process func(agg int) (Message, bool, error)
	process = func(agg int) (Message, bool, error) {
		if e.failedAggs[agg] {
			return nil, false, nil // crashed node: its subtree contributes nothing
		}
		var inbox []Message
		e.acquireMerge()
		for _, src := range e.topo.ChildSources(agg) {
			if !emits(src) {
				continue
			}
			m, err := e.proto.SourceEmit(src, t, values[src])
			if err != nil {
				e.releaseMerge()
				return nil, false, fmt.Errorf("network: source %d: %w", src, err)
			}
			if dm, ok := e.deliver(t, Edge{Kind: EdgeSA, From: src, To: agg}, m); ok {
				inbox = append(inbox, dm)
			}
		}
		e.releaseMerge()
		children := e.topo.ChildAggregators(agg)
		if e.mergeWorkers > 1 && len(children) > 1 {
			// Sibling subtrees process concurrently; inbox order stays the
			// topology order via the indexed results, so the merge stays
			// deterministic. No merge token is held here — the semaphore only
			// bounds leaf computations, never a parent waiting on children.
			type subtree struct {
				m   Message
				ok  bool
				err error
			}
			results := make([]subtree, len(children))
			var wg sync.WaitGroup
			for i, child := range children {
				wg.Add(1)
				go func(i, child int) {
					defer wg.Done()
					m, ok, err := process(child)
					results[i] = subtree{m: m, ok: ok, err: err}
				}(i, child)
			}
			wg.Wait()
			for i, child := range children {
				r := results[i]
				if r.err != nil {
					return nil, false, r.err
				}
				if !r.ok {
					continue // whole subtree failed
				}
				if dm, ok := e.deliver(t, Edge{Kind: EdgeAA, From: child, To: agg}, r.m); ok {
					inbox = append(inbox, dm)
				}
			}
		} else {
			for _, child := range children {
				m, ok, err := process(child)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue // whole subtree failed
				}
				if dm, ok := e.deliver(t, Edge{Kind: EdgeAA, From: child, To: agg}, m); ok {
					inbox = append(inbox, dm)
				}
			}
		}
		if len(inbox) == 0 {
			return nil, false, nil
		}
		e.acquireMerge()
		merged, err := e.proto.Merge(t, inbox)
		e.releaseMerge()
		if err != nil {
			return nil, false, fmt.Errorf("network: aggregator %d: %w", agg, err)
		}
		return merged, true, nil
	}

	rootMsg, ok, err := process(e.topo.Root())
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: every source failed", ErrNothingToEvaluate)
	}
	final, err := e.proto.SinkFinalize(t, rootMsg)
	if err != nil {
		return 0, fmt.Errorf("network: sink: %w", err)
	}
	final, ok = e.deliver(t, Edge{Kind: EdgeAQ, From: e.topo.Root(), To: -1}, final)
	if !ok {
		return 0, fmt.Errorf("%w: final message dropped", ErrNothingToEvaluate)
	}

	contributors := e.Contributors()
	if included != nil {
		contributors = intersectContributors(contributors, included, e.topo.NumSources())
		if len(contributors) == 0 {
			return 0, errors.New("network: restricted contributor set is empty")
		}
	}
	res, err := e.proto.Evaluate(t, final, contributors)
	if err != nil {
		return 0, err
	}
	if !probe {
		e.statsMu.Lock()
		e.stats.Epochs++
		e.statsMu.Unlock()
	}
	return res, nil
}

// intersectContributors restricts the live contributor list (nil = all n) to
// the included set, sorted.
func intersectContributors(live []int, included map[int]bool, n int) []int {
	var out []int
	if live == nil {
		for i := 0; i < n; i++ {
			if included[i] {
				out = append(out, i)
			}
		}
		return out
	}
	for _, id := range live {
		if included[id] {
			out = append(out, id)
		}
	}
	return out
}

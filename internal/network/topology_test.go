package network

import "testing"

func TestCompleteTreeValidation(t *testing.T) {
	if _, err := CompleteTree(0, 4); err == nil {
		t.Fatal("zero sources accepted")
	}
	if _, err := CompleteTree(4, 1); err == nil {
		t.Fatal("fanout 1 accepted")
	}
}

func TestCompleteTreeSmall(t *testing.T) {
	// 4 sources, fanout 4 → a single leaf aggregator is the root.
	topo, err := CompleteTree(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NumAggregators() != 1 || topo.NumSources() != 4 {
		t.Fatalf("aggs=%d sources=%d", topo.NumAggregators(), topo.NumSources())
	}
	if topo.Depth() != 1 {
		t.Fatalf("depth = %d", topo.Depth())
	}
	if len(topo.ChildSources(0)) != 4 {
		t.Fatalf("root sources = %d", len(topo.ChildSources(0)))
	}
}

func TestCompleteTreePaperDefault(t *testing.T) {
	// N=1024, F=4: perfect 4-ary tree with 256 leaf aggregators.
	topo, err := CompleteTree(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// 256 leaves + 64 + 16 + 4 + 1 root = 341 aggregators.
	if topo.NumAggregators() != 341 {
		t.Fatalf("aggregators = %d, want 341", topo.NumAggregators())
	}
	if topo.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", topo.Depth())
	}
	// Every aggregator has exactly F children in the perfect case.
	for agg := 0; agg < topo.NumAggregators(); agg++ {
		kids := len(topo.ChildAggregators(agg)) + len(topo.ChildSources(agg))
		if kids != 4 {
			t.Fatalf("aggregator %d has %d children", agg, kids)
		}
	}
}

func TestCompleteTreeRagged(t *testing.T) {
	// Non-power sizes still validate and attach every source exactly once.
	for _, n := range []int{1, 2, 3, 5, 7, 17, 100, 1000} {
		for _, f := range []int{2, 3, 4, 5, 6} {
			topo, err := CompleteTree(n, f)
			if err != nil {
				t.Fatalf("n=%d f=%d: %v", n, f, err)
			}
			if err := topo.Validate(); err != nil {
				t.Fatalf("n=%d f=%d: %v", n, f, err)
			}
			if topo.NumSources() != n {
				t.Fatalf("n=%d f=%d: sources=%d", n, f, topo.NumSources())
			}
		}
	}
}

func TestParentChildConsistency(t *testing.T) {
	topo, err := CompleteTree(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.ParentOf(topo.Root()) != -1 {
		t.Fatal("root has a parent")
	}
	for agg := 1; agg < topo.NumAggregators(); agg++ {
		parent := topo.ParentOf(agg)
		found := false
		for _, c := range topo.ChildAggregators(parent) {
			if c == agg {
				found = true
			}
		}
		if !found {
			t.Fatalf("aggregator %d missing from parent %d's children", agg, parent)
		}
	}
	for src := 0; src < topo.NumSources(); src++ {
		parent := topo.SourceParent(src)
		found := false
		for _, s := range topo.ChildSources(parent) {
			if s == src {
				found = true
			}
		}
		if !found {
			t.Fatalf("source %d missing from parent %d", src, parent)
		}
	}
}

func TestEdgeKindString(t *testing.T) {
	if EdgeSA.String() != "S-A" || EdgeAA.String() != "A-A" || EdgeAQ.String() != "A-Q" {
		t.Fatal("edge kind names wrong")
	}
	if EdgeKind(9).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}

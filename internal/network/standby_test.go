package network

import (
	"testing"

	"github.com/sies/sies/internal/prf"
)

// buildStandbyEngine assembles a 6-source fanout-3 tree with one standby
// under the root and a SIES protocol adapter over it.
func buildStandbyEngine(t *testing.T) (*Engine, []uint64, int) {
	t.Helper()
	topo, err := CompleteTree(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	standby, err := topo.AddStandby(topo.Root())
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewSIESProtocol(6)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, 6)
	for i := range values {
		values[i] = uint64(100 * (i + 1))
	}
	return eng, values, standby
}

func TestStandbyTopologyValidates(t *testing.T) {
	topo, err := CompleteTree(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	id, err := topo.AddStandby(topo.Root())
	if err != nil {
		t.Fatal(err)
	}
	if !topo.IsStandby(id) {
		t.Fatalf("aggregator %d not marked standby", id)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("standby topology must validate: %v", err)
	}
}

func TestKillAggregatorIsPermanent(t *testing.T) {
	eng, values, _ := buildStandbyEngine(t)
	victim := eng.Topology().ChildAggregators(eng.Topology().Root())[0]
	if eng.Topology().IsStandby(victim) {
		t.Fatalf("picked the standby as victim")
	}
	if err := eng.KillAggregator(victim); err != nil {
		t.Fatal(err)
	}
	eng.RecoverAggregator(victim) // must be refused
	if !eng.Killed(victim) {
		t.Fatal("kill must survive RecoverAggregator")
	}
	sum, err := eng.RunEpoch(1, values)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < 6; i++ {
		if eng.Topology().SourceParent(i) != victim {
			want += float64(values[i])
		}
	}
	if sum != want {
		t.Fatalf("partial sum = %v, want %v", sum, want)
	}
}

func TestPromoteStandbyRestoresFullCoverage(t *testing.T) {
	eng, values, standby := buildStandbyEngine(t)
	topo := eng.Topology()
	victim := -1
	for _, a := range topo.ChildAggregators(topo.Root()) {
		if !topo.IsStandby(a) {
			victim = a
			break
		}
	}
	orphans := len(topo.ChildSources(victim)) + len(topo.ChildAggregators(victim))
	if orphans == 0 {
		t.Fatalf("victim %d has no children to orphan", victim)
	}

	if err := eng.PromoteStandby(victim, standby); err == nil {
		t.Fatal("promotion before the kill must be refused")
	}
	if err := eng.KillAggregator(victim); err != nil {
		t.Fatal(err)
	}
	if err := eng.PromoteStandby(victim, standby); err != nil {
		t.Fatal(err)
	}
	if got := eng.Reparents(); got != orphans {
		t.Fatalf("reparents = %d, want %d", got, orphans)
	}

	var want float64
	for _, v := range values {
		want += float64(v)
	}
	for epoch := prf.Epoch(1); epoch <= 3; epoch++ {
		sum, err := eng.RunEpoch(epoch, values)
		if err != nil {
			t.Fatal(err)
		}
		if sum != want {
			t.Fatalf("epoch %d: sum = %v, want %v (full coverage after promotion)", epoch, sum, want)
		}
	}
}

func TestPromoteStandbyRefusesDeadStandby(t *testing.T) {
	eng, _, standby := buildStandbyEngine(t)
	topo := eng.Topology()
	victim := -1
	for _, a := range topo.ChildAggregators(topo.Root()) {
		if !topo.IsStandby(a) {
			victim = a
			break
		}
	}
	if err := eng.KillAggregator(victim); err != nil {
		t.Fatal(err)
	}
	if err := eng.FailAggregator(standby); err != nil {
		t.Fatal(err)
	}
	if err := eng.PromoteStandby(victim, standby); err == nil {
		t.Fatal("promotion onto a dead standby must be refused")
	}
}

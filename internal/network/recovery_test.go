package network

import (
	"strings"
	"testing"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// tamperFrom adds delta to every SIES ciphertext leaving aggregator agg —
// a persistent in-network tamperer (the attack package has richer versions;
// this local copy avoids an import cycle in-package).
func tamperFrom(f *uint256.Field, agg int, delta uint64) Interceptor {
	d := uint256.NewInt(delta)
	return func(_ prf.Epoch, e Edge, m Message) Message {
		if e.Kind != EdgeAA && e.Kind != EdgeAQ || e.From != agg {
			return m
		}
		psr, ok := m.(core.PSR)
		if !ok {
			return m
		}
		return core.PSR{C: f.Add(psr.C, d)}
	}
}

// sumOver adds the values of the given contributor ids (nil = all).
func sumOver(values []uint64, ids []int) float64 {
	if ids == nil {
		var s uint64
		for _, v := range values {
			s += v
		}
		return float64(s)
	}
	var s uint64
	for _, id := range ids {
		s += values[id]
	}
	return float64(s)
}

func seqValues(n int) []uint64 {
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i + 1)
	}
	return values
}

func TestRecoveryCleanEpochs(t *testing.T) {
	eng, _ := siesEngine(t, 16, 4)
	rec := NewRecovery(eng, RecoveryConfig{})
	values := seqValues(16)
	for epoch := prf.Epoch(1); epoch <= 3; epoch++ {
		out := rec.RunEpoch(epoch, values)
		if !out.Served || out.Recovered {
			t.Fatalf("epoch %d: %+v", epoch, out)
		}
		if out.Sum != sumOver(values, nil) || out.Coverage != 1 {
			t.Fatalf("epoch %d: sum %v coverage %v", epoch, out.Sum, out.Coverage)
		}
	}
	st := rec.Stats()
	if st.Clean != 3 || st.Localizations != 0 || st.ProbesIssued != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRecoveryPersistentTamperer(t *testing.T) {
	eng, proto := siesEngine(t, 16, 4)
	field := proto.Querier.Params().Field()
	const evil = 2
	eng.SetInterceptor(tamperFrom(field, evil, 999))
	rec := NewRecovery(eng, RecoveryConfig{})
	values := seqValues(16)
	topo := eng.Topology()
	budget := ProbeBudget(topo)
	bad := topo.ChildSources(evil)

	// Epochs 1 and 2: detected, localized, recovered via re-query. The blame
	// must name exactly the evil aggregator.
	for epoch := prf.Epoch(1); epoch <= 2; epoch++ {
		out := rec.RunEpoch(epoch, values)
		if !out.Served || !out.Recovered {
			t.Fatalf("epoch %d not recovered: %+v", epoch, out)
		}
		if len(out.Suspects) != 1 || out.Suspects[0].Route != (core.Route{Aggregator: true, ID: evil}) {
			t.Fatalf("epoch %d suspects %v", epoch, out.Suspects)
		}
		if out.Sum != sumOver(values, out.Covered) {
			t.Fatalf("epoch %d served %v over %v", epoch, out.Sum, out.Covered)
		}
		want := sumOver(values, nil) - sumOver(values, bad)
		if out.Sum != want {
			t.Fatalf("epoch %d sum %v, want %v", epoch, out.Sum, want)
		}
		if out.Probes > budget {
			t.Fatalf("epoch %d used %d probes, budget %d", epoch, out.Probes, budget)
		}
		if out.Coverage != 0.75 {
			t.Fatalf("epoch %d coverage %v", epoch, out.Coverage)
		}
	}

	// Epoch 2 confirmed the route; epoch 3 routes around it pre-emptively —
	// no localization, no probes, served clean at partial coverage.
	before := rec.Stats().ProbesIssued
	out := rec.RunEpoch(3, values)
	if !out.Served || out.Recovered {
		t.Fatalf("epoch 3: %+v", out)
	}
	if out.Coverage != 0.75 || out.Sum != sumOver(values, nil)-sumOver(values, bad) {
		t.Fatalf("epoch 3 sum %v coverage %v", out.Sum, out.Coverage)
	}
	if rec.Stats().ProbesIssued != before {
		t.Fatal("pre-emptive exclusion still probed")
	}
	if s := rec.Quarantine().StateOf(core.Route{Aggregator: true, ID: evil}); s != core.RouteConfirmed {
		t.Fatalf("evil aggregator state %v", s)
	}
	st := rec.Stats()
	if st.Recovered != 2 || st.Localizations != 2 || st.Lost != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRecoveryReinstatesAfterFaultClears(t *testing.T) {
	eng, proto := siesEngine(t, 16, 4)
	field := proto.Querier.Params().Field()
	const evil = 3
	rec := NewRecovery(eng, RecoveryConfig{
		Quarantine: core.QuarantineConfig{ConfirmAfter: 2, QuarantineEpochs: 3, ProbationEpochs: 2},
	})
	values := seqValues(16)

	eng.SetInterceptor(tamperFrom(field, evil, 7))
	rec.RunEpoch(1, values)
	rec.RunEpoch(2, values) // confirmed
	eng.SetInterceptor(nil) // fault clears

	// Three clean (partial-coverage) epochs decay the quarantine; the next
	// epoch serves at full coverage again with the route on probation.
	var out EpochOutcome
	for epoch := prf.Epoch(3); epoch <= 7; epoch++ {
		out = rec.RunEpoch(epoch, values)
		if !out.Served {
			t.Fatalf("epoch %d lost: %v", epoch, out.Err)
		}
	}
	if out.Coverage != 1 {
		t.Fatalf("coverage %v after fault cleared", out.Coverage)
	}
	st := rec.Stats()
	if st.Quarantine.Reinstated != 1 {
		t.Fatalf("stats %+v", st)
	}
	route := core.Route{Aggregator: true, ID: evil}
	if s := rec.Quarantine().StateOf(route); s != core.RouteProbation && s != core.RouteClear {
		t.Fatalf("route state %v after reinstatement", s)
	}
}

func TestRecoveryColluders(t *testing.T) {
	// Two tamperers in different subtrees must both be localized in one
	// procedure and the re-query must route around both.
	eng, proto := siesEngine(t, 16, 4)
	field := proto.Querier.Params().Field()
	ic1, ic2 := tamperFrom(field, 1, 11), tamperFrom(field, 4, 13)
	eng.SetInterceptor(func(t prf.Epoch, e Edge, m Message) Message {
		if m = ic1(t, e, m); m == nil {
			return nil
		}
		return ic2(t, e, m)
	})
	rec := NewRecovery(eng, RecoveryConfig{})
	values := seqValues(16)
	topo := eng.Topology()

	out := rec.RunEpoch(1, values)
	if !out.Served || !out.Recovered {
		t.Fatalf("not recovered: %+v", out)
	}
	if len(out.Suspects) != 2 {
		t.Fatalf("suspects %v, want both colluders", out.Suspects)
	}
	want := sumOver(values, nil) - sumOver(values, topo.ChildSources(1)) - sumOver(values, topo.ChildSources(4))
	if out.Sum != want {
		t.Fatalf("sum %v, want %v", out.Sum, want)
	}
	if out.Coverage != 0.5 {
		t.Fatalf("coverage %v", out.Coverage)
	}
}

func TestRecoveryRootTamperLosesEpochExplicitly(t *testing.T) {
	// The root's out-edge cannot be routed around: the epoch must be reported
	// lost (never a wrong answer), with every route blamed.
	eng, proto := siesEngine(t, 16, 4)
	field := proto.Querier.Params().Field()
	eng.SetInterceptor(tamperFrom(field, eng.Topology().Root(), 5))
	rec := NewRecovery(eng, RecoveryConfig{})
	values := seqValues(16)

	out := rec.RunEpoch(1, values)
	if out.Served {
		t.Fatalf("root tamper served a result: %+v", out)
	}
	if out.Err == nil || !strings.Contains(out.Err.Error(), "blamed every route") {
		t.Fatalf("err %v", out.Err)
	}
	if out.Probes > ProbeBudget(eng.Topology()) {
		t.Fatalf("%d probes over budget", out.Probes)
	}
	if rec.Stats().Lost != 1 {
		t.Fatalf("stats %+v", rec.Stats())
	}
}

func TestRecoveryProbeTrafficAccounting(t *testing.T) {
	eng, proto := siesEngine(t, 16, 4)
	field := proto.Querier.Params().Field()
	eng.SetInterceptor(tamperFrom(field, 2, 3))
	rec := NewRecovery(eng, RecoveryConfig{})
	values := seqValues(16)
	out := rec.RunEpoch(1, values)
	if !out.Served {
		t.Fatal(out.Err)
	}
	st := eng.Stats()
	if st.Probes != out.Probes {
		t.Fatalf("engine counted %d probe runs, outcome says %d", st.Probes, out.Probes)
	}
	// First pass (failed, still counts traffic but not an Epoch) + re-query.
	if st.Epochs != 1 {
		t.Fatalf("engine epochs %d, want 1 (only the served re-query)", st.Epochs)
	}
}

func TestProbeTreeRestriction(t *testing.T) {
	eng, _ := siesEngine(t, 16, 4)
	if err := eng.FailSource(0); err != nil {
		t.Fatal(err)
	}
	if err := eng.FailAggregator(4); err != nil {
		t.Fatal(err)
	}
	include := []int{0, 1, 2, 3, 4, 5, 12, 13, 14, 15} // 12-15 live under failed agg 4
	tree := eng.ProbeTree(include)
	seen := map[int]bool{}
	var walk func(g core.ProbeGroup)
	walk = func(g core.ProbeGroup) {
		if !g.Route.Aggregator {
			seen[g.Route.ID] = true
		}
		for _, c := range g.Children {
			walk(c)
		}
	}
	walk(tree)
	// Failed source 0 and agg 4's subtree (12-15) must be pruned; the rest of
	// the include set must be present as atomic groups.
	for _, id := range []int{1, 2, 3, 4, 5} {
		if !seen[id] {
			t.Fatalf("source %d missing from probe tree", id)
		}
	}
	for _, id := range []int{0, 12, 13, 14, 15, 6, 7} {
		if seen[id] {
			t.Fatalf("source %d should be pruned from probe tree", id)
		}
	}
}

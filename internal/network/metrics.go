package network

import (
	"fmt"
	"strings"

	"github.com/sies/sies/internal/obs"
)

// RegisterMetrics exposes the engine's traffic accounting on reg: per-edge-
// class message/byte counters (the paper's Table V quantities) plus the
// epoch and probe tallies. The engine itself is single-threaded; the
// registered funcs only read plain ints, so scrapes concurrent with a
// running simulation see torn-but-monotonic values, which is the usual
// Prometheus contract for uninstrumented hot loops.
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, kind := range []EdgeKind{EdgeSA, EdgeAA, EdgeAQ} {
		st := e.stats.PerKind[kind]
		label := strings.ToLower(strings.ReplaceAll(kind.String(), "-", ""))
		reg.CounterFunc(
			fmt.Sprintf("sies_sim_edge_messages_total{edge=%q}", label),
			"messages carried per edge class",
			func() uint64 { return uint64(st.Messages) })
		reg.CounterFunc(
			fmt.Sprintf("sies_sim_edge_bytes_total{edge=%q}", label),
			"bytes carried per edge class",
			func() uint64 { return uint64(st.Bytes) })
		reg.GaugeFunc(
			fmt.Sprintf("sies_sim_edge_max_bytes{edge=%q}", label),
			"largest message seen per edge class",
			func() float64 { return float64(st.MaxBytes) })
	}
	reg.CounterFunc("sies_sim_epochs_total", "verified epochs the engine has run",
		func() uint64 { return uint64(e.stats.Epochs) })
	reg.CounterFunc("sies_sim_probes_total", "localization probes the engine has issued",
		func() uint64 { return uint64(e.stats.Probes) })
}

// Standby aggregators and permanent-kill failover for the in-memory
// simulator — the counterpart of the transport plane's self-healing tree
// (DESIGN.md §15). A standby is an aggregator provisioned with no children:
// it idles until an interior sibling is killed permanently, at which point
// the victim's children are re-parented onto it and its subtree contributes
// again. The simulator models the *steady state after re-homing* (who is
// attached where, which sources contribute); the transition dynamics —
// backoff budgets, fences, membership events — live in internal/transport.
package network

import "fmt"

// AddStandby appends a standby aggregator under parent: a node with no
// children of its own, exempt from Validate's no-children and fanout checks
// (capacity held in reserve is not load). It returns the new aggregator id.
func (t *Topology) AddStandby(parent int) (int, error) {
	if parent < 0 || parent >= t.NumAggregators() {
		return 0, fmt.Errorf("network: standby parent %d out of range", parent)
	}
	id := len(t.parentOfAgg)
	t.parentOfAgg = append(t.parentOfAgg, parent)
	t.childAggs = append(t.childAggs, nil)
	t.childSources = append(t.childSources, nil)
	t.childAggs[parent] = append(t.childAggs[parent], id)
	if t.standby == nil {
		t.standby = map[int]bool{}
	}
	t.standby[id] = true
	return id, nil
}

// IsStandby reports whether agg was provisioned as a standby.
func (t *Topology) IsStandby(agg int) bool { return t.standby[agg] }

// reparent moves every child (aggregators and sources) of victim onto target
// and returns how many attachments changed. The victim keeps its slot in the
// aggregator list (ids are stable) but ends up childless.
func (t *Topology) reparent(victim, target int) int {
	moved := 0
	for _, src := range t.childSources[victim] {
		t.sourceParent[src] = target
		t.childSources[target] = append(t.childSources[target], src)
		moved++
	}
	t.childSources[victim] = nil
	for _, agg := range t.childAggs[victim] {
		t.parentOfAgg[agg] = target
		t.childAggs[target] = append(t.childAggs[target], agg)
		moved++
	}
	t.childAggs[victim] = nil
	return moved
}

// KillAggregator fails an aggregator permanently: unlike FailAggregator its
// subtree never recovers by itself — RecoverAggregator refuses the id — and
// the only way its sources contribute again is PromoteStandby re-homing them.
func (e *Engine) KillAggregator(id int) error {
	if err := e.FailAggregator(id); err != nil {
		return err
	}
	if id == e.topo.Root() {
		return fmt.Errorf("network: cannot permanently kill the root")
	}
	if e.killed == nil {
		e.killed = map[int]bool{}
	}
	e.killed[id] = true
	return nil
}

// Killed reports whether an aggregator was permanently killed.
func (e *Engine) Killed(id int) bool { return e.killed[id] }

// PromoteStandby re-homes a killed aggregator's children onto a live standby:
// every child source and child aggregator of victim re-parents to standby,
// and the re-parent counter advances by the number of moved attachments.
// Promotion is what the transport plane's ranked parent lists do organically;
// the simulator applies it as one atomic step.
func (e *Engine) PromoteStandby(victim, standby int) error {
	if !e.killed[victim] {
		return fmt.Errorf("network: aggregator %d is not permanently killed", victim)
	}
	if standby < 0 || standby >= e.topo.NumAggregators() {
		return fmt.Errorf("network: standby %d out of range", standby)
	}
	if e.failedAggs[standby] {
		return fmt.Errorf("network: standby %d is itself down", standby)
	}
	if !e.aggAlive(standby) {
		return fmt.Errorf("network: standby %d has no live path to the root", standby)
	}
	e.reparents += e.topo.reparent(victim, standby)
	return nil
}

// Reparents returns the cumulative number of attachments moved by standby
// promotions.
func (e *Engine) Reparents() int { return e.reparents }

package network

import (
	"errors"
	"fmt"

	"github.com/sies/sies/internal/cmt"
	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/secoa"
)

// SIESProtocol adapts the SIES core (package core) to the engine interface.
// Evaluation runs through a key-schedule engine, so repeated epochs over the
// same contributor set (retransmit and duplicate-sink experiments) hit the
// EpochState cache and consecutive epochs benefit from prefetch.
type SIESProtocol struct {
	Querier *core.Querier
	Sources []*core.Source
	agg     *core.Aggregator
	sched   *core.Schedule
}

// NewSIESProtocol runs SIES setup for n sources and wraps the deployment.
func NewSIESProtocol(n int, opts ...core.Option) (*SIESProtocol, error) {
	q, sources, err := core.Setup(n, opts...)
	if err != nil {
		return nil, err
	}
	return &SIESProtocol{
		Querier: q,
		Sources: sources,
		agg:     core.NewAggregator(q.Params().Field()),
		sched:   core.NewSchedule(q, core.ScheduleConfig{Prefetch: true}),
	}, nil
}

// ScheduleStats exposes the evaluation engine's counters for experiments.
func (p *SIESProtocol) ScheduleStats() core.ScheduleStats { return p.sched.Stats() }

// Name implements Protocol.
func (p *SIESProtocol) Name() string { return "SIES" }

// SourceEmit implements Protocol.
func (p *SIESProtocol) SourceEmit(src int, t prf.Epoch, v uint64) (Message, error) {
	if src < 0 || src >= len(p.Sources) {
		return nil, fmt.Errorf("sies: source %d out of range", src)
	}
	return p.Sources[src].Encrypt(t, v)
}

// Merge implements Protocol through the lazy-reduction kernel: one modular
// reduction per merge instead of one per child.
func (p *SIESProtocol) Merge(_ prf.Epoch, msgs []Message) (Message, error) {
	merge := p.agg.NewMerge()
	for _, m := range msgs {
		psr, ok := m.(core.PSR)
		if !ok {
			return nil, errors.New("sies: foreign message in merge")
		}
		merge.Add(psr)
	}
	return merge.Final(), nil
}

// SinkFinalize implements Protocol (identity for SIES).
func (p *SIESProtocol) SinkFinalize(_ prf.Epoch, m Message) (Message, error) { return m, nil }

// Evaluate implements Protocol.
func (p *SIESProtocol) Evaluate(t prf.Epoch, m Message, contributors []int) (float64, error) {
	psr, ok := m.(core.PSR)
	if !ok {
		return 0, errors.New("sies: foreign message at querier")
	}
	res, err := p.sched.Evaluate(t, psr, contributors)
	if err != nil {
		return 0, err
	}
	return float64(res.Sum), nil
}

// WireSize implements Protocol: every SIES PSR is 32 bytes.
func (p *SIESProtocol) WireSize(Message) int { return core.PSRSize }

// CMTProtocol adapts the CMT baseline.
type CMTProtocol struct {
	Querier *cmt.Querier
	Sources []*cmt.Source
}

// NewCMTProtocol generates keys and wraps a CMT deployment of n sources.
func NewCMTProtocol(n int) (*CMTProtocol, error) {
	if n < 1 {
		return nil, errors.New("cmt: need at least one source")
	}
	keys := make([][]byte, n)
	sources := make([]*cmt.Source, n)
	for i := range keys {
		k, err := prf.NewLongTermKey()
		if err != nil {
			return nil, err
		}
		keys[i] = k
		sources[i] = cmt.NewSource(i, k)
	}
	q, err := cmt.NewQuerier(keys)
	if err != nil {
		return nil, err
	}
	return &CMTProtocol{Querier: q, Sources: sources}, nil
}

// Name implements Protocol.
func (p *CMTProtocol) Name() string { return "CMT" }

// SourceEmit implements Protocol.
func (p *CMTProtocol) SourceEmit(src int, t prf.Epoch, v uint64) (Message, error) {
	if src < 0 || src >= len(p.Sources) {
		return nil, fmt.Errorf("cmt: source %d out of range", src)
	}
	return p.Sources[src].Encrypt(t, v), nil
}

// Merge implements Protocol.
func (p *CMTProtocol) Merge(_ prf.Epoch, msgs []Message) (Message, error) {
	var acc cmt.Ciphertext
	for _, m := range msgs {
		c, ok := m.(cmt.Ciphertext)
		if !ok {
			return nil, errors.New("cmt: foreign message in merge")
		}
		acc = cmt.Aggregate(acc, c)
	}
	return acc, nil
}

// SinkFinalize implements Protocol (identity).
func (p *CMTProtocol) SinkFinalize(_ prf.Epoch, m Message) (Message, error) { return m, nil }

// Evaluate implements Protocol.
func (p *CMTProtocol) Evaluate(t prf.Epoch, m Message, contributors []int) (float64, error) {
	c, ok := m.(cmt.Ciphertext)
	if !ok {
		return 0, errors.New("cmt: foreign message at querier")
	}
	sum, err := p.Querier.Decrypt(t, c, contributors)
	if err != nil {
		return 0, err
	}
	return float64(sum), nil
}

// WireSize implements Protocol: every CMT ciphertext is 20 bytes.
func (p *CMTProtocol) WireSize(Message) int { return cmt.CiphertextSize }

// SECOAProtocol adapts the SECOA_S baseline. Fast sketch sampling keeps
// large simulations tractable; the benchmark harness measures the honest
// generator separately.
type SECOAProtocol struct {
	Deployment *secoa.Deployment
	agg        *secoa.Aggregator
	// UseHonestSketch switches Produce to the Θ(J·v) generator used when
	// measuring the paper's source-side cost.
	UseHonestSketch bool
}

// NewSECOAProtocol builds a SECOA_S deployment of n sources.
func NewSECOAProtocol(n int, params secoa.Params, seed int64) (*SECOAProtocol, error) {
	d, err := secoa.NewDeployment(n, params, seed)
	if err != nil {
		return nil, err
	}
	agg, err := secoa.NewAggregator(params)
	if err != nil {
		return nil, err
	}
	return &SECOAProtocol{Deployment: d, agg: agg}, nil
}

// Name implements Protocol.
func (p *SECOAProtocol) Name() string { return "SECOAS" }

// SourceEmit implements Protocol.
func (p *SECOAProtocol) SourceEmit(src int, t prf.Epoch, v uint64) (Message, error) {
	if src < 0 || src >= len(p.Deployment.Sources) {
		return nil, fmt.Errorf("secoa: source %d out of range", src)
	}
	if p.UseHonestSketch {
		return p.Deployment.Sources[src].Produce(t, v)
	}
	return p.Deployment.Sources[src].ProduceFast(t, v)
}

// Merge implements Protocol.
func (p *SECOAProtocol) Merge(_ prf.Epoch, msgs []Message) (Message, error) {
	children := make([]*secoa.Message, len(msgs))
	for i, m := range msgs {
		sm, ok := m.(*secoa.Message)
		if !ok {
			return nil, errors.New("secoa: foreign message in merge")
		}
		children[i] = sm
	}
	return p.agg.Merge(children...)
}

// SinkFinalize implements Protocol: fold SEALs by chain position.
func (p *SECOAProtocol) SinkFinalize(_ prf.Epoch, m Message) (Message, error) {
	sm, ok := m.(*secoa.Message)
	if !ok {
		return nil, errors.New("secoa: foreign message at sink")
	}
	return p.agg.SinkFold(sm)
}

// Evaluate implements Protocol. SECOA_S has no subset evaluation in the
// paper; failed sources would require re-keying, so contributors must be nil
// or complete.
func (p *SECOAProtocol) Evaluate(t prf.Epoch, m Message, contributors []int) (float64, error) {
	if contributors != nil && len(contributors) != len(p.Deployment.Sources) {
		return 0, errors.New("secoa: partial contributor sets are not supported")
	}
	sm, ok := m.(*secoa.Message)
	if !ok {
		return 0, errors.New("secoa: foreign message at querier")
	}
	res, err := p.Deployment.Querier.Verify(t, sm)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// WireSize implements Protocol using the paper's accounting.
func (p *SECOAProtocol) WireSize(m Message) int {
	sm, ok := m.(*secoa.Message)
	if !ok {
		return 0
	}
	return sm.WireSize(p.Deployment.Params.Key.Size())
}

// Package network simulates the in-network aggregation infrastructure of
// the paper (§III-A): sources at the leaves of an aggregator tree, a querier
// attached to the root (the sink), epoch-driven push-based collection, and
// per-edge communication accounting.
//
// The paper evaluates CPU cost on a desktop and *counts* message bytes
// rather than transmitting over radio; this package follows the same
// methodology, so no substitution fidelity is lost by simulating the
// network in memory.
package network

import (
	"errors"
	"fmt"
)

// Topology is an aggregator tree with sources attached to leaf aggregators.
// Aggregator 0 is the root (the sink talking to the querier).
type Topology struct {
	fanout       int
	parentOfAgg  []int        // parent aggregator id, -1 for the root
	childAggs    [][]int      // child aggregators per aggregator
	childSources [][]int      // child sources per aggregator
	sourceParent []int        // parent aggregator per source
	standby      map[int]bool // aggregators provisioned childless (see standby.go)
}

// CompleteTree builds the paper's experimental topology: nSources sources
// under an (as balanced as possible) fanout-F aggregator tree. Every
// aggregator has at most F children (counting both child aggregators and
// directly attached sources), matching "the sources and the aggregators
// form a complete tree" (§VI).
func CompleteTree(nSources, fanout int) (*Topology, error) {
	if nSources < 1 {
		return nil, errors.New("network: need at least one source")
	}
	if fanout < 2 {
		return nil, errors.New("network: fanout must be at least 2")
	}
	t := &Topology{fanout: fanout, sourceParent: make([]int, nSources)}
	nextSource := 0
	var build func(parent, count int) int
	build = func(parent, count int) int {
		id := len(t.parentOfAgg)
		t.parentOfAgg = append(t.parentOfAgg, parent)
		t.childAggs = append(t.childAggs, nil)
		t.childSources = append(t.childSources, nil)
		if count <= fanout {
			// Leaf aggregator: attach sources directly.
			for i := 0; i < count; i++ {
				t.childSources[id] = append(t.childSources[id], nextSource)
				t.sourceParent[nextSource] = id
				nextSource++
			}
			return id
		}
		// Split the sources into fanout groups as evenly as possible.
		base := count / fanout
		extra := count % fanout
		for i := 0; i < fanout; i++ {
			group := base
			if i < extra {
				group++
			}
			if group == 0 {
				continue
			}
			child := build(id, group)
			t.childAggs[id] = append(t.childAggs[id], child)
		}
		return id
	}
	build(-1, nSources)
	return t, nil
}

// NumAggregators returns the number of aggregators in the tree.
func (t *Topology) NumAggregators() int { return len(t.parentOfAgg) }

// NumSources returns the number of sources.
func (t *Topology) NumSources() int { return len(t.sourceParent) }

// Fanout returns the configured fanout F.
func (t *Topology) Fanout() int { return t.fanout }

// Root returns the sink aggregator id.
func (t *Topology) Root() int { return 0 }

// ChildAggregators returns the child aggregator ids of agg.
func (t *Topology) ChildAggregators(agg int) []int { return t.childAggs[agg] }

// ChildSources returns the source ids attached to agg.
func (t *Topology) ChildSources(agg int) []int { return t.childSources[agg] }

// ParentOf returns the parent aggregator of agg (-1 for the root).
func (t *Topology) ParentOf(agg int) int { return t.parentOfAgg[agg] }

// SourceParent returns the aggregator a source reports to.
func (t *Topology) SourceParent(src int) int { return t.sourceParent[src] }

// Depth returns the number of aggregator levels on the longest root-to-leaf
// path.
func (t *Topology) Depth() int {
	var depth func(agg int) int
	depth = func(agg int) int {
		max := 0
		for _, c := range t.childAggs[agg] {
			if d := depth(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	return depth(t.Root())
}

// Validate checks structural invariants; topologies from CompleteTree always
// pass, and hand-built ones can be vetted before use.
func (t *Topology) Validate() error {
	seen := make([]bool, t.NumSources())
	for agg := 0; agg < t.NumAggregators(); agg++ {
		kids := 0
		for _, c := range t.childAggs[agg] {
			if !t.standby[c] {
				kids++ // standbys are reserve capacity, not fanout load
			}
		}
		kids += len(t.childSources[agg])
		if kids == 0 && !t.standby[agg] {
			return fmt.Errorf("network: aggregator %d has no children", agg)
		}
		if kids > t.fanout {
			return fmt.Errorf("network: aggregator %d exceeds fanout (%d > %d)", agg, kids, t.fanout)
		}
		for _, s := range t.childSources[agg] {
			if s < 0 || s >= t.NumSources() {
				return fmt.Errorf("network: aggregator %d references source %d", agg, s)
			}
			if seen[s] {
				return fmt.Errorf("network: source %d attached twice", s)
			}
			seen[s] = true
			if t.sourceParent[s] != agg {
				return fmt.Errorf("network: source %d parent mismatch", s)
			}
		}
		for _, c := range t.childAggs[agg] {
			if c <= agg || c >= t.NumAggregators() {
				return fmt.Errorf("network: aggregator %d has invalid child %d", agg, c)
			}
			if t.parentOfAgg[c] != agg {
				return fmt.Errorf("network: aggregator %d parent mismatch", c)
			}
		}
	}
	for s, ok := range seen {
		if !ok {
			return fmt.Errorf("network: source %d not attached", s)
		}
	}
	return nil
}

package network

import (
	"errors"
	"fmt"
	"math/rand"
)

// FromParents builds a topology from explicit parent assignments: aggParent
// maps each aggregator to its parent aggregator (−1 for the root, which must
// be aggregator 0; every parent index must be smaller than its child, i.e.
// aggregators are listed in topological order), and sourceParent maps each
// source to its hosting aggregator. The paper's tree "can be arbitrary"
// (§III-A); this is the entry point for such trees. fanout only caps
// Validate's per-node check and must cover the widest node.
func FromParents(aggParent, sourceParent []int, fanout int) (*Topology, error) {
	if len(aggParent) == 0 {
		return nil, errors.New("network: need at least one aggregator")
	}
	if len(sourceParent) == 0 {
		return nil, errors.New("network: need at least one source")
	}
	if aggParent[0] != -1 {
		return nil, errors.New("network: aggregator 0 must be the root (parent −1)")
	}
	if fanout < 2 {
		return nil, errors.New("network: fanout must be at least 2")
	}
	t := &Topology{
		fanout:       fanout,
		parentOfAgg:  append([]int(nil), aggParent...),
		childAggs:    make([][]int, len(aggParent)),
		childSources: make([][]int, len(aggParent)),
		sourceParent: append([]int(nil), sourceParent...),
	}
	for agg := 1; agg < len(aggParent); agg++ {
		p := aggParent[agg]
		if p < 0 || p >= agg {
			return nil, fmt.Errorf("network: aggregator %d has invalid parent %d (must precede it)", agg, p)
		}
		t.childAggs[p] = append(t.childAggs[p], agg)
	}
	for src, p := range sourceParent {
		if p < 0 || p >= len(aggParent) {
			return nil, fmt.Errorf("network: source %d has invalid parent %d", src, p)
		}
		t.childSources[p] = append(t.childSources[p], src)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// RandomTree grows a random topology for n sources from a fresh PRNG seeded
// with seed. See RandomTreeRand.
func RandomTree(n, maxFanout int, seed int64) (*Topology, error) {
	return RandomTreeRand(n, maxFanout, rand.New(rand.NewSource(seed)))
}

// RandomTreeRand grows a random topology for n sources: aggregators are
// added until every source finds a slot, each new aggregator attaching to a
// random existing one with spare capacity. Deterministic in the injected rng,
// so topology generation composes with chaos schedules drawn from the same
// seed. Exercises the protocol on irregular shapes — chains, lopsided stars,
// everything between.
func RandomTreeRand(n, maxFanout int, rng *rand.Rand) (*Topology, error) {
	if n < 1 {
		return nil, errors.New("network: need at least one source")
	}
	if maxFanout < 2 {
		return nil, errors.New("network: fanout must be at least 2")
	}
	if rng == nil {
		return nil, errors.New("network: nil rng")
	}

	aggParent := []int{-1}
	slots := []int{maxFanout} // spare child capacity per aggregator
	spare := maxFanout
	addAgg := func() {
		cand := candidates(slots)
		p := cand[rng.Intn(len(cand))]
		slots[p]--
		aggParent = append(aggParent, p)
		slots = append(slots, maxFanout)
		spare += maxFanout - 1 // one slot consumed, maxFanout gained
	}

	sourceParent := make([]int, n)
	for src := 0; src < n; src++ {
		// Invariant: keep ≥2 spare slots before attaching, so a slot always
		// remains to grow the tree (each growth nets ≥+1 slot for
		// maxFanout ≥ 2); exhaustion is impossible.
		for spare < 2 {
			addAgg()
		}
		// Occasionally deepen anyway, for shape diversity.
		if rng.Intn(4) == 0 {
			addAgg()
		}
		cand := candidates(slots)
		parent := cand[rng.Intn(len(cand))]
		slots[parent]--
		spare--
		sourceParent[src] = parent
	}
	// Random growth can leave childless aggregators, which Validate rejects;
	// compact removes and renumbers.
	return compact(aggParent, sourceParent, maxFanout)
}

// candidates returns aggregator ids with spare capacity.
func candidates(slots []int) []int {
	var out []int
	for i, s := range slots {
		if s > 0 {
			out = append(out, i)
		}
	}
	return out
}

// compact removes childless aggregators (iteratively, since removal can
// orphan a parent) and renumbers the survivors in topological order.
func compact(aggParent, sourceParent []int, fanout int) (*Topology, error) {
	n := len(aggParent)
	hasChild := make([]bool, n)
	alive := func(a int) bool { return aggParent[a] != -2 }
	for {
		for i := range hasChild {
			hasChild[i] = false
		}
		// Mark parents of live aggregators and of sources.
		for agg := 1; agg < n; agg++ {
			if alive(agg) {
				hasChild[aggParent[agg]] = true
			}
		}
		for _, p := range sourceParent {
			hasChild[p] = true
		}
		removed := false
		for agg := n - 1; agg >= 1; agg-- {
			if alive(agg) && !hasChild[agg] {
				aggParent[agg] = -2 // tombstone
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	// Renumber.
	newID := make([]int, n)
	var keptParents []int
	for agg := 0; agg < n; agg++ {
		if aggParent[agg] == -2 {
			newID[agg] = -1
			continue
		}
		newID[agg] = len(keptParents)
		if agg == 0 {
			keptParents = append(keptParents, -1)
		} else {
			keptParents = append(keptParents, newID[aggParent[agg]])
		}
	}
	newSources := make([]int, len(sourceParent))
	for i, p := range sourceParent {
		newSources[i] = newID[p]
	}
	return FromParents(keptParents, newSources, fanout)
}

package network

import (
	"math/rand"
	"testing"

	"github.com/sies/sies/internal/prf"
)

func TestFromParentsChain(t *testing.T) {
	// A pathological chain: root ← a1 ← a2, sources hanging off each level.
	topo, err := FromParents([]int{-1, 0, 1}, []int{0, 1, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Depth() != 3 {
		t.Fatalf("depth = %d", topo.Depth())
	}
	if topo.NumAggregators() != 3 || topo.NumSources() != 4 {
		t.Fatalf("aggs=%d sources=%d", topo.NumAggregators(), topo.NumSources())
	}
}

func TestFromParentsValidation(t *testing.T) {
	cases := []struct {
		name       string
		aggs, srcs []int
		fanout     int
	}{
		{"no aggregators", nil, []int{0}, 4},
		{"no sources", []int{-1}, nil, 4},
		{"root not first", []int{0, -1}, []int{0, 1}, 4},
		{"forward parent", []int{-1, 2, 0}, []int{1, 2}, 4},
		{"source bad parent", []int{-1}, []int{3}, 4},
		{"childless aggregator", []int{-1, 0}, []int{0}, 4},
		{"fanout exceeded", []int{-1}, []int{0, 0, 0}, 2},
		{"fanout too small", []int{-1}, []int{0}, 1},
	}
	for _, c := range cases {
		if _, err := FromParents(c.aggs, c.srcs, c.fanout); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRandomTreeValidates(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, n := range []int{1, 2, 7, 50, 300} {
			for _, f := range []int{2, 3, 6} {
				topo, err := RandomTree(n, f, seed)
				if err != nil {
					t.Fatalf("n=%d f=%d seed=%d: %v", n, f, seed, err)
				}
				if err := topo.Validate(); err != nil {
					t.Fatalf("n=%d f=%d seed=%d: %v", n, f, seed, err)
				}
				if topo.NumSources() != n {
					t.Fatalf("n=%d f=%d seed=%d: sources=%d", n, f, seed, topo.NumSources())
				}
			}
		}
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	a, err := RandomTree(64, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomTree(64, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAggregators() != b.NumAggregators() {
		t.Fatal("random trees differ for equal seeds")
	}
	for src := 0; src < 64; src++ {
		if a.SourceParent(src) != b.SourceParent(src) {
			t.Fatal("source placement differs for equal seeds")
		}
	}
}

func TestRandomTreeShapesDiverge(t *testing.T) {
	a, err := RandomTree(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomTree(64, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAggregators() == b.NumAggregators() && a.Depth() == b.Depth() {
		same := true
		for src := 0; src < 64; src++ {
			if a.SourceParent(src) != b.SourceParent(src) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical trees")
		}
	}
}

func TestSIESOnArbitraryTopologies(t *testing.T) {
	// The protocol result must be independent of tree shape: run the same
	// deployment over many random trees and a chain, expect identical sums.
	const n = 25
	proto, err := NewSIESProtocol(n)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, n)
	var want uint64
	for i := range values {
		values[i] = uint64(i * i)
		want += values[i]
	}
	for seed := int64(0); seed < 10; seed++ {
		topo, err := RandomTree(n, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(topo, proto)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.RunEpoch(prf.Epoch(seed+1), values)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != float64(want) {
			t.Fatalf("seed %d: SUM %f, want %d", seed, got, want)
		}
	}
}

func TestRandomTreeRandSharedRNG(t *testing.T) {
	// An injected rng makes topology generation composable with other
	// seeded draws (chaos schedules): the same master seed replays both.
	build := func(seed int64) (*Topology, int) {
		rng := rand.New(rand.NewSource(seed))
		topo, err := RandomTreeRand(32, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		return topo, rng.Intn(1 << 30) // downstream draw from the same stream
	}
	a, drawA := build(17)
	b, drawB := build(17)
	if a.NumAggregators() != b.NumAggregators() || drawA != drawB {
		t.Fatal("shared-rng generation is not reproducible from one seed")
	}
	for src := 0; src < 32; src++ {
		if a.SourceParent(src) != b.SourceParent(src) {
			t.Fatal("source placement differs for equal seeds")
		}
	}
	if _, err := RandomTreeRand(32, 3, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

package network

import "testing"

func TestTrafficPerEpoch(t *testing.T) {
	topo, err := CompleteTree(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrafficPerEpoch(topo, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SourceTx != 32 {
		t.Fatalf("SourceTx = %d", rep.SourceTx)
	}
	if len(rep.Aggregators) != topo.NumAggregators() {
		t.Fatalf("rows = %d", len(rep.Aggregators))
	}
	// Every aggregator in the perfect 16/4 tree has exactly 4 children.
	for _, n := range rep.Aggregators {
		if n.TxBytes != 32 || n.RxBytes != 4*32 {
			t.Fatalf("node %d: tx=%d rx=%d", n.Aggregator, n.TxBytes, n.RxBytes)
		}
	}
	hot := rep.Hotspot()
	if hot.TxBytes+hot.RxBytes != 5*32 {
		t.Fatalf("hotspot load %d", hot.TxBytes+hot.RxBytes)
	}
	// Total: 16 source tx + 5 aggs × (1 tx + 4 rx) each × 32.
	if got := rep.TotalBytes(16); got != 16*32+5*5*32 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

func TestTrafficHotspotOnRaggedTree(t *testing.T) {
	// A ragged tree has aggregators with differing child counts: the
	// hotspot must be one with the maximum fan-in.
	topo, err := FromParents([]int{-1, 0}, []int{0, 1, 1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrafficPerEpoch(topo, 20)
	if err != nil {
		t.Fatal(err)
	}
	hot := rep.Hotspot()
	if hot.Aggregator != 1 || hot.RxBytes != 3*20 {
		t.Fatalf("hotspot %+v", hot)
	}
}

func TestTrafficValidation(t *testing.T) {
	if _, err := TrafficPerEpoch(nil, 32); err == nil {
		t.Fatal("nil topology accepted")
	}
	topo, err := CompleteTree(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrafficPerEpoch(topo, 0); err == nil {
		t.Fatal("zero message size accepted")
	}
	empty := &TrafficReport{}
	if empty.Hotspot().Aggregator != -1 {
		t.Fatal("empty report hotspot")
	}
}

func TestTrafficMatchesEngineAccounting(t *testing.T) {
	// The analytical per-node report must agree with the engine's measured
	// per-edge totals: Σ node tx == Σ edge bytes (every edge has exactly one
	// transmitter).
	topo, err := CompleteTree(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewSIESProtocol(64)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunEpoch(1, make([]uint64, 64)); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	measured := st.PerKind[EdgeSA].Bytes + st.PerKind[EdgeAA].Bytes + st.PerKind[EdgeAQ].Bytes

	rep, err := TrafficPerEpoch(topo, 32)
	if err != nil {
		t.Fatal(err)
	}
	analytic := 64*rep.SourceTx + 0
	for _, n := range rep.Aggregators {
		analytic += n.TxBytes
	}
	if analytic != measured {
		t.Fatalf("analytic tx %d != measured %d", analytic, measured)
	}
}

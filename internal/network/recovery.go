// Recovery: localization, quarantine and verified re-query on top of the
// in-memory engine.
//
// RunEpoch on a tampered tree returns ErrIntegrity and loses the epoch; the
// Recovery supervisor instead treats that rejection as the start of a
// forensic procedure: group-testing probes (core.Localizer) over the
// topology's subtrees pinpoint the corrupted routes, the culprits land in a
// core.Quarantine registry, and one final re-query excluding them serves an
// exact, verified SUM over the surviving subset — the epoch degrades to
// partial coverage instead of vanishing.
package network

import (
	"errors"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
)

// RecoveryConfig tunes the supervisor. Zero values select defaults sized to
// the topology.
type RecoveryConfig struct {
	// Localizer bounds and paces the group-testing probes. A zero MaxProbes
	// defaults to ProbeBudget(topology) rather than core's flat default.
	Localizer core.LocalizerConfig
	// Quarantine tunes the suspect → confirmed → probation state machine.
	Quarantine core.QuarantineConfig
}

// RecoveryStats accumulates the supervisor's counters across epochs. The
// json tags feed the soak test's recovery-stats artifact and siessim output.
type RecoveryStats struct {
	Epochs        int                  `json:"epochs"`        // epochs driven through the supervisor
	Clean         int                  `json:"clean"`         // served without any integrity failure
	Recovered     int                  `json:"recovered"`     // served after localization + re-query
	Lost          int                  `json:"lost"`          // explicitly reported lost
	Localizations int                  `json:"localizations"` // forensic procedures run
	ProbesIssued  int                  `json:"probes_issued"` // subset re-queries across all localizations
	ProbeRounds   int                  `json:"probe_rounds"`  // descent rounds across all localizations
	MaxProbes     int                  `json:"max_probes"`    // largest single localization, in probes
	BudgetAborts  int                  `json:"budget_aborts"` // localizations cut off by the probe budget
	Quarantine    core.QuarantineStats `json:"quarantine"`
}

// EpochOutcome is one epoch as the supervisor experienced it.
type EpochOutcome struct {
	Epoch     prf.Epoch
	Sum       float64
	Served    bool    // an exact verified SUM was delivered
	Recovered bool    // served only after localization + re-query
	Covered   []int   // contributor ids behind the served SUM (nil = all live)
	Coverage  float64 // |Covered| / N
	Excluded  []int   // ids subtracted this epoch (quarantine + fresh suspects)
	Suspects  []core.Suspect
	Probes    int
	Rounds    int
	Err       error // why the epoch was lost, when !Served
}

// Recovery drives an engine epoch by epoch, recovering integrity failures.
type Recovery struct {
	eng        *Engine
	localizer  *core.Localizer
	quarantine *core.Quarantine
	stats      RecoveryStats
}

// ProbeBudget is the default probe cap for one localization over the given
// topology: the O(d·log N) descent bound for a handful of simultaneous
// culprits (d = 4), with the +1 whole-set probe folded in.
func ProbeBudget(topo *Topology) int {
	const d = 4
	return 1 + d*topo.Fanout()*(topo.Depth()+1)
}

// NewRecovery wraps an engine in a recovery supervisor.
func NewRecovery(eng *Engine, cfg RecoveryConfig) *Recovery {
	if cfg.Localizer.MaxProbes <= 0 {
		cfg.Localizer.MaxProbes = ProbeBudget(eng.Topology())
	}
	return &Recovery{
		eng:        eng,
		localizer:  core.NewLocalizer(cfg.Localizer),
		quarantine: core.NewQuarantine(cfg.Quarantine),
	}
}

// Quarantine exposes the registry (read-mostly: population, states).
func (r *Recovery) Quarantine() *core.Quarantine { return r.quarantine }

// Stats snapshots the supervisor's counters.
func (r *Recovery) Stats() RecoveryStats {
	s := r.stats
	s.Quarantine = r.quarantine.Stats()
	return s
}

// integrityFailure classifies an evaluation error as tampering. Overflow
// counts: a tampered value field overflows as easily as it mismatches.
func integrityFailure(err error) bool {
	return errors.Is(err, core.ErrIntegrity) || errors.Is(err, core.ErrResultOverflow)
}

// RunEpoch drives one epoch with recovery. The flow:
//
//  1. Query over all live sources minus the quarantine's confirmed set.
//  2. On success: tick the quarantine (decay toward reinstatement) and serve.
//  3. On integrity failure: localize over the included set, report culprits
//     to the quarantine, and re-query excluding every blamed route.
//  4. Serve the verified partial SUM with its coverage, or report the epoch
//     explicitly lost when even the re-query fails.
func (r *Recovery) RunEpoch(t prf.Epoch, values []uint64) EpochOutcome {
	r.stats.Epochs++
	n := r.eng.Topology().NumSources()
	out := EpochOutcome{Epoch: t}

	excluded := r.quarantine.Excluded()
	include := r.include(excluded)
	if include == nil && len(excluded) > 0 {
		// Everything is quarantined; nothing can be served.
		out.Err = errors.New("network: every live source is quarantined")
		out.Excluded = excluded
		r.stats.Lost++
		return out
	}

	sum, err := r.eng.RunEpochOver(t, values, include)
	if err == nil {
		r.quarantine.Tick()
		out.Sum, out.Served = sum, true
		out.Covered = r.covered(include)
		out.Coverage = coverage(out.Covered, n)
		out.Excluded = excluded
		r.stats.Clean++
		return out
	}
	if !integrityFailure(err) {
		out.Err = err
		r.stats.Lost++
		return out
	}

	// Forensics: group-test the included topology for the corrupted routes.
	r.stats.Localizations++
	tree := r.eng.ProbeTree(include)
	suspects, lstats, lerr := r.localizer.Localize(tree, func(ids []int) (bool, error) {
		if len(ids) == 0 {
			return true, nil
		}
		_, perr := r.eng.RunProbe(t, values, ids)
		switch {
		case perr == nil:
			return true, nil
		case integrityFailure(perr), errors.Is(perr, ErrNothingToEvaluate):
			// Tampered or blackholed: either way the subset's route is bad.
			return false, nil
		default:
			return false, perr
		}
	})
	out.Suspects = suspects
	out.Probes, out.Rounds = lstats.Probes, lstats.Rounds
	r.stats.ProbesIssued += lstats.Probes
	r.stats.ProbeRounds += lstats.Rounds
	if lstats.Probes > r.stats.MaxProbes {
		r.stats.MaxProbes = lstats.Probes
	}
	if errors.Is(lerr, core.ErrProbeBudget) {
		r.stats.BudgetAborts++
	}
	for _, s := range suspects {
		r.quarantine.Report(s.Route, s.Sources)
	}

	// Final re-query: route around every blamed subtree (plus the standing
	// quarantine) and serve the verified remainder.
	blame := core.UnionSources(suspects)
	out.Excluded = core.NormalizeIDs(append(append([]int(nil), excluded...), blame...))
	include = r.include(out.Excluded)
	if include == nil {
		out.Err = errors.New("network: localization blamed every route; epoch lost")
		r.stats.Lost++
		return out
	}
	sum, err = r.eng.RunEpochOver(t, values, include)
	if err != nil {
		out.Err = err
		r.stats.Lost++
		return out
	}
	out.Sum, out.Served, out.Recovered = sum, true, true
	out.Covered = r.covered(include)
	out.Coverage = coverage(out.Covered, n)
	r.stats.Recovered++
	return out
}

// include converts an exclusion list into the engine's include form: nil when
// nothing is excluded, nil-with-loss when everything is.
func (r *Recovery) include(excluded []int) []int {
	if len(excluded) == 0 {
		return nil
	}
	inc := core.Subtract(r.eng.Topology().NumSources(), excluded)
	if len(inc) == 0 {
		return nil
	}
	return inc
}

// covered returns the live contributor ids behind a served SUM.
func (r *Recovery) covered(include []int) []int {
	live := r.eng.Contributors()
	if include == nil {
		return live
	}
	inSet := make(map[int]bool, len(include))
	for _, id := range include {
		inSet[id] = true
	}
	return intersectContributors(live, inSet, r.eng.Topology().NumSources())
}

// coverage is |covered| / N, with nil meaning full coverage.
func coverage(covered []int, n int) float64 {
	if covered == nil {
		return 1
	}
	return float64(len(covered)) / float64(n)
}

// ProbeTree builds the group-testing search space from the topology: one
// group per live aggregator (children: its child aggregators plus one atomic
// group per directly attached source), restricted to the given include set
// (nil = all live sources). Groups left without live sources are pruned.
func (e *Engine) ProbeTree(include []int) core.ProbeGroup {
	var included map[int]bool
	if include != nil {
		included = make(map[int]bool, len(include))
		for _, id := range include {
			included[id] = true
		}
	}
	var build func(agg int) (core.ProbeGroup, bool)
	build = func(agg int) (core.ProbeGroup, bool) {
		if e.failedAggs[agg] {
			return core.ProbeGroup{}, false
		}
		g := core.ProbeGroup{Route: core.Route{Aggregator: true, ID: agg}}
		for _, src := range e.topo.ChildSources(agg) {
			if e.failed[src] || (included != nil && !included[src]) {
				continue
			}
			g.Sources = append(g.Sources, src)
			g.Children = append(g.Children, core.ProbeGroup{
				Route:   core.Route{ID: src},
				Sources: []int{src},
			})
		}
		for _, child := range e.topo.ChildAggregators(agg) {
			cg, ok := build(child)
			if !ok || len(cg.Sources) == 0 {
				continue
			}
			g.Sources = append(g.Sources, cg.Sources...)
			g.Children = append(g.Children, cg)
		}
		return g, true
	}
	g, _ := build(e.topo.Root())
	return g
}

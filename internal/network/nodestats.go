package network

import (
	"fmt"
	"sort"
)

// NodeTraffic is one node's per-epoch radio activity: what it transmitted
// upstream and received from its children. Combined with an energy model
// this identifies the deployment's battery hotspots.
type NodeTraffic struct {
	// Aggregator id, or -1 rows represent sources (see SourceTx).
	Aggregator int
	TxBytes    int // bytes sent to the parent (or querier)
	RxBytes    int // bytes received from children
}

// TrafficReport summarises one epoch's per-node load over a topology for a
// scheme with the given per-edge message sizes. SIES/CMT messages are
// constant-size, so the report is exact; for SECOA_S pass the S-A/A-A size
// from Equation 10.
type TrafficReport struct {
	SourceTx    int           // every source transmits one message
	Aggregators []NodeTraffic // sorted by total energy-relevant bytes, descending
}

// TrafficPerEpoch computes the report analytically from the tree shape.
func TrafficPerEpoch(topo *Topology, msgBytes int) (*TrafficReport, error) {
	if topo == nil {
		return nil, fmt.Errorf("network: nil topology")
	}
	if msgBytes <= 0 {
		return nil, fmt.Errorf("network: message size must be positive")
	}
	rep := &TrafficReport{SourceTx: msgBytes}
	for agg := 0; agg < topo.NumAggregators(); agg++ {
		children := len(topo.ChildAggregators(agg)) + len(topo.ChildSources(agg))
		rep.Aggregators = append(rep.Aggregators, NodeTraffic{
			Aggregator: agg,
			TxBytes:    msgBytes,
			RxBytes:    children * msgBytes,
		})
	}
	sort.Slice(rep.Aggregators, func(i, j int) bool {
		ti := rep.Aggregators[i].TxBytes + rep.Aggregators[i].RxBytes
		tj := rep.Aggregators[j].TxBytes + rep.Aggregators[j].RxBytes
		if ti != tj {
			return ti > tj
		}
		return rep.Aggregators[i].Aggregator < rep.Aggregators[j].Aggregator
	})
	return rep, nil
}

// Hotspot returns the most loaded aggregator — the node whose battery
// bounds the network lifetime under this scheme.
func (r *TrafficReport) Hotspot() NodeTraffic {
	if len(r.Aggregators) == 0 {
		return NodeTraffic{Aggregator: -1}
	}
	return r.Aggregators[0]
}

// TotalBytes sums every node's radio bytes for one epoch, including the
// sources' transmissions.
func (r *TrafficReport) TotalBytes(numSources int) int {
	total := numSources * r.SourceTx
	for _, n := range r.Aggregators {
		total += n.TxBytes + n.RxBytes
	}
	return total
}

package secoa

import "testing"

// FuzzDecode feeds hostile bytes to the SECOA message codec: no panics, and
// accepted messages re-encode losslessly.
func FuzzDecode(f *testing.F) {
	const keySize = 64
	f.Add([]byte{}, keySize)
	f.Add([]byte{0, 0, 0, 1, 0, 5, 0, 0, 0, 1}, keySize)
	f.Fuzz(func(t *testing.T, data []byte, ks int) {
		if ks < 1 || ks > 256 {
			ks = keySize
		}
		m, err := Decode(data, ks)
		if err != nil {
			return
		}
		buf, err := m.Encode(ks)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		back, err := Decode(buf, ks)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		assertMessagesEqual(t, m, back)
	})
}

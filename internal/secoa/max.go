package secoa

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/sies/sies/internal/prf"
)

// ErrRollLimit is returned when a MAX value exceeds the rolling budget.
var ErrRollLimit = errors.New("secoa: MAX value exceeds the rolling budget")

// This file implements SECOA_M — the MAX protocol of SECOA (paper §II-D) —
// standalone. SECOA_S (SUM) runs SECOA_M once per sketch instance; MAX
// queries run it once over the raw values themselves:
//
//   - a source sends its value v, an inflation certificate HM1(K_i, t‖v),
//     and a SEAL (its epoch seed RSA-encrypted v times);
//   - an aggregator keeps the maximum value with its certificate, rolls
//     every child's SEAL up to the maximum and folds them;
//   - the querier checks the winner's certificate and recreates the
//     aggregate SEAL from all seeds rolled max times.
//
// Inflating the maximum breaks the certificate; deflating it would require
// un-rolling a SEAL. MAX values must stay small enough to roll (the paper's
// MAX evaluation uses bounded domains); RollLimit guards against abuse.

// RollLimit bounds a MAX value's rolling work (2^16 RSA operations).
const RollLimit = 1 << 16

// MaxMessage is the SECOA_M partial state record.
type MaxMessage struct {
	Value  uint32
	Winner uint32
	Cert   Cert
	Seal   *big.Int
}

// Clone deep-copies the message.
func (m *MaxMessage) Clone() *MaxMessage {
	return &MaxMessage{Value: m.Value, Winner: m.Winner, Cert: m.Cert, Seal: new(big.Int).Set(m.Seal)}
}

// maxCertMessage authenticates epoch ‖ value.
func maxCertMessage(t prf.Epoch, v uint32) []byte {
	b := t.Bytes()
	return append(b[:], byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// ProduceMax runs the SECOA_M initialization phase at this source.
func (s *Source) ProduceMax(t prf.Epoch, v uint32) (*MaxMessage, error) {
	if v > RollLimit {
		return nil, fmt.Errorf("%w: %d > %d", ErrRollLimit, v, RollLimit)
	}
	sd := seed(s.params.Key, s.seedKey, t, 0)
	sealed, err := s.params.Key.Roll(sd, int(v))
	if err != nil {
		return nil, err
	}
	return &MaxMessage{
		Value:  v,
		Winner: uint32(s.id),
		Cert:   Cert(prf.HM1(s.inflKey, maxCertMessage(t, v))),
		Seal:   sealed,
	}, nil
}

// MergeMax combines children's MAX messages at an aggregator.
func (a *Aggregator) MergeMax(children ...*MaxMessage) (*MaxMessage, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("%w: merging zero children", ErrShape)
	}
	win := 0
	for c := 1; c < len(children); c++ {
		if children[c].Value > children[win].Value ||
			(children[c].Value == children[win].Value && children[c].Winner < children[win].Winner) {
			win = c
		}
	}
	max := children[win].Value
	out := &MaxMessage{Value: max, Winner: children[win].Winner, Cert: children[win].Cert}
	acc := big.NewInt(1)
	for _, ch := range children {
		rolled, err := a.params.Key.Roll(ch.Seal, int(max)-int(ch.Value))
		if err != nil {
			return nil, err
		}
		acc = a.params.Key.Fold(acc, rolled)
	}
	out.Seal = acc
	return out, nil
}

// MaxResult is a verified MAX outcome.
type MaxResult struct {
	Epoch prf.Epoch
	Max   uint32
	// Holder is the source id that reported the maximum.
	Holder int
}

// VerifyMax checks a final SECOA_M message: winner certificate, then the
// aggregate SEAL against the fold of every source's seed rolled Max times.
func (q *Querier) VerifyMax(t prf.Epoch, m *MaxMessage) (MaxResult, error) {
	if m == nil || m.Seal == nil {
		return MaxResult{}, fmt.Errorf("%w: empty MAX message", ErrShape)
	}
	w := int(m.Winner)
	if w < 0 || w >= len(q.inflKeys) {
		return MaxResult{}, fmt.Errorf("%w: winner id %d out of range", ErrShape, w)
	}
	if m.Value > RollLimit {
		return MaxResult{}, fmt.Errorf("%w: value beyond roll limit", ErrShape)
	}
	want := Cert(prf.HM1(q.inflKeys[w], maxCertMessage(t, m.Value)))
	if want != m.Cert {
		return MaxResult{}, ErrInflation
	}
	reference := big.NewInt(1)
	for i := range q.seedKeys {
		reference = q.params.Key.Fold(reference, seed(q.params.Key, q.seedKeys[i], t, 0))
	}
	rolled, err := q.params.Key.Roll(reference, int(m.Value))
	if err != nil {
		return MaxResult{}, err
	}
	if rolled.Cmp(m.Seal) != 0 {
		return MaxResult{}, ErrDeflation
	}
	return MaxResult{Epoch: t, Max: m.Value, Holder: w}, nil
}

package secoa

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// Wire format of a Message (all integers big-endian):
//
//	u32 J | u8 folded | X[J] | winner[J] u32 | cert[J] 20B |
//	u32 sealCount | (position u8)* (folded only) | seal[sealCount] keySize B
//
// Encode carries per-instance certificates so that any aggregator can merge
// the message — len(Encode) is therefore larger than WireSize, which follows
// the paper's accounting of a single XOR-aggregated certificate per edge
// (§II-D). EXPERIMENTS.md discusses the gap.

// Encode serialises the message for a key of the given size.
func (m *Message) Encode(keySize int) ([]byte, error) {
	J := len(m.X)
	if len(m.Winner) != J || len(m.Certs) != J {
		return nil, fmt.Errorf("%w: inconsistent instance counts", ErrShape)
	}
	folded := m.Positions != nil
	if folded && len(m.Positions) != len(m.Seals) {
		return nil, fmt.Errorf("%w: %d positions for %d SEALs", ErrShape, len(m.Positions), len(m.Seals))
	}
	if !folded && len(m.Seals) != J {
		return nil, fmt.Errorf("%w: per-instance form needs %d SEALs, has %d", ErrShape, J, len(m.Seals))
	}

	size := 4 + 1 + J + 4*J + CertSize*J + 4 + len(m.Seals)*keySize
	if folded {
		size += len(m.Positions)
	}
	out := make([]byte, 0, size)

	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(J))
	out = append(out, u32[:]...)
	if folded {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, m.X...)
	for _, w := range m.Winner {
		binary.BigEndian.PutUint32(u32[:], w)
		out = append(out, u32[:]...)
	}
	for _, c := range m.Certs {
		out = append(out, c[:]...)
	}
	binary.BigEndian.PutUint32(u32[:], uint32(len(m.Seals)))
	out = append(out, u32[:]...)
	if folded {
		out = append(out, m.Positions...)
	}
	sealBuf := make([]byte, keySize)
	for i, s := range m.Seals {
		if s.Sign() < 0 || s.BitLen() > keySize*8 {
			return nil, fmt.Errorf("%w: SEAL %d out of range", ErrShape, i)
		}
		s.FillBytes(sealBuf)
		out = append(out, sealBuf...)
	}
	return out, nil
}

// Decode parses a message encoded for a key of the given size.
func Decode(buf []byte, keySize int) (*Message, error) {
	if len(buf) < 9 {
		return nil, fmt.Errorf("%w: truncated header", ErrShape)
	}
	J := int(binary.BigEndian.Uint32(buf[0:4]))
	if J < 1 || J > 1<<20 {
		return nil, fmt.Errorf("%w: implausible instance count %d", ErrShape, J)
	}
	folded := buf[4] == 1
	off := 5

	need := func(n int) error {
		if len(buf)-off < n {
			return fmt.Errorf("%w: truncated body", ErrShape)
		}
		return nil
	}

	m := &Message{}
	if err := need(J); err != nil {
		return nil, err
	}
	m.X = append([]uint8(nil), buf[off:off+J]...)
	off += J

	if err := need(4 * J); err != nil {
		return nil, err
	}
	m.Winner = make([]uint32, J)
	for i := range m.Winner {
		m.Winner[i] = binary.BigEndian.Uint32(buf[off:])
		off += 4
	}

	if err := need(CertSize * J); err != nil {
		return nil, err
	}
	m.Certs = make([]Cert, J)
	for i := range m.Certs {
		copy(m.Certs[i][:], buf[off:off+CertSize])
		off += CertSize
	}

	if err := need(4); err != nil {
		return nil, err
	}
	sealCount := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if sealCount < 0 || sealCount > J {
		return nil, fmt.Errorf("%w: implausible SEAL count %d", ErrShape, sealCount)
	}
	if folded {
		if err := need(sealCount); err != nil {
			return nil, err
		}
		m.Positions = append([]uint8(nil), buf[off:off+sealCount]...)
		off += sealCount
	} else if sealCount != J {
		return nil, fmt.Errorf("%w: per-instance form needs %d SEALs, has %d", ErrShape, J, sealCount)
	}

	if err := need(sealCount * keySize); err != nil {
		return nil, err
	}
	m.Seals = make([]*big.Int, sealCount)
	for i := range m.Seals {
		m.Seals[i] = new(big.Int).SetBytes(buf[off : off+keySize])
		off += keySize
	}
	if off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrShape, len(buf)-off)
	}
	return m, nil
}

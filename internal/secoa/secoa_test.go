package secoa

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"strings"
	"sync"
	"testing"

	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/rsax"
	"github.com/sies/sies/internal/sketch"
)

// Shared small RSA key: keygen dominates otherwise. 512 bits keeps tests
// fast; correctness is size-independent.
var (
	keyOnce sync.Once
	key     *rsax.PublicKey
	keyErr  error
)

func testParams(t testing.TB, J int) Params {
	t.Helper()
	keyOnce.Do(func() { key, keyErr = rsax.GenerateKey(512, rsax.DefaultExponent) })
	if keyErr != nil {
		t.Fatal(keyErr)
	}
	return Params{Sketch: sketch.Params{J: J, MaxLevel: 24}, Key: key}
}

func deploy(t testing.TB, n, J int) *Deployment {
	t.Helper()
	d, err := NewDeployment(n, testParams(t, J), 42)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runEpoch pushes values through source → single aggregator → sink fold and
// returns the sink message.
func runEpoch(t testing.TB, d *Deployment, epoch prf.Epoch, values []uint64) *Message {
	t.Helper()
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]*Message, len(values))
	for i, v := range values {
		m, err := d.Sources[i].ProduceFast(epoch, v)
		if err != nil {
			t.Fatal(err)
		}
		msgs[i] = m
	}
	merged, err := agg.Merge(msgs...)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := agg.SinkFold(merged)
	if err != nil {
		t.Fatal(err)
	}
	return folded
}

func TestEndToEndVerifies(t *testing.T) {
	d := deploy(t, 4, 32)
	folded := runEpoch(t, d, 1, []uint64{100, 200, 300, 400})
	res, err := d.Querier.Verify(1, folded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate <= 0 {
		t.Fatalf("estimate = %f", res.Estimate)
	}
	if res.Seals < 1 || res.Seals > 32 {
		t.Fatalf("seals = %d", res.Seals)
	}
	if res.XMax < 1 {
		t.Fatalf("xmax = %d", res.XMax)
	}
}

func TestEstimateInRightBallpark(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	d := deploy(t, 8, 300)
	values := []uint64{500, 500, 500, 500, 500, 500, 500, 500} // SUM = 4000
	folded := runEpoch(t, d, 2, values)
	res, err := d.Querier.Verify(2, folded)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(res.Estimate-4000) / 4000
	if rel > 0.35 {
		t.Fatalf("estimate %.0f, relative error %.2f", res.Estimate, rel)
	}
}

func TestMultiLevelTree(t *testing.T) {
	d := deploy(t, 4, 16)
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []*Message
	for i, v := range []uint64{10, 20, 30, 40} {
		m, err := d.Sources[i].ProduceFast(3, v)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m)
	}
	left, err := agg.Merge(msgs[0], msgs[1])
	if err != nil {
		t.Fatal(err)
	}
	right, err := agg.Merge(msgs[2], msgs[3])
	if err != nil {
		t.Fatal(err)
	}
	root, err := agg.Merge(left, right)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := agg.Merge(msgs...)
	if err != nil {
		t.Fatal(err)
	}
	// Tree shape must not change the outcome.
	for j := range root.X {
		if root.X[j] != flat.X[j] || root.Winner[j] != flat.Winner[j] {
			t.Fatal("tree merge differs from flat merge")
		}
		if root.Seals[j].Cmp(flat.Seals[j]) != 0 {
			t.Fatal("tree SEALs differ from flat SEALs")
		}
	}
	folded, err := agg.SinkFold(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Querier.Verify(3, folded); err != nil {
		t.Fatal(err)
	}
}

func TestInflationAttackDetected(t *testing.T) {
	// A compromised aggregator inflates an instance value without the
	// winner's key: certificate check must fail.
	d := deploy(t, 3, 8)
	folded := runEpoch(t, d, 4, []uint64{50, 60, 70})
	bad := folded.Clone()
	bad.X[0]++ // inflate
	if _, err := d.Querier.Verify(4, bad); !errors.Is(err, ErrInflation) && !errors.Is(err, ErrShape) {
		t.Fatalf("inflation accepted: %v", err)
	}
}

func TestDeflationAttackDetected(t *testing.T) {
	// Deflating a value requires rolling a SEAL backwards, which is
	// infeasible; an adversary who also forges no certificate is caught by
	// the certificate check, and one who controls a colluding source key
	// still fails the SEAL comparison. Simulate by rewriting the value and
	// recomputing a fake certificate with the true winner's key unavailable:
	// here we only flip the value downward and keep everything else.
	d := deploy(t, 3, 8)
	folded := runEpoch(t, d, 5, []uint64{500, 600, 700})
	bad := folded.Clone()
	// Find an instance with positive value to deflate.
	idx := -1
	for j, x := range bad.X {
		if x > 1 {
			idx = j
			break
		}
	}
	if idx == -1 {
		t.Skip("no deflatable instance")
	}
	bad.X[idx]--
	if _, err := d.Querier.Verify(5, bad); err == nil {
		t.Fatal("deflation accepted")
	}
}

func TestSealTamperDetected(t *testing.T) {
	d := deploy(t, 2, 8)
	folded := runEpoch(t, d, 6, []uint64{100, 200})
	bad := folded.Clone()
	bad.Seals[0].Add(bad.Seals[0], intOne())
	bad.Seals[0].Mod(bad.Seals[0], d.Params.Key.N)
	if _, err := d.Querier.Verify(6, bad); !errors.Is(err, ErrDeflation) {
		t.Fatalf("tampered SEAL accepted: %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	// Seeds and certificates bind the epoch; replaying epoch 7's message at
	// epoch 8 must fail.
	d := deploy(t, 2, 8)
	folded := runEpoch(t, d, 7, []uint64{100, 200})
	if _, err := d.Querier.Verify(8, folded); err == nil {
		t.Fatal("replay accepted")
	}
}

func TestCertForgeryWithoutKeyDetected(t *testing.T) {
	d := deploy(t, 2, 4)
	folded := runEpoch(t, d, 9, []uint64{10, 20})
	bad := folded.Clone()
	bad.Certs[0][0] ^= 0xff
	if _, err := d.Querier.Verify(9, bad); !errors.Is(err, ErrInflation) {
		t.Fatalf("forged certificate accepted: %v", err)
	}
}

func TestNoConfidentiality(t *testing.T) {
	// The defining weakness: sketch values travel in plaintext and reveal
	// the magnitude of the source value (an eavesdropper learns ~log2 v).
	d := deploy(t, 1, 300)
	m, err := d.Sources[0].ProduceFast(1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	sk := sketch.Sketch{X: m.X}
	if est := sk.Estimate(); est < 10000 {
		t.Fatalf("eavesdropper estimate %.0f — expected to leak the value magnitude", est)
	}
}

func TestMergeValidation(t *testing.T) {
	d := deploy(t, 2, 4)
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Merge(); !errors.Is(err, ErrShape) {
		t.Fatal("zero children accepted")
	}
	m, err := d.Sources[0].ProduceFast(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	short := m.Clone()
	short.X = short.X[:2]
	if _, err := agg.Merge(short); !errors.Is(err, ErrShape) {
		t.Fatal("short message accepted")
	}
	folded, err := agg.SinkFold(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Merge(folded); !errors.Is(err, ErrShape) {
		t.Fatal("sink-folded message accepted by Merge")
	}
	if _, err := agg.SinkFold(folded); !errors.Is(err, ErrShape) {
		t.Fatal("double sink fold accepted")
	}
}

func TestVerifyShapeChecks(t *testing.T) {
	d := deploy(t, 2, 4)
	agg, _ := NewAggregator(d.Params)
	m, err := d.Sources[0].ProduceFast(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Unfolded message rejected.
	if _, err := d.Querier.Verify(1, m); !errors.Is(err, ErrShape) {
		t.Fatal("per-instance message accepted by Verify")
	}
	folded, err := agg.SinkFold(m)
	if err != nil {
		t.Fatal(err)
	}
	bad := folded.Clone()
	bad.Winner[0] = 99
	if _, err := d.Querier.Verify(1, bad); !errors.Is(err, ErrShape) {
		t.Fatal("out-of-range winner accepted")
	}
	bad2 := folded.Clone()
	bad2.Seals = bad2.Seals[:0]
	bad2.Positions = bad2.Positions[:0]
	if _, err := d.Querier.Verify(1, bad2); !errors.Is(err, ErrShape) {
		t.Fatal("missing SEALs accepted")
	}
}

func TestSinkFoldShrinksSeals(t *testing.T) {
	d := deploy(t, 4, 64)
	folded := runEpoch(t, d, 10, []uint64{1000, 2000, 3000, 4000})
	if len(folded.Seals) >= 64 {
		t.Fatalf("sink folding did not shrink: %d SEALs", len(folded.Seals))
	}
	if len(folded.Seals) != len(folded.Positions) {
		t.Fatal("SEAL/position length mismatch")
	}
	// Positions strictly ascending.
	for i := 1; i < len(folded.Positions); i++ {
		if folded.Positions[i] <= folded.Positions[i-1] {
			t.Fatal("positions not strictly ascending")
		}
	}
}

func TestWireSizeAccounting(t *testing.T) {
	d := deploy(t, 2, 300)
	m, err := d.Sources[0].ProduceFast(1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	keySize := d.Params.Key.Size()
	want := 300 + 300*keySize + CertSize
	if got := m.WireSize(keySize); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
}

func TestDeploymentValidation(t *testing.T) {
	p := testParams(t, 4)
	if _, err := NewDeployment(0, p, 1); err == nil {
		t.Fatal("zero sources accepted")
	}
	if _, err := NewDeployment(2, Params{}, 1); err == nil {
		t.Fatal("empty params accepted")
	}
	if _, err := NewQuerier(p, nil, nil); err == nil {
		t.Fatal("querier without keys accepted")
	}
	if _, err := NewSource(0, nil, nil, p, nil); err == nil {
		t.Fatal("source without rng accepted")
	}
}

func intOne() *big.Int { return big.NewInt(1) }

func TestSynthesizeUniformSinkMessage(t *testing.T) {
	d := deploy(t, 4, 8)
	m, err := d.Querier.SynthesizeUniformSinkMessage(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Querier.Verify(3, m)
	if err != nil {
		t.Fatalf("synthesized message failed verification: %v", err)
	}
	if res.XMax != 5 || res.Seals != 1 {
		t.Fatalf("result %+v", res)
	}
	if _, err := d.Querier.SynthesizeUniformSinkMessage(3, 200); err == nil {
		t.Fatal("position beyond MaxLevel accepted")
	}
}

func TestVerifyStrictMatchesVerify(t *testing.T) {
	d := deploy(t, 4, 16)
	folded := runEpoch(t, d, 11, []uint64{100, 200, 300, 400})
	loose, err := d.Querier.Verify(11, folded)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := d.Querier.VerifyStrict(11, folded)
	if err != nil {
		t.Fatalf("strict rejected an honest message: %v", err)
	}
	if strict.Estimate != loose.Estimate || strict.XMax != loose.XMax || strict.Seals != loose.Seals {
		t.Fatalf("strict %+v != loose %+v", strict, loose)
	}
}

func TestVerifyStrictLocalizesTamper(t *testing.T) {
	d := deploy(t, 3, 16)
	folded := runEpoch(t, d, 12, []uint64{500, 600, 700})
	if len(folded.Seals) < 2 {
		t.Skip("need ≥2 positions to localise")
	}
	bad := folded.Clone()
	bad.Seals[1].Add(bad.Seals[1], big.NewInt(1))
	bad.Seals[1].Mod(bad.Seals[1], d.Params.Key.N)
	_, err := d.Querier.VerifyStrict(12, bad)
	if !errors.Is(err, ErrDeflation) {
		t.Fatalf("strict missed the tamper: %v", err)
	}
	// The error names the corrupted position.
	want := fmt.Sprintf("position %d", bad.Positions[1])
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not localise %q", err, want)
	}
}

package secoa

import (
	"errors"
	"testing"
)

func TestCodecRoundTripPerInstance(t *testing.T) {
	d := deploy(t, 2, 8)
	m, err := d.Sources[0].ProduceFast(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	keySize := d.Params.Key.Size()
	buf, err := m.Encode(keySize)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(buf, keySize)
	if err != nil {
		t.Fatal(err)
	}
	assertMessagesEqual(t, m, back)
}

func TestCodecRoundTripFolded(t *testing.T) {
	d := deploy(t, 3, 16)
	folded := runEpoch(t, d, 2, []uint64{100, 200, 300})
	keySize := d.Params.Key.Size()
	buf, err := folded.Encode(keySize)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(buf, keySize)
	if err != nil {
		t.Fatal(err)
	}
	assertMessagesEqual(t, folded, back)
	// The decoded message must still verify.
	if _, err := d.Querier.Verify(2, back); err != nil {
		t.Fatalf("decoded message failed verification: %v", err)
	}
}

func assertMessagesEqual(t *testing.T, a, b *Message) {
	t.Helper()
	if len(a.X) != len(b.X) {
		t.Fatalf("J mismatch: %d vs %d", len(a.X), len(b.X))
	}
	for j := range a.X {
		if a.X[j] != b.X[j] || a.Winner[j] != b.Winner[j] || a.Certs[j] != b.Certs[j] {
			t.Fatalf("instance %d differs", j)
		}
	}
	if len(a.Seals) != len(b.Seals) {
		t.Fatalf("SEAL count: %d vs %d", len(a.Seals), len(b.Seals))
	}
	for i := range a.Seals {
		if a.Seals[i].Cmp(b.Seals[i]) != 0 {
			t.Fatalf("SEAL %d differs", i)
		}
	}
	if (a.Positions == nil) != (b.Positions == nil) {
		t.Fatal("folded flag differs")
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

func TestCodecTruncationRejected(t *testing.T) {
	d := deploy(t, 1, 4)
	m, err := d.Sources[0].ProduceFast(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	keySize := d.Params.Key.Size()
	buf, err := m.Encode(keySize)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must be rejected, never panic.
	for _, cut := range []int{0, 4, 8, 9, len(buf) / 2, len(buf) - 1} {
		if _, err := Decode(buf[:cut], keySize); !errors.Is(err, ErrShape) {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}
	// Trailing garbage rejected.
	if _, err := Decode(append(append([]byte(nil), buf...), 0), keySize); !errors.Is(err, ErrShape) {
		t.Fatal("trailing byte accepted")
	}
}

func TestCodecImplausibleHeader(t *testing.T) {
	if _, err := Decode([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0}, 64); !errors.Is(err, ErrShape) {
		t.Fatal("huge J accepted")
	}
	if _, err := Decode([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0}, 64); !errors.Is(err, ErrShape) {
		t.Fatal("J=0 accepted")
	}
}

func TestEncodeValidatesShape(t *testing.T) {
	d := deploy(t, 1, 4)
	m, err := d.Sources[0].ProduceFast(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	bad := m.Clone()
	bad.Seals = bad.Seals[:1]
	if _, err := bad.Encode(d.Params.Key.Size()); !errors.Is(err, ErrShape) {
		t.Fatal("inconsistent message encoded")
	}
}

func TestEncodedSizeVsPaperAccounting(t *testing.T) {
	// The implementation's real frame is larger than the paper's S-A figure
	// because it carries J per-instance certificates (the paper assumes the
	// aggregate-MAC optimisation end to end). Pin the relationship.
	d := deploy(t, 1, 300)
	m, err := d.Sources[0].ProduceFast(1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	keySize := d.Params.Key.Size()
	buf, err := m.Encode(keySize)
	if err != nil {
		t.Fatal(err)
	}
	paper := m.WireSize(keySize)
	extra := len(buf) - paper
	// Extra = header (J field + flag + seal count = 9) + winners (4J) +
	// per-instance certs beyond the one aggregate (20(J−1)).
	want := 9 + 4*300 + CertSize*(300-1)
	if extra != want {
		t.Fatalf("encoded−paper = %d, want %d", extra, want)
	}
}

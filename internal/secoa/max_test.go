package secoa

import (
	"errors"
	"math/big"
	"testing"
)

func TestMaxEndToEnd(t *testing.T) {
	d := deploy(t, 4, 2)
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	values := []uint32{17, 42, 5, 30}
	msgs := make([]*MaxMessage, len(values))
	for i, v := range values {
		m, err := d.Sources[i].ProduceMax(1, v)
		if err != nil {
			t.Fatal(err)
		}
		msgs[i] = m
	}
	merged, err := agg.MergeMax(msgs...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Querier.VerifyMax(1, merged)
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 42 || res.Holder != 1 {
		t.Fatalf("result %+v", res)
	}
}

func TestMaxTreeShapeIrrelevant(t *testing.T) {
	d := deploy(t, 4, 2)
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	values := []uint32{9, 3, 12, 7}
	msgs := make([]*MaxMessage, 4)
	for i, v := range values {
		m, err := d.Sources[i].ProduceMax(2, v)
		if err != nil {
			t.Fatal(err)
		}
		msgs[i] = m
	}
	left, err := agg.MergeMax(msgs[0], msgs[1])
	if err != nil {
		t.Fatal(err)
	}
	right, err := agg.MergeMax(msgs[2], msgs[3])
	if err != nil {
		t.Fatal(err)
	}
	tree, err := agg.MergeMax(left, right)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := agg.MergeMax(msgs...)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Value != flat.Value || tree.Winner != flat.Winner || tree.Seal.Cmp(flat.Seal) != 0 {
		t.Fatal("tree merge differs from flat merge")
	}
	if _, err := d.Querier.VerifyMax(2, tree); err != nil {
		t.Fatal(err)
	}
}

func TestMaxInflationDetected(t *testing.T) {
	d := deploy(t, 3, 2)
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []*MaxMessage
	for i, v := range []uint32{10, 20, 30} {
		m, err := d.Sources[i].ProduceMax(3, v)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m)
	}
	merged, err := agg.MergeMax(msgs...)
	if err != nil {
		t.Fatal(err)
	}
	bad := merged.Clone()
	bad.Value++ // inflate the max without the winner's key
	if _, err := d.Querier.VerifyMax(3, bad); !errors.Is(err, ErrInflation) {
		t.Fatalf("inflated MAX accepted: %v", err)
	}
}

func TestMaxDeflationDetected(t *testing.T) {
	d := deploy(t, 2, 2)
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Sources[0].ProduceMax(4, 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Sources[1].ProduceMax(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := agg.MergeMax(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Adversary claims a smaller max with a forged consistent certificate…
	// it has no key, so it reuses the loser's legitimate message (a classic
	// substitution): value 10 with source 1's genuine certificate, but the
	// SEAL cannot be un-rolled, so the aggregate cannot match.
	bad := b.Clone()
	if _, err := d.Querier.VerifyMax(4, bad); !errors.Is(err, ErrDeflation) {
		t.Fatalf("deflated MAX accepted: %v", err)
	}
	// Honest message still verifies.
	if _, err := d.Querier.VerifyMax(4, merged); err != nil {
		t.Fatal(err)
	}
}

func TestMaxReplayDetected(t *testing.T) {
	d := deploy(t, 2, 2)
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Sources[0].ProduceMax(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Sources[1].ProduceMax(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := agg.MergeMax(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Querier.VerifyMax(6, merged); err == nil {
		t.Fatal("replayed MAX accepted")
	}
}

func TestMaxSealTamperDetected(t *testing.T) {
	d := deploy(t, 2, 2)
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Sources[0].ProduceMax(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Sources[1].ProduceMax(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := agg.MergeMax(a, b)
	if err != nil {
		t.Fatal(err)
	}
	bad := merged.Clone()
	bad.Seal.Add(bad.Seal, big.NewInt(1))
	bad.Seal.Mod(bad.Seal, d.Params.Key.N)
	if _, err := d.Querier.VerifyMax(7, bad); !errors.Is(err, ErrDeflation) {
		t.Fatalf("tampered SEAL accepted: %v", err)
	}
}

func TestMaxValidation(t *testing.T) {
	d := deploy(t, 1, 2)
	if _, err := d.Sources[0].ProduceMax(1, RollLimit+1); err == nil {
		t.Fatal("over-limit value accepted")
	}
	agg, err := NewAggregator(d.Params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.MergeMax(); !errors.Is(err, ErrShape) {
		t.Fatal("zero children accepted")
	}
	if _, err := d.Querier.VerifyMax(1, nil); !errors.Is(err, ErrShape) {
		t.Fatal("nil message accepted")
	}
	m, err := d.Sources[0].ProduceMax(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := m.Clone()
	bad.Winner = 99
	if _, err := d.Querier.VerifyMax(1, bad); !errors.Is(err, ErrShape) {
		t.Fatal("out-of-range winner accepted")
	}
}

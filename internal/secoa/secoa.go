// Package secoa implements the SECOA_S benchmark scheme (Nath, Yu, Chan —
// "Secure outsourced aggregation via one-way chains", SIGMOD 2009), as
// described in §II-D of the SIES paper: approximate SUM with integrity but
// no confidentiality.
//
// SECOA_S runs the SECOA MAX protocol independently on each of J
// Flajolet–Martin sketch instances:
//
//   - Each source converts its value v into J sketch instance values x_j
//     (package sketch), and for each instance emits x_j together with an
//     inflation certificate HM1(K_i, t‖j‖x_j) and a deflation certificate —
//     a SEAL, the per-epoch secret seed sd_{i,j,t} RSA-encrypted x_j times.
//   - Aggregators take the per-instance MAX, roll every child's SEAL up to
//     the maximum (SEALs are one-way: rolling forward is public, rolling
//     back needs the RSA trapdoor) and fold them together (modular product,
//     which commutes with rolling).
//   - The sink folds SEALs that sit at the same chain position, shrinking
//     the final message.
//   - The querier checks the winner certificates, reconstructs the expected
//     aggregate SEAL from the seeds it shares with every source, and — on
//     success — estimates SUM ≈ 2^x̄.
//
// Inflating an instance value fails the inflation certificate; deflating it
// fails the SEAL comparison. Values travel in plaintext, so the scheme
// offers no confidentiality — the property SIES adds.
package secoa

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/rsax"
	"github.com/sies/sies/internal/sketch"
)

// CertSize is the size of one inflation certificate (HM1 output).
const CertSize = prf.Size1

// Errors reported by verification.
var (
	ErrInflation = errors.New("secoa: inflation certificate mismatch")
	ErrDeflation = errors.New("secoa: SEAL verification failed (deflation or corruption)")
	ErrShape     = errors.New("secoa: malformed message")
)

// Params fixes a SECOA_S deployment's dimensions and RSA key.
type Params struct {
	Sketch sketch.Params
	Key    *rsax.PublicKey
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Sketch.Validate(); err != nil {
		return err
	}
	if p.Key == nil {
		return errors.New("secoa: missing RSA key")
	}
	return nil
}

// Cert is one inflation certificate.
type Cert [CertSize]byte

// xorCert XORs b into a (Katz–Lindell aggregate MAC).
func xorCert(a, b Cert) Cert {
	for i := range a {
		a[i] ^= b[i]
	}
	return a
}

// Message is the SECOA_S partial state record exchanged along the tree.
//
// In per-instance form (Positions == nil) it carries one SEAL per sketch
// instance. After sink folding (Positions != nil) Seals[k] is the fold of
// every instance SEAL whose value equals Positions[k].
//
// Winner and Certs carry the per-instance MAX holder and its certificate.
// On the wire the paper charges a single 20-byte aggregate MAC (the XOR of
// the winner certificates, §II-D); WireSize follows that accounting while
// the struct keeps per-instance certificates so that intermediate
// aggregators can select winners.
type Message struct {
	X         []uint8    // per-instance sketch values
	Winner    []uint32   // per-instance MAX-holding source id
	Certs     []Cert     // per-instance winner certificate
	Seals     []*big.Int // per-instance (or folded-by-position) SEALs
	Positions []uint8    // nil, or the chain position of each folded SEAL
}

// AggregateCert XORs all winner certificates into the single 20-byte MAC
// that travels on the wire.
func (m *Message) AggregateCert() Cert {
	var agg Cert
	for _, c := range m.Certs {
		agg = xorCert(agg, c)
	}
	return agg
}

// WireSize returns the number of bytes the message occupies on a network
// edge under the paper's accounting: one byte per sketch value, one SEAL of
// modulus size each, plus one aggregate certificate (Equations 10–11).
func (m *Message) WireSize(keySize int) int {
	return len(m.X) + len(m.Seals)*keySize + CertSize
}

// Clone deep-copies the message; attack simulations mutate clones.
func (m *Message) Clone() *Message {
	out := &Message{
		X:      append([]uint8(nil), m.X...),
		Winner: append([]uint32(nil), m.Winner...),
		Certs:  append([]Cert(nil), m.Certs...),
	}
	for _, s := range m.Seals {
		out.Seals = append(out.Seals, new(big.Int).Set(s))
	}
	if m.Positions != nil {
		out.Positions = append([]uint8(nil), m.Positions...)
	}
	return out
}

// certMessage is the canonical byte string authenticated by an inflation
// certificate: epoch ‖ instance ‖ value.
func certMessage(t prf.Epoch, j int, x uint8) []byte {
	var buf [13]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(t))
	binary.BigEndian.PutUint32(buf[8:12], uint32(j))
	buf[12] = x
	return buf[:]
}

// seedMessage derives the per-epoch, per-instance seed input.
func seedMessage(t prf.Epoch, j int) []byte {
	var buf [12]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(t))
	binary.BigEndian.PutUint32(buf[8:12], uint32(j))
	return buf[:]
}

// Source is a SECOA_S leaf sensor holding its inflation key K_i and seed key.
type Source struct {
	id      int
	inflKey []byte
	seedKey []byte
	params  Params
	rng     *rand.Rand
}

// NewSource constructs source id with its two long-term secrets. The rng
// drives sketch generation and may be deterministic for reproducibility.
func NewSource(id int, inflKey, seedKey []byte, params Params, rng *rand.Rand) (*Source, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("secoa: source needs an RNG")
	}
	return &Source{id: id, inflKey: inflKey, seedKey: seedKey, params: params, rng: rng}, nil
}

// ID returns the source identifier.
func (s *Source) ID() int { return s.id }

// seed returns sd_{i,j,t} as an element of [1, n).
func seed(pk *rsax.PublicKey, seedKey []byte, t prf.Epoch, j int) *big.Int {
	h := prf.HM1(seedKey, seedMessage(t, j))
	return pk.SeedFromBytes(h[:])
}

// Produce runs the SECOA_S initialization phase for value v at epoch t:
// sketch generation, one SEAL per instance (rolled x_j times), and one
// inflation certificate per instance.
func (s *Source) Produce(t prf.Epoch, v uint64) (*Message, error) {
	sk, err := sketch.Generate(s.params.Sketch, v, s.rng)
	if err != nil {
		return nil, err
	}
	return s.produceFromSketch(t, sk)
}

// ProduceFast is Produce with the closed-form sketch sampler, for
// large-scale simulations where the Θ(J·v) honest loop is irrelevant.
func (s *Source) ProduceFast(t prf.Epoch, v uint64) (*Message, error) {
	sk, err := sketch.GenerateFast(s.params.Sketch, v, s.rng)
	if err != nil {
		return nil, err
	}
	return s.produceFromSketch(t, sk)
}

func (s *Source) produceFromSketch(t prf.Epoch, sk sketch.Sketch) (*Message, error) {
	J := s.params.Sketch.J
	msg := &Message{
		X:      sk.X,
		Winner: make([]uint32, J),
		Certs:  make([]Cert, J),
		Seals:  make([]*big.Int, J),
	}
	for j := 0; j < J; j++ {
		msg.Winner[j] = uint32(s.id)
		msg.Certs[j] = Cert(prf.HM1(s.inflKey, certMessage(t, j, sk.X[j])))
		sd := seed(s.params.Key, s.seedKey, t, j)
		sealed, err := s.params.Key.Roll(sd, int(sk.X[j]))
		if err != nil {
			return nil, fmt.Errorf("secoa: source %d instance %d: %w", s.id, j, err)
		}
		msg.Seals[j] = sealed
	}
	return msg, nil
}

// Aggregator merges children messages. It holds only the public RSA key.
type Aggregator struct {
	params Params
}

// NewAggregator returns an aggregator for the deployment.
func NewAggregator(params Params) (*Aggregator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Aggregator{params: params}, nil
}

// Merge combines per-instance messages: element-wise MAX of sketch values
// (winner certificate travels along), and roll-to-max + fold of the SEALs.
func (a *Aggregator) Merge(children ...*Message) (*Message, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("%w: merging zero children", ErrShape)
	}
	J := a.params.Sketch.J
	for _, ch := range children {
		if ch.Positions != nil {
			return nil, fmt.Errorf("%w: cannot merge sink-folded messages", ErrShape)
		}
		if len(ch.X) != J || len(ch.Seals) != J || len(ch.Certs) != J || len(ch.Winner) != J {
			return nil, fmt.Errorf("%w: child has wrong instance count", ErrShape)
		}
	}
	out := &Message{
		X:      make([]uint8, J),
		Winner: make([]uint32, J),
		Certs:  make([]Cert, J),
		Seals:  make([]*big.Int, J),
	}
	for j := 0; j < J; j++ {
		// Winner selection: maximum value, ties broken by lowest source id
		// so that merging is deterministic and associative.
		win := 0
		for c := 1; c < len(children); c++ {
			cx, wx := children[c].X[j], children[win].X[j]
			if cx > wx || (cx == wx && children[c].Winner[j] < children[win].Winner[j]) {
				win = c
			}
		}
		max := children[win].X[j]
		out.X[j] = max
		out.Winner[j] = children[win].Winner[j]
		out.Certs[j] = children[win].Certs[j]
		// Roll every child's SEAL to the max position, then fold.
		acc := big.NewInt(1)
		for _, ch := range children {
			rolled, err := a.params.Key.Roll(ch.Seals[j], int(max)-int(ch.X[j]))
			if err != nil {
				return nil, err
			}
			acc = a.params.Key.Fold(acc, rolled)
		}
		out.Seals[j] = acc
	}
	return out, nil
}

// SinkFold converts a per-instance message into the compact form sent to
// the querier: SEALs at the same chain position are folded together
// (paper §II-D), shrinking J SEALs to one per distinct position.
func (a *Aggregator) SinkFold(m *Message) (*Message, error) {
	if m.Positions != nil {
		return nil, fmt.Errorf("%w: message already sink-folded", ErrShape)
	}
	J := a.params.Sketch.J
	if len(m.X) != J || len(m.Seals) != J {
		return nil, fmt.Errorf("%w: wrong instance count", ErrShape)
	}
	folded := map[uint8]*big.Int{}
	var order []uint8
	for j := 0; j < J; j++ {
		pos := m.X[j]
		if cur, ok := folded[pos]; ok {
			folded[pos] = a.params.Key.Fold(cur, m.Seals[j])
		} else {
			folded[pos] = new(big.Int).Set(m.Seals[j])
			order = append(order, pos)
		}
	}
	out := &Message{
		X:      append([]uint8(nil), m.X...),
		Winner: append([]uint32(nil), m.Winner...),
		Certs:  append([]Cert(nil), m.Certs...),
	}
	// Deterministic position order (ascending).
	for i := 0; i < len(order); i++ {
		for k := i + 1; k < len(order); k++ {
			if order[k] < order[i] {
				order[i], order[k] = order[k], order[i]
			}
		}
	}
	for _, pos := range order {
		out.Positions = append(out.Positions, pos)
		out.Seals = append(out.Seals, folded[pos])
	}
	return out, nil
}

// Result is a verified SECOA_S outcome.
type Result struct {
	Epoch    prf.Epoch
	Estimate float64 // bias-corrected 2^x̄ SUM estimate
	Raw      float64 // the paper's plain 2^x̄
	Seals    int     // number of SEALs received from the sink
	XMax     int     // maximum chain position, drives verification cost
}

// Querier verifies sink messages using the full key material.
type Querier struct {
	params   Params
	inflKeys [][]byte
	seedKeys [][]byte
}

// NewQuerier returns a querier holding every source's keys.
func NewQuerier(params Params, inflKeys, seedKeys [][]byte) (*Querier, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(inflKeys) == 0 || len(inflKeys) != len(seedKeys) {
		return nil, errors.New("secoa: querier needs matching inflation and seed key lists")
	}
	return &Querier{params: params, inflKeys: inflKeys, seedKeys: seedKeys}, nil
}

// Verify checks a sink-folded message for epoch t and returns the SUM
// estimate. Verification follows the paper's cost model (Equation 8):
// recompute the J·N seeds, fold them, roll to x_max, and compare against the
// collected SEALs rolled up to x_max; plus recompute the J winner
// certificates and compare their XOR aggregate.
func (q *Querier) Verify(t prf.Epoch, m *Message) (Result, error) {
	xmax, err := q.verifyShapeAndCerts(t, m)
	if err != nil {
		return Result{}, err
	}

	// SEALs: the collected aggregate, all rolled to x_max and folded, must
	// equal the fold of every seed rolled x_max times.
	collected := big.NewInt(1)
	for k, s := range m.Seals {
		rolled, err := q.params.Key.Roll(s, xmax-int(m.Positions[k]))
		if err != nil {
			return Result{}, err
		}
		collected = q.params.Key.Fold(collected, rolled)
	}

	reference := big.NewInt(1)
	for i := range q.seedKeys {
		for j := 0; j < q.params.Sketch.J; j++ {
			reference = q.params.Key.Fold(reference, seed(q.params.Key, q.seedKeys[i], t, j))
		}
	}
	rolledRef, err := q.params.Key.Roll(reference, xmax)
	if err != nil {
		return Result{}, err
	}
	if collected.Cmp(rolledRef) != 0 {
		return Result{}, ErrDeflation
	}
	return q.result(t, m, xmax), nil
}

// verifyShapeAndCerts performs the structural checks and the inflation-
// certificate comparison shared by Verify and VerifyStrict, returning x_max.
func (q *Querier) verifyShapeAndCerts(t prf.Epoch, m *Message) (int, error) {
	J := q.params.Sketch.J
	if m.Positions == nil || len(m.X) != J || len(m.Certs) != J || len(m.Winner) != J {
		return 0, fmt.Errorf("%w: querier expects a sink-folded message", ErrShape)
	}
	if len(m.Seals) != len(m.Positions) {
		return 0, fmt.Errorf("%w: %d SEALs for %d positions", ErrShape, len(m.Seals), len(m.Positions))
	}

	// Inflation certificates: recompute each winner's MAC and compare the
	// XOR aggregates (the wire carries only the aggregate).
	var expected Cert
	for j := 0; j < J; j++ {
		w := int(m.Winner[j])
		if w < 0 || w >= len(q.inflKeys) {
			return 0, fmt.Errorf("%w: winner id %d out of range", ErrShape, w)
		}
		expected = xorCert(expected, Cert(prf.HM1(q.inflKeys[w], certMessage(t, j, m.X[j]))))
	}
	got := m.AggregateCert()
	if !bytes.Equal(expected[:], got[:]) {
		return 0, ErrInflation
	}

	xmax := 0
	present := map[uint8]bool{}
	for _, pos := range m.Positions {
		present[pos] = true
		if int(pos) > xmax {
			xmax = int(pos)
		}
	}
	// Each instance's position must be present among the folded positions.
	for j := 0; j < J; j++ {
		if !present[m.X[j]] {
			return 0, fmt.Errorf("%w: instance %d at position %d has no SEAL", ErrShape, j, m.X[j])
		}
	}
	return xmax, nil
}

func (q *Querier) result(t prf.Epoch, m *Message, xmax int) Result {
	sk := sketch.Sketch{X: m.X}
	return Result{
		Epoch:    t,
		Estimate: sk.Estimate(),
		Raw:      sk.EstimateRaw(),
		Seals:    len(m.Seals),
		XMax:     xmax,
	}
}

// VerifyStrict is Verify with a per-position SEAL check instead of the
// paper's single aggregate comparison: each folded SEAL is recomputed from
// exactly the instances at its chain position. It costs one extra rolling
// pass but localises a corruption to the offending position, which the
// aggregate check cannot. Returns the same Result as Verify on success.
func (q *Querier) VerifyStrict(t prf.Epoch, m *Message) (Result, error) {
	xmax, err := q.verifyShapeAndCerts(t, m)
	if err != nil {
		return Result{}, err
	}
	J := q.params.Sketch.J
	// Group instances by position and rebuild each folded SEAL.
	for k, pos := range m.Positions {
		expected := big.NewInt(1)
		for j := 0; j < J; j++ {
			if m.X[j] != pos {
				continue
			}
			for i := range q.seedKeys {
				expected = q.params.Key.Fold(expected, seed(q.params.Key, q.seedKeys[i], t, j))
			}
		}
		rolled, err := q.params.Key.Roll(expected, int(pos))
		if err != nil {
			return Result{}, err
		}
		if rolled.Cmp(m.Seals[k]) != 0 {
			return Result{}, fmt.Errorf("%w: SEAL at position %d", ErrDeflation, pos)
		}
	}
	return q.result(t, m, xmax), nil
}

// SynthesizeUniformSinkMessage builds a *valid* sink-folded message in which
// every sketch instance sits at position x and source 0 won every instance —
// the message an all-equal-sketch network would deliver. Its cost is one
// reference-SEAL computation (fold all J·N seeds, roll x times), which lets
// benchmarks exercise querier verification at large N without simulating
// every source's Θ(J·v) work.
func (q *Querier) SynthesizeUniformSinkMessage(t prf.Epoch, x uint8) (*Message, error) {
	if int(x) > q.params.Sketch.MaxLevel {
		return nil, fmt.Errorf("%w: position %d beyond MaxLevel", ErrShape, x)
	}
	J := q.params.Sketch.J
	m := &Message{
		X:         make([]uint8, J),
		Winner:    make([]uint32, J),
		Certs:     make([]Cert, J),
		Positions: []uint8{x},
	}
	folded := big.NewInt(1)
	for i := range q.seedKeys {
		for j := 0; j < J; j++ {
			folded = q.params.Key.Fold(folded, seed(q.params.Key, q.seedKeys[i], t, j))
		}
	}
	rolled, err := q.params.Key.Roll(folded, int(x))
	if err != nil {
		return nil, err
	}
	m.Seals = []*big.Int{rolled}
	for j := 0; j < J; j++ {
		m.X[j] = x
		m.Winner[j] = 0
		m.Certs[j] = Cert(prf.HM1(q.inflKeys[0], certMessage(t, j, x)))
	}
	return m, nil
}

// Deployment bundles a generated SECOA_S network.
type Deployment struct {
	Params  Params
	Querier *Querier
	Sources []*Source
}

// NewDeployment generates fresh keys for n sources. Source RNGs are seeded
// deterministically from rngSeed for reproducible experiments.
func NewDeployment(n int, params Params, rngSeed int64) (*Deployment, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, errors.New("secoa: need at least one source")
	}
	inflKeys := make([][]byte, n)
	seedKeys := make([][]byte, n)
	sources := make([]*Source, n)
	for i := 0; i < n; i++ {
		var err error
		if inflKeys[i], err = prf.NewLongTermKey(); err != nil {
			return nil, err
		}
		if seedKeys[i], err = prf.NewLongTermKey(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(rngSeed + int64(i)))
		if sources[i], err = NewSource(i, inflKeys[i], seedKeys[i], params, rng); err != nil {
			return nil, err
		}
	}
	q, err := NewQuerier(params, inflKeys, seedKeys)
	if err != nil {
		return nil, err
	}
	return &Deployment{Params: params, Querier: q, Sources: sources}, nil
}

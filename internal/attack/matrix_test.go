package attack

import (
	"sync"
	"testing"

	"github.com/sies/sies/internal/network"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/rsax"
	"github.com/sies/sies/internal/secoa"
	"github.com/sies/sies/internal/sketch"
	"github.com/sies/sies/internal/uint256"
)

// The detection matrix of §IV-B: every interceptor crossed with every scheme.
// Each cell pins one verdict:
//
//	detected — the querier rejects the epoch (typed error)
//	wrong    — the querier accepts a result ≠ the true SUM (silent corruption)
//	exact    — the querier accepts and the result IS the true SUM
//	skip     — the attack has no analogue for the scheme's message type
//
// SIES's column is all "detected" except the canceling duplicate+drop
// composition, which re-routes a share without changing ΣSS or Σv — the
// boundary case showing detection is exactly share-sum preservation. CMT's
// column shows why the paper rejects it: injection lands as "wrong" with no
// rejection, and the rows it does reject (drop, duplicate) it rejects only by
// the accident of an unmatched key making garbage. SECOA_S detects structural
// attacks through SEAL verification but only ever serves an estimate.

type verdict int

const (
	skip verdict = iota
	detected
	wrong
	exact
)

type matrixCell struct {
	make func(f *uint256.Field) network.Interceptor
	want verdict
}

var (
	matrixRSAOnce sync.Once
	matrixRSAKey  *rsax.PublicKey
	matrixRSAErr  error
)

func secoaSetup(t *testing.T, n, fanout int) *network.Engine {
	t.Helper()
	matrixRSAOnce.Do(func() { matrixRSAKey, matrixRSAErr = rsax.GenerateKey(512, rsax.DefaultExponent) })
	if matrixRSAErr != nil {
		t.Fatal(matrixRSAErr)
	}
	params := secoa.Params{Sketch: sketch.Params{J: 8, MaxLevel: 24}, Key: matrixRSAKey}
	proto, err := network.NewSECOAProtocol(n, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := network.CompleteTree(n, fanout)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := network.NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestDetectionMatrix(t *testing.T) {
	const n, fanout = 16, 4
	vals := make([]uint64, n) // distinct values so silent corruption is visible
	var truth float64
	for i := range vals {
		vals[i] = uint64(i + 1)
		truth += float64(vals[i])
	}

	rows := []struct {
		name  string
		cells map[string]matrixCell
	}{
		{
			name: "inject-delta",
			cells: map[string]matrixCell{
				"SIES": {func(f *uint256.Field) network.Interceptor { return SIESInject(f, network.EdgeAA, 500) }, detected},
				"CMT":  {func(*uint256.Field) network.Interceptor { return CMTInject(network.EdgeAA, 500) }, wrong},
			},
		},
		{
			name: "drop-source",
			cells: map[string]matrixCell{
				"SIES":   {func(*uint256.Field) network.Interceptor { return DropEdge(network.EdgeSA, 5) }, detected},
				"CMT":    {func(*uint256.Field) network.Interceptor { return DropEdge(network.EdgeSA, 5) }, detected},
				"SECOAS": {func(*uint256.Field) network.Interceptor { return DropEdge(network.EdgeSA, 5) }, detected},
			},
		},
		{
			name: "drop-subtree",
			cells: map[string]matrixCell{
				"SIES":   {func(*uint256.Field) network.Interceptor { return DropEdge(network.EdgeAA, -1) }, detected},
				"CMT":    {func(*uint256.Field) network.Interceptor { return DropEdge(network.EdgeAA, -1) }, detected},
				"SECOAS": {func(*uint256.Field) network.Interceptor { return DropEdge(network.EdgeAA, -1) }, detected},
			},
		},
		{
			// Duplicating a CMT ciphertext doubles its key stream too, so the
			// unmatched key turns the decryption into overflow garbage — CMT
			// "detects" this only by that accident (same class as its drop
			// behaviour), with no verification or attribution behind it.
			name: "duplicate",
			cells: map[string]matrixCell{
				"SIES": {func(f *uint256.Field) network.Interceptor { return Duplicate(f, 2) }, detected},
				"CMT":  {func(*uint256.Field) network.Interceptor { return CMTDuplicate(2) }, detected},
			},
		},
		{
			// The boundary case: drop a share AND re-add the *same* share
			// downstream. ΣSS and Σv are both unchanged, so SIES accepts —
			// and the result is still exact. Detection is precisely
			// share-sum preservation, nothing more.
			name: "duplicate+drop-canceling",
			cells: map[string]matrixCell{
				"SIES": {func(f *uint256.Field) network.Interceptor { return NewReroute(f, 5).Interceptor() }, exact},
			},
		},
		{
			// Same composition, halves NOT canceling (duplicate source 2,
			// drop source 5): the share sum shifts by ss₂−ss₅ ≠ 0 and SIES
			// rejects. CMT also rejects here — but only by the garbage-value
			// accident of the unmatched drop key, not by verification.
			name: "duplicate+drop-imbalanced",
			cells: map[string]matrixCell{
				"SIES": {func(f *uint256.Field) network.Interceptor {
					return Compose(Duplicate(f, 2), DropEdge(network.EdgeSA, 5))
				}, detected},
				"CMT": {func(*uint256.Field) network.Interceptor {
					return Compose(CMTDuplicate(2), DropEdge(network.EdgeSA, 5))
				}, detected},
			},
		},
	}

	for _, row := range rows {
		for scheme, cell := range row.cells {
			if cell.want == skip {
				continue
			}
			t.Run(row.name+"/"+scheme, func(t *testing.T) {
				var eng *network.Engine
				var field *uint256.Field
				switch scheme {
				case "SIES":
					e, proto := siesSetup(t, n, fanout)
					eng, field = e, proto.Querier.Params().Field()
				case "CMT":
					eng = cmtSetup(t, n, fanout)
				case "SECOAS":
					eng = secoaSetup(t, n, fanout)
				}
				out, err := Run(eng, 1, vals, cell.make(field))
				if err != nil {
					t.Fatal(err)
				}
				switch cell.want {
				case detected:
					if !out.Detected {
						t.Fatalf("accepted with result %f, want detection", out.Result)
					}
				case wrong:
					if out.Detected {
						t.Fatalf("detected (%v), want silent wrong answer", out.Err)
					}
					if out.Result == truth {
						t.Fatalf("result %f is exact; the attack was a no-op", out.Result)
					}
				case exact:
					if out.Detected {
						t.Fatalf("detected (%v), want exact acceptance", out.Err)
					}
					if out.Result != truth {
						t.Fatalf("result %f, want exact %f", out.Result, truth)
					}
				}
			})
		}
	}
}

// TestMatrixReplay pins the replay row, which needs a two-epoch flow: record
// the final message of epoch 1, serve it for epoch 2. All three schemes
// reject — SIES by epoch-bound shares (Theorem 4), CMT by the garbage its
// epoch-2 keys make of an epoch-1 ciphertext, SECOA_S by its inflation
// certificate.
func TestMatrixReplay(t *testing.T) {
	const n, fanout = 16, 4
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i + 1)
	}
	engines := map[string]*network.Engine{}
	{
		e, _ := siesSetup(t, n, fanout)
		engines["SIES"] = e
	}
	engines["CMT"] = cmtSetup(t, n, fanout)
	engines["SECOAS"] = secoaSetup(t, n, fanout)

	for scheme, eng := range engines {
		t.Run(scheme, func(t *testing.T) {
			r := NewReplayer(1)
			eng.SetInterceptor(r.Interceptor())
			defer eng.SetInterceptor(nil)
			if _, err := eng.RunEpoch(1, vals); err != nil {
				t.Fatalf("victim epoch rejected: %v", err)
			}
			if _, err := eng.RunEpoch(prf.Epoch(2), vals); err == nil {
				t.Fatal("stale final message accepted for a fresh epoch")
			}
		})
	}
}

package attack

import (
	"testing"

	"github.com/sies/sies/internal/chaos"
	"github.com/sies/sies/internal/network"
	"github.com/sies/sies/internal/prf"
)

func TestPersistentTampersEveryEpochFromStart(t *testing.T) {
	eng, proto := siesSetup(t, 16, 4)
	f := proto.Querier.Params().Field()
	adv := NewPersistent(f, 2, 77, 3)
	eng.SetInterceptor(adv.Interceptor())
	defer eng.SetInterceptor(nil)
	vals := values(16, 10)

	// Before Start the adversary is dormant.
	for epoch := prf.Epoch(1); epoch < 3; epoch++ {
		if _, err := eng.RunEpoch(epoch, vals); err != nil {
			t.Fatalf("dormant epoch %d rejected: %v", epoch, err)
		}
	}
	// From Start, every epoch is tampered and detected.
	for epoch := prf.Epoch(3); epoch < 6; epoch++ {
		if _, err := eng.RunEpoch(epoch, vals); err == nil {
			t.Fatalf("tampered epoch %d accepted", epoch)
		}
	}
	if adv.Tampers() != 3 {
		t.Fatalf("tampers = %d, want 3", adv.Tampers())
	}
	adv.Stop()
	if _, err := eng.RunEpoch(6, vals); err != nil {
		t.Fatalf("post-stop epoch rejected: %v", err)
	}
}

func TestPersistentMoveTo(t *testing.T) {
	eng, proto := siesSetup(t, 16, 4)
	f := proto.Querier.Params().Field()
	adv := NewPersistent(f, 1, 5, 1)
	eng.SetInterceptor(adv.Interceptor())
	defer eng.SetInterceptor(nil)
	vals := values(16, 10)

	// Tampering from agg 1: excluding its subtree yields a clean partial sum.
	include := []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	if _, err := eng.RunEpochOver(1, vals, include); err != nil {
		t.Fatalf("routed-around epoch rejected: %v", err)
	}
	adv.MoveTo(2)
	if _, err := eng.RunEpochOver(2, vals, include); err == nil {
		t.Fatal("adversary moved to agg 2 but the old exclusion still worked")
	}
}

func TestAdaptiveRelocatesWhenSilenced(t *testing.T) {
	eng, proto := siesSetup(t, 16, 4)
	f := proto.Querier.Params().Field()
	adv := NewAdaptive(f, []int{1, 2}, 9, 1, 2)
	eng.SetInterceptor(adv.Interceptor())
	defer eng.SetInterceptor(nil)
	vals := values(16, 10)

	// Route around agg 1 (sources 0-3): its out-edge goes silent. After 2
	// silent epochs the adversary moves to agg 2, whose subtree is still
	// included — tampering resumes against the same exclusion.
	include := []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	rejected := 0
	for epoch := prf.Epoch(1); epoch <= 8; epoch++ {
		_, err := eng.RunEpochOver(epoch, vals, include)
		if epoch <= 2 && err != nil {
			t.Fatalf("epoch %d rejected before relocation: %v", epoch, err)
		}
		if err != nil {
			rejected++
		}
	}
	if adv.Moves() == 0 {
		t.Fatal("adversary never relocated")
	}
	if adv.Aggregator() != 2 {
		t.Fatalf("adversary at %d, want 2", adv.Aggregator())
	}
	if rejected == 0 {
		t.Fatal("relocated adversary never tampered")
	}
}

func TestColludersBothFire(t *testing.T) {
	eng, proto := siesSetup(t, 16, 4)
	f := proto.Querier.Params().Field()
	a, b, ic := Colluders(f, 1, 3, 7, 11, 1)
	eng.SetInterceptor(ic)
	defer eng.SetInterceptor(nil)
	if _, err := eng.RunEpoch(1, values(16, 10)); err == nil {
		t.Fatal("colluding tamper accepted")
	}
	if a.Tampers() == 0 || b.Tampers() == 0 {
		t.Fatalf("tampers %d/%d, want both > 0", a.Tampers(), b.Tampers())
	}
}

func TestComposeShortCircuitsOnDrop(t *testing.T) {
	calls := 0
	counting := func(_ prf.Epoch, _ network.Edge, m network.Message) network.Message {
		calls++
		return m
	}
	ic := Compose(DropEdge(network.EdgeSA, -1), counting)
	if got := ic(1, network.Edge{Kind: network.EdgeSA, From: 0, To: 0}, struct{}{}); got != nil {
		t.Fatal("drop did not propagate")
	}
	if calls != 0 {
		t.Fatal("later interceptor ran after a drop")
	}
}

func TestFromByzantineFollowsSchedule(t *testing.T) {
	eng, proto := siesSetup(t, 16, 4)
	f := proto.Querier.Params().Field()
	byz := &chaos.Byzantine{Events: []chaos.ByzantineEvent{
		{From: 2, Until: 4, Aggregator: 1, Mode: chaos.ByzTamper, Delta: 5},
		{From: 3, Until: 5, Aggregator: 2, Mode: chaos.ByzDrop},
	}}
	eng.SetInterceptor(FromByzantine(f, byz))
	defer eng.SetInterceptor(nil)
	vals := values(16, 10)

	if _, err := eng.RunEpoch(1, vals); err != nil {
		t.Fatalf("pre-fault epoch rejected: %v", err)
	}
	for epoch := prf.Epoch(2); epoch < 5; epoch++ {
		if _, err := eng.RunEpoch(epoch, vals); err == nil {
			t.Fatalf("faulty epoch %d accepted", epoch)
		}
	}
	if _, err := eng.RunEpoch(5, vals); err != nil {
		t.Fatalf("post-fault epoch rejected: %v", err)
	}
}

// Sustained adversaries: the attackers the localization subsystem exists to
// survive. Unlike the one-shot interceptors in attack.go (one tampered epoch,
// classified by Run), these keep a position in the tree and attack every
// epoch until routed around — and, in the adaptive case, move when routed
// around.
package attack

import (
	"sync"

	"github.com/sies/sies/internal/chaos"
	"github.com/sies/sies/internal/cmt"
	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/network"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// Compose chains interceptors left to right; a drop (nil) short-circuits.
func Compose(ics ...network.Interceptor) network.Interceptor {
	return func(t prf.Epoch, e network.Edge, m network.Message) network.Message {
		for _, ic := range ics {
			if ic == nil {
				continue
			}
			m = ic(t, e, m)
			if m == nil {
				return nil
			}
		}
		return m
	}
}

// Persistent is a compromised aggregator that tampers every SIES message
// leaving it (its A-A or A-Q out-edge), every epoch, from Start onward. It is
// the canonical denial-of-service-by-detection adversary: each epoch is
// detected and — without localization — lost.
type Persistent struct {
	f     *uint256.Field
	delta uint256.Int

	mu      sync.Mutex
	agg     int
	start   prf.Epoch
	stopped bool
	tampers uint64
}

// NewPersistent pins a tampering adversary at the given aggregator, active
// from epoch start onward, adding delta to every outgoing ciphertext.
func NewPersistent(f *uint256.Field, agg int, delta uint64, start prf.Epoch) *Persistent {
	return &Persistent{f: f, delta: uint256.NewInt(delta), agg: agg, start: start}
}

// MoveTo relocates the adversary to another aggregator.
func (p *Persistent) MoveTo(agg int) {
	p.mu.Lock()
	p.agg = agg
	p.mu.Unlock()
}

// Aggregator returns the adversary's current position.
func (p *Persistent) Aggregator() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.agg
}

// Stop clears the fault — the node behaves honestly from now on, modelling a
// transient compromise the quarantine should eventually forgive.
func (p *Persistent) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}

// Tampers counts the messages modified so far.
func (p *Persistent) Tampers() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tampers
}

// Interceptor returns the adversary's hook.
func (p *Persistent) Interceptor() network.Interceptor {
	return func(t prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != network.EdgeAA && e.Kind != network.EdgeAQ {
			return m
		}
		p.mu.Lock()
		active := !p.stopped && t >= p.start && e.From == p.agg
		if active {
			p.tampers++
		}
		p.mu.Unlock()
		if !active {
			return m
		}
		psr, ok := m.(core.PSR)
		if !ok {
			return m
		}
		return core.PSR{C: p.f.Add(psr.C, p.delta)}
	}
}

// Adaptive is a Persistent adversary that notices being routed around: when
// its out-edge carries no traffic for Patience consecutive epochs (its
// subtree was quarantined), it relocates to the next aggregator in Targets
// and resumes tampering — the strongest mobility the threat model grants a
// network-level attacker.
type Adaptive struct {
	*Persistent
	targets  []int
	patience int

	mu        sync.Mutex
	lastEpoch prf.Epoch
	sawEdge   bool
	silent    int
	next      int
	moves     int
}

// NewAdaptive builds an adaptive adversary starting at targets[0] and cycling
// through targets each time it is silenced for patience epochs.
func NewAdaptive(f *uint256.Field, targets []int, delta uint64, start prf.Epoch, patience int) *Adaptive {
	if patience < 1 {
		patience = 1
	}
	return &Adaptive{
		Persistent: NewPersistent(f, targets[0], delta, start),
		targets:    targets,
		patience:   patience,
	}
}

// Moves counts the relocations performed.
func (a *Adaptive) Moves() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.moves
}

// Interceptor returns the adaptive hook: the Persistent tamper plus the
// epoch-boundary bookkeeping that triggers relocation.
func (a *Adaptive) Interceptor() network.Interceptor {
	tamper := a.Persistent.Interceptor()
	return func(t prf.Epoch, e network.Edge, m network.Message) network.Message {
		a.observe(t, e)
		return tamper(t, e, m)
	}
}

// observe tracks whether the adversary's own out-edge carried anything this
// epoch and relocates after patience silent epochs. Probe traffic counts as
// traffic: an adversary being probed has not been routed around yet.
func (a *Adaptive) observe(t prf.Epoch, e network.Edge) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t != a.lastEpoch {
		if a.lastEpoch != 0 && !a.sawEdge {
			a.silent++
			if a.silent >= a.patience {
				a.next = (a.next + 1) % len(a.targets)
				a.Persistent.MoveTo(a.targets[a.next])
				a.moves++
				a.silent = 0
			}
		} else if a.sawEdge {
			a.silent = 0
		}
		a.lastEpoch, a.sawEdge = t, false
	}
	if (e.Kind == network.EdgeAA || e.Kind == network.EdgeAQ) && e.From == a.Persistent.Aggregator() {
		a.sawEdge = true
	}
}

// Colluders returns two persistent tamperers pinned at two aggregators (two
// subtrees attacking at once, with independent deltas) plus their combined
// interceptor. Localization must blame both in one procedure.
func Colluders(f *uint256.Field, aggA, aggB int, deltaA, deltaB uint64, start prf.Epoch) (*Persistent, *Persistent, network.Interceptor) {
	a := NewPersistent(f, aggA, deltaA, start)
	b := NewPersistent(f, aggB, deltaB, start)
	return a, b, Compose(a.Interceptor(), b.Interceptor())
}

// Reroute drops one source's PSR at its S-A edge and re-adds it into the
// final A-Q message — the duplicate+drop composition whose halves cancel
// exactly. The share sum is unchanged, so SIES accepts, and the SUM is
// unchanged too: the "attack" is an exactness-preserving re-route, the
// boundary case of the detection table. Any imbalance (dropping one source
// while duplicating another — see Duplicate and DropEdge) is detected.
type Reroute struct {
	f   *uint256.Field
	src int

	mu    sync.Mutex
	epoch prf.Epoch
	held  *core.PSR
}

// NewReroute targets the given source id.
func NewReroute(f *uint256.Field, src int) *Reroute { return &Reroute{f: f, src: src} }

// Interceptor returns the reroute hook.
func (r *Reroute) Interceptor() network.Interceptor {
	return func(t prf.Epoch, e network.Edge, m network.Message) network.Message {
		switch {
		case e.Kind == network.EdgeSA && e.From == r.src:
			psr, ok := m.(core.PSR)
			if !ok {
				return m
			}
			r.mu.Lock()
			r.epoch, r.held = t, &psr
			r.mu.Unlock()
			return nil // dropped here …
		case e.Kind == network.EdgeAQ:
			r.mu.Lock()
			held := r.held
			match := held != nil && r.epoch == t
			if match {
				r.held = nil
			}
			r.mu.Unlock()
			if !match {
				return m
			}
			psr, ok := m.(core.PSR)
			if !ok {
				return m
			}
			return core.PSR{C: r.f.Add(psr.C, held.C)} // … re-added here
		}
		return m
	}
}

// CMTDuplicate aggregates a chosen source's CMT ciphertext into itself — the
// CMT analogue of Duplicate. The ciphertext's key stream doubles with it, so
// the querier's decryption is left with an unmatched key and lands on
// overflow garbage: CMT rejects only by that accident, with no verification
// or attribution behind it (the same failure class as its drop behaviour).
func CMTDuplicate(source int) network.Interceptor {
	return func(_ prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != network.EdgeSA || e.From != source {
			return m
		}
		c, ok := m.(cmt.Ciphertext)
		if !ok {
			return m
		}
		return cmt.Aggregate(c, c)
	}
}

// FromByzantine adapts a chaos byzantine schedule into an interceptor: at
// each epoch the schedule's active faults tamper or blackhole the affected
// aggregators' out-edges. The per-epoch fault map is cached, so the hot path
// is one map lookup per edge.
func FromByzantine(f *uint256.Field, b *chaos.Byzantine) network.Interceptor {
	var mu sync.Mutex
	var cachedEpoch prf.Epoch
	var active map[int]chaos.ByzantineEvent
	var cached bool
	return func(t prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != network.EdgeAA && e.Kind != network.EdgeAQ {
			return m
		}
		mu.Lock()
		if !cached || t != cachedEpoch {
			active, cachedEpoch, cached = b.Active(t), t, true
		}
		ev, ok := active[e.From]
		mu.Unlock()
		if !ok {
			return m
		}
		switch ev.Mode {
		case chaos.ByzTamper:
			psr, isPSR := m.(core.PSR)
			if !isPSR {
				return m
			}
			return core.PSR{C: f.Add(psr.C, uint256.NewInt(ev.Delta))}
		case chaos.ByzDrop:
			return nil
		}
		return m
	}
}

// Package attack provides the adversary harness used by the security tests
// and the example applications: reusable interceptors for every attack the
// paper's threat model covers (§III-C, §IV-B) and a runner that classifies
// whether a scheme detected the attack.
//
// The attacks modelled are:
//
//   - Injection/tampering — add a delta to a ciphertext in flight
//     (SIES detects via the share secret; CMT accepts silently).
//   - Drop — a blackhole aggregator discards a subtree's contribution
//     (SIES detects; CMT under-reports silently).
//   - Replay — a stale final PSR is served for a newer epoch
//     (detected via epoch-bound shares, Theorem 4).
//   - Duplicate — a PSR is aggregated twice
//     (detected: the share sum doubles).
//   - Eavesdrop — record ciphertexts for offline analysis
//     (SIES/CMT reveal nothing; SECOA_S leaks the value magnitude).
package attack

import (
	"errors"
	"fmt"

	"github.com/sies/sies/internal/cmt"
	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/network"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// Outcome reports what the querier experienced under attack.
type Outcome struct {
	Detected bool    // the querier rejected the epoch
	Err      error   // the rejection error, when detected
	Result   float64 // the accepted result, when not detected
}

// Run installs the interceptor, runs one epoch, restores the engine and
// classifies the outcome. An error return means the attack run itself could
// not be carried out (misconfiguration), not that the attack was detected.
func Run(eng *network.Engine, t prf.Epoch, values []uint64, ic network.Interceptor) (Outcome, error) {
	eng.SetInterceptor(ic)
	defer eng.SetInterceptor(nil)
	res, err := eng.RunEpoch(t, values)
	if err != nil {
		return Outcome{Detected: true, Err: err}, nil
	}
	return Outcome{Result: res}, nil
}

// SIESInject returns an interceptor that adds delta to the ciphertext on
// every edge of the given kind — the injection attack of §II-D applied to
// SIES PSRs.
func SIESInject(f *uint256.Field, kind network.EdgeKind, delta uint64) network.Interceptor {
	d := uint256.NewInt(delta)
	return func(_ prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != kind {
			return m
		}
		psr, ok := m.(core.PSR)
		if !ok {
			return m
		}
		return core.PSR{C: f.Add(psr.C, d)}
	}
}

// SIESInjectAligned adds delta directly into the *value field* of the
// plaintext by shifting it past the share region — the strongest algebraic
// attack an adversary knowing the layout (but not K_t) can mount. Without
// the multiplier key K_t the shifted delta still lands on a random plaintext
// offset, so verification fails.
func SIESInjectAligned(f *uint256.Field, shareRegionBits uint, kind network.EdgeKind, delta uint64) network.Interceptor {
	d := uint256.NewInt(delta).Lsh(shareRegionBits)
	return func(_ prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != kind {
			return m
		}
		psr, ok := m.(core.PSR)
		if !ok {
			return m
		}
		return core.PSR{C: f.Add(psr.C, d)}
	}
}

// CMTInject adds delta to CMT ciphertexts on the given edge kind. CMT cannot
// detect it — the attack the paper uses to motivate SIES.
func CMTInject(kind network.EdgeKind, delta uint64) network.Interceptor {
	var d cmt.Ciphertext
	for i := 0; i < 8; i++ {
		d[cmt.CiphertextSize-1-i] = byte(delta >> (8 * i))
	}
	return func(_ prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != kind {
			return m
		}
		c, ok := m.(cmt.Ciphertext)
		if !ok {
			return m
		}
		return cmt.Aggregate(c, d)
	}
}

// DropEdge discards every message on edges matching kind and source id
// (from = -1 matches any sender) — the blackhole attack.
func DropEdge(kind network.EdgeKind, from int) network.Interceptor {
	return func(_ prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind == kind && (from == -1 || e.From == from) {
			return nil
		}
		return m
	}
}

// Duplicate re-aggregates a copy of a chosen source's PSR into itself,
// modelling a compromised aggregator counting one child twice. Only
// meaningful for additively aggregated schemes (SIES, CMT).
func Duplicate(f *uint256.Field, source int) network.Interceptor {
	return func(_ prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != network.EdgeSA || e.From != source {
			return m
		}
		psr, ok := m.(core.PSR)
		if !ok {
			return m
		}
		return core.PSR{C: f.Add(psr.C, psr.C)} // the PSR added twice
	}
}

// Replayer records the final (A-Q) message of a victim epoch and substitutes
// it for the final message of every later epoch — the replay attack of
// Theorem 4.
type Replayer struct {
	victim   prf.Epoch
	recorded network.Message
}

// NewReplayer targets the given victim epoch.
func NewReplayer(victim prf.Epoch) *Replayer { return &Replayer{victim: victim} }

// Interceptor returns the replayer's hook.
func (r *Replayer) Interceptor() network.Interceptor {
	return func(t prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != network.EdgeAQ {
			return m
		}
		if t == r.victim {
			r.recorded = m
			return m
		}
		if r.recorded != nil {
			return r.recorded
		}
		return m
	}
}

// HasRecording reports whether the victim epoch has been captured.
func (r *Replayer) HasRecording() bool { return r.recorded != nil }

// Eavesdropper records every message on a chosen edge kind for offline
// analysis — the passive adversary of the confidentiality theorems.
type Eavesdropper struct {
	kind     network.EdgeKind
	Captured []network.Message
}

// NewEavesdropper listens on the given edge kind.
func NewEavesdropper(kind network.EdgeKind) *Eavesdropper {
	return &Eavesdropper{kind: kind}
}

// Interceptor returns the passive hook.
func (ev *Eavesdropper) Interceptor() network.Interceptor {
	return func(_ prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind == ev.kind {
			ev.Captured = append(ev.Captured, m)
		}
		return m
	}
}

// CapturedPSRBytes returns the wire bytes of captured SIES PSRs, the raw
// material a confidentiality analysis works with.
func (ev *Eavesdropper) CapturedPSRBytes() ([][core.PSRSize]byte, error) {
	out := make([][core.PSRSize]byte, 0, len(ev.Captured))
	for _, m := range ev.Captured {
		psr, ok := m.(core.PSR)
		if !ok {
			return nil, errors.New("attack: captured message is not a SIES PSR")
		}
		out = append(out, psr.Bytes())
	}
	return out, nil
}

// ExpectDetected asserts an outcome was detected; used by examples to keep
// their control flow flat.
func ExpectDetected(o Outcome, attack string) error {
	if !o.Detected {
		return fmt.Errorf("attack %q was NOT detected (result %.0f accepted)", attack, o.Result)
	}
	return nil
}

package attack

import (
	"bytes"
	"errors"
	"github.com/sies/sies/internal/rsax"
	"github.com/sies/sies/internal/secoa"
	"github.com/sies/sies/internal/sketch"
	"testing"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/network"
	"github.com/sies/sies/internal/prf"
)

func siesSetup(t *testing.T, n, fanout int) (*network.Engine, *network.SIESProtocol) {
	t.Helper()
	topo, err := network.CompleteTree(n, fanout)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := network.NewSIESProtocol(n)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := network.NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	return eng, proto
}

func cmtSetup(t *testing.T, n, fanout int) *network.Engine {
	t.Helper()
	topo, err := network.CompleteTree(n, fanout)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := network.NewCMTProtocol(n)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := network.NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func values(n int, v uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSIESDetectsInjectionEverywhere(t *testing.T) {
	for _, kind := range []network.EdgeKind{network.EdgeSA, network.EdgeAA, network.EdgeAQ} {
		eng, proto := siesSetup(t, 16, 4)
		f := proto.Querier.Params().Field()
		out, err := Run(eng, 1, values(16, 100), SIESInject(f, kind, 77))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Detected {
			t.Fatalf("%v injection not detected: result %f", kind, out.Result)
		}
	}
}

func TestSIESDetectsAlignedInjection(t *testing.T) {
	eng, proto := siesSetup(t, 16, 4)
	layout := proto.Querier.Params().Layout()
	region := uint(160 + layout.PadBits())
	f := proto.Querier.Params().Field()
	out, err := Run(eng, 1, values(16, 100), SIESInjectAligned(f, region, network.EdgeAQ, 500))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("aligned injection not detected: result %f", out.Result)
	}
}

func TestCMTAcceptsInjection(t *testing.T) {
	eng := cmtSetup(t, 16, 4)
	out, err := Run(eng, 1, values(16, 100), CMTInject(network.EdgeAQ, 500))
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Fatalf("CMT unexpectedly detected injection: %v", out.Err)
	}
	if out.Result != 16*100+500 {
		t.Fatalf("tampered CMT result = %f, want %d", out.Result, 2100)
	}
	if err := ExpectDetected(out, "cmt-injection"); err == nil {
		t.Fatal("ExpectDetected passed on undetected attack")
	}
}

func TestSIESDetectsDroppedSource(t *testing.T) {
	eng, _ := siesSetup(t, 16, 4)
	out, err := Run(eng, 1, values(16, 10), DropEdge(network.EdgeSA, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("dropped source not detected: result %f", out.Result)
	}
}

func TestSIESDetectsDroppedSubtree(t *testing.T) {
	eng, _ := siesSetup(t, 16, 4)
	out, err := Run(eng, 1, values(16, 10), DropEdge(network.EdgeAA, -1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("dropped subtree not detected: result %f", out.Result)
	}
}

func TestCMTDropYieldsGarbageNotAttribution(t *testing.T) {
	// Dropping a ciphertext leaves an unmatched key in CMT's subtraction, so
	// the decryption yields a 160-bit garbage value. The querier notices
	// *something* is wrong only because the value overflows — it cannot
	// verify or attribute anything.
	eng := cmtSetup(t, 16, 4)
	out, err := Run(eng, 1, values(16, 10), DropEdge(network.EdgeSA, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("drop produced a plausible value by chance: %f", out.Result)
	}
}

func TestCMTAcceptsDropWithSpoofedFailureReport(t *testing.T) {
	// The silent CMT drop attack: a compromised aggregator drops source 5's
	// ciphertext and falsely reports the source as failed. The querier
	// decrypts the reduced subset and admits the wrong SUM with no way to
	// verify. (SIES narrows this to the paper's documented residual risk:
	// the querier is instructed to manually check reported failures, §IV-B.)
	eng := cmtSetup(t, 16, 4)
	if err := eng.FailSource(5); err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunEpoch(1, values(16, 10))
	if err != nil {
		t.Fatalf("CMT rejected the spoofed-failure epoch: %v", err)
	}
	if got != 150 {
		t.Fatalf("CMT accepted %f, want the silently reduced 150", got)
	}
}

func TestSIESDetectsDuplicate(t *testing.T) {
	eng, proto := siesSetup(t, 8, 4)
	f := proto.Querier.Params().Field()
	out, err := Run(eng, 1, values(8, 10), Duplicate(f, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("duplicate not detected: result %f", out.Result)
	}
}

func TestSIESDetectsReplay(t *testing.T) {
	eng, _ := siesSetup(t, 8, 4)
	r := NewReplayer(1)
	eng.SetInterceptor(r.Interceptor())
	defer eng.SetInterceptor(nil)

	// Victim epoch passes (the replayer only records).
	if _, err := eng.RunEpoch(1, values(8, 50)); err != nil {
		t.Fatalf("victim epoch rejected: %v", err)
	}
	if !r.HasRecording() {
		t.Fatal("replayer recorded nothing")
	}
	// Later epoch receives the stale PSR: must be rejected.
	_, err := eng.RunEpoch(2, values(8, 60))
	if !errors.Is(err, core.ErrIntegrity) && !errors.Is(err, core.ErrResultOverflow) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestDropFinalMessage(t *testing.T) {
	// Dropping the A-Q message is a DoS the paper's model treats as
	// trivially detectable (the querier receives nothing).
	eng, _ := siesSetup(t, 4, 4)
	out, err := Run(eng, 1, values(4, 1), DropEdge(network.EdgeAQ, -1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatal("missing final message went unnoticed")
	}
}

func TestEavesdropperSeesOnlyRandomLookingBytes(t *testing.T) {
	// Two engines with identical readings produce unrelated PSR streams
	// (fresh keys per deployment and per epoch): a smoke check that the
	// ciphertext carries no plaintext structure. Identical plaintext, two
	// epochs, same source — ciphertexts must differ.
	eng, _ := siesSetup(t, 4, 4)
	ev := NewEavesdropper(network.EdgeSA)
	eng.SetInterceptor(ev.Interceptor())
	defer eng.SetInterceptor(nil)
	if _, err := eng.RunEpoch(1, values(4, 42)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunEpoch(2, values(4, 42)); err != nil {
		t.Fatal(err)
	}
	caps, err := ev.CapturedPSRBytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 8 {
		t.Fatalf("captured %d PSRs", len(caps))
	}
	// Source 0's epoch-1 vs epoch-2 PSR for the same reading must differ.
	if bytes.Equal(caps[0][:], caps[4][:]) {
		t.Fatal("identical plaintext produced identical ciphertexts across epochs")
	}
	// Two sources with the same reading in the same epoch must differ.
	if bytes.Equal(caps[0][:], caps[1][:]) {
		t.Fatal("two sources produced identical ciphertexts")
	}
}

func TestEavesdropperTypeCheck(t *testing.T) {
	eng := cmtSetup(t, 4, 4)
	ev := NewEavesdropper(network.EdgeSA)
	eng.SetInterceptor(ev.Interceptor())
	defer eng.SetInterceptor(nil)
	if _, err := eng.RunEpoch(1, values(4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.CapturedPSRBytes(); err == nil {
		t.Fatal("CMT ciphertexts accepted as PSRs")
	}
}

func TestCleanRunAfterAttack(t *testing.T) {
	// Run() must restore the engine: a follow-up epoch verifies cleanly.
	eng, proto := siesSetup(t, 8, 4)
	f := proto.Querier.Params().Field()
	if _, err := Run(eng, 1, values(8, 5), SIESInject(f, network.EdgeAQ, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunEpoch(2, values(8, 5))
	if err != nil {
		t.Fatalf("clean epoch rejected after attack run: %v", err)
	}
	if got != 40 {
		t.Fatalf("clean SUM = %f", got)
	}
}

func TestExpectDetected(t *testing.T) {
	if err := ExpectDetected(Outcome{Detected: true}, "x"); err != nil {
		t.Fatal(err)
	}
	if err := ExpectDetected(Outcome{Detected: false, Result: 5}, "x"); err == nil {
		t.Fatal("undetected outcome passed")
	}
}

func TestSIESDetectionIsRobustOverEpochs(t *testing.T) {
	// Property-style sweep: random deltas on random edges over many epochs —
	// detection probability must be 1 in practice (failure probability 2^-224).
	eng, proto := siesSetup(t, 8, 2)
	f := proto.Querier.Params().Field()
	for epoch := prf.Epoch(1); epoch <= 25; epoch++ {
		kind := []network.EdgeKind{network.EdgeSA, network.EdgeAA, network.EdgeAQ}[int(epoch)%3]
		delta := uint64(epoch)*7919 + 1
		out, err := Run(eng, epoch, values(8, uint64(epoch)), SIESInject(f, kind, delta))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Detected {
			t.Fatalf("epoch %d: injection (%v, %d) not detected", epoch, kind, delta)
		}
	}
}

func TestCompromisedSourceBoundary(t *testing.T) {
	// Paper §III-C: a compromised source can lie about its own reading and
	// no scheme detects it — SIES's guarantee is that the lie stays bounded
	// to that source's contribution (SUM shifts by the lie, nothing else
	// breaks, and other sources' secrets stay safe). Pin that boundary.
	eng, _ := siesSetup(t, 8, 4)
	honest := values(8, 10)
	lying := append([]uint64(nil), honest...)
	lying[3] = 9999 // source 3 reports a fabricated reading

	got, err := eng.RunEpoch(1, lying)
	if err != nil {
		t.Fatalf("epoch with lying source rejected: %v", err)
	}
	if got != 7*10+9999 {
		t.Fatalf("SUM = %f, want %d", got, 7*10+9999)
	}
	// The next epoch with honest readings verifies normally: the lie did not
	// poison the deployment.
	got, err = eng.RunEpoch(2, honest)
	if err != nil {
		t.Fatal(err)
	}
	if got != 80 {
		t.Fatalf("SUM = %f, want 80", got)
	}
}

func TestSECOAInflationViaInterceptor(t *testing.T) {
	// Network-level SECOA attack: a man-in-the-middle inflates a sketch
	// value on the final edge. The querier's certificate check rejects it.
	topo, err := network.CompleteTree(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	key, err := rsax.GenerateKey(512, rsax.DefaultExponent)
	if err != nil {
		t.Fatal(err)
	}
	params := secoa.Params{Sketch: sketch.Params{J: 8, MaxLevel: 24}, Key: key}
	proto, err := network.NewSECOAProtocol(4, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := network.NewEngine(topo, proto)
	if err != nil {
		t.Fatal(err)
	}
	inflate := func(_ prf.Epoch, e network.Edge, m network.Message) network.Message {
		if e.Kind != network.EdgeAQ {
			return m
		}
		msg, ok := m.(*secoa.Message)
		if !ok {
			return m
		}
		bad := msg.Clone()
		bad.X[0]++
		return bad
	}
	out, err := Run(eng, 1, values(4, 500), inflate)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("SECOA inflation not detected: %f", out.Result)
	}
	// Honest epoch still verifies.
	if _, err := eng.RunEpoch(2, values(4, 500)); err != nil {
		t.Fatal(err)
	}
}

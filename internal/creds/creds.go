// Package creds defines the on-disk credential format produced by the
// provisioning tool (cmd/sieskeys) and consumed by networked nodes
// (cmd/siesnode): one JSON file per party, mirroring the manual key
// registration of the paper's setup phase (§IV-A).
//
//	querier.json     — K, every kᵢ, and p   (querier only, all secrets)
//	source-<i>.json  — K, kᵢ, and p         (one per source)
//	aggregator.json  — p only               (no secrets)
package creds

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// File kinds.
const (
	KindQuerier    = "querier"
	KindSource     = "source"
	KindAggregator = "aggregator"
)

// QuerierFile is the querier's complete key material.
type QuerierFile struct {
	Kind    string   `json:"kind"`
	N       int      `json:"n"`
	Global  string   `json:"global_key_hex"`
	Sources []string `json:"source_keys_hex"`
	Modulus string   `json:"modulus_hex"`
}

// SourceFile is one source's credentials.
type SourceFile struct {
	Kind    string `json:"kind"`
	ID      int    `json:"id"`
	Global  string `json:"global_key_hex"`
	Key     string `json:"source_key_hex"`
	Modulus string `json:"modulus_hex"`
}

// AggregatorFile carries only the public modulus.
type AggregatorFile struct {
	Kind    string `json:"kind"`
	Modulus string `json:"modulus_hex"`
}

// SaveDeployment writes the full credential set for a key ring under dir.
func SaveDeployment(dir string, ring *prf.KeyRing, modulus uint256.Int) error {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	p := modulus.Bytes()
	modHex := hex.EncodeToString(p[:])

	qf := QuerierFile{Kind: KindQuerier, N: ring.N(), Global: hex.EncodeToString(ring.Global), Modulus: modHex}
	for i := 0; i < ring.N(); i++ {
		_, ki, err := ring.SourceCredentials(i)
		if err != nil {
			return err
		}
		qf.Sources = append(qf.Sources, hex.EncodeToString(ki))
		sf := SourceFile{
			Kind: KindSource, ID: i,
			Global: hex.EncodeToString(ring.Global), Key: hex.EncodeToString(ki),
			Modulus: modHex,
		}
		if err := writeJSON(filepath.Join(dir, fmt.Sprintf("source-%d.json", i)), sf); err != nil {
			return err
		}
	}
	if err := writeJSON(filepath.Join(dir, "querier.json"), qf); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "aggregator.json"),
		AggregatorFile{Kind: KindAggregator, Modulus: modHex})
}

func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o600)
}

// readKind sniffs a credential file's kind.
func readKind(data []byte) (string, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", err
	}
	return probe.Kind, nil
}

func parseModulus(hexMod string) (*uint256.Field, error) {
	raw, err := hex.DecodeString(hexMod)
	if err != nil {
		return nil, fmt.Errorf("creds: bad modulus hex: %w", err)
	}
	p, err := uint256.SetBytes(raw)
	if err != nil {
		return nil, err
	}
	return uint256.NewField(p)
}

// LoadQuerier parses querier.json into a key ring and field.
func LoadQuerier(path string) (*prf.KeyRing, *uint256.Field, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	kind, err := readKind(data)
	if err != nil {
		return nil, nil, err
	}
	if kind != KindQuerier {
		return nil, nil, fmt.Errorf("creds: %s is a %q file, want querier", path, kind)
	}
	var f QuerierFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, err
	}
	global, err := hex.DecodeString(f.Global)
	if err != nil {
		return nil, nil, fmt.Errorf("creds: bad global key hex: %w", err)
	}
	sources := make([][]byte, len(f.Sources))
	for i, s := range f.Sources {
		if sources[i], err = hex.DecodeString(s); err != nil {
			return nil, nil, fmt.Errorf("creds: bad source %d key hex: %w", i, err)
		}
	}
	ring, err := prf.NewKeyRingFromKeys(global, sources)
	if err != nil {
		return nil, nil, err
	}
	if f.N != ring.N() {
		return nil, nil, fmt.Errorf("creds: file claims %d sources but carries %d keys", f.N, ring.N())
	}
	field, err := parseModulus(f.Modulus)
	if err != nil {
		return nil, nil, err
	}
	return ring, field, nil
}

// LoadSource parses source-<i>.json.
func LoadSource(path string) (id int, global, key []byte, field *uint256.Field, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	kind, err := readKind(data)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	if kind != KindSource {
		return 0, nil, nil, nil, fmt.Errorf("creds: %s is a %q file, want source", path, kind)
	}
	var f SourceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, nil, nil, nil, err
	}
	if global, err = hex.DecodeString(f.Global); err != nil {
		return 0, nil, nil, nil, fmt.Errorf("creds: bad global key hex: %w", err)
	}
	if key, err = hex.DecodeString(f.Key); err != nil {
		return 0, nil, nil, nil, fmt.Errorf("creds: bad source key hex: %w", err)
	}
	if field, err = parseModulus(f.Modulus); err != nil {
		return 0, nil, nil, nil, err
	}
	return f.ID, global, key, field, nil
}

// LoadAggregator parses aggregator.json.
func LoadAggregator(path string) (*uint256.Field, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	kind, err := readKind(data)
	if err != nil {
		return nil, err
	}
	if kind != KindAggregator {
		return nil, fmt.Errorf("creds: %s is a %q file, want aggregator", path, kind)
	}
	var f AggregatorFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return parseModulus(f.Modulus)
}

package creds

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

func writeDeployment(t *testing.T, n int) (string, *prf.KeyRing) {
	t.Helper()
	dir := t.TempDir()
	ring, err := prf.NewKeyRing(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveDeployment(dir, ring, uint256.DefaultPrime()); err != nil {
		t.Fatal(err)
	}
	return dir, ring
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir, ring := writeDeployment(t, 3)

	loadedRing, field, err := LoadQuerier(filepath.Join(dir, "querier.json"))
	if err != nil {
		t.Fatal(err)
	}
	if loadedRing.N() != 3 {
		t.Fatalf("N = %d", loadedRing.N())
	}
	if field.Modulus() != uint256.DefaultPrime() {
		t.Fatal("modulus mismatch")
	}
	// Keys must round-trip exactly: derivations agree.
	for i := 0; i < 3; i++ {
		a, err := ring.EpochShare(i, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loadedRing.EpochShare(i, 5)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("source %d share mismatch after reload", i)
		}
	}

	id, global, key, field2, err := LoadSource(filepath.Join(dir, "source-1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("id = %d", id)
	}
	if string(global) != string(ring.Global) {
		t.Fatal("global key mismatch")
	}
	wantG, wantK, err := ring.SourceCredentials(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(global) != string(wantG) || string(key) != string(wantK) {
		t.Fatal("source credentials mismatch")
	}
	if field2.Modulus() != uint256.DefaultPrime() {
		t.Fatal("source modulus mismatch")
	}

	field3, err := LoadAggregator(filepath.Join(dir, "aggregator.json"))
	if err != nil {
		t.Fatal(err)
	}
	if field3.Modulus() != uint256.DefaultPrime() {
		t.Fatal("aggregator modulus mismatch")
	}
}

func TestKindMismatchRejected(t *testing.T) {
	dir, _ := writeDeployment(t, 2)
	if _, _, err := LoadQuerier(filepath.Join(dir, "aggregator.json")); err == nil {
		t.Fatal("aggregator file accepted as querier")
	}
	if _, _, _, _, err := LoadSource(filepath.Join(dir, "querier.json")); err == nil {
		t.Fatal("querier file accepted as source")
	}
	if _, err := LoadAggregator(filepath.Join(dir, "source-0.json")); err == nil {
		t.Fatal("source file accepted as aggregator")
	}
}

func TestCorruptFilesRejected(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadQuerier(bad); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	// Valid JSON, bad hex.
	if err := os.WriteFile(bad, []byte(`{"kind":"aggregator","modulus_hex":"zz"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAggregator(bad); err == nil {
		t.Fatal("bad hex accepted")
	}
	// Composite modulus rejected by the field constructor.
	if err := os.WriteFile(bad, []byte(`{"kind":"aggregator","modulus_hex":"f000000000000000000000000000000000000000000000000000000000000000"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAggregator(bad); err == nil {
		t.Fatal("composite modulus accepted")
	}
	if _, _, err := LoadQuerier(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFilePermissions(t *testing.T) {
	dir, _ := writeDeployment(t, 1)
	info, err := os.Stat(filepath.Join(dir, "querier.json"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("querier.json mode = %v, want 0600", info.Mode().Perm())
	}
}

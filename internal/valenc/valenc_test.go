package valenc

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sies/sies/internal/core"
	"github.com/sies/sies/internal/prf"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		min, max float64
		decimals int
	}{
		{5, 5, 2},            // empty domain
		{5, 4, 2},            // inverted
		{0, 1, -1},           // negative decimals
		{0, 1, 10},           // too many decimals
		{math.Inf(-1), 0, 2}, // infinite bound
		{math.NaN(), 1, 2},   // NaN bound
		{-1e18, 1e18, 9},     // domain too wide at scale 10^9
	}
	for i, c := range cases {
		if _, err := New(c.min, c.max, c.decimals); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(-40, 125, 4); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c, err := New(-40, 125, 2) // a thermometer with negative range
	if err != nil {
		t.Fatal(err)
	}
	for _, reading := range []float64{-40, -39.99, -0.01, 0, 21.5, 125} {
		enc, err := c.Encode(reading)
		if err != nil {
			t.Fatalf("Encode(%g): %v", reading, err)
		}
		if got := c.Decode(enc); math.Abs(got-reading) > 0.005 {
			t.Fatalf("round trip %g → %d → %g", reading, enc, got)
		}
	}
}

func TestEncodeRejectsOutOfDomain(t *testing.T) {
	c, err := New(0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 100.1, math.NaN()} {
		if _, err := c.Encode(bad); err == nil {
			t.Fatalf("Encode(%g) accepted", bad)
		}
	}
}

func TestSignedSumRecovery(t *testing.T) {
	// The core property: exact signed sums through the positive-integer
	// protocol domain.
	c, err := New(-50, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	readings := make([]float64, 100)
	var trueSum float64
	var encSum uint64
	for i := range readings {
		readings[i] = math.Round((r.Float64()*100-50)*100) / 100 // 2 decimals
		trueSum += readings[i]
		enc, err := c.Encode(readings[i])
		if err != nil {
			t.Fatal(err)
		}
		encSum += enc
	}
	got, err := c.DecodeSum(encSum, len(readings))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueSum) > 1e-6 {
		t.Fatalf("DecodeSum = %f, want %f", got, trueSum)
	}
	avg, err := c.DecodeAvg(encSum, len(readings))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-trueSum/100) > 1e-6 {
		t.Fatalf("DecodeAvg = %f", avg)
	}
}

func TestDecodeValidation(t *testing.T) {
	c, err := New(0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeSum(5, -1); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := c.DecodeAvg(5, 0); err == nil {
		t.Fatal("zero-contributor average accepted")
	}
}

func TestSumHeadroom(t *testing.T) {
	c, err := New(18, 50, 4) // domain ×10^4: encoded max = 320000
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxEncoded() != 320000 {
		t.Fatalf("MaxEncoded = %d", c.MaxEncoded())
	}
	n32, err := c.SumHeadroom(32)
	if err != nil {
		t.Fatal(err)
	}
	// 2^32−1 / 320000 ≈ 13421 sources fit a 32-bit sum field.
	if n32 < 13000 || n32 > 14000 {
		t.Fatalf("32-bit headroom = %d", n32)
	}
	n64, err := c.SumHeadroom(64)
	if err != nil {
		t.Fatal(err)
	}
	if n64 <= n32 {
		t.Fatal("64-bit headroom not larger")
	}
	if _, err := c.SumHeadroom(0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestEndToEndWithSIES(t *testing.T) {
	// Negative temperatures through a real deployment: encode at sources,
	// aggregate, decode the verified sum.
	c, err := New(-30, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	q, sources, err := core.Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	agg := core.NewAggregator(q.Params().Field())
	readings := []float64{-25.5, -10.25, 3.75, 29.99}
	var final core.PSR
	var trueSum float64
	for i, reading := range readings {
		enc, err := c.Encode(reading)
		if err != nil {
			t.Fatal(err)
		}
		psr, err := sources[i].Encrypt(prf.Epoch(1), enc)
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
		trueSum += reading
	}
	res, err := q.Evaluate(1, final)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeSum(res.Sum, res.N)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueSum) > 1e-6 {
		t.Fatalf("signed SUM through SIES = %f, want %f", got, trueSum)
	}
}

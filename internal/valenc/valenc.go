// Package valenc implements the paper's value-encoding rule (§III-B): "we
// consider that all data values are positive integers (we can always encode
// other data types as positive integers via simple translation and scaling
// operations)".
//
// Two composable codecs cover the practical cases:
//
//   - FixedPoint scales a real reading by 10^d and truncates, turning d
//     decimal digits into integer precision (the domain-scaling mechanism of
//     the experiments).
//   - Offset translates a signed range [min, max] into [0, max−min]. Because
//     SUM is linear, the querier recovers the true sum from the encoded sum
//     as Σv = Σenc + n·min, where n is the number of contributors — so the
//     protocol still computes the *exact* signed sum.
//
// Both directions are exact by construction: encoding is injective on the
// declared domain and decoding inverts it given the contributor count.
package valenc

import (
	"errors"
	"fmt"
	"math"
)

// Codec maps application readings onto the protocol's positive integers and
// recovers aggregate sums.
type Codec struct {
	scale  float64 // 10^decimals
	min    float64 // domain lower bound (translation offset)
	max    float64 // domain upper bound
	maxEnc uint64  // largest encoded value, for layout sizing
}

// New constructs a codec for real readings in [min, max] with the given
// number of preserved decimal digits (0–9).
func New(min, max float64, decimals int) (*Codec, error) {
	if math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0) {
		return nil, errors.New("valenc: bounds must be finite")
	}
	if min >= max {
		return nil, fmt.Errorf("valenc: empty domain [%g, %g]", min, max)
	}
	if decimals < 0 || decimals > 9 {
		return nil, errors.New("valenc: decimals must be in [0, 9]")
	}
	scale := math.Pow(10, float64(decimals))
	span := (max - min) * scale
	if span >= math.MaxUint64/2 {
		return nil, errors.New("valenc: domain too wide for exact encoding")
	}
	return &Codec{scale: scale, min: min, max: max, maxEnc: uint64(math.Ceil(span))}, nil
}

// MaxEncoded returns the largest integer the codec emits; use it to size the
// SIES layout (32- vs 64-bit value field) and check SUM headroom.
func (c *Codec) MaxEncoded() uint64 { return c.maxEnc }

// Encode maps a reading into the protocol domain. Readings outside
// [min, max] are rejected rather than silently clamped: a sensor reporting
// impossible values is a fault the application must see.
func (c *Codec) Encode(reading float64) (uint64, error) {
	if math.IsNaN(reading) || reading < c.min || reading > c.max {
		return 0, fmt.Errorf("valenc: reading %g outside domain [%g, %g]", reading, c.min, c.max)
	}
	return uint64(math.Round((reading - c.min) * c.scale)), nil
}

// Decode inverts Encode for a single reading.
func (c *Codec) Decode(enc uint64) float64 {
	return float64(enc)/c.scale + c.min
}

// DecodeSum recovers the true sum of n encoded readings:
// Σv = Σenc/scale + n·min.
func (c *Codec) DecodeSum(encSum uint64, n int) (float64, error) {
	if n < 0 {
		return 0, errors.New("valenc: negative contributor count")
	}
	return float64(encSum)/c.scale + float64(n)*c.min, nil
}

// DecodeAvg recovers the true average of n encoded readings.
func (c *Codec) DecodeAvg(encSum uint64, n int) (float64, error) {
	if n <= 0 {
		return 0, errors.New("valenc: average needs at least one contributor")
	}
	s, err := c.DecodeSum(encSum, n)
	if err != nil {
		return 0, err
	}
	return s / float64(n), nil
}

// SumHeadroom returns the largest contributor count whose encoded sum is
// guaranteed to fit a value field of the given bit width — the check an
// operator runs when sizing a deployment (32-bit fields hold sums < 2^32).
func (c *Codec) SumHeadroom(valueBits int) (int, error) {
	if valueBits <= 0 || valueBits > 64 {
		return 0, errors.New("valenc: value width must be in (0, 64]")
	}
	if c.maxEnc == 0 {
		return math.MaxInt32, nil
	}
	var limit uint64
	if valueBits == 64 {
		limit = math.MaxUint64
	} else {
		limit = 1<<uint(valueBits) - 1
	}
	n := limit / c.maxEnc
	if n > math.MaxInt32 {
		n = math.MaxInt32
	}
	return int(n), nil
}

package cmt

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/sies/sies/internal/prf"
)

func setup(t testing.TB, n int) (*Querier, []*Source) {
	t.Helper()
	keys := make([][]byte, n)
	sources := make([]*Source, n)
	for i := range keys {
		k, err := prf.NewLongTermKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
		sources[i] = NewSource(i, k)
	}
	q, err := NewQuerier(keys)
	if err != nil {
		t.Fatal(err)
	}
	return q, sources
}

func TestArith160AgainstBig(t *testing.T) {
	mod := new(big.Int).Lsh(big.NewInt(1), 160)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		var a, b Ciphertext
		r.Read(a[:])
		r.Read(b[:])
		ab := new(big.Int).SetBytes(a[:])
		bb := new(big.Int).SetBytes(b[:])

		sum := add160(a, b)
		want := new(big.Int).Mod(new(big.Int).Add(ab, bb), mod)
		if new(big.Int).SetBytes(sum[:]).Cmp(want) != 0 {
			t.Fatalf("add160 mismatch at %d", i)
		}

		diff := sub160(a, b)
		want = new(big.Int).Mod(new(big.Int).Sub(ab, bb), mod)
		if new(big.Int).SetBytes(diff[:]).Cmp(want) != 0 {
			t.Fatalf("sub160 mismatch at %d", i)
		}
	}
}

func TestUint64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 255, 1 << 32, ^uint64(0)} {
		got, ok := fromUint64(v).toUint64()
		if !ok || got != v {
			t.Fatalf("round trip %d → %d (%v)", v, got, ok)
		}
	}
	var big Ciphertext
	big[0] = 1
	if _, ok := big.toUint64(); ok {
		t.Fatal("160-bit value claimed to fit uint64")
	}
}

func TestEndToEnd(t *testing.T) {
	q, sources := setup(t, 10)
	r := rand.New(rand.NewSource(2))
	for epoch := prf.Epoch(0); epoch < 5; epoch++ {
		var agg Ciphertext
		var want uint64
		for _, s := range sources {
			v := uint64(r.Intn(5000))
			agg = Aggregate(agg, s.Encrypt(epoch, v))
			want += v
		}
		got, err := q.Decrypt(epoch, agg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("epoch %d: SUM = %d, want %d", epoch, got, want)
		}
	}
}

func TestSubsetDecrypt(t *testing.T) {
	q, sources := setup(t, 5)
	agg := Aggregate(sources[1].Encrypt(3, 10), sources[4].Encrypt(3, 20))
	got, err := q.Decrypt(3, agg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("subset SUM = %d", got)
	}
	if _, err := q.Decrypt(3, agg, []int{1, 9}); err == nil {
		t.Fatal("out-of-range contributor accepted")
	}
}

func TestNoIntegrity(t *testing.T) {
	// The defining weakness of CMT (paper §II-D): an adversary adds v' to
	// the aggregate and the querier happily returns SUM+v'.
	q, sources := setup(t, 3)
	var agg Ciphertext
	for _, s := range sources {
		agg = Aggregate(agg, s.Encrypt(1, 100))
	}
	tampered := add160(agg, fromUint64(555))
	got, err := q.Decrypt(1, tampered, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 300+555 {
		t.Fatalf("tampered SUM = %d, want %d (undetected injection)", got, 855)
	}
}

func TestWrongEpochYieldsGarbage(t *testing.T) {
	q, sources := setup(t, 3)
	var agg Ciphertext
	for _, s := range sources {
		agg = Aggregate(agg, s.Encrypt(1, 100))
	}
	// Decrypting with epoch-2 keys gives a (detectable only by luck)
	// overflowing value; either an error or a wrong sum is acceptable, but
	// it must not equal the true sum.
	got, err := q.Decrypt(2, agg, nil)
	if err == nil && got == 300 {
		t.Fatal("stale ciphertext decrypted to the correct sum")
	}
}

func TestFreshKeysPerEpoch(t *testing.T) {
	_, sources := setup(t, 1)
	if sources[0].Encrypt(1, 5) == sources[0].Encrypt(2, 5) {
		t.Fatal("same ciphertext across epochs")
	}
}

func TestNewQuerierValidation(t *testing.T) {
	if _, err := NewQuerier(nil); err == nil {
		t.Fatal("empty key ring accepted")
	}
}

func TestSourceID(t *testing.T) {
	s := NewSource(7, []byte("k"))
	if s.ID() != 7 {
		t.Fatalf("ID = %d", s.ID())
	}
}

func BenchmarkSourceEncrypt(b *testing.B) {
	k := make([]byte, prf.LongTermKeySize)
	s := NewSource(0, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Encrypt(prf.Epoch(i), 4242)
	}
}

func BenchmarkAggregate(b *testing.B) {
	var a, c Ciphertext
	for i := range a {
		a[i], c[i] = byte(i), byte(255-i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a = add160(a, c)
	}
}

func BenchmarkQuerierDecrypt1024(b *testing.B) {
	keys := make([][]byte, 1024)
	sources := make([]*Source, 1024)
	for i := range keys {
		keys[i] = make([]byte, prf.LongTermKeySize)
		keys[i][0] = byte(i)
		keys[i][1] = byte(i >> 8)
		sources[i] = NewSource(i, keys[i])
	}
	q, err := NewQuerier(keys)
	if err != nil {
		b.Fatal(err)
	}
	var agg Ciphertext
	for _, s := range sources {
		agg = Aggregate(agg, s.Encrypt(1, 100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Decrypt(1, agg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Package cmt implements the CMT benchmark scheme (Castelluccia, Mykletun,
// Tsudik — "Efficient aggregation of encrypted data in wireless sensor
// networks", MobiQuitous 2005), as described in §II-D of the SIES paper.
//
// Each source i shares a long-term key kᵢ with the querier and encrypts its
// reading as cᵢ = vᵢ + k_{i,t} (mod 2^160), where the per-epoch key
// k_{i,t} = HM1(kᵢ, t) provides freshness (paper §V, cost model of CMT).
// Aggregators add ciphertexts modulo 2^160; the querier recovers
// Σ vᵢ = c − Σ k_{i,t}. The scheme is confidentiality-only: any party can
// add a delta to a ciphertext and shift the decrypted SUM undetected, which
// the attack tests demonstrate.
package cmt

import (
	"errors"
	"fmt"

	"github.com/sies/sies/internal/prf"
)

// CiphertextSize is the wire size of a CMT ciphertext: 20 bytes, matching
// the paper's communication-cost analysis (Table V).
const CiphertextSize = 20

// Ciphertext is a 160-bit residue stored big-endian.
type Ciphertext [CiphertextSize]byte

// add160 returns a+b mod 2^160 over big-endian 20-byte arrays.
func add160(a, b Ciphertext) Ciphertext {
	var out Ciphertext
	var carry uint16
	for i := CiphertextSize - 1; i >= 0; i-- {
		s := uint16(a[i]) + uint16(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// sub160 returns a−b mod 2^160.
func sub160(a, b Ciphertext) Ciphertext {
	var out Ciphertext
	var borrow int16
	for i := CiphertextSize - 1; i >= 0; i-- {
		d := int16(a[i]) - int16(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// fromUint64 embeds v into the low-order bytes of a residue.
func fromUint64(v uint64) Ciphertext {
	var c Ciphertext
	for i := 0; i < 8; i++ {
		c[CiphertextSize-1-i] = byte(v >> (8 * i))
	}
	return c
}

// toUint64 extracts the low 8 bytes and reports whether the higher bytes are
// all zero (i.e. the value fits a uint64).
func (c Ciphertext) toUint64() (uint64, bool) {
	for i := 0; i < CiphertextSize-8; i++ {
		if c[i] != 0 {
			return 0, false
		}
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(c[CiphertextSize-8+i])
	}
	return v, true
}

// Source encrypts readings under a per-source long-term key.
type Source struct {
	id int
	ki []byte
}

// NewSource returns source i holding long-term key ki.
func NewSource(id int, ki []byte) *Source { return &Source{id: id, ki: ki} }

// ID returns the source identifier.
func (s *Source) ID() int { return s.id }

// Encrypt computes cᵢ = v + HM1(kᵢ, t) mod 2^160.
func (s *Source) Encrypt(t prf.Epoch, v uint64) Ciphertext {
	key := prf.HM1Epoch(s.ki, t)
	return add160(fromUint64(v), Ciphertext(key))
}

// Aggregate adds ciphertexts modulo 2^160 — the whole merging phase.
func Aggregate(cs ...Ciphertext) Ciphertext {
	var acc Ciphertext
	for _, c := range cs {
		acc = add160(acc, c)
	}
	return acc
}

// Querier decrypts aggregates using the full key ring.
type Querier struct {
	keys [][]byte
}

// NewQuerier returns a querier holding the kᵢ of all n sources.
func NewQuerier(keys [][]byte) (*Querier, error) {
	if len(keys) == 0 {
		return nil, errors.New("cmt: querier needs at least one source key")
	}
	return &Querier{keys: keys}, nil
}

// Decrypt recovers Σ vᵢ from the aggregate of the given contributors (nil
// means all). CMT has no integrity check: whatever the subtraction yields is
// returned, which is exactly the weakness the SIES paper targets.
func (q *Querier) Decrypt(t prf.Epoch, agg Ciphertext, contributors []int) (uint64, error) {
	ids := contributors
	if ids == nil {
		ids = make([]int, len(q.keys))
		for i := range ids {
			ids[i] = i
		}
	}
	var keySum Ciphertext
	for _, id := range ids {
		if id < 0 || id >= len(q.keys) {
			return 0, fmt.Errorf("cmt: contributor %d out of range", id)
		}
		keySum = add160(keySum, Ciphertext(prf.HM1Epoch(q.keys[id], t)))
	}
	plain := sub160(agg, keySum)
	v, ok := plain.toUint64()
	if !ok {
		return 0, errors.New("cmt: decrypted SUM exceeds 64 bits (wrong epoch, contributors, or tampering)")
	}
	return v, nil
}

package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame builds one well-formed journal record, for seeding the fuzz corpus.
func frame(typ uint8, payload []byte) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, uint32(1+len(payload)))
	b = append(b, typ)
	b = append(b, payload...)
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// FuzzJournalReplay throws arbitrary bytes at the replay parser. Whatever the
// input, replay must not panic, must report a clean-prefix offset within the
// input, and re-replaying exactly that prefix must reproduce the same records
// with no error — the property torn-tail truncation relies on.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(1, []byte("hello")))
	f.Add(append(frame(1, []byte("a")), frame(2, bytes.Repeat([]byte{0x55}, 300))...))
	f.Add(append(frame(3, nil), 0xde, 0xad)) // good record + torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	corrupted := frame(4, []byte("corrupt me"))
	corrupted[len(corrupted)-1] ^= 1
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := ReplayJournal(bytes.NewReader(data))
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside input of %d bytes", good, len(data))
		}
		if err != nil && len(data) == 0 {
			t.Fatalf("empty input errored: %v", err)
		}
		// The clean prefix must replay identically and without error: this is
		// the post-truncation state the journal reopens into.
		recs2, good2, err2 := ReplayJournal(bytes.NewReader(data[:good]))
		if err2 != nil {
			t.Fatalf("clean prefix replay errored: %v", err2)
		}
		if good2 != good || len(recs2) != len(recs) {
			t.Fatalf("prefix replay diverged: %d/%d bytes, %d/%d records",
				good2, good, len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].Type != recs2[i].Type || !bytes.Equal(recs[i].Payload, recs2[i].Payload) {
				t.Fatalf("record %d diverged on replay", i)
			}
		}
	})
}

package durable

import (
	"os"
	"path/filepath"
)

// Conventional file names inside a node's state directory.
const (
	SnapshotName = "state.snap"
	JournalName  = "epochs.wal"
)

// Store is one node's state directory: the latest checkpoint snapshot plus
// the journal of records appended since. It only sequences the two files —
// what the snapshot payload and journal records mean belongs to the node.
type Store struct {
	dir     string
	journal *Journal
}

// Open opens (creating if needed) the state directory and replays the
// journal, returning the records appended since the last checkpoint. The
// snapshot is read separately via LoadSnapshot so a corrupt snapshot and a
// healthy journal fail independently.
func Open(dir string) (*Store, []Record, error) {
	j, recs, err := OpenJournal(filepath.Join(ensureDir(dir), JournalName))
	if err != nil {
		return nil, nil, err
	}
	return &Store{dir: dir, journal: j}, recs, nil
}

// ensureDir best-effort creates dir; OpenJournal surfaces the real error if
// creation failed.
func ensureDir(dir string) string {
	_ = os.MkdirAll(dir, 0o755)
	return dir
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Journal returns the write-ahead journal for appends and sync control.
func (s *Store) Journal() *Journal { return s.journal }

// LoadSnapshot reads the last checkpoint (ErrNoSnapshot on a fresh dir).
func (s *Store) LoadSnapshot() (uint32, []byte, error) {
	return ReadSnapshot(s.dir, SnapshotName)
}

// Checkpoint atomically writes a new snapshot and then resets the journal.
// The ordering is the crash-consistency contract: a crash after the snapshot
// rename but before the reset leaves journal records the snapshot already
// covers, which idempotent replay re-applies harmlessly; a crash before the
// rename leaves the old snapshot + full journal. Neither loses state.
func (s *Store) Checkpoint(version uint32, payload []byte) error {
	if err := s.journal.Sync(); err != nil {
		return err
	}
	if err := WriteSnapshot(s.dir, SnapshotName, version, payload); err != nil {
		return err
	}
	return s.journal.Reset()
}

// Close syncs and closes the journal. Idempotent.
func (s *Store) Close() error { return s.journal.Close() }

// Abandon closes the journal without syncing — see Journal.Abandon.
func (s *Store) Abandon() error { return s.journal.Abandon() }

// CrashAbandon drops unsynced journal records and closes without syncing —
// see Journal.AbandonUnsynced. This is the power-loss-grade crash model.
func (s *Store) CrashAbandon() error { return s.journal.AbandonUnsynced() }

package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("the quick brown fox")
	if err := WriteSnapshot(dir, SnapshotName, 3, payload); err != nil {
		t.Fatal(err)
	}
	v, got, err := ReadSnapshot(dir, SnapshotName)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("got version %d payload %q", v, got)
	}
}

func TestSnapshotMissing(t *testing.T) {
	if _, _, err := ReadSnapshot(t.TempDir(), SnapshotName); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing snapshot: %v", err)
	}
}

func TestSnapshotReplaceAtomic(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, SnapshotName, 1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, SnapshotName, 2, []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, got, err := ReadSnapshot(dir, SnapshotName)
	if err != nil || v != 2 || string(got) != "new" {
		t.Fatalf("after replace: v=%d %q %v", v, got, err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory litter: %v", entries)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, SnapshotName, 1, []byte("payload bytes here")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 1; return b }, // bit flip
		func(b []byte) []byte { return b[:len(b)-3] },                                      // truncation
		func(b []byte) []byte { b = append([]byte(nil), b...); b[0] = 'X'; return b },      // bad magic
	} {
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadSnapshot(dir, SnapshotName); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corruption not detected: %v", err)
		}
	}
}

func openJournal(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, recs := openJournal(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Type: 1, Payload: []byte("one")},
		{Type: 2, Payload: nil},
		{Type: 7, Payload: bytes.Repeat([]byte{0xab}, 1000)},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := openJournal(t, path)
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != want[i].Type || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if j2.TruncatedBytes() != 0 {
		t.Fatalf("clean journal reported %d torn bytes", j2.TruncatedBytes())
	}
}

// TestJournalTornTail is the crash-mid-append case: the final record is cut
// short; replay must recover every record before it and truncate the tail so
// subsequent appends extend a clean journal.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, _ := openJournal(t, path)
	for i := 0; i < 5; i++ {
		if err := j.Append(Record{Type: 1, Payload: []byte{byte(i), 1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	for cut := 1; cut <= 12; cut++ { // tear at various depths into the last record
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs := openJournal(t, torn)
		if len(recs) != 4 {
			t.Fatalf("cut %d: replayed %d records, want 4", cut, len(recs))
		}
		if j2.TruncatedBytes() == 0 {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		// The journal must be appendable and replayable after truncation.
		if err := j2.Append(Record{Type: 9, Payload: []byte("after")}); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		j3, recs := openJournal(t, torn)
		if len(recs) != 5 || recs[4].Type != 9 {
			t.Fatalf("cut %d: post-truncate replay %d records", cut, len(recs))
		}
		j3.Close()
	}
}

// TestJournalCorruptMiddle: a bit flip in an interior record cuts replay at
// that record (everything after is unreachable without its framing), and open
// truncates there.
func TestJournalCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, _ := openJournal(t, path)
	if err := j.Append(Record{Type: 1, Payload: []byte("first record")}); err != nil {
		t.Fatal(err)
	}
	firstLen := j.Size()
	if err := j.Append(Record{Type: 2, Payload: []byte("second record")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: 3, Payload: []byte("third record")}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[firstLen+7] ^= 0x40 // flip a bit inside the second record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := openJournal(t, path)
	defer j2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "first record" {
		t.Fatalf("replay after interior corruption: %d records", len(recs))
	}
	if j2.Size() != firstLen {
		t.Fatalf("journal not truncated at corruption: size %d want %d", j2.Size(), firstLen)
	}
}

func TestJournalReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, _ := openJournal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Type: 1, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if j.Size() != 0 {
		t.Fatalf("size after reset: %d", j.Size())
	}
	if err := j.Append(Record{Type: 5, Payload: []byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, recs := openJournal(t, path)
	defer j2.Close()
	if len(recs) != 1 || recs[0].Type != 5 {
		t.Fatalf("replay after reset: %+v", recs)
	}
}

func TestJournalSyncEveryBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, _ := openJournal(t, path)
	defer j.Close()
	j.SyncEvery = 8
	for i := 0; i < 20; i++ {
		if err := j.Append(Record{Type: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCheckpointCycle(t *testing.T) {
	dir := t.TempDir()
	s, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh store replayed %d records", len(recs))
	}
	if _, _, err := s.LoadSnapshot(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("fresh store snapshot: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Journal().Append(Record{Type: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(1, []byte("checkpointed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Journal().Append(Record{Type: 2, Payload: []byte("post")}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, payload, err := s2.LoadSnapshot()
	if err != nil || v != 1 || string(payload) != "checkpointed" {
		t.Fatalf("snapshot after reopen: v=%d %q %v", v, payload, err)
	}
	if len(recs) != 1 || recs[0].Type != 2 {
		t.Fatalf("journal after checkpoint: %+v", recs)
	}
}

// TestStoreSnapshotNewerThanJournal models a crash between Checkpoint's
// snapshot rename and journal reset: the journal still holds records the
// snapshot covers. The store surfaces both; the consumer's idempotent replay
// is what makes this safe, so here we only assert nothing is lost or cut.
func TestStoreSnapshotNewerThanJournal(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Journal().Append(Record{Type: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the torn checkpoint: snapshot written, reset never happened.
	if err := WriteSnapshot(dir, SnapshotName, 7, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, payload, err := s2.LoadSnapshot()
	if err != nil || v != 7 || string(payload) != "newer" {
		t.Fatalf("snapshot: v=%d %q %v", v, payload, err)
	}
	if len(recs) != 3 {
		t.Fatalf("journal records: %d, want 3 (stale but intact)", len(recs))
	}
}

func TestReplayJournalRejectsGarbageLength(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}
	recs, good, err := ReplayJournal(bytes.NewReader(raw))
	if len(recs) != 0 || good != 0 || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage length: %d recs, good=%d, err=%v", len(recs), good, err)
	}
}

// Package durable is the crash-recovery substrate for long-lived SIES nodes:
// an atomic snapshot store plus an append-only write-ahead journal.
//
// The paper's exactness guarantee is per-epoch, but the state that protects
// it across epochs — the quarantine registry, the epoch high-water marks that
// drive resync, pending partial SUMs — lives in node memory. A querier or
// aggregator crash must not silently re-admit confirmed tamperers, re-answer
// a committed epoch, or double-count a contribution after restart. This
// package gives each node a per-role state directory holding:
//
//	state.snap — the last checkpoint: a versioned, CRC-guarded snapshot,
//	             replaced atomically (temp file + fsync + rename + dir fsync)
//	epochs.wal — the journal of per-epoch records appended since that
//	             checkpoint, each CRC-framed; replay truncates a torn tail
//
// Recovery is snapshot ⊕ journal: restore the snapshot, then re-apply the
// journal records in order. Consumers make replay idempotent (re-applying a
// record already folded into the snapshot is a no-op), which lets Checkpoint
// order its two steps — write the new snapshot, then reset the journal —
// without a crash window: dying between the steps merely replays records the
// snapshot already covers.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrNoSnapshot reports a ReadSnapshot on a directory that has never been
// checkpointed — a fresh node, not an error condition.
var ErrNoSnapshot = errors.New("durable: no snapshot")

// ErrCorrupt reports a snapshot or journal record whose framing or checksum
// does not verify. For journals the corrupt tail is truncated on open; for
// snapshots the caller decides (typically: start fresh and log loudly).
var ErrCorrupt = errors.New("durable: corrupt record")

// snapMagic brands snapshot files so a journal (or anything else) handed to
// ReadSnapshot is rejected before its bytes are interpreted.
var snapMagic = [8]byte{'S', 'I', 'E', 'S', 'S', 'N', 'A', 'P'}

// Snapshot file layout (integers big-endian):
//
//	magic(8) version(u32) len(u32) payload crc32(u32)
//
// The CRC covers version ‖ len ‖ payload, so a truncated or bit-flipped
// snapshot fails closed instead of restoring garbage state.

// WriteSnapshot atomically replaces dir/name with a snapshot of payload.
// The write path is crash-consistent: the bytes are written to a temp file in
// the same directory, fsynced, renamed over the target, and the directory is
// fsynced so the rename itself is durable. A crash at any point leaves either
// the old snapshot or the new one, never a mix.
func WriteSnapshot(dir, name string, version uint32, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := make([]byte, 0, len(snapMagic)+4+4+len(payload)+4)
	buf = append(buf, snapMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, version)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.ChecksumIEEE(buf[len(snapMagic):])
	buf = binary.BigEndian.AppendUint32(buf, sum)

	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// ReadSnapshot loads and verifies dir/name, returning its version and
// payload. A missing file returns ErrNoSnapshot; bad framing or checksum
// returns an error wrapping ErrCorrupt.
func ReadSnapshot(dir, name string) (uint32, []byte, error) {
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, ErrNoSnapshot
	}
	if err != nil {
		return 0, nil, err
	}
	if len(raw) < len(snapMagic)+4+4+4 || [8]byte(raw[:8]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: snapshot framing", ErrCorrupt)
	}
	body := raw[len(snapMagic) : len(raw)-4]
	want := binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, fmt.Errorf("%w: snapshot checksum", ErrCorrupt)
	}
	version := binary.BigEndian.Uint32(body[0:4])
	n := binary.BigEndian.Uint32(body[4:8])
	if int(n) != len(body)-8 {
		return 0, nil, fmt.Errorf("%w: snapshot length %d ≠ payload %d", ErrCorrupt, n, len(body)-8)
	}
	return version, append([]byte(nil), body[8:]...), nil
}

// syncDir fsyncs a directory so a completed rename survives power loss. Some
// filesystems reject directory fsync; that degrades durability, not
// correctness, so those errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

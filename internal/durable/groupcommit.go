package durable

import (
	"errors"
	"sync"
)

// Group commit: concurrent committers append their records under the journal
// lock (one Write each, strictly ordered), then call SyncTo with the end
// offset their append returned. The first SyncTo to arrive becomes the
// leader of a sync round — it snapshots the journal's current end offset and
// issues one fsync covering every append that landed before the snapshot.
// Later committers whose offsets that round covers are acknowledged by the
// same fsync without issuing their own; committers that land mid-round wait
// for the next. The durability contract per committer is unchanged from
// Append with SyncEvery=1 — SyncTo returns nil only once the caller's record
// is on stable storage — but k concurrent commits cost ~1 fsync instead of k.

// JournalStats is a snapshot of the journal's append/sync counters.
type JournalStats struct {
	Appends     int   // records appended since open/reset
	Replayed    int   // records recovered at open
	Syncs       int64 // fsyncs issued (inline, Sync, and SyncTo rounds)
	SharedSyncs int64 // SyncTo acks satisfied by a round another caller led
}

// AppendNoSync frames and writes rec without fsyncing, returning the journal
// end offset after the record. Pass that offset to SyncTo to make the record
// durable; until then a power-loss-grade crash (AbandonUnsynced) drops it.
func (j *Journal) AppendNoSync(rec Record) (int64, error) {
	if len(rec.Payload) > MaxRecordSize {
		return 0, errors.New("durable: record payload exceeds limit")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(rec)
}

// SyncTo blocks until every byte up to offset is on stable storage,
// returning nil only then. Concurrent callers share fsyncs: one leads a sync
// round, the rest ride it or wait for the next. A caller whose leader fails
// retries as leader itself, so an fsync error is reported to someone rather
// than swallowed.
func (j *Journal) SyncTo(offset int64) error {
	j.syncMu.Lock()
	if j.syncCond == nil {
		j.syncCond = sync.NewCond(&j.syncMu)
	}
	for {
		if offset <= j.synced {
			j.shared++
			j.syncMu.Unlock()
			return nil
		}
		if !j.syncing {
			break // no round in flight: lead one
		}
		j.syncCond.Wait()
	}
	j.syncing = true
	hook := j.beforeSync
	j.syncMu.Unlock()

	if hook != nil {
		hook()
	}

	// Snapshot the covered range and file handle under mu; fsync outside all
	// locks so appends keep flowing while the disk works.
	j.mu.Lock()
	f := j.f
	end := j.goodOffset
	j.mu.Unlock()

	var err error
	if f == nil {
		err = errors.New("durable: journal closed")
	} else {
		err = f.Sync()
	}

	j.syncMu.Lock()
	j.syncing = false
	if err == nil {
		if end > j.synced {
			j.synced = end
		}
		j.syncs++
	}
	j.syncCond.Broadcast()
	j.syncMu.Unlock()
	return err
}

// AppendSync appends rec and blocks until it is durable, sharing the fsync
// with any concurrent committers. The single-caller cost is identical to
// Append with SyncEvery=1.
func (j *Journal) AppendSync(rec Record) error {
	off, err := j.AppendNoSync(rec)
	if err != nil {
		return err
	}
	return j.SyncTo(off)
}

// SyncedOffset reports how many bytes from offset 0 are known durable.
func (j *Journal) SyncedOffset() int64 {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	return j.synced
}

// Stats returns a snapshot of the journal's append/sync counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	appends, replayed := j.appended, j.replayed
	j.mu.Unlock()
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	return JournalStats{Appends: appends, Replayed: replayed, Syncs: j.syncs, SharedSyncs: j.shared}
}

// SetBeforeSync installs a hook the next SyncTo leader runs after claiming
// its round but before the fsync — the window where appended records are not
// yet durable. Crash tests aim kill -9 here. Pass nil to clear.
func (j *Journal) SetBeforeSync(fn func()) {
	j.syncMu.Lock()
	j.beforeSync = fn
	j.syncMu.Unlock()
}

// AbandonUnsynced truncates the journal to its last fsynced offset and
// closes it without syncing — the power-loss-grade crash model. Unlike
// Abandon (process kill: OS-buffered writes survive), records appended but
// not yet covered by an fsync are gone, exactly what group commit risks in
// the append-to-fsync window. Idempotent with Close/Abandon.
func (j *Journal) AbandonUnsynced() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.syncMu.Lock()
	synced := j.synced
	j.syncMu.Unlock()
	var err error
	if synced < j.goodOffset {
		err = j.f.Truncate(synced)
		j.goodOffset = synced
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// MaxRecordSize bounds one journal record's payload. It is generous for the
// records the nodes write (an epoch commit is tens of bytes, a quarantine
// snapshot a few KiB) while rejecting garbage length prefixes on replay
// before they can drive a giant allocation.
const MaxRecordSize = 1 << 24

// Record is one journal entry: a consumer-defined type tag plus its payload.
type Record struct {
	Type    uint8
	Payload []byte
}

// Record framing (integers big-endian):
//
//	len(u32) type(u8) payload crc32(u32)
//
// len counts type+payload; the CRC covers len ‖ type ‖ payload. Replay stops
// at the first record that is short, oversized or fails its checksum — the
// torn tail a crash mid-append leaves behind — and Open truncates the file
// there so the journal is clean for the next append.

// Journal is an append-only write-ahead log. Appends are serialised; Sync
// policy is the caller's: Append never fsyncs by itself unless SyncEvery is 1
// (the default), so consumers can batch cheap records and fsync on the
// records that carry commit semantics.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	buf  []byte

	// SyncEvery fsyncs after every n-th Append (1 = every append, the
	// default; 0 behaves like 1). Records between syncs can be lost to a
	// crash — safe only for records whose loss the protocol already
	// tolerates (e.g. contributions that children re-send).
	SyncEvery  int
	sinceSync  int
	appended   int // records appended since open/reset (telemetry, tests)
	replayed   int // records recovered at open (telemetry, tests)
	truncated  int64
	goodOffset int64

	// Group-commit state (see groupcommit.go). syncMu orders sync rounds and
	// guards everything below; it is only ever acquired after mu when both are
	// held, and SyncTo never holds it across a mu acquisition, so the lock
	// order mu → syncMu is acyclic.
	syncMu     sync.Mutex
	syncCond   *sync.Cond
	syncing    bool  // a leader's fsync round is in flight
	synced     int64 // bytes known durable (fsynced) from offset 0
	syncs      int64 // fsyncs issued (inline, Sync, and SyncTo rounds)
	shared     int64 // SyncTo acks satisfied without leading an fsync
	beforeSync func()
}

// OpenJournal opens (creating if needed) the journal at path, replays every
// intact record and truncates any torn tail. The returned records are in
// append order; re-applying them must be the caller's idempotent recovery.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, good, err := ReplayJournal(bufio.NewReader(f))
	if err != nil && !errors.Is(err, ErrCorrupt) {
		f.Close()
		return nil, nil, err
	}
	st, serr := f.Stat()
	if serr != nil {
		f.Close()
		return nil, nil, serr
	}
	j := &Journal{f: f, path: path, SyncEvery: 1, replayed: len(recs), goodOffset: good, synced: good}
	if good < st.Size() {
		// Torn or corrupt tail: cut it so the next append starts on a clean
		// record boundary instead of extending garbage.
		j.truncated = st.Size() - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, recs, nil
}

// ReplayJournal parses records from r until EOF or the first damaged record,
// returning the intact records and the byte offset where the clean prefix
// ends. A damaged record reports ErrCorrupt alongside everything recovered
// before it; a clean EOF (including mid-record truncation, the torn-tail
// case) returns nil error.
func ReplayJournal(r io.Reader) ([]Record, int64, error) {
	var (
		recs []Record
		good int64
		hdr  [5]byte
	)
	torn := func(err error) (bool, error) {
		if err == nil {
			return false, nil
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return true, nil // clean EOF or a record torn by a crash mid-append
		}
		return false, err // a real read error, not a torn tail
	}
	for {
		if _, err := io.ReadFull(r, hdr[:4]); err != nil {
			_, err = torn(err)
			return recs, good, err
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		if n < 1 || n > MaxRecordSize+1 {
			return recs, good, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
		}
		if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
			_, err = torn(err)
			return recs, good, err
		}
		body := make([]byte, n-1+4) // payload + crc
		if _, err := io.ReadFull(r, body); err != nil {
			_, err = torn(err)
			return recs, good, err
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[:5])
		crc.Write(body[:n-1])
		if crc.Sum32() != binary.BigEndian.Uint32(body[n-1:]) {
			return recs, good, fmt.Errorf("%w: record checksum", ErrCorrupt)
		}
		recs = append(recs, Record{Type: hdr[4], Payload: body[:n-1:n-1]})
		good += int64(4 + 1 + len(body))
	}
}

// appendLocked frames and writes rec in a single Write call (so a crash tears
// at most the final record), returning the journal's end offset after the
// write. Caller holds j.mu.
func (j *Journal) appendLocked(rec Record) (int64, error) {
	if j.f == nil {
		return 0, errors.New("durable: journal closed")
	}
	j.buf = j.buf[:0]
	j.buf = binary.BigEndian.AppendUint32(j.buf, uint32(1+len(rec.Payload)))
	j.buf = append(j.buf, rec.Type)
	j.buf = append(j.buf, rec.Payload...)
	sum := crc32.ChecksumIEEE(j.buf)
	j.buf = binary.BigEndian.AppendUint32(j.buf, sum)
	if _, err := j.f.Write(j.buf); err != nil {
		return 0, err
	}
	j.goodOffset += int64(len(j.buf))
	j.appended++
	j.sinceSync++
	return j.goodOffset, nil
}

// noteSynced records that every byte up to off is on stable storage. Safe to
// call with j.mu held (lock order mu → syncMu).
func (j *Journal) noteSynced(off int64) {
	j.syncMu.Lock()
	if off > j.synced {
		j.synced = off
	}
	j.syncs++
	if j.syncCond != nil {
		j.syncCond.Broadcast()
	}
	j.syncMu.Unlock()
}

// Append frames and writes rec, fsyncing per the SyncEvery policy.
func (j *Journal) Append(rec Record) error {
	if len(rec.Payload) > MaxRecordSize {
		return fmt.Errorf("durable: record payload %d exceeds limit", len(rec.Payload))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	end, err := j.appendLocked(rec)
	if err != nil {
		return err
	}
	every := j.SyncEvery
	if every < 1 {
		every = 1
	}
	if j.sinceSync >= every {
		j.sinceSync = 0
		if err := j.f.Sync(); err != nil {
			return err
		}
		j.noteSynced(end)
	}
	return nil
}

// Sync flushes appended records to stable storage immediately.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.sinceSync = 0
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.noteSynced(j.goodOffset)
	return nil
}

// Reset empties the journal — the step after a successful checkpoint has
// folded its records into the snapshot.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("durable: journal closed")
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	j.goodOffset, j.sinceSync, j.appended = 0, 0, 0
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.syncMu.Lock()
	j.synced = 0
	j.syncs++
	j.syncMu.Unlock()
	return nil
}

// Size returns the journal's clean length in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.goodOffset
}

// TruncatedBytes reports how many torn-tail bytes Open cut off — nonzero
// exactly when the previous process died mid-append.
func (j *Journal) TruncatedBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.truncated
}

// Abandon closes the journal without the final fsync — the crash-simulation
// path. Writes already issued remain visible to a reopen on the same machine
// (they live in the OS), exactly like a process kill; only records a power
// loss would take are unaccounted for. Idempotent with Close.
func (j *Journal) Abandon() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Close syncs and closes the journal. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

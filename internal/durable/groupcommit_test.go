package durable

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitSharedFsync races many committers through AppendSync and
// asserts (a) every record is durable and replays, (b) the commits shared
// fsyncs instead of paying one each. The BeforeSync hook widens the leader's
// round window so followers deterministically pile up behind it.
func TestGroupCommitSharedFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	j, recs := openJournal(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	j.SetBeforeSync(func() { time.Sleep(5 * time.Millisecond) })

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = j.AppendSync(Record{Type: 7, Payload: []byte(fmt.Sprintf("commit-%02d", i))})
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}

	st := j.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	if st.Syncs >= n {
		t.Fatalf("no fsync sharing: %d syncs for %d commits", st.Syncs, n)
	}
	if st.SharedSyncs == 0 {
		t.Fatalf("no commit rode a shared fsync (syncs=%d)", st.Syncs)
	}
	if got, want := j.SyncedOffset(), j.Size(); got != want {
		t.Fatalf("synced offset %d != size %d after all commits acked", got, want)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed := openJournal(t, path)
	if len(replayed) != n {
		t.Fatalf("replayed %d records, want %d", len(replayed), n)
	}
	seen := map[string]bool{}
	for _, r := range replayed {
		seen[string(r.Payload)] = true
	}
	for i := 0; i < n; i++ {
		if !seen[fmt.Sprintf("commit-%02d", i)] {
			t.Fatalf("commit-%02d lost", i)
		}
	}
}

// TestAppendSyncSerial checks the degenerate single-committer case: no
// concurrency means no sharing, and the durability contract matches Append
// with SyncEvery=1.
func TestAppendSyncSerial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serial.wal")
	j, _ := openJournal(t, path)
	const k = 5
	for i := 0; i < k; i++ {
		if err := j.AppendSync(Record{Type: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
		if got, want := j.SyncedOffset(), j.Size(); got != want {
			t.Fatalf("after commit %d: synced %d != size %d", i, got, want)
		}
	}
	if st := j.Stats(); st.Syncs != k || st.SharedSyncs != 0 {
		t.Fatalf("serial commits: syncs=%d shared=%d, want %d/0", st.Syncs, st.SharedSyncs, k)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed := openJournal(t, path)
	if len(replayed) != k {
		t.Fatalf("replayed %d, want %d", len(replayed), k)
	}
}

// TestAbandonUnsyncedDropsTail models the power-loss-grade crash: records
// appended but not yet covered by an fsync vanish; synced records survive and
// the reopened journal is clean (no torn tail to truncate).
func TestAbandonUnsyncedDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	j, _ := openJournal(t, path)
	if err := j.AppendSync(Record{Type: 1, Payload: []byte("durable")}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendNoSync(Record{Type: 1, Payload: []byte("in-window")}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendNoSync(Record{Type: 1, Payload: []byte("also-in-window")}); err != nil {
		t.Fatal(err)
	}
	if err := j.AbandonUnsynced(); err != nil {
		t.Fatal(err)
	}

	j2, replayed := openJournal(t, path)
	if len(replayed) != 1 || string(replayed[0].Payload) != "durable" {
		t.Fatalf("replayed %v, want only the durable record", replayed)
	}
	if j2.TruncatedBytes() != 0 {
		t.Fatalf("crash left a torn tail: %d bytes", j2.TruncatedBytes())
	}
	// The journal stays usable after the crash-reopen.
	if err := j2.AppendSync(Record{Type: 1, Payload: []byte("post-crash")}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, again := openJournal(t, path)
	if len(again) != 2 || string(again[1].Payload) != "post-crash" {
		t.Fatalf("post-crash state wrong: %v", again)
	}
}

// TestBeforeSyncCrashWindow arms the hook that crash tests use: the journal
// dies between a commit's append and its fsync, so SyncTo must fail (the
// commit was never acknowledged) and the record must not survive.
func TestBeforeSyncCrashWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "window.wal")
	j, _ := openJournal(t, path)
	if err := j.AppendSync(Record{Type: 1, Payload: []byte("before")}); err != nil {
		t.Fatal(err)
	}
	j.SetBeforeSync(func() { _ = j.AbandonUnsynced() })
	off, err := j.AppendNoSync(Record{Type: 1, Payload: []byte("doomed")})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SyncTo(off); err == nil {
		t.Fatal("SyncTo acknowledged a commit the crash dropped")
	}
	_, replayed := openJournal(t, path)
	if len(replayed) != 1 || string(replayed[0].Payload) != "before" {
		t.Fatalf("crash window leaked records: %v", replayed)
	}
}

// TestSyncToClosed verifies SyncTo reports failure rather than blocking or
// acking when the journal is gone.
func TestSyncToClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	j, _ := openJournal(t, path)
	off, err := j.AppendNoSync(Record{Type: 1, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Abandon(); err != nil {
		t.Fatal(err)
	}
	if err := j.SyncTo(off); err == nil {
		t.Fatal("SyncTo succeeded on a closed journal")
	}
}

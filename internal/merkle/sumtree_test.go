package merkle

import (
	"math/rand"
	"testing"
)

func values(n int, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(r.Intn(5000))
	}
	return out
}

func TestBuildSumEmpty(t *testing.T) {
	if _, err := BuildSum(nil); err != ErrEmpty {
		t.Fatalf("empty build: %v", err)
	}
}

func TestSumTreeTotal(t *testing.T) {
	vs := values(100, 1)
	var want uint64
	for _, v := range vs {
		want += v
	}
	tr, err := BuildSum(vs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != want {
		t.Fatalf("Total = %d, want %d", tr.Total(), want)
	}
	if tr.Leaves() != 100 {
		t.Fatalf("Leaves = %d", tr.Leaves())
	}
}

func TestAllAuditsVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17, 64, 100} {
		vs := values(n, int64(n))
		tr, err := BuildSum(vs)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < n; id++ {
			p, err := tr.ProveSum(id)
			if err != nil {
				t.Fatal(err)
			}
			if !VerifySum(tr.Root(), tr.Total(), id, vs[id], p) {
				t.Fatalf("n=%d: audit for source %d failed", n, id)
			}
		}
	}
}

func TestAuditDetectsWrongValue(t *testing.T) {
	vs := values(16, 2)
	tr, err := BuildSum(vs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.ProveSum(5)
	if err != nil {
		t.Fatal(err)
	}
	if VerifySum(tr.Root(), tr.Total(), 5, vs[5]+1, p) {
		t.Fatal("modified reading passed the audit")
	}
}

func TestAuditDetectsWrongTotal(t *testing.T) {
	// The sum-consistency check: the committed root is honest but the
	// aggregator claims a different total.
	vs := values(16, 3)
	tr, err := BuildSum(vs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.ProveSum(0)
	if err != nil {
		t.Fatal(err)
	}
	if VerifySum(tr.Root(), tr.Total()+100, 0, vs[0], p) {
		t.Fatal("inflated total passed the audit")
	}
}

func TestAuditDetectsInconsistentCommitment(t *testing.T) {
	// An aggregator that inflates one sibling sum inside the tree produces a
	// root whose audits fail for the sources under the altered node.
	vs := values(8, 4)
	tr, err := BuildSum(vs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.ProveSum(2)
	if err != nil {
		t.Fatal(err)
	}
	p.Steps[0].Sum += 7 // lie about the sibling's value
	if VerifySum(tr.Root(), tr.Total(), 2, vs[2], p) {
		t.Fatal("inconsistent path sums passed the audit")
	}
}

func TestAuditWrongIndex(t *testing.T) {
	vs := values(8, 5)
	tr, err := BuildSum(vs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.ProveSum(2)
	if err != nil {
		t.Fatal(err)
	}
	if VerifySum(tr.Root(), tr.Total(), 3, vs[3], p) {
		t.Fatal("proof accepted for foreign id")
	}
	if _, err := tr.ProveSum(99); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestSumProofSize(t *testing.T) {
	tr, err := BuildSum(values(1024, 6))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.ProveSum(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 10 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Size() != 4+10*(DigestSize+8+1) {
		t.Fatalf("Size = %d", p.Size())
	}
}

func BenchmarkBuildSum1024(b *testing.B) {
	vs := values(1024, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSum(vs); err != nil {
			b.Fatal(err)
		}
	}
}

// Package merkle implements a Merkle hash tree (Merkle, CRYPTO 1989) — the
// commitment structure of the commit-and-attest secure-aggregation schemes
// the paper surveys in §II-B (SIA, SDAP, SecureDAV, …). Aggregators commit
// to the partial results they produce by publishing the root digest;
// individual sensors later audit their inclusion with an O(log n)
// authentication path.
package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// DigestSize is the size of tree digests (SHA-256).
const DigestSize = sha256.Size

// Digest is one tree node hash.
type Digest [DigestSize]byte

// Domain-separation prefixes: leaves and interior nodes hash differently so
// a leaf can never be reinterpreted as an interior node (second-preimage
// hardening).
const (
	leafPrefix     = 0x00
	interiorPrefix = 0x01
)

func hashLeaf(data []byte) Digest {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

func hashInterior(left, right Digest) Digest {
	h := sha256.New()
	h.Write([]byte{interiorPrefix})
	h.Write(left[:])
	h.Write(right[:])
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Tree is an immutable Merkle tree over a fixed leaf sequence. Odd levels
// promote the unpaired node unchanged (Bitcoin-style duplication is avoided
// to keep proofs unambiguous).
type Tree struct {
	levels [][]Digest // levels[0] = leaf digests, last = [root]
}

// ErrEmpty is returned when building over zero leaves.
var ErrEmpty = errors.New("merkle: tree needs at least one leaf")

// Build constructs the tree over the given leaf payloads.
func Build(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmpty
	}
	level := make([]Digest, len(leaves))
	for i, l := range leaves {
		level[i] = hashLeaf(l)
	}
	t := &Tree{levels: [][]Digest{level}}
	for len(level) > 1 {
		next := make([]Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashInterior(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promote the odd node
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree's root digest — the commitment.
func (t *Tree) Root() Digest { return t.levels[len(t.levels)-1][0] }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return len(t.levels[0]) }

// ProofStep is one sibling on an authentication path.
type ProofStep struct {
	Sibling Digest
	// Left reports whether the sibling sits to the left of the running hash.
	Left bool
}

// Proof is an authentication path from a leaf to the root.
type Proof struct {
	Index int
	Steps []ProofStep
}

// Size returns the proof's wire size in bytes (per step: digest + side bit,
// packed as one byte).
func (p Proof) Size() int { return 4 + len(p.Steps)*(DigestSize+1) }

// Prove returns the authentication path for leaf i.
func (t *Tree) Prove(i int) (Proof, error) {
	if i < 0 || i >= t.Leaves() {
		return Proof{}, fmt.Errorf("merkle: leaf %d out of range [0,%d)", i, t.Leaves())
	}
	p := Proof{Index: i}
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		var sib int
		if idx%2 == 0 {
			sib = idx + 1
		} else {
			sib = idx - 1
		}
		if sib < len(level) {
			p.Steps = append(p.Steps, ProofStep{Sibling: level[sib], Left: sib < idx})
		}
		// When the node is promoted unpaired, no step is emitted.
		idx /= 2
	}
	return p, nil
}

// Verify checks that leaf data sits at the proof's position under root.
func Verify(root Digest, leaf []byte, p Proof) bool {
	cur := hashLeaf(leaf)
	for _, step := range p.Steps {
		if step.Left {
			cur = hashInterior(step.Sibling, cur)
		} else {
			cur = hashInterior(cur, step.Sibling)
		}
	}
	return cur == root
}

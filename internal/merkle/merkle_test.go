package merkle

import (
	"fmt"
	"math/rand"
	"testing"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil); err != ErrEmpty {
		t.Fatalf("empty build: %v", err)
	}
}

func TestSingleLeaf(t *testing.T) {
	tr, err := Build(leaves(1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 0 {
		t.Fatalf("single-leaf proof has %d steps", len(p.Steps))
	}
	if !Verify(tr.Root(), []byte("leaf-0"), p) {
		t.Fatal("single-leaf proof rejected")
	}
}

func TestAllProofsVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1000} {
		ls := leaves(n)
		tr, err := Build(ls)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Leaves() != n {
			t.Fatalf("n=%d: Leaves()=%d", n, tr.Leaves())
		}
		for i := 0; i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !Verify(tr.Root(), ls[i], p) {
				t.Fatalf("n=%d: proof for leaf %d rejected", n, i)
			}
		}
	}
}

func TestWrongLeafRejected(t *testing.T) {
	ls := leaves(10)
	tr, err := Build(ls)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Prove(3)
	if err != nil {
		t.Fatal(err)
	}
	if Verify(tr.Root(), []byte("forged"), p) {
		t.Fatal("forged leaf accepted")
	}
	// A proof for leaf 3 must not verify leaf 4's data.
	if Verify(tr.Root(), ls[4], p) {
		t.Fatal("cross-leaf proof accepted")
	}
}

func TestTamperedProofRejected(t *testing.T) {
	ls := leaves(16)
	tr, err := Build(ls)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Prove(5)
	if err != nil {
		t.Fatal(err)
	}
	p.Steps[1].Sibling[0] ^= 1
	if Verify(tr.Root(), ls[5], p) {
		t.Fatal("tampered proof accepted")
	}
	p.Steps[1].Sibling[0] ^= 1
	p.Steps[0].Left = !p.Steps[0].Left
	if Verify(tr.Root(), ls[5], p) {
		t.Fatal("side-flipped proof accepted")
	}
}

func TestWrongRootRejected(t *testing.T) {
	ls := leaves(8)
	tr, err := Build(ls)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Build(leaves(9))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if Verify(other.Root(), ls[0], p) {
		t.Fatal("proof accepted under foreign root")
	}
}

func TestProveRange(t *testing.T) {
	tr, err := Build(leaves(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Prove(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tr.Prove(4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A two-leaf tree's root must differ from hashing the concatenated leaf
	// digests as a leaf — the prefixes must separate the domains.
	ls := leaves(2)
	tr, err := Build(ls)
	if err != nil {
		t.Fatal(err)
	}
	l0, l1 := hashLeaf(ls[0]), hashLeaf(ls[1])
	concat := append(append([]byte{}, l0[:]...), l1[:]...)
	if tr.Root() == hashLeaf(concat) {
		t.Fatal("leaf/interior domains collide")
	}
}

func TestProofSizeLogarithmic(t *testing.T) {
	tr, err := Build(leaves(1024))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Prove(777)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 10 {
		t.Fatalf("1024-leaf proof has %d steps, want 10", len(p.Steps))
	}
	if p.Size() != 4+10*(DigestSize+1) {
		t.Fatalf("Size() = %d", p.Size())
	}
}

func TestRandomizedProofs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		ls := make([][]byte, n)
		for i := range ls {
			ls[i] = make([]byte, r.Intn(64))
			r.Read(ls[i])
		}
		tr, err := Build(ls)
		if err != nil {
			t.Fatal(err)
		}
		i := r.Intn(n)
		p, err := tr.Prove(i)
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(tr.Root(), ls[i], p) {
			t.Fatalf("trial %d: proof rejected", trial)
		}
	}
}

func BenchmarkBuild1024(b *testing.B) {
	ls := leaves(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify1024(b *testing.B) {
	ls := leaves(1024)
	tr, err := Build(ls)
	if err != nil {
		b.Fatal(err)
	}
	p, err := tr.Prove(512)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(tr.Root(), ls[512], p) {
			b.Fatal("proof rejected")
		}
	}
}

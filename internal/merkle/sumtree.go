package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
)

func newHash() hash.Hash { return sha256.New() }

// SumTree is the aggregation-commitment structure of the commit-and-attest
// schemes (SDAP-style): a Merkle tree whose interior nodes additionally
// commit to the SUM of the values below them. A sensor auditing its
// authentication path simultaneously checks (a) its reading is included and
// (b) the partial sums along the path add up consistently to the root total,
// so an aggregator cannot claim a SUM that disagrees with the committed
// readings without some sensor's audit failing.
type SumTree struct {
	digests [][]Digest
	sums    [][]uint64
}

// sumLeaf commits to the record (id, value).
func sumLeaf(id int, value uint64) Digest {
	var rec [12]byte
	binary.BigEndian.PutUint32(rec[0:4], uint32(id))
	binary.BigEndian.PutUint64(rec[4:12], value)
	return hashLeaf(rec[:])
}

// sumInterior commits to two children and their combined sum.
func sumInterior(left, right Digest, sum uint64) Digest {
	var buf [2*DigestSize + 8]byte
	copy(buf[:DigestSize], left[:])
	copy(buf[DigestSize:], right[:])
	binary.BigEndian.PutUint64(buf[2*DigestSize:], sum)
	return hashLeafDomain(interiorPrefix, buf[:])
}

// hashLeafDomain hashes data under the given domain prefix.
func hashLeafDomain(prefix byte, data []byte) Digest {
	h := newHash()
	h.Write([]byte{prefix})
	h.Write(data)
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// BuildSum constructs the commitment over per-source values (index = id).
func BuildSum(values []uint64) (*SumTree, error) {
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	digests := make([]Digest, len(values))
	sums := append([]uint64(nil), values...)
	for i, v := range values {
		digests[i] = sumLeaf(i, v)
	}
	t := &SumTree{digests: [][]Digest{digests}, sums: [][]uint64{sums}}
	for len(digests) > 1 {
		nd := make([]Digest, 0, (len(digests)+1)/2)
		ns := make([]uint64, 0, (len(digests)+1)/2)
		for i := 0; i < len(digests); i += 2 {
			if i+1 < len(digests) {
				s := sums[i] + sums[i+1]
				nd = append(nd, sumInterior(digests[i], digests[i+1], s))
				ns = append(ns, s)
			} else {
				nd = append(nd, digests[i])
				ns = append(ns, sums[i])
			}
		}
		t.digests = append(t.digests, nd)
		t.sums = append(t.sums, ns)
		digests, sums = nd, ns
	}
	return t, nil
}

// Root returns the root digest (the commitment).
func (t *SumTree) Root() Digest { return t.digests[len(t.digests)-1][0] }

// Total returns the committed SUM.
func (t *SumTree) Total() uint64 { return t.sums[len(t.sums)-1][0] }

// Leaves returns the number of committed sources.
func (t *SumTree) Leaves() int { return len(t.digests[0]) }

// SumProofStep is one audit step: the sibling's digest and partial sum.
type SumProofStep struct {
	Sibling Digest
	Sum     uint64
	Left    bool
}

// SumProof is a sensor's audit path.
type SumProof struct {
	Index int
	Steps []SumProofStep
}

// Size returns the proof's wire size (per step: digest + sum + side byte).
func (p SumProof) Size() int { return 4 + len(p.Steps)*(DigestSize+8+1) }

// ProveSum returns the audit path of source id.
func (t *SumTree) ProveSum(id int) (SumProof, error) {
	if id < 0 || id >= t.Leaves() {
		return SumProof{}, fmt.Errorf("merkle: source %d out of range [0,%d)", id, t.Leaves())
	}
	p := SumProof{Index: id}
	idx := id
	for lvl := 0; lvl < len(t.digests)-1; lvl++ {
		level := t.digests[lvl]
		var sib int
		if idx%2 == 0 {
			sib = idx + 1
		} else {
			sib = idx - 1
		}
		if sib < len(level) {
			p.Steps = append(p.Steps, SumProofStep{
				Sibling: level[sib],
				Sum:     t.sums[lvl][sib],
				Left:    sib < idx,
			})
		}
		idx /= 2
	}
	return p, nil
}

// VerifySum audits that (id, value) is committed under root and that the
// partial sums along the path accumulate to exactly total — the sensor-side
// attestation check.
func VerifySum(root Digest, total uint64, id int, value uint64, p SumProof) bool {
	if p.Index != id {
		return false
	}
	cur := sumLeaf(id, value)
	sum := value
	for _, step := range p.Steps {
		sum += step.Sum
		if step.Left {
			cur = sumInterior(step.Sibling, cur, sum)
		} else {
			cur = sumInterior(cur, step.Sibling, sum)
		}
	}
	return cur == root && sum == total
}

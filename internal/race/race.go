//go:build race

// Package race reports whether the race detector is compiled in, mirroring
// the standard library's internal/race. Allocation-regression gates consult
// it because race instrumentation inhibits inlining and stack allocation,
// making testing.AllocsPerRun report spurious allocations.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true

package chaos

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// sinkConn is a net.Conn that records written bytes; reads block forever.
type sinkConn struct {
	buf    bytes.Buffer
	closed bool
}

func (s *sinkConn) Write(p []byte) (int, error) {
	if s.closed {
		return 0, errors.New("closed")
	}
	return s.buf.Write(p)
}
func (s *sinkConn) Read(p []byte) (int, error)         { select {} }
func (s *sinkConn) Close() error                       { s.closed = true; return nil }
func (s *sinkConn) LocalAddr() net.Addr                { return nil }
func (s *sinkConn) RemoteAddr() net.Addr               { return nil }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// deliver writes n frames of distinct content through a fresh injector and
// returns what survived on the wire.
func deliver(t *testing.T, cfg Config, writes int) []byte {
	t.Helper()
	in := New(cfg)
	sink := &sinkConn{}
	c := in.Wrap(sink)
	for i := 0; i < writes; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 16)
		if _, err := c.Write(payload); err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	return sink.buf.Bytes()
}

func TestInjectorDeterministicFromSeed(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.3, CorruptProb: 0.2, ShortWriteProb: 0.1}
	a := deliver(t, cfg, 50)
	b := deliver(t, cfg, 50)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	cfg.Seed = 43
	c := deliver(t, cfg, 50)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestTransparentWhenUnconfigured(t *testing.T) {
	got := deliver(t, Config{Seed: 1}, 10)
	want := &bytes.Buffer{}
	for i := 0; i < 10; i++ {
		want.Write(bytes.Repeat([]byte{byte(i + 1)}, 16))
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("zero config altered the stream")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	in := New(Config{Seed: 7, CorruptProb: 1})
	sink := &sinkConn{}
	c := in.Wrap(sink)
	payload := make([]byte, 64)
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, b := range sink.buf.Bytes() {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("corruption flipped %d bits, want 1", flipped)
	}
}

func TestShortWriteDeliversPrefixButReportsSuccess(t *testing.T) {
	in := New(Config{Seed: 3, ShortWriteProb: 1})
	sink := &sinkConn{}
	c := in.Wrap(sink)
	payload := bytes.Repeat([]byte{0xAB}, 100)
	n, err := c.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("short write reported n=%d err=%v", n, err)
	}
	if got := sink.buf.Len(); got >= len(payload) || got < 1 {
		t.Fatalf("delivered %d bytes, want a strict prefix", got)
	}
}

func TestResetCutsTheConnection(t *testing.T) {
	in := New(Config{Seed: 5, ResetProb: 1})
	sink := &sinkConn{}
	c := in.Wrap(sink)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
	if !sink.closed {
		t.Fatal("underlying connection survived the reset")
	}
	if _, err := c.Write([]byte("y")); !errors.Is(err, ErrReset) {
		t.Fatalf("cut connection accepted a write: %v", err)
	}
}

func TestScheduledPartition(t *testing.T) {
	active := New(Config{Partitions: []Window{{Start: 0, End: time.Hour}}})
	if _, err := active.Dial("tcp", "127.0.0.1:1"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial during partition: %v", err)
	}
	sink := &sinkConn{}
	c := active.Wrap(sink)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write during partition: %v", err)
	}
	future := New(Config{Partitions: []Window{{Start: time.Hour, End: 2 * time.Hour}}})
	sink2 := &sinkConn{}
	if _, err := future.Wrap(sink2).Write([]byte("x")); err != nil {
		t.Fatalf("write outside partition: %v", err)
	}
}

func TestOfflineCutsLiveConnsAndBlocksDials(t *testing.T) {
	in := New(Config{})
	sink := &sinkConn{}
	c := in.Wrap(sink)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	in.SetOffline(true)
	if !sink.closed {
		t.Fatal("going offline did not sever the live connection")
	}
	if _, err := in.Dial("tcp", "127.0.0.1:1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial while offline: %v", err)
	}
	if got := in.DialAttempts(); got != 1 {
		t.Fatalf("DialAttempts = %d, want 1", got)
	}
	in.SetOffline(false)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ln.Accept()
	conn, err := in.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after recovery: %v", err)
	}
	conn.Close()
}

package chaos

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/sies/sies/internal/prf"
)

// fakeTarget records applied events.
type fakeTarget struct {
	calls []ChurnEvent
}

func (f *fakeTarget) FailSource(id int) error {
	f.calls = append(f.calls, ChurnEvent{ID: id, Fail: true})
	return nil
}
func (f *fakeTarget) RecoverSource(id int) {
	f.calls = append(f.calls, ChurnEvent{ID: id})
}
func (f *fakeTarget) FailAggregator(id int) error {
	f.calls = append(f.calls, ChurnEvent{ID: id, Aggregator: true, Fail: true})
	return nil
}
func (f *fakeTarget) RecoverAggregator(id int) {
	f.calls = append(f.calls, ChurnEvent{ID: id, Aggregator: true})
}

func TestRandomChurnDeterministic(t *testing.T) {
	a := RandomChurn(rand.New(rand.NewSource(9)), 50, 16, 5, 0.1, 0.3)
	b := RandomChurn(rand.New(rand.NewSource(9)), 50, 16, 5, 0.1, 0.3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("no churn drawn at 10% fail probability over 50 epochs")
	}
	c := RandomChurn(rand.New(rand.NewSource(10)), 50, 16, 5, 0.1, 0.3)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRandomChurnSparesRootAndLastSource(t *testing.T) {
	ch := RandomChurn(rand.New(rand.NewSource(4)), 200, 1, 4, 0.9, 0.0)
	for _, e := range ch.Events {
		if e.Aggregator && e.ID == 0 {
			t.Fatalf("root aggregator failed: %v", e)
		}
		if !e.Aggregator && e.Fail {
			t.Fatalf("last living source failed: %v", e)
		}
	}
}

func TestChurnApplyReplaysEpochEvents(t *testing.T) {
	ch := &Churn{Events: []ChurnEvent{
		{Epoch: 1, ID: 3, Fail: true},
		{Epoch: 2, ID: 1, Aggregator: true, Fail: true},
		{Epoch: 2, ID: 3},
		{Epoch: 4, ID: 1, Aggregator: true},
	}}
	tgt := &fakeTarget{}
	for e := prf.Epoch(1); e <= 4; e++ {
		if err := ch.Apply(e, tgt); err != nil {
			t.Fatal(err)
		}
	}
	want := []ChurnEvent{
		{ID: 3, Fail: true},
		{ID: 1, Aggregator: true, Fail: true},
		{ID: 3},
		{ID: 1, Aggregator: true},
	}
	if !reflect.DeepEqual(tgt.calls, want) {
		t.Fatalf("applied %v, want %v", tgt.calls, want)
	}
	if got := ch.At(3); len(got) != 0 {
		t.Fatalf("epoch 3 events: %v", got)
	}
	if got := ch.At(2); len(got) != 2 {
		t.Fatalf("epoch 2 events: %v", got)
	}
}

package chaos

import (
	"math/rand"
	"testing"

	"github.com/sies/sies/internal/prf"
)

// recordingFailoverTarget logs the order plan application drives it in.
type recordingFailoverTarget struct {
	killed   []int
	promoted []int
}

func (r *recordingFailoverTarget) KillPermanently(id int) error {
	r.killed = append(r.killed, id)
	return nil
}

func (r *recordingFailoverTarget) Promote(id int) error {
	r.promoted = append(r.promoted, id)
	return nil
}

func TestExhaustiveFailoversKillsEveryAggregatorOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	aggs := []int{1, 2, 3, 4}
	plan, err := ExhaustiveFailovers(rng, 40, aggs, []int{9})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kills() != len(aggs) {
		t.Fatalf("kills = %d, want %d", plan.Kills(), len(aggs))
	}
	seen := map[int]int{}
	var last prf.Epoch
	for _, e := range plan.Events {
		seen[e.AggID]++
		if e.Epoch < 2 || e.Epoch > 40 {
			t.Fatalf("event %v outside [2, 40]", e)
		}
		if e.Epoch < last {
			t.Fatalf("events out of epoch order: %v", plan.Events)
		}
		last = e.Epoch
		if e.Standby != 9 {
			t.Fatalf("event %v: standby = %d, want 9", e, e.Standby)
		}
	}
	for _, id := range aggs {
		if seen[id] != 1 {
			t.Fatalf("aggregator %d killed %d times, want exactly once", id, seen[id])
		}
	}
}

func TestExhaustiveFailoversDeterministic(t *testing.T) {
	a, err := ExhaustiveFailovers(rand.New(rand.NewSource(11)), 30, []int{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExhaustiveFailovers(rand.New(rand.NewSource(11)), 30, []int{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("plans differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
		if a.Events[i].Standby != -1 {
			t.Fatalf("no standbys given, event %v should carry -1", a.Events[i])
		}
	}
}

func TestExhaustiveFailoversRejectsTooFewEpochs(t *testing.T) {
	if _, err := ExhaustiveFailovers(rand.New(rand.NewSource(1)), 3, []int{1, 2, 3}, nil); err == nil {
		t.Fatal("want error when epochs cannot fit one kill per aggregator")
	}
}

func TestFailoverPlanApplyPromotesBeforeKilling(t *testing.T) {
	plan := &FailoverPlan{Events: []FailoverEvent{
		{Epoch: 3, AggID: 1, Standby: 5},
		{Epoch: 3, AggID: 2, Standby: -1},
		{Epoch: 7, AggID: 3, Standby: 5},
	}}
	tgt := &recordingFailoverTarget{}
	for t0 := prf.Epoch(1); t0 <= 10; t0++ {
		if err := plan.Apply(t0, tgt); err != nil {
			t.Fatal(err)
		}
	}
	wantKilled := []int{1, 2, 3}
	if len(tgt.killed) != len(wantKilled) {
		t.Fatalf("killed %v, want %v", tgt.killed, wantKilled)
	}
	for i, id := range wantKilled {
		if tgt.killed[i] != id {
			t.Fatalf("killed %v, want %v", tgt.killed, wantKilled)
		}
	}
	// Standby -1 events promote nothing; the others promote before the kill.
	if len(tgt.promoted) != 2 || tgt.promoted[0] != 5 || tgt.promoted[1] != 5 {
		t.Fatalf("promoted %v, want [5 5]", tgt.promoted)
	}
}

package chaos

import (
	"math/rand"
	"testing"
)

func TestByzantineActiveWindows(t *testing.T) {
	b := &Byzantine{Events: []ByzantineEvent{
		{From: 2, Until: 5, Aggregator: 1, Mode: ByzTamper, Delta: 9},
		{From: 3, Until: 0, Aggregator: 2, Mode: ByzDrop}, // never clears
		{From: 4, Until: 6, Aggregator: 1, Mode: ByzDrop}, // later event wins
	}}
	if got := b.Faulty(1); len(got) != 0 {
		t.Fatalf("epoch 1 faulty %v", got)
	}
	if got := b.Faulty(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("epoch 2 faulty %v", got)
	}
	act := b.Active(4)
	if len(act) != 2 {
		t.Fatalf("epoch 4 active %v", act)
	}
	if act[1].Mode != ByzDrop {
		t.Fatalf("epoch 4 agg 1 mode %v, want the later event's drop", act[1].Mode)
	}
	if got := b.Faulty(100); len(got) != 1 || got[0] != 2 {
		t.Fatalf("epoch 100 faulty %v, want the unbounded fault only", got)
	}
}

func TestRandomByzantineSparesRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := RandomByzantine(rng, 21, 200, 40)
	if len(b.Events) != 40 {
		t.Fatalf("%d events, want 40", len(b.Events))
	}
	for _, e := range b.Events {
		if e.Aggregator == 0 {
			t.Fatal("root aggregator scheduled for a byzantine fault")
		}
		if e.Aggregator < 1 || e.Aggregator >= 21 {
			t.Fatalf("aggregator %d out of range", e.Aggregator)
		}
		if e.Mode == ByzHonest {
			t.Fatal("honest event scheduled as a fault")
		}
		if e.Until <= e.From {
			t.Fatalf("empty fault window [%d,%d)", e.From, e.Until)
		}
	}
	// Deterministic in the seed.
	b2 := RandomByzantine(rand.New(rand.NewSource(3)), 21, 200, 40)
	for i := range b.Events {
		if b.Events[i] != b2.Events[i] {
			t.Fatal("schedule not deterministic in the seed")
		}
	}
	// Degenerate deployments yield empty schedules rather than panics.
	if got := RandomByzantine(rng, 1, 200, 5); len(got.Events) != 0 {
		t.Fatalf("single-aggregator schedule %v", got.Events)
	}
}

// Churn scheduling: fail/recover sources and aggregators on an epoch
// schedule. The schedule is plain data, generated deterministically from an
// injected PRNG, and applies to anything implementing Target — the in-memory
// network.Engine does, and tests drive transport clusters with the same
// schedule by cutting links at epoch boundaries.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/sies/sies/internal/prf"
)

// Target is the failure surface a churn schedule drives. network.Engine
// satisfies it.
type Target interface {
	FailSource(id int) error
	RecoverSource(id int)
	FailAggregator(id int) error
	RecoverAggregator(id int)
}

// ChurnEvent fails or recovers one node at the start of one epoch.
type ChurnEvent struct {
	Epoch      prf.Epoch
	Aggregator bool // false: ID is a source, true: ID is an aggregator
	ID         int
	Fail       bool // false: recover
}

// String renders the event for logs.
func (e ChurnEvent) String() string {
	kind, verb := "source", "recovers"
	if e.Aggregator {
		kind = "aggregator"
	}
	if e.Fail {
		verb = "fails"
	}
	return fmt.Sprintf("epoch %d: %s %d %s", e.Epoch, kind, e.ID, verb)
}

// Churn is an epoch-ordered failure schedule.
type Churn struct {
	Events []ChurnEvent
}

// At returns the events scheduled for epoch t.
func (c *Churn) At(t prf.Epoch) []ChurnEvent {
	i := sort.Search(len(c.Events), func(i int) bool { return c.Events[i].Epoch >= t })
	j := i
	for j < len(c.Events) && c.Events[j].Epoch == t {
		j++
	}
	return c.Events[i:j]
}

// Apply replays epoch t's events onto the target, typically right before the
// target runs the epoch.
func (c *Churn) Apply(t prf.Epoch, target Target) error {
	for _, e := range c.At(t) {
		switch {
		case e.Aggregator && e.Fail:
			if err := target.FailAggregator(e.ID); err != nil {
				return err
			}
		case e.Aggregator:
			target.RecoverAggregator(e.ID)
		case e.Fail:
			if err := target.FailSource(e.ID); err != nil {
				return err
			}
		default:
			target.RecoverSource(e.ID)
		}
	}
	return nil
}

// RandomChurn draws a schedule over epochs [1, epochs]: each live node fails
// with failProb per epoch and each failed node recovers with recoverProb. The
// root aggregator (id 0) and the last living source are never failed, so
// every epoch keeps at least a partial result reachable. Deterministic in the
// injected rng.
func RandomChurn(rng *rand.Rand, epochs, nSources, nAggregators int, failProb, recoverProb float64) *Churn {
	srcDown := make([]bool, nSources)
	aggDown := make([]bool, nAggregators)
	liveSources := nSources
	c := &Churn{}
	for t := prf.Epoch(1); t <= prf.Epoch(epochs); t++ {
		for id := 0; id < nSources; id++ {
			switch {
			case srcDown[id] && rng.Float64() < recoverProb:
				srcDown[id] = false
				liveSources++
				c.Events = append(c.Events, ChurnEvent{Epoch: t, ID: id})
			case !srcDown[id] && liveSources > 1 && rng.Float64() < failProb:
				srcDown[id] = true
				liveSources--
				c.Events = append(c.Events, ChurnEvent{Epoch: t, ID: id, Fail: true})
			}
		}
		for id := 1; id < nAggregators; id++ { // never the root
			switch {
			case aggDown[id] && rng.Float64() < recoverProb:
				aggDown[id] = false
				c.Events = append(c.Events, ChurnEvent{Epoch: t, Aggregator: true, ID: id})
			case !aggDown[id] && rng.Float64() < failProb:
				aggDown[id] = true
				c.Events = append(c.Events, ChurnEvent{Epoch: t, Aggregator: true, ID: id, Fail: true})
			}
		}
	}
	return c
}

// Failover scheduling: permanent-kill plans for the self-healing tree
// (DESIGN.md §15). Where a crash plan (crash.go) kills a durable node and
// restarts it from its state directory, a failover plan kills an interior
// aggregator *permanently* — the process never returns — and relies on the
// children's ranked parent lists to re-home the orphaned subtree onto a
// standby (or any surviving sibling that accepts new children). The plan is
// plain data, deterministic in the injected PRNG, so a soak run that finds a
// bad interleaving is reproducible from its seed.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/sies/sies/internal/prf"
)

// FailoverTarget is the surface a failover plan drives. KillPermanently must
// tear the aggregator down without graceful shutdown and never restart it;
// Promote readies the standby that the victim's children will escalate to
// (a no-op in deployments whose standbys are always live).
type FailoverTarget interface {
	KillPermanently(aggID int) error
	Promote(standbyID int) error
}

// FailoverEvent kills one interior aggregator for good at the start of one
// epoch. Standby names the node expected to absorb the orphans — carried for
// harness bookkeeping and promotion; -1 means the children's ranked parent
// lists alone decide where the subtree re-homes.
type FailoverEvent struct {
	Epoch   prf.Epoch
	AggID   int
	Standby int
}

// String renders the event for logs.
func (e FailoverEvent) String() string {
	if e.Standby < 0 {
		return fmt.Sprintf("epoch %d: aggregator %d killed permanently", e.Epoch, e.AggID)
	}
	return fmt.Sprintf("epoch %d: aggregator %d killed permanently, standby %d absorbs", e.Epoch, e.AggID, e.Standby)
}

// FailoverPlan is an epoch-ordered permanent-kill schedule.
type FailoverPlan struct {
	Events []FailoverEvent
}

// At returns the kills scheduled for epoch t.
func (p *FailoverPlan) At(t prf.Epoch) []FailoverEvent {
	i := sort.Search(len(p.Events), func(i int) bool { return p.Events[i].Epoch >= t })
	j := i
	for j < len(p.Events) && p.Events[j].Epoch == t {
		j++
	}
	return p.Events[i:j]
}

// Kills counts the plan's permanent kills.
func (p *FailoverPlan) Kills() int { return len(p.Events) }

// Apply drives epoch t against the target: each scheduled kill promotes its
// standby first (so the escalation target is up before the orphans dial),
// then kills the victim. Call it at the top of every epoch.
func (p *FailoverPlan) Apply(t prf.Epoch, target FailoverTarget) error {
	for _, e := range p.At(t) {
		if e.Standby >= 0 {
			if err := target.Promote(e.Standby); err != nil {
				return fmt.Errorf("chaos: promoting standby for %v: %w", e, err)
			}
		}
		if err := target.KillPermanently(e.AggID); err != nil {
			return fmt.Errorf("chaos: applying %v: %w", e, err)
		}
	}
	return nil
}

// ExhaustiveFailovers draws a plan over epochs [2, epochs] that kills every
// listed interior aggregator exactly once, in random order at distinct,
// roughly evenly spread epochs — the soak-proof shape: no interior node
// survives the run, so coverage recovery is exercised for each of them.
// Standbys are assigned round-robin from standbyIDs (empty = -1 throughout).
// Deterministic in the injected rng.
func ExhaustiveFailovers(rng *rand.Rand, epochs int, aggIDs, standbyIDs []int) (*FailoverPlan, error) {
	n := len(aggIDs)
	if n == 0 {
		return &FailoverPlan{}, nil
	}
	// Epoch 1 is spared so every aggregator flushes at least once before it
	// can die; each victim then gets its own slice of the remaining run.
	if epochs-1 < n {
		return nil, errors.New("chaos: not enough epochs to kill every aggregator once")
	}
	order := append([]int(nil), aggIDs...)
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	p := &FailoverPlan{}
	span := (epochs - 1) / n
	for i, id := range order {
		lo := 2 + i*span
		e := FailoverEvent{Epoch: prf.Epoch(lo + rng.Intn(span)), AggID: id, Standby: -1}
		if len(standbyIDs) > 0 {
			e.Standby = standbyIDs[i%len(standbyIDs)]
		}
		p.Events = append(p.Events, e)
	}
	sort.Slice(p.Events, func(i, j int) bool { return p.Events[i].Epoch < p.Events[j].Epoch })
	return p, nil
}

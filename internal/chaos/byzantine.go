// Byzantine fault scheduling: aggregators that lie instead of crashing.
// Crash-stop churn (churn.go) removes a subtree cleanly — the querier is
// told who is gone. A byzantine aggregator keeps participating but tampers
// or blackholes its out-edge, which the querier only sees as ErrIntegrity.
// The schedule is plain data, like Churn, so the attack package can adapt it
// into an interceptor without this package importing network.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/sies/sies/internal/prf"
)

// ByzMode is what a faulty aggregator does to its out-edge traffic.
type ByzMode int

// Byzantine fault modes.
const (
	ByzHonest ByzMode = iota // behaves correctly (fault cleared)
	ByzTamper                // adds Delta to every outgoing ciphertext
	ByzDrop                  // blackholes every outgoing message
)

// String names the mode for logs.
func (m ByzMode) String() string {
	switch m {
	case ByzHonest:
		return "honest"
	case ByzTamper:
		return "tamper"
	case ByzDrop:
		return "drop"
	default:
		return fmt.Sprintf("ByzMode(%d)", int(m))
	}
}

// ByzantineEvent makes one aggregator faulty for an epoch interval
// [From, Until). Until == 0 means the fault never clears.
type ByzantineEvent struct {
	From       prf.Epoch
	Until      prf.Epoch
	Aggregator int
	Mode       ByzMode
	Delta      uint64 // tamper offset, used by ByzTamper
}

// String renders the event for logs.
func (e ByzantineEvent) String() string {
	until := "∞"
	if e.Until != 0 {
		until = fmt.Sprintf("%d", e.Until)
	}
	return fmt.Sprintf("epoch [%d,%s): aggregator %d %s", e.From, until, e.Aggregator, e.Mode)
}

// active reports whether the fault covers epoch t.
func (e ByzantineEvent) active(t prf.Epoch) bool {
	return e.Mode != ByzHonest && t >= e.From && (e.Until == 0 || t < e.Until)
}

// Byzantine is a deterministic schedule of aggregator faults.
type Byzantine struct {
	Events []ByzantineEvent
}

// Active returns the faults in force at epoch t, keyed by aggregator. When
// several events cover the same aggregator, the one starting latest wins —
// a later event models the node changing behaviour.
func (b *Byzantine) Active(t prf.Epoch) map[int]ByzantineEvent {
	out := make(map[int]ByzantineEvent)
	for _, e := range b.Events {
		if !e.active(t) {
			continue
		}
		if prev, ok := out[e.Aggregator]; ok && prev.From >= e.From {
			continue
		}
		out[e.Aggregator] = e
	}
	return out
}

// Faulty returns the sorted aggregator ids faulty at epoch t.
func (b *Byzantine) Faulty(t prf.Epoch) []int {
	m := b.Active(t)
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// RandomByzantine generates faults spread over [1, epochs): each fault picks
// a non-root aggregator (the root cannot be routed around — blaming it loses
// the epoch by design, which the soak test asserts separately), a mode, a
// small delta, and a bounded duration. The root (aggregator 0) is spared so
// recovery always has a survivable cut.
func RandomByzantine(rng *rand.Rand, numAggregators int, epochs, faults int) *Byzantine {
	b := &Byzantine{}
	if numAggregators < 2 || epochs < 4 {
		return b
	}
	for i := 0; i < faults; i++ {
		from := prf.Epoch(1 + rng.Intn(epochs-2))
		dur := prf.Epoch(2 + rng.Intn(epochs/2))
		mode := ByzTamper
		if rng.Intn(4) == 0 {
			mode = ByzDrop
		}
		b.Events = append(b.Events, ByzantineEvent{
			From:       from,
			Until:      from + dur,
			Aggregator: 1 + rng.Intn(numAggregators-1),
			Mode:       mode,
			Delta:      1 + uint64(rng.Intn(1<<16)),
		})
	}
	sort.Slice(b.Events, func(i, j int) bool { return b.Events[i].From < b.Events[j].From })
	return b
}

package chaos

import (
	"math/rand"
	"testing"

	"github.com/sies/sies/internal/prf"
)

type crashRecorder struct {
	ops []string
}

func (r *crashRecorder) Kill(role CrashRole, id int) error {
	if role == CrashQuerier {
		r.ops = append(r.ops, "kill q")
	} else {
		r.ops = append(r.ops, "kill a")
	}
	return nil
}

func (r *crashRecorder) Restart(role CrashRole, id int) error {
	if role == CrashQuerier {
		r.ops = append(r.ops, "restart q")
	} else {
		r.ops = append(r.ops, "restart a")
	}
	return nil
}

func TestCrashPlanApply(t *testing.T) {
	p := &CrashPlan{Events: []CrashEvent{
		{Epoch: 2, Role: CrashAggregator, ID: 1, DownFor: 2},
		{Epoch: 6, Role: CrashQuerier, DownFor: 1},
	}}
	rec := &crashRecorder{}
	for e := prf.Epoch(1); e <= 8; e++ {
		if err := p.Apply(e, rec); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"kill a", "restart a", "kill q", "restart q"}
	if len(rec.ops) != len(want) {
		t.Fatalf("ops = %v, want %v", rec.ops, want)
	}
	for i := range want {
		if rec.ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", rec.ops, want)
		}
	}
}

func TestRandomCrashesDeterministicAndSingleFault(t *testing.T) {
	a := RandomCrashes(rand.New(rand.NewSource(7)), 500, 3, 0.2, 3)
	b := RandomCrashes(rand.New(rand.NewSource(7)), 500, 3, 0.2, 3)
	if len(a.Events) == 0 {
		t.Fatal("seed 7 produced no crashes")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different plans: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	// Down windows never overlap: at most one process dead at a time.
	end := prf.Epoch(0)
	for _, e := range a.Events {
		if e.Epoch < end {
			t.Fatalf("overlapping crash windows at %v", e)
		}
		if e.DownFor < 1 || e.DownFor > 3 {
			t.Fatalf("down window out of range: %v", e)
		}
		end = e.Epoch + prf.Epoch(e.DownFor)
	}
}

// Crash scheduling: kill-and-restart plans for durable nodes. A crash plan is
// plain data, generated deterministically from an injected PRNG, so a soak
// run that finds a bad interleaving is reproducible from its seed.
//
// Where churn (churn.go) models nodes cleanly leaving and rejoining the
// deployment, a crash models the process dying mid-epoch with its in-memory
// state — pending contributions, flushed windows, quarantine verdicts — gone,
// and coming back from its state directory alone. The plan names which node
// dies at which epoch and how many epochs it stays down; the harness maps
// that onto CrashTarget hooks (kill = transport Crash(), restart = rebuild
// the node from its durable directory).
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/sies/sies/internal/prf"
)

// CrashRole identifies which process a crash event hits.
type CrashRole uint8

const (
	CrashAggregator CrashRole = iota // an aggregator process, by id
	CrashQuerier                     // the querier process
)

// CrashTarget is the kill/restart surface a crash plan drives. Kill must tear
// the process down without graceful shutdown (no flushes, no final fsync);
// Restart must rebuild it from its durable state directory.
type CrashTarget interface {
	Kill(role CrashRole, id int) error
	Restart(role CrashRole, id int) error
}

// CrashEvent kills one process at the start of one epoch; the harness
// restarts it DownFor epochs later.
type CrashEvent struct {
	Epoch   prf.Epoch
	Role    CrashRole
	ID      int // aggregator id; ignored for the querier
	DownFor int // epochs the process stays dead before Restart (≥ 1)
}

// String renders the event for logs.
func (e CrashEvent) String() string {
	who := fmt.Sprintf("aggregator %d", e.ID)
	if e.Role == CrashQuerier {
		who = "querier"
	}
	return fmt.Sprintf("epoch %d: %s crashes, down %d", e.Epoch, who, e.DownFor)
}

// CrashPlan is an epoch-ordered kill/restart schedule.
type CrashPlan struct {
	Events []CrashEvent
}

// At returns the crashes scheduled for epoch t.
func (p *CrashPlan) At(t prf.Epoch) []CrashEvent {
	i := sort.Search(len(p.Events), func(i int) bool { return p.Events[i].Epoch >= t })
	j := i
	for j < len(p.Events) && p.Events[j].Epoch == t {
		j++
	}
	return p.Events[i:j]
}

// Crashes counts the plan's kill events.
func (p *CrashPlan) Crashes() int { return len(p.Events) }

// Apply drives epoch t against the target: kills scheduled for t, then
// restarts of processes whose down window ended at t. Call it at the top of
// every epoch, including epochs with no kills — restarts are derived from
// earlier events' Epoch+DownFor.
func (p *CrashPlan) Apply(t prf.Epoch, target CrashTarget) error {
	for _, e := range p.Events {
		if e.Epoch+prf.Epoch(e.DownFor) == t {
			if err := target.Restart(e.Role, e.ID); err != nil {
				return fmt.Errorf("chaos: restarting after %v: %w", e, err)
			}
		}
	}
	for _, e := range p.At(t) {
		if err := target.Kill(e.Role, e.ID); err != nil {
			return fmt.Errorf("chaos: applying %v: %w", e, err)
		}
	}
	return nil
}

// RandomCrashes draws a plan over epochs [1, epochs]: each epoch, a live
// process crashes with crashProb and stays down 1–maxDown epochs. At most one
// process is dead at a time, so every kill exercises a genuine single-fault
// recovery rather than a dead deployment. Deterministic in the injected rng.
func RandomCrashes(rng *rand.Rand, epochs, nAggregators int, crashProb float64, maxDown int) *CrashPlan {
	if maxDown < 1 {
		maxDown = 1
	}
	p := &CrashPlan{}
	downUntil := prf.Epoch(0) // exclusive end of the current down window
	for t := prf.Epoch(1); t <= prf.Epoch(epochs); t++ {
		if t < downUntil || rng.Float64() >= crashProb {
			continue
		}
		down := 1 + rng.Intn(maxDown)
		// Processes: aggregators 0..nAggregators-1, then the querier.
		pick := rng.Intn(nAggregators + 1)
		e := CrashEvent{Epoch: t, Role: CrashAggregator, ID: pick, DownFor: down}
		if pick == nAggregators {
			e = CrashEvent{Epoch: t, Role: CrashQuerier, DownFor: down}
		}
		p.Events = append(p.Events, e)
		downUntil = t + prf.Epoch(down)
	}
	return p
}

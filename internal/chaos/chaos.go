// Package chaos provides deterministic fault injection for the transport
// layer and failure scheduling for the in-memory simulator, so the recovery
// machinery (reconnect/backoff, epoch resync, partial-SUM degradation) can be
// exercised reproducibly from a single seed.
//
// An Injector wraps net.Conn / net.Listener / dial functions and injects
// faults drawn from a per-connection seeded PRNG: silent frame drops, delivery
// delays, payload corruption, short (torn) writes and connection resets.
// Scheduled partitions and the explicit SetOffline / CutAll controls model
// link outages; recovery is the transport's own redial machinery — a cut TCP
// connection cannot be "healed", only replaced.
//
// Fault decisions are drawn per connection in wrap order, so a fixed seed and
// a fixed connection-establishment order replay the same fault sequence.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Injected fault errors. Everything the injector fabricates wraps ErrInjected
// so callers can distinguish chaos from genuine network failures in tests.
var (
	ErrInjected    = errors.New("chaos: injected fault")
	ErrPartitioned = fmt.Errorf("%w: link partitioned", ErrInjected)
	ErrReset       = fmt.Errorf("%w: connection reset", ErrInjected)
	ErrOffline     = fmt.Errorf("%w: endpoint offline", ErrInjected)
)

// Window is a half-open interval [Start, End) relative to the injector's
// creation during which the link is partitioned: dials fail and live
// connections are severed on first use.
type Window struct {
	Start, End time.Duration
}

// Config selects the faults an Injector draws. All probabilities are per
// Write call in [0, 1]; zero values inject nothing, so Config{} is a
// transparent wrapper.
type Config struct {
	Seed int64 // root seed; per-connection PRNGs derive from it

	DropProb       float64       // silently swallow the whole write
	DelayProb      float64       // sleep up to MaxDelay before delivering
	MaxDelay       time.Duration // delay upper bound (default 10ms when DelayProb > 0)
	CorruptProb    float64       // flip one bit of the written bytes
	ShortWriteProb float64       // deliver only a prefix, reporting full success
	ResetProb      float64       // close the connection mid-write

	// ShortWriteErrProb delivers only a prefix, reports the true short count
	// alongside an error and severs the connection — how a real kernel
	// surfaces a connection dying mid-write. Unlike ShortWriteProb (which
	// lies about success, modelling a crashed sender), the writer knows the
	// tail was lost and can re-send everything on a fresh connection.
	ShortWriteErrProb float64

	Partitions []Window // scheduled outages relative to New()
}

// Injector wraps connections of one link (or one node) with fault injection.
type Injector struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	nextID  int64
	offline bool
	dials   int
	conns   map[*Conn]struct{}
}

// New builds an injector; the clock for Partitions starts now.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &Injector{cfg: cfg, start: time.Now(), conns: map[*Conn]struct{}{}}
}

// partitioned reports whether a scheduled outage or SetOffline is active.
func (in *Injector) partitioned() bool {
	in.mu.Lock()
	offline := in.offline
	in.mu.Unlock()
	if offline {
		return true
	}
	d := time.Since(in.start)
	for _, w := range in.cfg.Partitions {
		if d >= w.Start && d < w.End {
			return true
		}
	}
	return false
}

// SetOffline toggles a manual partition. Going offline severs every live
// wrapped connection so peers observe the outage promptly.
func (in *Injector) SetOffline(offline bool) {
	in.mu.Lock()
	in.offline = offline
	in.mu.Unlock()
	if offline {
		in.CutAll()
	}
}

// CutAll severs every live connection wrapped by this injector. The peers see
// a reset; recovery happens through the transport's redial path.
func (in *Injector) CutAll() {
	in.mu.Lock()
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	for _, c := range conns {
		c.Cut()
	}
}

// DialAttempts returns how many dials went through the injector, successful
// or not — a cheap probe for "did the peer retry with backoff".
func (in *Injector) DialAttempts() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dials
}

// Wrap returns c with fault injection. The connection gets its own PRNG
// derived from the root seed and the wrap sequence number.
func (in *Injector) Wrap(c net.Conn) *Conn {
	in.mu.Lock()
	id := in.nextID
	in.nextID++
	cc := &Conn{
		Conn: c,
		in:   in,
		rng:  rand.New(rand.NewSource(in.cfg.Seed + (id+1)*0x9e3779b9)),
	}
	in.conns[cc] = struct{}{}
	in.mu.Unlock()
	return cc
}

// forget drops a closed connection from the registry.
func (in *Injector) forget(c *Conn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.mu.Unlock()
}

// Dial is a net.Dial-shaped dialer routing through the injector: it fails
// while partitioned and wraps successful connections.
func (in *Injector) Dial(network, addr string) (net.Conn, error) {
	in.mu.Lock()
	in.dials++
	in.mu.Unlock()
	if in.partitioned() {
		return nil, ErrPartitioned
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return in.Wrap(c), nil
}

// Listen wraps net.Listen so every accepted connection is injected.
func (in *Injector) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Listener{Listener: ln, in: in}, nil
}

// Listener wraps accepted connections with fault injection.
type Listener struct {
	net.Listener
	in *Injector
}

// Accept wraps the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// Conn is a net.Conn with injected faults on the write path and injected
// delays on the read path.
type Conn struct {
	net.Conn
	in *Injector

	mu  sync.Mutex
	rng *rand.Rand
	cut bool
}

// Cut severs the connection: the underlying socket closes and every further
// operation fails with ErrReset.
func (c *Conn) Cut() {
	c.mu.Lock()
	already := c.cut
	c.cut = true
	c.mu.Unlock()
	if !already {
		c.Conn.Close()
	}
}

// Close closes the underlying connection and unregisters it.
func (c *Conn) Close() error {
	c.in.forget(c)
	return c.Conn.Close()
}

// writeFault is one drawn decision for a Write call.
type writeFault struct {
	reset    bool
	drop     bool
	corrupt  bool
	short    int // bytes to deliver when > 0 and < len(p), reporting success
	shortErr int // bytes to deliver when > 0 and < len(p), reporting failure
	delay    time.Duration
}

// draw samples the fault decision for a write of n bytes.
func (c *Conn) draw(n int) writeFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := c.in.cfg
	var f writeFault
	if cfg.ResetProb > 0 && c.rng.Float64() < cfg.ResetProb {
		f.reset = true
		return f
	}
	if cfg.DropProb > 0 && c.rng.Float64() < cfg.DropProb {
		f.drop = true
		return f
	}
	if cfg.DelayProb > 0 && c.rng.Float64() < cfg.DelayProb {
		f.delay = time.Duration(c.rng.Int63n(int64(cfg.MaxDelay) + 1))
	}
	if cfg.CorruptProb > 0 && c.rng.Float64() < cfg.CorruptProb {
		f.corrupt = true
	}
	if cfg.ShortWriteProb > 0 && n > 1 && c.rng.Float64() < cfg.ShortWriteProb {
		f.short = 1 + c.rng.Intn(n-1)
	}
	if cfg.ShortWriteErrProb > 0 && n > 1 && c.rng.Float64() < cfg.ShortWriteErrProb {
		f.shortErr = 1 + c.rng.Intn(n-1)
	}
	return f
}

// Write applies the drawn fault and forwards (what remains of) p.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	cut := c.cut
	c.mu.Unlock()
	if cut {
		return 0, ErrReset
	}
	if c.in.partitioned() {
		c.Cut()
		return 0, ErrPartitioned
	}
	f := c.draw(len(p))
	switch {
	case f.reset:
		c.Cut()
		return 0, ErrReset
	case f.drop:
		return len(p), nil // swallowed: the caller believes it was sent
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	out := p
	if f.corrupt && len(p) > 0 {
		out = append([]byte(nil), p...)
		c.mu.Lock()
		bit := c.rng.Intn(len(out) * 8)
		c.mu.Unlock()
		out[bit/8] ^= 1 << (bit % 8)
	}
	if f.shortErr > 0 && f.shortErr < len(out) {
		// Honest short write: a prefix reaches the peer, the error and byte
		// count reach the writer, and the connection dies — the kernel's view
		// of a link failing mid-write. The writer re-sends on a fresh
		// connection; the peer discards the torn stream at its next read.
		n, err := c.Conn.Write(out[:f.shortErr])
		c.Cut()
		if err != nil {
			return 0, err
		}
		return n, ErrReset
	}
	if f.short > 0 && f.short < len(out) {
		// Torn write: deliver a prefix but report full success, leaving the
		// peer's stream desynchronised — exactly what a crashed sender does.
		if _, err := c.Conn.Write(out[:f.short]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	if _, err := c.Conn.Write(out); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Read forwards to the underlying connection, failing fast once cut or
// partitioned.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	cut := c.cut
	c.mu.Unlock()
	if cut {
		return 0, ErrReset
	}
	if c.in.partitioned() {
		c.Cut()
		return 0, ErrPartitioned
	}
	return c.Conn.Read(p)
}

// Package commitattest implements a representative commit-and-attest secure
// aggregation scheme (the model of SIA, SDAP, SecureDAV — paper §II-B),
// the approach SIES is designed to outperform at scale.
//
// One epoch runs in two phases:
//
//	Commit  — sources send their raw readings up the tree; the sink builds a
//	          sum-augmented Merkle commitment over all N readings and hands
//	          (SUM, root) to the querier.
//	Attest  — the querier broadcasts (epoch, SUM, root) to every sensor over
//	          μTesla; the sink disseminates each sensor's O(log N) audit
//	          path; every sensor verifies that its reading is included and
//	          that the committed partial sums are consistent with SUM, then
//	          answers with an authenticated acknowledgement, XOR-aggregated
//	          on the way up. The querier accepts iff the aggregate ack
//	          matches its own expectation.
//
// The scheme provides integrity (any tampering breaks some sensor's audit)
// but no confidentiality (readings travel in plaintext), and — the paper's
// point — its attestation traffic and latency grow with N, whereas SIES
// needs no sensor participation in verification at all. The Stats returned
// per epoch quantify exactly that.
package commitattest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/sies/sies/internal/merkle"
	"github.com/sies/sies/internal/network"
	"github.com/sies/sies/internal/prf"
)

// Wire-size constants (bytes).
const (
	recordSize    = 12                          // id(4) + value(8), commit phase
	claimSize     = 8 + merkle.DigestSize       // SUM + root, sink → querier
	broadcastSize = 8 + 8 + merkle.DigestSize + // epoch + SUM + root
		prf.Size1 + 32 // μTesla MAC + disclosed key
	ackSize = prf.Size1 // XOR-aggregated acknowledgement
)

// ErrAttestFailed is returned when the aggregate acknowledgement does not
// match: at least one sensor's audit failed.
var ErrAttestFailed = errors.New("commitattest: attestation failed (some sensor audit rejected)")

// Stats quantifies one epoch's cost.
type Stats struct {
	CommitBytes  int // raw readings up the tree + claim to the querier
	AttestBytes  int // broadcast down + audit paths down + acks up
	CommitMsgs   int
	AttestMsgs   int
	Rounds       int // protocol rounds (latency proxy): up, claim, down, audit, acks
	SensorHashes int // total hash evaluations performed by sensors during audits
}

// Adversary models a compromised sink.
type Adversary struct {
	// TamperSource ≥ 0 makes the sink replace that source's reading with
	// reading+TamperDelta before committing.
	TamperSource int
	TamperDelta  uint64
	// ClaimDelta makes the sink report SUM+ClaimDelta while committing to
	// the honest readings.
	ClaimDelta uint64
}

// NoAdversary is the honest-sink configuration.
func NoAdversary() Adversary { return Adversary{TamperSource: -1} }

// Deployment holds the per-source acknowledgement keys and the topology.
type Deployment struct {
	topo    *network.Topology
	ackKeys [][]byte
}

// New provisions a deployment over the given topology.
func New(topo *network.Topology) (*Deployment, error) {
	if topo == nil {
		return nil, errors.New("commitattest: nil topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	keys := make([][]byte, topo.NumSources())
	for i := range keys {
		k, err := prf.NewLongTermKey()
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	return &Deployment{topo: topo, ackKeys: keys}, nil
}

// ack computes source id's authenticated verdict for an epoch/root pair.
func (d *Deployment) ack(id int, t prf.Epoch, root merkle.Digest, ok bool) [prf.Size1]byte {
	msg := make([]byte, 8+merkle.DigestSize+1)
	binary.BigEndian.PutUint64(msg, uint64(t))
	copy(msg[8:], root[:])
	if ok {
		msg[8+merkle.DigestSize] = 1
	}
	return prf.HM1(d.ackKeys[id], msg)
}

// RunEpoch executes both phases and returns the verified SUM plus the cost
// accounting. A non-nil error means the querier rejected the epoch.
func (d *Deployment) RunEpoch(t prf.Epoch, values []uint64, adv Adversary) (uint64, *Stats, error) {
	topo := d.topo
	n := topo.NumSources()
	if len(values) != n {
		return 0, nil, fmt.Errorf("commitattest: %d values for %d sources", len(values), n)
	}
	st := &Stats{}

	// --- Commit phase: raw readings flow to the sink -------------------
	subtree := make([]int, topo.NumAggregators())
	var count func(agg int) int
	count = func(agg int) int {
		c := len(topo.ChildSources(agg))
		st.CommitMsgs += len(topo.ChildSources(agg)) // one record per S-A edge
		st.CommitBytes += len(topo.ChildSources(agg)) * recordSize
		for _, child := range topo.ChildAggregators(agg) {
			cc := count(child)
			st.CommitMsgs++ // one batched message per A-A edge
			st.CommitBytes += cc * recordSize
			c += cc
		}
		subtree[agg] = c
		return c
	}
	count(topo.Root())

	// The (possibly compromised) sink commits.
	committed := append([]uint64(nil), values...)
	if adv.TamperSource >= 0 && adv.TamperSource < n {
		committed[adv.TamperSource] += adv.TamperDelta
	}
	tree, err := merkle.BuildSum(committed)
	if err != nil {
		return 0, nil, err
	}
	claimedSum := tree.Total() + adv.ClaimDelta
	root := tree.Root()
	st.CommitMsgs++
	st.CommitBytes += claimSize
	st.Rounds += topo.Depth() + 1 // readings up + claim

	// --- Attest phase ----------------------------------------------------
	// Broadcast (epoch, SUM, root) over μTesla: one message per tree edge
	// (aggregators relay it downward) reaching every sensor.
	edges := n + topo.NumAggregators() // S-A + A-A edges + root-querier edge ≈ every link once
	st.AttestMsgs += edges
	st.AttestBytes += edges * broadcastSize
	st.Rounds += topo.Depth() + 1

	// Audit-path dissemination: each edge carries the paths of the sensors
	// below it.
	var pathBytes func(agg int) (int, error)
	pathBytes = func(agg int) (int, error) {
		total := 0
		for _, src := range topo.ChildSources(agg) {
			p, err := tree.ProveSum(src)
			if err != nil {
				return 0, err
			}
			st.AttestMsgs++
			st.AttestBytes += p.Size()
			total += p.Size()
		}
		for _, child := range topo.ChildAggregators(agg) {
			sub, err := pathBytes(child)
			if err != nil {
				return 0, err
			}
			st.AttestMsgs++
			st.AttestBytes += sub
			total += sub
		}
		return total, nil
	}
	if _, err := pathBytes(topo.Root()); err != nil {
		return 0, nil, err
	}
	st.Rounds += topo.Depth()

	// Sensor audits + acknowledgement aggregation.
	var aggregateAck [prf.Size1]byte
	for id := 0; id < n; id++ {
		p, err := tree.ProveSum(id)
		if err != nil {
			return 0, nil, err
		}
		ok := merkle.VerifySum(root, claimedSum, id, values[id], p)
		st.SensorHashes += len(p.Steps) + 1
		a := d.ack(id, t, root, ok)
		for b := range aggregateAck {
			aggregateAck[b] ^= a[b]
		}
	}
	st.AttestMsgs += edges
	st.AttestBytes += edges * ackSize
	st.Rounds += topo.Depth() + 1

	// Querier: expected aggregate = XOR of all-OK acks.
	var expected [prf.Size1]byte
	for id := 0; id < n; id++ {
		a := d.ack(id, t, root, true)
		for b := range expected {
			expected[b] ^= a[b]
		}
	}
	if expected != aggregateAck {
		return 0, st, ErrAttestFailed
	}
	return claimedSum, st, nil
}

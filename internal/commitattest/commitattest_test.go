package commitattest

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/sies/sies/internal/network"
)

func deploy(t *testing.T, n, fanout int) *Deployment {
	t.Helper()
	topo, err := network.CompleteTree(n, fanout)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func values(n int, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(r.Intn(5000))
	}
	return out
}

func TestHonestEpochAccepted(t *testing.T) {
	d := deploy(t, 64, 4)
	vs := values(64, 1)
	var want uint64
	for _, v := range vs {
		want += v
	}
	sum, st, err := d.RunEpoch(1, vs, NoAdversary())
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Fatalf("SUM = %d, want %d", sum, want)
	}
	if st.CommitBytes <= 0 || st.AttestBytes <= 0 || st.Rounds <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTamperedReadingRejected(t *testing.T) {
	d := deploy(t, 32, 4)
	vs := values(32, 2)
	adv := Adversary{TamperSource: 7, TamperDelta: 1000}
	_, _, err := d.RunEpoch(1, vs, adv)
	if !errors.Is(err, ErrAttestFailed) {
		t.Fatalf("tampered reading accepted: %v", err)
	}
}

func TestInflatedClaimRejected(t *testing.T) {
	d := deploy(t, 32, 4)
	vs := values(32, 3)
	adv := NoAdversary()
	adv.ClaimDelta = 500
	_, _, err := d.RunEpoch(1, vs, adv)
	if !errors.Is(err, ErrAttestFailed) {
		t.Fatalf("inflated claim accepted: %v", err)
	}
}

func TestValueCountValidated(t *testing.T) {
	d := deploy(t, 8, 4)
	if _, _, err := d.RunEpoch(1, values(4, 1), NoAdversary()); err == nil {
		t.Fatal("wrong value count accepted")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestCostsGrowWithN(t *testing.T) {
	// The paper's scalability argument (§II-B): attestation traffic and
	// sensor involvement grow with N; SIES's per-edge cost is constant.
	small := deploy(t, 64, 4)
	big := deploy(t, 1024, 4)
	_, stSmall, err := small.RunEpoch(1, values(64, 4), NoAdversary())
	if err != nil {
		t.Fatal(err)
	}
	_, stBig, err := big.RunEpoch(1, values(1024, 4), NoAdversary())
	if err != nil {
		t.Fatal(err)
	}
	if stBig.AttestBytes <= stSmall.AttestBytes*4 {
		t.Fatalf("attest bytes did not scale: %d vs %d", stSmall.AttestBytes, stBig.AttestBytes)
	}
	if stBig.SensorHashes <= stSmall.SensorHashes {
		t.Fatal("sensor work did not grow with N")
	}
	if stBig.Rounds <= stSmall.Rounds {
		t.Fatal("latency rounds did not grow with depth")
	}
	// Per-sensor audit work is logarithmic.
	perSensorSmall := float64(stSmall.SensorHashes) / 64
	perSensorBig := float64(stBig.SensorHashes) / 1024
	if perSensorBig < perSensorSmall {
		t.Fatal("per-sensor audit work shrank with N")
	}
}

func TestCommitBytesDominatedByRelaying(t *testing.T) {
	// Raw readings are relayed hop by hop: total commit bytes exceed
	// N·recordSize by the relaying factor (≈ depth).
	d := deploy(t, 256, 4)
	_, st, err := d.RunEpoch(1, values(256, 5), NoAdversary())
	if err != nil {
		t.Fatal(err)
	}
	if st.CommitBytes <= 256*recordSize {
		t.Fatalf("commit bytes %d do not show relaying", st.CommitBytes)
	}
}

func TestEpochsIndependent(t *testing.T) {
	d := deploy(t, 16, 4)
	vs := values(16, 6)
	for epoch := 1; epoch <= 3; epoch++ {
		if _, _, err := d.RunEpoch(1, vs, NoAdversary()); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
}

func BenchmarkCommitAttest1024(b *testing.B) {
	topo, err := network.CompleteTree(1024, 4)
	if err != nil {
		b.Fatal(err)
	}
	d, err := New(topo)
	if err != nil {
		b.Fatal(err)
	}
	vs := values(1024, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.RunEpoch(1, vs, NoAdversary()); err != nil {
			b.Fatal(err)
		}
	}
}

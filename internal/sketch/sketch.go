// Package sketch implements the Flajolet–Martin-style counting sketches that
// SECOA_S layers under its MAX protocol to approximate SUM queries (paper
// §II-D, citing AMS sketches for distinct-item estimation).
//
// A sketch holds J independent instances. Adding a count v to an instance
// draws v geometric random levels (P[level = ℓ] = 2^−(ℓ+1)) and keeps the
// maximum; the instance value x_j therefore grows like log2 of the total
// count inserted, and the estimator 2^x̄ (x̄ the mean over the J instances)
// approximates the SUM. Merging two sketches is the element-wise maximum,
// which makes the sketch order- and duplicate-insensitive — exactly the
// property that lets SECOA reduce SUM to J MAX aggregations.
//
// Generation deliberately performs J·v geometric draws, matching the paper's
// cost model C_sk·J·v (Equation 2): the benchmark figures depend on source
// cost growing linearly with the value domain. A closed-form sampler that
// draws the maximum directly is provided for simulations that only need the
// distribution (GenerateFast), and is exercised by the ablation benchmarks.
package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// Params fixes the sketch dimensions for a deployment.
type Params struct {
	J        int // number of instances; the paper uses 300 for ≤10% error at 90% confidence
	MaxLevel int // cap on instance values: ceil(log2(N·D_U)) per the paper's analysis
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.J < 1 {
		return errors.New("sketch: J must be positive")
	}
	if p.MaxLevel < 1 || p.MaxLevel > 255 {
		return errors.New("sketch: MaxLevel must be in [1,255]")
	}
	return nil
}

// DefaultParams returns the paper's configuration for n sources over a value
// domain with upper bound domainMax: J = 300, MaxLevel = ceil(log2(n·domainMax)).
func DefaultParams(n int, domainMax uint64) Params {
	prod := float64(n) * float64(domainMax)
	lvl := int(math.Ceil(math.Log2(prod)))
	if lvl < 1 {
		lvl = 1
	}
	if lvl > 255 {
		lvl = 255
	}
	return Params{J: 300, MaxLevel: lvl}
}

// Sketch is the J-instance vector of maxima.
type Sketch struct {
	X []uint8
}

// NewZero returns an empty sketch (all instances at level 0 meaning "no item
// observed"; level values are stored shifted by one so that 0 is empty and a
// drawn level ℓ is stored as ℓ+1).
func NewZero(p Params) Sketch { return Sketch{X: make([]uint8, p.J)} }

// geometricLevel draws ℓ ~ Geometric(1/2) (ℓ ≥ 0) capped at max, using the
// trailing zero count of a uniform 64-bit word.
func geometricLevel(r *rand.Rand, max int) int {
	ℓ := bits.TrailingZeros64(r.Uint64() | 1<<63) // |1<<63 caps the draw at 63
	if ℓ > max {
		ℓ = max
	}
	return ℓ
}

// Generate builds the sketch of a single source value v by performing J·v
// honest insertions (the paper's source-side cost).
func Generate(p Params, v uint64, r *rand.Rand) (Sketch, error) {
	if err := p.Validate(); err != nil {
		return Sketch{}, err
	}
	s := NewZero(p)
	for j := 0; j < p.J; j++ {
		maxLvl := -1
		for i := uint64(0); i < v; i++ {
			if ℓ := geometricLevel(r, p.MaxLevel-1); ℓ > maxLvl {
				maxLvl = ℓ
			}
		}
		s.X[j] = uint8(maxLvl + 1)
	}
	return s, nil
}

// GenerateFast draws each instance's maximum directly from its closed-form
// distribution P[max < ℓ] = (1 − 2^−ℓ)^v, avoiding the Θ(J·v) loop. Used by
// large-scale simulations and the ablation benchmarks; not used when
// reproducing the paper's cost figures.
func GenerateFast(p Params, v uint64, r *rand.Rand) (Sketch, error) {
	if err := p.Validate(); err != nil {
		return Sketch{}, err
	}
	s := NewZero(p)
	if v == 0 {
		return s, nil
	}
	vf := float64(v)
	for j := 0; j < p.J; j++ {
		u := r.Float64()
		// Invert the CDF: find smallest ℓ ≥ 0 with (1−2^−(ℓ+1))^v ≥ u.
		lvl := 0
		for lvl < p.MaxLevel-1 {
			if math.Pow(1-math.Exp2(-float64(lvl+1)), vf) >= u {
				break
			}
			lvl++
		}
		s.X[j] = uint8(lvl + 1)
	}
	return s, nil
}

// Merge returns the element-wise maximum of a and b.
func Merge(a, b Sketch) (Sketch, error) {
	if len(a.X) != len(b.X) {
		return Sketch{}, fmt.Errorf("sketch: merging mismatched sizes %d and %d", len(a.X), len(b.X))
	}
	out := Sketch{X: make([]uint8, len(a.X))}
	for i := range out.X {
		out.X[i] = a.X[i]
		if b.X[i] > out.X[i] {
			out.X[i] = b.X[i]
		}
	}
	return out, nil
}

// MergeAll folds any number of sketches.
func MergeAll(p Params, sketches ...Sketch) (Sketch, error) {
	acc := NewZero(p)
	var err error
	for _, s := range sketches {
		if acc, err = Merge(acc, s); err != nil {
			return Sketch{}, err
		}
	}
	return acc, nil
}

// maxGeomCorrection removes the bias of the max-of-geometrics statistic:
// for v insertions E[max] ≈ log2(v) + γ/ln2 − 1/2 ≈ log2(v) + 0.33275, so
// 2^x̄ concentrates around v·2^0.33275 ≈ 1.2593·v for large J.
const maxGeomCorrection = 1.2593

// Mean returns x̄, the average instance value (with the +1 storage shift
// removed; empty instances count as −1 and are clamped to 0).
func (s Sketch) Mean() float64 {
	if len(s.X) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.X {
		sum += float64(int(x) - 1)
	}
	m := sum / float64(len(s.X))
	if m < 0 {
		return 0
	}
	return m
}

// Max returns the largest instance value (storage shift removed).
func (s Sketch) Max() int {
	max := 0
	for _, x := range s.X {
		if int(x) > max {
			max = int(x)
		}
	}
	return max - 1
}

// EstimateRaw is the paper's estimator 2^x̄.
func (s Sketch) EstimateRaw() float64 { return math.Exp2(s.Mean()) }

// Estimate is 2^x̄ with the max-of-geometrics bias correction applied.
func (s Sketch) Estimate() float64 {
	empty := true
	for _, x := range s.X {
		if x != 0 {
			empty = false
			break
		}
	}
	if empty {
		return 0
	}
	return s.EstimateRaw() / maxGeomCorrection
}

// Clone deep-copies the sketch.
func (s Sketch) Clone() Sketch {
	out := Sketch{X: make([]uint8, len(s.X))}
	copy(out.X, s.X)
	return out
}

package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{J: 0, MaxLevel: 10}).Validate(); err == nil {
		t.Fatal("J=0 accepted")
	}
	if err := (Params{J: 1, MaxLevel: 0}).Validate(); err == nil {
		t.Fatal("MaxLevel=0 accepted")
	}
	if err := (Params{J: 1, MaxLevel: 256}).Validate(); err == nil {
		t.Fatal("MaxLevel=256 accepted")
	}
	if err := (Params{J: 300, MaxLevel: 23}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(1024, 5000)
	if p.J != 300 {
		t.Fatalf("J = %d", p.J)
	}
	want := int(math.Ceil(math.Log2(1024 * 5000)))
	if p.MaxLevel != want {
		t.Fatalf("MaxLevel = %d, want %d", p.MaxLevel, want)
	}
	if DefaultParams(1, 1).MaxLevel < 1 {
		t.Fatal("MaxLevel below 1")
	}
}

func TestGenerateZeroValue(t *testing.T) {
	p := Params{J: 10, MaxLevel: 20}
	r := rand.New(rand.NewSource(1))
	s, err := Generate(p, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range s.X {
		if x != 0 {
			t.Fatal("zero-count sketch has nonzero instance")
		}
	}
	if s.Estimate() != 0 {
		t.Fatalf("Estimate of empty sketch = %f", s.Estimate())
	}
}

func TestGenerateGrowsWithValue(t *testing.T) {
	p := Params{J: 64, MaxLevel: 40}
	r := rand.New(rand.NewSource(2))
	small, err := Generate(p, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Generate(p, 4096, r)
	if err != nil {
		t.Fatal(err)
	}
	if large.Mean() <= small.Mean() {
		t.Fatalf("mean did not grow: %f vs %f", small.Mean(), large.Mean())
	}
}

func TestMergeIsMax(t *testing.T) {
	a := Sketch{X: []uint8{1, 5, 0, 7}}
	b := Sketch{X: []uint8{3, 2, 9, 7}}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{3, 5, 9, 7}
	for i := range want {
		if m.X[i] != want[i] {
			t.Fatalf("merge[%d] = %d, want %d", i, m.X[i], want[i])
		}
	}
}

func TestMergeMismatch(t *testing.T) {
	if _, err := Merge(Sketch{X: []uint8{1}}, Sketch{X: []uint8{1, 2}}); err == nil {
		t.Fatal("mismatched merge accepted")
	}
}

func TestMergeProperties(t *testing.T) {
	// Idempotent, commutative, associative — the duplicate-insensitivity
	// SECOA relies on.
	p := Params{J: 32, MaxLevel: 30}
	r := rand.New(rand.NewSource(3))
	mk := func(v uint64) Sketch {
		s, err := Generate(p, v, r)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b, c := mk(10), mk(100), mk(1000)
	eq := func(x, y Sketch) bool {
		for i := range x.X {
			if x.X[i] != y.X[i] {
				return false
			}
		}
		return true
	}
	aa, _ := Merge(a, a)
	if !eq(aa, a) {
		t.Fatal("merge not idempotent")
	}
	ab, _ := Merge(a, b)
	ba, _ := Merge(b, a)
	if !eq(ab, ba) {
		t.Fatal("merge not commutative")
	}
	abc1, _ := Merge(ab, c)
	bc, _ := Merge(b, c)
	abc2, _ := Merge(a, bc)
	if !eq(abc1, abc2) {
		t.Fatal("merge not associative")
	}
}

func TestMergeAll(t *testing.T) {
	p := Params{J: 8, MaxLevel: 20}
	r := rand.New(rand.NewSource(4))
	var sketches []Sketch
	for i := 0; i < 5; i++ {
		s, err := Generate(p, 50, r)
		if err != nil {
			t.Fatal(err)
		}
		sketches = append(sketches, s)
	}
	all, err := MergeAll(p, sketches...)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < p.J; j++ {
		var want uint8
		for _, s := range sketches {
			if s.X[j] > want {
				want = s.X[j]
			}
		}
		if all.X[j] != want {
			t.Fatalf("MergeAll[%d] = %d, want %d", j, all.X[j], want)
		}
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// With J=300 the paper claims ≤10% relative error with 90% probability.
	// We check the corrected estimator lands within 35% on a few counts —
	// loose enough to be deterministic with a fixed seed, tight enough to
	// catch estimator regressions.
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := Params{J: 300, MaxLevel: 40}
	r := rand.New(rand.NewSource(5))
	for _, v := range []uint64{100, 1000, 100000} {
		s, err := GenerateFast(p, v, r)
		if err != nil {
			t.Fatal(err)
		}
		est := s.Estimate()
		rel := math.Abs(est-float64(v)) / float64(v)
		if rel > 0.35 {
			t.Fatalf("v=%d: estimate %.1f, relative error %.2f", v, est, rel)
		}
	}
}

func TestGenerateFastMatchesSlowDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Compare mean instance levels of the honest and closed-form samplers.
	p := Params{J: 2000, MaxLevel: 40}
	const v = 500
	slow, err := Generate(p, v, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := GenerateFast(p, v, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(slow.Mean() - fast.Mean()); d > 0.25 {
		t.Fatalf("sampler means differ by %.3f (slow %.3f, fast %.3f)", d, slow.Mean(), fast.Mean())
	}
}

func TestMaxLevelCap(t *testing.T) {
	p := Params{J: 50, MaxLevel: 3}
	r := rand.New(rand.NewSource(8))
	s, err := Generate(p, 1<<20, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range s.X {
		if int(x) > p.MaxLevel {
			t.Fatalf("instance %d exceeds MaxLevel %d", x, p.MaxLevel)
		}
	}
	if s.Max() > p.MaxLevel-1 {
		t.Fatalf("Max() = %d", s.Max())
	}
}

func TestClone(t *testing.T) {
	s := Sketch{X: []uint8{1, 2, 3}}
	c := s.Clone()
	c.X[0] = 9
	if s.X[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestMeanAndMaxEmpty(t *testing.T) {
	s := NewZero(Params{J: 4, MaxLevel: 10})
	if s.Mean() != 0 {
		t.Fatalf("Mean of empty = %f", s.Mean())
	}
	if s.Max() != -1 {
		t.Fatalf("Max of empty = %d", s.Max())
	}
	if (Sketch{}).Mean() != 0 {
		t.Fatal("Mean of nil sketch nonzero")
	}
}

func BenchmarkGenerateV1800(b *testing.B) {
	p := Params{J: 300, MaxLevel: 23}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, 1800, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateFastV1800(b *testing.B) {
	p := Params{J: 300, MaxLevel: 23}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateFast(p, 1800, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	p := Params{J: 300, MaxLevel: 23}
	r := rand.New(rand.NewSource(2))
	x, _ := GenerateFast(p, 1000, r)
	y, _ := GenerateFast(p, 2000, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// Quarantine registry: the memory between localizations.
//
// Localization (localize.go) names the routes that corrupted one epoch; the
// Quarantine decides what to do with that knowledge across epochs. Each route
// walks a suspect → confirmed → probation state machine:
//
//	clear ──report──▶ suspect ──report×ConfirmAfter──▶ confirmed
//	                     │ SuspectTTL clean epochs         │ QuarantineEpochs clean epochs
//	                     ▼                                 ▼
//	                   clear ◀──ProbationEpochs clean── probation ──report──▶ confirmed
//	                                                                (relapse: duration ×RelapseFactor)
//
// Only *confirmed* routes are pre-emptively excluded from queries — a single
// sighting can be a transient chaos fault (a bit flip, a torn write) and must
// not shrink N permanently. Confirmed routes decay back to probation after
// QuarantineEpochs clean epochs, so a node whose fault cleared is reinstated;
// a relapse while on probation re-confirms with a multiplicatively longer
// quarantine, so a persistent adversary converges to near-permanent exclusion
// while transient faults cost a bounded number of lost-coverage epochs.
package core

import "sync"

// RouteState is a route's position in the quarantine state machine.
type RouteState int

// Quarantine states.
const (
	RouteClear     RouteState = iota // unknown or fully reinstated
	RouteSuspect                     // blamed, not yet confirmed; still queried
	RouteConfirmed                   // excluded from queries
	RouteProbation                   // reinstated, watched; relapse re-confirms
)

// String names the state for logs.
func (s RouteState) String() string {
	switch s {
	case RouteClear:
		return "clear"
	case RouteSuspect:
		return "suspect"
	case RouteConfirmed:
		return "confirmed"
	case RouteProbation:
		return "probation"
	default:
		return "invalid"
	}
}

// QuarantineConfig tunes the state machine; the zero value selects defaults.
type QuarantineConfig struct {
	// ConfirmAfter is how many localizations must blame a route before it is
	// confirmed and excluded (default 2: one sighting is a suspect only).
	ConfirmAfter int
	// SuspectTTL is how many clean epochs erase an unconfirmed suspicion
	// (default 16).
	SuspectTTL int
	// QuarantineEpochs is how many clean epochs a confirmed route stays
	// excluded before reinstatement on probation (default 32).
	QuarantineEpochs int
	// ProbationEpochs is how many clean epochs on probation clear a route
	// entirely (default 16).
	ProbationEpochs int
	// RelapseFactor multiplies the quarantine duration each time a route on
	// probation is blamed again (default 2).
	RelapseFactor int
	// MaxQuarantineEpochs caps the relapse growth (default 4096).
	MaxQuarantineEpochs int
}

func (c QuarantineConfig) withDefaults() QuarantineConfig {
	if c.ConfirmAfter <= 0 {
		c.ConfirmAfter = 2
	}
	if c.SuspectTTL <= 0 {
		c.SuspectTTL = 16
	}
	if c.QuarantineEpochs <= 0 {
		c.QuarantineEpochs = 32
	}
	if c.ProbationEpochs <= 0 {
		c.ProbationEpochs = 16
	}
	if c.RelapseFactor < 2 {
		c.RelapseFactor = 2
	}
	if c.MaxQuarantineEpochs <= 0 {
		c.MaxQuarantineEpochs = 4096
	}
	return c
}

// QuarantinePopulation is a point-in-time census of the registry.
type QuarantinePopulation struct {
	Suspects  int `json:"suspects"`
	Confirmed int `json:"confirmed"`
	Probation int `json:"probation"`
}

// Total returns the number of routes in any non-clear state.
func (p QuarantinePopulation) Total() int { return p.Suspects + p.Confirmed + p.Probation }

// QuarantineStats accumulates lifecycle transitions.
type QuarantineStats struct {
	Confirmed  uint64 `json:"confirmed"`  // suspect/probation → confirmed transitions
	Reinstated uint64 `json:"reinstated"` // confirmed → probation transitions
	Cleared    uint64 `json:"cleared"`    // probation/suspect → clear transitions
	Relapses   uint64 `json:"relapses"`   // re-confirmations from probation
}

type quarantineEntry struct {
	state     RouteState
	sightings int   // blame count while suspect
	timer     int   // clean epochs remaining in the current state
	duration  int   // current quarantine length (grows on relapse)
	sources   []int // contributor ids the route carries
}

// Quarantine is a concurrency-safe registry of suspect and excluded routes.
type Quarantine struct {
	mu      sync.Mutex
	cfg     QuarantineConfig
	entries map[Route]*quarantineEntry
	stats   QuarantineStats
}

// NewQuarantine builds an empty registry.
func NewQuarantine(cfg QuarantineConfig) *Quarantine {
	return &Quarantine{cfg: cfg.withDefaults(), entries: map[Route]*quarantineEntry{}}
}

// Report records one localization blaming the route (whose subtree covers the
// given contributor ids) and returns the route's resulting state.
func (q *Quarantine) Report(r Route, sources []int) RouteState {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[r]
	if !ok {
		e = &quarantineEntry{state: RouteSuspect, duration: q.cfg.QuarantineEpochs}
		q.entries[r] = e
	}
	e.sources = append(e.sources[:0], sources...)
	switch e.state {
	case RouteSuspect:
		e.sightings++
		e.timer = q.cfg.SuspectTTL
		if e.sightings >= q.cfg.ConfirmAfter {
			e.state = RouteConfirmed
			e.timer = e.duration
			q.stats.Confirmed++
		}
	case RouteConfirmed:
		// Blamed again while excluded (an adaptive adversary re-implicating a
		// shared ancestor): restart the clock.
		e.timer = e.duration
	case RouteProbation:
		// Relapse: straight back to confirmed, for longer.
		e.duration *= q.cfg.RelapseFactor
		if e.duration > q.cfg.MaxQuarantineEpochs {
			e.duration = q.cfg.MaxQuarantineEpochs
		}
		e.state = RouteConfirmed
		e.timer = e.duration
		q.stats.Confirmed++
		q.stats.Relapses++
	}
	return e.state
}

// Tick records one clean epoch (no integrity failure): suspicions age out,
// confirmed routes progress toward probation and probation toward clearance.
func (q *Quarantine) Tick() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for r, e := range q.entries {
		e.timer--
		if e.timer > 0 {
			continue
		}
		switch e.state {
		case RouteSuspect:
			delete(q.entries, r)
			q.stats.Cleared++
		case RouteConfirmed:
			e.state = RouteProbation
			e.sightings = 0
			e.timer = q.cfg.ProbationEpochs
			q.stats.Reinstated++
		case RouteProbation:
			delete(q.entries, r)
			q.stats.Cleared++
		}
	}
}

// Excluded returns the sorted union of contributor ids carried by confirmed
// routes — the set queries must pre-emptively subtract.
func (q *Quarantine) Excluded() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var all []Suspect
	for r, e := range q.entries {
		if e.state == RouteConfirmed {
			all = append(all, Suspect{Route: r, Sources: e.sources})
		}
	}
	return UnionSources(all)
}

// StateOf returns the route's current state.
func (q *Quarantine) StateOf(r Route) RouteState {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.entries[r]; ok {
		return e.state
	}
	return RouteClear
}

// Population is a census of the registry.
func (q *Quarantine) Population() QuarantinePopulation {
	q.mu.Lock()
	defer q.mu.Unlock()
	var p QuarantinePopulation
	for _, e := range q.entries {
		switch e.state {
		case RouteSuspect:
			p.Suspects++
		case RouteConfirmed:
			p.Confirmed++
		case RouteProbation:
			p.Probation++
		}
	}
	return p
}

// Stats returns the cumulative transition counters.
func (q *Quarantine) Stats() QuarantineStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Key-schedule engine for the querier's evaluation phase.
//
// Table 3 of the paper makes the querier the Θ(N)-HMAC bottleneck: every
// epoch it re-derives k_{i,t} and ss_{i,t} for each contributing source. The
// Schedule type turns that cost into something a multi-core querier can
// amortise three independent ways:
//
//   - Parallelism: the HMAC fan-out over source ids has no data dependencies,
//     so the per-source derivations are chunked across a worker pool and the
//     commutative partial sums (Σ k_{i,t} mod p and the plain 256-bit Σ ss)
//     are combined at the end.
//   - Caching: prepared EpochStates are kept in an LRU keyed by
//     (epoch, contributor-set digest), so duplicate sinks, retransmitted
//     final PSRs and partial-SUM re-checks cost a constant number of field
//     operations instead of Θ(N) HMACs. Concurrent requests for the same key
//     coalesce onto one derivation (singleflight).
//   - Prefetch: epochs are known in advance (t, t+1, t+2, …), so serving
//     epoch t kicks off the derivation of (t+1, same contributor set) in the
//     background; by the time the next final PSR arrives its schedule is
//     usually already resident.
//
// Prefetching never weakens freshness: an EpochState is a pure function of
// (t, contributor set) over the long-term key ring, carries no per-PSR state,
// and verification still compares the embedded aggregate secret against the
// recomputed Σ ss_{i,t} for exactly the epoch and subset being evaluated. A
// cached entry for the wrong epoch or subset can never be consulted because
// both are part of the cache key.
package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/secretshare"
	"github.com/sies/sies/internal/uint256"
)

// DefaultScheduleCacheSize is the EpochState LRU capacity when
// ScheduleConfig.CacheSize is zero: enough for the in-flight window of a
// deployment with several duplicate sinks plus forensic re-checks, while one
// entry costs only a few hundred bytes.
const DefaultScheduleCacheSize = 128

// ScheduleConfig tunes a Schedule.
type ScheduleConfig struct {
	// Workers caps the goroutines deriving per-source keys for one epoch;
	// zero or negative means GOMAXPROCS.
	Workers int
	// CacheSize is the EpochState LRU capacity; zero or negative means
	// DefaultScheduleCacheSize.
	CacheSize int
	// Prefetch derives epoch t+1's schedule in the background whenever epoch
	// t is requested.
	Prefetch bool
}

// ScheduleStats is a snapshot of a Schedule's counters, exposed through the
// transport Health() surface and the CLIs.
type ScheduleStats struct {
	Derivations  uint64        // per-source (k_{i,t}, ss_{i,t}) derivations performed
	Hits         uint64        // EpochState requests served from the cache
	Misses       uint64        // EpochState requests that had to derive
	Prefetches   uint64        // background derivations started
	PrefetchWins uint64        // requests whose entry a prefetch had produced
	Evaluations  uint64        // PSRs evaluated through the schedule
	EvalTime     time.Duration // cumulative Evaluate latency (post-derivation)
}

// AvgEvalTime is the mean per-PSR evaluation latency.
func (s ScheduleStats) AvgEvalTime() time.Duration {
	if s.Evaluations == 0 {
		return 0
	}
	return s.EvalTime / time.Duration(s.Evaluations)
}

// scheduleKey identifies one cached EpochState: the epoch plus a digest of
// the canonical contributor set (the full set shares one sentinel digest).
type scheduleKey struct {
	epoch prf.Epoch
	set   [sha256.Size]byte
}

// fullSetDigest is the sentinel digest for "all sources contribute".
var fullSetDigest = sha256.Sum256([]byte("sies/schedule/full-contributor-set"))

func setDigest(ids []int) [sha256.Size]byte {
	if ids == nil {
		return fullSetDigest
	}
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(len(ids)))
	h.Write(b[:])
	for _, id := range ids {
		binary.BigEndian.PutUint64(b[:], uint64(id))
		h.Write(b[:])
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// scheduleEntry is one cache slot. done closes when es/err are final, so
// concurrent requests for the same key wait instead of re-deriving.
type scheduleEntry struct {
	done       chan struct{}
	es         *EpochState
	err        error
	prefetched bool
	claimed    atomic.Bool // first foreground use of a prefetched entry
	elem       *list.Element
}

// Schedule is a concurrency-safe key-schedule engine for one Querier.
type Schedule struct {
	q        *Querier
	workers  int
	prefetch bool
	capacity int

	mu      sync.Mutex
	entries map[scheduleKey]*scheduleEntry
	order   *list.List // of scheduleKey; front = most recently used

	derivations  atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	prefetches   atomic.Uint64
	prefetchWins atomic.Uint64
	evaluations  atomic.Uint64
	evalNanos    atomic.Uint64
}

// NewSchedule wraps a querier in a key-schedule engine.
func NewSchedule(q *Querier, cfg ScheduleConfig) *Schedule {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	capacity := cfg.CacheSize
	if capacity <= 0 {
		capacity = DefaultScheduleCacheSize
	}
	return &Schedule{
		q:        q,
		workers:  workers,
		prefetch: cfg.Prefetch,
		capacity: capacity,
		entries:  map[scheduleKey]*scheduleEntry{},
		order:    list.New(),
	}
}

// Querier returns the wrapped querier.
func (s *Schedule) Querier() *Querier { return s.q }

// Stats snapshots the counters.
func (s *Schedule) Stats() ScheduleStats {
	return ScheduleStats{
		Derivations:  s.derivations.Load(),
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Prefetches:   s.prefetches.Load(),
		PrefetchWins: s.prefetchWins.Load(),
		Evaluations:  s.evaluations.Load(),
		EvalTime:     time.Duration(s.evalNanos.Load()),
	}
}

// canonical normalises a contributor list to the cache's canonical form:
// nil for the full set (also recognised when an explicit list covers every
// source), otherwise a sorted copy. Validation matches the direct
// PrepareEpoch path: duplicate, negative or out-of-range ids are rejected
// with ErrBadContributors — a duplicated id silently collapsed here would
// let a hostile failure report double-count a blinding key.
func (s *Schedule) canonical(contributors []int) ([]int, error) {
	ids, err := CheckContributors(s.q.ring.N(), contributors)
	if err != nil {
		return nil, err
	}
	if len(ids) == s.q.ring.N() {
		return nil, nil // explicit full set aliases the fast path
	}
	return ids, nil
}

// EpochState returns the prepared schedule for (t, contributors), deriving it
// in parallel on a miss and serving it from the LRU on a hit. contributors
// follows EvaluateSubset semantics (nil = all sources).
func (s *Schedule) EpochState(t prf.Epoch, contributors []int) (*EpochState, error) {
	ids, err := s.canonical(contributors)
	if err != nil {
		return nil, err
	}
	es, err := s.state(t, ids, false)
	if err == nil && s.prefetch {
		s.prefetchAhead(t+1, ids)
	}
	return es, err
}

// Evaluate decrypts and verifies a final PSR through the cached schedule —
// the drop-in replacement for Querier.Evaluate/EvaluateSubset on hot paths.
func (s *Schedule) Evaluate(t prf.Epoch, final PSR, contributors []int) (Result, error) {
	es, err := s.EpochState(t, contributors)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	res, err := es.Evaluate(final)
	s.evalNanos.Add(uint64(time.Since(start)))
	s.evaluations.Add(1)
	return res, err
}

// state is the cache lookup/derive core. ids must already be canonical.
func (s *Schedule) state(t prf.Epoch, ids []int, isPrefetch bool) (*EpochState, error) {
	key := scheduleKey{epoch: t, set: setDigest(ids)}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.order.MoveToFront(e.elem)
		s.mu.Unlock()
		if isPrefetch {
			return nil, nil // someone else is already on it
		}
		s.hits.Add(1)
		<-e.done
		if e.prefetched && e.err == nil && e.claimed.CompareAndSwap(false, true) {
			s.prefetchWins.Add(1)
		}
		return e.es, e.err
	}
	e := &scheduleEntry{done: make(chan struct{}), prefetched: isPrefetch}
	e.elem = s.order.PushFront(key)
	s.entries[key] = e
	for s.order.Len() > s.capacity {
		back := s.order.Back()
		delete(s.entries, back.Value.(scheduleKey))
		s.order.Remove(back)
	}
	s.mu.Unlock()
	if isPrefetch {
		s.prefetches.Add(1)
	} else {
		s.misses.Add(1)
	}

	deriveIDs := ids
	if deriveIDs == nil {
		deriveIDs = allIDs(s.q.ring.N())
	}
	es, err := s.q.prepareParallel(t, deriveIDs, s.workers)
	s.derivations.Add(uint64(len(deriveIDs)))
	e.es, e.err = es, err
	close(e.done)
	if err != nil {
		// Failed derivations are not cached; the next request retries.
		s.mu.Lock()
		if cur, ok := s.entries[key]; ok && cur == e {
			s.order.Remove(e.elem)
			delete(s.entries, key)
		}
		s.mu.Unlock()
	}
	return es, err
}

// prefetchAhead starts a background derivation for (t, ids) unless an entry
// already exists. ids is canonical and treated as read-only.
func (s *Schedule) prefetchAhead(t prf.Epoch, ids []int) {
	key := scheduleKey{epoch: t, set: setDigest(ids)}
	s.mu.Lock()
	_, ok := s.entries[key]
	s.mu.Unlock()
	if ok {
		return
	}
	go s.state(t, ids, true)
}

// prepareParallel derives an EpochState with the per-source HMAC fan-out
// split across up to `workers` goroutines. Both accumulators are commutative
// — Σ k_{i,t} is a field sum, Σ ss_{i,t} a plain 256-bit sum — so chunked
// partials combine exactly. workers ≤ 1 runs inline with no goroutines (the
// sequential path PrepareEpoch also uses).
//
// The hot loop runs through the reusable derivation engine (prf.RingDerivers
// batch API: no HMAC key schedules, no allocations) and sums the raw k_{i,t}
// outputs through the lazy 512-bit accumulator: reduce-then-sum equals
// sum-then-reduce mod p, so one Reduce512 per chunk replaces Θ(N) per-key
// reductions and field additions.
func (q *Querier) prepareParallel(t prf.Epoch, ids []int, workers int) (*EpochState, error) {
	if len(ids) == 0 {
		return nil, errors.New("sies: no contributing sources")
	}
	field := q.params.Field()
	rd := q.derivers()
	ktRaw := rd.GlobalKey(t)
	Kt := field.Reduce(uint256.MustSetBytes(ktRaw[:]))
	if Kt.IsZero() {
		Kt = uint256.One // mirror Source.epochState
	}
	kInv, err := field.Inv(Kt)
	if err != nil {
		return nil, err
	}

	if workers > len(ids) {
		workers = len(ids)
	}
	type partial struct {
		kSum  uint256.Int
		ssSum uint256.Int
		err   error
	}
	sumChunk := func(chunk []int) partial {
		var p partial
		var kacc uint256.Accumulator
		err := rd.DeriveRange(t, chunk, func(_ int, kit [prf.Size256]byte, ss [prf.Size1]byte) error {
			kacc.Add(uint256.MustSetBytes(kit[:]))
			sum, carry := p.ssSum.Add(secretshare.Share(ss).Int())
			if carry != 0 {
				return errors.New("sies: share sum overflowed 256 bits")
			}
			p.ssSum = sum
			return nil
		})
		if err != nil {
			p.err = err
			return p
		}
		p.kSum = kacc.Sum(field)
		return p
	}

	var total partial
	if workers <= 1 {
		total = sumChunk(ids)
		if total.err != nil {
			return nil, total.err
		}
	} else {
		parts := make([]partial, workers)
		chunk := (len(ids) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(ids) {
				hi = len(ids)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w int, chunk []int) {
				defer wg.Done()
				parts[w] = sumChunk(chunk)
			}(w, ids[lo:hi])
		}
		wg.Wait()
		for _, p := range parts {
			if p.err != nil {
				return nil, p.err
			}
			total.kSum = field.Add(total.kSum, p.kSum)
			sum, carry := total.ssSum.Add(p.ssSum)
			if carry != 0 {
				return nil, errors.New("sies: share sum overflowed 256 bits")
			}
			total.ssSum = sum
		}
	}
	return &EpochState{
		querier:  q,
		epoch:    t,
		n:        len(ids),
		kInv:     kInv,
		kSum:     total.kSum,
		expected: total.ssSum,
	}, nil
}

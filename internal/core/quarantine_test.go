package core

import (
	"reflect"
	"testing"
)

// tick advances q by n clean epochs.
func tick(q *Quarantine, n int) {
	for i := 0; i < n; i++ {
		q.Tick()
	}
}

func TestQuarantineLifecycle(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{ConfirmAfter: 2, QuarantineEpochs: 3, ProbationEpochs: 2})
	r := Route{Aggregator: true, ID: 7}

	// First blame: suspect only — one sighting can be a transient fault, so
	// nothing is excluded yet.
	if s := q.Report(r, []int{4, 5}); s != RouteSuspect {
		t.Fatalf("first report → %v, want suspect", s)
	}
	if got := q.Excluded(); got != nil {
		t.Fatalf("suspect already excluded: %v", got)
	}

	// Second blame: confirmed, and its subtree is excluded.
	if s := q.Report(r, []int{4, 5}); s != RouteConfirmed {
		t.Fatalf("second report → %v, want confirmed", s)
	}
	if got := q.Excluded(); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Fatalf("excluded = %v, want [4 5]", got)
	}

	// QuarantineEpochs clean epochs: reinstated on probation, exclusion lifts.
	tick(q, 3)
	if s := q.StateOf(r); s != RouteProbation {
		t.Fatalf("after quarantine → %v, want probation", s)
	}
	if got := q.Excluded(); got != nil {
		t.Fatalf("probation still excluded: %v", got)
	}
	if st := q.Stats(); st.Confirmed != 1 || st.Reinstated != 1 {
		t.Fatalf("stats %+v", st)
	}

	// ProbationEpochs more clean epochs: fully cleared.
	tick(q, 2)
	if s := q.StateOf(r); s != RouteClear {
		t.Fatalf("after probation → %v, want clear", s)
	}
	if st := q.Stats(); st.Cleared != 1 {
		t.Fatalf("stats %+v", st)
	}
	if p := q.Population(); p.Total() != 0 {
		t.Fatalf("population %+v not empty", p)
	}
}

func TestQuarantineRelapseDoublesDuration(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{ConfirmAfter: 1, QuarantineEpochs: 2, ProbationEpochs: 4, RelapseFactor: 2})
	r := Route{ID: 3}

	q.Report(r, []int{3}) // confirmed immediately (ConfirmAfter: 1)
	tick(q, 2)            // → probation
	if s := q.StateOf(r); s != RouteProbation {
		t.Fatalf("state %v", s)
	}

	// Relapse: straight back to confirmed, with the duration doubled to 4.
	if s := q.Report(r, []int{3}); s != RouteConfirmed {
		t.Fatalf("relapse → %v, want confirmed", s)
	}
	if st := q.Stats(); st.Relapses != 1 {
		t.Fatalf("stats %+v", st)
	}
	tick(q, 2) // the old duration would have reinstated here
	if s := q.StateOf(r); s != RouteConfirmed {
		t.Fatalf("relapsed route reinstated after old duration: %v", s)
	}
	tick(q, 2)
	if s := q.StateOf(r); s != RouteProbation {
		t.Fatalf("relapsed route not reinstated after doubled duration: %v", s)
	}
}

func TestQuarantineRelapseCap(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{ConfirmAfter: 1, QuarantineEpochs: 4, ProbationEpochs: 1, RelapseFactor: 2, MaxQuarantineEpochs: 8})
	r := Route{ID: 0}
	q.Report(r, []int{0})
	for i := 0; i < 3; i++ { // repeated relapses: 4 → 8 → capped at 8
		for q.StateOf(r) == RouteConfirmed {
			tick(q, 1)
		}
		q.Report(r, []int{0}) // relapse from probation
	}
	// Duration is capped: 8 clean epochs must reinstate.
	tick(q, 8)
	if s := q.StateOf(r); s != RouteProbation {
		t.Fatalf("capped duration did not reinstate: %v", s)
	}
}

func TestQuarantineSuspectDecay(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{ConfirmAfter: 2, SuspectTTL: 3})
	r := Route{Aggregator: true, ID: 1}
	q.Report(r, []int{0, 1})
	tick(q, 3)
	if s := q.StateOf(r); s != RouteClear {
		t.Fatalf("suspicion did not age out: %v", s)
	}
	// A fresh blame after decay starts the count over — still only a suspect.
	if s := q.Report(r, []int{0, 1}); s != RouteSuspect {
		t.Fatalf("post-decay report → %v, want suspect", s)
	}
}

func TestQuarantineReReportRestartsClock(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{ConfirmAfter: 1, QuarantineEpochs: 3})
	r := Route{ID: 9}
	q.Report(r, []int{9})
	tick(q, 2)
	q.Report(r, []int{9}) // blamed again while excluded: clock restarts
	tick(q, 2)
	if s := q.StateOf(r); s != RouteConfirmed {
		t.Fatalf("restarted clock expired early: %v", s)
	}
	tick(q, 1)
	if s := q.StateOf(r); s != RouteProbation {
		t.Fatalf("state %v, want probation", s)
	}
}

func TestQuarantineExcludedUnion(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{ConfirmAfter: 1})
	q.Report(Route{Aggregator: true, ID: 1}, []int{2, 0})
	q.Report(Route{Aggregator: true, ID: 2}, []int{2, 5})
	q.Report(Route{ID: 7}, []int{7}) // suspect only after this single... ConfirmAfter=1 confirms
	if got := q.Excluded(); !reflect.DeepEqual(got, []int{0, 2, 5, 7}) {
		t.Fatalf("excluded = %v", got)
	}
	p := q.Population()
	if p.Confirmed != 3 || p.Suspects != 0 {
		t.Fatalf("population %+v", p)
	}
}

package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// runEpoch drives one full epoch through a flat topology: every source
// encrypts, a single aggregator merges everything, the querier evaluates.
func runEpoch(t *testing.T, q *Querier, sources []*Source, epoch prf.Epoch, values []uint64) (Result, error) {
	t.Helper()
	agg := NewAggregator(q.Params().Field())
	var final PSR
	for i, s := range sources {
		psr, err := s.Encrypt(epoch, values[i])
		if err != nil {
			t.Fatalf("source %d encrypt: %v", i, err)
		}
		final = agg.MergeInto(final, psr)
	}
	return q.Evaluate(epoch, final)
}

func TestEndToEndSum(t *testing.T) {
	q, sources, err := Setup(16)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	values := make([]uint64, 16)
	var want uint64
	for i := range values {
		values[i] = uint64(r.Intn(5000))
		want += values[i]
	}
	res, err := runEpoch(t, q, sources, 1, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != want {
		t.Fatalf("SUM = %d, want %d", res.Sum, want)
	}
	if res.N != 16 || res.Epoch != 1 {
		t.Fatalf("result metadata %+v", res)
	}
}

func TestMultipleEpochs(t *testing.T) {
	q, sources, err := Setup(8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for epoch := prf.Epoch(0); epoch < 20; epoch++ {
		values := make([]uint64, 8)
		var want uint64
		for i := range values {
			values[i] = uint64(r.Intn(100))
			want += values[i]
		}
		res, err := runEpoch(t, q, sources, epoch, values)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if res.Sum != want {
			t.Fatalf("epoch %d: SUM = %d, want %d", epoch, res.Sum, want)
		}
	}
}

func TestZeroReadings(t *testing.T) {
	// Sources failing the WHERE predicate transmit 0 (paper §III-B).
	q, sources, err := Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runEpoch(t, q, sources, 3, []uint64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 0 {
		t.Fatalf("SUM of zeros = %d", res.Sum)
	}
}

func TestTreeMergingEqualsFlatMerging(t *testing.T) {
	// Merging is modular addition, hence associative: any tree shape yields
	// the same final PSR.
	q, sources, err := Setup(8)
	if err != nil {
		t.Fatal(err)
	}
	values := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	agg := NewAggregator(q.Params().Field())

	psrs := make([]PSR, 8)
	for i, s := range sources {
		psr, err := s.Encrypt(5, values[i])
		if err != nil {
			t.Fatal(err)
		}
		psrs[i] = psr
	}
	flat := agg.Merge(psrs...)
	// Two-level tree: pairs, then pairs of pairs.
	l1 := []PSR{
		agg.Merge(psrs[0], psrs[1]), agg.Merge(psrs[2], psrs[3]),
		agg.Merge(psrs[4], psrs[5]), agg.Merge(psrs[6], psrs[7]),
	}
	tree := agg.Merge(agg.Merge(l1[0], l1[1]), agg.Merge(l1[2], l1[3]))
	if flat != tree {
		t.Fatal("tree merge differs from flat merge")
	}
	res, err := q.Evaluate(5, tree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 36 {
		t.Fatalf("SUM = %d, want 36", res.Sum)
	}
}

func TestTamperingDetected(t *testing.T) {
	q, sources, err := Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	var final PSR
	for _, s := range sources {
		psr, err := s.Encrypt(1, 10)
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
	}
	// CMT-style injection attack: add an arbitrary delta to the ciphertext.
	f := q.Params().Field()
	tampered := PSR{C: f.Add(final.C, uint256.NewInt(7))}
	if _, err := q.Evaluate(1, tampered); !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrResultOverflow) {
		t.Fatalf("tampered PSR accepted: %v", err)
	}
}

func TestDroppedPSRDetected(t *testing.T) {
	q, sources, err := Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	var final PSR
	for i, s := range sources {
		if i == 2 {
			continue // malicious aggregator silently drops source 2
		}
		psr, err := s.Encrypt(1, 5)
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
	}
	if _, err := q.Evaluate(1, final); !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrResultOverflow) {
		t.Fatalf("dropped PSR accepted: %v", err)
	}
}

func TestInjectedPSRDetected(t *testing.T) {
	q, sources, err := Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	var final PSR
	for _, s := range sources {
		psr, err := s.Encrypt(1, 5)
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
	}
	// Inject a spurious PSR encrypted by a replayed source 0 (duplicate).
	dup, err := sources[0].Encrypt(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	final = agg.MergeInto(final, dup)
	if _, err := q.Evaluate(1, final); !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrResultOverflow) {
		t.Fatalf("injected PSR accepted: %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	// A legitimate final PSR from epoch 1 presented at epoch 2 must fail:
	// freshness comes from epoch-bound shares (Theorem 4).
	q, sources, err := Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	var old PSR
	for _, s := range sources {
		psr, err := s.Encrypt(1, 9)
		if err != nil {
			t.Fatal(err)
		}
		old = agg.MergeInto(old, psr)
	}
	if _, err := q.Evaluate(2, old); !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrResultOverflow) {
		t.Fatalf("replayed PSR accepted: %v", err)
	}
}

func TestFailedSourceSubsetEvaluation(t *testing.T) {
	// Node-failure handling (§IV-B): source 3 fails; the querier verifies
	// against the surviving subset.
	q, sources, err := Setup(5)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	var final PSR
	contributors := []int{0, 1, 2, 4}
	var want uint64
	for _, id := range contributors {
		psr, err := sources[id].Encrypt(7, uint64(id)+100)
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
		want += uint64(id) + 100
	}
	res, err := q.EvaluateSubset(7, final, contributors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != want || res.N != 4 {
		t.Fatalf("subset result %+v, want sum %d", res, want)
	}
	// Full-set evaluation of the same PSR must fail.
	if _, err := q.Evaluate(7, final); !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrResultOverflow) {
		t.Fatalf("missing source accepted in full-set evaluation: %v", err)
	}
	// A lying failure report (excluding a source that did contribute) fails.
	if _, err := q.EvaluateSubset(7, final, []int{0, 1, 2}); !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrResultOverflow) {
		t.Fatalf("wrong subset accepted: %v", err)
	}
}

func TestEvaluateSubsetEmpty(t *testing.T) {
	q, _, err := Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EvaluateSubset(1, PSR{}, []int{}); err == nil {
		t.Fatal("empty contributor set accepted")
	}
}

func TestMaxSumBoundary(t *testing.T) {
	// Two sources at 2^31 readings sum to 2^32, overflowing the 32-bit value
	// field — must be reported, not silently wrapped.
	q, sources, err := Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	a, err := sources[0].Encrypt(1, 1<<31)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sources[1].Encrypt(1, 1<<31)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Evaluate(1, agg.Merge(a, b)); !errors.Is(err, ErrResultOverflow) {
		t.Fatalf("overflowing SUM: %v", err)
	}
}

func TestWideValues(t *testing.T) {
	q, sources, err := Setup(2, WithWideValues())
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	big := uint64(1) << 40
	a, err := sources[0].Encrypt(1, big)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sources[1].Encrypt(1, big)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Evaluate(1, agg.Merge(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 2*big {
		t.Fatalf("wide SUM = %d, want %d", res.Sum, 2*big)
	}
}

func TestCustomField(t *testing.T) {
	f, err := uint256.RandomPrimeField()
	if err != nil {
		t.Fatal(err)
	}
	q, sources, err := Setup(3, WithField(f))
	if err != nil {
		// A random 256-bit prime may genuinely be too small for the maximal
		// aggregate; retry once with the default is not meaningful here, so
		// only tolerate the specific layout-overflow error.
		t.Skipf("random field rejected: %v", err)
	}
	res, err := runEpoch(t, q, sources, 2, []uint64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 60 {
		t.Fatalf("SUM = %d", res.Sum)
	}
}

func TestSourceValueRange(t *testing.T) {
	_, sources, err := Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sources[0].Encrypt(1, 1<<33); err == nil {
		t.Fatal("oversized reading accepted by 32-bit layout")
	}
}

func TestPSRWireRoundTrip(t *testing.T) {
	q, sources, err := Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	psr, err := sources[0].Encrypt(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	wire := psr.Bytes()
	back, err := ParsePSR(wire[:], q.Params().Field())
	if err != nil {
		t.Fatal(err)
	}
	if back != psr {
		t.Fatal("PSR wire round trip failed")
	}
}

func TestParsePSRErrors(t *testing.T) {
	f := uint256.NewDefaultField()
	if _, err := ParsePSR(make([]byte, 31), f); !errors.Is(err, ErrBadPSR) {
		t.Fatalf("short PSR: %v", err)
	}
	// 2^256-1 ≥ p must be rejected.
	bad := make([]byte, 32)
	for i := range bad {
		bad[i] = 0xff
	}
	if _, err := ParsePSR(bad, f); !errors.Is(err, ErrBadPSR) {
		t.Fatalf("out-of-range PSR: %v", err)
	}
}

func TestSetupValidation(t *testing.T) {
	if _, _, err := Setup(0); err == nil {
		t.Fatal("Setup(0) accepted")
	}
	if _, err := NewParams(3, WithField(nil)); err == nil {
		t.Fatal("nil field accepted")
	}
}

func TestEpochKeyCaching(t *testing.T) {
	_, sources, err := Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	s := sources[0]
	es1, ss1, err := s.epochState(9)
	if err != nil {
		t.Fatal(err)
	}
	es2, ss2, err := s.epochState(9)
	if err != nil {
		t.Fatal(err)
	}
	if es1 != es2 {
		t.Fatal("repeated epochState did not return the cached state")
	}
	if ss1 != ss2 {
		t.Fatal("cached epoch share differs")
	}
	_, ss3, err := s.epochState(10)
	if err != nil {
		t.Fatal(err)
	}
	if ss3 == ss1 {
		t.Fatal("epoch shares identical across epochs")
	}
}

func TestContributorCodecRoundTrip(t *testing.T) {
	ids := []int{0, 5, 17, 1023}
	back, err := DecodeContributors(EncodeContributors(ids))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ids) {
		t.Fatalf("len = %d", len(back))
	}
	for i := range ids {
		if back[i] != ids[i] {
			t.Fatalf("ids[%d] = %d, want %d", i, back[i], ids[i])
		}
	}
	if _, err := DecodeContributors([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := DecodeContributors(append(EncodeContributors(ids), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestDecodeContributorsOverflowHeader regresses the uint32 length-check
// wrap: a 4-byte frame announcing n = 1<<30 made 4*n wrap to 0, so the old
// check passed and the decoder allocated a gigabyte-scale slice. Both wrap
// points must now be rejected before any allocation.
func TestDecodeContributorsOverflowHeader(t *testing.T) {
	for _, buf := range [][]byte{
		{0x40, 0x00, 0x00, 0x00}, // n = 1<<30, 4*n ≡ 0 (mod 2^32)
		{0x80, 0x00, 0x00, 0x00}, // n = 1<<31, 4*n ≡ 0 (mod 2^32)
		{0xff, 0xff, 0xff, 0xff}, // n = 2^32-1
		append([]byte{0x40, 0x00, 0x00, 0x01}, make([]byte, 4)...),
	} {
		if ids, err := DecodeContributors(buf); err == nil {
			t.Fatalf("hostile header % x decoded to %d ids", buf[:4], len(ids))
		}
	}
}

func TestDecodeContributorsBounded(t *testing.T) {
	const max = 16
	good := EncodeContributors([]int{0, 3, 15})
	if _, err := DecodeContributorsBounded(good, max); err != nil {
		t.Fatalf("canonical in-range list rejected: %v", err)
	}
	cases := map[string][]int{
		"out of range": {0, 16},
		"duplicate":    {3, 3},
		"unsorted":     {5, 2},
	}
	for name, ids := range cases {
		if _, err := DecodeContributorsBounded(EncodeContributors(ids), max); err == nil {
			t.Fatalf("%s list accepted", name)
		}
	}
	// maxID 0 disables the range/canonical checks (trusted local input).
	if _, err := DecodeContributorsBounded(EncodeContributors([]int{5, 2}), 0); err != nil {
		t.Fatalf("unbounded decode rejected unsorted list: %v", err)
	}
	// The empty list stays valid under bounding — partial flushes encode it.
	if ids, err := DecodeContributorsBounded(EncodeContributors(nil), max); err != nil || len(ids) != 0 {
		t.Fatalf("empty list: %v, %v", ids, err)
	}
}

func TestLargeDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("large deployment test")
	}
	const n = 1024
	q, sources, err := Setup(n)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	var final PSR
	var want uint64
	for i, s := range sources {
		v := uint64(i * 3)
		psr, err := s.Encrypt(11, v)
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
		want += v
	}
	res, err := q.Evaluate(11, final)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != want {
		t.Fatalf("SUM = %d, want %d", res.Sum, want)
	}
}

func BenchmarkSourceEncrypt(b *testing.B) {
	_, sources, err := Setup(1024)
	if err != nil {
		b.Fatal(err)
	}
	s := sources[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encrypt(prf.Epoch(i), 4242); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregatorMerge(b *testing.B) {
	q, sources, err := Setup(4)
	if err != nil {
		b.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	psrs := make([]PSR, 4)
	for i, s := range sources {
		psrs[i], err = s.Encrypt(1, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Merge(psrs...)
	}
}

func BenchmarkQuerierEvaluate1024(b *testing.B) {
	const n = 1024
	q, sources, err := Setup(n)
	if err != nil {
		b.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	var final PSR
	for _, s := range sources {
		psr, err := s.Encrypt(1, 100)
		if err != nil {
			b.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Evaluate(1, final); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPrepareEpochReuse(t *testing.T) {
	// One EpochState must evaluate many PSRs of the same epoch correctly and
	// still reject tampered ones.
	q, sources, err := Setup(8)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	es, err := q.PrepareEpoch(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		var final PSR
		var want uint64
		for i, s := range sources {
			v := uint64(trial*100 + i)
			psr, err := s.Encrypt(3, v)
			if err != nil {
				t.Fatal(err)
			}
			final = agg.MergeInto(final, psr)
			want += v
		}
		res, err := es.Evaluate(final)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Sum != want {
			t.Fatalf("trial %d: SUM %d, want %d", trial, res.Sum, want)
		}
		tampered := PSR{C: q.Params().Field().Add(final.C, uint256.One)}
		if _, err := es.Evaluate(tampered); err == nil {
			t.Fatalf("trial %d: tampered PSR accepted by prepared state", trial)
		}
	}
}

func TestPrepareEpochSubset(t *testing.T) {
	q, sources, err := Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	es, err := q.PrepareEpoch(1, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sources[0].Encrypt(1, 10)
	c, _ := sources[2].Encrypt(1, 30)
	res, err := es.Evaluate(agg.Merge(a, c))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 40 || res.N != 2 {
		t.Fatalf("subset result %+v", res)
	}
	if _, err := q.PrepareEpoch(1, []int{}); err == nil {
		t.Fatal("empty contributor set accepted")
	}
}

func BenchmarkEpochStateEvaluate1024(b *testing.B) {
	const n = 1024
	q, sources, err := Setup(n)
	if err != nil {
		b.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	var final PSR
	for _, s := range sources {
		psr, err := s.Encrypt(1, 100)
		if err != nil {
			b.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
	}
	es, err := q.PrepareEpoch(1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := es.Evaluate(final); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReconstructedPartiesInteroperate(t *testing.T) {
	// Parties rebuilt from exported key material (the networked deployment
	// path) must interoperate with the original deployment.
	q, sources, err := Setup(3)
	if err != nil {
		t.Fatal(err)
	}
	params := q.Params()
	ring := q.KeyRing()

	rebuiltQ, err := NewQuerier(ring, params)
	if err != nil {
		t.Fatal(err)
	}
	global, k1, err := ring.SourceCredentials(1)
	if err != nil {
		t.Fatal(err)
	}
	rebuiltS1, err := NewSource(1, global, k1, params)
	if err != nil {
		t.Fatal(err)
	}

	agg := NewAggregator(params.Field())
	a, err := sources[0].Encrypt(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rebuiltS1.Encrypt(2, 20) // rebuilt source
	if err != nil {
		t.Fatal(err)
	}
	c, err := sources[2].Encrypt(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rebuiltQ.Evaluate(2, agg.Merge(a, b, c)) // rebuilt querier
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 60 {
		t.Fatalf("SUM = %d", res.Sum)
	}
}

func TestNewSourceValidation(t *testing.T) {
	q, _, err := Setup(2)
	if err != nil {
		t.Fatal(err)
	}
	params := q.Params()
	if _, err := NewSource(5, []byte{1}, []byte{2}, params); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := NewSource(0, nil, []byte{2}, params); err == nil {
		t.Fatal("missing global key accepted")
	}
	if _, err := NewQuerier(nil, params); err == nil {
		t.Fatal("nil ring accepted")
	}
	other, _, err := Setup(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuerier(other.KeyRing(), params); err == nil {
		t.Fatal("ring/params size mismatch accepted")
	}
}

func TestNormalizeIDs(t *testing.T) {
	cases := []struct{ in, want []int }{
		{nil, nil},
		{[]int{}, nil},
		{[]int{3}, []int{3}},
		{[]int{5, 1, 3, 1, 5, 5}, []int{1, 3, 5}},
		{[]int{2, 2, 2}, []int{2}},
		{[]int{0, 1, 2}, []int{0, 1, 2}},
	}
	for _, c := range cases {
		orig := append([]int(nil), c.in...)
		got := NormalizeIDs(c.in)
		if !reflect.DeepEqual(got, c.want) && !(len(got) == 0 && len(c.want) == 0) {
			t.Errorf("NormalizeIDs(%v) = %v, want %v", orig, got, c.want)
		}
		if !reflect.DeepEqual(c.in, orig) && !(len(c.in) == 0 && len(orig) == 0) {
			t.Errorf("NormalizeIDs mutated its argument: %v -> %v", orig, c.in)
		}
	}
}

func TestSubtract(t *testing.T) {
	cases := []struct {
		n      int
		failed []int
		want   []int
	}{
		{4, nil, []int{0, 1, 2, 3}},
		{4, []int{1, 2}, []int{0, 3}},
		{4, []int{0, 1, 2, 3}, []int{}},
		{3, []int{2, 2, 7, -1}, []int{0, 1}},
		{1, []int{0}, []int{}},
	}
	for _, c := range cases {
		got := Subtract(c.n, c.failed)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Subtract(%d, %v) = %v, want %v", c.n, c.failed, got, c.want)
		}
	}
}

func TestSubtractRoundTripsEvaluateSubset(t *testing.T) {
	q, sources, err := Setup(5)
	if err != nil {
		t.Fatal(err)
	}
	failed := []int{1, 3}
	contributors := Subtract(5, failed)
	agg := NewAggregator(q.Params().Field())
	var final PSR
	var want uint64
	for _, id := range contributors {
		psr, err := sources[id].Encrypt(7, uint64(100+id))
		if err != nil {
			t.Fatal(err)
		}
		want += uint64(100 + id)
		final = agg.MergeInto(final, psr)
	}
	res, err := q.EvaluateSubset(7, final, contributors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != want {
		t.Fatalf("partial SUM %d, want %d", res.Sum, want)
	}
}

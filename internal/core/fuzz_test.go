package core

import (
	"errors"
	"testing"

	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/uint256"
)

// FuzzParsePSR checks that arbitrary wire bytes never panic the PSR parser
// and that accepted PSRs round-trip.
func FuzzParsePSR(f *testing.F) {
	field := uint256.NewDefaultField()
	f.Add(make([]byte, PSRSize))
	f.Add([]byte{})
	f.Add(make([]byte, PSRSize-1))
	full := make([]byte, PSRSize)
	for i := range full {
		full[i] = 0xff
	}
	f.Add(full)
	f.Fuzz(func(t *testing.T, data []byte) {
		psr, err := ParsePSR(data, field)
		if err != nil {
			return
		}
		wire := psr.Bytes()
		back, err := ParsePSR(wire[:], field)
		if err != nil {
			t.Fatalf("accepted PSR failed to re-parse: %v", err)
		}
		if back != psr {
			t.Fatal("PSR wire round trip not stable")
		}
	})
}

// FuzzDecodeContributors checks the contributor-list codec on hostile input.
// The {0x40,0,0,0} and {0x80,0,0,0} seeds are headers whose announced count
// (1<<30, 1<<31) made 4*n wrap to 0 in uint32 arithmetic, so the old length
// check passed on a header-only frame and make([]int, n) reserved gigabytes.
func FuzzDecodeContributors(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeContributors([]int{0, 1, 2}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x40, 0x00, 0x00, 0x00})
	f.Add([]byte{0x80, 0x00, 0x00, 0x00})
	f.Add(append([]byte{0x40, 0x00, 0x00, 0x01}, make([]byte, 8)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, err := DecodeContributors(data)
		if err != nil {
			return
		}
		// An accepted list can never announce more ids than the buffer holds.
		if len(ids) > len(data)/4 {
			t.Fatalf("decoded %d ids from %d bytes", len(ids), len(data))
		}
		back, err := DecodeContributors(EncodeContributors(ids))
		if err != nil {
			t.Fatalf("accepted list failed to re-encode: %v", err)
		}
		if len(back) != len(ids) {
			t.Fatal("contributor list round trip changed length")
		}
		// The bounded variant must agree on canonical input and never accept
		// anything the unbounded parser rejects.
		bounded, err := DecodeContributorsBounded(data, 1<<20)
		if err != nil {
			return
		}
		if len(bounded) != len(ids) {
			t.Fatal("bounded and unbounded decoders disagree on accepted input")
		}
	})
}

// FuzzEvaluateSubset drives the subset-verification primitive — the probe
// oracle localization is built on — with random contributor subsets and
// optionally a bit-flipped final PSR. The invariant is the one recovery
// depends on: evaluation either returns the exact subset sum or a typed
// rejection (ErrIntegrity / ErrResultOverflow); it never serves a wrong
// value.
func FuzzEvaluateSubset(f *testing.F) {
	const n = 8
	q, sources, err := Setup(n)
	if err != nil {
		f.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())

	f.Add(uint8(0xff), uint64(1), uint64(7), uint16(0xffff))
	f.Add(uint8(0x01), uint64(2), uint64(0), uint16(0))
	f.Add(uint8(0xa5), uint64(3), uint64(12345), uint16(100))
	f.Fuzz(func(t *testing.T, mask uint8, epoch, seed uint64, flip uint16) {
		var ids []int
		var want uint64
		var final PSR
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			v := (seed >> (8 * uint(i) % 57)) & 0xffff // small, overflow-free values
			psr, err := sources[i].Encrypt(prf.Epoch(epoch), v)
			if err != nil {
				t.Fatal(err)
			}
			final = agg.MergeInto(final, psr)
			ids = append(ids, i)
			want += v
		}
		if len(ids) == 0 {
			return
		}

		flipped := flip != 0xffff // 0xffff is the no-tamper sentinel
		if flipped {
			wire := final.Bytes()
			bit := int(flip) % (PSRSize * 8)
			wire[bit/8] ^= 1 << (bit % 8)
			mutated, err := ParsePSR(wire[:], q.Params().Field())
			if err != nil {
				return // flip produced an invalid field element: rejected earlier
			}
			if mutated == final {
				return // reduction collapsed the flip back to the original
			}
			final = mutated
		}

		res, err := q.EvaluateSubset(prf.Epoch(epoch), final, ids)
		switch {
		case err == nil:
			if flipped {
				t.Fatalf("bit-flipped PSR accepted (mask %02x, flip %d, sum %d)", mask, flip, res.Sum)
			}
			if res.Sum != want || res.N != len(ids) {
				t.Fatalf("subset sum = %d over %d, want %d over %d", res.Sum, res.N, want, len(ids))
			}
		case errors.Is(err, ErrIntegrity), errors.Is(err, ErrResultOverflow):
			if !flipped {
				t.Fatalf("untampered subset rejected: %v", err)
			}
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// FuzzEvaluateHostilePSR feeds arbitrary final PSRs to a real querier: any
// outcome except a panic or a false accept is fine. A random 256-bit value
// passing verification would contradict Theorem 2.
func FuzzEvaluateHostilePSR(f *testing.F) {
	q, sources, err := Setup(2)
	if err != nil {
		f.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	a, _ := sources[0].Encrypt(1, 3)
	b, _ := sources[1].Encrypt(1, 4)
	good := agg.Merge(a, b).Bytes()
	f.Add(good[:], uint64(1))
	f.Add(make([]byte, PSRSize), uint64(1))
	f.Fuzz(func(t *testing.T, data []byte, epoch uint64) {
		psr, err := ParsePSR(data, q.Params().Field())
		if err != nil {
			return
		}
		res, err := q.Evaluate(prf.Epoch(epoch), psr)
		if err != nil {
			return
		}
		// The only PSR that may verify for epoch 1 is the genuine one.
		if epoch == 1 {
			wire := psr.Bytes()
			if wire != [PSRSize]byte(good) {
				t.Fatalf("forged PSR accepted with sum %d", res.Sum)
			}
		}
	})
}

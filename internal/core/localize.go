// Group-testing culprit localization.
//
// SIES detection is all-or-nothing: Evaluate reports *that* an epoch was
// tampered with, never *where*. A single persistent tampering aggregator can
// therefore deny service forever even though every attack is detected. The
// Localizer turns detection into attribution by exploiting the property the
// paper already proves for node failures (§IV-B): the querier can verify an
// exact SUM over any contributor subset. Re-aggregating a subset along the
// existing topology routes only through the aggregators above that subset, so
// a subset probe verifies iff no tampered route carries it — exactly the
// classic group-testing membership oracle.
//
// The search space is the aggregation tree itself, presented as a ProbeGroup
// hierarchy: each group names the route to blame (an aggregator or a single
// source) and the contributor ids beneath it. Localization descends breadth-
// first: a failing group's children are probed; children that fail are
// descended into, and a group is blamed directly when it cannot be narrowed —
// it has no children, every probed child fails (the group's own out-edge is
// the parsimonious explanation — except at the search root, where all-fail is
// equally consistent with colluders split across every subtree and the
// descent continues), or every child verifies (the corruption sits at the
// group's own merge point). Blaming a group always *covers* the
// corrupted routes beneath it, so recovery that excludes every blamed group's
// sources is sound even when parsimony over-approximates; the final re-query
// is independently verified regardless.
//
// Probe complexity: with d corrupted routes in a fanout-F tree of depth L,
// each round probes at most d·F groups and corrupted routes are at most L
// rounds deep, so localization needs at most 1 + d·F·L = O(d·log N) probes.
// The budget and round caps bound the adversary's ability to stretch
// forensics; when either trips, every unresolved group is blamed wholesale so
// the exclusion set still covers all corrupted routes.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrProbeBudget reports that localization ran out of probes (or rounds)
// before fully narrowing the culprits. The suspects returned alongside it are
// still a sound cover of every corrupted route.
var ErrProbeBudget = errors.New("sies: probe budget exhausted during localization")

// Route identifies one blamable element of the aggregation topology: an
// aggregator (and with it the subtree it merges) or a single source edge.
type Route struct {
	Aggregator bool
	ID         int
}

// String renders the route for logs.
func (r Route) String() string {
	if r.Aggregator {
		return fmt.Sprintf("aggregator %d", r.ID)
	}
	return fmt.Sprintf("source %d", r.ID)
}

// ProbeGroup is one node of the group-testing search space. Sources lists the
// contributor ids the group covers; Children partition (a subset of) them
// into narrower groups. A group with no children is atomic: failing it blames
// Route directly.
type ProbeGroup struct {
	Route    Route
	Sources  []int
	Children []ProbeGroup
}

// ProbeFunc runs one verified re-query over the given contributor ids.
// It reports whether the subset SUM verified; a non-nil error means the probe
// could not be carried out at all (not that verification failed) and aborts
// localization.
type ProbeFunc func(ids []int) (bool, error)

// Suspect is one blamed route together with the contributor ids that must be
// excluded to stop routing through it.
type Suspect struct {
	Route   Route
	Sources []int
}

// LocalizeStats counts the work one localization performed.
type LocalizeStats struct {
	Probes   int // subset re-queries issued
	Rounds   int // breadth-first descent rounds
	Culprits int // routes blamed
}

// LocalizerConfig tunes a Localizer. The zero value selects the defaults.
type LocalizerConfig struct {
	// MaxProbes caps the subset re-queries one localization may issue
	// (default 256). On exhaustion the unresolved groups are blamed wholesale
	// and ErrProbeBudget is returned with the (still sound) suspects.
	MaxProbes int
	// MaxRounds caps the descent depth (default 64); exhaustion behaves like
	// MaxProbes.
	MaxRounds int
	// Backoff, when non-nil, returns the pause before descent round `round`
	// (1-based; the initial whole-set probe is round 0 and never delayed) —
	// probes are re-queries over the live network and must not stampede it.
	Backoff func(round int) time.Duration
	// Sleep replaces time.Sleep for the Backoff pauses; tests inject a fake.
	Sleep func(time.Duration)
}

// DefaultMaxProbes and DefaultMaxRounds bound a localization when the
// configuration leaves them zero.
const (
	DefaultMaxProbes = 256
	DefaultMaxRounds = 64
)

// Localizer runs group-testing localization over ProbeGroup trees.
type Localizer struct {
	cfg LocalizerConfig
}

// NewLocalizer builds a localizer, filling config defaults.
func NewLocalizer(cfg LocalizerConfig) *Localizer {
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = DefaultMaxProbes
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Localizer{cfg: cfg}
}

// Localize pinpoints the corrupted routes beneath root. It returns nil
// suspects when the whole-set probe verifies (the corruption was transient).
// On any abort — probe budget, round cap, or a probe error — the unresolved
// groups are blamed wholesale so the suspect set still covers every corrupted
// route, and the cause is returned alongside.
func (l *Localizer) Localize(root ProbeGroup, probe ProbeFunc) ([]Suspect, LocalizeStats, error) {
	var stats LocalizeStats
	blamed := map[Route]*Suspect{}
	var order []Route // deterministic output order

	blame := func(g *ProbeGroup) {
		if _, ok := blamed[g.Route]; ok {
			return
		}
		blamed[g.Route] = &Suspect{Route: g.Route, Sources: append([]int(nil), g.Sources...)}
		order = append(order, g.Route)
	}
	finish := func(err error) ([]Suspect, LocalizeStats, error) {
		out := make([]Suspect, 0, len(order))
		for _, r := range order {
			out = append(out, *blamed[r])
		}
		stats.Culprits = len(out)
		return out, stats, err
	}

	run := func(g *ProbeGroup) (ok bool, abort error) {
		if stats.Probes >= l.cfg.MaxProbes {
			return false, ErrProbeBudget
		}
		stats.Probes++
		ok, err := probe(g.Sources)
		if err != nil {
			return false, err
		}
		return ok, nil
	}

	ok, err := run(&root)
	if err != nil {
		blame(&root)
		return finish(err)
	}
	if ok {
		return nil, stats, nil
	}

	frontier := []*ProbeGroup{&root}
	for len(frontier) > 0 {
		if stats.Rounds >= l.cfg.MaxRounds {
			for _, g := range frontier {
				blame(g)
			}
			return finish(ErrProbeBudget)
		}
		stats.Rounds++
		if l.cfg.Backoff != nil {
			if d := l.cfg.Backoff(stats.Rounds); d > 0 {
				l.cfg.Sleep(d)
			}
		}
		var next []*ProbeGroup
		for fi, g := range frontier {
			var failing []*ProbeGroup
			probed := 0
			for i := range g.Children {
				child := &g.Children[i]
				if len(child.Sources) == 0 {
					continue // nothing live beneath it; it cannot carry the corruption
				}
				ok, err := run(child)
				if err != nil {
					// Abort: blame this group (covering its children) and every
					// group not yet narrowed, then surface the cause.
					blame(g)
					for _, rest := range frontier[fi+1:] {
						blame(rest)
					}
					return finish(err)
				}
				probed++
				if !ok {
					failing = append(failing, child)
				}
			}
			switch {
			case probed == 0:
				// Atomic group: nothing narrower to test.
				blame(g)
			case len(failing) == 0:
				// Every part verifies in isolation yet the whole fails: the
				// corruption sits at this group's own merge point.
				blame(g)
			case len(failing) == probed && g != &root:
				// Every part fails: the parsimonious culprit is this group's
				// own out-edge, shared by all of them. (If genuinely every
				// child is corrupted, blaming the parent still covers them.)
				blame(g)
			case len(failing) == probed:
				// At the search root the all-fail pattern is ambiguous: it is
				// equally consistent with colluders split across every subtree
				// (blaming the root would needlessly lose the whole epoch), so
				// descend one level and let each subtree resolve — a genuine
				// root-edge tamperer just fails them all again one round later.
				next = append(next, failing...)
			default:
				next = append(next, failing...)
			}
		}
		frontier = next
	}
	return finish(nil)
}

// UnionSources returns the sorted union of the suspects' contributor ids —
// the exclusion set a verified re-query must subtract.
func UnionSources(suspects []Suspect) []int {
	var all []int
	for _, s := range suspects {
		all = append(all, s.Sources...)
	}
	if all == nil {
		return nil
	}
	sort.Ints(all)
	w := 0
	for i, id := range all {
		if i == 0 || id != all[w-1] {
			all[w] = id
			w++
		}
	}
	return all[:w]
}

package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/sies/sies/internal/prf"
)

// mergeAll builds the final PSR of one epoch from every source (or the given
// subset) reporting value v.
func mergeAll(t *testing.T, q *Querier, sources []*Source, epoch prf.Epoch, v uint64, subset []int) PSR {
	t.Helper()
	agg := NewAggregator(q.Params().Field())
	var final PSR
	if subset == nil {
		subset = allIDs(len(sources))
	}
	for _, id := range subset {
		psr, err := sources[id].Encrypt(epoch, v)
		if err != nil {
			t.Fatal(err)
		}
		final = agg.MergeInto(final, psr)
	}
	return final
}

func TestScheduleMatchesSequential(t *testing.T) {
	const n = 17
	q, sources, err := Setup(n)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSchedule(q, ScheduleConfig{Workers: 4})

	for epoch := prf.Epoch(1); epoch <= 3; epoch++ {
		final := mergeAll(t, q, sources, epoch, 7, nil)
		want, err := q.Evaluate(epoch, final)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sched.Evaluate(epoch, final, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("epoch %d: schedule %+v, sequential %+v", epoch, got, want)
		}
	}

	// Subset evaluation must agree with EvaluateSubset too.
	subset := []int{0, 3, 9, 16}
	final := mergeAll(t, q, sources, 5, 11, subset)
	want, err := q.EvaluateSubset(5, final, subset)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sched.Evaluate(5, final, subset)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("subset: schedule %+v, sequential %+v", got, want)
	}

	// A tampered PSR must still fail integrity through the cached path.
	bad := final
	bad.C = q.Params().Field().Add(bad.C, PSR{C: bad.C}.C)
	if _, err := sched.Evaluate(5, bad, subset); err == nil {
		t.Fatal("tampered PSR accepted through the schedule")
	}
}

func TestScheduleCacheHits(t *testing.T) {
	const n = 9
	q, sources, err := Setup(n)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSchedule(q, ScheduleConfig{Workers: 2}) // no prefetch: deterministic counters
	final := mergeAll(t, q, sources, 1, 3, nil)

	const reps = 8
	for i := 0; i < reps; i++ {
		if _, err := sched.Evaluate(1, final, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := sched.Stats()
	if st.Misses != 1 || st.Hits != reps-1 {
		t.Fatalf("misses=%d hits=%d, want 1/%d", st.Misses, st.Hits, reps-1)
	}
	if st.Derivations != n {
		t.Fatalf("derivations=%d, want %d (one per source, once)", st.Derivations, n)
	}
	if st.Evaluations != reps {
		t.Fatalf("evaluations=%d, want %d", st.Evaluations, reps)
	}
	if st.AvgEvalTime() <= 0 {
		t.Fatalf("AvgEvalTime=%v, want > 0", st.AvgEvalTime())
	}
}

func TestSchedulePrefetch(t *testing.T) {
	q, sources, err := Setup(6)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSchedule(q, ScheduleConfig{Prefetch: true})

	final1 := mergeAll(t, q, sources, 1, 2, nil)
	if _, err := sched.Evaluate(1, final1, nil); err != nil {
		t.Fatal(err)
	}
	// The prefetch counter is incremented after the epoch-2 entry is inserted,
	// so once it is visible the next request is guaranteed to hit that entry.
	deadline := time.Now().Add(5 * time.Second)
	for sched.Stats().Prefetches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("prefetch of epoch 2 never started")
		}
		time.Sleep(time.Millisecond)
	}
	final2 := mergeAll(t, q, sources, 2, 2, nil)
	if _, err := sched.Evaluate(2, final2, nil); err != nil {
		t.Fatal(err)
	}
	st := sched.Stats()
	if st.PrefetchWins != 1 {
		t.Fatalf("prefetch wins = %d, want 1 (stats: %+v)", st.PrefetchWins, st)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 — epoch 2 should have been prefetched", st.Misses)
	}
}

func TestScheduleFullSetAliasing(t *testing.T) {
	const n = 8
	q, sources, err := Setup(n)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSchedule(q, ScheduleConfig{})
	final := mergeAll(t, q, sources, 1, 5, nil)

	if _, err := sched.Evaluate(1, final, nil); err != nil {
		t.Fatal(err)
	}
	// An explicit (shuffled) full contributor list must alias the nil entry.
	full := allIDs(n)
	rand.New(rand.NewSource(42)).Shuffle(n, func(i, j int) { full[i], full[j] = full[j], full[i] })
	if _, err := sched.Evaluate(1, final, full); err != nil {
		t.Fatal(err)
	}
	st := sched.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("misses=%d hits=%d, want 1/1 (full list should alias nil)", st.Misses, st.Hits)
	}
}

func TestScheduleRejectsBadContributors(t *testing.T) {
	q, sources, err := Setup(4)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSchedule(q, ScheduleConfig{})
	final := mergeAll(t, q, sources, 1, 1, nil)

	if _, err := sched.Evaluate(1, final, []int{}); !errors.Is(err, ErrBadContributors) {
		t.Fatalf("empty non-nil contributor list: %v, want ErrBadContributors", err)
	}
	if _, err := sched.Evaluate(1, final, []int{0, 4}); !errors.Is(err, ErrBadContributors) {
		t.Fatalf("out-of-range contributor: %v, want ErrBadContributors", err)
	}
	if _, err := sched.Evaluate(1, final, []int{-1, 2}); !errors.Is(err, ErrBadContributors) {
		t.Fatalf("negative contributor: %v, want ErrBadContributors", err)
	}
	if _, err := sched.Evaluate(1, final, []int{1, 1}); !errors.Is(err, ErrBadContributors) {
		t.Fatalf("duplicate contributor: %v, want ErrBadContributors", err)
	}
	if st := sched.Stats(); st.Misses != 0 && st.Hits != 0 {
		// Rejection happens before the cache; only sanity-check no derivation ran.
		t.Fatalf("bad contributor lists reached the cache: %+v", st)
	}
}

// TestScheduleConcurrent hammers one small-capacity schedule from many
// goroutines mixing epochs and subsets; run under -race it exercises the
// singleflight and eviction paths.
func TestScheduleConcurrent(t *testing.T) {
	const n = 12
	q, sources, err := Setup(n)
	if err != nil {
		t.Fatal(err)
	}
	// CacheSize 2 forces constant eviction, including of in-flight entries.
	sched := NewSchedule(q, ScheduleConfig{Workers: 4, CacheSize: 2, Prefetch: true})

	type job struct {
		epoch  prf.Epoch
		final  PSR
		subset []int
		want   uint64
	}
	subsets := [][]int{nil, {0, 1, 2, 5, 8}, {3, 4, 6, 7, 9, 10, 11}}
	var jobs []job
	for e := prf.Epoch(1); e <= 4; e++ {
		for _, sub := range subsets {
			cnt := n
			if sub != nil {
				cnt = len(sub)
			}
			jobs = append(jobs, job{
				epoch: e, final: mergeAll(t, q, sources, e, 2, sub),
				subset: sub, want: uint64(2 * cnt),
			})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				j := jobs[rng.Intn(len(jobs))]
				res, err := sched.Evaluate(j.epoch, j.final, j.subset)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if res.Sum != j.want {
					select {
					case errs <- &mismatchError{got: res.Sum, want: j.want}:
					default:
					}
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if st := sched.Stats(); st.Evaluations != 8*50 {
		t.Fatalf("evaluations=%d, want %d", st.Evaluations, 8*50)
	}
}

type mismatchError struct{ got, want uint64 }

func (e *mismatchError) Error() string {
	return "sum mismatch under concurrency"
}

// TestPrepareEpochParallelWorkers checks that the chunked worker fan-out
// combines its partial sums to exactly the sequential EpochState.
func TestPrepareEpochParallelWorkers(t *testing.T) {
	const n = 23 // deliberately not a multiple of the worker counts
	q, _, err := Setup(n)
	if err != nil {
		t.Fatal(err)
	}
	ids := allIDs(n)
	seq, err := q.prepareParallel(9, ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8, 64} {
		par, err := q.prepareParallel(9, ids, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.kInv != seq.kInv || par.kSum != seq.kSum || par.expected != seq.expected || par.n != seq.n {
			t.Fatalf("workers=%d: parallel EpochState diverges from sequential", workers)
		}
	}
}

func TestEncryptBatch(t *testing.T) {
	q, sources, err := Setup(3)
	if err != nil {
		t.Fatal(err)
	}
	_ = q
	src := sources[1]
	vs := []uint64{0, 1, 42, 1<<32 - 1}
	batch, err := src.EncryptBatch(7, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(vs) {
		t.Fatalf("batch length %d, want %d", len(batch), len(vs))
	}
	// Encrypt is deterministic, so each batch element must equal the
	// one-shot encryption of the same value.
	for i, v := range vs {
		want, err := src.Encrypt(7, v)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Fatalf("batch[%d] != Encrypt(7, %d)", i, v)
		}
	}
	if out, err := src.EncryptBatch(7, nil); err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

package core

import (
	"math/rand"
	"testing"

	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/race"
	"github.com/sies/sies/internal/uint256"
)

// randomPSRs draws n field elements as PSRs, biased toward the top of the
// field so the lazy accumulator exercises its carry chain.
func randomPSRs(t testing.TB, f *uint256.Field, n int, seed int64) []PSR {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := f.Modulus()
	psrs := make([]PSR, n)
	for i := range psrs {
		var x uint256.Int
		if r.Intn(4) == 0 {
			// p − small: maximal carries when summed.
			d := uint256.Int{uint64(r.Intn(8)) + 1}
			x = f.Sub(p, f.Reduce(d))
		} else {
			for j := range x {
				x[j] = r.Uint64()
			}
			x = f.Reduce(x)
		}
		psrs[i] = PSR{C: x}
	}
	return psrs
}

// The variadic Merge, the streaming MergeState, and the reduce-per-step
// MergeInto must agree on every input: lazy reduction commutes with the
// modular sum.
func TestMergePathsAgree(t *testing.T) {
	q, _, err := Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	for _, n := range []int{0, 1, 2, 3, 64, 257, 1024} {
		psrs := randomPSRs(t, q.Params().Field(), n, int64(1000+n))

		var seq PSR
		for _, p := range psrs {
			seq = agg.MergeInto(seq, p)
		}

		lazy := agg.Merge(psrs...)
		if lazy != seq {
			t.Fatalf("n=%d: Merge %v != sequential %v", n, lazy.C, seq.C)
		}

		st := agg.NewMerge()
		for _, p := range psrs {
			st.Add(p)
		}
		if st.Count() != n {
			t.Fatalf("n=%d: Count = %d", n, st.Count())
		}
		if got := st.Final(); got != seq {
			t.Fatalf("n=%d: MergeState %v != sequential %v", n, got.C, seq.C)
		}
	}
}

// The aggregator merge of preallocated PSRs must not allocate: it is the
// per-epoch inner loop of every in-network node.
func TestMergeAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates are unreliable under the race detector")
	}
	q, _, err := Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(q.Params().Field())
	psrs := randomPSRs(t, q.Params().Field(), 1024, 7)

	var sink PSR
	if n := testing.AllocsPerRun(20, func() {
		sink = agg.Merge(psrs...)
	}); n != 0 {
		t.Fatalf("Merge(1024 PSRs): %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		st := agg.NewMerge()
		for i := range psrs {
			st.Add(psrs[i])
		}
		sink = st.Final()
	}); n != 0 {
		t.Fatalf("MergeState over 1024 PSRs: %.1f allocs/op, want 0", n)
	}
	_ = sink
}

// Repeated encryptions within one epoch must reuse the cached EncryptState
// and allocate nothing after the first call warmed the epoch.
func TestSourceEncryptSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation gates are unreliable under the race detector")
	}
	_, sources, err := Setup(1)
	if err != nil {
		t.Fatal(err)
	}
	s := sources[0]
	const epoch = prf.Epoch(42)
	if _, err := s.Encrypt(epoch, 1); err != nil { // warm the epoch cache
		t.Fatal(err)
	}
	var sink PSR
	if n := testing.AllocsPerRun(50, func() {
		psr, err := s.Encrypt(epoch, 4242)
		if err != nil {
			t.Fatal(err)
		}
		sink = psr
	}); n != 0 {
		t.Fatalf("same-epoch Encrypt: %.1f allocs/op, want 0", n)
	}
	_ = sink
}

// Package core implements the SIES protocol — the paper's primary
// contribution (§IV): Secure In-network processing of Exact SUM queries with
// data confidentiality, integrity, authentication and freshness.
//
// The protocol has four phases:
//
//	Setup          — the querier generates long-term keys (K, k₁..k_N) and a
//	                 256-bit prime p, registers (K, kᵢ, p) at each source and
//	                 p at each aggregator.
//	Initialization — at epoch t each source derives K_t = HM256(K,t),
//	                 k_{i,t} = HM256(kᵢ,t) and ss_{i,t} = HM1(kᵢ,t), packs
//	                 m_{i,t} = v‖0-pad‖ss and emits the 32-byte partial state
//	                 record PSR_{i,t} = E(m_{i,t}, K_t, k_{i,t}, p).
//	Merging        — an aggregator adds the PSRs of its children modulo p.
//	Evaluation     — the querier decrypts the final PSR with (K_t, Σ k_{i,t}),
//	                 splits it into the SUM result and the aggregate secret
//	                 s_t, and accepts iff s_t equals Σ HM1(kᵢ,t) over the
//	                 contributing sources.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/sies/sies/internal/homomorphic"
	"github.com/sies/sies/internal/message"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/secretshare"
	"github.com/sies/sies/internal/uint256"
)

// PSRSize is the wire size of a partial state record: one 32-byte field
// element, constant per network edge (paper Table V).
const PSRSize = 32

// Errors reported by the protocol.
var (
	// ErrIntegrity means the aggregate secret embedded in the final PSR does
	// not match the querier's recomputation: the result was tampered with,
	// a PSR was dropped or injected, or a stale PSR was replayed.
	ErrIntegrity = errors.New("sies: integrity verification failed")
	// ErrResultOverflow means the aggregated SUM exceeded the layout's value
	// field, so the extracted result would be meaningless.
	ErrResultOverflow = errors.New("sies: SUM result overflows the value field")
	// ErrBadPSR is returned when parsing a malformed wire PSR.
	ErrBadPSR = errors.New("sies: malformed PSR")
	// ErrBadContributors is returned when a contributor list handed to the
	// evaluation API is not a set of valid source ids: empty, a duplicate id,
	// a negative id, or an id at or past the deployment size.
	ErrBadContributors = errors.New("sies: invalid contributor list")
)

// PSR is a partial state record: a ciphertext in [0, p).
type PSR struct {
	C uint256.Int
}

// Bytes serialises the PSR to its 32-byte wire form.
func (r PSR) Bytes() [PSRSize]byte { return r.C.Bytes() }

// ParsePSR decodes a wire PSR and range-checks it against the modulus.
func ParsePSR(buf []byte, f *uint256.Field) (PSR, error) {
	if len(buf) != PSRSize {
		return PSR{}, fmt.Errorf("%w: length %d", ErrBadPSR, len(buf))
	}
	c, err := uint256.SetBytes(buf)
	if err != nil {
		return PSR{}, fmt.Errorf("%w: %v", ErrBadPSR, err)
	}
	if c.Cmp(f.Modulus()) >= 0 {
		return PSR{}, fmt.Errorf("%w: ciphertext not in [0, p)", ErrBadPSR)
	}
	return PSR{C: c}, nil
}

// Params carries the public protocol configuration shared by all parties.
type Params struct {
	layout message.Layout
	scheme *homomorphic.Scheme
}

// Option customises Setup.
type Option func(*setupConfig) error

type setupConfig struct {
	field     *uint256.Field
	valueBits int
}

// WithField selects a specific prime field instead of the default
// p = 2^256 − 189.
func WithField(f *uint256.Field) Option {
	return func(c *setupConfig) error {
		if f == nil {
			return errors.New("sies: nil field")
		}
		c.field = f
		return nil
	}
}

// WithWideValues switches the plaintext layout to 8-byte values, raising the
// maximum exact SUM from 2^32−1 to 2^64−1 (paper footnote 1) at the cost of
// supporting at most 2^32 sources.
func WithWideValues() Option {
	return func(c *setupConfig) error {
		c.valueBits = message.ValueBits64
		return nil
	}
}

// NewParams validates and assembles protocol parameters for n sources.
func NewParams(n int, opts ...Option) (Params, error) {
	cfg := setupConfig{field: uint256.NewDefaultField(), valueBits: message.ValueBits32}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return Params{}, err
		}
	}
	layout, err := message.New(n, cfg.valueBits)
	if err != nil {
		return Params{}, err
	}
	scheme := homomorphic.New(cfg.field)
	if !layout.FitsField(cfg.field) {
		return Params{}, fmt.Errorf("sies: layout (n=%d, %d-bit values) can overflow modulus %v",
			n, cfg.valueBits, cfg.field.Modulus())
	}
	return Params{layout: layout, scheme: scheme}, nil
}

// Layout returns the plaintext layout in use.
func (p Params) Layout() message.Layout { return p.layout }

// Field returns the prime field in use; aggregators need only this.
func (p Params) Field() *uint256.Field { return p.scheme.Field() }

// Scheme returns the homomorphic cipher bound to the field.
func (p Params) Scheme() *homomorphic.Scheme { return p.scheme }

// N returns the number of sources the deployment was set up for.
func (p Params) N() int { return p.layout.Sources() }

// Setup runs the setup phase for n sources: it generates the key ring and
// returns the querier plus one Source per id. In a real deployment the
// (K, kᵢ, p) triples are installed manually on the motes; here the caller
// distributes the returned Source values.
func Setup(n int, opts ...Option) (*Querier, []*Source, error) {
	params, err := NewParams(n, opts...)
	if err != nil {
		return nil, nil, err
	}
	ring, err := prf.NewKeyRing(n)
	if err != nil {
		return nil, nil, err
	}
	q := &Querier{params: params, ring: ring}
	sources := make([]*Source, n)
	for i := range sources {
		global, ki, err := ring.SourceCredentials(i)
		if err != nil {
			return nil, nil, err
		}
		sources[i] = &Source{id: i, params: params, global: global, ki: ki}
	}
	return q, sources, nil
}

// NewSource reconstructs a source from provisioned credentials (K, kᵢ) —
// the path taken by a networked deployment where keys were installed by a
// provisioning tool rather than generated in-process by Setup.
func NewSource(id int, global, ki []byte, params Params) (*Source, error) {
	if id < 0 || id >= params.N() {
		return nil, fmt.Errorf("sies: source id %d out of range [0,%d)", id, params.N())
	}
	if len(global) == 0 || len(ki) == 0 {
		return nil, errors.New("sies: source needs both the global and its private key")
	}
	return &Source{id: id, params: params,
		global: append([]byte(nil), global...), ki: append([]byte(nil), ki...)}, nil
}

// NewQuerier reconstructs a querier from a provisioned key ring.
func NewQuerier(ring *prf.KeyRing, params Params) (*Querier, error) {
	if ring == nil {
		return nil, errors.New("sies: nil key ring")
	}
	if ring.N() != params.N() {
		return nil, fmt.Errorf("sies: key ring covers %d sources, params expect %d", ring.N(), params.N())
	}
	return &Querier{params: params, ring: ring}, nil
}

// Source is a leaf sensor holding (K, kᵢ, p). It holds reusable HMAC
// derivation engines for both long-term keys (the key schedules are paid
// once, at first use) and caches the fully-prepared encryption state of the
// most recent epoch — K_t and k_{i,t} reduced exactly once, ss_{i,t}
// alongside — mirroring that a source derives its epoch material once
// regardless of how many readings it encrypts.
type Source struct {
	id     int
	params Params
	global []byte // K
	ki     []byte // k_i

	kd  *prf.Deriver // pads for K, built on first use
	kid *prf.Deriver // pads for k_i

	cachedEpoch prf.Epoch
	haveCache   bool
	encState    homomorphic.EncryptState // (K_t, k_{i,t}) reduced once
	cachedSS    secretshare.Share        // ss_{i,t}
}

// ID returns the source's identifier (its index in the key ring).
func (s *Source) ID() int { return s.id }

// Params returns the protocol parameters.
func (s *Source) Params() Params { return s.params }

// epochState derives and caches the per-epoch encryption material: K_t and
// k_{i,t} through the reusable HMAC engines, reduced into the field exactly
// once inside an EncryptState, plus the secret share ss_{i,t}. Repeated
// encryptions within one epoch reuse it allocation-free.
func (s *Source) epochState(t prf.Epoch) (*homomorphic.EncryptState, secretshare.Share, error) {
	if !s.haveCache || s.cachedEpoch != t {
		if s.kd == nil {
			s.kd = prf.NewDeriver(s.global)
			s.kid = prf.NewDeriver(s.ki)
		}
		ktRaw := s.kd.Epoch256(t)
		Kt := s.params.Field().Reduce(uint256.MustSetBytes(ktRaw[:]))
		if Kt.IsZero() {
			// Probability 2^-256; substituting 1 keeps the protocol total.
			Kt = uint256.One
		}
		kitRaw := s.kid.Epoch256(t)
		es, err := s.params.scheme.NewEncryptState(Kt, uint256.MustSetBytes(kitRaw[:]))
		if err != nil {
			return nil, secretshare.Share{}, fmt.Errorf("sies: source %d: %w", s.id, err)
		}
		s.encState = es
		s.cachedSS = secretshare.Share(s.kid.Epoch1(t))
		s.cachedEpoch, s.haveCache = t, true
	}
	return &s.encState, s.cachedSS, nil
}

// Encrypt runs the initialization phase: it derives the epoch keys and the
// secret share, packs the plaintext and returns PSR_{i,t}. A source whose
// reading fails the query predicate calls Encrypt with v = 0 (paper §III-B).
func (s *Source) Encrypt(t prf.Epoch, v uint64) (PSR, error) {
	es, ss, err := s.epochState(t)
	if err != nil {
		return PSR{}, err
	}
	return s.encryptPrepared(v, es, ss)
}

// EncryptBatch encrypts several readings for one epoch, deriving the epoch
// quantities (K_t, k_{i,t}, ss_{i,t}) once and reusing them across the batch,
// so the three HMACs are paid once instead of len(vs) times.
//
// Every returned PSR is blinded by the same one-time key k_{i,t}, so the
// confidentiality argument of §III-D covers the batch only if a single
// element per epoch reaches untrusted parties — releasing two PSRs with
// different values reveals K_t·(v_a−v_b). The intended uses are fan-out of
// one reading to redundant parents/duplicate sinks (where every element
// carries the same v) and source-throughput benchmarking.
func (s *Source) EncryptBatch(t prf.Epoch, vs []uint64) ([]PSR, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	es, ss, err := s.epochState(t)
	if err != nil {
		return nil, err
	}
	out := make([]PSR, len(vs))
	for j, v := range vs {
		psr, err := s.encryptPrepared(v, es, ss)
		if err != nil {
			return nil, err
		}
		out[j] = psr
	}
	return out, nil
}

// encryptPrepared packs and encrypts one value under the prepared epoch
// state, the shared tail of Encrypt and EncryptBatch. The keys inside es are
// already reduced, so this is one pack, one field mul and one field add.
func (s *Source) encryptPrepared(v uint64, es *homomorphic.EncryptState, ss secretshare.Share) (PSR, error) {
	m, err := s.params.layout.Pack(v, ss)
	if err != nil {
		return PSR{}, fmt.Errorf("sies: source %d: %w", s.id, err)
	}
	c, err := es.Encrypt(m)
	if err != nil {
		return PSR{}, fmt.Errorf("sies: source %d: %w", s.id, err)
	}
	return PSR{C: c}, nil
}

// Aggregator performs the merging phase. It holds only the public modulus —
// compromising an aggregator reveals no key material (paper §IV-B).
type Aggregator struct {
	field *uint256.Field
}

// NewAggregator returns an aggregator for the deployment's field.
func NewAggregator(f *uint256.Field) *Aggregator { return &Aggregator{field: f} }

// Merge folds the children's PSRs into one: Σ PSRᵢ mod p. It runs the
// lazy-reduction kernel — plain 512-bit carry-chain adds with one modular
// reduction at the end — which is exact because the PSRs are reduced and
// Σ of n < 2^256 such terms fits a Word512.
func (a *Aggregator) Merge(children ...PSR) PSR {
	var acc uint256.Accumulator
	for i := range children {
		acc.Add(children[i].C)
	}
	return PSR{C: acc.Sum(a.field)}
}

// MergeInto adds one child PSR into a running accumulator, the streaming
// form used by the network engine. Each step reduces; for long chains the
// MergeState form is cheaper.
func (a *Aggregator) MergeInto(acc, child PSR) PSR {
	return PSR{C: a.field.Add(acc.C, child.C)}
}

// MergeState streams child PSRs into a lazily-reduced 512-bit accumulator:
// Add per child, one reduction in Final. The zero-cost streaming counterpart
// of Merge for callers that do not hold their children in a slice.
type MergeState struct {
	field *uint256.Field
	acc   uint256.Accumulator
	n     int
}

// NewMerge starts an empty streaming merge.
func (a *Aggregator) NewMerge() MergeState { return MergeState{field: a.field} }

// Add folds one child PSR into the running total (no reduction).
func (m *MergeState) Add(p PSR) {
	m.acc.Add(p.C)
	m.n++
}

// Count returns how many PSRs have been folded in.
func (m *MergeState) Count() int { return m.n }

// Final performs the single deferred reduction and returns the merged PSR.
func (m *MergeState) Final() PSR { return PSR{C: m.acc.Sum(m.field)} }

// Result is a verified evaluation outcome.
type Result struct {
	Epoch prf.Epoch
	Sum   uint64 // exact SUM over the contributing sources
	N     int    // number of contributing sources
}

// Querier holds the full key ring and runs the evaluation phase.
type Querier struct {
	params Params
	ring   *prf.KeyRing

	derivOnce sync.Once
	deriv     *prf.RingDerivers
}

// derivers returns the reusable per-key HMAC engines, building them (2N+2
// key schedules) on first use. Every epoch derivation afterwards skips the
// key schedule and allocates nothing.
func (q *Querier) derivers() *prf.RingDerivers {
	q.derivOnce.Do(func() { q.deriv = prf.NewRingDerivers(q.ring) })
	return q.deriv
}

// Params returns the protocol parameters.
func (q *Querier) Params() Params { return q.params }

// KeyRing exposes the long-term keys; needed by provisioning tools and by
// the μTesla broadcaster, never by aggregators.
func (q *Querier) KeyRing() *prf.KeyRing { return q.ring }

// Evaluate decrypts and verifies the final PSR of epoch t, assuming all N
// sources contributed.
func (q *Querier) Evaluate(t prf.Epoch, final PSR) (Result, error) {
	return q.EvaluateSubset(t, final, nil)
}

// EvaluateSubset decrypts and verifies a final PSR produced by only the
// given contributor ids (nil means all sources). This implements the node-
// failure handling of §IV-B: after a reported (and manually checked) source
// failure, the querier sums keys and shares over the surviving subset only.
func (q *Querier) EvaluateSubset(t prf.Epoch, final PSR, contributors []int) (Result, error) {
	es, err := q.PrepareEpoch(t, contributors)
	if err != nil {
		return Result{}, err
	}
	return es.Evaluate(final)
}

// EpochState holds the querier-side per-epoch precomputation: K_t⁻¹, the
// blinding-key sum and the expected secret for a fixed contributor set.
// Preparing it once amortises the Θ(N) key derivations when a querier
// evaluates several candidate PSRs for the same epoch (duplicate sinks,
// retransmissions, or forensic re-checks); each Evaluate is then a constant
// number of field operations.
type EpochState struct {
	querier  *Querier
	epoch    prf.Epoch
	n        int
	kInv     uint256.Int // K_t⁻¹
	kSum     uint256.Int // Σ k_{i,t} mod p
	expected uint256.Int // Σ ss_{i,t} (plain 256-bit sum)
}

// PrepareEpoch derives every per-epoch quantity for the given contributor
// set (nil means all sources), sequentially on the calling goroutine. The
// Schedule type layers a worker pool, an LRU cache and a prefetcher on top
// of the same derivation.
func (q *Querier) PrepareEpoch(t prf.Epoch, contributors []int) (*EpochState, error) {
	ids, err := CheckContributors(q.ring.N(), contributors)
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = allIDs(q.ring.N())
	}
	return q.prepareParallel(t, ids, 1)
}

// CheckContributors validates a contributor list for a deployment of n
// sources at the API boundary: every id must be unique and in [0, n). It
// returns a sorted copy (nil stays nil, meaning all sources); any violation
// is an error wrapping ErrBadContributors. The wire-decode path
// (DecodeContributorsBounded) additionally demands the canonical sorted
// form; here order is tolerated because in-process callers assemble lists
// from maps and reports.
func CheckContributors(n int, ids []int) ([]int, error) {
	if ids == nil {
		return nil, nil
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: no contributing sources", ErrBadContributors)
	}
	out := append([]int(nil), ids...)
	sort.Ints(out)
	if out[0] < 0 {
		return nil, fmt.Errorf("%w: negative source id %d", ErrBadContributors, out[0])
	}
	if out[len(out)-1] >= n {
		return nil, fmt.Errorf("%w: source id %d out of range [0,%d)", ErrBadContributors, out[len(out)-1], n)
	}
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			return nil, fmt.Errorf("%w: duplicate source id %d", ErrBadContributors, out[i])
		}
	}
	return out, nil
}

// Evaluate decrypts and verifies one final PSR against the prepared epoch.
func (es *EpochState) Evaluate(final PSR) (Result, error) {
	q := es.querier
	m, err := q.params.scheme.DecryptWithInverse(final.C, es.kInv, es.kSum)
	if err != nil {
		return Result{}, err
	}
	sum, secret, err := q.params.layout.Unpack(m)
	if err != nil {
		// An overflowing value field implies tampering or misuse, but the
		// secret cannot be checked, so report overflow distinctly.
		return Result{}, fmt.Errorf("%w: %v", ErrResultOverflow, err)
	}
	if secret != es.expected {
		return Result{}, fmt.Errorf("%w (epoch %d, %d contributors)", ErrIntegrity, es.epoch, es.n)
	}
	return Result{Epoch: es.epoch, Sum: sum, N: es.n}, nil
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// NormalizeIDs sorts a contributor/failed-id list and removes duplicates —
// the canonical form used in failure reports, where a reconnecting child may
// re-send overlapping subtree failure lists.
func NormalizeIDs(ids []int) []int {
	if len(ids) == 0 {
		return ids
	}
	out := append([]int(nil), ids...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Subtract returns [0, n) minus the failed list (any order, duplicates
// tolerated): the contributor set the querier verifies a partial SUM against
// after reported source failures (§IV-B).
func Subtract(n int, failed []int) []int {
	failedSet := make(map[int]bool, len(failed))
	for _, id := range failed {
		failedSet[id] = true
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !failedSet[i] {
			out = append(out, i)
		}
	}
	return out
}

// EncodeContributors serialises a contributor-id list for transport in
// failure reports (sorted ids, varint-free fixed encoding).
func EncodeContributors(ids []int) []byte {
	buf := make([]byte, 4+4*len(ids))
	binary.BigEndian.PutUint32(buf, uint32(len(ids)))
	for i, id := range ids {
		binary.BigEndian.PutUint32(buf[4+4*i:], uint32(id))
	}
	return buf
}

// DecodeContributors parses a contributor-id list.
//
// All size arithmetic is done in int: the announced count is first bounded by
// the bytes actually present, so a hostile header (e.g. n = 1<<30 on a 4-byte
// frame, whose 4*n wraps to 0 in uint32) is rejected before any allocation
// instead of reserving gigabytes.
func DecodeContributors(buf []byte) ([]int, error) {
	return DecodeContributorsBounded(buf, 0)
}

// DecodeContributorsBounded parses a contributor-id list from an untrusted
// peer. Beyond the overflow-safe length check it requires the canonical wire
// form every encoder in this repository produces — strictly increasing ids —
// so a duplicated id can never double-count a blinding key or corrupt a
// coverage set, and (when maxID > 0) rejects ids outside [0, maxID).
func DecodeContributorsBounded(buf []byte, maxID int) ([]int, error) {
	if len(buf) < 4 {
		return nil, errors.New("sies: short contributor list")
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n > (len(buf)-4)/4 || len(buf)-4 != 4*n {
		return nil, errors.New("sies: contributor list length mismatch")
	}
	ids := make([]int, n)
	prev := -1
	for i := range ids {
		raw := binary.BigEndian.Uint32(buf[4+4*i:])
		if uint64(raw) > uint64(maxInt) {
			return nil, fmt.Errorf("sies: contributor id %d overflows int", raw)
		}
		id := int(raw)
		if maxID > 0 && id >= maxID {
			return nil, fmt.Errorf("sies: contributor id %d out of range [0,%d)", id, maxID)
		}
		if maxID > 0 && id <= prev {
			return nil, fmt.Errorf("sies: contributor list not canonical at id %d (duplicate or unsorted)", id)
		}
		ids[i] = id
		prev = id
	}
	return ids, nil
}

// maxInt is the largest value representable in this platform's int.
const maxInt = int(^uint(0) >> 1)

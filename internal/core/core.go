// Package core implements the SIES protocol — the paper's primary
// contribution (§IV): Secure In-network processing of Exact SUM queries with
// data confidentiality, integrity, authentication and freshness.
//
// The protocol has four phases:
//
//	Setup          — the querier generates long-term keys (K, k₁..k_N) and a
//	                 256-bit prime p, registers (K, kᵢ, p) at each source and
//	                 p at each aggregator.
//	Initialization — at epoch t each source derives K_t = HM256(K,t),
//	                 k_{i,t} = HM256(kᵢ,t) and ss_{i,t} = HM1(kᵢ,t), packs
//	                 m_{i,t} = v‖0-pad‖ss and emits the 32-byte partial state
//	                 record PSR_{i,t} = E(m_{i,t}, K_t, k_{i,t}, p).
//	Merging        — an aggregator adds the PSRs of its children modulo p.
//	Evaluation     — the querier decrypts the final PSR with (K_t, Σ k_{i,t}),
//	                 splits it into the SUM result and the aggregate secret
//	                 s_t, and accepts iff s_t equals Σ HM1(kᵢ,t) over the
//	                 contributing sources.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/sies/sies/internal/homomorphic"
	"github.com/sies/sies/internal/message"
	"github.com/sies/sies/internal/prf"
	"github.com/sies/sies/internal/secretshare"
	"github.com/sies/sies/internal/uint256"
)

// PSRSize is the wire size of a partial state record: one 32-byte field
// element, constant per network edge (paper Table V).
const PSRSize = 32

// Errors reported by the protocol.
var (
	// ErrIntegrity means the aggregate secret embedded in the final PSR does
	// not match the querier's recomputation: the result was tampered with,
	// a PSR was dropped or injected, or a stale PSR was replayed.
	ErrIntegrity = errors.New("sies: integrity verification failed")
	// ErrResultOverflow means the aggregated SUM exceeded the layout's value
	// field, so the extracted result would be meaningless.
	ErrResultOverflow = errors.New("sies: SUM result overflows the value field")
	// ErrBadPSR is returned when parsing a malformed wire PSR.
	ErrBadPSR = errors.New("sies: malformed PSR")
)

// PSR is a partial state record: a ciphertext in [0, p).
type PSR struct {
	C uint256.Int
}

// Bytes serialises the PSR to its 32-byte wire form.
func (r PSR) Bytes() [PSRSize]byte { return r.C.Bytes() }

// ParsePSR decodes a wire PSR and range-checks it against the modulus.
func ParsePSR(buf []byte, f *uint256.Field) (PSR, error) {
	if len(buf) != PSRSize {
		return PSR{}, fmt.Errorf("%w: length %d", ErrBadPSR, len(buf))
	}
	c, err := uint256.SetBytes(buf)
	if err != nil {
		return PSR{}, fmt.Errorf("%w: %v", ErrBadPSR, err)
	}
	if c.Cmp(f.Modulus()) >= 0 {
		return PSR{}, fmt.Errorf("%w: ciphertext not in [0, p)", ErrBadPSR)
	}
	return PSR{C: c}, nil
}

// Params carries the public protocol configuration shared by all parties.
type Params struct {
	layout message.Layout
	scheme *homomorphic.Scheme
}

// Option customises Setup.
type Option func(*setupConfig) error

type setupConfig struct {
	field     *uint256.Field
	valueBits int
}

// WithField selects a specific prime field instead of the default
// p = 2^256 − 189.
func WithField(f *uint256.Field) Option {
	return func(c *setupConfig) error {
		if f == nil {
			return errors.New("sies: nil field")
		}
		c.field = f
		return nil
	}
}

// WithWideValues switches the plaintext layout to 8-byte values, raising the
// maximum exact SUM from 2^32−1 to 2^64−1 (paper footnote 1) at the cost of
// supporting at most 2^32 sources.
func WithWideValues() Option {
	return func(c *setupConfig) error {
		c.valueBits = message.ValueBits64
		return nil
	}
}

// NewParams validates and assembles protocol parameters for n sources.
func NewParams(n int, opts ...Option) (Params, error) {
	cfg := setupConfig{field: uint256.NewDefaultField(), valueBits: message.ValueBits32}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return Params{}, err
		}
	}
	layout, err := message.New(n, cfg.valueBits)
	if err != nil {
		return Params{}, err
	}
	scheme := homomorphic.New(cfg.field)
	if !layout.FitsField(cfg.field) {
		return Params{}, fmt.Errorf("sies: layout (n=%d, %d-bit values) can overflow modulus %v",
			n, cfg.valueBits, cfg.field.Modulus())
	}
	return Params{layout: layout, scheme: scheme}, nil
}

// Layout returns the plaintext layout in use.
func (p Params) Layout() message.Layout { return p.layout }

// Field returns the prime field in use; aggregators need only this.
func (p Params) Field() *uint256.Field { return p.scheme.Field() }

// Scheme returns the homomorphic cipher bound to the field.
func (p Params) Scheme() *homomorphic.Scheme { return p.scheme }

// N returns the number of sources the deployment was set up for.
func (p Params) N() int { return p.layout.Sources() }

// Setup runs the setup phase for n sources: it generates the key ring and
// returns the querier plus one Source per id. In a real deployment the
// (K, kᵢ, p) triples are installed manually on the motes; here the caller
// distributes the returned Source values.
func Setup(n int, opts ...Option) (*Querier, []*Source, error) {
	params, err := NewParams(n, opts...)
	if err != nil {
		return nil, nil, err
	}
	ring, err := prf.NewKeyRing(n)
	if err != nil {
		return nil, nil, err
	}
	q := &Querier{params: params, ring: ring}
	sources := make([]*Source, n)
	for i := range sources {
		global, ki, err := ring.SourceCredentials(i)
		if err != nil {
			return nil, nil, err
		}
		sources[i] = &Source{id: i, params: params, global: global, ki: ki}
	}
	return q, sources, nil
}

// NewSource reconstructs a source from provisioned credentials (K, kᵢ) —
// the path taken by a networked deployment where keys were installed by a
// provisioning tool rather than generated in-process by Setup.
func NewSource(id int, global, ki []byte, params Params) (*Source, error) {
	if id < 0 || id >= params.N() {
		return nil, fmt.Errorf("sies: source id %d out of range [0,%d)", id, params.N())
	}
	if len(global) == 0 || len(ki) == 0 {
		return nil, errors.New("sies: source needs both the global and its private key")
	}
	return &Source{id: id, params: params,
		global: append([]byte(nil), global...), ki: append([]byte(nil), ki...)}, nil
}

// NewQuerier reconstructs a querier from a provisioned key ring.
func NewQuerier(ring *prf.KeyRing, params Params) (*Querier, error) {
	if ring == nil {
		return nil, errors.New("sies: nil key ring")
	}
	if ring.N() != params.N() {
		return nil, fmt.Errorf("sies: key ring covers %d sources, params expect %d", ring.N(), params.N())
	}
	return &Querier{params: params, ring: ring}, nil
}

// Source is a leaf sensor holding (K, kᵢ, p). It caches the epoch-global key
// K_t of the most recent epoch, mirroring that all sources can derive K_t
// once per epoch regardless of how many readings they encrypt.
type Source struct {
	id     int
	params Params
	global []byte // K
	ki     []byte // k_i

	cachedEpoch prf.Epoch
	cachedKt    uint256.Int
	haveCache   bool
}

// ID returns the source's identifier (its index in the key ring).
func (s *Source) ID() int { return s.id }

// Params returns the protocol parameters.
func (s *Source) Params() Params { return s.params }

// epochKey returns K_t reduced into the field, deriving and caching it on
// first use per epoch.
func (s *Source) epochKey(t prf.Epoch) uint256.Int {
	if s.haveCache && s.cachedEpoch == t {
		return s.cachedKt
	}
	kt := prf.HM256Epoch(s.global, t)
	Kt := s.params.Field().Reduce(uint256.MustSetBytes(kt[:]))
	if Kt.IsZero() {
		// Probability 2^-256; substituting 1 keeps the protocol total.
		Kt = uint256.One
	}
	s.cachedEpoch, s.cachedKt, s.haveCache = t, Kt, true
	return Kt
}

// Encrypt runs the initialization phase: it derives the epoch keys and the
// secret share, packs the plaintext and returns PSR_{i,t}. A source whose
// reading fails the query predicate calls Encrypt with v = 0 (paper §III-B).
func (s *Source) Encrypt(t prf.Epoch, v uint64) (PSR, error) {
	Kt := s.epochKey(t)
	kitRaw := prf.HM256Epoch(s.ki, t)
	kit := uint256.MustSetBytes(kitRaw[:])
	ss := secretshare.Derive(s.ki, t)
	return s.encryptDerived(v, Kt, kit, ss)
}

// EncryptBatch encrypts several readings for one epoch, deriving the epoch
// quantities (K_t, k_{i,t}, ss_{i,t}) once and reusing them across the batch,
// so the three HMACs are paid once instead of len(vs) times.
//
// Every returned PSR is blinded by the same one-time key k_{i,t}, so the
// confidentiality argument of §III-D covers the batch only if a single
// element per epoch reaches untrusted parties — releasing two PSRs with
// different values reveals K_t·(v_a−v_b). The intended uses are fan-out of
// one reading to redundant parents/duplicate sinks (where every element
// carries the same v) and source-throughput benchmarking.
func (s *Source) EncryptBatch(t prf.Epoch, vs []uint64) ([]PSR, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	Kt := s.epochKey(t)
	kitRaw := prf.HM256Epoch(s.ki, t)
	kit := uint256.MustSetBytes(kitRaw[:])
	ss := secretshare.Derive(s.ki, t)
	out := make([]PSR, len(vs))
	for j, v := range vs {
		psr, err := s.encryptDerived(v, Kt, kit, ss)
		if err != nil {
			return nil, err
		}
		out[j] = psr
	}
	return out, nil
}

// encryptDerived packs and encrypts one value under already-derived epoch
// material, the shared tail of Encrypt and EncryptBatch.
func (s *Source) encryptDerived(v uint64, Kt, kit uint256.Int, ss secretshare.Share) (PSR, error) {
	m, err := s.params.layout.Pack(v, ss)
	if err != nil {
		return PSR{}, fmt.Errorf("sies: source %d: %w", s.id, err)
	}
	c, err := s.params.scheme.Encrypt(m, Kt, kit)
	if err != nil {
		return PSR{}, fmt.Errorf("sies: source %d: %w", s.id, err)
	}
	return PSR{C: c}, nil
}

// Aggregator performs the merging phase. It holds only the public modulus —
// compromising an aggregator reveals no key material (paper §IV-B).
type Aggregator struct {
	field *uint256.Field
}

// NewAggregator returns an aggregator for the deployment's field.
func NewAggregator(f *uint256.Field) *Aggregator { return &Aggregator{field: f} }

// Merge folds the children's PSRs into one: Σ PSRᵢ mod p.
func (a *Aggregator) Merge(children ...PSR) PSR {
	var acc uint256.Int
	for _, ch := range children {
		acc = a.field.Add(acc, ch.C)
	}
	return PSR{C: acc}
}

// MergeInto adds one child PSR into a running accumulator, the streaming
// form used by the network engine.
func (a *Aggregator) MergeInto(acc, child PSR) PSR {
	return PSR{C: a.field.Add(acc.C, child.C)}
}

// Result is a verified evaluation outcome.
type Result struct {
	Epoch prf.Epoch
	Sum   uint64 // exact SUM over the contributing sources
	N     int    // number of contributing sources
}

// Querier holds the full key ring and runs the evaluation phase.
type Querier struct {
	params Params
	ring   *prf.KeyRing
}

// Params returns the protocol parameters.
func (q *Querier) Params() Params { return q.params }

// KeyRing exposes the long-term keys; needed by provisioning tools and by
// the μTesla broadcaster, never by aggregators.
func (q *Querier) KeyRing() *prf.KeyRing { return q.ring }

// Evaluate decrypts and verifies the final PSR of epoch t, assuming all N
// sources contributed.
func (q *Querier) Evaluate(t prf.Epoch, final PSR) (Result, error) {
	return q.EvaluateSubset(t, final, nil)
}

// EvaluateSubset decrypts and verifies a final PSR produced by only the
// given contributor ids (nil means all sources). This implements the node-
// failure handling of §IV-B: after a reported (and manually checked) source
// failure, the querier sums keys and shares over the surviving subset only.
func (q *Querier) EvaluateSubset(t prf.Epoch, final PSR, contributors []int) (Result, error) {
	es, err := q.PrepareEpoch(t, contributors)
	if err != nil {
		return Result{}, err
	}
	return es.Evaluate(final)
}

// EpochState holds the querier-side per-epoch precomputation: K_t⁻¹, the
// blinding-key sum and the expected secret for a fixed contributor set.
// Preparing it once amortises the Θ(N) key derivations when a querier
// evaluates several candidate PSRs for the same epoch (duplicate sinks,
// retransmissions, or forensic re-checks); each Evaluate is then a constant
// number of field operations.
type EpochState struct {
	querier  *Querier
	epoch    prf.Epoch
	n        int
	kInv     uint256.Int // K_t⁻¹
	kSum     uint256.Int // Σ k_{i,t} mod p
	expected uint256.Int // Σ ss_{i,t} (plain 256-bit sum)
}

// PrepareEpoch derives every per-epoch quantity for the given contributor
// set (nil means all sources), sequentially on the calling goroutine. The
// Schedule type layers a worker pool, an LRU cache and a prefetcher on top
// of the same derivation.
func (q *Querier) PrepareEpoch(t prf.Epoch, contributors []int) (*EpochState, error) {
	ids := contributors
	if ids == nil {
		ids = allIDs(q.ring.N())
	}
	return q.prepareParallel(t, ids, 1)
}

// Evaluate decrypts and verifies one final PSR against the prepared epoch.
func (es *EpochState) Evaluate(final PSR) (Result, error) {
	q := es.querier
	m, err := q.params.scheme.DecryptWithInverse(final.C, es.kInv, es.kSum)
	if err != nil {
		return Result{}, err
	}
	sum, secret, err := q.params.layout.Unpack(m)
	if err != nil {
		// An overflowing value field implies tampering or misuse, but the
		// secret cannot be checked, so report overflow distinctly.
		return Result{}, fmt.Errorf("%w: %v", ErrResultOverflow, err)
	}
	if secret != es.expected {
		return Result{}, fmt.Errorf("%w (epoch %d, %d contributors)", ErrIntegrity, es.epoch, es.n)
	}
	return Result{Epoch: es.epoch, Sum: sum, N: es.n}, nil
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// NormalizeIDs sorts a contributor/failed-id list and removes duplicates —
// the canonical form used in failure reports, where a reconnecting child may
// re-send overlapping subtree failure lists.
func NormalizeIDs(ids []int) []int {
	if len(ids) == 0 {
		return ids
	}
	out := append([]int(nil), ids...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Subtract returns [0, n) minus the failed list (any order, duplicates
// tolerated): the contributor set the querier verifies a partial SUM against
// after reported source failures (§IV-B).
func Subtract(n int, failed []int) []int {
	failedSet := make(map[int]bool, len(failed))
	for _, id := range failed {
		failedSet[id] = true
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !failedSet[i] {
			out = append(out, i)
		}
	}
	return out
}

// EncodeContributors serialises a contributor-id list for transport in
// failure reports (sorted ids, varint-free fixed encoding).
func EncodeContributors(ids []int) []byte {
	buf := make([]byte, 4+4*len(ids))
	binary.BigEndian.PutUint32(buf, uint32(len(ids)))
	for i, id := range ids {
		binary.BigEndian.PutUint32(buf[4+4*i:], uint32(id))
	}
	return buf
}

// DecodeContributors parses a contributor-id list.
//
// All size arithmetic is done in int: the announced count is first bounded by
// the bytes actually present, so a hostile header (e.g. n = 1<<30 on a 4-byte
// frame, whose 4*n wraps to 0 in uint32) is rejected before any allocation
// instead of reserving gigabytes.
func DecodeContributors(buf []byte) ([]int, error) {
	return DecodeContributorsBounded(buf, 0)
}

// DecodeContributorsBounded parses a contributor-id list from an untrusted
// peer. Beyond the overflow-safe length check it requires the canonical wire
// form every encoder in this repository produces — strictly increasing ids —
// so a duplicated id can never double-count a blinding key or corrupt a
// coverage set, and (when maxID > 0) rejects ids outside [0, maxID).
func DecodeContributorsBounded(buf []byte, maxID int) ([]int, error) {
	if len(buf) < 4 {
		return nil, errors.New("sies: short contributor list")
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n > (len(buf)-4)/4 || len(buf)-4 != 4*n {
		return nil, errors.New("sies: contributor list length mismatch")
	}
	ids := make([]int, n)
	prev := -1
	for i := range ids {
		raw := binary.BigEndian.Uint32(buf[4+4*i:])
		if uint64(raw) > uint64(maxInt) {
			return nil, fmt.Errorf("sies: contributor id %d overflows int", raw)
		}
		id := int(raw)
		if maxID > 0 && id >= maxID {
			return nil, fmt.Errorf("sies: contributor id %d out of range [0,%d)", id, maxID)
		}
		if maxID > 0 && id <= prev {
			return nil, fmt.Errorf("sies: contributor list not canonical at id %d (duplicate or unsorted)", id)
		}
		ids[i] = id
		prev = id
	}
	return ids, nil
}

// maxInt is the largest value representable in this platform's int.
const maxInt = int(^uint(0) >> 1)
